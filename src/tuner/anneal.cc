#include "tuner/anneal.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/parallel.h"

namespace alcop {
namespace tuner {

bool AreNeighbors(const schedule::ScheduleConfig& a,
                  const schedule::ScheduleConfig& b) {
  int diffs = 0;
  diffs += a.tile.tb_m != b.tile.tb_m;
  diffs += a.tile.tb_n != b.tile.tb_n;
  diffs += a.tile.tb_k != b.tile.tb_k;
  diffs += a.tile.warp_m != b.tile.warp_m;
  diffs += a.tile.warp_n != b.tile.warp_n;
  diffs += a.tile.warp_k != b.tile.warp_k;
  diffs += a.smem_stages != b.smem_stages;
  diffs += a.reg_stages != b.reg_stages;
  diffs += a.split_k != b.split_k;
  diffs += a.raster_block != b.raster_block;
  return diffs == 1;
}

std::vector<std::vector<size_t>> BuildNeighborLists(
    const std::vector<schedule::ScheduleConfig>& space) {
  std::vector<std::vector<size_t>> neighbors(space.size());
  support::ParallelFor(space.size(), [&](size_t i) {
    for (size_t j = 0; j < space.size(); ++j) {
      if (j != i && AreNeighbors(space[i], space[j])) {
        neighbors[i].push_back(j);
      }
    }
  });
  return neighbors;
}

std::vector<size_t> ProposeBatch(
    const std::vector<schedule::ScheduleConfig>& space,
    const std::function<double(size_t)>& score,
    const std::unordered_set<size_t>& exclude, size_t batch, Rng& rng,
    const AnnealOptions& options,
    const std::vector<std::vector<size_t>>* precomputed_neighbors) {
  if (space.empty() || batch == 0) return {};

  std::vector<std::vector<size_t>> local_neighbors;
  if (precomputed_neighbors == nullptr) {
    local_neighbors = BuildNeighborLists(space);
  }
  const std::vector<std::vector<size_t>>& neighbors =
      precomputed_neighbors != nullptr ? *precomputed_neighbors
                                       : local_neighbors;

  // Best-scored unvisited candidates found by the walk.
  std::map<double, size_t, std::greater<>> best;  // score -> index
  auto consider = [&](size_t index) {
    if (exclude.count(index) != 0) return;
    best.emplace(score(index) + 1e-12 * static_cast<double>(index), index);
  };

  for (int restart = 0; restart < options.restarts; ++restart) {
    size_t current =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(space.size()) - 1));
    double current_score = score(current);
    consider(current);
    for (int step = 0; step < options.walk_steps; ++step) {
      double progress =
          static_cast<double>(step) / std::max(options.walk_steps - 1, 1);
      double temperature = options.start_temperature +
                           (options.end_temperature - options.start_temperature) *
                               progress;
      size_t next;
      if (!neighbors[current].empty() && rng.Uniform() < 0.85) {
        const std::vector<size_t>& adjacent = neighbors[current];
        next = adjacent[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(adjacent.size()) - 1))];
      } else {
        next = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(space.size()) - 1));
      }
      double next_score = score(next);
      consider(next);
      double accept = next_score >= current_score
                          ? 1.0
                          : std::exp((next_score - current_score) /
                                     std::max(temperature, 1e-6));
      if (rng.Uniform() < accept) {
        current = next;
        current_score = next_score;
      }
    }
  }

  std::vector<size_t> proposals;
  std::unordered_set<size_t> taken;
  for (const auto& [s, index] : best) {
    if (taken.insert(index).second) {
      proposals.push_back(index);
      if (proposals.size() >= batch) break;
    }
  }
  // Fill any shortfall with random unvisited configs.
  while (proposals.size() < batch) {
    bool found = false;
    for (size_t attempt = 0; attempt < 4 * space.size(); ++attempt) {
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(space.size()) - 1));
      if (exclude.count(index) == 0 && taken.insert(index).second) {
        proposals.push_back(index);
        found = true;
        break;
      }
    }
    if (!found) break;  // space exhausted
  }
  return proposals;
}

}  // namespace tuner
}  // namespace alcop
