#include "tuner/strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <unordered_set>

#include "analysis/resources.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perfmodel/analytical.h"
#include "perfmodel/bottleneck.h"
#include "sim/sim_cache.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "tuner/anneal.h"
#include "tuner/feature.h"
#include "tuner/gbt.h"

namespace alcop {
namespace tuner {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Cost-model target: higher is better, bounded for failed compiles.
double ScoreOf(double cycles) {
  if (!std::isfinite(cycles)) return -30.0;
  return -std::log(cycles);
}

// Measures the first min(order.size(), max_trials) candidates concurrently
// on the global pool. Trial order and each measured value are fixed by the
// input order alone (every iteration owns result slot i and measurement is
// pure), so the TuningResult is bit-identical across thread counts.
TuningResult MeasureInOrder(const TuningTask& task,
                            const std::vector<size_t>& order,
                            size_t max_trials) {
  ALCOP_TRACE_SCOPE("measure-batch", "tuner");
  TuningResult result;
  size_t count = std::min(order.size(), max_trials);
  static obs::Counter& trials = obs::Registry::Global().GetCounter(
      "tuner.trials", "Schedule configs measured by the tuner.");
  trials.Add(count);
  result.trials.assign(order.begin(),
                       order.begin() + static_cast<ptrdiff_t>(count));
  result.measured = support::ParallelMap(
      count, [&](size_t i) { return task.measure(task.space[order[i]]); });
  return result;
}

std::vector<size_t> RankByModel(
    const TuningTask& task,
    const std::function<double(const schedule::ScheduleConfig&)>& predict) {
  std::vector<size_t> order(task.space.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> predicted = support::ParallelMap(
      task.space.size(), [&](size_t i) { return predict(task.space[i]); });
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return predicted[a] < predicted[b];
  });
  return order;
}

// Keys of the configurations the model-guided pre-filter keeps: the
// model_topk best analytical predictions among statically-feasible
// configs, plus every explore_stride-th feasible config in model-rank
// order (the exploration tail that keeps learners honest about the rest
// of the space). Keyed by ToString(), which uniquely identifies a config
// within an enumerated space.
std::unordered_set<std::string> ModelKeepSet(
    const schedule::GemmOp& op, const target::GpuSpec& spec,
    const std::vector<schedule::ScheduleConfig>& space, int topk,
    int explore_stride) {
  std::vector<double> predicted =
      support::ParallelMap(space.size(), [&](size_t i) {
        if (!analysis::CheckConfigFeasibility(op, space[i], spec).feasible) {
          return kInf;
        }
        return perfmodel::PredictCycles(op, space[i], spec);
      });
  std::vector<size_t> order;
  order.reserve(space.size());
  for (size_t i = 0; i < space.size(); ++i) {
    if (std::isfinite(predicted[i])) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return predicted[a] < predicted[b];
  });
  std::unordered_set<std::string> keep;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (rank < static_cast<size_t>(topk) ||
        (explore_stride > 0 && rank % static_cast<size_t>(explore_stride) == 0)) {
      keep.insert(space[order[rank]].ToString());
    }
  }
  return keep;
}

}  // namespace

TuningTask MakeSimulatorTask(const schedule::GemmOp& op,
                             const target::GpuSpec& spec,
                             const SpaceOptions& options) {
  TuningTask task;
  task.op = op;
  task.spec = spec;
  task.space = EnumerateSpace(op, options);
  // Measurement goes through the process-wide compile+simulate cache, so
  // repeated sweeps of the same space (other strategies, other seeds,
  // other trial budgets) are lookups instead of recompiles.
  // The static pre-filter answers "infeasible" from config arithmetic
  // alone; because CheckConfigFeasibility mirrors the simulator's
  // feasibility verdict, the returned value is the same kInf the
  // simulator would have produced after compiling.
  bool prefilter = options.static_prefilter;
  // The model-guided cut is resolved once, here, into an immutable key
  // set; `measure` stays a pure function of the config (the shared_ptr is
  // read-only after construction, so concurrent measurement is safe).
  std::shared_ptr<const std::unordered_set<std::string>> model_keep;
  if (options.model_topk > 0) {
    model_keep = std::make_shared<const std::unordered_set<std::string>>(
        ModelKeepSet(op, spec, task.space, options.model_topk,
                     options.model_explore_stride));
  }
  task.measure = [op, spec, prefilter,
                  model_keep](const schedule::ScheduleConfig& config) {
    if (prefilter &&
        !analysis::CheckConfigFeasibility(op, config, spec).feasible) {
      static obs::Counter& pruned = obs::Registry::Global().GetCounter(
          "tuner.pruned_static",
          "Configs rejected by the static feasibility pre-filter.");
      pruned.Increment();
      return kInf;
    }
    if (model_keep && model_keep->count(config.ToString()) == 0) {
      static obs::Counter& pruned = obs::Registry::Global().GetCounter(
          "tuner.pruned_model",
          "Configs rejected by the learned-model pre-filter.");
      pruned.Increment();
      return kInf;
    }
    sim::KernelTiming timing = sim::CachedCompileAndSimulate(op, config, spec);
    return timing.feasible ? timing.cycles : kInf;
  };
  return task;
}

double TuningResult::BestInFirstK(size_t k) const {
  double best = kInf;
  for (size_t i = 0; i < trials.size() && i < k; ++i) {
    best = std::min(best, measured[i]);
  }
  return best;
}

size_t TuningResult::BestIndex(const TuningTask& task) const {
  size_t best = task.space.size();
  double best_cycles = kInf;
  for (size_t i = 0; i < trials.size(); ++i) {
    if (measured[i] < best_cycles) {
      best_cycles = measured[i];
      best = trials[i];
    }
  }
  return best;
}

TuningResult GridSearch(const TuningTask& task, size_t max_trials) {
  std::vector<size_t> order(task.space.size());
  std::iota(order.begin(), order.end(), 0);
  return MeasureInOrder(task, order, max_trials);
}

TuningResult ExhaustiveSearch(const TuningTask& task) {
  return GridSearch(task, task.space.size());
}

TuningResult AnalyticalRanking(const TuningTask& task, size_t max_trials) {
  auto predict = [&task](const schedule::ScheduleConfig& config) {
    return perfmodel::PredictCycles(task.op, config, task.spec);
  };
  return MeasureInOrder(task, RankByModel(task, predict), max_trials);
}

TuningResult BottleneckRanking(const TuningTask& task, size_t max_trials) {
  auto predict = [&task](const schedule::ScheduleConfig& config) {
    return perfmodel::BottleneckPredictCycles(task.op, config, task.spec);
  };
  return MeasureInOrder(task, RankByModel(task, predict), max_trials);
}

TuningResult XgbTuner(const TuningTask& task, size_t max_trials,
                      const XgbOptions& options) {
  TuningResult result;
  if (task.space.empty()) return result;
  Rng rng(options.seed);

  // Feature matrix for the whole space (cheap, reused every round).
  std::vector<std::vector<double>> features = support::ParallelMap(
      task.space.size(),
      [&](size_t i) { return ExtractFeatures(task.op, task.space[i], task.spec); });

  // Pre-training pseudo-samples: the analytical model's predicted score
  // for every configuration in the space.
  std::vector<double> pretrain_scores;
  if (options.pretrain_with_analytical) {
    pretrain_scores = support::ParallelMap(task.space.size(), [&](size_t i) {
      return ScoreOf(perfmodel::PredictCycles(task.op, task.space[i], task.spec));
    });
  }

  GbtModel model;
  std::unordered_set<size_t> measured_set;
  // Annealing adjacency, built once (in parallel) on the first
  // model-guided round instead of every round.
  std::vector<std::vector<size_t>> neighbors;

  // Proposal and refitting stay on the caller thread (the single Rng and
  // the model are not shared with the pool); only candidate measurement
  // and batch prediction fan out, so trial order is thread-count invariant.
  auto refit = [&](int round_number) {
    ALCOP_TRACE_SCOPE("refit", "tuner");
    static obs::Counter& refits = obs::Registry::Global().GetCounter(
        "tuner.refits", "Cost-model refits during search.");
    refits.Increment();
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    std::vector<double> w;
    size_t rows =
        (options.pretrain_with_analytical ? task.space.size() : 0) +
        result.trials.size();
    x.reserve(rows);
    y.reserve(rows);
    w.reserve(rows);
    if (options.pretrain_with_analytical) {
      for (size_t i = 0; i < task.space.size(); ++i) {
        x.push_back(features[i]);
        y.push_back(pretrain_scores[i]);
        w.push_back(options.pretrain_weight);
      }
    }
    for (size_t i = 0; i < result.trials.size(); ++i) {
      x.push_back(features[result.trials[i]]);
      y.push_back(ScoreOf(result.measured[i]));
      w.push_back(1.0);
    }
    if (!x.empty()) model.Fit(x, y, w);
    if (options.logger) {
      TrialEvent event;
      event.kind = TrialEvent::Kind::kRefit;
      event.round = round_number;
      event.training_size = static_cast<int64_t>(result.trials.size());
      event.rank_accuracy = std::numeric_limits<double>::quiet_NaN();
      // Pairwise rank accuracy of the freshly fit model over everything
      // measured so far: of the pairs the measurements order, how many
      // does the model order the same way.
      if (result.trials.size() >= 2 && model.IsFitted()) {
        std::vector<std::vector<double>> measured_x;
        measured_x.reserve(result.trials.size());
        for (size_t index : result.trials) {
          measured_x.push_back(features[index]);
        }
        std::vector<double> predicted = model.PredictBatch(measured_x);
        int64_t concordant = 0;
        int64_t comparable = 0;
        for (size_t i = 0; i < predicted.size(); ++i) {
          for (size_t j = i + 1; j < predicted.size(); ++j) {
            double truth = ScoreOf(result.measured[i]) -
                           ScoreOf(result.measured[j]);
            double guess = predicted[i] - predicted[j];
            if (truth == 0.0 || guess == 0.0) continue;  // ties carry no rank
            ++comparable;
            if ((truth > 0.0) == (guess > 0.0)) ++concordant;
          }
        }
        if (comparable > 0) {
          event.rank_accuracy = static_cast<double>(concordant) /
                                static_cast<double>(comparable);
        }
      }
      options.logger(event);
    }
  };

  if (options.pretrain_with_analytical) refit(-1);  // prior knowledge only

  // Warm-start seeds: measured as one batch before the first proposal
  // round. They consume trial budget like any other batch, and the refit
  // below means the main loop starts model-guided instead of from the
  // cold-start random round.
  if (!options.warm_seeds.empty()) {
    std::vector<size_t> seeds;
    for (size_t index : options.warm_seeds) {
      if (index >= task.space.size()) continue;
      if (measured_set.count(index) != 0) continue;
      if (seeds.size() >= max_trials) break;
      if (std::find(seeds.begin(), seeds.end(), index) != seeds.end()) {
        continue;
      }
      seeds.push_back(index);
    }
    if (!seeds.empty()) {
      if (options.logger) {
        for (size_t i = 0; i < seeds.size(); ++i) {
          TrialEvent event;
          event.kind = TrialEvent::Kind::kProposed;
          event.round = -1;
          event.trial = result.trials.size() + i;
          event.space_index = seeds[i];
          event.config = task.space[seeds[i]].ToString();
          event.predicted_score = std::numeric_limits<double>::quiet_NaN();
          event.analytical_cycles =
              perfmodel::PredictCycles(task.op, task.space[seeds[i]], task.spec);
          options.logger(event);
        }
      }
      std::vector<double> seed_cycles = support::ParallelMap(
          seeds.size(), [&](size_t i) { return task.measure(task.space[seeds[i]]); });
      for (size_t i = 0; i < seeds.size(); ++i) {
        if (options.logger) {
          TrialEvent event;
          event.kind = TrialEvent::Kind::kMeasured;
          event.round = -1;
          event.trial = result.trials.size();
          event.space_index = seeds[i];
          event.measured_cycles = seed_cycles[i];
          options.logger(event);
        }
        result.trials.push_back(seeds[i]);
        result.measured.push_back(seed_cycles[i]);
        measured_set.insert(seeds[i]);
      }
      refit(-1);
    }
  }

  static obs::Counter& rounds = obs::Registry::Global().GetCounter(
      "tuner.rounds", "Search rounds executed by the XGB tuner.");
  static obs::Counter& trials = obs::Registry::Global().GetCounter(
      "tuner.trials", "Schedule configs measured by the tuner.");
  int round = 0;
  while (result.trials.size() < max_trials &&
         measured_set.size() < task.space.size()) {
    ALCOP_TRACE_SCOPE("xgb-round", "tuner");
    rounds.Increment();
    size_t batch =
        std::min(options.batch_size, max_trials - result.trials.size());
    std::vector<size_t> proposals;
    std::vector<double> predicted;  // whole-space scores; empty cold start
    if (!model.IsFitted()) {
      // Cold start: random batch, deduplicated in O(1) per draw.
      std::unordered_set<size_t> proposed;
      while (proposals.size() < batch &&
             measured_set.size() + proposals.size() < task.space.size()) {
        size_t index = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(task.space.size()) - 1));
        if (measured_set.count(index) == 0 && proposed.insert(index).second) {
          proposals.push_back(index);
        }
      }
    } else {
      // Predict the whole space in one parallel batch; the annealing walk
      // then scores candidates by table lookup.
      if (neighbors.empty()) neighbors = BuildNeighborLists(task.space);
      predicted = model.PredictBatch(features);
      auto score = [&](size_t index) { return predicted[index]; };
      proposals = ProposeBatch(task.space, score, measured_set, batch, rng,
                               {}, &neighbors);
    }
    if (proposals.empty()) break;
    if (options.logger) {
      for (size_t i = 0; i < proposals.size(); ++i) {
        TrialEvent event;
        event.kind = TrialEvent::Kind::kProposed;
        event.round = round;
        event.trial = result.trials.size() + i;
        event.space_index = proposals[i];
        event.config = task.space[proposals[i]].ToString();
        event.predicted_score =
            predicted.empty() ? std::numeric_limits<double>::quiet_NaN()
                              : predicted[proposals[i]];
        event.analytical_cycles = perfmodel::PredictCycles(
            task.op, task.space[proposals[i]], task.spec);
        options.logger(event);
      }
    }
    std::vector<double> cycles = support::ParallelMap(
        proposals.size(),
        [&](size_t i) { return task.measure(task.space[proposals[i]]); });
    trials.Add(proposals.size());
    for (size_t i = 0; i < proposals.size(); ++i) {
      if (options.logger) {
        TrialEvent event;
        event.kind = TrialEvent::Kind::kMeasured;
        event.round = round;
        event.trial = result.trials.size();
        event.space_index = proposals[i];
        event.measured_cycles = cycles[i];
        options.logger(event);
      }
      result.trials.push_back(proposals[i]);
      result.measured.push_back(cycles[i]);
      measured_set.insert(proposals[i]);
    }
    refit(round);
    ++round;
  }
  return result;
}

}  // namespace tuner
}  // namespace alcop
