// Schedule design space enumeration.
//
// The tuning design space is the cross product of threadblock tiles, warp
// tiles and pipeline stage counts, filtered to configurations that legally
// tile the operator. This is the space the paper's exhaustive search,
// grid search, analytical ranking and ML tuner all operate over.
#ifndef ALCOP_TUNER_SPACE_H_
#define ALCOP_TUNER_SPACE_H_

#include <cstdint>
#include <vector>

#include "schedule/schedule.h"

namespace alcop {
namespace tuner {

struct SpaceOptions {
  std::vector<int64_t> tb_m = {32, 64, 128, 256};
  std::vector<int64_t> tb_n = {32, 64, 128, 256};
  std::vector<int64_t> tb_k = {16, 32, 64};
  // Warp partitions of the threadblock tile: (tb_m/warp_m, tb_n/warp_n).
  std::vector<std::pair<int64_t, int64_t>> warp_splits = {
      {1, 1}, {1, 2}, {2, 1}, {2, 2}, {2, 4}, {4, 2}};
  std::vector<int64_t> warp_k = {16};
  std::vector<int> smem_stages = {1, 2, 3, 4};
  std::vector<int> reg_stages = {1, 2};
  // Split-K candidates, generated only when the spatial grid is
  // parallelism-starved (fewer than ~4 threadblocks per SM without the
  // split), the same pruning CUTLASS heuristics apply. Off by default:
  // neither TVM v0.8's tensor-core schedules nor the paper's ALCOP search
  // split the reduction axis, so the faithful Fig. 10 comparison excludes
  // it. WithSplitK() enables it for the extension study in the ablation
  // bench.
  std::vector<int> split_k = {1};

  // Static pre-simulation filter: configurations whose occupancy-based
  // StaticFeasibility verdict (src/analysis/resources) is infeasible are
  // short-circuited to an infinite measurement without compiling or
  // simulating. The verdict agrees with the simulator's own feasibility
  // check by construction, so the search space, trial order and
  // best-found schedule are bit-identical with the filter on or off —
  // only the work per infeasible trial changes (counted in the
  // "tuner.pruned_static" metric).
  bool static_prefilter = true;

  // Model-guided pre-filter (the calibrated Table-I ranker as a pruner):
  // when > 0, only the model_topk statically-feasible configurations with
  // the best analytical predictions — plus an exploration tail of every
  // model_explore_stride-th feasible config in model-rank order — are
  // actually simulated; every other measurement short-circuits to +inf
  // (counted in "tuner.pruned_model"). Space, indices and trial order are
  // unchanged, so strategies compose with the filter transparently.
  // Unlike static_prefilter this is a lossy cut in principle; at the
  // default cut the calibrated ranker keeps the true best schedule of
  // every Fig. 10 operator (the top-k coverage gate in
  // bench/calibration.cc guards exactly this).
  int model_topk = 0;  // 0 = off
  int model_explore_stride = 64;
  static constexpr int kDefaultModelTopK = 128;

  static SpaceOptions WithSplitK();

  // Restrictions used by the ablation variants of the paper's Fig. 10.
  static SpaceOptions NoPipelining();           // TVM baseline
  static SpaceOptions DoubleBufferingOnly();    // TVM + manual double buffer
  static SpaceOptions SharedPipeliningOnly();   // ALCOP w/o multi-level
  static SpaceOptions TwoStageSharedOnly();     // ALCOP w/o ML and MS
};

// All valid configurations of `options` for `op`, in deterministic
// nested-loop order (the order grid search visits them).
std::vector<schedule::ScheduleConfig> EnumerateSpace(
    const schedule::GemmOp& op, const SpaceOptions& options = {});

}  // namespace tuner
}  // namespace alcop

#endif  // ALCOP_TUNER_SPACE_H_
