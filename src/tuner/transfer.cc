#include "tuner/transfer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "tuner/feature.h"

namespace alcop {
namespace tuner {

WarmStart FindWarmStart(const TuningTask& task, const TuningStore& store,
                        size_t top_k) {
  WarmStart warm;
  if (task.space.empty() || top_k == 0) return warm;
  const std::string op_key = OpKey(task.op);
  const std::vector<double> signature = CanonicalSignature(task.op, task.spec);

  // Nearest stored shape; an exact op_key match is distance 0 by
  // construction (same op, same spec => same signature), and key-ordered
  // snapshot + strict < make ties deterministic.
  std::vector<StoredTuning> stored = store.Snapshot();
  const StoredTuning* best = nullptr;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const StoredTuning& tuning : stored) {
    const double d = tuning.op_key == op_key
                         ? 0.0
                         : SignatureDistance(signature, tuning.signature);
    if (d < best_distance) {
      best_distance = d;
      best = &tuning;
    }
  }
  if (best == nullptr) return warm;

  // The neighbor's measured trials, best-first, mapped into this task's
  // space by ToString identity. Configs the space does not enumerate are
  // dropped (a different shape legitimately has different tile divisors).
  std::unordered_map<std::string, size_t> by_string;
  by_string.reserve(task.space.size());
  for (size_t i = 0; i < task.space.size(); ++i) {
    by_string.emplace(task.space[i].ToString(), i);
  }
  std::vector<const StoredTrial*> ranked;
  ranked.reserve(best->trials.size());
  for (const StoredTrial& trial : best->trials) {
    if (std::isfinite(trial.cycles)) ranked.push_back(&trial);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const StoredTrial* a, const StoredTrial* b) {
                     return a->cycles < b->cycles;
                   });
  for (const StoredTrial* trial : ranked) {
    if (warm.seeds.size() >= top_k) break;
    auto it = by_string.find(trial->config.ToString());
    if (it == by_string.end()) continue;
    if (std::find(warm.seeds.begin(), warm.seeds.end(), it->second) !=
        warm.seeds.end()) {
      continue;
    }
    warm.seeds.push_back(it->second);
  }
  if (warm.seeds.empty()) return warm;  // nothing mapped: stay cold
  warm.source_op_key = best->op_key;
  warm.distance = best_distance;
  return warm;
}

void StoreTuning(const TuningTask& task, const TuningResult& result,
                 TuningStore& store) {
  if (result.trials.empty()) return;
  StoredTuning tuning;
  tuning.op_key = OpKey(task.op);
  tuning.op = task.op;
  tuning.signature = CanonicalSignature(task.op, task.spec);
  tuning.trials.reserve(result.trials.size());
  for (size_t i = 0; i < result.trials.size(); ++i) {
    StoredTrial trial;
    trial.config = task.space[result.trials[i]];
    trial.cycles = result.measured[i];
    tuning.trials.push_back(std::move(trial));
  }
  store.Put(std::move(tuning));
}

}  // namespace tuner
}  // namespace alcop
