// Warm-start transfer: seed a new search from the nearest completed one.
//
// The Halide GPU autoscheduler and TVM's tuning logs both show the same
// economics — most of a search's cost buys knowledge that transfers
// across similar problem shapes. We make that transfer explicit: every
// completed search is stored (tuner/records.h TuningStore) together with
// its CanonicalSignature, and a new task asks for the nearest stored
// shape by L2 signature distance. The neighbor's best-measured configs
// are mapped into the new task's enumerated space (by ToString identity;
// configs the new space does not contain are dropped) and handed to
// XgbTuner as warm_seeds: measured as the first batch, before any
// model-guided round, so the cost model starts from transferred truth
// instead of random samples.
//
// The transfer is gated to never worsen best-found: seeds are real
// measurements folded into the same TuningResult, so the warm search's
// best is min(seed best, searched best) — a bad neighbor costs trial
// budget, never correctness — and an exact op_key match replays the
// previous best directly (the warm-restart case).
#ifndef ALCOP_TUNER_TRANSFER_H_
#define ALCOP_TUNER_TRANSFER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tuner/records.h"
#include "tuner/strategy.h"

namespace alcop {
namespace tuner {

struct WarmStart {
  // op_key of the stored tuning the seeds came from; empty = cold (store
  // had nothing usable).
  std::string source_op_key;
  double distance = 0.0;  // signature distance to the source
  // Space indices of the transferred configs, best-first (XgbOptions::
  // warm_seeds format).
  std::vector<size_t> seeds;
};

// Picks the nearest stored shape (exact op_key match wins at distance 0)
// and maps its top_k best finite-cycles configs into `task.space`.
// Returns a cold WarmStart if the store is empty or nothing maps.
WarmStart FindWarmStart(const TuningTask& task, const TuningStore& store,
                        size_t top_k = 8);

// Stores a completed search for future transfer (converts space indices
// to explicit configs and attaches the canonical signature).
void StoreTuning(const TuningTask& task, const TuningResult& result,
                 TuningStore& store);

}  // namespace tuner
}  // namespace alcop

#endif  // ALCOP_TUNER_TRANSFER_H_
