// Simulated-annealing proposal over the enumerated schedule space — the
// sampling method of TVM's XGBoost tuner (Table II). The walk mutates one
// schedule knob at a time, accepts by the cost model's predicted score,
// and returns the best-scored unvisited configurations it encountered.
#ifndef ALCOP_TUNER_ANNEAL_H_
#define ALCOP_TUNER_ANNEAL_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "schedule/schedule.h"
#include "support/rng.h"

namespace alcop {
namespace tuner {

struct AnnealOptions {
  int walk_steps = 300;
  double start_temperature = 1.0;
  double end_temperature = 0.05;
  int restarts = 4;
};

// Single-knob adjacency lists for the whole space, each sorted ascending.
// Built concurrently on the global pool (row i is owned by iteration i),
// so the result is identical for any thread count. Callers that propose
// repeatedly over the same space (XgbTuner's per-batch loop) build this
// once instead of paying the O(space^2) scan every round.
std::vector<std::vector<size_t>> BuildNeighborLists(
    const std::vector<schedule::ScheduleConfig>& space);

// Proposes up to `batch` distinct indices into `space`, maximizing
// `score(index)` (higher is better), skipping indices in `exclude`.
// `neighbors`, when non-null, must be BuildNeighborLists(space); when
// null the lists are built internally (same walk either way).
std::vector<size_t> ProposeBatch(
    const std::vector<schedule::ScheduleConfig>& space,
    const std::function<double(size_t)>& score,
    const std::unordered_set<size_t>& exclude, size_t batch, Rng& rng,
    const AnnealOptions& options = {},
    const std::vector<std::vector<size_t>>* neighbors = nullptr);

// Neighbor relation used by the walk: configs differing in exactly one
// knob (one tile dimension, one warp split, or one stage count). Exposed
// for tests.
bool AreNeighbors(const schedule::ScheduleConfig& a,
                  const schedule::ScheduleConfig& b);

}  // namespace tuner
}  // namespace alcop

#endif  // ALCOP_TUNER_ANNEAL_H_
