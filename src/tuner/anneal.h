// Simulated-annealing proposal over the enumerated schedule space — the
// sampling method of TVM's XGBoost tuner (Table II). The walk mutates one
// schedule knob at a time, accepts by the cost model's predicted score,
// and returns the best-scored unvisited configurations it encountered.
#ifndef ALCOP_TUNER_ANNEAL_H_
#define ALCOP_TUNER_ANNEAL_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "schedule/schedule.h"
#include "support/rng.h"

namespace alcop {
namespace tuner {

struct AnnealOptions {
  int walk_steps = 300;
  double start_temperature = 1.0;
  double end_temperature = 0.05;
  int restarts = 4;
};

// Proposes up to `batch` distinct indices into `space`, maximizing
// `score(index)` (higher is better), skipping indices in `exclude`.
std::vector<size_t> ProposeBatch(
    const std::vector<schedule::ScheduleConfig>& space,
    const std::function<double(size_t)>& score,
    const std::unordered_set<size_t>& exclude, size_t batch, Rng& rng,
    const AnnealOptions& options = {});

// Neighbor relation used by the walk: configs differing in exactly one
// knob (one tile dimension, one warp split, or one stage count). Exposed
// for tests.
bool AreNeighbors(const schedule::ScheduleConfig& a,
                  const schedule::ScheduleConfig& b);

}  // namespace tuner
}  // namespace alcop

#endif  // ALCOP_TUNER_ANNEAL_H_
