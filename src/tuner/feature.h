// Feature extraction for the ML cost model: a fixed-length numeric vector
// describing one (operator, schedule) pair, mirroring the schedule
// features TVM's XGBoost tuner consumes plus the occupancy-derived terms
// our analytical model identifies as load-bearing.
#ifndef ALCOP_TUNER_FEATURE_H_
#define ALCOP_TUNER_FEATURE_H_

#include <string>
#include <vector>

#include "schedule/schedule.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace tuner {

inline constexpr int kNumFeatures = 17;

// Extracts the feature vector (size kNumFeatures).
std::vector<double> ExtractFeatures(const schedule::GemmOp& op,
                                    const schedule::ScheduleConfig& config,
                                    const target::GpuSpec& spec);

// Names, index-aligned with ExtractFeatures (for diagnostics).
const std::vector<std::string>& FeatureNames();

// Shape signature for warm-start transfer: the feature vector of the op
// under one fixed reference schedule, so the config contribution cancels
// and the L2 distance between two signatures orders workloads purely by
// problem structure (family, sizes, arithmetic intensity, occupancy
// pressure). Same op + spec => identical signature.
std::vector<double> CanonicalSignature(const schedule::GemmOp& op,
                                       const target::GpuSpec& spec);

// Euclidean distance between signatures (+inf on dimension mismatch).
double SignatureDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace tuner
}  // namespace alcop

#endif  // ALCOP_TUNER_FEATURE_H_
