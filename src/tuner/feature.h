// Feature extraction for the ML cost model: a fixed-length numeric vector
// describing one (operator, schedule) pair, mirroring the schedule
// features TVM's XGBoost tuner consumes plus the occupancy-derived terms
// our analytical model identifies as load-bearing.
#ifndef ALCOP_TUNER_FEATURE_H_
#define ALCOP_TUNER_FEATURE_H_

#include <string>
#include <vector>

#include "schedule/schedule.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace tuner {

inline constexpr int kNumFeatures = 17;

// Extracts the feature vector (size kNumFeatures).
std::vector<double> ExtractFeatures(const schedule::GemmOp& op,
                                    const schedule::ScheduleConfig& config,
                                    const target::GpuSpec& spec);

// Names, index-aligned with ExtractFeatures (for diagnostics).
const std::vector<std::string>& FeatureNames();

}  // namespace tuner
}  // namespace alcop

#endif  // ALCOP_TUNER_FEATURE_H_
