// The four schedule-search strategies compared in the paper's Table II and
// Fig. 13:
//   - Grid search: enumerate the space in its natural order, no learning.
//   - XGB: the TVM default — a gradient-boosted cost model fit on measured
//     trials, with simulated annealing proposing new ones.
//   - Analytical-only: rank the whole space by the Table-I model's
//     predictions, measure in that order.
//   - Analytical + XGB (ALCOP): pre-train the boosted model on the
//     analytical model's predictions over the whole space, then run the
//     XGB loop — prior hardware knowledge plus measured fine-tuning.
// A bottleneck-model ranking (Fig. 12's baseline) is also provided.
#ifndef ALCOP_TUNER_STRATEGY_H_
#define ALCOP_TUNER_STRATEGY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "schedule/schedule.h"
#include "target/gpu_spec.h"
#include "tuner/space.h"

namespace alcop {
namespace tuner {

// One tuning problem: an operator, a device, an enumerated space, and a
// measurement function returning kernel cycles (+inf for configurations
// that fail to compile or fit).
//
// `measure` is invoked concurrently from the global thread pool (see
// support/parallel.h): it must be a pure function of the config —
// thread-safe and returning the same cycles for the same config — which
// is what makes every strategy's TuningResult bit-identical across
// ALCOP_THREADS settings. Proposal logic (annealing walks, model refits,
// RNG draws) always stays on the caller thread.
struct TuningTask {
  schedule::GemmOp op;
  target::GpuSpec spec;
  std::vector<schedule::ScheduleConfig> space;
  std::function<double(const schedule::ScheduleConfig&)> measure;
};

// Builds a task whose measurement runs the timing simulator.
TuningTask MakeSimulatorTask(const schedule::GemmOp& op,
                             const target::GpuSpec& spec,
                             const SpaceOptions& options = {});

struct TuningResult {
  std::vector<size_t> trials;    // space indices, in proposal order
  std::vector<double> measured;  // cycles per trial (aligned with trials)

  // Best (minimum) measured cycles among the first k trials; +inf if none
  // of them compiled.
  double BestInFirstK(size_t k) const;
  // Index into the space of the overall best trial (space.size() if none).
  size_t BestIndex(const TuningTask& task) const;
};

TuningResult GridSearch(const TuningTask& task, size_t max_trials);

// Measures the whole space (the exhaustive-search ground truth).
TuningResult ExhaustiveSearch(const TuningTask& task);

// Rank by a model's predicted cycles, measure in that order.
TuningResult AnalyticalRanking(const TuningTask& task, size_t max_trials);
TuningResult BottleneckRanking(const TuningTask& task, size_t max_trials);

// One event of the XGB search loop, for the JSONL telemetry log behind
// `alcop_cli tune --log`. Events are emitted synchronously from the
// caller thread (never from the measurement pool), in a deterministic
// order: per round, one kProposed per candidate, one kMeasured per
// candidate, then one kRefit. The search itself is unaffected by
// logging — trials and measured values stay bit-identical with the
// logger unset.
struct TrialEvent {
  enum class Kind { kProposed, kMeasured, kRefit };
  Kind kind = Kind::kProposed;
  // Model-guided round counter; -1 for the analytical pretrain refit
  // that precedes the first round.
  int round = 0;
  size_t trial = 0;        // index into TuningResult.trials
  size_t space_index = 0;  // the candidate's index in task.space
  std::string config;      // candidate ToString() (kProposed only)
  // GBT score of the candidate at proposal time; NaN on cold-start
  // rounds (no fitted model yet).
  double predicted_score = 0.0;
  // Table-I analytical prediction for the candidate (kProposed only);
  // computed only when a logger is set, so logging-off runs pay nothing.
  double analytical_cycles = 0.0;
  double measured_cycles = 0.0;  // kMeasured only
  // kRefit only: measured rows in the fit, and the model's pairwise
  // rank accuracy over them (concordant pairs / comparable pairs; NaN
  // with fewer than two distinct measurements).
  int64_t training_size = 0;
  double rank_accuracy = 0.0;
};

struct XgbOptions {
  size_t batch_size = 8;
  bool pretrain_with_analytical = false;  // ALCOP's Model-Assisted XGB
  uint64_t seed = 0;
  // Weight of pre-training pseudo-samples relative to measured ones.
  double pretrain_weight = 0.25;
  // Search telemetry sink (see TrialEvent); unset = no logging cost.
  std::function<void(const TrialEvent&)> logger;
  // Warm-start transfer (tuner/transfer.h): space indices measured as the
  // first batch, before any proposal round, and folded into the refit —
  // so a warm model replaces the cold-start random round. Purely
  // additive: with no seeds the search is bit-identical to a cold run
  // (the Rng is never consumed by seeding), and because seeds are real
  // measurements in the same TuningResult, best-found can only improve.
  // Out-of-range and duplicate indices are ignored. Logged with
  // round = -1 (like the analytical pretrain, they precede round 0).
  std::vector<size_t> warm_seeds;
};

TuningResult XgbTuner(const TuningTask& task, size_t max_trials,
                      const XgbOptions& options = {});

}  // namespace tuner
}  // namespace alcop

#endif  // ALCOP_TUNER_STRATEGY_H_
