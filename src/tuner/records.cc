#include "tuner/records.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "schedule/tensor.h"

namespace alcop {
namespace tuner {

std::string OpKey(const schedule::GemmOp& op) {
  std::ostringstream key;
  key << schedule::OpFamilyName(op.family) << "/" << op.batch << "/" << op.m
      << "x" << op.n << "x" << op.k;
  return key.str();
}

std::string ToJsonLine(const TuningRecord& record) {
  const schedule::TileConfig& t = record.config.tile;
  std::ostringstream out;
  out.precision(17);  // doubles round-trip exactly
  out << "{\"op\":\"" << record.op_key << "\",\"tb\":[" << t.tb_m << ","
      << t.tb_n << "," << t.tb_k << "],\"warp\":[" << t.warp_m << ","
      << t.warp_n << "," << t.warp_k << "],\"smem\":"
      << record.config.smem_stages << ",\"reg\":" << record.config.reg_stages
      << ",\"split_k\":" << record.config.split_k
      << ",\"fusion\":" << (record.config.inner_fusion ? 1 : 0)
      << ",\"swizzle\":" << (record.config.swizzle ? 1 : 0)
      << ",\"cycles\":" << record.cycles << "}";
  return out.str();
}

namespace {

// Minimal scanner for the fixed record grammar above.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  bool Literal(const std::string& expected) {
    if (text_.compare(pos_, expected.size(), expected) != 0) return false;
    pos_ += expected.size();
    return true;
  }

  bool String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    size_t end = text_.find('"', pos_ + 1);
    if (end == std::string::npos) return false;
    *out = text_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    return true;
  }

  bool Number(double* out) {
    size_t consumed = 0;
    try {
      *out = std::stod(text_.substr(pos_), &consumed);
    } catch (...) {
      return false;
    }
    if (consumed == 0) return false;
    pos_ += consumed;
    return true;
  }

  bool Int(int64_t* out) {
    double value = 0;
    if (!Number(&value)) return false;
    *out = static_cast<int64_t>(value);
    return true;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<TuningRecord> FromJsonLine(const std::string& line) {
  TuningRecord record;
  Scanner scan(line);
  schedule::TileConfig& t = record.config.tile;
  int64_t smem = 0, reg = 0, split_k = 0, fusion = 0, swizzle = 0;
  bool ok = scan.Literal("{\"op\":") && scan.String(&record.op_key) &&
            scan.Literal(",\"tb\":[") && scan.Int(&t.tb_m) &&
            scan.Literal(",") && scan.Int(&t.tb_n) && scan.Literal(",") &&
            scan.Int(&t.tb_k) && scan.Literal("],\"warp\":[") &&
            scan.Int(&t.warp_m) && scan.Literal(",") && scan.Int(&t.warp_n) &&
            scan.Literal(",") && scan.Int(&t.warp_k) &&
            scan.Literal("],\"smem\":") && scan.Int(&smem) &&
            scan.Literal(",\"reg\":") && scan.Int(&reg) &&
            scan.Literal(",\"split_k\":") && scan.Int(&split_k) &&
            scan.Literal(",\"fusion\":") && scan.Int(&fusion) &&
            scan.Literal(",\"swizzle\":") && scan.Int(&swizzle) &&
            scan.Literal(",\"cycles\":") && scan.Number(&record.cycles) &&
            scan.Literal("}");
  if (!ok) return std::nullopt;
  record.config.smem_stages = static_cast<int>(smem);
  record.config.reg_stages = static_cast<int>(reg);
  record.config.split_k = static_cast<int>(split_k);
  record.config.inner_fusion = fusion != 0;
  record.config.swizzle = swizzle != 0;
  return record;
}

std::optional<StoredTrial> StoredTuning::Best() const {
  std::optional<StoredTrial> best;
  for (const StoredTrial& trial : trials) {
    if (!std::isfinite(trial.cycles)) continue;
    if (!best.has_value() || trial.cycles < best->cycles) best = trial;
  }
  return best;
}

TuningStore& TuningStore::Global() {
  static TuningStore* store = new TuningStore();  // leaked: outlives threads
  return *store;
}

void TuningStore::Put(StoredTuning tuning) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[tuning.op_key] = std::move(tuning);
}

std::optional<StoredTuning> TuningStore::Get(const std::string& op_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(op_key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::vector<StoredTuning> TuningStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StoredTuning> out;
  out.reserve(map_.size());
  for (const auto& [key, tuning] : map_) out.push_back(tuning);
  return out;
}

size_t TuningStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void TuningStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

void RecordLog::Append(TuningRecord record) {
  records_.push_back(std::move(record));
}

RecordLog RecordLog::Parse(const std::string& text, int* skipped) {
  RecordLog log;
  int bad = 0;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    std::optional<TuningRecord> record = FromJsonLine(line);
    if (record.has_value()) {
      log.records_.push_back(std::move(*record));
    } else {
      ++bad;
    }
  }
  if (skipped != nullptr) *skipped = bad;
  return log;
}

std::string RecordLog::Serialize() const {
  std::ostringstream out;
  for (const TuningRecord& record : records_) {
    out << ToJsonLine(record) << "\n";
  }
  return out.str();
}

std::optional<TuningRecord> RecordLog::Best(const std::string& op_key) const {
  std::optional<TuningRecord> best;
  for (const TuningRecord& record : records_) {
    if (record.op_key != op_key) continue;
    if (!best.has_value() || record.cycles < best->cycles) best = record;
  }
  return best;
}

}  // namespace tuner
}  // namespace alcop
