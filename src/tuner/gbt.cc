#include "tuner/gbt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/check.h"

namespace alcop {
namespace tuner {

namespace {

// One binary regression tree stored as a flat node array.
struct TreeNode {
  int feature = -1;       // -1 for leaves
  double threshold = 0.0;  // go left if x[feature] <= threshold
  double value = 0.0;      // leaf prediction
  int left = -1;
  int right = -1;
};

struct Tree {
  std::vector<TreeNode> nodes;

  double Predict(const std::vector<double>& x) const {
    int node = 0;
    while (nodes[static_cast<size_t>(node)].feature >= 0) {
      const TreeNode& n = nodes[static_cast<size_t>(node)];
      node = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
    }
    return nodes[static_cast<size_t>(node)].value;
  }
};

struct Dataset {
  const std::vector<std::vector<double>>* x;
  std::vector<double> residual;
  std::vector<double> weight;
};

// Weighted-squared-error leaf value with L2 regularization.
double LeafValue(const Dataset& data, const std::vector<int>& rows, double l2) {
  double sum = 0.0, wsum = 0.0;
  for (int row : rows) {
    sum += data.weight[static_cast<size_t>(row)] *
           data.residual[static_cast<size_t>(row)];
    wsum += data.weight[static_cast<size_t>(row)];
  }
  return sum / (wsum + l2);
}

double NodeLoss(const Dataset& data, const std::vector<int>& rows, double l2) {
  // -G^2/(H + lambda) up to constants; lower is better.
  double g = 0.0, h = 0.0;
  for (int row : rows) {
    g += data.weight[static_cast<size_t>(row)] *
         data.residual[static_cast<size_t>(row)];
    h += data.weight[static_cast<size_t>(row)];
  }
  return -(g * g) / (h + l2);
}

struct Split {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
  std::vector<int> left_rows, right_rows;
};

Split BestSplit(const Dataset& data, const std::vector<int>& rows,
                const GbtParams& params) {
  Split best;
  size_t num_features = (*data.x)[0].size();
  double parent_loss = NodeLoss(data, rows, params.l2);

  std::vector<int> sorted = rows;
  for (size_t f = 0; f < num_features; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return (*data.x)[static_cast<size_t>(a)][f] <
             (*data.x)[static_cast<size_t>(b)][f];
    });
    // Prefix sums of gradient/hessian over the sorted order.
    double gl = 0.0, hl = 0.0, g = 0.0, h = 0.0;
    for (int row : sorted) {
      g += data.weight[static_cast<size_t>(row)] *
           data.residual[static_cast<size_t>(row)];
      h += data.weight[static_cast<size_t>(row)];
    }
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      int row = sorted[i];
      gl += data.weight[static_cast<size_t>(row)] *
            data.residual[static_cast<size_t>(row)];
      hl += data.weight[static_cast<size_t>(row)];
      double x_here = (*data.x)[static_cast<size_t>(row)][f];
      double x_next = (*data.x)[static_cast<size_t>(sorted[i + 1])][f];
      if (x_here == x_next) continue;  // cannot split between equal values
      size_t left_count = i + 1;
      size_t right_count = sorted.size() - left_count;
      if (left_count < static_cast<size_t>(params.min_samples_leaf) ||
          right_count < static_cast<size_t>(params.min_samples_leaf)) {
        continue;
      }
      double gr = g - gl, hr = h - hl;
      double loss = -(gl * gl) / (hl + params.l2) - (gr * gr) / (hr + params.l2);
      double gain = parent_loss - loss;
      if (gain > best.gain + 1e-12) {
        best.gain = gain;
        best.feature = static_cast<int>(f);
        best.threshold = 0.5 * (x_here + x_next);
        best.left_rows.assign(sorted.begin(),
                              sorted.begin() + static_cast<long>(left_count));
        best.right_rows.assign(sorted.begin() + static_cast<long>(left_count),
                               sorted.end());
      }
    }
  }
  return best;
}

int BuildNode(Tree& tree, const Dataset& data, std::vector<int> rows, int depth,
              const GbtParams& params) {
  int index = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  if (depth >= params.max_depth ||
      rows.size() < static_cast<size_t>(2 * params.min_samples_leaf)) {
    tree.nodes[static_cast<size_t>(index)].value =
        LeafValue(data, rows, params.l2);
    return index;
  }
  Split split = BestSplit(data, rows, params);
  if (split.feature < 0) {
    tree.nodes[static_cast<size_t>(index)].value =
        LeafValue(data, rows, params.l2);
    return index;
  }
  tree.nodes[static_cast<size_t>(index)].feature = split.feature;
  tree.nodes[static_cast<size_t>(index)].threshold = split.threshold;
  int left = BuildNode(tree, data, std::move(split.left_rows), depth + 1, params);
  int right =
      BuildNode(tree, data, std::move(split.right_rows), depth + 1, params);
  tree.nodes[static_cast<size_t>(index)].left = left;
  tree.nodes[static_cast<size_t>(index)].right = right;
  return index;
}

}  // namespace

struct GbtModel::Impl {
  GbtParams params;
  double base = 0.0;
  std::vector<Tree> trees;
  bool fitted = false;
};

GbtModel::GbtModel(GbtParams params) : impl_(std::make_unique<Impl>()) {
  impl_->params = params;
}
GbtModel::~GbtModel() = default;
GbtModel::GbtModel(GbtModel&&) noexcept = default;
GbtModel& GbtModel::operator=(GbtModel&&) noexcept = default;

void GbtModel::Fit(const std::vector<std::vector<double>>& x,
                   const std::vector<double>& y,
                   const std::vector<double>& weights) {
  ALCOP_CHECK(!x.empty()) << "cannot fit GBT on empty data";
  ALCOP_CHECK_EQ(x.size(), y.size());
  for (const auto& row : x) {
    ALCOP_CHECK_EQ(row.size(), x[0].size()) << "ragged feature rows";
  }

  Dataset data;
  data.x = &x;
  data.weight = weights.empty() ? std::vector<double>(x.size(), 1.0) : weights;
  ALCOP_CHECK_EQ(data.weight.size(), x.size());

  // Base prediction: weighted mean.
  double sum = 0.0, wsum = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    sum += data.weight[i] * y[i];
    wsum += data.weight[i];
  }
  impl_->base = sum / wsum;
  impl_->trees.clear();

  data.residual.resize(y.size());
  std::vector<double> prediction(y.size(), impl_->base);
  std::vector<int> all_rows(y.size());
  std::iota(all_rows.begin(), all_rows.end(), 0);

  for (int round = 0; round < impl_->params.num_trees; ++round) {
    for (size_t i = 0; i < y.size(); ++i) {
      data.residual[i] = y[i] - prediction[i];
    }
    Tree tree;
    BuildNode(tree, data, all_rows, 0, impl_->params);
    // Stop early if the tree is a pure leaf contributing nothing.
    bool useful = tree.nodes.size() > 1 ||
                  std::abs(tree.nodes[0].value) > 1e-12;
    if (!useful) break;
    for (size_t i = 0; i < y.size(); ++i) {
      prediction[i] += impl_->params.learning_rate * tree.Predict(x[i]);
    }
    impl_->trees.push_back(std::move(tree));
  }
  impl_->fitted = true;
}

double GbtModel::Predict(const std::vector<double>& features) const {
  ALCOP_CHECK(impl_->fitted) << "GBT model queried before Fit";
  double out = impl_->base;
  for (const Tree& tree : impl_->trees) {
    out += impl_->params.learning_rate * tree.Predict(features);
  }
  return out;
}

bool GbtModel::IsFitted() const { return impl_->fitted; }

}  // namespace tuner
}  // namespace alcop
