#include "tuner/gbt.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "support/check.h"
#include "support/parallel.h"

namespace alcop {
namespace tuner {

namespace {

// Row count above which per-node split search fans out across features on
// the global pool. Below it the serial scan is faster than pool dispatch;
// either path computes identical splits, so results do not depend on the
// threshold or the thread count.
constexpr size_t kParallelSplitRows = 256;

// One binary regression tree stored as a flat node array.
struct TreeNode {
  int feature = -1;       // -1 for leaves
  double threshold = 0.0;  // go left if x[feature] <= threshold
  double value = 0.0;      // leaf prediction
  int left = -1;
  int right = -1;
};

struct Tree {
  std::vector<TreeNode> nodes;

  double Predict(const std::vector<double>& x) const {
    int node = 0;
    while (nodes[static_cast<size_t>(node)].feature >= 0) {
      const TreeNode& n = nodes[static_cast<size_t>(node)];
      node = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
    }
    return nodes[static_cast<size_t>(node)].value;
  }
};

struct Dataset {
  const std::vector<std::vector<double>>* x;
  std::vector<double> residual;
  std::vector<double> weight;
};

// A node's rows, kept sorted by every feature (exact-greedy with
// presorting, as in XGBoost). The root's orders are argsorts of x built
// once per Fit — ties broken by row index, so the order is a pure
// function of x — and children inherit them by stable partition, O(rows)
// per feature instead of a sort per node.
using FeatureOrders = std::vector<std::vector<int>>;

FeatureOrders BuildRootOrders(const Dataset& data, size_t num_features) {
  size_t n = data.x->size();
  FeatureOrders orders(num_features);
  support::ParallelFor(num_features, [&](size_t f) {
    std::vector<int>& order = orders[f];
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      double xa = (*data.x)[static_cast<size_t>(a)][f];
      double xb = (*data.x)[static_cast<size_t>(b)][f];
      if (xa != xb) return xa < xb;
      return a < b;
    });
  });
  return orders;
}

// Weighted-squared-error leaf value with L2 regularization.
double LeafValue(const Dataset& data, const std::vector<int>& rows, double l2) {
  double sum = 0.0, wsum = 0.0;
  for (int row : rows) {
    sum += data.weight[static_cast<size_t>(row)] *
           data.residual[static_cast<size_t>(row)];
    wsum += data.weight[static_cast<size_t>(row)];
  }
  return sum / (wsum + l2);
}

struct Split {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
  // The left child is the first `left_count` rows of the chosen feature's
  // sorted order (splits only fall between distinct values, so the prefix
  // is exactly the x <= threshold set).
  size_t left_count = 0;
};

// Best split along one feature: prefix scan of gradient/hessian over the
// node's rows in presorted feature order. Pure function of its inputs, so
// the per-feature searches run concurrently. `g`/`h` are the node totals
// (feature-independent, computed once by the caller).
Split BestSplitForFeature(const Dataset& data, const std::vector<int>& sorted,
                          size_t f, double parent_loss, double g, double h,
                          const GbtParams& params) {
  Split best;
  double gl = 0.0, hl = 0.0;
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    int row = sorted[i];
    gl += data.weight[static_cast<size_t>(row)] *
          data.residual[static_cast<size_t>(row)];
    hl += data.weight[static_cast<size_t>(row)];
    double x_here = (*data.x)[static_cast<size_t>(row)][f];
    double x_next = (*data.x)[static_cast<size_t>(sorted[i + 1])][f];
    if (x_here == x_next) continue;  // cannot split between equal values
    size_t left_count = i + 1;
    size_t right_count = sorted.size() - left_count;
    if (left_count < static_cast<size_t>(params.min_samples_leaf) ||
        right_count < static_cast<size_t>(params.min_samples_leaf)) {
      continue;
    }
    double gr = g - gl, hr = h - hl;
    double loss = -(gl * gl) / (hl + params.l2) - (gr * gr) / (hr + params.l2);
    double gain = parent_loss - loss;
    if (gain > best.gain + 1e-12) {
      best.gain = gain;
      best.feature = static_cast<int>(f);
      best.threshold = 0.5 * (x_here + x_next);
      best.left_count = left_count;
    }
  }
  return best;
}

Split BestSplit(const Dataset& data, const FeatureOrders& orders,
                const GbtParams& params) {
  size_t num_features = orders.size();
  size_t n_rows = orders[0].size();
  double g = 0.0, h = 0.0;
  for (int row : orders[0]) {
    g += data.weight[static_cast<size_t>(row)] *
         data.residual[static_cast<size_t>(row)];
    h += data.weight[static_cast<size_t>(row)];
  }
  double parent_loss = -(g * g) / (h + params.l2);

  std::vector<Split> candidates;
  auto search = [&](size_t f) {
    return BestSplitForFeature(data, orders[f], f, parent_loss, g, h, params);
  };
  if (n_rows >= kParallelSplitRows) {
    candidates = support::ParallelMap(num_features, search);
  } else {
    candidates.reserve(num_features);
    for (size_t f = 0; f < num_features; ++f) candidates.push_back(search(f));
  }

  // Reduce in feature order with the same epsilon rule the scan uses, so
  // ties break toward the lowest feature index for any thread count.
  Split best;
  for (size_t f = 0; f < num_features; ++f) {
    if (candidates[f].gain > best.gain + 1e-12) {
      best = candidates[f];
    }
  }
  return best;
}

// Recursive exact-greedy builder. `orders` holds this node's rows sorted
// by every feature; `in_left` is an n-row scratch bitmap (all zero on
// entry and exit) used to stably partition the orders for the children.
int BuildNode(Tree& tree, const Dataset& data, const FeatureOrders& orders,
              std::vector<uint8_t>& in_left, int depth,
              const GbtParams& params) {
  int index = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  size_t n_rows = orders[0].size();
  if (depth >= params.max_depth ||
      n_rows < static_cast<size_t>(2 * params.min_samples_leaf)) {
    tree.nodes[static_cast<size_t>(index)].value =
        LeafValue(data, orders[0], params.l2);
    return index;
  }
  Split split = BestSplit(data, orders, params);
  if (split.feature < 0) {
    tree.nodes[static_cast<size_t>(index)].value =
        LeafValue(data, orders[0], params.l2);
    return index;
  }
  tree.nodes[static_cast<size_t>(index)].feature = split.feature;
  tree.nodes[static_cast<size_t>(index)].threshold = split.threshold;

  const std::vector<int>& split_order =
      orders[static_cast<size_t>(split.feature)];
  for (size_t i = 0; i < split.left_count; ++i) {
    in_left[static_cast<size_t>(split_order[i])] = 1;
  }
  FeatureOrders left_orders(orders.size()), right_orders(orders.size());
  for (size_t f = 0; f < orders.size(); ++f) {
    left_orders[f].reserve(split.left_count);
    right_orders[f].reserve(n_rows - split.left_count);
    for (int row : orders[f]) {
      (in_left[static_cast<size_t>(row)] ? left_orders[f] : right_orders[f])
          .push_back(row);
    }
  }
  for (size_t i = 0; i < split.left_count; ++i) {
    in_left[static_cast<size_t>(split_order[i])] = 0;
  }

  int left = BuildNode(tree, data, left_orders, in_left, depth + 1, params);
  int right = BuildNode(tree, data, right_orders, in_left, depth + 1, params);
  tree.nodes[static_cast<size_t>(index)].left = left;
  tree.nodes[static_cast<size_t>(index)].right = right;
  return index;
}

}  // namespace

struct GbtModel::Impl {
  GbtParams params;
  double base = 0.0;
  std::vector<Tree> trees;
  bool fitted = false;
};

GbtModel::GbtModel(GbtParams params) : impl_(std::make_unique<Impl>()) {
  impl_->params = params;
}
GbtModel::~GbtModel() = default;
GbtModel::GbtModel(GbtModel&&) noexcept = default;
GbtModel& GbtModel::operator=(GbtModel&&) noexcept = default;

void GbtModel::Fit(const std::vector<std::vector<double>>& x,
                   const std::vector<double>& y,
                   const std::vector<double>& weights) {
  ALCOP_CHECK(!x.empty()) << "cannot fit GBT on empty data";
  ALCOP_CHECK_EQ(x.size(), y.size());
  for (const auto& row : x) {
    ALCOP_CHECK_EQ(row.size(), x[0].size()) << "ragged feature rows";
  }

  Dataset data;
  data.x = &x;
  data.weight = weights.empty() ? std::vector<double>(x.size(), 1.0) : weights;
  ALCOP_CHECK_EQ(data.weight.size(), x.size());

  // Base prediction: weighted mean.
  double sum = 0.0, wsum = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    sum += data.weight[i] * y[i];
    wsum += data.weight[i];
  }
  impl_->base = sum / wsum;
  impl_->trees.clear();

  data.residual.resize(y.size());
  std::vector<double> prediction(y.size(), impl_->base);
  // The argsorts depend only on x, so every boosting round reuses them.
  FeatureOrders root_orders = BuildRootOrders(data, x[0].size());
  std::vector<uint8_t> in_left(x.size(), 0);

  for (int round = 0; round < impl_->params.num_trees; ++round) {
    for (size_t i = 0; i < y.size(); ++i) {
      data.residual[i] = y[i] - prediction[i];
    }
    Tree tree;
    BuildNode(tree, data, root_orders, in_left, 0, impl_->params);
    // Stop early if the tree is a pure leaf contributing nothing.
    bool useful = tree.nodes.size() > 1 ||
                  std::abs(tree.nodes[0].value) > 1e-12;
    if (!useful) break;
    auto update = [&](size_t i) {
      prediction[i] += impl_->params.learning_rate * tree.Predict(x[i]);
    };
    if (y.size() >= kParallelSplitRows) {
      support::ParallelFor(y.size(), update);
    } else {
      for (size_t i = 0; i < y.size(); ++i) update(i);
    }
    impl_->trees.push_back(std::move(tree));
  }
  impl_->fitted = true;
}

double GbtModel::Predict(const std::vector<double>& features) const {
  ALCOP_CHECK(impl_->fitted) << "GBT model queried before Fit";
  double out = impl_->base;
  for (const Tree& tree : impl_->trees) {
    out += impl_->params.learning_rate * tree.Predict(features);
  }
  return out;
}

std::vector<double> GbtModel::PredictBatch(
    const std::vector<std::vector<double>>& rows) const {
  ALCOP_CHECK(impl_->fitted) << "GBT model queried before Fit";
  return support::ParallelMap(rows.size(),
                              [&](size_t i) { return Predict(rows[i]); });
}

bool GbtModel::IsFitted() const { return impl_->fitted; }

}  // namespace tuner
}  // namespace alcop
