// Tuning-record persistence, in the spirit of AutoTVM's log files: one
// JSON line per measured (operator, schedule, cycles) triple, so tuning
// results survive across runs and the best known schedule for a workload
// can be re-applied without re-searching.
#ifndef ALCOP_TUNER_RECORDS_H_
#define ALCOP_TUNER_RECORDS_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "schedule/schedule.h"

namespace alcop {
namespace tuner {

// Canonical workload key: family, batch and problem sizes (everything the
// schedule space depends on).
std::string OpKey(const schedule::GemmOp& op);

struct TuningRecord {
  std::string op_key;
  schedule::ScheduleConfig config;
  double cycles = 0.0;
};

// One-line JSON serialization, e.g.
// {"op":"matmul/1/512x768x3072","tb":[128,64,32],"warp":[64,32,16],
//  "smem":3,"reg":2,"split_k":1,"fusion":1,"swizzle":1,"cycles":27432}
std::string ToJsonLine(const TuningRecord& record);

// Parses one line; returns nullopt on malformed input (callers skip bad
// lines, as AutoTVM does, so a corrupt entry cannot poison a whole log).
std::optional<TuningRecord> FromJsonLine(const std::string& line);

// A completed search worth remembering: the workload, its canonical
// feature signature (CanonicalSignature — the warm-start distance key),
// and every measured trial in proposal order. Unlike TuningResult, the
// trials carry explicit configs rather than space indices, so a stored
// tuning is meaningful without the enumerated space that produced it —
// the durable form the persistence layer serializes.
struct StoredTrial {
  schedule::ScheduleConfig config;
  double cycles = 0.0;
};

struct StoredTuning {
  std::string op_key;
  schedule::GemmOp op;
  std::vector<double> signature;  // CanonicalSignature(op, spec)
  std::vector<StoredTrial> trials;

  // Best (lowest-cycles) trial; nullopt if nothing measured finite.
  std::optional<StoredTrial> Best() const;
};

// Process-wide store of completed tunings, keyed by OpKey: the warm-start
// neighbor index and the tuning half of the persistent cache. Thread-safe;
// deterministic iteration (ordered by key) so serialization and
// nearest-neighbor ties are stable.
class TuningStore {
 public:
  static TuningStore& Global();

  // Replaces any existing tuning for the same op_key (latest search wins).
  void Put(StoredTuning tuning);
  std::optional<StoredTuning> Get(const std::string& op_key) const;
  std::vector<StoredTuning> Snapshot() const;  // key-ordered copies
  size_t Size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, StoredTuning> map_;
};

// An append-only in-memory log with text round-tripping.
class RecordLog {
 public:
  void Append(TuningRecord record);

  // Parses a whole log (newline separated); malformed lines are skipped
  // and counted.
  static RecordLog Parse(const std::string& text, int* skipped = nullptr);

  std::string Serialize() const;

  // Best (lowest-cycles) record for a workload, if any.
  std::optional<TuningRecord> Best(const std::string& op_key) const;

  const std::vector<TuningRecord>& records() const { return records_; }

 private:
  std::vector<TuningRecord> records_;
};

}  // namespace tuner
}  // namespace alcop

#endif  // ALCOP_TUNER_RECORDS_H_
