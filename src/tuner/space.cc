#include "tuner/space.h"

namespace alcop {
namespace tuner {

SpaceOptions SpaceOptions::WithSplitK() {
  SpaceOptions options;
  options.split_k = {1, 2, 4, 8};
  return options;
}

SpaceOptions SpaceOptions::NoPipelining() {
  SpaceOptions options;
  options.smem_stages = {1};
  options.reg_stages = {1};
  return options;
}

SpaceOptions SpaceOptions::DoubleBufferingOnly() {
  SpaceOptions options;
  options.smem_stages = {1, 2};
  options.reg_stages = {1};
  return options;
}

SpaceOptions SpaceOptions::SharedPipeliningOnly() {
  SpaceOptions options;
  options.reg_stages = {1};
  return options;
}

SpaceOptions SpaceOptions::TwoStageSharedOnly() {
  SpaceOptions options;
  options.smem_stages = {1, 2};
  options.reg_stages = {1};
  return options;
}

std::vector<schedule::ScheduleConfig> EnumerateSpace(
    const schedule::GemmOp& op, const SpaceOptions& options) {
  std::vector<schedule::ScheduleConfig> space;
  for (int64_t tb_m : options.tb_m) {
    for (int64_t tb_n : options.tb_n) {
      for (int64_t tb_k : options.tb_k) {
        for (const auto& [split_m, split_n] : options.warp_splits) {
          if (tb_m % split_m != 0 || tb_n % split_n != 0) continue;
          for (int64_t warp_k : options.warp_k) {
            // Split-K only pays off when the spatial grid alone cannot
            // fill the device; prune it elsewhere to keep the space tight.
            int64_t spatial_grid =
                op.batch * (op.m / tb_m) * (op.n / tb_n);
            for (int split : options.split_k) {
              if (split > 1 && spatial_grid >= 4 * 108) continue;
              for (int smem : options.smem_stages) {
                for (int reg : options.reg_stages) {
                  schedule::ScheduleConfig config;
                  config.tile = {tb_m, tb_n, tb_k, tb_m / split_m,
                                 tb_n / split_n, warp_k};
                  config.smem_stages = smem;
                  config.reg_stages = reg;
                  config.split_k = split;
                  if (!schedule::ValidateConfig(op, config)) continue;
                  space.push_back(config);
                }
              }
            }
          }
        }
      }
    }
  }
  return space;
}

}  // namespace tuner
}  // namespace alcop
