#include "tuner/feature.h"

#include <cmath>
#include <limits>

#include "schedule/lower.h"
#include "support/check.h"
#include "target/occupancy.h"

namespace alcop {
namespace tuner {

namespace {
double Log2(double v) { return std::log2(v > 0 ? v : 1e-9); }
}  // namespace

std::vector<double> ExtractFeatures(const schedule::GemmOp& op,
                                    const schedule::ScheduleConfig& config,
                                    const target::GpuSpec& spec) {
  const schedule::TileConfig& t = config.tile;
  target::ThreadblockResources res = schedule::ComputeResources(op, config);
  target::Occupancy occ = target::ComputeOccupancy(spec, res);

  int64_t grid =
      op.batch * (op.m / t.tb_m) * (op.n / t.tb_n) * config.split_k;
  double warps = static_cast<double>(config.NumWarps());
  // Arithmetic intensity of one threadblock tile: FLOPs per byte moved
  // into shared memory.
  double tile_flops = 2.0 * static_cast<double>(t.tb_m) * t.tb_n * op.k;
  double tile_bytes = static_cast<double>(t.tb_m + t.tb_n) * op.k * 2.0;

  std::vector<double> features = {
      Log2(static_cast<double>(t.tb_m)),
      Log2(static_cast<double>(t.tb_n)),
      Log2(static_cast<double>(t.tb_k)),
      Log2(static_cast<double>(t.warp_m)),
      Log2(static_cast<double>(t.warp_n)),
      Log2(static_cast<double>(t.warp_k)),
      static_cast<double>(config.smem_stages),
      static_cast<double>(config.reg_stages),
      warps,
      static_cast<double>(occ.threadblocks_per_sm),
      Log2(static_cast<double>(grid)),
      Log2(static_cast<double>(grid) / spec.num_sms),
      Log2(tile_flops / tile_bytes),
      static_cast<double>(res.smem_bytes) /
          static_cast<double>(spec.smem_bytes_per_sm),
      static_cast<double>(res.reg_bytes) /
          static_cast<double>(spec.regfile_bytes_per_sm),
      Log2(static_cast<double>(op.k / (t.tb_k * config.split_k))),
      static_cast<double>(config.split_k),
  };
  ALCOP_CHECK_EQ(static_cast<int>(features.size()), kNumFeatures);
  return features;
}

std::vector<double> CanonicalSignature(const schedule::GemmOp& op,
                                       const target::GpuSpec& spec) {
  // The default-constructed config is the fixed reference point: every
  // workload is featurized under the same schedule, so signature distance
  // compares problem structure, never tuning choices. ExtractFeatures is
  // total (Log2 clamps non-positive terms), so this holds even for shapes
  // the reference tile does not divide.
  return ExtractFeatures(op, schedule::ScheduleConfig{}, spec);
}

double SignatureDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string> names = {
      "log2_tb_m",      "log2_tb_n",      "log2_tb_k",     "log2_warp_m",
      "log2_warp_n",    "log2_warp_k",    "smem_stages",   "reg_stages",
      "warps_per_tb",   "tb_per_sm",      "log2_grid",     "log2_grid_per_sm",
      "log2_intensity", "smem_pressure",  "reg_pressure",  "log2_ko_extent",
      "split_k",
  };
  return names;
}

}  // namespace tuner
}  // namespace alcop
