// Gradient-boosted regression trees: the from-scratch stand-in for
// XGBoost (see DESIGN.md substitution table). Squared-error boosting with
// exact greedy splits — entirely sufficient for the few-hundred-sample
// datasets schedule tuning produces.
#ifndef ALCOP_TUNER_GBT_H_
#define ALCOP_TUNER_GBT_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace alcop {
namespace tuner {

struct GbtParams {
  int num_trees = 80;
  int max_depth = 4;
  double learning_rate = 0.15;
  int min_samples_leaf = 2;
  // L2 regularization on leaf values (XGBoost's lambda).
  double l2 = 1.0;
};

class GbtModel {
 public:
  explicit GbtModel(GbtParams params = {});
  ~GbtModel();
  GbtModel(GbtModel&&) noexcept;
  GbtModel& operator=(GbtModel&&) noexcept;

  // Fits on rows `x` (equal-length feature vectors) with targets `y` and
  // optional per-sample weights. Refitting replaces the previous ensemble.
  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y,
           const std::vector<double>& weights = {});

  double Predict(const std::vector<double>& features) const;

  // Predicts every row concurrently on the global pool. Element i equals
  // Predict(rows[i]) exactly, for any thread count.
  std::vector<double> PredictBatch(
      const std::vector<std::vector<double>>& rows) const;

  bool IsFitted() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tuner
}  // namespace alcop

#endif  // ALCOP_TUNER_GBT_H_
