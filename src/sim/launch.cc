#include "sim/launch.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/detect.h"
#include "sim/desim.h"
#include "sim/trace.h"
#include "support/check.h"

namespace alcop {
namespace sim {

using schedule::GemmOp;
using schedule::LoweredKernel;
using schedule::ScheduleConfig;

CompiledKernel CompileKernel(const GemmOp& op, const ScheduleConfig& config,
                             const target::GpuSpec& spec,
                             schedule::InlineOrder inline_order) {
  ALCOP_TRACE_SCOPE("compile-kernel", "compiler");
  CompiledKernel compiled;
  schedule::Schedule sched(op, config, inline_order);
  compiled.detection = pipeline::AutoPipeline(sched, spec);
  compiled.kernel = schedule::LowerSchedule(sched);
  compiled.transformed =
      pipeline::ApplyPipelineTransform(compiled.kernel.stmt, config.inner_fusion);
  return compiled;
}

TrafficAnalysis AnalyzeTraffic(const GemmOp& op, const ScheduleConfig& config,
                               const target::GpuSpec& spec,
                               int threadblocks_per_sm) {
  TrafficAnalysis traffic;
  int64_t grid_m = op.m / config.tile.tb_m;
  int64_t grid_n = op.n / config.tile.tb_n;
  int64_t total = op.batch * grid_m * grid_n * config.split_k;
  int64_t k_per_split = op.k / config.split_k;
  int64_t batch_tbs = std::min<int64_t>(
      total, static_cast<int64_t>(threadblocks_per_sm) * spec.num_sms);
  traffic.batch_threadblocks = batch_tbs;

  // Threadblocks are dispatched over (batch, bm, bn); with CTA
  // rasterization (raster_block > 1, CUTLASS's threadblock swizzle) the
  // batch covers a raster_block-row column band instead of full rows,
  // balancing A-panel reuse (threadblocks sharing bm) against B-panel
  // reuse (threadblocks sharing bn) to shrink the LLC working set.
  double row_span = std::clamp<double>(config.raster_block, 1.0,
                                       static_cast<double>(grid_m));
  double col_span = std::clamp<double>(
      static_cast<double>(batch_tbs) / row_span, 1.0,
      static_cast<double>(std::max<int64_t>(grid_n, 1)));
  double reuse_a = std::min<double>(static_cast<double>(batch_tbs), col_span);
  double reuse_b =
      std::clamp<double>(static_cast<double>(batch_tbs) / col_span, 1.0,
                         static_cast<double>(grid_m));

  // Implicit-GEMM convolutions re-read overlapping input patches along the
  // reduction axis; the halo hits in LLC, improving A's effective reuse.
  if (op.family == schedule::OpFamily::kConv3x3) reuse_a *= 3.0;

  double a_panel_bytes = static_cast<double>(config.tile.tb_m) *
                         static_cast<double>(k_per_split) * 2.0;
  double b_panel_bytes = static_cast<double>(config.tile.tb_n) *
                         static_cast<double>(k_per_split) * 2.0;
  double distinct_a = static_cast<double>(batch_tbs) / reuse_a;
  double distinct_b = static_cast<double>(batch_tbs) / std::max(reuse_b, 1.0);
  traffic.working_set_bytes =
      distinct_a * a_panel_bytes + distinct_b * b_panel_bytes;

  traffic.a_dram_fraction = 1.0 / reuse_a;
  traffic.b_dram_fraction = 1.0 / std::max(reuse_b, 1.0);

  // When the batch working set exceeds the LLC, the reuse hits degrade
  // proportionally to how much of the set the cache can hold.
  if (traffic.working_set_bytes > static_cast<double>(spec.llc_bytes)) {
    double keep = static_cast<double>(spec.llc_bytes) / traffic.working_set_bytes;
    traffic.a_dram_fraction = 1.0 - (1.0 - traffic.a_dram_fraction) * keep;
    traffic.b_dram_fraction = 1.0 - (1.0 - traffic.b_dram_fraction) * keep;
  }
  return traffic;
}

namespace {

// Shared setup of a discrete-event run: occupancy, the per-warp trace,
// and the simulation parameters (group metadata, traffic fractions).
struct DesimSetup {
  bool feasible = false;
  std::string reason;
  target::Occupancy occ;
  ThreadblockTrace trace;
  DesimParams params;
};

DesimSetup PrepareDesim(const CompiledKernel& compiled,
                        const target::GpuSpec& spec) {
  const LoweredKernel& kernel = compiled.kernel;
  DesimSetup setup;

  target::ThreadblockResources res =
      schedule::ComputeResources(kernel.op, kernel.config);
  setup.occ = target::ComputeOccupancy(spec, res);
  if (setup.occ.threadblocks_per_sm == 0) {
    setup.reason = std::string("threadblock does not fit: ") +
                   target::LimiterName(setup.occ.limiter);
    return setup;
  }

  // Build the per-warp event trace once; it is identical for every
  // threadblock.
  setup.trace = BuildTrace(compiled.transformed.stmt, kernel.num_warps);

  setup.params.swizzle = kernel.config.swizzle;
  setup.params.blocking_async = !kernel.config.async_copies;
  for (const pipeline::PipelineGroupInfo& group : compiled.transformed.groups) {
    ALCOP_CHECK_EQ(group.id, static_cast<int>(setup.params.groups.size()))
        << "pipeline group ids must be dense";
    setup.params.groups.push_back(
        {group.stages, group.scope == ir::MemScope::kShared});
  }

  TrafficAnalysis traffic = AnalyzeTraffic(kernel.op, kernel.config, spec,
                                           setup.occ.threadblocks_per_sm);
  setup.params.dram_fraction[kernel.a.get()] = traffic.a_dram_fraction;
  if (kernel.a_ew != nullptr) {
    setup.params.dram_fraction[kernel.a_ew.get()] = traffic.a_dram_fraction;
  }
  setup.params.dram_fraction[kernel.b.get()] = traffic.b_dram_fraction;
  setup.feasible = true;
  return setup;
}

}  // namespace

KernelTiming InterpretKernel(const CompiledKernel& compiled,
                             const target::GpuSpec& spec, KernelPmu* pmu) {
  ALCOP_TRACE_SCOPE("interpret", "sim");
  const LoweredKernel& kernel = compiled.kernel;
  KernelTiming timing;

  DesimSetup setup = PrepareDesim(compiled, spec);
  if (!setup.feasible) {
    timing.reason = setup.reason;
    return timing;
  }
  const target::Occupancy& occ = setup.occ;
  const ThreadblockTrace& trace = setup.trace;
  DesimParams& params = setup.params;
  timing.threadblocks_per_sm = occ.threadblocks_per_sm;

  int64_t total_tbs = kernel.TotalThreadblocks();
  timing.batches = target::NumThreadblockBatches(spec, occ, total_tbs);

  // Simulates a wave of `tbs` threadblocks: each active SM hosts up to the
  // occupancy complement; small waves leave SMs idle, and the active SMs
  // then receive a larger slice of the GPU-wide bandwidth.
  auto simulate_wave = [&](int64_t tbs, PmuCounters* wave_pmu) {
    DesimParams wave = params;
    wave.threadblocks = static_cast<int>(std::min<int64_t>(
        occ.threadblocks_per_sm,
        (tbs + spec.num_sms - 1) / spec.num_sms));
    wave.active_sms = static_cast<int>(std::min<int64_t>(
        spec.num_sms, (tbs + wave.threadblocks - 1) / wave.threadblocks));
    wave.pmu = wave_pmu;
    return SimulateBatch(trace, spec, wave);
  };

  int64_t per_batch =
      static_cast<int64_t>(occ.threadblocks_per_sm) * spec.num_sms;
  PmuCounters full_pmu;
  PmuCounters rem_pmu;
  bool have_rem = false;
  double full_batch = simulate_wave(std::min(total_tbs, per_batch),
                                    pmu != nullptr ? &full_pmu : nullptr);
  timing.batch_cycles = full_batch;

  double cycles = spec.launch_overhead_cycles;
  int64_t full_batches = total_tbs / per_batch;
  int64_t remainder = total_tbs - full_batches * per_batch;
  cycles += static_cast<double>(full_batches) * full_batch;
  if (remainder > 0) {
    cycles += full_batches == 0
                  ? full_batch
                  : simulate_wave(remainder,
                                  pmu != nullptr ? &rem_pmu : nullptr);
    have_rem = full_batches > 0;
  }
  if (pmu != nullptr) {
    ScaleKernelPmu(pmu, full_pmu, have_rem ? &rem_pmu : nullptr,
                   full_batches);
    pmu->achieved_occupancy =
        static_cast<double>(occ.threadblocks_per_sm * kernel.num_warps) /
        static_cast<double>(spec.max_warps_per_sm);
  }

  // Standalone elementwise pass (InlineOrder::kNone): a memory-bound
  // kernel reading and writing the full A tensor.
  if (kernel.has_standalone_ewise) {
    double ew_bytes =
        2.0 * static_cast<double>(kernel.op.batch * kernel.op.m * kernel.op.k) * 2.0;
    cycles += spec.launch_overhead_cycles + ew_bytes / spec.dram_bw_bytes_per_cycle;
  }

  // Split-K reduction pass: read all fp32 workspace slices, write fp16 C.
  if (kernel.grid_k > 1) {
    double out_elems =
        static_cast<double>(kernel.op.batch * kernel.op.m * kernel.op.n);
    double reduce_bytes =
        out_elems * (4.0 * static_cast<double>(kernel.grid_k) + 2.0);
    cycles +=
        spec.launch_overhead_cycles + reduce_bytes / spec.dram_bw_bytes_per_cycle;
  }

  timing.feasible = true;
  timing.cycles = cycles;
  timing.microseconds = spec.CyclesToUs(cycles);
  timing.tflops =
      static_cast<double>(kernel.op.Flops()) / (timing.microseconds * 1e6);
  return timing;
}

BatchTimeline CaptureTimelineInterpreted(const CompiledKernel& compiled,
                                         const target::GpuSpec& spec) {
  DesimSetup setup = PrepareDesim(compiled, spec);
  ALCOP_CHECK(setup.feasible) << "cannot capture timeline: " << setup.reason;

  BatchTimeline out;
  out.num_warps = compiled.kernel.num_warps;
  int64_t total = compiled.kernel.TotalThreadblocks();
  out.threadblocks = static_cast<int>(std::min<int64_t>(
      setup.occ.threadblocks_per_sm,
      (total + spec.num_sms - 1) / spec.num_sms));
  setup.params.threadblocks = out.threadblocks;
  setup.params.active_sms = static_cast<int>(std::min<int64_t>(
      spec.num_sms, (total + out.threadblocks - 1) / out.threadblocks));
  setup.params.timeline = &out.timeline;
  SimulateBatch(setup.trace, spec, setup.params);
  return out;
}

SimProgram BuildSimProgram(const CompiledKernel& compiled,
                           const target::GpuSpec& spec) {
  ALCOP_TRACE_SCOPE("sim-compile", "sim");
  const LoweredKernel& kernel = compiled.kernel;
  SimProgram out;

  target::ThreadblockResources res =
      schedule::ComputeResources(kernel.op, kernel.config);
  target::Occupancy occ = target::ComputeOccupancy(spec, res);
  if (occ.threadblocks_per_sm == 0) {
    out.reason = std::string("threadblock does not fit: ") +
                 target::LimiterName(occ.limiter);
    return out;
  }

  TraceCompileOptions options;
  options.swizzle = kernel.config.swizzle;
  options.blocking_async = !kernel.config.async_copies;
  for (const pipeline::PipelineGroupInfo& group : compiled.transformed.groups) {
    ALCOP_CHECK_EQ(group.id, static_cast<int>(options.groups.size()))
        << "pipeline group ids must be dense";
    options.groups.push_back(
        {group.stages, group.scope == ir::MemScope::kShared, 0});
  }
  TrafficAnalysis traffic = AnalyzeTraffic(kernel.op, kernel.config, spec,
                                           occ.threadblocks_per_sm);
  options.dram_fraction[kernel.a.get()] = traffic.a_dram_fraction;
  if (kernel.a_ew != nullptr) {
    options.dram_fraction[kernel.a_ew.get()] = traffic.a_dram_fraction;
  }
  options.dram_fraction[kernel.b.get()] = traffic.b_dram_fraction;

  out.program = CompileTraceProgram(compiled.transformed.stmt,
                                    kernel.num_warps, spec, options);
  out.num_warps = kernel.num_warps;
  out.threadblocks_per_sm = occ.threadblocks_per_sm;
  out.num_sms = spec.num_sms;
  out.total_threadblocks = kernel.TotalThreadblocks();
  out.batches =
      target::NumThreadblockBatches(spec, occ, out.total_threadblocks);
  out.max_warps_per_sm = spec.max_warps_per_sm;
  out.llc_bw_bytes_per_cycle = spec.llc_bw_bytes_per_cycle;
  out.dram_bw_bytes_per_cycle = spec.dram_bw_bytes_per_cycle;
  out.dram_write_bw_bytes_per_cycle = spec.dram_write_bw_bytes_per_cycle;
  out.launch_overhead_cycles = spec.launch_overhead_cycles;
  if (kernel.has_standalone_ewise) {
    out.has_ewise = true;
    double ew_bytes =
        2.0 * static_cast<double>(kernel.op.batch * kernel.op.m * kernel.op.k) * 2.0;
    out.ewise_cycles =
        spec.launch_overhead_cycles + ew_bytes / spec.dram_bw_bytes_per_cycle;
  }
  if (kernel.grid_k > 1) {
    out.has_splitk = true;
    double out_elems =
        static_cast<double>(kernel.op.batch * kernel.op.m * kernel.op.n);
    double reduce_bytes =
        out_elems * (4.0 * static_cast<double>(kernel.grid_k) + 2.0);
    out.splitk_cycles =
        spec.launch_overhead_cycles + reduce_bytes / spec.dram_bw_bytes_per_cycle;
  }
  out.clock_ghz = spec.clock_ghz;
  out.flops = kernel.op.Flops();
  out.feasible = true;
  return out;
}

SimProgram CompileSimProgram(const GemmOp& op, const ScheduleConfig& config,
                             const target::GpuSpec& spec,
                             schedule::InlineOrder inline_order) {
  std::string why;
  if (!schedule::ValidateConfig(op, config, &why)) {
    SimProgram out;
    out.reason = "invalid schedule: " + why;
    return out;
  }
  return BuildSimProgram(CompileKernel(op, config, spec, inline_order), spec);
}

namespace {

// Wave geometry + bandwidth slices for `tbs` threadblocks — the same
// expressions the interpreter path evaluates, for bit-identical results.
ReplayWave WaveFor(const SimProgram& program, int64_t tbs) {
  ReplayWave wave;
  wave.threadblocks = static_cast<int>(std::min<int64_t>(
      program.threadblocks_per_sm,
      (tbs + program.num_sms - 1) / program.num_sms));
  int active_sms = static_cast<int>(std::min<int64_t>(
      program.num_sms, (tbs + wave.threadblocks - 1) / wave.threadblocks));
  wave.llc_rate = program.llc_bw_bytes_per_cycle / active_sms;
  wave.dram_rate = program.dram_bw_bytes_per_cycle / active_sms;
  wave.dram_write_rate = program.dram_write_bw_bytes_per_cycle / active_sms;
  return wave;
}

}  // namespace

KernelTiming ReplaySimProgram(const SimProgram& program, ReplayArena* arena,
                              KernelPmu* pmu) {
  // The hot measurement path: with tracing disabled this scope is one
  // relaxed atomic load (zero-allocation warm replay is gated in
  // tests/obs_test.cc); enabled, it records host wall time but never
  // touches simulated cycles.
  ALCOP_TRACE_SCOPE("replay", "sim");
  KernelTiming timing;
  if (!program.feasible) {
    timing.reason = program.reason;
    return timing;
  }
  timing.threadblocks_per_sm = program.threadblocks_per_sm;
  timing.batches = program.batches;

  int64_t total_tbs = program.total_threadblocks;
  int64_t per_batch = static_cast<int64_t>(program.threadblocks_per_sm) *
                      program.num_sms;
  auto replay_wave = [&](int64_t tbs, PmuCounters* wave_pmu) {
    return ReplayBatch(program.program, WaveFor(program, tbs), arena,
                       nullptr, wave_pmu);
  };
  PmuCounters full_pmu;
  PmuCounters rem_pmu;
  bool have_rem = false;
  double full_batch = replay_wave(std::min(total_tbs, per_batch),
                                  pmu != nullptr ? &full_pmu : nullptr);
  timing.batch_cycles = full_batch;

  double cycles = program.launch_overhead_cycles;
  int64_t full_batches = total_tbs / per_batch;
  int64_t remainder = total_tbs - full_batches * per_batch;
  cycles += static_cast<double>(full_batches) * full_batch;
  if (remainder > 0) {
    cycles += full_batches == 0
                  ? full_batch
                  : replay_wave(remainder,
                                pmu != nullptr ? &rem_pmu : nullptr);
    have_rem = full_batches > 0;
  }
  if (pmu != nullptr) {
    ScaleKernelPmu(pmu, full_pmu, have_rem ? &rem_pmu : nullptr,
                   full_batches);
    pmu->achieved_occupancy =
        static_cast<double>(program.threadblocks_per_sm * program.num_warps) /
        static_cast<double>(program.max_warps_per_sm);
  }
  if (program.has_ewise) cycles += program.ewise_cycles;
  if (program.has_splitk) cycles += program.splitk_cycles;

  timing.feasible = true;
  timing.cycles = cycles;
  timing.microseconds = cycles / (program.clock_ghz * 1e3);
  timing.tflops =
      static_cast<double>(program.flops) / (timing.microseconds * 1e6);
  return timing;
}

std::vector<KernelTiming> ReplaySimProgramBatch(
    const std::vector<const SimProgram*>& programs, ReplayArena* arena) {
  // Replay order groups by (skeleton identity, wave size) so each group
  // pays the arena's layout fill once; per-program results do not depend
  // on replay order (the arena is reset per replay), so reordering is
  // observable only as throughput.
  std::vector<size_t> order(programs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const SimProgram* pa = programs[a];
    const SimProgram* pb = programs[b];
    const MicroOpSkeleton* sa = pa->program.skeleton.get();
    const MicroOpSkeleton* sb = pb->program.skeleton.get();
    if (sa != sb) return sa < sb;
    return pa->threadblocks_per_sm < pb->threadblocks_per_sm;
  });
  std::vector<KernelTiming> results(programs.size());
  for (size_t idx : order) {
    results[idx] = ReplaySimProgram(*programs[idx], arena);
  }
  return results;
}

BatchTimeline ReplayTimeline(const SimProgram& program, ReplayArena* arena) {
  ALCOP_CHECK(program.feasible)
      << "cannot capture timeline: " << program.reason;
  BatchTimeline out;
  out.num_warps = program.num_warps;
  ReplayWave wave = WaveFor(program, program.total_threadblocks);
  out.threadblocks = wave.threadblocks;
  ReplayBatch(program.program, wave, arena, &out.timeline);
  return out;
}

namespace {

// Published capacity of one thread's pooled arena. The replay thread
// stores into its own atomic after each run; the `sim.arena.bytes`
// callback gauge sums the slots at dump time — so the gauge never reads
// ReplayArena's vectors concurrently with a replay.
struct ArenaGauge {
  std::atomic<int64_t> bytes{0};
};

std::mutex g_arena_gauges_mu;
std::vector<std::shared_ptr<ArenaGauge>>& ArenaGauges() {
  static std::vector<std::shared_ptr<ArenaGauge>> gauges;
  return gauges;
}

// One per simulation thread: the pooled arena plus its published-bytes
// slot. Registration of the callback gauge happens once, on the first
// thread that simulates.
struct ThreadArenaHolder {
  ReplayArena arena;
  std::shared_ptr<ArenaGauge> gauge = std::make_shared<ArenaGauge>();

  ThreadArenaHolder() {
    {
      std::lock_guard<std::mutex> lock(g_arena_gauges_mu);
      ArenaGauges().push_back(gauge);
    }
    static std::once_flag registered;
    std::call_once(registered, [] {
      obs::Registry::Global().RegisterCallback("sim.arena.bytes", [] {
        double total = 0.0;
        std::lock_guard<std::mutex> lock(g_arena_gauges_mu);
        for (const std::shared_ptr<ArenaGauge>& g : ArenaGauges()) {
          total += static_cast<double>(g->bytes.load(std::memory_order_relaxed));
        }
        return total;
      },
      "Bytes currently held by live replay arenas across threads.");
    });
  }
  ~ThreadArenaHolder() {
    // The shared_ptr slot outlives the thread; zero it so exited threads
    // stop contributing resident bytes.
    gauge->bytes.store(0, std::memory_order_relaxed);
  }

  void Update() {
    gauge->bytes.store(static_cast<int64_t>(arena.CapacityBytes()),
                       std::memory_order_relaxed);
  }
};

ThreadArenaHolder& ThreadLocalArena() {
  thread_local ThreadArenaHolder holder;
  return holder;
}

}  // namespace

KernelTiming SimulateKernel(const CompiledKernel& compiled,
                            const target::GpuSpec& spec) {
  SimProgram program = BuildSimProgram(compiled, spec);
  ThreadArenaHolder& holder = ThreadLocalArena();
  KernelTiming timing = ReplaySimProgram(program, &holder.arena);
  holder.Update();
  return timing;
}

KernelTiming CompileAndSimulate(const GemmOp& op, const ScheduleConfig& config,
                                const target::GpuSpec& spec,
                                schedule::InlineOrder inline_order) {
  SimProgram program = CompileSimProgram(op, config, spec, inline_order);
  ThreadArenaHolder& holder = ThreadLocalArena();
  KernelTiming timing = ReplaySimProgram(program, &holder.arena);
  holder.Update();
  return timing;
}

BatchTimeline CaptureTimeline(const CompiledKernel& compiled,
                              const target::GpuSpec& spec) {
  SimProgram program = BuildSimProgram(compiled, spec);
  ThreadArenaHolder& holder = ThreadLocalArena();
  BatchTimeline timeline = ReplayTimeline(program, &holder.arena);
  holder.Update();
  return timeline;
}

}  // namespace sim
}  // namespace alcop
