// Kernel-level simulation: occupancy, threadblock batching, the LLC
// working-set analysis, and the end-to-end compile+simulate helper that
// the tuner and benchmarks use as their "measurement".
#ifndef ALCOP_SIM_LAUNCH_H_
#define ALCOP_SIM_LAUNCH_H_

#include <string>
#include <vector>

#include "pipeline/detect.h"
#include "pipeline/transform.h"
#include "schedule/lower.h"
#include "sim/desim.h"
#include "schedule/schedule.h"
#include "target/gpu_spec.h"
#include "target/occupancy.h"

namespace alcop {
namespace sim {

struct KernelTiming {
  bool feasible = false;
  std::string reason;  // why infeasible
  double cycles = 0.0;
  double microseconds = 0.0;
  double tflops = 0.0;  // achieved throughput
  int threadblocks_per_sm = 0;
  int64_t batches = 0;
  double batch_cycles = 0.0;  // steady-state full-batch makespan
};

// A fully compiled kernel: lowering plus pipeline transformation.
struct CompiledKernel {
  schedule::LoweredKernel kernel;
  pipeline::TransformResult transformed;
  pipeline::DetectionResult detection;
};

// schedule -> lower -> detect/auto-pipeline -> transform.
CompiledKernel CompileKernel(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec,
    schedule::InlineOrder inline_order =
        schedule::InlineOrder::kAfterPipelining);

// ---------------------------------------------------------------------------
// Two-phase measurement pipeline.
//
// Phase 1 (BuildSimProgram / CompileSimProgram) pays the per-schedule work
// once: occupancy, the LLC working-set analysis, and one walk of the
// lowered TIR that compiles it into a flat micro-op program (sim/compile.h)
// with every wave-independent operand pre-resolved. Phase 2
// (ReplaySimProgram) replays that program through the event-pool core for
// each threadblock wave — no IR, no spec, no allocation when the caller's
// ReplayArena is warm. The classic single-phase entry points below are thin
// wrappers over these two.
// ---------------------------------------------------------------------------

// A schedule compiled for measurement: the micro-op program plus every
// launch-level constant replay needs, baked so phase 2 never touches the
// kernel IR or the device spec again.
struct SimProgram {
  bool feasible = false;
  std::string reason;  // why infeasible (validation or occupancy)

  MicroOpProgram program;
  int num_warps = 1;

  // Launch geometry.
  int threadblocks_per_sm = 0;
  int num_sms = 0;
  int64_t total_threadblocks = 0;
  int64_t batches = 0;
  // Spec's per-SM warp capacity (for the PMU's achieved-occupancy ratio).
  int max_warps_per_sm = 64;

  // GPU-wide bandwidths; replay divides by the wave's active SM count.
  double llc_bw_bytes_per_cycle = 1.0;
  double dram_bw_bytes_per_cycle = 1.0;
  double dram_write_bw_bytes_per_cycle = 1.0;

  // Launch-level cycle constants (each already includes its own launch
  // overhead where applicable) and the clock for cycle -> time conversion.
  double launch_overhead_cycles = 0.0;
  bool has_ewise = false;
  double ewise_cycles = 0.0;  // standalone elementwise pass
  bool has_splitk = false;
  double splitk_cycles = 0.0;  // split-K reduction pass
  double clock_ghz = 1.0;
  int64_t flops = 0;

  // Heap footprint (for the program-cache byte counters).
  int64_t MemoryBytes() const {
    return program.MemoryBytes() +
           static_cast<int64_t>(reason.capacity() + sizeof(SimProgram));
  }
};

// Phase 1 from an already compiled kernel.
SimProgram BuildSimProgram(const CompiledKernel& compiled,
                           const target::GpuSpec& spec);

// Phase 1 from scratch: validate + CompileKernel + BuildSimProgram.
// Returns an infeasible program (instead of throwing) when the config does
// not validate or does not fit the device.
SimProgram CompileSimProgram(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec,
    schedule::InlineOrder inline_order =
        schedule::InlineOrder::kAfterPipelining);

// Phase 2: replays every threadblock wave of the launch through `arena`
// (pooled across calls; see ReplayArena). Bit-identical to the
// interpreter-based InterpretKernel. When `pmu` is non-null, per-kernel
// performance counters are collected during the same replay (sim/pmu.h) —
// the totals scale the replayed waves by the launch's batch structure and
// are bit-identical to InterpretKernel's.
KernelTiming ReplaySimProgram(const SimProgram& program, ReplayArena* arena,
                              KernelPmu* pmu = nullptr);

// Batched phase 2: replays many compiled programs through one arena,
// ordered so that programs sharing a skeleton at the same wave size run
// back-to-back — within such a run the arena's static layout tables are
// filled once and reused (ReplayArena::layout_skeleton), which is where a
// structure-sharing sweep's replay throughput comes from. Results are
// returned in input order and are bit-identical to calling
// ReplaySimProgram on each program individually, in any order.
std::vector<KernelTiming> ReplaySimProgramBatch(
    const std::vector<const SimProgram*>& programs, ReplayArena* arena);

// Simulates a compiled kernel on the device (phase 1 + phase 2 with a
// thread-local arena).
KernelTiming SimulateKernel(const CompiledKernel& compiled,
                            const target::GpuSpec& spec);

// Convenience: compile and simulate in one call. Returns an infeasible
// timing (instead of throwing) when the config does not validate or does
// not fit the device.
KernelTiming CompileAndSimulate(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec,
    schedule::InlineOrder inline_order =
        schedule::InlineOrder::kAfterPipelining);

// Reference path: simulates by interpreting the AST-derived event trace
// (sim/trace.h). Kept as the differential-testing oracle for the bytecode
// replay; must produce bit-identical KernelTiming — and, when `pmu` is
// non-null, a bit-identical KernelPmu.
KernelTiming InterpretKernel(const CompiledKernel& compiled,
                             const target::GpuSpec& spec,
                             KernelPmu* pmu = nullptr);

// Records the execution timeline of one steady-state threadblock batch
// for visualization (see timeline.h).
struct BatchTimeline {
  Timeline timeline;
  int num_warps = 1;
  int threadblocks = 1;
};
BatchTimeline CaptureTimeline(const CompiledKernel& compiled,
                              const target::GpuSpec& spec);

// Timeline of one steady-state batch via the replay core (phase 2 only).
BatchTimeline ReplayTimeline(const SimProgram& program, ReplayArena* arena);

// Timeline via the reference interpreter (differential-testing oracle).
BatchTimeline CaptureTimelineInterpreted(const CompiledKernel& compiled,
                                         const target::GpuSpec& spec);

// LLC working-set analysis of one threadblock-batch: the fraction of each
// input tensor's loads that must come from DRAM (1/reuse, degraded when
// the batch working set exceeds the LLC). Exposed for tests and for the
// analytical model, which shares this estimate.
struct TrafficAnalysis {
  double a_dram_fraction = 1.0;
  double b_dram_fraction = 1.0;
  int64_t batch_threadblocks = 0;
  double working_set_bytes = 0.0;
};
TrafficAnalysis AnalyzeTraffic(const schedule::GemmOp& op,
                               const schedule::ScheduleConfig& config,
                               const target::GpuSpec& spec,
                               int threadblocks_per_sm);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_LAUNCH_H_
