// Kernel-level simulation: occupancy, threadblock batching, the LLC
// working-set analysis, and the end-to-end compile+simulate helper that
// the tuner and benchmarks use as their "measurement".
#ifndef ALCOP_SIM_LAUNCH_H_
#define ALCOP_SIM_LAUNCH_H_

#include <string>

#include "pipeline/detect.h"
#include "pipeline/transform.h"
#include "schedule/lower.h"
#include "sim/desim.h"
#include "schedule/schedule.h"
#include "target/gpu_spec.h"
#include "target/occupancy.h"

namespace alcop {
namespace sim {

struct KernelTiming {
  bool feasible = false;
  std::string reason;  // why infeasible
  double cycles = 0.0;
  double microseconds = 0.0;
  double tflops = 0.0;  // achieved throughput
  int threadblocks_per_sm = 0;
  int64_t batches = 0;
  double batch_cycles = 0.0;  // steady-state full-batch makespan
};

// A fully compiled kernel: lowering plus pipeline transformation.
struct CompiledKernel {
  schedule::LoweredKernel kernel;
  pipeline::TransformResult transformed;
  pipeline::DetectionResult detection;
};

// schedule -> lower -> detect/auto-pipeline -> transform.
CompiledKernel CompileKernel(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec,
    schedule::InlineOrder inline_order =
        schedule::InlineOrder::kAfterPipelining);

// Simulates a compiled kernel on the device.
KernelTiming SimulateKernel(const CompiledKernel& compiled,
                            const target::GpuSpec& spec);

// Convenience: compile and simulate in one call. Returns an infeasible
// timing (instead of throwing) when the config does not validate or does
// not fit the device.
KernelTiming CompileAndSimulate(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec,
    schedule::InlineOrder inline_order =
        schedule::InlineOrder::kAfterPipelining);

// Records the execution timeline of one steady-state threadblock batch
// for visualization (see timeline.h).
struct BatchTimeline {
  Timeline timeline;
  int num_warps = 1;
  int threadblocks = 1;
};
BatchTimeline CaptureTimeline(const CompiledKernel& compiled,
                              const target::GpuSpec& spec);

// LLC working-set analysis of one threadblock-batch: the fraction of each
// input tensor's loads that must come from DRAM (1/reuse, degraded when
// the batch working set exceeds the LLC). Exposed for tests and for the
// analytical model, which shares this estimate.
struct TrafficAnalysis {
  double a_dram_fraction = 1.0;
  double b_dram_fraction = 1.0;
  int64_t batch_threadblocks = 0;
  double working_set_bytes = 0.0;
};
TrafficAnalysis AnalyzeTraffic(const schedule::GemmOp& op,
                               const schedule::ScheduleConfig& config,
                               const target::GpuSpec& spec,
                               int threadblocks_per_sm);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_LAUNCH_H_
