// Discrete-event simulation of one SM executing a batch of resident
// threadblocks (the paper's threadblock-batch).
//
// Every warp of every resident threadblock is a stream replaying the
// threadblock trace. Streams contend for the SM's FIFO resources — the
// tensor-core pipe, the shared-memory (LDS) pipe, and the SM's share of
// LLC and DRAM bandwidth — and synchronize through threadblock barriers
// and the pipeline primitives:
//   - an asynchronous copy costs only issue time on its warp; its transfer
//     completes in the background on the memory servers;
//   - producer_commit seals a commit group; the group is complete when all
//     participating warps committed and every transfer landed;
//   - consumer_wait blocks a warp until group (cursor + wait_ahead)
//     completes;
//   - producer_acquire enforces the stage capacity: a warp may not reuse a
//     slot until every warp of the scope released it (this bounds warp
//     skew to the pipeline depth, as mbarriers do on hardware).
//
// This is deliberately more detailed than the Table-I analytical model —
// warm-up, drain, issue serialization, partial batches and bank-conflict
// penalties all emerge here — so that the model-accuracy experiment
// (Fig. 12) measures a real gap.
#ifndef ALCOP_SIM_DESIM_H_
#define ALCOP_SIM_DESIM_H_

#include <unordered_map>
#include <vector>

#include "sim/timeline.h"
#include "sim/trace.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace sim {

struct GroupMeta {
  int64_t stages = 1;
  bool tb_scope = true;  // shared-memory scope: all warps participate
};

struct DesimParams {
  int threadblocks = 1;  // resident threadblocks on the SM
  bool swizzle = true;
  // TVM-DB modeling: pipeline copies stall their warp like ordinary loads
  // (double buffering without cp.async hardware).
  bool blocking_async = false;
  // SMs actually hosting threadblocks this batch: small grids leave SMs
  // idle, and the active ones receive a proportionally larger slice of the
  // GPU-wide LLC/DRAM bandwidth.
  int active_sms = 0;  // 0 -> spec.num_sms
  std::vector<GroupMeta> groups;  // indexed by pipeline group id
  // Fraction of each global tensor's loads that miss in LLC and pay DRAM
  // bandwidth (from the launch-level working-set analysis). Default 1.0.
  std::unordered_map<const ir::BufferNode*, double> dram_fraction;
  // When non-null, per-warp execution spans are recorded here (see
  // timeline.h) for visualization.
  Timeline* timeline = nullptr;
};

// Simulates one batch; returns the makespan in cycles.
double SimulateBatch(const ThreadblockTrace& trace,
                     const target::GpuSpec& spec, const DesimParams& params);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_DESIM_H_
