// Discrete-event simulation of one SM executing a batch of resident
// threadblocks (the paper's threadblock-batch).
//
// Every warp of every resident threadblock is a stream replaying the
// threadblock trace. Streams contend for the SM's FIFO resources — the
// tensor-core pipe, the shared-memory (LDS) pipe, and the SM's share of
// LLC and DRAM bandwidth — and synchronize through threadblock barriers
// and the pipeline primitives:
//   - an asynchronous copy costs only issue time on its warp; its transfer
//     completes in the background on the memory servers;
//   - producer_commit seals a commit group; the group is complete when all
//     participating warps committed and every transfer landed;
//   - consumer_wait blocks a warp until group (cursor + wait_ahead)
//     completes;
//   - producer_acquire enforces the stage capacity: a warp may not reuse a
//     slot until every warp of the scope released it (this bounds warp
//     skew to the pipeline depth, as mbarriers do on hardware).
//
// This is deliberately more detailed than the Table-I analytical model —
// warm-up, drain, issue serialization, partial batches and bank-conflict
// penalties all emerge here — so that the model-accuracy experiment
// (Fig. 12) measures a real gap.
//
// Two execution cores share these semantics:
//   - SimulateBatch interprets a per-warp AST-derived event trace. It is
//     the reference implementation, kept as the differential-testing
//     oracle for the bytecode engine.
//   - ReplayBatch replays a compiled micro-op program (compile.h) through
//     an event-pool core: direct-threaded micro-op handlers drive a
//     replace-top binary heap of packed 96-bit keys (one unsigned compare
//     per ordering decision, one sift per stream switch), every waiter
//     list and per-group slot array lives in a caller-owned ReplayArena
//     that is pooled across runs, and all per-event rate divisions that
//     do not depend on the wave were folded into the program — so a warm
//     replay performs zero heap allocations and reproduces the
//     interpreter's results bit for bit.
#ifndef ALCOP_SIM_DESIM_H_
#define ALCOP_SIM_DESIM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/compile.h"
#include "sim/pmu.h"
#include "sim/timeline.h"
#include "sim/trace.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace sim {

struct GroupMeta {
  int64_t stages = 1;
  bool tb_scope = true;  // shared-memory scope: all warps participate
};

struct DesimParams {
  int threadblocks = 1;  // resident threadblocks on the SM
  bool swizzle = true;
  // TVM-DB modeling: pipeline copies stall their warp like ordinary loads
  // (double buffering without cp.async hardware).
  bool blocking_async = false;
  // SMs actually hosting threadblocks this batch: small grids leave SMs
  // idle, and the active ones receive a proportionally larger slice of the
  // GPU-wide LLC/DRAM bandwidth.
  int active_sms = 0;  // 0 -> spec.num_sms
  std::vector<GroupMeta> groups;  // indexed by pipeline group id
  // Fraction of each global tensor's loads that miss in LLC and pay DRAM
  // bandwidth (from the launch-level working-set analysis). Default 1.0.
  std::unordered_map<const ir::BufferNode*, double> dram_fraction;
  // When non-null, per-warp execution spans are recorded here (see
  // timeline.h) for visualization.
  Timeline* timeline = nullptr;
  // When non-null, the batch's performance counters are ADDED into this
  // struct (the caller zeroes it per wave). Collection must not perturb
  // timing: counters are accumulated per stream and merged in fixed
  // stream order (see sim/pmu.h).
  PmuCounters* pmu = nullptr;
};

// Simulates one batch by interpreting the per-warp event trace; returns
// the makespan in cycles. Reference core (see file comment).
double SimulateBatch(const ThreadblockTrace& trace,
                     const target::GpuSpec& spec, const DesimParams& params);

// One threadblock wave of a replay: how many threadblocks each active SM
// hosts, and the wave-dependent bandwidth slices (GPU-wide LLC/DRAM rates
// divided by the number of active SMs). Everything wave-independent was
// baked into the program by the trace compiler.
struct ReplayWave {
  int threadblocks = 1;
  double llc_rate = 1.0;
  double dram_rate = 1.0;
  double dram_write_rate = 1.0;
};

// Pooled state of the replay core. All vectors are sized on entry with
// resize/assign (which never shrink capacity), so replaying programs of
// the same shape re-uses every buffer: after the first run on a given
// shape, ReplayBatch performs no heap allocation. CapacityBytes() lets
// benches assert exactly that.
struct ReplayArena {
  struct Stream {
    double time = 0.0;
    double pending_sync = 0.0;
    uint32_t pc = 0;   // absolute index into program.ops
    uint32_t end = 0;  // end of this stream's instruction span
    int32_t tb = 0;
    int32_t warp = 0;
  };
  struct Waiter {
    int32_t stream = 0;
    int32_t value = 0;  // group index (wait) or needed releases (acquire)
    double park_time = 0.0;
  };
  // Park lists of one pipeline-scope instance (per (tb, group) for shared
  // scope, per (tb, group, warp) for register scope). The instance's
  // numeric state lives in the flat slot_*/releases arrays below.
  struct WaiterLists {
    std::vector<Waiter> wait;
    std::vector<Waiter> acquire;
  };
  struct Barrier {
    int arrived = 0;
    double max_time = 0.0;
    std::vector<std::pair<int32_t, double>> parked;
  };
  // One node of the scheduler's binary min-heap, a single 96-bit
  // ordering key: bits(time) in the high 64 (stream times are always
  // non-negative finite doubles, whose IEEE bit patterns order like the
  // values), and ~id in the low 32 so that unsigned key comparison is
  // exactly the interpreter's pop order (time ascending, ties to the
  // higher stream id) in one branchless compare. Parked and finished
  // streams are simply absent from the heap.
  struct HeapEntry {
    unsigned __int128 key = 0;
  };

  std::vector<Stream> streams;
  // Per-stream per-group counters, indexed stream * num_groups + group
  // (32-bit: a stream issues far fewer than 2^31 ops of any kind).
  std::vector<int32_t> acquires;
  std::vector<int32_t> commits;
  std::vector<int32_t> waits;
  std::vector<double> copy_max;
  // Per-(stream, group) pre-resolved addressing (same index as above):
  // which instance the pair synchronizes on, and which release slot the
  // stream owns in it.
  std::vector<int32_t> stream_inst;
  std::vector<int32_t> stream_rel;
  // Flat per-instance state, structure-of-arrays: instance i owns commit
  // slots [inst_slot_base[i], +cap(group)) and release slots
  // [inst_rel_base[i], +inst_participants[i]).
  std::vector<int32_t> inst_participants;
  std::vector<int32_t> inst_slot_base;
  std::vector<int32_t> inst_rel_base;
  std::vector<int32_t> inst_min_rel;  // cached min over the release slots
  std::vector<int32_t> slot_commits;
  std::vector<double> slot_partial_max;
  std::vector<double> slot_complete;
  std::vector<uint8_t> slot_done;
  std::vector<int32_t> releases;
  std::vector<WaiterLists> waiters;  // per instance
  std::vector<Barrier> barriers;
  std::vector<HeapEntry> heap;  // binary min-heap of runnable streams
  // Wave-scaled operand pool: 8 doubles per program pool row — the raw
  // row plus every "amount / wave rate" quotient the handlers need,
  // divided once per wave instead of once per event (the quotient of the
  // hoisted division is bit-identical to the interpreter's per-event
  // division). Row slot 7 carries the op's PMU payload (raw bytes /
  // FLOPs).
  std::vector<double> pool_scaled;
  // PMU accumulator rows, sized ONLY when a replay runs with counters
  // enabled (a PmuCounters sink was passed): per-stream f64/i64 slot rows
  // (sim/pmu.h layout) and the per-(stream, group) async-copy in-flight
  // depth. Counter-free replays never touch these, keeping the disabled
  // warm path zero-allocation.
  std::vector<double> pmu_f64;
  std::vector<int64_t> pmu_i64;
  std::vector<int32_t> pmu_depth;

  // Layout-reuse tag: the static addressing tables above (inst_*,
  // stream_inst/stream_rel) depend only on (skeleton, threadblocks), so a
  // replay whose program shares the previous program's skeleton at the
  // same wave size skips refilling them — the heart of batched replay,
  // where a structure-sharing sweep pays the layout walk once per
  // skeleton instead of once per config. The shared_ptr keeps the tagged
  // skeleton alive so the pointer identity test can never alias a freed
  // skeleton. Dynamic state (counters, slots, heap, pool) is still reset
  // every replay.
  std::shared_ptr<const MicroOpSkeleton> layout_skeleton;
  int layout_threadblocks = 0;

  // Total reserved heap memory; constant across warm replays.
  size_t CapacityBytes() const;
};

// Replays one threadblock wave of a compiled program; returns the makespan
// in cycles. Bit-identical to SimulateBatch on the equivalent trace.
// When `pmu` is non-null the wave's performance counters are ADDED into
// it (bit-identical to the interpreter's; see sim/pmu.h).
double ReplayBatch(const MicroOpProgram& program, const ReplayWave& wave,
                   ReplayArena* arena, Timeline* timeline = nullptr,
                   PmuCounters* pmu = nullptr);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_DESIM_H_
