// Per-warp event traces.
//
// The timing simulator does not execute data; it interprets a lowered
// (possibly pipelined) kernel once for a representative threadblock and
// records, for every warp, the sequence of timing-relevant events: copy
// issues, pipeline synchronization, barriers, tensor-core MMAs and global
// stores. The discrete-event simulator (desim.h) then replays these
// streams for all threadblocks resident on an SM, contending for the SM's
// resources.
//
// Cooperative operations (shared-memory copies, threadblock barriers,
// shared-scope pipeline primitives) appear outside warp loops in the IR;
// the builder broadcasts them to every warp, splitting copy bytes evenly —
// matching how cp.async and mbarriers are actually issued per warp.
#ifndef ALCOP_SIM_TRACE_H_
#define ALCOP_SIM_TRACE_H_

#include <cstdint>
#include <vector>

#include "ir/stmt.h"

namespace alcop {
namespace sim {

enum class EventKind {
  kCopyAsync,    // asynchronous copy: issue cost now, transfer in background
  kCopySync,     // blocking copy: warp stalls until the transfer completes
  kAcquire,      // producer_acquire
  kCommit,       // producer_commit
  kWait,         // consumer_wait
  kRelease,      // consumer_release
  kBarrier,      // threadblock barrier
  kMma,          // tensor-core work
  kFill,         // accumulator initialization (cheap register writes)
  kStoreGlobal,  // epilogue write-back
};

struct TraceEvent {
  EventKind kind = EventKind::kBarrier;
  int64_t bytes = 0;  // copy / store / fill payload
  int64_t flops = 0;  // kMma
  int group = -1;     // pipeline group id for copy/sync events
  int wait_ahead = 0;
  ir::MemScope src_scope = ir::MemScope::kGlobal;
  ir::MemScope dst_scope = ir::MemScope::kShared;
  // Source global tensor of a load (for the LLC working-set model).
  const ir::BufferNode* src_tensor = nullptr;
};

struct WarpTrace {
  std::vector<TraceEvent> events;
};

struct ThreadblockTrace {
  int num_warps = 1;
  std::vector<WarpTrace> warps;

  int64_t TotalEvents() const {
    int64_t total = 0;
    for (const WarpTrace& warp : warps) {
      total += static_cast<int64_t>(warp.events.size());
    }
    return total;
  }
};

// Builds the trace of one threadblock (blockIdx loops pinned to 0).
// Global->global copies (standalone elementwise passes) are skipped; their
// cost is charged at the launch level.
ThreadblockTrace BuildTrace(const ir::Stmt& program, int num_warps);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_TRACE_H_
