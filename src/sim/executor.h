// Functional executor: interprets Tensor-IR programs on real data.
//
// Serves two purposes:
//   1. Numerical verification that the pipeline transformation preserves
//      program semantics (transformed kernel output == reference GEMM).
//   2. Enforcement of the Ampere asynchronous-copy visibility semantics:
//      data written by an async copy may only be read after the matching
//      consumer_wait, producer_acquire must have pipeline capacity, and
//      commit groups complete in FIFO order. Violations throw CheckError.
//
// Parallel loops (blockIdx / warp) are interpreted sequentially; pipeline
// state is keyed per parallel-loop instance, so each threadblock and each
// warp carries its own FIFO, exactly as the hardware scopes them.
#ifndef ALCOP_SIM_EXECUTOR_H_
#define ALCOP_SIM_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/stmt.h"
#include "sim/memory.h"

namespace alcop {
namespace sim {

struct ExecOptions {
  // When false, async copies behave like synchronous ones (useful to run
  // deliberately mis-synchronized IR in tests of the checker itself).
  bool check_async_semantics = true;
};

class Executor {
 public:
  explicit Executor(ExecOptions options = {});
  ~Executor();

  // Binds external contents to a (global) buffer before Run. Size must
  // match the buffer's element count.
  void Bind(const ir::Buffer& buffer, std::vector<float> data);

  // Interprets the program. Buffers not bound are zero-initialized on
  // first use. Throws CheckError on semantic violations.
  void Run(const ir::Stmt& program);

  // Contents of a buffer after Run.
  const std::vector<float>& Data(const ir::Buffer& buffer) const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

// Reference GEMM: C[b,i,j] = g(sum_k f(A[b,i,k]) * B[b,j,k]) with the
// optional producer op f on A and epilogue op g. Row-major contiguous
// [batch, m, k] / [batch, n, k] / [batch, m, n] layouts.
std::vector<float> ReferenceGemm(const std::vector<float>& a,
                                 const std::vector<float>& b, int64_t batch,
                                 int64_t m, int64_t n, int64_t k,
                                 ir::EwiseOp a_op = ir::EwiseOp::kNone,
                                 double a_param = 0.0,
                                 ir::EwiseOp epilogue_op = ir::EwiseOp::kNone,
                                 double epilogue_param = 0.0);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_EXECUTOR_H_
