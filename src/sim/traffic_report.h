// Per-level memory-traffic report of a compiled kernel — the DELTA-style
// accounting behind the paper's memory latency model, exposed as a
// user-facing diagnostic: how many bytes move at each level of the
// hierarchy per kernel, and the resulting arithmetic intensities. Useful
// for explaining *why* a schedule is load- or compute-bound.
#ifndef ALCOP_SIM_TRAFFIC_REPORT_H_
#define ALCOP_SIM_TRAFFIC_REPORT_H_

#include <string>

#include "sim/launch.h"

namespace alcop {
namespace sim {

struct TrafficReport {
  // Whole-kernel byte counts.
  double dram_read_bytes = 0.0;   // after LLC filtering (working-set model)
  double llc_read_bytes = 0.0;    // all global loads pass the LLC
  double smem_write_bytes = 0.0;  // global -> shared (equals llc reads)
  double lds_read_bytes = 0.0;    // shared -> register
  double dram_write_bytes = 0.0;  // epilogue stores
  double flops = 0.0;

  double DramIntensity() const {
    return flops / (dram_read_bytes + dram_write_bytes);
  }
  double LlcIntensity() const { return flops / llc_read_bytes; }
  double LdsIntensity() const { return flops / lds_read_bytes; }

  std::string ToString() const;
};

// Computes the report from the kernel's loop structure and the launch
// traffic analysis. Requires a feasible (device-fitting) kernel.
TrafficReport AnalyzeKernelTraffic(const CompiledKernel& compiled,
                                   const target::GpuSpec& spec);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_TRAFFIC_REPORT_H_
