// Trace compiler: lowers a pipelined TIR kernel into a flat bytecode
// program of micro-ops, so the expensive IR walk is paid once per schedule
// and the event-pool simulator core (desim.h) can replay the flat form
// thousands of times.
//
// The compiler walks the transformed TIR exactly like the per-warp trace
// builder (trace.h) — same loop flattening, same warp-range broadcast,
// same byte splitting — but instead of AST-shaped events it emits
// contiguous MicroOp structs whose operands are *pre-resolved*:
//   - copy issue cycles, LDS service cycles, tensor-core cycles and fill
//     cycles are divided out against the device rates at compile time
//     (those rates do not depend on which threadblock wave is replayed);
//   - the DRAM fraction of each global tensor (from the launch-level
//     working-set analysis) is folded into per-op byte amounts and a
//     pre-blended round-trip latency, eliminating the per-event hash-map
//     lookup the interpreter pays;
//   - per-group commit counts are counted, so the replay arena can be
//     sized exactly with no growth during a run.
// Only the LLC/DRAM bandwidth divisions remain at replay time, because
// those rates depend on how many SMs the wave keeps active.
//
// Every precomputed operand is produced by the *same* floating-point
// expression the interpreter evaluates per event, which is what makes the
// replayed KernelTiming and Timeline bit-identical to the AST interpreter
// (asserted by tests/sim_replay_test.cc and the fuzz differential).
#ifndef ALCOP_SIM_COMPILE_H_
#define ALCOP_SIM_COMPILE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/stmt.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace sim {

// Kind order is load-bearing: every kind >= kFill is *eagerly
// continuable* — executing it during the previous event's turn (ahead of
// queued events with earlier timestamps) provably cannot change any
// result, so the replay core runs it inline with zero event-queue
// traffic. kFill only touches its own stream; kCommit only monotonic
// per-slot max/count state (and a parked waiter woken by a commit
// resumes at max(park_time, complete) + sync — exactly the time it
// would have computed passing through); kWait's park-then-wake equals
// its pass-through for the same reason; kBarrier arrival order is
// absorbed by the max over arrival times. kAcquire and kRelease are NOT
// in the set: an acquire that passes pays no max() against the release
// time, so acquire/release order against other streams is observable.
enum class MicroOpKind : uint8_t {
  kCopyAsyncGlobal,  // cp.async from global: issue now, transfer background
  kCopyAsyncShared,  // async shared->register stage copy
  kCopySyncGlobal,   // blocking global load
  kCopySyncShared,   // blocking shared->register load
  kStoreGlobal,      // epilogue write-back
  kMma,              // tensor-core work
  kAcquire,          // producer_acquire
  kRelease,          // consumer_release
  kFill,             // accumulator initialization
  kCommit,           // producer_commit
  kWait,             // consumer_wait
  kBarrier,          // threadblock barrier
};

// First kind of the eagerly-continuable suffix of the enum (see above).
inline constexpr MicroOpKind kFirstEagerKind = MicroOpKind::kFill;

// MicroOp::flags bit: the op's source tensor pays a DRAM share (fraction
// above the interpreter's 1e-3 threshold), so replay serves op2 bytes on
// the DRAM pipe in addition to the LLC.
inline constexpr uint8_t kMicroOpHasDram = 1;

// One row of a program's operand pool. Kernels use a handful of distinct
// copy shapes and tile sizes, so the operand tuples of thousands of ops
// collapse to a few interned rows — the 8-byte instruction stream stays
// small enough to be L1-resident during replay. Meaning depends on the
// instruction kind:
//   kCopy*Global:  op0 issue cycles, op1 LLC bytes, op2 DRAM bytes,
//                  op3 pre-blended round-trip latency cycles
//   kCopy*Shared:  op0 issue cycles, op1 LDS service cycles,
//                  op2 shared-memory latency cycles
//   kStoreGlobal:  op0 issue cycles, op1 store bytes, op2 DRAM latency
//   kMma:          op0 tensor-core cycles (flops / per-partition rate)
//   kFill:         op0 register-write cycles
// `payload` is the PMU quantity of the op — raw bytes moved for copies
// and stores, FLOPs for kMma, 0 otherwise. It never feeds the timing
// expressions; the counter layer (sim/pmu.h) reads it so byte and FLOP
// totals survive the operand pre-division above.
struct MicroOpOperands {
  double op0 = 0.0;
  double op1 = 0.0;
  double op2 = 0.0;
  double op3 = 0.0;
  double payload = 0.0;
};

// One flat 8-byte instruction. `aux` is the operand-pool row for the
// pooled kinds listed above; for kAcquire it is the group's stages - 1,
// and for kWait it packs (max_commits << 8) | wait_ahead — everything the
// replay core needs without touching the group table.
struct MicroOp {
  MicroOpKind kind = MicroOpKind::kBarrier;
  uint8_t flags = 0;
  int16_t group = -1;
  int32_t aux = 0;
};
static_assert(sizeof(MicroOp) == 8, "replay footprint depends on packing");

// Pipeline-group metadata carried by the program: FIFO depth, scope, and
// the per-warp commit count (sizes the replay arena's group slots).
struct MicroOpGroup {
  int64_t stages = 1;
  bool tb_scope = true;  // shared scope: every warp of the tb participates
  int64_t max_commits = 0;
};

// The *structural* half of a compiled program: instruction kinds, sync
// structure, warp spans and group metadata — everything except the
// numeric operand values, which live in the per-config patch table
// (MicroOpProgram::pool; the instructions address it by row index).
// Schedules that differ only numerically (tile bytes, FLOP counts,
// latencies) walk identical instruction sequences, so their skeletons are
// byte-for-byte equal and the process-wide intern pool (InternSkeleton)
// stores each distinct skeleton exactly once. The instruction arena is
// the dominant footprint of a compiled program, which is what makes the
// program cache's bytes-per-config drop when a sweep shares skeletons.
struct MicroOpSkeleton {
  int num_warps = 1;
  std::vector<MicroOp> ops;          // warp w owns [warp_begin[w], warp_begin[w+1])
  std::vector<uint32_t> warp_begin;  // num_warps + 1 offsets into ops
  std::vector<MicroOpGroup> groups;
  bool blocking_async = false;  // TVM-DB modeling: async copies stall
  // Structural hash over every field above (the intern-pool bucket key;
  // equality is always confirmed field-by-field before sharing).
  uint64_t hash = 0;

  int64_t TotalOps() const { return static_cast<int64_t>(ops.size()); }
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(ops.capacity() * sizeof(MicroOp) +
                                warp_begin.capacity() * sizeof(uint32_t) +
                                groups.capacity() * sizeof(MicroOpGroup) +
                                sizeof(MicroOpSkeleton));
  }
};

// Computes the structural hash (FNV-1a over the skeleton's fields; does
// not read or write `hash` itself). Exposed for tests.
uint64_t SkeletonHash(const MicroOpSkeleton& skeleton);

// Process-wide structure-sharing pool: returns a shared skeleton equal to
// `skeleton`, inserting it if no equal one exists. Thread-safe; entries
// live until ResetSkeletonPool (callers hold shared_ptrs, so a reset
// never invalidates in-flight programs).
std::shared_ptr<const MicroOpSkeleton> InternSkeleton(
    MicroOpSkeleton&& skeleton);

struct SkeletonPoolStats {
  uint64_t skeletons = 0;  // distinct skeletons resident
  uint64_t bytes = 0;      // their total footprint
  uint64_t interns = 0;    // InternSkeleton calls
  uint64_t shared = 0;     // calls that found an existing equal skeleton
  uint64_t compactions = 0;  // CompactSkeletonPool calls
  uint64_t dropped = 0;      // orphan skeletons dropped by compaction
};
SkeletonPoolStats GetSkeletonPoolStats();
void ResetSkeletonPool();

// Arena compaction for the intern pool: drops every skeleton whose only
// remaining reference is the pool itself (its programs were evicted or
// destroyed), returning the number dropped. In-flight programs keep
// their skeletons alive through their shared_ptrs, so compaction can
// never invalidate a replay. The sim cache calls this after LRU
// eviction so orphaned instruction arenas do not count against the
// ALCOP_CACHE_BYTES budget forever.
uint64_t CompactSkeletonPool();

// The pool's resident bytes as a relaxed atomic (maintained by
// intern/compact/reset), so the sim cache's budget check on every insert
// does not take the pool mutex.
uint64_t ApproxSkeletonPoolBytes();

// The compiled program: a shared structural skeleton plus this config's
// numeric operands — the interned patch-table rows the skeleton's
// instructions address via MicroOp::aux — and the device's sync costs.
struct MicroOpProgram {
  std::shared_ptr<const MicroOpSkeleton> skeleton;  // null only if default-constructed
  std::vector<MicroOpOperands> pool;  // interned operand rows (the patch table)
  double sync_overhead_cycles = 0.0;
  double half_sync_overhead_cycles = 0.0;

  int64_t TotalOps() const {
    return skeleton == nullptr ? 0 : skeleton->TotalOps();
  }
  // Per-config footprint: the patch table only. The shared skeleton is
  // accounted once per distinct skeleton by the cache stats, not once
  // per program.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(pool.capacity() * sizeof(MicroOpOperands) +
                                sizeof(MicroOpProgram));
  }
};

struct TraceCompileOptions {
  bool swizzle = true;
  bool blocking_async = false;
  // Pipeline groups by dense id (max_commits is filled by the compiler).
  std::vector<MicroOpGroup> groups;
  // Fraction of each global tensor's loads that miss in LLC (default 1.0).
  std::unordered_map<const ir::BufferNode*, double> dram_fraction;
};

// Walks the lowered TIR once (blockIdx loops pinned to 0, warp loops
// broadcast, trip counts evaluated) and emits the flat program.
MicroOpProgram CompileTraceProgram(const ir::Stmt& program, int num_warps,
                                   const target::GpuSpec& spec,
                                   const TraceCompileOptions& options);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_COMPILE_H_
