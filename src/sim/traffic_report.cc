#include "sim/traffic_report.h"

#include <sstream>

#include "support/check.h"
#include "target/occupancy.h"

namespace alcop {
namespace sim {

std::string TrafficReport::ToString() const {
  auto mb = [](double bytes) { return bytes / (1024.0 * 1024.0); };
  std::ostringstream out;
  out.precision(3);
  out << "traffic: " << mb(dram_read_bytes) << " MB DRAM-read, "
      << mb(llc_read_bytes) << " MB LLC-read, " << mb(lds_read_bytes)
      << " MB LDS-read, " << mb(dram_write_bytes) << " MB DRAM-write; "
      << "intensity " << DramIntensity() << " flop/B (DRAM), "
      << LlcIntensity() << " (LLC), " << LdsIntensity() << " (LDS)";
  return out.str();
}

TrafficReport AnalyzeKernelTraffic(const CompiledKernel& compiled,
                                   const target::GpuSpec& spec) {
  const schedule::LoweredKernel& kernel = compiled.kernel;
  const schedule::GemmOp& op = kernel.op;
  const schedule::TileConfig& t = kernel.config.tile;

  target::ThreadblockResources res =
      schedule::ComputeResources(op, kernel.config);
  target::Occupancy occ = target::ComputeOccupancy(spec, res);
  ALCOP_CHECK_GT(occ.threadblocks_per_sm, 0)
      << "traffic analysis requires a device-fitting kernel";

  TrafficReport report;
  report.flops = static_cast<double>(op.Flops());

  double total_tbs = static_cast<double>(kernel.TotalThreadblocks());
  // Every threadblock streams its A and B panels into shared memory once
  // per outer iteration.
  double tile_bytes_per_iter =
      static_cast<double>(t.tb_m + t.tb_n) * t.tb_k * 2.0;
  report.llc_read_bytes =
      total_tbs * tile_bytes_per_iter * static_cast<double>(kernel.ko_extent);
  report.smem_write_bytes = report.llc_read_bytes;

  // DRAM reads: the LLC filters cross-threadblock reuse (working-set model
  // shared with the simulator and the analytical model).
  TrafficAnalysis traffic =
      AnalyzeTraffic(op, kernel.config, spec, occ.threadblocks_per_sm);
  double a_bytes = total_tbs * static_cast<double>(t.tb_m) * t.tb_k * 2.0 *
                   static_cast<double>(kernel.ko_extent);
  double b_bytes = total_tbs * static_cast<double>(t.tb_n) * t.tb_k * 2.0 *
                   static_cast<double>(kernel.ko_extent);
  report.dram_read_bytes =
      a_bytes * traffic.a_dram_fraction + b_bytes * traffic.b_dram_fraction;

  // Register loads per warp per inner iteration, for all warps.
  double reg_bytes_per_warp_iter =
      static_cast<double>(t.warp_m + t.warp_n) * t.warp_k * 2.0;
  report.lds_read_bytes = total_tbs * kernel.num_warps *
                          reg_bytes_per_warp_iter *
                          static_cast<double>(kernel.ko_extent) *
                          static_cast<double>(kernel.ki_extent);

  // Output: fp16 store, or fp32 workspace + reduction traffic for split-K.
  double out_elems = static_cast<double>(op.batch * op.m * op.n);
  if (kernel.grid_k > 1) {
    double k = static_cast<double>(kernel.grid_k);
    report.dram_write_bytes = out_elems * (4.0 * k + 2.0);
    report.dram_read_bytes += out_elems * 4.0 * k;  // reduction reads
  } else {
    report.dram_write_bytes = out_elems * 2.0;
  }
  return report;
}

}  // namespace sim
}  // namespace alcop
