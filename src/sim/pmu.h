// Performance-counter subsystem (PMU) for the simulated GPU — the
// Nsight/CUPTI-style counter layer under the PR-4 profiler.
//
// Counters are collected *during* a simulator run (interpreter or replay)
// and obey three contracts, all gated by tests:
//   - Byte-deterministic: the same program and wave produce memcmp-equal
//     PmuCounters on every run, on every thread count.
//   - Bit-identical between cores: InterpretKernel and ReplaySimProgram
//     fill identical KernelPmu structs. The replay core executes eager
//     micro-ops out of strict timestamp order, but every stream's own
//     events still run in that stream's program order, so each stream
//     accumulates into its own slot row and both cores merge the rows in
//     fixed stream order through one shared helper
//     (AccumulatePmuStreams) — the floating-point sums see the same
//     addends in the same order.
//   - Free when disabled: the replay arena only sizes its PMU rows when a
//     PmuCounters sink is passed, so the warm-replay path stays
//     zero-allocation (extended counting-operator-new gate in
//     tests/obs_test.cc).
//
// Counter semantics (cycles are simulated cycles; "transaction" = one
// copy/store micro-op):
//   tensor_active_cycles   sum of tensor-core service time over warps
//   lds_active_cycles      LDS-pipe service time (shared->register loads)
//   copy_issue_cycles      warp-side copy/store issue time
//   fill_cycles            accumulator-initialization time
//   wait_stall_cycles      consumer_wait stalls (pass-through + parked)
//   acquire_stall_cycles   producer_acquire park time
//   barrier_stall_cycles   threadblock-barrier rendezvous waits
//   exposed_copy_cycles    blocking-copy time on the warp's critical path
//   llc_read_bytes         global-load bytes served by the LLC
//   dram_read_bytes        DRAM share of global loads (working-set model)
//   lds_read_bytes         shared->register bytes
//   dram_write_bytes       epilogue store bytes
//   cp_async_bytes         bytes issued through asynchronous copies
//   flops                  tensor-core FLOPs retired
//   *_transactions         micro-op counts per pipe
//   barrier_arrivals       per-warp barrier arrivals
//   wait_parks             consumer_waits whose data was not ready on
//                          arrival (stalled beyond the sync overhead).
//                          NOT physical parks: whether a wait parks or
//                          passes through depends on scheduling order,
//                          which differs between the strict interpreter
//                          and the eager replay core.
//   acquire_parks          producer_acquires that parked their warp
//                          (acquire park decisions happen at the strict
//                          queue turn in both cores, so this one IS a
//                          physical-park count)
//   inflight_depth[b]      async-copy issues whose per-(warp, group)
//                          outstanding depth was b+1 (last bucket: >= 16)
#ifndef ALCOP_SIM_PMU_H_
#define ALCOP_SIM_PMU_H_

#include <cstdint>
#include <string>

namespace alcop {
namespace sim {

// Flat per-stream slot layout used by both simulator cores while a run is
// in flight; merged into the named struct by AccumulatePmuStreams.
enum PmuF64Slot {
  kPmuTensorActive = 0,
  kPmuLdsActive,
  kPmuCopyIssue,
  kPmuFill,
  kPmuWaitStall,
  kPmuAcquireStall,
  kPmuBarrierStall,
  kPmuExposedCopy,
  kPmuLlcReadBytes,
  kPmuDramReadBytes,
  kPmuLdsReadBytes,
  kPmuDramWriteBytes,
  kPmuCpAsyncBytes,
  kPmuFlops,
  kPmuF64Count,
};

inline constexpr int kPmuDepthBuckets = 16;

enum PmuI64Slot {
  kPmuLlcReadTx = 0,
  kPmuDramReadTx,
  kPmuLdsReadTx,
  kPmuDramWriteTx,
  kPmuCpAsyncTx,
  kPmuBarrierArrivals,
  kPmuWaitParks,
  kPmuAcquireParks,
  kPmuDepthHist0,  // buckets kPmuDepthHist0 .. kPmuDepthHist0 + 15
  kPmuI64Count = kPmuDepthHist0 + kPmuDepthBuckets,
};

// One kernel's (or one wave's) counter set. Plain 8-byte fields only, so
// the struct is memcmp-comparable — the determinism and differential
// tests compare raw bytes.
struct PmuCounters {
  double tensor_active_cycles = 0.0;
  double lds_active_cycles = 0.0;
  double copy_issue_cycles = 0.0;
  double fill_cycles = 0.0;
  double wait_stall_cycles = 0.0;
  double acquire_stall_cycles = 0.0;
  double barrier_stall_cycles = 0.0;
  double exposed_copy_cycles = 0.0;
  double llc_read_bytes = 0.0;
  double dram_read_bytes = 0.0;
  double lds_read_bytes = 0.0;
  double dram_write_bytes = 0.0;
  double cp_async_bytes = 0.0;
  double flops = 0.0;
  int64_t llc_read_transactions = 0;
  int64_t dram_read_transactions = 0;
  int64_t lds_read_transactions = 0;
  int64_t dram_write_transactions = 0;
  int64_t cp_async_transactions = 0;
  int64_t barrier_arrivals = 0;
  int64_t wait_parks = 0;
  int64_t acquire_parks = 0;
  int64_t inflight_depth[kPmuDepthBuckets] = {};
};
static_assert(sizeof(PmuCounters) ==
                  (static_cast<size_t>(kPmuF64Count) +
                   static_cast<size_t>(kPmuI64Count)) *
                      sizeof(double),
              "PmuCounters must stay padding-free for memcmp comparison");

// Merges per-stream slot rows into `out`, iterating streams in index
// order for every field. Both simulator cores call this one function so
// the floating-point merge order is identical (the bit-identity
// contract).
void AccumulatePmuStreams(PmuCounters* out, const double* f64,
                          const int64_t* i64, size_t num_streams);

// `dst += src * factor` field by field (histogram included). Used to
// scale one wave's counters to the launch's batch count.
void AddScaledPmu(PmuCounters* dst, const PmuCounters& src, int64_t factor);

// Kernel-level counter report: the whole launch plus the steady-state
// batch the profiler's timeline shows.
struct KernelPmu {
  bool collected = false;
  PmuCounters total;  // all threadblock batches of the launch
  PmuCounters batch;  // one steady-state full batch (per SM)
  // Resident warps / max warps per SM at the chosen occupancy.
  double achieved_occupancy = 0.0;
};

// Scales a full wave's counters (plus the optional remainder wave's) to
// the launch total, mirroring the wave structure of ReplaySimProgram /
// InterpretKernel exactly: full_batches full waves plus the remainder; a
// launch smaller than one batch (full_batches == 0, remainder > 0) reuses
// the full-wave result once. Both kernel entry points call this one
// helper so their totals are bit-identical.
void ScaleKernelPmu(KernelPmu* pmu, const PmuCounters& full_wave,
                    const PmuCounters* remainder_wave, int64_t full_batches);

// Human-readable counter table (alcop_cli profile --counters).
std::string RenderPmu(const KernelPmu& pmu);

// JSON object (no trailing newline) for --json output and the bench
// harnesses.
std::string PmuToJson(const KernelPmu& pmu);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_PMU_H_
