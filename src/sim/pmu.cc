#include "sim/pmu.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace alcop {
namespace sim {

void AccumulatePmuStreams(PmuCounters* out, const double* f64,
                          const int64_t* i64, size_t num_streams) {
  for (size_t s = 0; s < num_streams; ++s) {
    const double* f = f64 + s * kPmuF64Count;
    out->tensor_active_cycles += f[kPmuTensorActive];
    out->lds_active_cycles += f[kPmuLdsActive];
    out->copy_issue_cycles += f[kPmuCopyIssue];
    out->fill_cycles += f[kPmuFill];
    out->wait_stall_cycles += f[kPmuWaitStall];
    out->acquire_stall_cycles += f[kPmuAcquireStall];
    out->barrier_stall_cycles += f[kPmuBarrierStall];
    out->exposed_copy_cycles += f[kPmuExposedCopy];
    out->llc_read_bytes += f[kPmuLlcReadBytes];
    out->dram_read_bytes += f[kPmuDramReadBytes];
    out->lds_read_bytes += f[kPmuLdsReadBytes];
    out->dram_write_bytes += f[kPmuDramWriteBytes];
    out->cp_async_bytes += f[kPmuCpAsyncBytes];
    out->flops += f[kPmuFlops];
    const int64_t* n = i64 + s * kPmuI64Count;
    out->llc_read_transactions += n[kPmuLlcReadTx];
    out->dram_read_transactions += n[kPmuDramReadTx];
    out->lds_read_transactions += n[kPmuLdsReadTx];
    out->dram_write_transactions += n[kPmuDramWriteTx];
    out->cp_async_transactions += n[kPmuCpAsyncTx];
    out->barrier_arrivals += n[kPmuBarrierArrivals];
    out->wait_parks += n[kPmuWaitParks];
    out->acquire_parks += n[kPmuAcquireParks];
    for (int b = 0; b < kPmuDepthBuckets; ++b) {
      out->inflight_depth[b] += n[kPmuDepthHist0 + b];
    }
  }
}

void AddScaledPmu(PmuCounters* dst, const PmuCounters& src, int64_t factor) {
  const double f = static_cast<double>(factor);
  dst->tensor_active_cycles += src.tensor_active_cycles * f;
  dst->lds_active_cycles += src.lds_active_cycles * f;
  dst->copy_issue_cycles += src.copy_issue_cycles * f;
  dst->fill_cycles += src.fill_cycles * f;
  dst->wait_stall_cycles += src.wait_stall_cycles * f;
  dst->acquire_stall_cycles += src.acquire_stall_cycles * f;
  dst->barrier_stall_cycles += src.barrier_stall_cycles * f;
  dst->exposed_copy_cycles += src.exposed_copy_cycles * f;
  dst->llc_read_bytes += src.llc_read_bytes * f;
  dst->dram_read_bytes += src.dram_read_bytes * f;
  dst->lds_read_bytes += src.lds_read_bytes * f;
  dst->dram_write_bytes += src.dram_write_bytes * f;
  dst->cp_async_bytes += src.cp_async_bytes * f;
  dst->flops += src.flops * f;
  dst->llc_read_transactions += src.llc_read_transactions * factor;
  dst->dram_read_transactions += src.dram_read_transactions * factor;
  dst->lds_read_transactions += src.lds_read_transactions * factor;
  dst->dram_write_transactions += src.dram_write_transactions * factor;
  dst->cp_async_transactions += src.cp_async_transactions * factor;
  dst->barrier_arrivals += src.barrier_arrivals * factor;
  dst->wait_parks += src.wait_parks * factor;
  dst->acquire_parks += src.acquire_parks * factor;
  for (int b = 0; b < kPmuDepthBuckets; ++b) {
    dst->inflight_depth[b] += src.inflight_depth[b] * factor;
  }
}

void ScaleKernelPmu(KernelPmu* pmu, const PmuCounters& full_wave,
                    const PmuCounters* remainder_wave, int64_t full_batches) {
  pmu->batch = full_wave;
  pmu->total = PmuCounters();
  // A launch smaller than one batch replays the full wave once and
  // charges it once (launch.cc's `full_batches == 0 ? full_batch : ...`).
  int64_t factor = full_batches == 0 ? 1 : full_batches;
  AddScaledPmu(&pmu->total, full_wave, factor);
  if (remainder_wave != nullptr) {
    AddScaledPmu(&pmu->total, *remainder_wave, 1);
  }
  pmu->collected = true;
}

namespace {

std::string JsonNum(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void CountersJson(std::ostringstream& out, const PmuCounters& c,
                  const char* indent) {
  out << "{\n";
  auto f = [&](const char* name, double v, bool last = false) {
    out << indent << "  \"" << name << "\": " << JsonNum(v)
        << (last ? "\n" : ",\n");
  };
  auto n = [&](const char* name, int64_t v) {
    out << indent << "  \"" << name << "\": " << v << ",\n";
  };
  f("tensor_active_cycles", c.tensor_active_cycles);
  f("lds_active_cycles", c.lds_active_cycles);
  f("copy_issue_cycles", c.copy_issue_cycles);
  f("fill_cycles", c.fill_cycles);
  f("wait_stall_cycles", c.wait_stall_cycles);
  f("acquire_stall_cycles", c.acquire_stall_cycles);
  f("barrier_stall_cycles", c.barrier_stall_cycles);
  f("exposed_copy_cycles", c.exposed_copy_cycles);
  f("llc_read_bytes", c.llc_read_bytes);
  f("dram_read_bytes", c.dram_read_bytes);
  f("lds_read_bytes", c.lds_read_bytes);
  f("dram_write_bytes", c.dram_write_bytes);
  f("cp_async_bytes", c.cp_async_bytes);
  f("flops", c.flops);
  n("llc_read_transactions", c.llc_read_transactions);
  n("dram_read_transactions", c.dram_read_transactions);
  n("lds_read_transactions", c.lds_read_transactions);
  n("dram_write_transactions", c.dram_write_transactions);
  n("cp_async_transactions", c.cp_async_transactions);
  n("barrier_arrivals", c.barrier_arrivals);
  n("wait_parks", c.wait_parks);
  n("acquire_parks", c.acquire_parks);
  out << indent << "  \"inflight_depth\": [";
  for (int b = 0; b < kPmuDepthBuckets; ++b) {
    out << c.inflight_depth[b] << (b + 1 < kPmuDepthBuckets ? ", " : "");
  }
  out << "]\n" << indent << "}";
}

std::string Bytes(double b) {
  char buf[48];
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", b);
  }
  return buf;
}

}  // namespace

std::string RenderPmu(const KernelPmu& pmu) {
  std::ostringstream out;
  if (!pmu.collected) return "pmu: not collected\n";
  const PmuCounters& t = pmu.total;
  char buf[160];
  out << "pmu counters (whole launch):\n";
  auto cyc = [&](const char* name, double v) {
    std::snprintf(buf, sizeof(buf), "  %-24s %18.0f cycles\n", name, v);
    out << buf;
  };
  cyc("tensor_active", t.tensor_active_cycles);
  cyc("lds_active", t.lds_active_cycles);
  cyc("copy_issue", t.copy_issue_cycles);
  cyc("fill", t.fill_cycles);
  cyc("wait_stall", t.wait_stall_cycles);
  cyc("acquire_stall", t.acquire_stall_cycles);
  cyc("barrier_stall", t.barrier_stall_cycles);
  cyc("exposed_copy", t.exposed_copy_cycles);
  auto traf = [&](const char* name, double bytes, int64_t tx) {
    std::snprintf(buf, sizeof(buf), "  %-24s %18s  (%ld transactions)\n",
                  name, Bytes(bytes).c_str(), static_cast<long>(tx));
    out << buf;
  };
  traf("llc_read", t.llc_read_bytes, t.llc_read_transactions);
  traf("dram_read", t.dram_read_bytes, t.dram_read_transactions);
  traf("lds_read", t.lds_read_bytes, t.lds_read_transactions);
  traf("dram_write", t.dram_write_bytes, t.dram_write_transactions);
  traf("cp_async", t.cp_async_bytes, t.cp_async_transactions);
  std::snprintf(buf, sizeof(buf),
                "  %-24s %18.0f\n", "flops", t.flops);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  barrier_arrivals %ld, wait_parks %ld, acquire_parks %ld\n",
                static_cast<long>(t.barrier_arrivals),
                static_cast<long>(t.wait_parks),
                static_cast<long>(t.acquire_parks));
  out << buf;
  out << "  cp.async in-flight depth:";
  for (int b = 0; b < kPmuDepthBuckets; ++b) {
    if (t.inflight_depth[b] == 0) continue;
    std::snprintf(buf, sizeof(buf), " %d%s:%ld", b + 1,
                  b + 1 == kPmuDepthBuckets ? "+" : "",
                  static_cast<long>(t.inflight_depth[b]));
    out << buf;
  }
  out << "\n";
  std::snprintf(buf, sizeof(buf), "  achieved occupancy %.1f%%\n",
                pmu.achieved_occupancy * 100.0);
  out << buf;
  return out.str();
}

std::string PmuToJson(const KernelPmu& pmu) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"collected\": " << (pmu.collected ? "true" : "false") << ",\n";
  out << "  \"achieved_occupancy\": " << JsonNum(pmu.achieved_occupancy)
      << ",\n";
  out << "  \"total\": ";
  CountersJson(out, pmu.total, "  ");
  out << ",\n  \"batch\": ";
  CountersJson(out, pmu.batch, "  ");
  out << "\n}";
  return out.str();
}

}  // namespace sim
}  // namespace alcop
