// Process-wide memoization of the two-phase simulate pipeline.
//
// Tuning sweeps re-measure identical (operator, schedule, device) triples
// constantly: every search strategy walks the same enumerated space, and
// the benchmark binaries re-run strategies over multiple seeds and trial
// budgets. Compiling and simulating a kernel is pure — the same inputs
// always produce the same KernelTiming — so both phases are cached under
// a canonical text key:
//
//   op(family, batch, m, n, k, producer, epilogue) |
//   ScheduleConfig::ToString() | InlineOrder | every GpuSpec rate/limit
//
// Two layers share that key:
//   - the *program* layer memoizes phase 1 (CompileSimProgram): the
//     trace-compiled micro-op program plus launch geometry, held by
//     shared_ptr so entries stay valid while callers replay them;
//   - the *timing* layer memoizes the end result (phase 1 + phase 2). A
//     timing miss pulls the program through the program layer and only
//     pays the cheap bytecode replay, so even cold timing sweeps
//     amortize the IR walk across waves/specs that share a program.
//
// The cache is sharded and thread-safe: concurrent misses on the same key
// may both compile (the race is benign — both compute the same value and
// one insert wins), while hits are lock-striped lookups. Per-layer
// hit/miss counters live in the shards, are updated in the same critical
// section that touches the maps, and are snapshotted under an all-shards
// lock, so GetSimCacheStats() is linearizable against concurrent sweeps
// and resets (hammered by the TSan-covered snapshot test). They feed the
// throughput benches, the cache tests, and the obs metrics registry
// (`sim.cache.*` callback gauges).
//
// Residency is bounded: under an ALCOP_CACHE_BYTES budget (or
// SetSimCacheBudgetBytes) both layers evict least-recently-used entries.
// Recency is a per-shard tick clock bumped in the same critical section
// as the map touch; an insert that pushes the resident footprint —
// timing entries + per-config program tables + the skeleton pool counted
// once — over budget evicts the stalest entries of its own shard (only
// that shard's lock is held, so eviction never blocks other shards; if
// that shard alone cannot free enough, a follow-up pass visits the other
// shards one lock at a time) and compacts the skeleton intern pool so
// orphaned instruction arenas are returned too. Shared-ptr hand-out makes eviction safe against
// in-flight replays, and warm replay stays zero-allocation: eviction
// only drops ownership, it never touches a caller's ReplayArena.
//
// The persistence layer (serving/persist.h) round-trips both layers
// through SnapshotCachedTimings/SnapshotCachedPrograms and the
// InsertCached* entry points; its disk hit/miss/byte counters are
// carried here so `sim.cache.disk.*` renders alongside the in-memory
// gauges.
#ifndef ALCOP_SIM_SIM_CACHE_H_
#define ALCOP_SIM_SIM_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/launch.h"

namespace alcop {
namespace sim {

struct SimCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
  // Program (phase-1) layer counters.
  uint64_t program_hits = 0;
  uint64_t program_misses = 0;
  uint64_t program_entries = 0;
  uint64_t program_bytes = 0;  // per-config footprint (patch tables etc.)
  // Structure sharing: distinct skeletons referenced by the cached
  // programs, and their footprint counted once each (configs that differ
  // only numerically share one skeleton, so program_skeletons <<
  // program_entries on a tuning sweep — the bytes-per-config win).
  uint64_t program_skeletons = 0;
  uint64_t skeleton_bytes = 0;
  // What the program layer would weigh if every entry held a private copy
  // of its skeleton (the pre-sharing layout): program_bytes plus each
  // program's skeleton counted once *per program*. The sharing gain the
  // throughput bench reports is program_bytes_unshared /
  // (program_bytes + skeleton_bytes).
  uint64_t program_bytes_unshared = 0;

  // LRU accounting. timing_bytes is the timing layer's footprint (keys,
  // reasons, entry structs); resident_bytes is what the budget bounds:
  // timing_bytes + program-layer bytes (keys + patch tables) + the
  // skeleton *pool* bytes counted once per pool — never once per sharing
  // program, and including orphans awaiting compaction, so the gauge can
  // only over-report vs. the budget, not under-report.
  uint64_t timing_bytes = 0;
  uint64_t resident_bytes = 0;
  uint64_t budget_bytes = 0;  // 0 = unbounded
  uint64_t evictions = 0;     // timing_evictions + program_evictions
  uint64_t timing_evictions = 0;
  uint64_t program_evictions = 0;

  // Persistent-store counters (maintained by serving/persist.cc via
  // AddSimCacheDiskStats): entries served from / missing in the on-disk
  // cache, and payload bytes deserialized on load.
  uint64_t disk_hits = 0;
  uint64_t disk_misses = 0;
  uint64_t disk_load_bytes = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
  double ProgramHitRate() const {
    uint64_t total = program_hits + program_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(program_hits) /
                            static_cast<double>(total);
  }
};

// The canonical cache key (exposed for tests).
std::string SimCacheKey(const schedule::GemmOp& op,
                        const schedule::ScheduleConfig& config,
                        const target::GpuSpec& spec,
                        schedule::InlineOrder inline_order);

// Phase 1 through the program layer: the trace-compiled SimProgram for
// the triple, shared with every other caller of the same key (never
// null; infeasible schedules yield a cached infeasible program).
std::shared_ptr<const SimProgram> CachedSimProgram(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec,
    schedule::InlineOrder inline_order =
        schedule::InlineOrder::kAfterPipelining);

// Lookup-only probe of the timing layer: fills `out` and counts a hit
// (with an LRU touch) when the triple is cached; counts nothing when
// absent — the caller's eventual CachedCompileAndSimulate counts the
// miss. The serving fast lane uses this to route cache-hot requests
// without ever paying a compile on the latency-critical path.
bool ProbeCachedTiming(const schedule::GemmOp& op,
                       const schedule::ScheduleConfig& config,
                       const target::GpuSpec& spec,
                       schedule::InlineOrder inline_order,
                       KernelTiming* out);

// CompileAndSimulate through the process-wide cache. A timing miss
// replays the (cached) program rather than re-walking the IR.
KernelTiming CachedCompileAndSimulate(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec,
    schedule::InlineOrder inline_order =
        schedule::InlineOrder::kAfterPipelining);

// Snapshot of the global counters and entry count.
SimCacheStats GetSimCacheStats();

// Drops every entry and zeroes the counters (tests and benches that need
// a cold cache). The byte budget itself is NOT reset — it is
// configuration, not state.
void ResetSimCache();

// ---------------------------------------------------------------------------
// Residency budget.
// ---------------------------------------------------------------------------

// Caps the resident footprint (see SimCacheStats::resident_bytes). 0
// disables eviction. The initial value comes from the ALCOP_CACHE_BYTES
// environment variable (unset/unparsable = unbounded); SetSimCacheBudget-
// Bytes overrides it at runtime and applies to subsequent inserts.
void SetSimCacheBudgetBytes(uint64_t bytes);
uint64_t GetSimCacheBudgetBytes();

// ---------------------------------------------------------------------------
// Persistence hooks (serving/persist.h).
// ---------------------------------------------------------------------------

// Consistent copies of each layer under the all-shards lock, for
// serialization. Program entries are shared_ptrs, so a snapshot stays
// valid while eviction proceeds underneath it.
std::vector<std::pair<std::string, KernelTiming>> SnapshotCachedTimings();
std::vector<std::pair<std::string, std::shared_ptr<const SimProgram>>>
SnapshotCachedPrograms();

// Seed an entry loaded from disk. Counts neither hit nor miss (the disk
// layer has its own counters); an existing in-memory entry for the key
// wins — the live cache is never clobbered by a stale load. Subject to
// the same LRU budget as compiled entries.
void InsertCachedTiming(const std::string& key, const KernelTiming& timing);
void InsertCachedProgram(const std::string& key,
                         std::shared_ptr<const SimProgram> program);

// Accumulates persistent-store counters into the sim.cache.disk.* gauges
// (relaxed; called by the persistence layer, read by stats snapshots).
void AddSimCacheDiskStats(uint64_t hits, uint64_t misses,
                          uint64_t load_bytes);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_SIM_CACHE_H_
