// Process-wide memoization of the two-phase simulate pipeline.
//
// Tuning sweeps re-measure identical (operator, schedule, device) triples
// constantly: every search strategy walks the same enumerated space, and
// the benchmark binaries re-run strategies over multiple seeds and trial
// budgets. Compiling and simulating a kernel is pure — the same inputs
// always produce the same KernelTiming — so both phases are cached under
// a canonical text key:
//
//   op(family, batch, m, n, k, producer, epilogue) |
//   ScheduleConfig::ToString() | InlineOrder | every GpuSpec rate/limit
//
// Two layers share that key:
//   - the *program* layer memoizes phase 1 (CompileSimProgram): the
//     trace-compiled micro-op program plus launch geometry, held by
//     shared_ptr so entries stay valid while callers replay them;
//   - the *timing* layer memoizes the end result (phase 1 + phase 2). A
//     timing miss pulls the program through the program layer and only
//     pays the cheap bytecode replay, so even cold timing sweeps
//     amortize the IR walk across waves/specs that share a program.
//
// The cache is sharded and thread-safe: concurrent misses on the same key
// may both compile (the race is benign — both compute the same value and
// one insert wins), while hits are lock-striped lookups. Per-layer
// hit/miss counters live in the shards, are updated in the same critical
// section that touches the maps, and are snapshotted under an all-shards
// lock, so GetSimCacheStats() is linearizable against concurrent sweeps
// and resets (hammered by the TSan-covered snapshot test). They feed the
// throughput benches, the cache tests, and the obs metrics registry
// (`sim.cache.*` callback gauges).
#ifndef ALCOP_SIM_SIM_CACHE_H_
#define ALCOP_SIM_SIM_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sim/launch.h"

namespace alcop {
namespace sim {

struct SimCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
  // Program (phase-1) layer counters.
  uint64_t program_hits = 0;
  uint64_t program_misses = 0;
  uint64_t program_entries = 0;
  uint64_t program_bytes = 0;  // per-config footprint (patch tables etc.)
  // Structure sharing: distinct skeletons referenced by the cached
  // programs, and their footprint counted once each (configs that differ
  // only numerically share one skeleton, so program_skeletons <<
  // program_entries on a tuning sweep — the bytes-per-config win).
  uint64_t program_skeletons = 0;
  uint64_t skeleton_bytes = 0;
  // What the program layer would weigh if every entry held a private copy
  // of its skeleton (the pre-sharing layout): program_bytes plus each
  // program's skeleton counted once *per program*. The sharing gain the
  // throughput bench reports is program_bytes_unshared /
  // (program_bytes + skeleton_bytes).
  uint64_t program_bytes_unshared = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
  double ProgramHitRate() const {
    uint64_t total = program_hits + program_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(program_hits) /
                            static_cast<double>(total);
  }
};

// The canonical cache key (exposed for tests).
std::string SimCacheKey(const schedule::GemmOp& op,
                        const schedule::ScheduleConfig& config,
                        const target::GpuSpec& spec,
                        schedule::InlineOrder inline_order);

// Phase 1 through the program layer: the trace-compiled SimProgram for
// the triple, shared with every other caller of the same key (never
// null; infeasible schedules yield a cached infeasible program).
std::shared_ptr<const SimProgram> CachedSimProgram(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec,
    schedule::InlineOrder inline_order =
        schedule::InlineOrder::kAfterPipelining);

// CompileAndSimulate through the process-wide cache. A timing miss
// replays the (cached) program rather than re-walking the IR.
KernelTiming CachedCompileAndSimulate(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec,
    schedule::InlineOrder inline_order =
        schedule::InlineOrder::kAfterPipelining);

// Snapshot of the global counters and entry count.
SimCacheStats GetSimCacheStats();

// Drops every entry and zeroes the counters (tests and benches that need
// a cold cache).
void ResetSimCache();

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_SIM_CACHE_H_
