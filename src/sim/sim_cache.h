// Process-wide memoization of CompileAndSimulate.
//
// Tuning sweeps re-measure identical (operator, schedule, device) triples
// constantly: every search strategy walks the same enumerated space, and
// the benchmark binaries re-run strategies over multiple seeds and trial
// budgets. Compiling and simulating a kernel is pure — the same inputs
// always produce the same KernelTiming — so the result is cached under a
// canonical text key:
//
//   op(family, batch, m, n, k, producer, epilogue) |
//   ScheduleConfig::ToString() | InlineOrder | every GpuSpec rate/limit
//
// The cache is sharded and thread-safe: concurrent misses on the same key
// may both compile (the race is benign — both compute the same value and
// one insert wins), while hits are lock-striped lookups. Hit/miss counters
// feed the tuning-throughput bench and the cache tests.
#ifndef ALCOP_SIM_SIM_CACHE_H_
#define ALCOP_SIM_SIM_CACHE_H_

#include <cstdint>
#include <string>

#include "sim/launch.h"

namespace alcop {
namespace sim {

struct SimCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// The canonical cache key (exposed for tests).
std::string SimCacheKey(const schedule::GemmOp& op,
                        const schedule::ScheduleConfig& config,
                        const target::GpuSpec& spec,
                        schedule::InlineOrder inline_order);

// CompileAndSimulate through the process-wide cache.
KernelTiming CachedCompileAndSimulate(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec,
    schedule::InlineOrder inline_order =
        schedule::InlineOrder::kAfterPipelining);

// Snapshot of the global counters and entry count.
SimCacheStats GetSimCacheStats();

// Drops every entry and zeroes the counters (tests and benches that need
// a cold cache).
void ResetSimCache();

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_SIM_CACHE_H_
