#include "sim/executor.h"

#include <sstream>
#include <unordered_map>

#include "support/check.h"
#include "verify/diagnostic.h"

namespace alcop {
namespace sim {

using namespace alcop::ir;  // NOLINT(build/namespaces) - interpreter

namespace {

// One element written by an async copy, remembered until promotion.
struct PendingElem {
  TensorData* tensor;
  int64_t index;
  uint32_t epoch;
};

// FIFO state of one pipeline instance (one sync group within one
// threadblock/warp instance).
struct PipelineState {
  int64_t committed = 0;
  int64_t waited = 0;    // consumer_wait cursor
  int64_t released = 0;
  int64_t promoted_upto = -1;  // highest group index made visible
  std::vector<PendingElem> current;          // copies since last commit
  std::vector<std::vector<PendingElem>> fifo;  // per committed group
};

}  // namespace

class Executor::Impl {
 public:
  explicit Impl(ExecOptions options) : options_(options) {}

  void Bind(const Buffer& buffer, std::vector<float> data) {
    TensorData& tensor = Storage(buffer);
    ALCOP_CHECK_EQ(static_cast<int64_t>(data.size()), buffer->NumElements())
        << "bind size mismatch for '" << buffer->name << "'";
    tensor.values = std::move(data);
  }

  void Run(const Stmt& program) { Exec(program); }

  const std::vector<float>& Data(const Buffer& buffer) const {
    auto it = storage_.find(buffer.get());
    ALCOP_CHECK(it != storage_.end())
        << "buffer '" << buffer->name << "' was never touched";
    return it->second->values;
  }

 private:
  TensorData& Storage(const Buffer& buffer) {
    auto it = storage_.find(buffer.get());
    if (it == storage_.end()) {
      it = storage_
               .emplace(buffer.get(), std::make_unique<TensorData>(buffer))
               .first;
    }
    return *it->second;
  }

  // Pipeline instances are scoped per parallel-loop iteration: the key is
  // the group id plus the current blockIdx/warp loop bindings.
  std::string InstanceKey(int group) {
    std::ostringstream key;
    key << group;
    for (const auto& [var, value] : parallel_bindings_) {
      key << "/" << var << "=" << value;
    }
    return key.str();
  }

  std::string Path() const {
    std::string out;
    for (const std::string& entry : path_) {
      if (!out.empty()) out += " / ";
      out += entry;
    }
    return out;
  }

  // Async-semantics violations are reported as rendered Diagnostics so the
  // dynamic checker speaks the same language as the static verifier
  // (codes X001-X004 mirror the verifier's V001-V004).
  [[noreturn]] void FailAsync(const char* code, const std::string& message,
                              const std::string& leaf) const {
    verify::Diagnostic diag;
    diag.severity = verify::Severity::kError;
    diag.code = code;
    diag.message = message;
    diag.path = Path();
    if (!leaf.empty()) {
      diag.path += diag.path.empty() ? leaf : " / " + leaf;
    }
    throw CheckError(diag.Render());
  }

  void Exec(const Stmt& s) {
    switch (s->kind) {
      case StmtKind::kBlock: {
        for (const Stmt& child : static_cast<const BlockNode*>(s.get())->seq) {
          Exec(child);
        }
        return;
      }
      case StmtKind::kPragma:
        Exec(static_cast<const PragmaNode*>(s.get())->body);
        return;
      case StmtKind::kFor: {
        const auto* op = static_cast<const ForNode*>(s.get());
        int64_t extent = Evaluate(op->extent, env_);
        bool parallel = op->for_kind == ForKind::kBlockIdx ||
                        op->for_kind == ForKind::kWarp;
        path_.emplace_back();
        for (int64_t i = 0; i < extent; ++i) {
          env_.push_back({op->var.get(), i});
          if (parallel) parallel_bindings_.emplace_back(op->var->name, i);
          path_.back() = "for " + op->var->name + "=" + std::to_string(i);
          Exec(op->body);
          if (parallel) parallel_bindings_.pop_back();
          env_.pop_back();
        }
        path_.pop_back();
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto* op = static_cast<const IfThenElseNode*>(s.get());
        if (Evaluate(op->cond, env_) != 0) {
          Exec(op->then_case);
        } else if (op->else_case != nullptr) {
          Exec(op->else_case);
        }
        return;
      }
      case StmtKind::kAlloc:
        Storage(static_cast<const AllocNode*>(s.get())->buffer);
        return;
      case StmtKind::kCopy:
        ExecCopy(static_cast<const CopyNode*>(s.get()));
        return;
      case StmtKind::kFill:
        ExecFill(static_cast<const FillNode*>(s.get()));
        return;
      case StmtKind::kMma:
        ExecMma(static_cast<const MmaNode*>(s.get()));
        return;
      case StmtKind::kSync:
        ExecSync(static_cast<const SyncNode*>(s.get()));
        return;
    }
    ALCOP_CHECK(false) << "unhandled statement in executor";
  }

  float ReadElem(TensorData& tensor, int64_t index,
                 const char* reader) const {
    if (options_.check_async_semantics &&
        tensor.pending[static_cast<size_t>(index)]) {
      std::ostringstream msg;
      msg << "read of '" << tensor.buffer->name << "' element " << index
          << " before its consumer_wait (async data not yet visible)";
      FailAsync("X001", msg.str(),
                std::string(reader) + "(" + tensor.buffer->name + ")");
    }
    return tensor.values[static_cast<size_t>(index)];
  }

  void ExecCopy(const CopyNode* op) {
    TensorData& dst = Storage(op->dst.buffer);
    TensorData& src = Storage(op->src.buffer);
    ALCOP_CHECK(NonSingletonShape(op->dst) == NonSingletonShape(op->src))
        << "copy region shape mismatch: " << op->dst.buffer->name << " <- "
        << op->src.buffer->name;
    std::vector<int64_t> dst_idx = RegionIndices(op->dst, env_);
    std::vector<int64_t> src_idx = RegionIndices(op->src, env_);

    PipelineState* pipe = nullptr;
    if (op->is_async && options_.check_async_semantics) {
      pipe = &pipelines_[InstanceKey(op->pipeline_group)];
    }
    for (size_t i = 0; i < dst_idx.size(); ++i) {
      float value = ReadElem(src, src_idx[i], "copy");
      value = static_cast<float>(ApplyEwise(op->op, op->op_param, value));
      size_t di = static_cast<size_t>(dst_idx[i]);
      if (op->accumulate) value += dst.values[di];
      dst.values[di] = value;
      if (pipe != nullptr) {
        dst.pending[di] = 1;
        uint32_t e = ++dst.epoch[di];
        pipe->current.push_back({&dst, dst_idx[i], e});
      } else {
        dst.pending[di] = 0;
      }
    }
  }

  void ExecFill(const FillNode* op) {
    TensorData& dst = Storage(op->dst.buffer);
    for (int64_t index : RegionIndices(op->dst, env_)) {
      dst.values[static_cast<size_t>(index)] = static_cast<float>(op->value);
      dst.pending[static_cast<size_t>(index)] = 0;
    }
  }

  void ExecMma(const MmaNode* op) {
    TensorData& c = Storage(op->c.buffer);
    TensorData& a = Storage(op->a.buffer);
    TensorData& b = Storage(op->b.buffer);
    std::vector<int64_t> ci = RegionIndices(op->c, env_);
    std::vector<int64_t> ai = RegionIndices(op->a, env_);
    std::vector<int64_t> bi = RegionIndices(op->b, env_);
    int64_t m = op->m(), n = op->n(), k = op->k();
    // Regions are row-major over [m,k], [n,k], [m,n].
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) {
          acc += ReadElem(a, ai[static_cast<size_t>(i * k + kk)], "mma") *
                 ReadElem(b, bi[static_cast<size_t>(j * k + kk)], "mma");
        }
        c.values[static_cast<size_t>(ci[static_cast<size_t>(i * n + j)])] += acc;
      }
    }
  }

  void ExecSync(const SyncNode* op) {
    if (op->sync_kind == SyncKind::kBarrier) return;  // no functional effect
    if (!options_.check_async_semantics) return;
    PipelineState& pipe = pipelines_[InstanceKey(op->group)];
    const std::string& buffer_name =
        op->buffers.empty() ? std::string("?") : op->buffers[0]->name;
    switch (op->sync_kind) {
      case SyncKind::kProducerAcquire:
        if (pipe.committed - pipe.released >= StagesOf(op)) {
          std::ostringstream msg;
          msg << "producer_acquire of '" << buffer_name << "' group "
              << op->group << " without pipeline capacity ("
              << (pipe.committed - pipe.released) << " groups live in a "
              << StagesOf(op)
              << "-stage FIFO; missing consumer_release?)";
          FailAsync("X002", msg.str(), SyncLabel(op));
        }
        return;
      case SyncKind::kProducerCommit:
        pipe.fifo.push_back(std::move(pipe.current));
        pipe.current.clear();
        ++pipe.committed;
        return;
      case SyncKind::kConsumerWait: {
        int64_t target = pipe.waited + op->wait_ahead;
        if (target >= pipe.committed) {
          std::ostringstream msg;
          msg << "consumer_wait of '" << buffer_name << "' group "
              << op->group << " targets group " << target << " but only "
              << pipe.committed << " groups were committed";
          FailAsync("X003", msg.str(), SyncLabel(op));
        }
        for (int64_t g = pipe.promoted_upto + 1; g <= target; ++g) {
          for (const PendingElem& elem : pipe.fifo[static_cast<size_t>(g)]) {
            // Promote only if the element was not overwritten since.
            size_t index = static_cast<size_t>(elem.index);
            if (elem.tensor->epoch[index] == elem.epoch) {
              elem.tensor->pending[index] = 0;
            }
          }
        }
        pipe.promoted_upto = std::max(pipe.promoted_upto, target);
        ++pipe.waited;
        return;
      }
      case SyncKind::kConsumerRelease:
        ++pipe.released;
        if (pipe.released > pipe.committed) {
          std::ostringstream msg;
          msg << "consumer_release of '" << buffer_name << "' group "
              << op->group << " exceeds committed groups (" << pipe.released
              << " > " << pipe.committed << ")";
          FailAsync("X004", msg.str(), SyncLabel(op));
        }
        return;
      default:
        return;
    }
  }

  static std::string SyncLabel(const SyncNode* op) {
    std::string name = op->buffers.empty() ? "?" : op->buffers[0]->name;
    return name + "." + SyncKindName(op->sync_kind) + "@group" +
           std::to_string(op->group);
  }

  // Stage capacity of the group at this sync: derived from the expanded
  // buffer's leading dimension.
  static int64_t StagesOf(const SyncNode* op) {
    ALCOP_CHECK(!op->buffers.empty())
        << "pipeline sync without associated buffers";
    return op->buffers[0]->shape[0];
  }

  ExecOptions options_;
  std::vector<VarBinding> env_;
  std::vector<std::string> path_;
  std::vector<std::pair<std::string, int64_t>> parallel_bindings_;
  std::unordered_map<const BufferNode*, std::unique_ptr<TensorData>> storage_;
  std::unordered_map<std::string, PipelineState> pipelines_;
};

Executor::Executor(ExecOptions options)
    : impl_(std::make_unique<Impl>(options)) {}
Executor::~Executor() = default;

void Executor::Bind(const Buffer& buffer, std::vector<float> data) {
  impl_->Bind(buffer, std::move(data));
}

void Executor::Run(const Stmt& program) { impl_->Run(program); }

const std::vector<float>& Executor::Data(const Buffer& buffer) const {
  return impl_->Data(buffer);
}

std::vector<float> ReferenceGemm(const std::vector<float>& a,
                                 const std::vector<float>& b, int64_t batch,
                                 int64_t m, int64_t n, int64_t k,
                                 ir::EwiseOp a_op, double a_param,
                                 ir::EwiseOp epilogue_op,
                                 double epilogue_param) {
  ALCOP_CHECK_EQ(static_cast<int64_t>(a.size()), batch * m * k);
  ALCOP_CHECK_EQ(static_cast<int64_t>(b.size()), batch * n * k);
  std::vector<float> c(static_cast<size_t>(batch * m * n), 0.0f);
  for (int64_t bb = 0; bb < batch; ++bb) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) {
          float av = a[static_cast<size_t>((bb * m + i) * k + kk)];
          av = static_cast<float>(ApplyEwise(a_op, a_param, av));
          acc += av * b[static_cast<size_t>((bb * n + j) * k + kk)];
        }
        acc = static_cast<float>(ApplyEwise(epilogue_op, epilogue_param, acc));
        c[static_cast<size_t>((bb * m + i) * n + j)] = acc;
      }
    }
  }
  return c;
}

}  // namespace sim
}  // namespace alcop
