// Simulated memory: storage for IR buffers plus the per-element visibility
// state the async-semantics checker tracks.
//
// On Ampere, data written by cp.async is not visible until the matching
// pipeline wait completes. The functional executor models this: an
// asynchronous copy writes values immediately (the interpreter is
// sequential) but marks the elements *pending*; reading a pending element
// is an error until a consumer_wait promotes its commit-group. This turns
// missing or misplaced synchronization — the hardest bugs in the pipeline
// transformation — into deterministic test failures.
#ifndef ALCOP_SIM_MEMORY_H_
#define ALCOP_SIM_MEMORY_H_

#include <cstdint>
#include <vector>

#include "ir/buffer.h"
#include "ir/expr.h"

namespace alcop {
namespace sim {

// Storage and element states of one buffer.
struct TensorData {
  explicit TensorData(ir::Buffer buf);

  ir::Buffer buffer;
  std::vector<float> values;
  // Visibility state: pending[i] true while an async write awaits its
  // consumer_wait. epoch[i] increments per async write so a stale commit
  // group cannot promote an element that was overwritten since.
  std::vector<uint8_t> pending;
  std::vector<uint32_t> epoch;
};

// Row-major flat indices covered by a region under the given variable
// bindings. Throws CheckError on out-of-bounds access (this is how the
// tests prove the transformation's index wrapping works).
std::vector<int64_t> RegionIndices(const ir::BufferRegion& region,
                                   const std::vector<ir::VarBinding>& env);

// The region's extent list with size-1 dims dropped; copies require the
// non-singleton shapes of dst and src to match.
std::vector<int64_t> NonSingletonShape(const ir::BufferRegion& region);

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_MEMORY_H_
