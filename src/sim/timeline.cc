#include "sim/timeline.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/check.h"

namespace alcop {
namespace sim {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCompute: return "compute";
    case SpanKind::kIssue: return "issue";
    case SpanKind::kSyncStall: return "sync-stall";
    case SpanKind::kBarrier: return "barrier";
    case SpanKind::kBlockingCopy: return "blocking-copy";
    case SpanKind::kTransfer: return "transfer";
    case SpanKind::kFill: return "fill";
    case SpanKind::kStore: return "store";
  }
  return "?";
}

char SpanKindGlyph(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCompute: return 'M';
    case SpanKind::kIssue: return 'i';
    case SpanKind::kSyncStall: return 'w';
    case SpanKind::kBarrier: return 'b';
    case SpanKind::kBlockingCopy: return 'L';
    case SpanKind::kTransfer: return 'T';
    case SpanKind::kFill: return 'f';
    case SpanKind::kStore: return 's';
  }
  return '?';
}

namespace {
constexpr int kNumSpanKinds = 8;
}  // namespace

std::string RenderTimeline(const Timeline& timeline, int num_warps,
                           const RenderOptions& options) {
  ALCOP_CHECK_GT(num_warps, 0);
  ALCOP_CHECK_GT(options.width, 10);
  double horizon = std::max(timeline.makespan, 1.0);
  double cell = horizon / static_cast<double>(options.width);

  // Per row, per column, time covered by each span kind; the dominant
  // activity of a cell wins, so stall structure stays visible at any zoom.
  // Row key: (tb, warp) with warp == num_warps for the background row.
  std::map<std::pair<int, int>, std::vector<double>> coverage;
  auto row_of = [&](int tb, int warp) -> std::vector<double>& {
    auto key = std::make_pair(tb, warp);
    auto it = coverage.find(key);
    if (it == coverage.end()) {
      it = coverage
               .emplace(key, std::vector<double>(
                                 static_cast<size_t>(options.width) *
                                 kNumSpanKinds))
               .first;
    }
    return it->second;
  };

  for (const TimelineSpan& span : timeline.spans) {
    if (span.tb >= options.max_threadblocks) continue;
    int warp = span.warp < 0 ? num_warps : span.warp;
    std::vector<double>& row = row_of(span.tb, warp);
    int begin = std::clamp(static_cast<int>(span.start / cell), 0,
                           options.width - 1);
    int end = std::clamp(static_cast<int>(span.end / cell), begin,
                         options.width - 1);
    for (int col = begin; col <= end; ++col) {
      double cell_start = col * cell;
      double overlap = std::min(span.end, cell_start + cell) -
                       std::max(span.start, cell_start);
      if (overlap <= 0.0) continue;
      row[static_cast<size_t>(col) * kNumSpanKinds +
          static_cast<size_t>(span.kind)] += overlap;
    }
  }

  std::map<std::pair<int, int>, std::string> rows;
  for (const auto& [key, cells] : coverage) {
    std::string text(static_cast<size_t>(options.width), '.');
    for (int col = 0; col < options.width; ++col) {
      double best = 0.0;
      for (int kind = 0; kind < kNumSpanKinds; ++kind) {
        double value =
            cells[static_cast<size_t>(col) * kNumSpanKinds +
                  static_cast<size_t>(kind)];
        if (value > best) {
          best = value;
          text[static_cast<size_t>(col)] =
              SpanKindGlyph(static_cast<SpanKind>(kind));
        }
      }
    }
    rows.emplace(key, std::move(text));
  }

  std::ostringstream out;
  out << "time 0.." << static_cast<int64_t>(horizon) << " cycles, '"
      << SpanKindGlyph(SpanKind::kCompute) << "'=tensor-core '"
      << SpanKindGlyph(SpanKind::kBlockingCopy) << "'=blocking-load '"
      << SpanKindGlyph(SpanKind::kSyncStall) << "'=pipeline-wait '"
      << SpanKindGlyph(SpanKind::kBarrier) << "'=barrier '"
      << SpanKindGlyph(SpanKind::kIssue) << "'=issue '"
      << SpanKindGlyph(SpanKind::kTransfer) << "'=async-transfer\n";
  for (const auto& [key, row] : rows) {
    auto [tb, warp] = key;
    if (warp == num_warps) {
      out << "tb" << tb << " mem   | " << row << "\n";
    } else {
      out << "tb" << tb << " warp" << warp << " | " << row << "\n";
    }
  }
  return out.str();
}

}  // namespace sim
}  // namespace alcop
