#include "sim/trace.h"

#include "support/check.h"

namespace alcop {
namespace sim {

using namespace alcop::ir;  // NOLINT(build/namespaces) - interpreter

namespace {

class TraceBuilder {
 public:
  explicit TraceBuilder(int num_warps) {
    trace_.num_warps = num_warps;
    trace_.warps.resize(static_cast<size_t>(num_warps));
  }

  ThreadblockTrace Build(const Stmt& program) {
    Walk(program);
    return std::move(trace_);
  }

 private:
  // Warps the current statement context addresses: the flattened range
  // covered by the enclosing warp-loop bindings.
  struct WarpRange {
    int begin;
    int end;  // exclusive
    int Count() const { return end - begin; }
  };

  WarpRange CurrentWarps() const {
    int prod = 1;
    int fold = 0;
    for (const auto& [extent, value] : warp_stack_) {
      prod *= static_cast<int>(extent);
      fold = fold * static_cast<int>(extent) + static_cast<int>(value);
    }
    ALCOP_CHECK_EQ(trace_.num_warps % prod, 0)
        << "warp loop nest does not evenly cover the threadblock's warps";
    int span = trace_.num_warps / prod;
    return {fold * span, (fold + 1) * span};
  }

  void Emit(TraceEvent event, bool split_bytes) {
    WarpRange range = CurrentWarps();
    if (split_bytes && range.Count() > 1) {
      event.bytes /= range.Count();
    }
    for (int w = range.begin; w < range.end; ++w) {
      trace_.warps[static_cast<size_t>(w)].events.push_back(event);
    }
  }

  void Walk(const Stmt& s) {
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const Stmt& child : static_cast<const BlockNode*>(s.get())->seq) {
          Walk(child);
        }
        return;
      case StmtKind::kPragma:
        Walk(static_cast<const PragmaNode*>(s.get())->body);
        return;
      case StmtKind::kAlloc:
        return;
      case StmtKind::kFor: {
        const auto* op = static_cast<const ForNode*>(s.get());
        int64_t extent = Evaluate(op->extent, env_);
        if (op->for_kind == ForKind::kBlockIdx) {
          // One representative threadblock: all blocks run the same trace.
          env_.push_back({op->var.get(), 0});
          Walk(op->body);
          env_.pop_back();
          return;
        }
        bool is_warp = op->for_kind == ForKind::kWarp;
        for (int64_t i = 0; i < extent; ++i) {
          env_.push_back({op->var.get(), i});
          if (is_warp) warp_stack_.emplace_back(extent, i);
          Walk(op->body);
          if (is_warp) warp_stack_.pop_back();
          env_.pop_back();
        }
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto* op = static_cast<const IfThenElseNode*>(s.get());
        if (Evaluate(op->cond, env_) != 0) {
          Walk(op->then_case);
        } else if (op->else_case != nullptr) {
          Walk(op->else_case);
        }
        return;
      }
      case StmtKind::kCopy: {
        const auto* op = static_cast<const CopyNode*>(s.get());
        MemScope src = op->src.buffer->scope;
        MemScope dst = op->dst.buffer->scope;
        if (src == MemScope::kGlobal && dst == MemScope::kGlobal) {
          return;  // standalone elementwise pass, charged at launch level
        }
        TraceEvent event;
        event.src_scope = src;
        event.dst_scope = dst;
        if (dst == MemScope::kGlobal) {
          event.kind = EventKind::kStoreGlobal;
          event.bytes = op->dst.NumBytes();
          Emit(event, /*split_bytes=*/true);
          return;
        }
        event.kind = op->is_async ? EventKind::kCopyAsync : EventKind::kCopySync;
        event.bytes = op->src.NumElements() * op->dst.buffer->elem_bytes;
        event.group = op->pipeline_group;
        if (src == MemScope::kGlobal) {
          event.src_tensor = op->src.buffer.get();
        }
        Emit(event, /*split_bytes=*/true);
        return;
      }
      case StmtKind::kFill: {
        const auto* op = static_cast<const FillNode*>(s.get());
        TraceEvent event;
        event.kind = EventKind::kFill;
        event.bytes = op->dst.NumBytes();
        Emit(event, /*split_bytes=*/false);
        return;
      }
      case StmtKind::kMma: {
        const auto* op = static_cast<const MmaNode*>(s.get());
        TraceEvent event;
        event.kind = EventKind::kMma;
        event.flops = op->Flops();
        Emit(event, /*split_bytes=*/false);
        return;
      }
      case StmtKind::kSync: {
        const auto* op = static_cast<const SyncNode*>(s.get());
        TraceEvent event;
        event.group = op->group;
        switch (op->sync_kind) {
          case SyncKind::kBarrier: event.kind = EventKind::kBarrier; break;
          case SyncKind::kProducerAcquire: event.kind = EventKind::kAcquire; break;
          case SyncKind::kProducerCommit: event.kind = EventKind::kCommit; break;
          case SyncKind::kConsumerWait:
            event.kind = EventKind::kWait;
            event.wait_ahead = op->wait_ahead;
            break;
          case SyncKind::kConsumerRelease: event.kind = EventKind::kRelease; break;
        }
        Emit(event, /*split_bytes=*/false);
        return;
      }
    }
    ALCOP_CHECK(false) << "unhandled statement in trace builder";
  }

  ThreadblockTrace trace_;
  std::vector<VarBinding> env_;
  std::vector<std::pair<int64_t, int64_t>> warp_stack_;  // (extent, value)
};

}  // namespace

ThreadblockTrace BuildTrace(const Stmt& program, int num_warps) {
  ALCOP_CHECK_GT(num_warps, 0);
  return TraceBuilder(num_warps).Build(program);
}

}  // namespace sim
}  // namespace alcop
