// Execution-timeline capture and rendering.
//
// The discrete-event simulator can record what every warp was doing over
// time — tensor-core work, copy issue, synchronization stalls — plus the
// background async transfers on the memory pipes. RenderTimeline turns the
// record into an ASCII Gantt chart, reproducing the paper's Fig. 2/3
// intuition (load/compute overlap, pipeline fill, stall regions) from an
// actual simulation rather than a sketch.
#ifndef ALCOP_SIM_TIMELINE_H_
#define ALCOP_SIM_TIMELINE_H_

#include <string>
#include <vector>

#include "sim/trace.h"

namespace alcop {
namespace sim {

enum class SpanKind {
  kCompute,      // tensor-core MMA
  kIssue,        // copy-issue cycles on the warp
  kSyncStall,    // blocked in consumer_wait / producer_acquire
  kBarrier,      // blocked at a threadblock barrier
  kBlockingCopy, // synchronous copy latency exposed on the warp
  kTransfer,     // background async transfer (memory pipe row)
  kFill,
  kStore,
};

const char* SpanKindName(SpanKind kind);
char SpanKindGlyph(SpanKind kind);

struct TimelineSpan {
  int tb = 0;
  int warp = 0;         // -1 for background memory-pipe spans
  SpanKind kind = SpanKind::kCompute;
  double start = 0.0;
  double end = 0.0;
};

struct Timeline {
  std::vector<TimelineSpan> spans;
  double makespan = 0.0;
};

struct RenderOptions {
  int width = 110;        // character columns for the time axis
  int max_threadblocks = 2;  // rows are per (tb, warp); cap the output
};

// Renders one row per warp ('M' compute, 'i' issue, 'w' sync stall,
// 'b' barrier, 'L' blocking copy, 'f' fill, 's' store, '.' idle) plus one
// background row per threadblock for in-flight async transfers ('T').
std::string RenderTimeline(const Timeline& timeline, int num_warps,
                           const RenderOptions& options = {});

}  // namespace sim
}  // namespace alcop

#endif  // ALCOP_SIM_TIMELINE_H_
