#include "sim/compile.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "support/check.h"

namespace alcop {
namespace sim {

using namespace alcop::ir;  // NOLINT(build/namespaces) - compiler

namespace {

// Mirrors the trace builder's walk (trace.cc): same loop flattening, same
// warp-range broadcast, same byte splitting — but emits pre-resolved
// micro-ops instead of AST-shaped events.
class MicroOpCompiler {
 public:
  MicroOpCompiler(int num_warps, const target::GpuSpec& spec,
                  const TraceCompileOptions& options)
      : spec_(spec), options_(options) {
    skeleton_.num_warps = num_warps;
    skeleton_.groups = options.groups;
    skeleton_.blocking_async = options.blocking_async;
    program_.sync_overhead_cycles = spec.sync_overhead_cycles;
    program_.half_sync_overhead_cycles = spec.sync_overhead_cycles * 0.5;
    // The same rate expressions the interpreter's servers are built with.
    tc_rate_ = spec.tc_flops_per_sm_per_cycle / 4.0;
    lds_rate_ = spec.lds_bytes_per_cycle_per_sm /
                (options.swizzle ? 1.0 : spec.bank_conflict_factor);
    warps_.resize(static_cast<size_t>(num_warps));
  }

  MicroOpProgram Compile(const Stmt& program) {
    Walk(program);
    // Flatten the per-warp streams into one contiguous arena.
    size_t total = 0;
    for (const std::vector<MicroOp>& warp : warps_) total += warp.size();
    skeleton_.ops.reserve(total);
    skeleton_.warp_begin.reserve(warps_.size() + 1);
    skeleton_.warp_begin.push_back(0);
    for (std::vector<MicroOp>& warp : warps_) {
      skeleton_.ops.insert(skeleton_.ops.end(), warp.begin(), warp.end());
      skeleton_.warp_begin.push_back(
          static_cast<uint32_t>(skeleton_.ops.size()));
    }
    // Per-group commit counts (max over warps) size the replay arena's
    // group slots exactly, so a run never grows them.
    for (size_t w = 0; w < warps_.size(); ++w) {
      std::vector<int64_t> commits(skeleton_.groups.size(), 0);
      for (const MicroOp& op : warps_[w]) {
        if (op.kind == MicroOpKind::kCommit) {
          ++commits[static_cast<size_t>(op.group)];
        }
      }
      for (size_t g = 0; g < commits.size(); ++g) {
        skeleton_.groups[g].max_commits =
            std::max(skeleton_.groups[g].max_commits, commits[g]);
      }
    }
    // Bake each wait's commit capacity next to its wait_ahead so the
    // replay core never touches the group table.
    for (MicroOp& op : skeleton_.ops) {
      if (op.kind != MicroOpKind::kWait) continue;
      const int64_t cap =
          skeleton_.groups[static_cast<size_t>(op.group)].max_commits;
      ALCOP_CHECK_LT(cap, int64_t{1} << 22) << "commit count overflows aux";
      op.aux = static_cast<int32_t>(cap << 8) | (op.aux & 0xff);
    }
    // Structure sharing: configs that walked an identical instruction
    // sequence (only the pool values differ) get the same skeleton object
    // from the process-wide pool.
    skeleton_.hash = SkeletonHash(skeleton_);
    program_.skeleton = InternSkeleton(std::move(skeleton_));
    return std::move(program_);
  }

 private:
  struct WarpRange {
    int begin;
    int end;  // exclusive
    int Count() const { return end - begin; }
  };

  WarpRange CurrentWarps() const {
    int prod = 1;
    int fold = 0;
    for (const auto& [extent, value] : warp_stack_) {
      prod *= static_cast<int>(extent);
      fold = fold * static_cast<int>(extent) + static_cast<int>(value);
    }
    ALCOP_CHECK_EQ(skeleton_.num_warps % prod, 0)
        << "warp loop nest does not evenly cover the threadblock's warps";
    int span = skeleton_.num_warps / prod;
    return {fold * span, (fold + 1) * span};
  }

  void Emit(const MicroOp& op) {
    WarpRange range = CurrentWarps();
    for (int w = range.begin; w < range.end; ++w) {
      warps_[static_cast<size_t>(w)].push_back(op);
    }
  }

  // Splits the payload over the addressed warps exactly as the trace
  // builder does (integer division), returning the per-warp byte count.
  int64_t SplitBytes(int64_t bytes) const {
    int count = CurrentWarps().Count();
    return count > 1 ? bytes / count : bytes;
  }

  double DramFractionOf(const BufferNode* tensor) const {
    auto it = options_.dram_fraction.find(tensor);
    return it != options_.dram_fraction.end() ? it->second : 1.0;
  }

  // Interns an operand row, keyed by exact bit pattern (identical values
  // must share a row; nothing may be merged across rounding differences).
  int32_t Intern(const MicroOpOperands& v) {
    std::array<uint64_t, 5> key;
    static_assert(sizeof(key) == sizeof(v), "pool rows are five doubles");
    std::memcpy(key.data(), &v, sizeof(v));
    auto [it, inserted] =
        pool_index_.emplace(key, static_cast<int32_t>(program_.pool.size()));
    if (inserted) program_.pool.push_back(v);
    return it->second;
  }

  void Walk(const Stmt& s) {
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const Stmt& child : static_cast<const BlockNode*>(s.get())->seq) {
          Walk(child);
        }
        return;
      case StmtKind::kPragma:
        Walk(static_cast<const PragmaNode*>(s.get())->body);
        return;
      case StmtKind::kAlloc:
        return;
      case StmtKind::kFor: {
        const auto* op = static_cast<const ForNode*>(s.get());
        int64_t extent = Evaluate(op->extent, env_);
        if (op->for_kind == ForKind::kBlockIdx) {
          // One representative threadblock: all blocks run the same trace.
          env_.push_back({op->var.get(), 0});
          Walk(op->body);
          env_.pop_back();
          return;
        }
        bool is_warp = op->for_kind == ForKind::kWarp;
        for (int64_t i = 0; i < extent; ++i) {
          env_.push_back({op->var.get(), i});
          if (is_warp) warp_stack_.emplace_back(extent, i);
          Walk(op->body);
          if (is_warp) warp_stack_.pop_back();
          env_.pop_back();
        }
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto* op = static_cast<const IfThenElseNode*>(s.get());
        if (Evaluate(op->cond, env_) != 0) {
          Walk(op->then_case);
        } else if (op->else_case != nullptr) {
          Walk(op->else_case);
        }
        return;
      }
      case StmtKind::kCopy:
        WalkCopy(static_cast<const CopyNode*>(s.get()));
        return;
      case StmtKind::kFill: {
        const auto* op = static_cast<const FillNode*>(s.get());
        MicroOp out;
        out.kind = MicroOpKind::kFill;
        MicroOpOperands v;
        v.op0 = static_cast<double>(op->dst.NumBytes()) / 256.0;
        out.aux = Intern(v);
        Emit(out);
        return;
      }
      case StmtKind::kMma: {
        const auto* op = static_cast<const MmaNode*>(s.get());
        MicroOp out;
        out.kind = MicroOpKind::kMma;
        MicroOpOperands v;
        v.op0 = static_cast<double>(op->Flops()) / tc_rate_;
        v.payload = static_cast<double>(op->Flops());
        out.aux = Intern(v);
        Emit(out);
        return;
      }
      case StmtKind::kSync: {
        const auto* op = static_cast<const SyncNode*>(s.get());
        MicroOp out;
        out.group = static_cast<int16_t>(op->group);
        switch (op->sync_kind) {
          case SyncKind::kBarrier:
            out.kind = MicroOpKind::kBarrier;
            break;
          case SyncKind::kProducerAcquire:
            out.kind = MicroOpKind::kAcquire;
            out.aux = static_cast<int32_t>(
                          skeleton_.groups[static_cast<size_t>(op->group)]
                              .stages) -
                      1;
            break;
          case SyncKind::kProducerCommit:
            out.kind = MicroOpKind::kCommit;
            break;
          case SyncKind::kConsumerWait:
            out.kind = MicroOpKind::kWait;
            ALCOP_CHECK_GE(op->wait_ahead, 0);
            ALCOP_CHECK_LT(op->wait_ahead, 256)
                << "wait_ahead must fit the packed aux byte";
            out.aux = op->wait_ahead;
            break;
          case SyncKind::kConsumerRelease:
            out.kind = MicroOpKind::kRelease;
            break;
        }
        if (out.kind != MicroOpKind::kBarrier) {
          ALCOP_CHECK_GE(op->group, 0) << "pipeline sync without a group";
          ALCOP_CHECK_LT(static_cast<size_t>(op->group),
                         skeleton_.groups.size())
              << "pipeline group ids must be dense";
        }
        Emit(out);
        return;
      }
    }
    ALCOP_CHECK(false) << "unhandled statement in micro-op compiler";
  }

  void WalkCopy(const CopyNode* op) {
    MemScope src = op->src.buffer->scope;
    MemScope dst = op->dst.buffer->scope;
    if (src == MemScope::kGlobal && dst == MemScope::kGlobal) {
      return;  // standalone elementwise pass, charged at launch level
    }
    MicroOp out;
    MicroOpOperands v;
    if (dst == MemScope::kGlobal) {
      int64_t bytes = SplitBytes(op->dst.NumBytes());
      out.kind = MicroOpKind::kStoreGlobal;
      v.op0 = static_cast<double>(bytes) / spec_.copy_issue_bytes_per_cycle;
      v.op1 = static_cast<double>(bytes);
      v.op2 = spec_.dram_latency_cycles;
      v.payload = static_cast<double>(bytes);
      out.aux = Intern(v);
      Emit(out);
      return;
    }
    int64_t bytes =
        SplitBytes(op->src.NumElements() * op->dst.buffer->elem_bytes);
    if (op->is_async) {
      ALCOP_CHECK_GE(op->pipeline_group, 0)
          << "async copy without a pipeline group";
      ALCOP_CHECK_LT(static_cast<size_t>(op->pipeline_group),
                     skeleton_.groups.size())
          << "pipeline group ids must be dense";
    }
    out.group = static_cast<int16_t>(op->pipeline_group);
    v.op0 = static_cast<double>(bytes) / spec_.copy_issue_bytes_per_cycle;
    v.payload = static_cast<double>(bytes);
    if (src == MemScope::kGlobal) {
      out.kind = op->is_async ? MicroOpKind::kCopyAsyncGlobal
                              : MicroOpKind::kCopySyncGlobal;
      double fraction = DramFractionOf(op->src.buffer.get());
      v.op1 = static_cast<double>(bytes);
      v.op2 = static_cast<double>(bytes) * fraction;
      if (fraction > 1e-3) out.flags |= kMicroOpHasDram;
      // The interpreter's expected-value latency blend, folded per op.
      v.op3 = spec_.llc_latency_cycles +
              std::min(fraction, 1.0) *
                  (spec_.dram_latency_cycles - spec_.llc_latency_cycles);
    } else {
      out.kind = op->is_async ? MicroOpKind::kCopyAsyncShared
                              : MicroOpKind::kCopySyncShared;
      v.op1 = static_cast<double>(bytes) / lds_rate_;
      v.op2 = spec_.smem_latency_cycles;
    }
    out.aux = Intern(v);
    Emit(out);
  }

  const target::GpuSpec& spec_;
  const TraceCompileOptions& options_;
  MicroOpProgram program_;
  MicroOpSkeleton skeleton_;
  std::map<std::array<uint64_t, 5>, int32_t> pool_index_;
  std::vector<std::vector<MicroOp>> warps_;
  double tc_rate_ = 1.0;
  double lds_rate_ = 1.0;
  std::vector<VarBinding> env_;
  std::vector<std::pair<int64_t, int64_t>> warp_stack_;  // (extent, value)
};

// ---- Skeleton intern pool ----

bool SkeletonEqual(const MicroOpSkeleton& a, const MicroOpSkeleton& b) {
  if (a.num_warps != b.num_warps || a.blocking_async != b.blocking_async ||
      a.ops.size() != b.ops.size() ||
      a.warp_begin.size() != b.warp_begin.size() ||
      a.groups.size() != b.groups.size()) {
    return false;
  }
  if (!a.ops.empty() &&
      std::memcmp(a.ops.data(), b.ops.data(),
                  a.ops.size() * sizeof(MicroOp)) != 0) {
    return false;
  }
  if (a.warp_begin != b.warp_begin) return false;
  for (size_t g = 0; g < a.groups.size(); ++g) {
    if (a.groups[g].stages != b.groups[g].stages ||
        a.groups[g].tb_scope != b.groups[g].tb_scope ||
        a.groups[g].max_commits != b.groups[g].max_commits) {
      return false;
    }
  }
  return true;
}

struct SkeletonPool {
  std::mutex mu;
  // Bucketed by structural hash; equality confirmed before sharing, so a
  // hash collision costs a bucket scan, never a wrong skeleton.
  std::unordered_map<uint64_t,
                     std::vector<std::shared_ptr<const MicroOpSkeleton>>>
      buckets;
  uint64_t interns = 0;
  uint64_t shared = 0;
  uint64_t compactions = 0;
  uint64_t dropped = 0;
  // Resident bytes mirrored outside the lock for the sim cache's budget
  // check (exact under the lock, relaxed for readers).
  std::atomic<uint64_t> approx_bytes{0};
};

SkeletonPool& GlobalSkeletonPool() {
  static SkeletonPool* pool = new SkeletonPool();  // leaked: outlives threads
  return *pool;
}

}  // namespace

uint64_t SkeletonHash(const MicroOpSkeleton& skeleton) {
  // FNV-1a over the structural fields, bytewise for the POD instruction
  // arena.
  uint64_t h = 1469598103934665603ull;
  auto mix_bytes = [&h](const void* data, size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  auto mix_u64 = [&mix_bytes](uint64_t v) { mix_bytes(&v, sizeof(v)); };
  mix_u64(static_cast<uint64_t>(skeleton.num_warps));
  mix_u64(skeleton.blocking_async ? 1 : 0);
  mix_bytes(skeleton.ops.data(), skeleton.ops.size() * sizeof(MicroOp));
  mix_bytes(skeleton.warp_begin.data(),
            skeleton.warp_begin.size() * sizeof(uint32_t));
  for (const MicroOpGroup& g : skeleton.groups) {
    mix_u64(static_cast<uint64_t>(g.stages));
    mix_u64(g.tb_scope ? 1 : 0);
    mix_u64(static_cast<uint64_t>(g.max_commits));
  }
  return h;
}

std::shared_ptr<const MicroOpSkeleton> InternSkeleton(
    MicroOpSkeleton&& skeleton) {
  SkeletonPool& pool = GlobalSkeletonPool();
  std::lock_guard<std::mutex> lock(pool.mu);
  ++pool.interns;
  std::vector<std::shared_ptr<const MicroOpSkeleton>>& bucket =
      pool.buckets[skeleton.hash];
  for (const std::shared_ptr<const MicroOpSkeleton>& existing : bucket) {
    if (SkeletonEqual(*existing, skeleton)) {
      ++pool.shared;
      return existing;
    }
  }
  bucket.push_back(
      std::make_shared<const MicroOpSkeleton>(std::move(skeleton)));
  pool.approx_bytes.fetch_add(
      static_cast<uint64_t>(bucket.back()->MemoryBytes()),
      std::memory_order_relaxed);
  return bucket.back();
}

SkeletonPoolStats GetSkeletonPoolStats() {
  SkeletonPool& pool = GlobalSkeletonPool();
  std::lock_guard<std::mutex> lock(pool.mu);
  SkeletonPoolStats stats;
  stats.interns = pool.interns;
  stats.shared = pool.shared;
  stats.compactions = pool.compactions;
  stats.dropped = pool.dropped;
  for (const auto& [hash, bucket] : pool.buckets) {
    stats.skeletons += bucket.size();
    for (const std::shared_ptr<const MicroOpSkeleton>& s : bucket) {
      stats.bytes += static_cast<uint64_t>(s->MemoryBytes());
    }
  }
  return stats;
}

void ResetSkeletonPool() {
  SkeletonPool& pool = GlobalSkeletonPool();
  std::lock_guard<std::mutex> lock(pool.mu);
  pool.buckets.clear();
  pool.interns = 0;
  pool.shared = 0;
  pool.compactions = 0;
  pool.dropped = 0;
  pool.approx_bytes.store(0, std::memory_order_relaxed);
}

uint64_t CompactSkeletonPool() {
  SkeletonPool& pool = GlobalSkeletonPool();
  std::lock_guard<std::mutex> lock(pool.mu);
  ++pool.compactions;
  uint64_t dropped = 0;
  uint64_t dropped_bytes = 0;
  for (auto it = pool.buckets.begin(); it != pool.buckets.end();) {
    std::vector<std::shared_ptr<const MicroOpSkeleton>>& bucket = it->second;
    for (size_t i = bucket.size(); i > 0; --i) {
      // use_count() == 1 means the pool holds the only reference: no
      // cached program and no in-flight replay can reach this skeleton.
      // (A racing CachedSimProgram cannot resurrect it — interning
      // happens under this same mutex.)
      if (bucket[i - 1].use_count() == 1) {
        dropped_bytes += static_cast<uint64_t>(bucket[i - 1]->MemoryBytes());
        bucket.erase(bucket.begin() + static_cast<ptrdiff_t>(i - 1));
        ++dropped;
      }
    }
    it = bucket.empty() ? pool.buckets.erase(it) : std::next(it);
  }
  pool.dropped += dropped;
  pool.approx_bytes.fetch_sub(dropped_bytes, std::memory_order_relaxed);
  return dropped;
}

uint64_t ApproxSkeletonPoolBytes() {
  return GlobalSkeletonPool().approx_bytes.load(std::memory_order_relaxed);
}

MicroOpProgram CompileTraceProgram(const ir::Stmt& program, int num_warps,
                                   const target::GpuSpec& spec,
                                   const TraceCompileOptions& options) {
  ALCOP_CHECK_GT(num_warps, 0);
  return MicroOpCompiler(num_warps, spec, options).Compile(program);
}

}  // namespace sim
}  // namespace alcop
