#include "sim/desim.h"

#include <algorithm>
#include <queue>

#include "support/check.h"

namespace alcop {
namespace sim {

namespace {

// FIFO bandwidth server: amounts queue behind each other at a fixed rate.
struct Server {
  double free = 0.0;
  double rate = 1.0;

  // Serves `amount` starting no earlier than `t`; returns completion time
  // and optionally the service start (for timeline recording).
  double Serve(double t, double amount, double* start_out = nullptr) {
    double start = std::max(t, free);
    if (start_out != nullptr) *start_out = start;
    free = start + amount / rate;
    return free;
  }
};

// State of one pipeline scope instance (one sync group within one
// threadblock for shared scope, or one warp for register scope).
struct Instance {
  int participants = 1;
  std::vector<int> commits_seen;      // per group index
  std::vector<double> partial_max;    // max transfer completion so far
  std::vector<double> complete;       // completion time once fully committed
  std::vector<char> is_complete;
  std::vector<int64_t> releases;      // per participant slot

  struct WaitWaiter {
    int stream;
    int64_t group_index;
    double park_time;
  };
  struct AcquireWaiter {
    int stream;
    int64_t needed_releases;
    double park_time;
  };
  std::vector<WaitWaiter> wait_waiters;
  std::vector<AcquireWaiter> acquire_waiters;

  void EnsureGroup(size_t index) {
    while (commits_seen.size() <= index) {
      commits_seen.push_back(0);
      partial_max.push_back(0.0);
      complete.push_back(0.0);
      is_complete.push_back(0);
    }
  }

  int64_t MinReleases() const {
    int64_t min_rel = releases.empty() ? 0 : releases[0];
    for (int64_t r : releases) min_rel = std::min(min_rel, r);
    return min_rel;
  }
};

// Barrier rendezvous state of one threadblock.
struct BarrierState {
  int arrived = 0;
  double max_time = 0.0;
  // (stream id, arrival time) of waiters, excluding the releaser.
  std::vector<std::pair<int, double>> parked;
};

struct Stream {
  int tb = 0;
  int warp = 0;
  double time = 0.0;
  size_t pc = 0;
  // Per-group counters (indexed by group id).
  std::vector<int64_t> acquires, commits, waits;
  std::vector<double> copy_max;  // max completion of copies since last commit
  // Outstanding synchronous loads: a warp issues back-to-back loads whose
  // round-trip latencies overlap; the next dependent event (MMA, barrier,
  // store) stalls until the last one lands.
  double pending_sync = 0.0;
};

class Desim {
 public:
  Desim(const ThreadblockTrace& trace, const target::GpuSpec& spec,
        const DesimParams& params)
      : trace_(trace), spec_(spec), params_(params) {
    // Tensor cores sit in four SM sub-partitions; a warp is pinned to one,
    // so fewer than four resident warps cannot reach the SM's full
    // throughput.
    for (Server& partition : tc_) {
      partition.rate = spec.tc_flops_per_sm_per_cycle / 4.0;
    }
    lds_.rate = spec.lds_bytes_per_cycle_per_sm /
                (params.swizzle ? 1.0 : spec.bank_conflict_factor);
    int active_sms = params.active_sms > 0 ? params.active_sms : spec.num_sms;
    llc_.rate = spec.llc_bw_bytes_per_cycle / active_sms;
    dram_.rate = spec.dram_bw_bytes_per_cycle / active_sms;
    dram_write_.rate = spec.dram_write_bw_bytes_per_cycle / active_sms;

    int warps = trace.num_warps;
    size_t num_groups = params.groups.size();
    streams_.resize(static_cast<size_t>(params.threadblocks * warps));
    for (int tb = 0; tb < params.threadblocks; ++tb) {
      for (int w = 0; w < warps; ++w) {
        Stream& s = streams_[static_cast<size_t>(tb * warps + w)];
        s.tb = tb;
        s.warp = w;
        s.acquires.assign(num_groups, 0);
        s.commits.assign(num_groups, 0);
        s.waits.assign(num_groups, 0);
        s.copy_max.assign(num_groups, 0.0);
      }
    }
    barriers_.resize(static_cast<size_t>(params.threadblocks));
    // Instances: [tb][group] -> instance (register-scope instances are
    // per (tb, warp, group)).
    instances_.resize(static_cast<size_t>(params.threadblocks));
    for (int tb = 0; tb < params.threadblocks; ++tb) {
      auto& per_tb = instances_[static_cast<size_t>(tb)];
      per_tb.resize(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        if (params.groups[g].tb_scope) {
          per_tb[g].resize(1);
          per_tb[g][0].participants = warps;
          per_tb[g][0].releases.assign(static_cast<size_t>(warps), 0);
        } else {
          per_tb[g].resize(static_cast<size_t>(warps));
          for (Instance& inst : per_tb[g]) {
            inst.participants = 1;
            inst.releases.assign(1, 0);
          }
        }
      }
    }
  }

  double Run() {
    for (size_t i = 0; i < streams_.size(); ++i) {
      Push(static_cast<int>(i));
    }
    while (!queue_.empty()) {
      auto [neg_time, id] = queue_.top();
      queue_.pop();
      Step(id);
    }
    double makespan = store_completion_;
    for (const Stream& s : streams_) makespan = std::max(makespan, s.time);
    if (params_.timeline != nullptr) params_.timeline->makespan = makespan;
    // Every stream must have drained its trace; anything else is a
    // synchronization deadlock in the input program.
    for (const Stream& s : streams_) {
      ALCOP_CHECK_EQ(s.pc, trace_.warps[static_cast<size_t>(s.warp)].events.size())
          << "stream deadlocked at event " << s.pc << " (tb " << s.tb
          << ", warp " << s.warp << ")";
    }
    return makespan;
  }

 private:
  using QueueEntry = std::pair<double, int>;  // (-time, stream)

  void Push(int id) {
    queue_.emplace(-streams_[static_cast<size_t>(id)].time, id);
  }

  Instance& InstanceFor(const Stream& s, int group) {
    auto& per_group = instances_[static_cast<size_t>(s.tb)][static_cast<size_t>(group)];
    return per_group.size() == 1 ? per_group[0]
                                 : per_group[static_cast<size_t>(s.warp)];
  }

  int ParticipantSlot(const Stream& s, int group) const {
    return params_.groups[static_cast<size_t>(group)].tb_scope ? s.warp : 0;
  }

  void Record(int tb, int warp, SpanKind kind, double start, double end) {
    if (params_.timeline == nullptr || end <= start) return;
    params_.timeline->spans.push_back({tb, warp, kind, start, end});
  }

  double TransferCompletion(double t, const TraceEvent& e, int tb) {
    double completion = TransferCompletionImpl(t, e);
    Record(tb, -1, SpanKind::kTransfer, t, completion);
    return completion;
  }

  double TransferCompletionImpl(double t, const TraceEvent& e) {
    if (e.src_scope == ir::MemScope::kGlobal) {
      double fraction = 1.0;
      auto it = params_.dram_fraction.find(e.src_tensor);
      if (it != params_.dram_fraction.end()) fraction = it->second;
      double bytes = static_cast<double>(e.bytes);
      double t_llc = llc_.Serve(t, bytes);
      double completion = t_llc;
      if (fraction > 1e-3) {
        completion = std::max(completion, dram_.Serve(t, bytes * fraction));
      }
      // Round-trip latency of the copy's critical path: mostly-LLC tiles
      // see LLC latency; the DRAM share of a tile stretches it toward the
      // DRAM round trip (misses of co-scheduled threadblocks overlap, so
      // an expected-value blend, not a hard max).
      double latency =
          spec_.llc_latency_cycles +
          std::min(fraction, 1.0) *
              (spec_.dram_latency_cycles - spec_.llc_latency_cycles);
      return completion + latency;
    }
    // Shared -> register through the LDS pipe.
    return lds_.Serve(t, static_cast<double>(e.bytes)) +
           spec_.smem_latency_cycles;
  }

  // Processes one event of the stream; reinserts the stream unless it
  // parked or finished.
  void Step(int id) {
    Stream& s = streams_[static_cast<size_t>(id)];
    const std::vector<TraceEvent>& events =
        trace_.warps[static_cast<size_t>(s.warp)].events;
    if (s.pc >= events.size()) return;
    const TraceEvent& e = events[s.pc];

    switch (e.kind) {
      case EventKind::kFill: {
        double t0 = s.time;
        s.time += static_cast<double>(e.bytes) / 256.0;
        Record(s.tb, s.warp, SpanKind::kFill, t0, s.time);
        break;
      }
      case EventKind::kMma: {
        DrainSyncLoads(s);
        // Warps are distributed round-robin over the four sub-partitions.
        Server& partition =
            tc_[static_cast<size_t>((s.tb * trace_.num_warps + s.warp) % 4)];
        double start = 0.0;
        s.time = partition.Serve(s.time, static_cast<double>(e.flops), &start);
        Record(s.tb, s.warp, SpanKind::kCompute, start, s.time);
        break;
      }
      case EventKind::kCopyAsync: {
        double t0 = s.time;
        s.time += static_cast<double>(e.bytes) / spec_.copy_issue_bytes_per_cycle;
        Record(s.tb, s.warp, SpanKind::kIssue, t0, s.time);
        double completion = TransferCompletion(s.time, e, s.tb);
        ALCOP_CHECK_GE(e.group, 0) << "async copy without a pipeline group";
        s.copy_max[static_cast<size_t>(e.group)] =
            std::max(s.copy_max[static_cast<size_t>(e.group)], completion);
        if (params_.blocking_async) {
          Record(s.tb, s.warp, SpanKind::kBlockingCopy, s.time, completion);
          s.time = completion;
        }
        break;
      }
      case EventKind::kCopySync: {
        double t0 = s.time;
        s.time += static_cast<double>(e.bytes) / spec_.copy_issue_bytes_per_cycle;
        Record(s.tb, s.warp, SpanKind::kIssue, t0, s.time);
        s.pending_sync =
            std::max(s.pending_sync, TransferCompletion(s.time, e, s.tb));
        break;
      }
      case EventKind::kStoreGlobal: {
        DrainSyncLoads(s);
        double t0 = s.time;
        s.time += static_cast<double>(e.bytes) / spec_.copy_issue_bytes_per_cycle;
        Record(s.tb, s.warp, SpanKind::kStore, t0, s.time);
        double completion =
            dram_write_.Serve(s.time, static_cast<double>(e.bytes)) +
            spec_.dram_latency_cycles;
        store_completion_ = std::max(store_completion_, completion);
        break;
      }
      case EventKind::kAcquire: {
        Instance& inst = InstanceFor(s, e.group);
        int64_t n = s.acquires[static_cast<size_t>(e.group)];
        int64_t needed = n - (params_.groups[static_cast<size_t>(e.group)].stages - 1);
        if (needed > inst.MinReleases()) {
          inst.acquire_waiters.push_back({id, needed, s.time});
          return;  // parked
        }
        s.time += spec_.sync_overhead_cycles;
        ++s.acquires[static_cast<size_t>(e.group)];
        break;
      }
      case EventKind::kCommit: {
        Instance& inst = InstanceFor(s, e.group);
        size_t idx = static_cast<size_t>(s.commits[static_cast<size_t>(e.group)]);
        inst.EnsureGroup(idx);
        inst.partial_max[idx] =
            std::max(inst.partial_max[idx], s.copy_max[static_cast<size_t>(e.group)]);
        s.copy_max[static_cast<size_t>(e.group)] = 0.0;
        if (++inst.commits_seen[idx] == inst.participants) {
          inst.complete[idx] = inst.partial_max[idx];
          inst.is_complete[idx] = 1;
          WakeWaitWaiters(inst, static_cast<int64_t>(idx));
        }
        ++s.commits[static_cast<size_t>(e.group)];
        s.time += spec_.sync_overhead_cycles * 0.5;
        break;
      }
      case EventKind::kWait: {
        Instance& inst = InstanceFor(s, e.group);
        int64_t idx = s.waits[static_cast<size_t>(e.group)] + e.wait_ahead;
        if (static_cast<size_t>(idx) >= inst.is_complete.size() ||
            !inst.is_complete[static_cast<size_t>(idx)]) {
          inst.wait_waiters.push_back({id, idx, s.time});
          return;  // parked
        }
        double t0 = s.time;
        s.time = std::max(s.time, inst.complete[static_cast<size_t>(idx)]) +
                 spec_.sync_overhead_cycles;
        Record(s.tb, s.warp, SpanKind::kSyncStall, t0, s.time);
        ++s.waits[static_cast<size_t>(e.group)];
        break;
      }
      case EventKind::kRelease: {
        Instance& inst = InstanceFor(s, e.group);
        ++inst.releases[static_cast<size_t>(ParticipantSlot(s, e.group))];
        s.time += spec_.sync_overhead_cycles * 0.5;
        WakeAcquireWaiters(inst, s.time);
        break;
      }
      case EventKind::kBarrier: {
        DrainSyncLoads(s);
        BarrierState& barrier = barriers_[static_cast<size_t>(s.tb)];
        barrier.max_time = std::max(barrier.max_time, s.time);
        if (++barrier.arrived < trace_.num_warps) {
          barrier.parked.emplace_back(id, s.time);
          ++s.pc;  // the releaser advances everyone past the barrier
          return;
        }
        double resume = barrier.max_time + spec_.sync_overhead_cycles;
        for (const auto& [parked_id, arrival] : barrier.parked) {
          Stream& p = streams_[static_cast<size_t>(parked_id)];
          Record(p.tb, p.warp, SpanKind::kBarrier, arrival, resume);
          p.time = resume;
          Push(parked_id);
        }
        barrier.parked.clear();
        barrier.arrived = 0;
        barrier.max_time = 0.0;
        Record(s.tb, s.warp, SpanKind::kBarrier, s.time, resume);
        s.time = resume;
        break;
      }
    }

    ++s.pc;
    if (s.pc < events.size()) Push(id);
  }

  void DrainSyncLoads(Stream& s) {
    if (s.pending_sync > s.time) {
      Record(s.tb, s.warp, SpanKind::kBlockingCopy, s.time, s.pending_sync);
      s.time = s.pending_sync;
    }
    s.pending_sync = 0.0;
  }

  void WakeWaitWaiters(Instance& inst, int64_t group_index) {
    auto it = inst.wait_waiters.begin();
    while (it != inst.wait_waiters.end()) {
      if (it->group_index == group_index) {
        Stream& s = streams_[static_cast<size_t>(it->stream)];
        const TraceEvent& e =
            trace_.warps[static_cast<size_t>(s.warp)].events[s.pc];
        s.time = std::max(it->park_time,
                          inst.complete[static_cast<size_t>(group_index)]) +
                 spec_.sync_overhead_cycles;
        Record(s.tb, s.warp, SpanKind::kSyncStall, it->park_time, s.time);
        ++s.waits[static_cast<size_t>(e.group)];
        ++s.pc;
        if (s.pc < trace_.warps[static_cast<size_t>(s.warp)].events.size()) {
          Push(it->stream);
        }
        it = inst.wait_waiters.erase(it);
      } else {
        ++it;
      }
    }
  }

  void WakeAcquireWaiters(Instance& inst, double release_time) {
    int64_t min_rel = inst.MinReleases();
    auto it = inst.acquire_waiters.begin();
    while (it != inst.acquire_waiters.end()) {
      if (it->needed_releases <= min_rel) {
        Stream& s = streams_[static_cast<size_t>(it->stream)];
        const TraceEvent& e =
            trace_.warps[static_cast<size_t>(s.warp)].events[s.pc];
        s.time = std::max(it->park_time, release_time) +
                 spec_.sync_overhead_cycles;
        Record(s.tb, s.warp, SpanKind::kSyncStall, it->park_time, s.time);
        ++s.acquires[static_cast<size_t>(e.group)];
        ++s.pc;
        if (s.pc < trace_.warps[static_cast<size_t>(s.warp)].events.size()) {
          Push(it->stream);
        }
        it = inst.acquire_waiters.erase(it);
      } else {
        ++it;
      }
    }
  }

  const ThreadblockTrace& trace_;
  const target::GpuSpec& spec_;
  const DesimParams& params_;

  Server tc_[4];
  Server lds_, llc_, dram_, dram_write_;
  std::vector<Stream> streams_;
  std::vector<BarrierState> barriers_;
  // instances_[tb][group] -> one (tb-scope) or num_warps (warp-scope).
  std::vector<std::vector<std::vector<Instance>>> instances_;
  std::priority_queue<QueueEntry> queue_;  // (-time, stream): min-time first
  double store_completion_ = 0.0;
};

}  // namespace

double SimulateBatch(const ThreadblockTrace& trace,
                     const target::GpuSpec& spec, const DesimParams& params) {
  ALCOP_CHECK_GT(params.threadblocks, 0);
  return Desim(trace, spec, params).Run();
}

}  // namespace sim
}  // namespace alcop
