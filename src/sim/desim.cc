#include "sim/desim.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "support/check.h"

namespace alcop {
namespace sim {

namespace {

// FIFO bandwidth server: amounts queue behind each other at a fixed rate.
struct Server {
  double free = 0.0;
  double rate = 1.0;

  // Serves `amount` starting no earlier than `t`; returns completion time
  // and optionally the service start (for timeline recording).
  double Serve(double t, double amount, double* start_out = nullptr) {
    double start = std::max(t, free);
    if (start_out != nullptr) *start_out = start;
    free = start + amount / rate;
    return free;
  }
};

// State of one pipeline scope instance (one sync group within one
// threadblock for shared scope, or one warp for register scope).
struct Instance {
  int participants = 1;
  std::vector<int> commits_seen;      // per group index
  std::vector<double> partial_max;    // max transfer completion so far
  std::vector<double> complete;       // completion time once fully committed
  std::vector<char> is_complete;
  std::vector<int64_t> releases;      // per participant slot

  struct WaitWaiter {
    int stream;
    int64_t group_index;
    double park_time;
  };
  struct AcquireWaiter {
    int stream;
    int64_t needed_releases;
    double park_time;
  };
  std::vector<WaitWaiter> wait_waiters;
  std::vector<AcquireWaiter> acquire_waiters;

  void EnsureGroup(size_t index) {
    while (commits_seen.size() <= index) {
      commits_seen.push_back(0);
      partial_max.push_back(0.0);
      complete.push_back(0.0);
      is_complete.push_back(0);
    }
  }

  int64_t MinReleases() const {
    int64_t min_rel = releases.empty() ? 0 : releases[0];
    for (int64_t r : releases) min_rel = std::min(min_rel, r);
    return min_rel;
  }
};

// Barrier rendezvous state of one threadblock.
struct BarrierState {
  int arrived = 0;
  double max_time = 0.0;
  // (stream id, arrival time) of waiters, excluding the releaser.
  std::vector<std::pair<int, double>> parked;
};

struct Stream {
  int tb = 0;
  int warp = 0;
  double time = 0.0;
  size_t pc = 0;
  // Per-group counters (indexed by group id).
  std::vector<int64_t> acquires, commits, waits;
  std::vector<double> copy_max;  // max completion of copies since last commit
  // Outstanding synchronous loads: a warp issues back-to-back loads whose
  // round-trip latencies overlap; the next dependent event (MMA, barrier,
  // store) stalls until the last one lands.
  double pending_sync = 0.0;
};

class Desim {
 public:
  Desim(const ThreadblockTrace& trace, const target::GpuSpec& spec,
        const DesimParams& params)
      : trace_(trace), spec_(spec), params_(params) {
    // Tensor cores sit in four SM sub-partitions; a warp is pinned to one,
    // so fewer than four resident warps cannot reach the SM's full
    // throughput.
    for (Server& partition : tc_) {
      partition.rate = spec.tc_flops_per_sm_per_cycle / 4.0;
    }
    lds_.rate = spec.lds_bytes_per_cycle_per_sm /
                (params.swizzle ? 1.0 : spec.bank_conflict_factor);
    int active_sms = params.active_sms > 0 ? params.active_sms : spec.num_sms;
    llc_.rate = spec.llc_bw_bytes_per_cycle / active_sms;
    dram_.rate = spec.dram_bw_bytes_per_cycle / active_sms;
    dram_write_.rate = spec.dram_write_bw_bytes_per_cycle / active_sms;

    int warps = trace.num_warps;
    size_t num_groups = params.groups.size();
    streams_.resize(static_cast<size_t>(params.threadblocks * warps));
    for (int tb = 0; tb < params.threadblocks; ++tb) {
      for (int w = 0; w < warps; ++w) {
        Stream& s = streams_[static_cast<size_t>(tb * warps + w)];
        s.tb = tb;
        s.warp = w;
        s.acquires.assign(num_groups, 0);
        s.commits.assign(num_groups, 0);
        s.waits.assign(num_groups, 0);
        s.copy_max.assign(num_groups, 0.0);
      }
    }
    // PMU accumulators: one f64/i64 slot row per stream plus the
    // per-(stream, group) async-copy depth (sim/pmu.h). Only sized when
    // the caller asked for counters.
    pmu_ = params.pmu != nullptr;
    if (pmu_) {
      pmu_f64_.assign(streams_.size() * kPmuF64Count, 0.0);
      pmu_i64_.assign(streams_.size() * kPmuI64Count, 0);
      pmu_depth_.assign(streams_.size() * num_groups, 0);
    }
    barriers_.resize(static_cast<size_t>(params.threadblocks));
    // Instances: [tb][group] -> instance (register-scope instances are
    // per (tb, warp, group)).
    instances_.resize(static_cast<size_t>(params.threadblocks));
    for (int tb = 0; tb < params.threadblocks; ++tb) {
      auto& per_tb = instances_[static_cast<size_t>(tb)];
      per_tb.resize(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        if (params.groups[g].tb_scope) {
          per_tb[g].resize(1);
          per_tb[g][0].participants = warps;
          per_tb[g][0].releases.assign(static_cast<size_t>(warps), 0);
        } else {
          per_tb[g].resize(static_cast<size_t>(warps));
          for (Instance& inst : per_tb[g]) {
            inst.participants = 1;
            inst.releases.assign(1, 0);
          }
        }
      }
    }
  }

  double Run() {
    for (size_t i = 0; i < streams_.size(); ++i) {
      Push(static_cast<int>(i));
    }
    while (!queue_.empty()) {
      auto [neg_time, id] = queue_.top();
      queue_.pop();
      Step(id);
    }
    double makespan = store_completion_;
    for (const Stream& s : streams_) makespan = std::max(makespan, s.time);
    if (params_.timeline != nullptr) params_.timeline->makespan = makespan;
    if (pmu_) {
      AccumulatePmuStreams(params_.pmu, pmu_f64_.data(), pmu_i64_.data(),
                           streams_.size());
    }
    // Every stream must have drained its trace; anything else is a
    // synchronization deadlock in the input program.
    for (const Stream& s : streams_) {
      ALCOP_CHECK_EQ(s.pc, trace_.warps[static_cast<size_t>(s.warp)].events.size())
          << "stream deadlocked at event " << s.pc << " (tb " << s.tb
          << ", warp " << s.warp << ")";
    }
    return makespan;
  }

 private:
  using QueueEntry = std::pair<double, int>;  // (-time, stream)

  void Push(int id) {
    queue_.emplace(-streams_[static_cast<size_t>(id)].time, id);
  }

  Instance& InstanceFor(const Stream& s, int group) {
    auto& per_group = instances_[static_cast<size_t>(s.tb)][static_cast<size_t>(group)];
    return per_group.size() == 1 ? per_group[0]
                                 : per_group[static_cast<size_t>(s.warp)];
  }

  int ParticipantSlot(const Stream& s, int group) const {
    return params_.groups[static_cast<size_t>(group)].tb_scope ? s.warp : 0;
  }

  void Record(int tb, int warp, SpanKind kind, double start, double end) {
    if (params_.timeline == nullptr || end <= start) return;
    params_.timeline->spans.push_back({tb, warp, kind, start, end});
  }

  double TransferCompletion(double t, const TraceEvent& e, int tb) {
    double completion = TransferCompletionImpl(t, e);
    Record(tb, -1, SpanKind::kTransfer, t, completion);
    return completion;
  }

  double TransferCompletionImpl(double t, const TraceEvent& e) {
    if (e.src_scope == ir::MemScope::kGlobal) {
      double fraction = 1.0;
      auto it = params_.dram_fraction.find(e.src_tensor);
      if (it != params_.dram_fraction.end()) fraction = it->second;
      double bytes = static_cast<double>(e.bytes);
      double t_llc = llc_.Serve(t, bytes);
      double completion = t_llc;
      if (fraction > 1e-3) {
        completion = std::max(completion, dram_.Serve(t, bytes * fraction));
      }
      // Round-trip latency of the copy's critical path: mostly-LLC tiles
      // see LLC latency; the DRAM share of a tile stretches it toward the
      // DRAM round trip (misses of co-scheduled threadblocks overlap, so
      // an expected-value blend, not a hard max).
      double latency =
          spec_.llc_latency_cycles +
          std::min(fraction, 1.0) *
              (spec_.dram_latency_cycles - spec_.llc_latency_cycles);
      return completion + latency;
    }
    // Shared -> register through the LDS pipe.
    return lds_.Serve(t, static_cast<double>(e.bytes)) +
           spec_.smem_latency_cycles;
  }

  // Processes one event of the stream; reinserts the stream unless it
  // parked or finished.
  void Step(int id) {
    Stream& s = streams_[static_cast<size_t>(id)];
    const std::vector<TraceEvent>& events =
        trace_.warps[static_cast<size_t>(s.warp)].events;
    if (s.pc >= events.size()) return;
    const TraceEvent& e = events[s.pc];

    switch (e.kind) {
      case EventKind::kFill: {
        double t0 = s.time;
        s.time += static_cast<double>(e.bytes) / 256.0;
        Record(s.tb, s.warp, SpanKind::kFill, t0, s.time);
        if (pmu_) {
          PmuF(id)[kPmuFill] += static_cast<double>(e.bytes) / 256.0;
        }
        break;
      }
      case EventKind::kMma: {
        DrainSyncLoads(id, s);
        // Warps are distributed round-robin over the four sub-partitions.
        Server& partition =
            tc_[static_cast<size_t>((s.tb * trace_.num_warps + s.warp) % 4)];
        double start = 0.0;
        s.time = partition.Serve(s.time, static_cast<double>(e.flops), &start);
        Record(s.tb, s.warp, SpanKind::kCompute, start, s.time);
        if (pmu_) {
          double* f = PmuF(id);
          // The same quotient the trace compiler bakes as the op's
          // tensor-core cycles, so the counter is bit-identical to replay.
          f[kPmuTensorActive] +=
              static_cast<double>(e.flops) / partition.rate;
          f[kPmuFlops] += static_cast<double>(e.flops);
        }
        break;
      }
      case EventKind::kCopyAsync: {
        double t0 = s.time;
        s.time += static_cast<double>(e.bytes) / spec_.copy_issue_bytes_per_cycle;
        Record(s.tb, s.warp, SpanKind::kIssue, t0, s.time);
        double completion = TransferCompletion(s.time, e, s.tb);
        ALCOP_CHECK_GE(e.group, 0) << "async copy without a pipeline group";
        s.copy_max[static_cast<size_t>(e.group)] =
            std::max(s.copy_max[static_cast<size_t>(e.group)], completion);
        if (pmu_) {
          PmuCountCopy(id, e);
          double* f = PmuF(id);
          int64_t* n = PmuN(id);
          f[kPmuCpAsyncBytes] += static_cast<double>(e.bytes);
          ++n[kPmuCpAsyncTx];
          int32_t depth = ++pmu_depth_[static_cast<size_t>(id) *
                                           params_.groups.size() +
                                       static_cast<size_t>(e.group)];
          ++n[kPmuDepthHist0 + std::min(depth - 1, kPmuDepthBuckets - 1)];
          if (params_.blocking_async) {
            f[kPmuExposedCopy] += completion - s.time;
          }
        }
        if (params_.blocking_async) {
          Record(s.tb, s.warp, SpanKind::kBlockingCopy, s.time, completion);
          s.time = completion;
        }
        break;
      }
      case EventKind::kCopySync: {
        double t0 = s.time;
        s.time += static_cast<double>(e.bytes) / spec_.copy_issue_bytes_per_cycle;
        Record(s.tb, s.warp, SpanKind::kIssue, t0, s.time);
        s.pending_sync =
            std::max(s.pending_sync, TransferCompletion(s.time, e, s.tb));
        if (pmu_) PmuCountCopy(id, e);
        break;
      }
      case EventKind::kStoreGlobal: {
        DrainSyncLoads(id, s);
        double t0 = s.time;
        s.time += static_cast<double>(e.bytes) / spec_.copy_issue_bytes_per_cycle;
        Record(s.tb, s.warp, SpanKind::kStore, t0, s.time);
        double completion =
            dram_write_.Serve(s.time, static_cast<double>(e.bytes)) +
            spec_.dram_latency_cycles;
        store_completion_ = std::max(store_completion_, completion);
        if (pmu_) {
          double* f = PmuF(id);
          f[kPmuCopyIssue] +=
              static_cast<double>(e.bytes) / spec_.copy_issue_bytes_per_cycle;
          f[kPmuDramWriteBytes] += static_cast<double>(e.bytes);
          ++PmuN(id)[kPmuDramWriteTx];
        }
        break;
      }
      case EventKind::kAcquire: {
        Instance& inst = InstanceFor(s, e.group);
        int64_t n = s.acquires[static_cast<size_t>(e.group)];
        int64_t needed = n - (params_.groups[static_cast<size_t>(e.group)].stages - 1);
        if (needed > inst.MinReleases()) {
          inst.acquire_waiters.push_back({id, needed, s.time});
          if (pmu_) ++PmuN(id)[kPmuAcquireParks];
          return;  // parked
        }
        s.time += spec_.sync_overhead_cycles;
        ++s.acquires[static_cast<size_t>(e.group)];
        break;
      }
      case EventKind::kCommit: {
        Instance& inst = InstanceFor(s, e.group);
        size_t idx = static_cast<size_t>(s.commits[static_cast<size_t>(e.group)]);
        inst.EnsureGroup(idx);
        inst.partial_max[idx] =
            std::max(inst.partial_max[idx], s.copy_max[static_cast<size_t>(e.group)]);
        s.copy_max[static_cast<size_t>(e.group)] = 0.0;
        if (++inst.commits_seen[idx] == inst.participants) {
          inst.complete[idx] = inst.partial_max[idx];
          inst.is_complete[idx] = 1;
          WakeWaitWaiters(inst, static_cast<int64_t>(idx));
        }
        ++s.commits[static_cast<size_t>(e.group)];
        s.time += spec_.sync_overhead_cycles * 0.5;
        if (pmu_) {
          pmu_depth_[static_cast<size_t>(id) * params_.groups.size() +
                     static_cast<size_t>(e.group)] = 0;
        }
        break;
      }
      case EventKind::kWait: {
        Instance& inst = InstanceFor(s, e.group);
        int64_t idx = s.waits[static_cast<size_t>(e.group)] + e.wait_ahead;
        if (static_cast<size_t>(idx) >= inst.is_complete.size() ||
            !inst.is_complete[static_cast<size_t>(idx)]) {
          inst.wait_waiters.push_back({id, idx, s.time});
          return;  // parked (counted at wake; see kPmuWaitParks contract)
        }
        double t0 = s.time;
        s.time = std::max(s.time, inst.complete[static_cast<size_t>(idx)]) +
                 spec_.sync_overhead_cycles;
        Record(s.tb, s.warp, SpanKind::kSyncStall, t0, s.time);
        if (pmu_) {
          PmuF(id)[kPmuWaitStall] += s.time - t0;
          // Whether a wait physically parks depends on scheduling order
          // (the eager replay core parks where the strict interpreter
          // passes through), so the counter records the invariant fact
          // instead: the data was not ready on arrival.
          if (s.time - t0 > spec_.sync_overhead_cycles) {
            ++PmuN(id)[kPmuWaitParks];
          }
        }
        ++s.waits[static_cast<size_t>(e.group)];
        break;
      }
      case EventKind::kRelease: {
        Instance& inst = InstanceFor(s, e.group);
        ++inst.releases[static_cast<size_t>(ParticipantSlot(s, e.group))];
        s.time += spec_.sync_overhead_cycles * 0.5;
        WakeAcquireWaiters(inst, s.time);
        break;
      }
      case EventKind::kBarrier: {
        DrainSyncLoads(id, s);
        BarrierState& barrier = barriers_[static_cast<size_t>(s.tb)];
        barrier.max_time = std::max(barrier.max_time, s.time);
        if (++barrier.arrived < trace_.num_warps) {
          barrier.parked.emplace_back(id, s.time);
          if (pmu_) ++PmuN(id)[kPmuBarrierArrivals];
          ++s.pc;  // the releaser advances everyone past the barrier
          return;
        }
        double resume = barrier.max_time + spec_.sync_overhead_cycles;
        for (const auto& [parked_id, arrival] : barrier.parked) {
          Stream& p = streams_[static_cast<size_t>(parked_id)];
          Record(p.tb, p.warp, SpanKind::kBarrier, arrival, resume);
          if (pmu_) PmuF(parked_id)[kPmuBarrierStall] += resume - arrival;
          p.time = resume;
          Push(parked_id);
        }
        barrier.parked.clear();
        barrier.arrived = 0;
        barrier.max_time = 0.0;
        Record(s.tb, s.warp, SpanKind::kBarrier, s.time, resume);
        if (pmu_) {
          ++PmuN(id)[kPmuBarrierArrivals];
          PmuF(id)[kPmuBarrierStall] += resume - s.time;
        }
        s.time = resume;
        break;
      }
    }

    ++s.pc;
    if (s.pc < events.size()) Push(id);
  }

  void DrainSyncLoads(int id, Stream& s) {
    if (s.pending_sync > s.time) {
      Record(s.tb, s.warp, SpanKind::kBlockingCopy, s.time, s.pending_sync);
      if (pmu_) PmuF(id)[kPmuExposedCopy] += s.pending_sync - s.time;
      s.time = s.pending_sync;
    }
    s.pending_sync = 0.0;
  }

  // Byte/transaction counters shared by sync and async copies — the same
  // bytes, LDS quotient and DRAM-fraction product the trace compiler
  // bakes into the pooled operands (bit-identity with replay).
  void PmuCountCopy(int id, const TraceEvent& e) {
    double* f = PmuF(id);
    int64_t* n = PmuN(id);
    double bytes = static_cast<double>(e.bytes);
    f[kPmuCopyIssue] += bytes / spec_.copy_issue_bytes_per_cycle;
    if (e.src_scope == ir::MemScope::kGlobal) {
      f[kPmuLlcReadBytes] += bytes;
      ++n[kPmuLlcReadTx];
      double fraction = 1.0;
      auto it = params_.dram_fraction.find(e.src_tensor);
      if (it != params_.dram_fraction.end()) fraction = it->second;
      if (fraction > 1e-3) {
        f[kPmuDramReadBytes] += bytes * fraction;
        ++n[kPmuDramReadTx];
      }
    } else {
      f[kPmuLdsActive] += bytes / lds_.rate;
      f[kPmuLdsReadBytes] += bytes;
      ++n[kPmuLdsReadTx];
    }
  }

  double* PmuF(int id) {
    return pmu_f64_.data() + static_cast<size_t>(id) * kPmuF64Count;
  }
  int64_t* PmuN(int id) {
    return pmu_i64_.data() + static_cast<size_t>(id) * kPmuI64Count;
  }

  void WakeWaitWaiters(Instance& inst, int64_t group_index) {
    auto it = inst.wait_waiters.begin();
    while (it != inst.wait_waiters.end()) {
      if (it->group_index == group_index) {
        Stream& s = streams_[static_cast<size_t>(it->stream)];
        const TraceEvent& e =
            trace_.warps[static_cast<size_t>(s.warp)].events[s.pc];
        s.time = std::max(it->park_time,
                          inst.complete[static_cast<size_t>(group_index)]) +
                 spec_.sync_overhead_cycles;
        Record(s.tb, s.warp, SpanKind::kSyncStall, it->park_time, s.time);
        if (pmu_) {
          PmuF(it->stream)[kPmuWaitStall] += s.time - it->park_time;
          if (s.time - it->park_time > spec_.sync_overhead_cycles) {
            ++PmuN(it->stream)[kPmuWaitParks];
          }
        }
        ++s.waits[static_cast<size_t>(e.group)];
        ++s.pc;
        if (s.pc < trace_.warps[static_cast<size_t>(s.warp)].events.size()) {
          Push(it->stream);
        }
        it = inst.wait_waiters.erase(it);
      } else {
        ++it;
      }
    }
  }

  void WakeAcquireWaiters(Instance& inst, double release_time) {
    int64_t min_rel = inst.MinReleases();
    auto it = inst.acquire_waiters.begin();
    while (it != inst.acquire_waiters.end()) {
      if (it->needed_releases <= min_rel) {
        Stream& s = streams_[static_cast<size_t>(it->stream)];
        const TraceEvent& e =
            trace_.warps[static_cast<size_t>(s.warp)].events[s.pc];
        s.time = std::max(it->park_time, release_time) +
                 spec_.sync_overhead_cycles;
        Record(s.tb, s.warp, SpanKind::kSyncStall, it->park_time, s.time);
        if (pmu_) {
          PmuF(it->stream)[kPmuAcquireStall] += s.time - it->park_time;
        }
        ++s.acquires[static_cast<size_t>(e.group)];
        ++s.pc;
        if (s.pc < trace_.warps[static_cast<size_t>(s.warp)].events.size()) {
          Push(it->stream);
        }
        it = inst.acquire_waiters.erase(it);
      } else {
        ++it;
      }
    }
  }

  const ThreadblockTrace& trace_;
  const target::GpuSpec& spec_;
  const DesimParams& params_;

  Server tc_[4];
  Server lds_, llc_, dram_, dram_write_;
  std::vector<Stream> streams_;
  std::vector<BarrierState> barriers_;
  // instances_[tb][group] -> one (tb-scope) or num_warps (warp-scope).
  std::vector<std::vector<std::vector<Instance>>> instances_;
  std::priority_queue<QueueEntry> queue_;  // (-time, stream): min-time first
  double store_completion_ = 0.0;
  // PMU state (sized only when params.pmu != nullptr).
  bool pmu_ = false;
  std::vector<double> pmu_f64_;
  std::vector<int64_t> pmu_i64_;
  std::vector<int32_t> pmu_depth_;  // per (stream, group) in-flight copies
};

}  // namespace

double SimulateBatch(const ThreadblockTrace& trace,
                     const target::GpuSpec& spec, const DesimParams& params) {
  ALCOP_CHECK_GT(params.threadblocks, 0);
  return Desim(trace, spec, params).Run();
}

size_t ReplayArena::CapacityBytes() const {
  size_t total = streams.capacity() * sizeof(Stream) +
                 (acquires.capacity() + commits.capacity() +
                  waits.capacity() + releases.capacity()) * sizeof(int32_t) +
                 (copy_max.capacity() + slot_partial_max.capacity() +
                  slot_complete.capacity() + pool_scaled.capacity()) *
                     sizeof(double) +
                 (stream_inst.capacity() + stream_rel.capacity() +
                  inst_participants.capacity() + inst_slot_base.capacity() +
                  inst_rel_base.capacity() + inst_min_rel.capacity() +
                  slot_commits.capacity()) *
                     sizeof(int32_t) +
                 slot_done.capacity() * sizeof(uint8_t) +
                 waiters.capacity() * sizeof(WaiterLists) +
                 barriers.capacity() * sizeof(Barrier) +
                 heap.capacity() * sizeof(HeapEntry) +
                 pmu_f64.capacity() * sizeof(double) +
                 pmu_i64.capacity() * sizeof(int64_t) +
                 pmu_depth.capacity() * sizeof(int32_t);
  for (const WaiterLists& lists : waiters) {
    total += (lists.wait.capacity() + lists.acquire.capacity()) *
             sizeof(Waiter);
  }
  for (const Barrier& barrier : barriers) {
    total += barrier.parked.capacity() * sizeof(std::pair<int32_t, double>);
  }
  return total;
}

namespace {

// The bytecode replay core. A transliteration of Desim::Step over the flat
// micro-op program: every floating-point expression is evaluated in the
// same order with the same values, so the makespan and timeline spans are
// bit-identical to the interpreter (the per-event divisions by
// wave-independent rates were already folded into the program operands by
// the trace compiler, producing the exact same doubles).
//
// The hot loop works exclusively on raw pointers into the caller's pooled
// arena: flat SoA instance state, per-(stream, group) pre-resolved
// instance/release-slot tables, and a plain binary heap driven replace-top
// style — the common case of "finish event, requeue, pop next" costs one
// sift-down instead of a pop + push pair, and a stream that stays earliest
// keeps running with no heap traffic at all. Handlers are direct-threaded:
// each one ends in its own computed-goto dispatch site (a GNU extension,
// like the __int128 scheduler keys), so the branch predictor learns the
// opcode transitions that actually follow each kind instead of sharing one
// saturated indirect jump.
//
// The class is templated on whether a timeline is being captured. The hot
// (no-timeline) instantiation compiles every Record call out AND runs the
// eagerly-continuable micro-op kinds (see kFirstEagerKind) inline, out of
// strict timestamp order — result-identical by the commutativity argument
// in compile.h, and differentially tested against the interpreter over
// the full operator sweep. The timeline instantiation executes in exact
// pop order so that the recorded spans match the interpreter's byte for
// byte, order included.
//
// The second template flag enables PMU counter collection (sim/pmu.h):
// disabled, every counter hook compiles out and the arena's PMU rows are
// never sized — the warm zero-allocation contract is unchanged. Enabled,
// each stream accumulates into its own slot row; eager execution runs
// streams out of global order, but a stream's own additions still follow
// its program order, and the rows merge through AccumulatePmuStreams in
// fixed stream order — so the counters are bit-identical to the
// interpreter's despite the reordering.
template <bool kTimeline, bool kPmu>
class Replayer {
 public:
  Replayer(const MicroOpProgram& program, const ReplayWave& wave,
           ReplayArena& arena, Timeline* timeline, PmuCounters* pmu)
      : p_(program), sk_(*program.skeleton), wave_(wave), a_(arena),
        timeline_(timeline), pmu_out_(pmu) {}

  double Run() {
    Reset();
    // One entry per MicroOpKind, in enum order.
    static const void* kT[] = {
        &&handle_copy_async_global, &&handle_copy_async_shared,
        &&handle_copy_sync_global,  &&handle_copy_sync_shared,
        &&handle_store_global,      &&handle_mma,
        &&handle_acquire,           &&handle_release,
        &&handle_fill,              &&handle_commit,
        &&handle_wait,              &&handle_barrier};
    int32_t id;
    Stream* s;
    const MicroOp* op;
#define ALCOP_DISPATCH() goto *kT[static_cast<int>(op->kind)]
// Finishes an event: advance pc, then pick the next stream to run. In the
// hot instantiation a next op from the eagerly-continuable suffix of
// MicroOpKind runs inline regardless of the queue — out of timestamp order
// but provably result-identical (see compile.h). Otherwise, if the current
// stream would be popped right back it keeps running with no heap traffic;
// else its entry replaces the heap top (one sift-down) and the old top
// runs next. Both shortcuts preserve the exact pop order of the
// interpreter's push-then-pop, because the order is a strict total order
// over (time, id).
#define ALCOP_NEXT()                                        \
  do {                                                      \
    if (++s->pc == s->end) goto pop_next;                   \
    op = ops_ + s->pc;                                      \
    if constexpr (!kTimeline) {                             \
      if (op->kind >= kFirstEagerKind) ALCOP_DISPATCH();    \
      /* A PASSING acquire is also eager-safe: the pass path is        \
         stream-local (time += sync), and releases only ever raise     \
         imin_, so an acquire that passes now would also pass — with   \
         the identical result — at its strict queue turn. A would-park \
         acquire is NOT run early: a release firing before its queue   \
         turn could turn the park into a pass (or change the wake      \
         time), so it goes through the queue and decides there. */     \
      if (op->kind == MicroOpKind::kAcquire) {              \
        const size_t gi_ = GroupIndex(id, op->group);       \
        if (acq_[gi_] - op->aux <= imin_[sinst_[gi_]]) {    \
          ALCOP_DISPATCH();                                 \
        }                                                   \
      }                                                     \
    }                                                       \
    if (heap_size_ == 0) ALCOP_DISPATCH();                  \
    {                                                       \
      const Key key = MakeKey(s->time, id);                 \
      const Key top = tree_[0].key;                         \
      if (key < top) ALCOP_DISPATCH();                      \
      SiftRoot(key);                                        \
      id = KeyId(top);                                      \
      s = streams_ + id;                                    \
      if (s->pc >= s->end) goto pop_next;                   \
    }                                                       \
    op = ops_ + s->pc;                                      \
    ALCOP_DISPATCH();                                       \
  } while (0)

  pop_next:
    if (heap_size_ == 0) goto done;
    id = KeyId(tree_[0].key);
    if (--heap_size_ > 0) {
      SiftRoot(tree_[heap_size_].key);
    }
    s = streams_ + id;
    if (s->pc >= s->end) goto pop_next;  // woken after its last event
    op = ops_ + s->pc;
    ALCOP_DISPATCH();

  handle_fill: {
    const double t0 = s->time;
    s->time += spool_[op->aux * 8];
    Record(s->tb, s->warp, SpanKind::kFill, t0, s->time);
    if constexpr (kPmu) Pf(id)[kPmuFill] += spool_[op->aux * 8];
    ALCOP_NEXT();
  }

  handle_mma: {
    DrainSyncLoads(*s);
    // Streams are tb-major (id == tb * num_warps + warp), so the
    // interpreter's (tb * num_warps + warp) % 4 partition is id % 4.
    double& free = tc_free_[static_cast<size_t>(id) & 3];
    const double start = std::max(s->time, free);
    free = start + spool_[op->aux * 8];
    s->time = free;
    Record(s->tb, s->warp, SpanKind::kCompute, start, s->time);
    if constexpr (kPmu) {
      double* f = Pf(id);
      f[kPmuTensorActive] += spool_[op->aux * 8];
      f[kPmuFlops] += spool_[op->aux * 8 + 7];  // payload: FLOPs
    }
    ALCOP_NEXT();
  }

  handle_copy_async_global: {
    const double* v = spool_ + op->aux * 8;
    const double t0 = s->time;
    s->time += v[0];
    Record(s->tb, s->warp, SpanKind::kIssue, t0, s->time);
    const double completion = GlobalTransfer(s->time, v, op->flags, s->tb);
    double& copy_max = cmax_[GroupIndex(id, op->group)];
    copy_max = std::max(copy_max, completion);
    if constexpr (kPmu) {
      PmuGlobalRead(id, v, op->flags);
      double* f = Pf(id);
      int64_t* n = Pn(id);
      f[kPmuCpAsyncBytes] += v[7];
      ++n[kPmuCpAsyncTx];
      const int32_t depth = ++pd_[GroupIndex(id, op->group)];
      ++n[kPmuDepthHist0 +
          (depth < kPmuDepthBuckets ? depth - 1 : kPmuDepthBuckets - 1)];
      if (blocking_async_) f[kPmuExposedCopy] += completion - s->time;
    }
    if (blocking_async_) {
      Record(s->tb, s->warp, SpanKind::kBlockingCopy, s->time, completion);
      s->time = completion;
    }
    ALCOP_NEXT();
  }

  handle_copy_async_shared: {
    const double* v = spool_ + op->aux * 8;
    const double t0 = s->time;
    s->time += v[0];
    Record(s->tb, s->warp, SpanKind::kIssue, t0, s->time);
    const double completion = SharedTransfer(s->time, v, s->tb);
    double& copy_max = cmax_[GroupIndex(id, op->group)];
    copy_max = std::max(copy_max, completion);
    if constexpr (kPmu) {
      PmuSharedRead(id, v);
      double* f = Pf(id);
      int64_t* n = Pn(id);
      f[kPmuCpAsyncBytes] += v[7];
      ++n[kPmuCpAsyncTx];
      const int32_t depth = ++pd_[GroupIndex(id, op->group)];
      ++n[kPmuDepthHist0 +
          (depth < kPmuDepthBuckets ? depth - 1 : kPmuDepthBuckets - 1)];
      if (blocking_async_) f[kPmuExposedCopy] += completion - s->time;
    }
    if (blocking_async_) {
      Record(s->tb, s->warp, SpanKind::kBlockingCopy, s->time, completion);
      s->time = completion;
    }
    ALCOP_NEXT();
  }

  handle_copy_sync_global: {
    const double* v = spool_ + op->aux * 8;
    const double t0 = s->time;
    s->time += v[0];
    Record(s->tb, s->warp, SpanKind::kIssue, t0, s->time);
    const double completion = GlobalTransfer(s->time, v, op->flags, s->tb);
    s->pending_sync = std::max(s->pending_sync, completion);
    if constexpr (kPmu) PmuGlobalRead(id, v, op->flags);
    ALCOP_NEXT();
  }

  handle_copy_sync_shared: {
    const double* v = spool_ + op->aux * 8;
    const double t0 = s->time;
    s->time += v[0];
    Record(s->tb, s->warp, SpanKind::kIssue, t0, s->time);
    const double completion = SharedTransfer(s->time, v, s->tb);
    s->pending_sync = std::max(s->pending_sync, completion);
    if constexpr (kPmu) PmuSharedRead(id, v);
    ALCOP_NEXT();
  }

  handle_store_global: {
    DrainSyncLoads(*s);
    const double* v = spool_ + op->aux * 8;
    const double t0 = s->time;
    s->time += v[0];
    Record(s->tb, s->warp, SpanKind::kStore, t0, s->time);
    const double start = std::max(s->time, dram_write_free_);
    dram_write_free_ = start + v[6];  // op1 / dram-write rate
    const double completion = dram_write_free_ + v[2];
    store_completion_ = std::max(store_completion_, completion);
    if constexpr (kPmu) {
      double* f = Pf(id);
      f[kPmuCopyIssue] += v[0];
      f[kPmuDramWriteBytes] += v[7];
      ++Pn(id)[kPmuDramWriteTx];
    }
    ALCOP_NEXT();
  }

  handle_acquire: {
    const size_t gi = GroupIndex(id, op->group);
    const int32_t inst = sinst_[gi];
    const int32_t needed = acq_[gi] - op->aux;  // aux = stages - 1
    if (needed > imin_[inst]) {
      a_.waiters[static_cast<size_t>(inst)].acquire.push_back(
          {id, needed, s->time});
      if constexpr (kPmu) ++Pn(id)[kPmuAcquireParks];
      goto pop_next;  // parked
    }
    s->time += sync_;
    ++acq_[gi];
    ALCOP_NEXT();
  }

  handle_commit: {
    const size_t gi = GroupIndex(id, op->group);
    const int32_t inst = sinst_[gi];
    const int32_t count = com_[gi];
    const int32_t slot = ibase_[inst] + count;
    double& partial = spartial_[slot];
    partial = std::max(partial, cmax_[gi]);
    cmax_[gi] = 0.0;
    if (++scommits_[slot] == ipart_[inst]) {
      scomplete_[slot] = partial;
      sdone_[slot] = 1;
      WakeWaitWaiters(inst, count);
    }
    com_[gi] = count + 1;
    s->time += half_sync_;
    if constexpr (kPmu) pd_[gi] = 0;
    ALCOP_NEXT();
  }

  handle_wait: {
    const size_t gi = GroupIndex(id, op->group);
    const int32_t inst = sinst_[gi];
    const int32_t idx = wai_[gi] + (op->aux & 0xff);
    const int32_t cap = op->aux >> 8;  // baked max_commits
    if (static_cast<uint32_t>(idx) >= static_cast<uint32_t>(cap) ||
        !sdone_[ibase_[inst] + idx]) {
      a_.waiters[static_cast<size_t>(inst)].wait.push_back(
          {id, idx, s->time});
      goto pop_next;  // parked (counted at wake; see kPmuWaitParks contract)
    }
    const double t0 = s->time;
    s->time = std::max(s->time, scomplete_[ibase_[inst] + idx]) + sync_;
    Record(s->tb, s->warp, SpanKind::kSyncStall, t0, s->time);
    if constexpr (kPmu) {
      Pf(id)[kPmuWaitStall] += s->time - t0;
      // Scheduling-invariant park criterion (interpreter passes through
      // where this core parks): count data-not-ready, not physical parks.
      if (s->time - t0 > sync_) ++Pn(id)[kPmuWaitParks];
    }
    ++wai_[gi];
    ALCOP_NEXT();
  }

  handle_release: {
    const size_t gi = GroupIndex(id, op->group);
    const int32_t inst = sinst_[gi];
    const int32_t old = rel_[srel_[gi]]++;
    // The min over the release slots only moves when a slot at the min
    // advances; recounting then keeps the acquire check O(1).
    if (old == imin_[inst]) imin_[inst] = MinReleases(inst);
    s->time += half_sync_;
    WakeAcquireWaiters(inst, s->time);
    ALCOP_NEXT();
  }

  handle_barrier: {
    DrainSyncLoads(*s);
    ReplayArena::Barrier& barrier = a_.barriers[static_cast<size_t>(s->tb)];
    barrier.max_time = std::max(barrier.max_time, s->time);
    if (++barrier.arrived < sk_.num_warps) {
      barrier.parked.emplace_back(id, s->time);
      if constexpr (kPmu) ++Pn(id)[kPmuBarrierArrivals];
      ++s->pc;  // the releaser advances everyone past the barrier
      goto pop_next;
    }
    const double resume = barrier.max_time + sync_;
    for (const auto& [parked_id, arrival] : barrier.parked) {
      Stream& parked = streams_[parked_id];
      Record(parked.tb, parked.warp, SpanKind::kBarrier, arrival, resume);
      if constexpr (kPmu) {
        Pf(parked_id)[kPmuBarrierStall] += resume - arrival;
      }
      parked.time = resume;
      Push(parked_id, resume);
    }
    barrier.parked.clear();
    barrier.arrived = 0;
    barrier.max_time = 0.0;
    Record(s->tb, s->warp, SpanKind::kBarrier, s->time, resume);
    if constexpr (kPmu) {
      ++Pn(id)[kPmuBarrierArrivals];
      Pf(id)[kPmuBarrierStall] += resume - s->time;
    }
    s->time = resume;
    ALCOP_NEXT();
  }

  done:
#undef ALCOP_NEXT
#undef ALCOP_DISPATCH
    double makespan = store_completion_;
    for (const ReplayArena::Stream& st : a_.streams) {
      makespan = std::max(makespan, st.time);
    }
    if constexpr (kTimeline) timeline_->makespan = makespan;
    if constexpr (kPmu) {
      AccumulatePmuStreams(pmu_out_, pf_, pn_, a_.streams.size());
    }
    for (const ReplayArena::Stream& st : a_.streams) {
      ALCOP_CHECK_EQ(st.pc, st.end)
          << "stream deadlocked at event "
          << (st.pc - sk_.warp_begin[static_cast<size_t>(st.warp)]) << " (tb "
          << st.tb << ", warp " << st.warp << ")";
    }
    return makespan;
  }

 private:
  using Stream = ReplayArena::Stream;
  using Waiter = ReplayArena::Waiter;
  using HeapEntry = ReplayArena::HeapEntry;

  void Reset() {
    num_groups_ = sk_.groups.size();
    const int warps = sk_.num_warps;
    const int tbs = wave_.threadblocks;
    const size_t num_streams =
        static_cast<size_t>(tbs) * static_cast<size_t>(warps);

    a_.streams.resize(num_streams);
    for (int tb = 0; tb < tbs; ++tb) {
      for (int w = 0; w < warps; ++w) {
        Stream& s = a_.streams[static_cast<size_t>(tb * warps + w)];
        s.time = 0.0;
        s.pending_sync = 0.0;
        s.pc = sk_.warp_begin[static_cast<size_t>(w)];
        s.end = sk_.warp_begin[static_cast<size_t>(w) + 1];
        s.tb = tb;
        s.warp = w;
      }
    }
    const size_t counters = num_streams * num_groups_;
    a_.acquires.assign(counters, 0);
    a_.commits.assign(counters, 0);
    a_.waits.assign(counters, 0);
    a_.copy_max.assign(counters, 0.0);

    // Instance layout: threadblock-major, then group; a shared-scope group
    // owns one instance per tb (all warps participate), a register-scope
    // group one per (tb, warp).
    size_t per_tb_insts = 0, per_tb_slots = 0, per_tb_rel = 0;
    for (const MicroOpGroup& g : sk_.groups) {
      per_tb_insts += g.tb_scope ? 1 : static_cast<size_t>(warps);
      per_tb_slots += static_cast<size_t>(g.max_commits) *
                      (g.tb_scope ? 1 : static_cast<size_t>(warps));
      per_tb_rel += static_cast<size_t>(warps);
    }
    const size_t num_insts = static_cast<size_t>(tbs) * per_tb_insts;
    a_.inst_min_rel.assign(num_insts, 0);
    a_.slot_commits.assign(static_cast<size_t>(tbs) * per_tb_slots, 0);
    a_.slot_partial_max.assign(static_cast<size_t>(tbs) * per_tb_slots, 0.0);
    a_.slot_complete.resize(static_cast<size_t>(tbs) *
                            per_tb_slots);  // written before read
    a_.slot_done.assign(static_cast<size_t>(tbs) * per_tb_slots, 0);
    a_.releases.assign(static_cast<size_t>(tbs) * per_tb_rel, 0);
    a_.waiters.resize(num_insts);
    for (ReplayArena::WaiterLists& lists : a_.waiters) {
      lists.wait.clear();
      lists.acquire.clear();
    }
    // The static addressing tables below depend only on (skeleton, wave
    // size): when this arena last replayed the *same* shared skeleton at
    // the same threadblock count, they are already correct and the fills
    // are skipped — a structure-sharing sweep pays the layout walk once
    // per skeleton instead of once per config. Pointer identity is safe
    // because the arena holds a shared_ptr to the tagged skeleton.
    const bool layout_reused = a_.layout_skeleton.get() == p_.skeleton.get() &&
                               a_.layout_threadblocks == tbs;
    if (!layout_reused) {
      a_.inst_participants.resize(num_insts);
      a_.inst_slot_base.resize(num_insts);
      a_.inst_rel_base.resize(num_insts);
      int32_t inst = 0, slot = 0, rel = 0;
      for (int tb = 0; tb < tbs; ++tb) {
        for (const MicroOpGroup& g : sk_.groups) {
          const int count = g.tb_scope ? 1 : warps;
          const int parts = g.tb_scope ? warps : 1;
          for (int i = 0; i < count; ++i) {
            a_.inst_participants[static_cast<size_t>(inst)] = parts;
            a_.inst_slot_base[static_cast<size_t>(inst)] = slot;
            a_.inst_rel_base[static_cast<size_t>(inst)] = rel;
            slot += static_cast<int32_t>(g.max_commits);
            rel += parts;
            ++inst;
          }
        }
      }
      // Pre-resolve (stream, group) -> instance id and release slot,
      // indexed like the per-stream counters.
      a_.stream_inst.resize(counters);
      a_.stream_rel.resize(counters);
      for (int tb = 0; tb < tbs; ++tb) {
        int32_t group_base = static_cast<int32_t>(tb * per_tb_insts);
        for (int w = 0; w < warps; ++w) {
          const size_t id = static_cast<size_t>(tb * warps + w);
          int32_t inst_cursor = group_base;
          for (size_t g = 0; g < num_groups_; ++g) {
            const MicroOpGroup& meta = sk_.groups[g];
            const int32_t ginst = inst_cursor + (meta.tb_scope ? 0 : w);
            a_.stream_inst[id * num_groups_ + g] = ginst;
            a_.stream_rel[id * num_groups_ + g] =
                a_.inst_rel_base[static_cast<size_t>(ginst)] +
                (meta.tb_scope ? w : 0);
            inst_cursor += meta.tb_scope ? 1 : warps;
          }
        }
      }
      a_.layout_skeleton = p_.skeleton;
      a_.layout_threadblocks = tbs;
    }

    a_.barriers.resize(static_cast<size_t>(tbs));
    for (ReplayArena::Barrier& barrier : a_.barriers) {
      barrier.arrived = 0;
      barrier.max_time = 0.0;
      barrier.parked.clear();
    }
    a_.heap.resize(num_streams);

    // Wave-scaled pool rows: [0..3] the raw operands, [4] op1 / llc
    // rate, [5] op2 / dram rate, [6] op1 / dram-write rate, [7] the PMU
    // payload (raw bytes / FLOPs).
    a_.pool_scaled.resize(p_.pool.size() * 8);
    for (size_t r = 0; r < p_.pool.size(); ++r) {
      const MicroOpOperands& v = p_.pool[r];
      double* d = a_.pool_scaled.data() + r * 8;
      d[0] = v.op0;
      d[1] = v.op1;
      d[2] = v.op2;
      d[3] = v.op3;
      d[4] = v.op1 / wave_.llc_rate;
      d[5] = v.op2 / wave_.dram_rate;
      d[6] = v.op1 / wave_.dram_write_rate;
      d[7] = v.payload;
    }

    // PMU accumulator rows — only when collecting, so a counter-free
    // replay never allocates them (the zero-allocation contract).
    if constexpr (kPmu) {
      a_.pmu_f64.assign(num_streams * kPmuF64Count, 0.0);
      a_.pmu_i64.assign(num_streams * kPmuI64Count, 0);
      a_.pmu_depth.assign(counters, 0);
      pf_ = a_.pmu_f64.data();
      pn_ = a_.pmu_i64.data();
      pd_ = a_.pmu_depth.data();
    }

    // Raw-pointer views for the hot loop (set after every resize above).
    ops_ = sk_.ops.data();
    spool_ = a_.pool_scaled.data();
    streams_ = a_.streams.data();
    acq_ = a_.acquires.data();
    com_ = a_.commits.data();
    wai_ = a_.waits.data();
    cmax_ = a_.copy_max.data();
    sinst_ = a_.stream_inst.data();
    srel_ = a_.stream_rel.data();
    ipart_ = a_.inst_participants.data();
    ibase_ = a_.inst_slot_base.data();
    irel_ = a_.inst_rel_base.data();
    scommits_ = a_.slot_commits.data();
    spartial_ = a_.slot_partial_max.data();
    scomplete_ = a_.slot_complete.data();
    sdone_ = a_.slot_done.data();
    rel_ = a_.releases.data();
    imin_ = a_.inst_min_rel.data();
    tree_ = a_.heap.data();

    blocking_async_ = sk_.blocking_async;
    sync_ = p_.sync_overhead_cycles;
    half_sync_ = p_.half_sync_overhead_cycles;
    store_completion_ = 0.0;
    llc_free_ = dram_free_ = dram_write_free_ = lds_free_ = 0.0;
    tc_free_[0] = tc_free_[1] = tc_free_[2] = tc_free_[3] = 0.0;
    // Everything starts at time 0, so descending ids in array order is
    // already a valid min-heap (ties pop id-descending).
    heap_size_ = num_streams;
    for (size_t i = 0; i < num_streams; ++i) {
      tree_[i].key =
          MakeKey(0.0, static_cast<int32_t>(num_streams - 1 - i));
    }
  }

  // ---- replace-top binary heap over packed keys: min time, ties to the
  // higher stream id (the interpreter's std::priority_queue<(-time, id)>
  // pop order; a strict total order, so any correct priority queue
  // reproduces it exactly). ----

  using Key = unsigned __int128;

  static Key MakeKey(double time, int32_t id) {
    // Stream times are non-negative finite doubles, whose IEEE bit
    // patterns order like the values; ~id in the low bits makes unsigned
    // key comparison exactly (time asc, id desc).
    uint64_t bits;
    std::memcpy(&bits, &time, sizeof(bits));
    return (static_cast<Key>(bits) << 32) |
           static_cast<uint32_t>(~static_cast<uint32_t>(id));
  }

  static int32_t KeyId(Key key) {
    return static_cast<int32_t>(~static_cast<uint32_t>(key));
  }

  // Sifts `e` down from the root (which is treated as a hole; the final
  // position gets the only store).
  void SiftRoot(Key e) {
    size_t i = 0;
    for (;;) {
      size_t child = 2 * i + 1;
      if (child >= heap_size_) break;
      const size_t right = child + 1;
      if (right < heap_size_ && tree_[right].key < tree_[child].key) {
        child = right;
      }
      if (tree_[child].key >= e) break;
      tree_[i] = tree_[child];
      i = child;
    }
    tree_[i].key = e;
  }

  void Push(int32_t id, double time) {
    const Key key = MakeKey(time, id);
    size_t i = heap_size_++;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      const Key pk = tree_[parent].key;
      if (key >= pk) break;
      tree_[i].key = pk;
      i = parent;
    }
    tree_[i].key = key;
  }

  // ---- shared helpers ----

  size_t GroupIndex(int32_t stream, int group) const {
    return static_cast<size_t>(stream) * num_groups_ +
           static_cast<size_t>(group);
  }

  int32_t MinReleases(int32_t inst) const {
    const int32_t* r = rel_ + irel_[inst];
    const int n = ipart_[inst];
    int32_t min_rel = r[0];
    for (int i = 1; i < n; ++i) min_rel = std::min(min_rel, r[i]);
    return min_rel;
  }

  void Record(int tb, int warp, SpanKind kind, double start, double end) {
    if constexpr (kTimeline) {
      if (end <= start) return;
      timeline_->spans.push_back({tb, warp, kind, start, end});
    }
  }

  double GlobalTransfer(double t, const double* v, uint8_t flags, int tb) {
    double start = std::max(t, llc_free_);
    llc_free_ = start + v[4];  // op1 / llc rate, divided once per wave
    double completion = llc_free_;
    if (flags & kMicroOpHasDram) {
      double dram_start = std::max(t, dram_free_);
      dram_free_ = dram_start + v[5];  // op2 / dram rate
      completion = std::max(completion, dram_free_);
    }
    completion += v[3];
    Record(tb, -1, SpanKind::kTransfer, t, completion);
    return completion;
  }

  double SharedTransfer(double t, const double* v, int tb) {
    double start = std::max(t, lds_free_);
    lds_free_ = start + v[1];
    double completion = lds_free_ + v[2];
    Record(tb, -1, SpanKind::kTransfer, t, completion);
    return completion;
  }

  void DrainSyncLoads(Stream& s) {
    if (s.pending_sync > s.time) {
      Record(s.tb, s.warp, SpanKind::kBlockingCopy, s.time, s.pending_sync);
      if constexpr (kPmu) {
        const int32_t sid = static_cast<int32_t>(&s - streams_);
        Pf(sid)[kPmuExposedCopy] += s.pending_sync - s.time;
      }
      s.time = s.pending_sync;
    }
    s.pending_sync = 0.0;
  }

  // ---- PMU helpers (instantiated only when kPmu). Every expression
  // reads pre-resolved pool values the trace compiler produced with the
  // interpreter's own formulas, so the counters are bit-identical. ----

  double* Pf(int32_t id) {
    return pf_ + static_cast<size_t>(id) * kPmuF64Count;
  }
  int64_t* Pn(int32_t id) {
    return pn_ + static_cast<size_t>(id) * kPmuI64Count;
  }

  void PmuGlobalRead(int32_t id, const double* v, uint8_t flags) {
    double* f = Pf(id);
    f[kPmuCopyIssue] += v[0];
    f[kPmuLlcReadBytes] += v[7];  // payload: raw bytes
    ++Pn(id)[kPmuLlcReadTx];
    if (flags & kMicroOpHasDram) {
      f[kPmuDramReadBytes] += v[2];  // bytes * dram fraction
      ++Pn(id)[kPmuDramReadTx];
    }
  }

  void PmuSharedRead(int32_t id, const double* v) {
    double* f = Pf(id);
    f[kPmuCopyIssue] += v[0];
    f[kPmuLdsActive] += v[1];  // bytes / LDS rate
    f[kPmuLdsReadBytes] += v[7];
    ++Pn(id)[kPmuLdsReadTx];
  }

  void WakeWaitWaiters(int32_t inst, int64_t group_index) {
    std::vector<Waiter>& waiters = a_.waiters[static_cast<size_t>(inst)].wait;
    const double complete = scomplete_[ibase_[inst] + group_index];
    size_t keep = 0;
    for (size_t i = 0; i < waiters.size(); ++i) {
      const Waiter w = waiters[i];
      if (w.value != group_index) {
        waiters[keep++] = w;
        continue;
      }
      Stream& s = streams_[w.stream];
      const MicroOp& op = ops_[s.pc];
      s.time = std::max(w.park_time, complete) + sync_;
      Record(s.tb, s.warp, SpanKind::kSyncStall, w.park_time, s.time);
      if constexpr (kPmu) {
        Pf(w.stream)[kPmuWaitStall] += s.time - w.park_time;
        if (s.time - w.park_time > sync_) ++Pn(w.stream)[kPmuWaitParks];
      }
      ++wai_[GroupIndex(w.stream, op.group)];
      if (++s.pc < s.end) Push(w.stream, s.time);
    }
    waiters.resize(keep);
  }

  void WakeAcquireWaiters(int32_t inst, double release_time) {
    std::vector<Waiter>& waiters =
        a_.waiters[static_cast<size_t>(inst)].acquire;
    if (waiters.empty()) return;
    const int64_t min_rel = imin_[inst];
    size_t keep = 0;
    for (size_t i = 0; i < waiters.size(); ++i) {
      const Waiter w = waiters[i];
      if (w.value > min_rel) {
        waiters[keep++] = w;
        continue;
      }
      Stream& s = streams_[w.stream];
      const MicroOp& op = ops_[s.pc];
      s.time = std::max(w.park_time, release_time) + sync_;
      Record(s.tb, s.warp, SpanKind::kSyncStall, w.park_time, s.time);
      if constexpr (kPmu) {
        Pf(w.stream)[kPmuAcquireStall] += s.time - w.park_time;
      }
      ++acq_[GroupIndex(w.stream, op.group)];
      if (++s.pc < s.end) Push(w.stream, s.time);
    }
    waiters.resize(keep);
  }

  const MicroOpProgram& p_;
  const MicroOpSkeleton& sk_;  // p_.skeleton, the shared structural half
  const ReplayWave& wave_;
  ReplayArena& a_;
  Timeline* timeline_;
  PmuCounters* pmu_out_;

  // Raw-pointer views into the arena (valid between Reset and Run's end).
  const MicroOp* ops_ = nullptr;
  const double* spool_ = nullptr;  // wave-scaled pool rows, 8 doubles each
  Stream* streams_ = nullptr;
  int32_t* acq_ = nullptr;
  int32_t* com_ = nullptr;
  int32_t* wai_ = nullptr;
  double* cmax_ = nullptr;
  const int32_t* sinst_ = nullptr;
  const int32_t* srel_ = nullptr;
  const int32_t* ipart_ = nullptr;
  const int32_t* ibase_ = nullptr;
  const int32_t* irel_ = nullptr;
  int32_t* scommits_ = nullptr;
  double* spartial_ = nullptr;
  double* scomplete_ = nullptr;
  uint8_t* sdone_ = nullptr;
  int32_t* rel_ = nullptr;
  int32_t* imin_ = nullptr;
  HeapEntry* tree_ = nullptr;
  double* pf_ = nullptr;    // PMU f64 rows (kPmu only)
  int64_t* pn_ = nullptr;   // PMU i64 rows (kPmu only)
  int32_t* pd_ = nullptr;   // PMU per-(stream, group) in-flight depth
  bool blocking_async_ = false;
  double sync_ = 0.0;       // p_.sync_overhead_cycles
  double half_sync_ = 0.0;  // p_.half_sync_overhead_cycles

  size_t num_groups_ = 0;
  size_t heap_size_ = 0;
  double store_completion_ = 0.0;
  double tc_free_[4] = {0.0, 0.0, 0.0, 0.0};
  double lds_free_ = 0.0;
  double llc_free_ = 0.0;
  double dram_free_ = 0.0;
  double dram_write_free_ = 0.0;
};

}  // namespace

double ReplayBatch(const MicroOpProgram& program, const ReplayWave& wave,
                   ReplayArena* arena, Timeline* timeline, PmuCounters* pmu) {
  ALCOP_CHECK_GT(wave.threadblocks, 0);
  ALCOP_CHECK(arena != nullptr);
  if (timeline == nullptr) {
    if (pmu == nullptr) {
      return Replayer<false, false>(program, wave, *arena, nullptr, nullptr)
          .Run();
    }
    return Replayer<false, true>(program, wave, *arena, nullptr, pmu).Run();
  }
  if (pmu == nullptr) {
    return Replayer<true, false>(program, wave, *arena, timeline, nullptr)
        .Run();
  }
  return Replayer<true, true>(program, wave, *arena, timeline, pmu).Run();
}

}  // namespace sim
}  // namespace alcop
