#include "sim/sim_cache.h"

#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"

namespace alcop {
namespace sim {

namespace {

constexpr size_t kNumShards = 16;

// All shard state — maps *and* counters — is guarded by the shard mutex:
// a hit/miss is counted in the same critical section that observes or
// mutates the map, so locking every shard (in index order) yields a
// linearizable snapshot. The previous design kept the counters in global
// relaxed atomics updated partly outside the locks; a snapshot taken
// during a sweep could then tear (e.g. see an inserted entry whose miss
// was not counted yet, or a post-reset map with pre-reset counters).
struct Shard {
  std::mutex mu;
  std::unordered_map<std::string, KernelTiming> map;
  // Phase-1 layer: shared so callers can keep replaying an entry after
  // the lock is dropped (and across a Reset).
  std::unordered_map<std::string, std::shared_ptr<const SimProgram>> programs;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t program_hits = 0;
  uint64_t program_misses = 0;
};

struct Cache {
  Shard shards[kNumShards];

  Shard& ShardFor(const std::string& key) {
    return shards[std::hash<std::string>{}(key) % kNumShards];
  }
};

Cache& GlobalCache() {
  static Cache* cache = [] {
    auto* c = new Cache();  // leaked: outlives all threads
    // Absorb the cache counters into the process-wide metrics registry
    // (read-on-dump; each callback takes a full consistent snapshot).
    obs::Registry& registry = obs::Registry::Global();
    registry.RegisterCallback("sim.cache.timing.hits", [] {
      return static_cast<double>(GetSimCacheStats().hits);
    });
    registry.RegisterCallback("sim.cache.timing.misses", [] {
      return static_cast<double>(GetSimCacheStats().misses);
    });
    registry.RegisterCallback("sim.cache.timing.entries", [] {
      return static_cast<double>(GetSimCacheStats().entries);
    });
    registry.RegisterCallback("sim.cache.program.hits", [] {
      return static_cast<double>(GetSimCacheStats().program_hits);
    });
    registry.RegisterCallback("sim.cache.program.misses", [] {
      return static_cast<double>(GetSimCacheStats().program_misses);
    });
    registry.RegisterCallback("sim.cache.program.entries", [] {
      return static_cast<double>(GetSimCacheStats().program_entries);
    });
    registry.RegisterCallback("sim.cache.program.bytes", [] {
      return static_cast<double>(GetSimCacheStats().program_bytes);
    });
    registry.RegisterCallback("sim.cache.program.skeletons", [] {
      return static_cast<double>(GetSimCacheStats().program_skeletons);
    });
    registry.RegisterCallback("sim.cache.program.skeleton_bytes", [] {
      return static_cast<double>(GetSimCacheStats().skeleton_bytes);
    });
    return c;
  }();
  return *cache;
}

ReplayArena& CacheThreadArena() {
  thread_local ReplayArena arena;
  return arena;
}

// Locks every shard in index order (deadlock-free: the hot paths only
// ever hold one shard lock, and snapshot/reset both use this order).
class AllShardsLock {
 public:
  explicit AllShardsLock(Cache& cache) {
    for (size_t i = 0; i < kNumShards; ++i) cache.shards[i].mu.lock();
    cache_ = &cache;
  }
  ~AllShardsLock() {
    for (size_t i = kNumShards; i > 0; --i) {
      cache_->shards[i - 1].mu.unlock();
    }
  }
  AllShardsLock(const AllShardsLock&) = delete;
  AllShardsLock& operator=(const AllShardsLock&) = delete;

 private:
  Cache* cache_;
};

}  // namespace

std::string SimCacheKey(const schedule::GemmOp& op,
                        const schedule::ScheduleConfig& config,
                        const target::GpuSpec& spec,
                        schedule::InlineOrder inline_order) {
  std::ostringstream out;
  out << schedule::OpFamilyName(op.family) << '|' << op.batch << 'x' << op.m
      << 'x' << op.n << 'x' << op.k << '|'
      << static_cast<int>(op.a_producer_op) << ':' << op.a_producer_param
      << '|' << static_cast<int>(op.epilogue_op) << ':' << op.epilogue_param
      << '|' << config.ToString() << '|' << static_cast<int>(inline_order)
      // Every rate/limit of the device model: benches tweak spec fields in
      // place (generation studies), so the name alone is not a key.
      << '|' << spec.num_sms << ',' << spec.clock_ghz << ','
      << spec.tc_flops_per_sm_per_cycle << ',' << spec.lds_bytes_per_cycle_per_sm
      << ',' << spec.bank_conflict_factor << ',' << spec.smem_latency_cycles
      << ',' << spec.copy_issue_bytes_per_cycle << ',' << spec.llc_bytes << ','
      << spec.llc_bw_bytes_per_cycle << ',' << spec.llc_latency_cycles << ','
      << spec.dram_bw_bytes_per_cycle << ',' << spec.dram_write_bw_bytes_per_cycle
      << ',' << spec.dram_latency_cycles << ',' << spec.smem_bytes_per_sm << ','
      << spec.regfile_bytes_per_sm << ',' << spec.max_warps_per_sm << ','
      << spec.sync_overhead_cycles << ',' << spec.launch_overhead_cycles << ','
      << spec.has_cp_async;
  return out.str();
}

std::shared_ptr<const SimProgram> CachedSimProgram(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec, schedule::InlineOrder inline_order) {
  Cache& cache = GlobalCache();
  std::string key = SimCacheKey(op, config, spec, inline_order);
  Shard& shard = cache.ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.programs.find(key);
    if (it != shard.programs.end()) {
      ++shard.program_hits;
      return it->second;
    }
  }
  // Compile outside the shard lock so concurrent misses on different keys
  // of the same shard do not serialize the expensive work.
  auto program = std::make_shared<const SimProgram>(
      CompileSimProgram(op, config, spec, inline_order));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // The miss is counted where the map changes, under the same lock, so
    // a concurrent stats snapshot never sees an entry without its miss.
    ++shard.program_misses;
    auto [it, inserted] = shard.programs.emplace(std::move(key), program);
    if (!inserted) return it->second;  // a racing miss won; share its copy
  }
  return program;
}

KernelTiming CachedCompileAndSimulate(const schedule::GemmOp& op,
                                      const schedule::ScheduleConfig& config,
                                      const target::GpuSpec& spec,
                                      schedule::InlineOrder inline_order) {
  Cache& cache = GlobalCache();
  std::string key = SimCacheKey(op, config, spec, inline_order);
  Shard& shard = cache.ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      return it->second;
    }
  }
  // A timing miss still reuses phase 1 through the program layer: only
  // the cheap bytecode replay runs outside the shard lock.
  std::shared_ptr<const SimProgram> program =
      CachedSimProgram(op, config, spec, inline_order);
  KernelTiming timing = ReplaySimProgram(*program, &CacheThreadArena());
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.misses;
    shard.map.emplace(std::move(key), timing);
  }
  return timing;
}

SimCacheStats GetSimCacheStats() {
  Cache& cache = GlobalCache();
  SimCacheStats stats;
  AllShardsLock lock(cache);
  for (Shard& shard : cache.shards) {
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.program_hits += shard.program_hits;
    stats.program_misses += shard.program_misses;
    stats.entries += shard.map.size();
    stats.program_entries += shard.programs.size();
  }
  std::unordered_set<const MicroOpSkeleton*> skeletons;
  for (Shard& shard : cache.shards) {
    for (const auto& [key, program] : shard.programs) {
      const uint64_t bytes = static_cast<uint64_t>(program->MemoryBytes());
      stats.program_bytes += bytes;
      stats.program_bytes_unshared += bytes;
      const MicroOpSkeleton* skeleton = program->program.skeleton.get();
      if (skeleton == nullptr) continue;
      const uint64_t sk_bytes =
          static_cast<uint64_t>(skeleton->MemoryBytes());
      stats.program_bytes_unshared += sk_bytes;
      if (skeletons.insert(skeleton).second) {
        stats.skeleton_bytes += sk_bytes;
      }
    }
  }
  stats.program_skeletons = skeletons.size();
  return stats;
}

void ResetSimCache() {
  Cache& cache = GlobalCache();
  {
    // Maps and counters are cleared under one all-shards lock, so a
    // concurrent snapshot sees either the whole pre-reset or the whole
    // post-reset state, never a mix.
    AllShardsLock lock(cache);
    for (Shard& shard : cache.shards) {
      shard.map.clear();
      shard.programs.clear();
      shard.hits = 0;
      shard.misses = 0;
      shard.program_hits = 0;
      shard.program_misses = 0;
    }
  }
  // A cold cache should also mean cold structure-sharing stats: drop the
  // interned skeletons too (in-flight programs keep theirs alive through
  // their shared_ptrs).
  ResetSkeletonPool();
}

}  // namespace sim
}  // namespace alcop
