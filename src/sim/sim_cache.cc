#include "sim/sim_cache.h"

#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"

namespace alcop {
namespace sim {

namespace {

constexpr size_t kNumShards = 16;

// Flat charge per map node for the parts the entry cannot see (bucket
// array share, node header). Keeps the byte gauges honest without
// chasing allocator internals; the budget tests only rely on the charge
// being applied symmetrically on insert and evict.
constexpr uint64_t kEntryOverheadBytes = 64;

// Cached entries carry their LRU tick and their exact byte charge, so
// eviction refunds precisely what insertion charged even if a string
// reallocates somewhere in between.
struct TimingEntry {
  KernelTiming timing;
  uint64_t tick = 0;
  uint64_t bytes = 0;
};

struct ProgramEntry {
  std::shared_ptr<const SimProgram> program;
  uint64_t tick = 0;
  uint64_t bytes = 0;
};

uint64_t TimingEntryBytes(const std::string& key, const KernelTiming& timing) {
  return static_cast<uint64_t>(key.capacity() + timing.reason.capacity() +
                               sizeof(TimingEntry)) +
         kEntryOverheadBytes;
}

uint64_t ProgramEntryBytes(const std::string& key, const SimProgram& program) {
  // program.MemoryBytes() is the per-config footprint only; the shared
  // skeleton is charged once per pool via ApproxSkeletonPoolBytes().
  return static_cast<uint64_t>(key.capacity() + program.MemoryBytes() +
                               sizeof(ProgramEntry)) +
         kEntryOverheadBytes;
}

// All shard state — maps *and* counters — is guarded by the shard mutex:
// a hit/miss/eviction is counted in the same critical section that
// observes or mutates the map, so locking every shard (in index order)
// yields a linearizable snapshot. The previous design kept the counters
// in global relaxed atomics updated partly outside the locks; a snapshot
// taken during a sweep could then tear (e.g. see an inserted entry whose
// miss was not counted yet, or a post-reset map with pre-reset counters).
struct Shard {
  std::mutex mu;
  std::unordered_map<std::string, TimingEntry> map;
  // Phase-1 layer: shared so callers can keep replaying an entry after
  // the lock is dropped (and across a Reset or an eviction).
  std::unordered_map<std::string, ProgramEntry> programs;
  // LRU clock: bumped on every touch (hit or insert) of either layer.
  uint64_t clock = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t program_hits = 0;
  uint64_t program_misses = 0;
  uint64_t timing_evictions = 0;
  uint64_t program_evictions = 0;
};

struct Cache {
  Shard shards[kNumShards];
  // Approximate resident data bytes (both layers' entry charges, not the
  // skeleton pool) as a relaxed atomic: the budget check on every insert
  // must not take other shards' locks. Exact bytes for the stats
  // snapshot are recomputed from the maps under the all-shards lock.
  std::atomic<uint64_t> data_bytes{0};
  std::atomic<uint64_t> budget_bytes{0};  // 0 = unbounded
  // Persistent-store counters (serving/persist.cc).
  std::atomic<uint64_t> disk_hits{0};
  std::atomic<uint64_t> disk_misses{0};
  std::atomic<uint64_t> disk_load_bytes{0};

  Shard& ShardFor(const std::string& key) {
    return shards[std::hash<std::string>{}(key) % kNumShards];
  }
};

Cache& GlobalCache() {
  static Cache* cache = [] {
    auto* c = new Cache();  // leaked: outlives all threads
    if (const char* env = std::getenv("ALCOP_CACHE_BYTES")) {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') {
        c->budget_bytes.store(static_cast<uint64_t>(parsed),
                              std::memory_order_relaxed);
      }
    }
    // Absorb the cache counters into the process-wide metrics registry
    // (read-on-dump; each callback takes a full consistent snapshot).
    obs::Registry& registry = obs::Registry::Global();
    registry.RegisterCallback("sim.cache.timing.hits", [] {
      return static_cast<double>(GetSimCacheStats().hits);
    },
    "Timing-cache lookups answered from memory.");
    registry.RegisterCallback("sim.cache.timing.misses", [] {
      return static_cast<double>(GetSimCacheStats().misses);
    },
    "Timing-cache lookups that had to simulate.");
    registry.RegisterCallback("sim.cache.timing.entries", [] {
      return static_cast<double>(GetSimCacheStats().entries);
    },
    "Resident timing-cache entries.");
    registry.RegisterCallback("sim.cache.program.hits", [] {
      return static_cast<double>(GetSimCacheStats().program_hits);
    },
    "Program-cache lookups answered from memory.");
    registry.RegisterCallback("sim.cache.program.misses", [] {
      return static_cast<double>(GetSimCacheStats().program_misses);
    },
    "Program-cache lookups that had to compile.");
    registry.RegisterCallback("sim.cache.program.entries", [] {
      return static_cast<double>(GetSimCacheStats().program_entries);
    },
    "Resident compiled SimPrograms.");
    registry.RegisterCallback("sim.cache.program.bytes", [] {
      return static_cast<double>(GetSimCacheStats().program_bytes);
    },
    "Bytes held by resident SimPrograms.");
    registry.RegisterCallback("sim.cache.program.skeletons", [] {
      return static_cast<double>(GetSimCacheStats().program_skeletons);
    },
    "Interned program skeletons.");
    registry.RegisterCallback("sim.cache.program.skeleton_bytes", [] {
      return static_cast<double>(GetSimCacheStats().skeleton_bytes);
    },
    "Bytes held by interned skeletons.");
    registry.RegisterCallback("sim.cache.evictions", [] {
      return static_cast<double>(GetSimCacheStats().evictions);
    },
    "LRU evictions across both cache layers.");
    registry.RegisterCallback("sim.cache.resident_bytes", [] {
      return static_cast<double>(GetSimCacheStats().resident_bytes);
    },
    "Total resident bytes across both cache layers.");
    registry.RegisterCallback("sim.cache.budget_bytes", [] {
      return static_cast<double>(GetSimCacheStats().budget_bytes);
    },
    "Configured cache byte budget (0 = unlimited).");
    registry.RegisterCallback("sim.cache.disk.hits", [] {
      return static_cast<double>(GetSimCacheStats().disk_hits);
    },
    "On-disk cache frames accepted at load.");
    registry.RegisterCallback("sim.cache.disk.misses", [] {
      return static_cast<double>(GetSimCacheStats().disk_misses);
    },
    "On-disk cache frames rejected or absent.");
    registry.RegisterCallback("sim.cache.disk.load_bytes", [] {
      return static_cast<double>(GetSimCacheStats().disk_load_bytes);
    },
    "Bytes loaded from the on-disk cache.");
    return c;
  }();
  return *cache;
}

ReplayArena& CacheThreadArena() {
  thread_local ReplayArena arena;
  return arena;
}

// Locks every shard in index order (deadlock-free: the hot paths only
// ever hold one shard lock, and snapshot/reset both use this order; the
// skeleton-pool mutex is only ever acquired *after* shard locks, never
// the other way around).
class AllShardsLock {
 public:
  explicit AllShardsLock(Cache& cache) {
    for (size_t i = 0; i < kNumShards; ++i) cache.shards[i].mu.lock();
    cache_ = &cache;
  }
  ~AllShardsLock() {
    for (size_t i = kNumShards; i > 0; --i) {
      cache_->shards[i - 1].mu.unlock();
    }
  }
  AllShardsLock(const AllShardsLock&) = delete;
  AllShardsLock& operator=(const AllShardsLock&) = delete;

 private:
  Cache* cache_;
};

bool OverBudget(const Cache& cache) {
  const uint64_t budget =
      cache.budget_bytes.load(std::memory_order_relaxed);
  if (budget == 0) return false;
  return cache.data_bytes.load(std::memory_order_relaxed) +
             ApproxSkeletonPoolBytes() >
         budget;
}

// Evicts least-recently-used entries of `shard` (both layers compete by
// tick) until the global footprint fits the budget or the shard has
// nothing left to give. Called with the shard lock held, right after an
// insert; `keep_key` protects the entry just inserted from being
// sacrificed to make room for itself. Only this shard's lock is taken —
// the global byte total is a relaxed atomic — so eviction never stalls
// other shards; because the key hash spreads inserts uniformly, every
// shard does its share of the shrinking and the footprint converges
// under budget after a few inserts even though no single call sees the
// whole cache. Returns true if any *program* entry was dropped, in which
// case the caller must CompactSkeletonPool() after releasing the lock
// (pool orphans are part of the budgeted footprint).
bool EnforceBudgetLocked(Cache& cache, Shard& shard,
                         const std::string& keep_key) {
  bool program_evicted = false;
  while (OverBudget(cache)) {
    auto timing_victim = shard.map.end();
    uint64_t timing_tick = std::numeric_limits<uint64_t>::max();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (it->first == keep_key) continue;
      if (it->second.tick < timing_tick) {
        timing_tick = it->second.tick;
        timing_victim = it;
      }
    }
    auto program_victim = shard.programs.end();
    uint64_t program_tick = std::numeric_limits<uint64_t>::max();
    for (auto it = shard.programs.begin(); it != shard.programs.end(); ++it) {
      if (it->first == keep_key) continue;
      if (it->second.tick < program_tick) {
        program_tick = it->second.tick;
        program_victim = it;
      }
    }
    if (timing_victim == shard.map.end() &&
        program_victim == shard.programs.end()) {
      // Nothing left in this shard. The caller follows up with
      // EvictFromAllShards once this shard's lock is dropped.
      break;
    }
    if (timing_victim != shard.map.end() &&
        (program_victim == shard.programs.end() ||
         timing_tick <= program_tick)) {
      cache.data_bytes.fetch_sub(timing_victim->second.bytes,
                                 std::memory_order_relaxed);
      shard.map.erase(timing_victim);
      ++shard.timing_evictions;
    } else {
      cache.data_bytes.fetch_sub(program_victim->second.bytes,
                                 std::memory_order_relaxed);
      shard.programs.erase(program_victim);
      ++shard.program_evictions;
      program_evicted = true;
    }
  }
  return program_evicted;
}

// Overflow pass for when the inserting shard alone cannot satisfy the
// budget (small or skewed caches: the shard may hold nothing but the
// just-inserted entry). Visits shards one at a time — never more than
// one shard lock held, so there is no ordering hazard with the hot paths
// — evicting each one's stalest entries until the footprint fits.
// Callers run this *after* releasing their own shard's lock.
bool EvictFromAllShards(Cache& cache, const std::string& keep_key) {
  bool program_evicted = false;
  for (size_t i = 0; i < kNumShards && OverBudget(cache); ++i) {
    Shard& shard = cache.shards[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    program_evicted = EnforceBudgetLocked(cache, shard, keep_key) ||
                      program_evicted;
  }
  return program_evicted;
}

}  // namespace

std::string SimCacheKey(const schedule::GemmOp& op,
                        const schedule::ScheduleConfig& config,
                        const target::GpuSpec& spec,
                        schedule::InlineOrder inline_order) {
  std::ostringstream out;
  out << schedule::OpFamilyName(op.family) << '|' << op.batch << 'x' << op.m
      << 'x' << op.n << 'x' << op.k << '|'
      << static_cast<int>(op.a_producer_op) << ':' << op.a_producer_param
      << '|' << static_cast<int>(op.epilogue_op) << ':' << op.epilogue_param
      << '|' << config.ToString() << '|' << static_cast<int>(inline_order)
      // Every rate/limit of the device model: benches tweak spec fields in
      // place (generation studies), so the name alone is not a key.
      << '|' << spec.num_sms << ',' << spec.clock_ghz << ','
      << spec.tc_flops_per_sm_per_cycle << ',' << spec.lds_bytes_per_cycle_per_sm
      << ',' << spec.bank_conflict_factor << ',' << spec.smem_latency_cycles
      << ',' << spec.copy_issue_bytes_per_cycle << ',' << spec.llc_bytes << ','
      << spec.llc_bw_bytes_per_cycle << ',' << spec.llc_latency_cycles << ','
      << spec.dram_bw_bytes_per_cycle << ',' << spec.dram_write_bw_bytes_per_cycle
      << ',' << spec.dram_latency_cycles << ',' << spec.smem_bytes_per_sm << ','
      << spec.regfile_bytes_per_sm << ',' << spec.max_warps_per_sm << ','
      << spec.sync_overhead_cycles << ',' << spec.launch_overhead_cycles << ','
      << spec.has_cp_async;
  return out.str();
}

std::shared_ptr<const SimProgram> CachedSimProgram(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec, schedule::InlineOrder inline_order) {
  Cache& cache = GlobalCache();
  std::string key = SimCacheKey(op, config, spec, inline_order);
  Shard& shard = cache.ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.programs.find(key);
    if (it != shard.programs.end()) {
      ++shard.program_hits;
      it->second.tick = ++shard.clock;
      return it->second.program;
    }
  }
  // Compile outside the shard lock so concurrent misses on different keys
  // of the same shard do not serialize the expensive work.
  auto program = std::make_shared<const SimProgram>(
      CompileSimProgram(op, config, spec, inline_order));
  bool compact = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // The miss is counted where the map changes, under the same lock, so
    // a concurrent stats snapshot never sees an entry without its miss.
    ++shard.program_misses;
    ProgramEntry entry;
    entry.program = program;
    entry.tick = ++shard.clock;
    entry.bytes = ProgramEntryBytes(key, *program);
    auto [it, inserted] = shard.programs.emplace(key, std::move(entry));
    if (!inserted) return it->second.program;  // a racing miss won; share it
    cache.data_bytes.fetch_add(it->second.bytes, std::memory_order_relaxed);
    compact = EnforceBudgetLocked(cache, shard, key);
  }
  if (OverBudget(cache)) compact = EvictFromAllShards(cache, key) || compact;
  if (compact) CompactSkeletonPool();
  return program;
}

bool ProbeCachedTiming(const schedule::GemmOp& op,
                       const schedule::ScheduleConfig& config,
                       const target::GpuSpec& spec,
                       schedule::InlineOrder inline_order, KernelTiming* out) {
  Cache& cache = GlobalCache();
  std::string key = SimCacheKey(op, config, spec, inline_order);
  Shard& shard = cache.ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  ++shard.hits;
  it->second.tick = ++shard.clock;
  if (out != nullptr) *out = it->second.timing;
  return true;
}

KernelTiming CachedCompileAndSimulate(const schedule::GemmOp& op,
                                      const schedule::ScheduleConfig& config,
                                      const target::GpuSpec& spec,
                                      schedule::InlineOrder inline_order) {
  Cache& cache = GlobalCache();
  std::string key = SimCacheKey(op, config, spec, inline_order);
  Shard& shard = cache.ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      it->second.tick = ++shard.clock;
      return it->second.timing;
    }
  }
  // A timing miss still reuses phase 1 through the program layer: only
  // the cheap bytecode replay runs outside the shard lock.
  std::shared_ptr<const SimProgram> program =
      CachedSimProgram(op, config, spec, inline_order);
  KernelTiming timing = ReplaySimProgram(*program, &CacheThreadArena());
  bool compact = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.misses;
    auto found = shard.map.find(key);
    if (found == shard.map.end()) {
      TimingEntry entry;
      entry.timing = timing;
      entry.tick = ++shard.clock;
      entry.bytes = TimingEntryBytes(key, timing);
      cache.data_bytes.fetch_add(entry.bytes, std::memory_order_relaxed);
      shard.map.emplace(key, std::move(entry));
      compact = EnforceBudgetLocked(cache, shard, key);
    }
  }
  if (OverBudget(cache)) compact = EvictFromAllShards(cache, key) || compact;
  if (compact) CompactSkeletonPool();
  return timing;
}

SimCacheStats GetSimCacheStats() {
  Cache& cache = GlobalCache();
  SimCacheStats stats;
  stats.budget_bytes = cache.budget_bytes.load(std::memory_order_relaxed);
  stats.disk_hits = cache.disk_hits.load(std::memory_order_relaxed);
  stats.disk_misses = cache.disk_misses.load(std::memory_order_relaxed);
  stats.disk_load_bytes =
      cache.disk_load_bytes.load(std::memory_order_relaxed);
  AllShardsLock lock(cache);
  uint64_t program_entry_bytes = 0;
  for (Shard& shard : cache.shards) {
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.program_hits += shard.program_hits;
    stats.program_misses += shard.program_misses;
    stats.timing_evictions += shard.timing_evictions;
    stats.program_evictions += shard.program_evictions;
    stats.entries += shard.map.size();
    stats.program_entries += shard.programs.size();
    for (const auto& [key, entry] : shard.map) {
      stats.timing_bytes += entry.bytes;
    }
    for (const auto& [key, entry] : shard.programs) {
      program_entry_bytes += entry.bytes;
    }
  }
  stats.evictions = stats.timing_evictions + stats.program_evictions;
  std::unordered_set<const MicroOpSkeleton*> skeletons;
  for (Shard& shard : cache.shards) {
    for (const auto& [key, entry] : shard.programs) {
      const SimProgram& program = *entry.program;
      const uint64_t bytes = static_cast<uint64_t>(program.MemoryBytes());
      stats.program_bytes += bytes;
      stats.program_bytes_unshared += bytes;
      const MicroOpSkeleton* skeleton = program.program.skeleton.get();
      if (skeleton == nullptr) continue;
      const uint64_t sk_bytes =
          static_cast<uint64_t>(skeleton->MemoryBytes());
      stats.program_bytes_unshared += sk_bytes;
      if (skeletons.insert(skeleton).second) {
        stats.skeleton_bytes += sk_bytes;
      }
    }
  }
  stats.program_skeletons = skeletons.size();
  // Resident = both layers' exact entry charges plus the skeleton *pool*
  // counted once per pool (GetSkeletonPoolStats, shard -> pool lock
  // order). The pool figure includes orphans awaiting compaction —
  // deliberately: that is what the budget check sees too, so the gauge
  // never under-reports against ALCOP_CACHE_BYTES.
  stats.resident_bytes = stats.timing_bytes + program_entry_bytes +
                         GetSkeletonPoolStats().bytes;
  return stats;
}

void ResetSimCache() {
  Cache& cache = GlobalCache();
  {
    // Maps and counters are cleared under one all-shards lock, so a
    // concurrent snapshot sees either the whole pre-reset or the whole
    // post-reset state, never a mix.
    AllShardsLock lock(cache);
    for (Shard& shard : cache.shards) {
      shard.map.clear();
      shard.programs.clear();
      shard.clock = 0;
      shard.hits = 0;
      shard.misses = 0;
      shard.program_hits = 0;
      shard.program_misses = 0;
      shard.timing_evictions = 0;
      shard.program_evictions = 0;
    }
    cache.data_bytes.store(0, std::memory_order_relaxed);
    cache.disk_hits.store(0, std::memory_order_relaxed);
    cache.disk_misses.store(0, std::memory_order_relaxed);
    cache.disk_load_bytes.store(0, std::memory_order_relaxed);
  }
  // A cold cache should also mean cold structure-sharing stats: drop the
  // interned skeletons too (in-flight programs keep theirs alive through
  // their shared_ptrs).
  ResetSkeletonPool();
}

void SetSimCacheBudgetBytes(uint64_t bytes) {
  GlobalCache().budget_bytes.store(bytes, std::memory_order_relaxed);
}

uint64_t GetSimCacheBudgetBytes() {
  return GlobalCache().budget_bytes.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, KernelTiming>> SnapshotCachedTimings() {
  Cache& cache = GlobalCache();
  std::vector<std::pair<std::string, KernelTiming>> out;
  AllShardsLock lock(cache);
  for (Shard& shard : cache.shards) {
    for (const auto& [key, entry] : shard.map) {
      out.emplace_back(key, entry.timing);
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::shared_ptr<const SimProgram>>>
SnapshotCachedPrograms() {
  Cache& cache = GlobalCache();
  std::vector<std::pair<std::string, std::shared_ptr<const SimProgram>>> out;
  AllShardsLock lock(cache);
  for (Shard& shard : cache.shards) {
    for (const auto& [key, entry] : shard.programs) {
      out.emplace_back(key, entry.program);
    }
  }
  return out;
}

void InsertCachedTiming(const std::string& key, const KernelTiming& timing) {
  Cache& cache = GlobalCache();
  Shard& shard = cache.ShardFor(key);
  bool compact = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.find(key) != shard.map.end()) return;  // live entry wins
    TimingEntry entry;
    entry.timing = timing;
    entry.tick = ++shard.clock;
    entry.bytes = TimingEntryBytes(key, timing);
    cache.data_bytes.fetch_add(entry.bytes, std::memory_order_relaxed);
    shard.map.emplace(key, std::move(entry));
    compact = EnforceBudgetLocked(cache, shard, key);
  }
  if (OverBudget(cache)) compact = EvictFromAllShards(cache, key) || compact;
  if (compact) CompactSkeletonPool();
}

void InsertCachedProgram(const std::string& key,
                         std::shared_ptr<const SimProgram> program) {
  if (program == nullptr) return;
  Cache& cache = GlobalCache();
  Shard& shard = cache.ShardFor(key);
  bool compact = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.programs.find(key) != shard.programs.end()) return;
    ProgramEntry entry;
    entry.bytes = ProgramEntryBytes(key, *program);
    entry.program = std::move(program);
    entry.tick = ++shard.clock;
    cache.data_bytes.fetch_add(entry.bytes, std::memory_order_relaxed);
    shard.programs.emplace(key, std::move(entry));
    compact = EnforceBudgetLocked(cache, shard, key);
  }
  if (OverBudget(cache)) compact = EvictFromAllShards(cache, key) || compact;
  if (compact) CompactSkeletonPool();
}

void AddSimCacheDiskStats(uint64_t hits, uint64_t misses,
                          uint64_t load_bytes) {
  Cache& cache = GlobalCache();
  cache.disk_hits.fetch_add(hits, std::memory_order_relaxed);
  cache.disk_misses.fetch_add(misses, std::memory_order_relaxed);
  cache.disk_load_bytes.fetch_add(load_bytes, std::memory_order_relaxed);
}

}  // namespace sim
}  // namespace alcop
