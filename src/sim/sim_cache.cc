#include "sim/sim_cache.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace alcop {
namespace sim {

namespace {

constexpr size_t kNumShards = 16;

struct Shard {
  std::mutex mu;
  std::unordered_map<std::string, KernelTiming> map;
  // Phase-1 layer: shared so callers can keep replaying an entry after
  // the lock is dropped (and across a Reset).
  std::unordered_map<std::string, std::shared_ptr<const SimProgram>> programs;
};

struct Cache {
  Shard shards[kNumShards];
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> program_hits{0};
  std::atomic<uint64_t> program_misses{0};

  Shard& ShardFor(const std::string& key) {
    return shards[std::hash<std::string>{}(key) % kNumShards];
  }
};

Cache& GlobalCache() {
  static Cache* cache = new Cache();  // leaked: outlives all threads
  return *cache;
}

ReplayArena& CacheThreadArena() {
  thread_local ReplayArena arena;
  return arena;
}

}  // namespace

std::string SimCacheKey(const schedule::GemmOp& op,
                        const schedule::ScheduleConfig& config,
                        const target::GpuSpec& spec,
                        schedule::InlineOrder inline_order) {
  std::ostringstream out;
  out << schedule::OpFamilyName(op.family) << '|' << op.batch << 'x' << op.m
      << 'x' << op.n << 'x' << op.k << '|'
      << static_cast<int>(op.a_producer_op) << ':' << op.a_producer_param
      << '|' << static_cast<int>(op.epilogue_op) << ':' << op.epilogue_param
      << '|' << config.ToString() << '|' << static_cast<int>(inline_order)
      // Every rate/limit of the device model: benches tweak spec fields in
      // place (generation studies), so the name alone is not a key.
      << '|' << spec.num_sms << ',' << spec.clock_ghz << ','
      << spec.tc_flops_per_sm_per_cycle << ',' << spec.lds_bytes_per_cycle_per_sm
      << ',' << spec.bank_conflict_factor << ',' << spec.smem_latency_cycles
      << ',' << spec.copy_issue_bytes_per_cycle << ',' << spec.llc_bytes << ','
      << spec.llc_bw_bytes_per_cycle << ',' << spec.llc_latency_cycles << ','
      << spec.dram_bw_bytes_per_cycle << ',' << spec.dram_write_bw_bytes_per_cycle
      << ',' << spec.dram_latency_cycles << ',' << spec.smem_bytes_per_sm << ','
      << spec.regfile_bytes_per_sm << ',' << spec.max_warps_per_sm << ','
      << spec.sync_overhead_cycles << ',' << spec.launch_overhead_cycles << ','
      << spec.has_cp_async;
  return out.str();
}

std::shared_ptr<const SimProgram> CachedSimProgram(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec, schedule::InlineOrder inline_order) {
  Cache& cache = GlobalCache();
  std::string key = SimCacheKey(op, config, spec, inline_order);
  Shard& shard = cache.ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.programs.find(key);
    if (it != shard.programs.end()) {
      cache.program_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  cache.program_misses.fetch_add(1, std::memory_order_relaxed);
  // Compile outside the shard lock so concurrent misses on different keys
  // of the same shard do not serialize the expensive work.
  auto program = std::make_shared<const SimProgram>(
      CompileSimProgram(op, config, spec, inline_order));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.programs.emplace(std::move(key), program);
    if (!inserted) return it->second;  // a racing miss won; share its copy
  }
  return program;
}

KernelTiming CachedCompileAndSimulate(const schedule::GemmOp& op,
                                      const schedule::ScheduleConfig& config,
                                      const target::GpuSpec& spec,
                                      schedule::InlineOrder inline_order) {
  Cache& cache = GlobalCache();
  std::string key = SimCacheKey(op, config, spec, inline_order);
  Shard& shard = cache.ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      cache.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  cache.misses.fetch_add(1, std::memory_order_relaxed);
  // A timing miss still reuses phase 1 through the program layer: only
  // the cheap bytecode replay runs outside the shard lock.
  std::shared_ptr<const SimProgram> program =
      CachedSimProgram(op, config, spec, inline_order);
  KernelTiming timing = ReplaySimProgram(*program, &CacheThreadArena());
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(std::move(key), timing);
  }
  return timing;
}

SimCacheStats GetSimCacheStats() {
  Cache& cache = GlobalCache();
  SimCacheStats stats;
  stats.hits = cache.hits.load(std::memory_order_relaxed);
  stats.misses = cache.misses.load(std::memory_order_relaxed);
  stats.program_hits = cache.program_hits.load(std::memory_order_relaxed);
  stats.program_misses = cache.program_misses.load(std::memory_order_relaxed);
  for (Shard& shard : cache.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.map.size();
    stats.program_entries += shard.programs.size();
    for (const auto& [key, program] : shard.programs) {
      stats.program_bytes += static_cast<uint64_t>(program->MemoryBytes());
    }
  }
  return stats;
}

void ResetSimCache() {
  Cache& cache = GlobalCache();
  for (Shard& shard : cache.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.programs.clear();
  }
  cache.hits.store(0, std::memory_order_relaxed);
  cache.misses.store(0, std::memory_order_relaxed);
  cache.program_hits.store(0, std::memory_order_relaxed);
  cache.program_misses.store(0, std::memory_order_relaxed);
}

}  // namespace sim
}  // namespace alcop
