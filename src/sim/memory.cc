#include "sim/memory.h"

#include "support/check.h"

namespace alcop {
namespace sim {

TensorData::TensorData(ir::Buffer buf) : buffer(std::move(buf)) {
  int64_t n = buffer->NumElements();
  values.assign(static_cast<size_t>(n), 0.0f);
  pending.assign(static_cast<size_t>(n), 0);
  epoch.assign(static_cast<size_t>(n), 0);
}

std::vector<int64_t> RegionIndices(const ir::BufferRegion& region,
                                   const std::vector<ir::VarBinding>& env) {
  const ir::Buffer& buffer = region.buffer;
  size_t rank = buffer->shape.size();
  std::vector<int64_t> strides = buffer->Strides();

  std::vector<int64_t> base(rank);
  for (size_t d = 0; d < rank; ++d) {
    base[d] = ir::Evaluate(region.offsets[d], env);
    ALCOP_CHECK_GE(base[d], 0) << "negative offset in region of '"
                               << buffer->name << "' dim " << d;
    ALCOP_CHECK_LE(base[d] + region.sizes[d], buffer->shape[d])
        << "out-of-bounds region of '" << buffer->name << "' dim " << d
        << " (offset " << base[d] << " size " << region.sizes[d] << ")";
  }

  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(region.NumElements()));
  std::vector<int64_t> coord(rank, 0);
  while (true) {
    int64_t flat = 0;
    for (size_t d = 0; d < rank; ++d) flat += (base[d] + coord[d]) * strides[d];
    out.push_back(flat);
    // Odometer increment over the region extents.
    size_t d = rank;
    while (d-- > 0) {
      if (++coord[d] < region.sizes[d]) break;
      coord[d] = 0;
      if (d == 0) return out;
    }
  }
}

std::vector<int64_t> NonSingletonShape(const ir::BufferRegion& region) {
  std::vector<int64_t> shape;
  for (int64_t size : region.sizes) {
    if (size > 1) shape.push_back(size);
  }
  return shape;
}

}  // namespace sim
}  // namespace alcop
