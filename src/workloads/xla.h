// XLA baseline model for the end-to-end comparison (Table III).
//
// XLA (TF 2.9.1 era) emits GEMM/conv kernels from a small fixed tiling
// menu with at most double buffering, and fuses elementwise chains less
// aggressively than a TVM-style compiler, materializing more intermediate
// tensors. Both effects are modeled here; see DESIGN.md for the
// substitution note.
#ifndef ALCOP_WORKLOADS_XLA_H_
#define ALCOP_WORKLOADS_XLA_H_

#include "schedule/schedule.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace workloads {

// Simulated cycles of XLA's kernel for one GEMM-family op.
double XlaKernelCycles(const schedule::GemmOp& op, const target::GpuSpec& spec);

}  // namespace workloads
}  // namespace alcop

#endif  // ALCOP_WORKLOADS_XLA_H_
