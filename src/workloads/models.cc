#include "workloads/models.h"

#include "support/check.h"

namespace alcop {
namespace workloads {

using schedule::GemmOp;
using schedule::MakeBatchMatmul;
using schedule::MakeConv;
using schedule::MakeMatmul;

namespace {

// Builds a transformer encoder/decoder stack. All byte counts are fp16.
ModelGraph Transformer(const std::string& name, int layers, int64_t hidden,
                       int64_t ffn, int64_t heads, int64_t seq, int64_t batch) {
  ModelGraph model;
  model.name = name;
  int64_t m = batch * seq;
  int64_t head_dim = hidden / heads;

  model.ops.push_back(
      {MakeMatmul(name + "_qkv", m, 3 * hidden, hidden), layers});
  model.ops.push_back({MakeBatchMatmul(name + "_qk", batch * heads, seq, seq,
                                       head_dim),
                       layers});
  model.ops.push_back({MakeBatchMatmul(name + "_sv", batch * heads, seq,
                                       head_dim, seq),
                       layers});
  model.ops.push_back({MakeMatmul(name + "_proj", m, hidden, hidden), layers});
  model.ops.push_back({MakeMatmul(name + "_fc1", m, ffn, hidden), layers});
  model.ops.push_back({MakeMatmul(name + "_fc2", m, hidden, ffn), layers});

  // Non-GEMM memory-bound traffic per layer (element accesses x 2 bytes):
  //   2 layernorms (3 passes each), 2 residual adds (3 accesses),
  //   GELU on the FFN activation (2 accesses),
  //   softmax over attention scores (3 passes).
  double act = static_cast<double>(m) * hidden * 2.0;
  double ffn_act = static_cast<double>(m) * ffn * 2.0;
  double scores = static_cast<double>(batch * heads) * seq * seq * 2.0;
  double per_layer = 2 * 3 * act + 2 * 3 * act + 2 * ffn_act + 3 * scores;
  // Epilogue fusion folds roughly half of these passes into the GEMMs;
  // XLA materializes extra intermediates (bias, mask, cast chains).
  model.ewise_bytes_fused = 0.5 * per_layer * layers;
  model.ewise_bytes_unfused = 1.4 * per_layer * layers;
  model.launches_fused = 9 * layers;
  model.launches_unfused = 18 * layers;
  return model;
}

struct ConvLayer {
  int64_t spatial;  // square output size
  int64_t c_in;
  int64_t c_out;
  int64_t kernel;
  int count;
};

ModelGraph Cnn(const std::string& name, int64_t batch,
               const std::vector<ConvLayer>& layers,
               const std::vector<LayerOp>& fcs) {
  ModelGraph model;
  model.name = name;
  double output_bytes_total = 0.0;
  int conv_count = 0;
  for (const ConvLayer& layer : layers) {
    model.ops.push_back({MakeConv(name + "_conv" +
                                      std::to_string(model.ops.size()),
                                  batch, layer.spatial, layer.spatial,
                                  layer.c_in, layer.c_out, layer.kernel),
                         layer.count});
    output_bytes_total += static_cast<double>(layer.count) * batch *
                          layer.spatial * layer.spatial * layer.c_out * 2.0;
    conv_count += layer.count;
  }
  for (const LayerOp& fc : fcs) model.ops.push_back(fc);

  // BatchNorm + ReLU (+ residual) passes over every feature map: fused
  // compilers fold them into the conv epilogue almost entirely; XLA-era
  // fusion re-reads and re-writes the maps.
  model.ewise_bytes_fused = 0.4 * output_bytes_total;
  model.ewise_bytes_unfused = 2.4 * output_bytes_total;
  model.launches_fused = conv_count + static_cast<int>(fcs.size());
  model.launches_unfused = 3 * conv_count + 2 * static_cast<int>(fcs.size());
  return model;
}

}  // namespace

const std::vector<ModelGraph>& Models() {
  static const std::vector<ModelGraph> models = [] {
    std::vector<ModelGraph> list;
    // NLP: batch 8 inference.
    list.push_back(Transformer("BERT", 12, 768, 3072, 12, 512, 8));
    list.push_back(Transformer("BERT-Large", 24, 1024, 4096, 16, 512, 8));
    list.push_back(Transformer("GPT-2", 12, 768, 3072, 12, 1024, 8));

    // Vision: batch 8 inference. Representative per-stage layer lists;
    // downsample projections folded into the counts.
    int64_t b = 8;
    list.push_back(Cnn(
        "ResNet-18", b,
        {{56, 64, 64, 3, 4},
         {28, 128, 128, 3, 4},
         {14, 256, 256, 3, 4},
         {7, 512, 512, 3, 4},
         {112, 16, 64, 3, 1}},  // stem (RGB padded to 16 channels)
        {{MakeMatmul("ResNet-18_fc", 32, 1024, 512), 1}}));
    list.push_back(Cnn(
        "ResNet-50", b,
        {{112, 16, 64, 3, 1},  // stem
         {56, 256, 64, 1, 3},  {56, 64, 64, 3, 3},   {56, 64, 256, 1, 3},
         {28, 512, 128, 1, 4}, {28, 128, 128, 3, 4}, {28, 128, 512, 1, 4},
         {14, 1024, 256, 1, 6},{14, 256, 256, 3, 6}, {14, 256, 1024, 1, 6},
         {7, 2048, 512, 1, 3}, {7, 512, 512, 3, 3},  {7, 512, 2048, 1, 3}},
        {{MakeMatmul("ResNet-50_fc", 32, 1024, 2048), 1}}));
    list.push_back(Cnn(
        "VGG-16", b,
        {{224, 16, 64, 3, 1},  {224, 64, 64, 3, 1},
         {112, 64, 128, 3, 1}, {112, 128, 128, 3, 1},
         {56, 128, 256, 3, 1}, {56, 256, 256, 3, 2},
         {28, 256, 512, 3, 1}, {28, 512, 512, 3, 2},
         {14, 512, 512, 3, 3}},
        {{MakeMatmul("VGG-16_fc6", 32, 4096, 25088), 1},
         {MakeMatmul("VGG-16_fc7", 32, 4096, 4096), 1},
         {MakeMatmul("VGG-16_fc8", 32, 1024, 4096), 1}}));
    return list;
  }();
  return models;
}

const ModelGraph& FindModel(const std::string& name) {
  for (const ModelGraph& model : Models()) {
    if (model.name == name) return model;
  }
  ALCOP_CHECK(false) << "unknown model '" << name << "'";
  return Models()[0];
}

double EndToEndCycles(
    const ModelGraph& model,
    const std::function<double(const schedule::GemmOp&)>& gemm_cycles,
    bool fused, const target::GpuSpec& spec) {
  double cycles = 0.0;
  for (const LayerOp& layer : model.ops) {
    cycles += static_cast<double>(layer.count) * gemm_cycles(layer.op);
  }
  double ewise_bytes =
      fused ? model.ewise_bytes_fused : model.ewise_bytes_unfused;
  cycles += ewise_bytes / spec.dram_bw_bytes_per_cycle;
  int launches = fused ? model.launches_fused : model.launches_unfused;
  cycles += static_cast<double>(launches) * spec.launch_overhead_cycles;
  return cycles;
}

}  // namespace workloads
}  // namespace alcop
