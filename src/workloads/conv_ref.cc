#include "workloads/conv_ref.h"

#include "support/check.h"

namespace alcop {
namespace workloads {

namespace {

// Patch-relative ordering shared by Im2col and FlattenWeights: for output
// position (y, x), element index ((dy*kernel)+dx)*c_in + c samples input
// (y+dy-pad, x+dx-pad, c).
int64_t PatchIndex(const ConvShape& s, int64_t dy, int64_t dx, int64_t c) {
  return (dy * s.kernel + dx) * s.c_in + c;
}

}  // namespace

std::vector<float> DirectConv2d(const std::vector<float>& input,
                                const std::vector<float>& weights,
                                const ConvShape& s) {
  ALCOP_CHECK(s.kernel == 1 || s.kernel == 3);
  ALCOP_CHECK_EQ(static_cast<int64_t>(input.size()), s.n * s.h * s.w * s.c_in);
  ALCOP_CHECK_EQ(static_cast<int64_t>(weights.size()),
                 s.c_out * s.kernel * s.kernel * s.c_in);
  int64_t pad = s.kernel / 2;
  std::vector<float> output(static_cast<size_t>(s.n * s.h * s.w * s.c_out),
                            0.0f);
  for (int64_t img = 0; img < s.n; ++img) {
    for (int64_t y = 0; y < s.h; ++y) {
      for (int64_t x = 0; x < s.w; ++x) {
        for (int64_t k = 0; k < s.c_out; ++k) {
          float acc = 0.0f;
          for (int64_t dy = 0; dy < s.kernel; ++dy) {
            int64_t in_y = y + dy - pad;
            if (in_y < 0 || in_y >= s.h) continue;
            for (int64_t dx = 0; dx < s.kernel; ++dx) {
              int64_t in_x = x + dx - pad;
              if (in_x < 0 || in_x >= s.w) continue;
              for (int64_t c = 0; c < s.c_in; ++c) {
                float iv = input[static_cast<size_t>(
                    ((img * s.h + in_y) * s.w + in_x) * s.c_in + c)];
                float wv = weights[static_cast<size_t>(
                    ((k * s.kernel + dy) * s.kernel + dx) * s.c_in + c)];
                acc += iv * wv;
              }
            }
          }
          output[static_cast<size_t>(((img * s.h + y) * s.w + x) * s.c_out +
                                     k)] = acc;
        }
      }
    }
  }
  return output;
}

std::vector<float> Im2col(const std::vector<float>& input,
                          const ConvShape& s) {
  ALCOP_CHECK_EQ(static_cast<int64_t>(input.size()), s.n * s.h * s.w * s.c_in);
  int64_t pad = s.kernel / 2;
  std::vector<float> matrix(
      static_cast<size_t>(s.OutputPositions() * s.PatchSize()), 0.0f);
  for (int64_t img = 0; img < s.n; ++img) {
    for (int64_t y = 0; y < s.h; ++y) {
      for (int64_t x = 0; x < s.w; ++x) {
        int64_t row = (img * s.h + y) * s.w + x;
        for (int64_t dy = 0; dy < s.kernel; ++dy) {
          int64_t in_y = y + dy - pad;
          if (in_y < 0 || in_y >= s.h) continue;
          for (int64_t dx = 0; dx < s.kernel; ++dx) {
            int64_t in_x = x + dx - pad;
            if (in_x < 0 || in_x >= s.w) continue;
            for (int64_t c = 0; c < s.c_in; ++c) {
              matrix[static_cast<size_t>(row * s.PatchSize() +
                                         PatchIndex(s, dy, dx, c))] =
                  input[static_cast<size_t>(
                      ((img * s.h + in_y) * s.w + in_x) * s.c_in + c)];
            }
          }
        }
      }
    }
  }
  return matrix;
}

std::vector<float> FlattenWeights(const std::vector<float>& weights,
                                  const ConvShape& s) {
  ALCOP_CHECK_EQ(static_cast<int64_t>(weights.size()),
                 s.c_out * s.kernel * s.kernel * s.c_in);
  std::vector<float> flat(static_cast<size_t>(s.c_out * s.PatchSize()));
  for (int64_t k = 0; k < s.c_out; ++k) {
    for (int64_t dy = 0; dy < s.kernel; ++dy) {
      for (int64_t dx = 0; dx < s.kernel; ++dx) {
        for (int64_t c = 0; c < s.c_in; ++c) {
          flat[static_cast<size_t>(k * s.PatchSize() +
                                   PatchIndex(s, dy, dx, c))] =
              weights[static_cast<size_t>(
                  ((k * s.kernel + dy) * s.kernel + dx) * s.c_in + c)];
        }
      }
    }
  }
  return flat;
}

}  // namespace workloads
}  // namespace alcop
