// The single-operator benchmark suite of the paper's Sec. V-A (Fig. 10 /
// Fig. 11): four operator families — MatMul, batched MatMul, 1x1 and 3x3
// convolution — with shapes extracted from BERT, GPT-2, ResNet-50 and VGG
// workloads, all half-precision on Tensor Cores.
#ifndef ALCOP_WORKLOADS_OPS_H_
#define ALCOP_WORKLOADS_OPS_H_

#include <vector>

#include "schedule/tensor.h"

namespace alcop {
namespace workloads {

// The twelve benchmark operators, in the order the figures print them.
// Names follow the paper's convention (MM_/BMM_/Conv_ prefix, model tag,
// operator role).
const std::vector<schedule::GemmOp>& BenchmarkOps();

// Finds an operator by name; throws CheckError if absent.
const schedule::GemmOp& FindOp(const std::string& name);

}  // namespace workloads
}  // namespace alcop

#endif  // ALCOP_WORKLOADS_OPS_H_
