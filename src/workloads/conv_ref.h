// Direct-convolution reference and im2col materialization.
//
// The workloads express Conv2D through its im2col / implicit-GEMM view
// (DESIGN.md substitution table). This module provides the ground truth
// that justifies it: a direct NHWC convolution and an explicit im2col
// expansion, so tests can assert
//     DirectConv2d(x, w)  ==  GEMM(Im2col(x), flatten(w)).
#ifndef ALCOP_WORKLOADS_CONV_REF_H_
#define ALCOP_WORKLOADS_CONV_REF_H_

#include <cstdint>
#include <vector>

namespace alcop {
namespace workloads {

struct ConvShape {
  int64_t n = 1;      // images
  int64_t h = 8;      // input height (output equals input: stride 1,
  int64_t w = 8;      //   "same" zero padding)
  int64_t c_in = 4;
  int64_t c_out = 8;
  int64_t kernel = 3;  // 1 or 3

  int64_t OutputPositions() const { return n * h * w; }
  int64_t PatchSize() const { return c_in * kernel * kernel; }
};

// Direct convolution. input is NHWC [n,h,w,c_in]; weights are
// [c_out, kernel, kernel, c_in]; output is [n,h,w,c_out].
std::vector<float> DirectConv2d(const std::vector<float>& input,
                                const std::vector<float>& weights,
                                const ConvShape& shape);

// im2col expansion: [n*h*w, c_in*kernel*kernel] row-major, zero padding at
// the borders. Row p corresponds to output position p; its dot product
// with a flattened filter row reproduces the convolution.
std::vector<float> Im2col(const std::vector<float>& input,
                          const ConvShape& shape);

// Flattens weights [c_out, kernel, kernel, c_in] to the GEMM B layout
// [c_out, c_in*kernel*kernel] with the same patch ordering as Im2col.
std::vector<float> FlattenWeights(const std::vector<float>& weights,
                                  const ConvShape& shape);

}  // namespace workloads
}  // namespace alcop

#endif  // ALCOP_WORKLOADS_CONV_REF_H_
