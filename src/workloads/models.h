// End-to-end model graphs for Table III: BERT, BERT-Large, GPT-2 (NLP) and
// ResNet-18, ResNet-50, VGG-16 (vision).
//
// A model is a multiset of GEMM-family operators (the pipelining targets:
// MatMul, BMM, Conv2D — the paper notes these consume the dominant share
// of inference latency) plus the memory-bound non-GEMM work (layernorm,
// softmax, residual, activation), summarized by its memory traffic under
// aggressive (TVM/ALCOP) and conservative (XLA) fusion.
#ifndef ALCOP_WORKLOADS_MODELS_H_
#define ALCOP_WORKLOADS_MODELS_H_

#include <functional>
#include <string>
#include <vector>

#include "schedule/tensor.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace workloads {

struct LayerOp {
  schedule::GemmOp op;
  int count = 1;
};

struct ModelGraph {
  std::string name;
  std::vector<LayerOp> ops;
  // Bytes of memory-bound elementwise/normalization traffic.
  double ewise_bytes_fused = 0.0;    // TVM/ALCOP-style epilogue fusion
  double ewise_bytes_unfused = 0.0;  // XLA-style materialization
  int launches_fused = 0;    // kernel launch count
  int launches_unfused = 0;
};

// The six evaluated models.
const std::vector<ModelGraph>& Models();
const ModelGraph& FindModel(const std::string& name);

// End-to-end inference cycles: tuned GEMM kernels (via `gemm_cycles`) plus
// the elementwise traffic at DRAM bandwidth plus launch overheads.
double EndToEndCycles(
    const ModelGraph& model,
    const std::function<double(const schedule::GemmOp&)>& gemm_cycles,
    bool fused, const target::GpuSpec& spec);

}  // namespace workloads
}  // namespace alcop

#endif  // ALCOP_WORKLOADS_MODELS_H_
