#include "workloads/ops.h"

#include "support/check.h"

namespace alcop {
namespace workloads {

using schedule::GemmOp;
using schedule::MakeBatchMatmul;
using schedule::MakeConv;
using schedule::MakeMatmul;

const std::vector<GemmOp>& BenchmarkOps() {
  static const std::vector<GemmOp> ops = [] {
    std::vector<GemmOp> list;
    // ---- MatMuls ----
    // BERT-base (seq 512, hidden 768): QKV projection, FFN up, FFN down.
    list.push_back(MakeMatmul("MM_BERT_QKV", 512, 2304, 768));
    list.push_back(MakeMatmul("MM_BERT_FC1", 512, 3072, 768));
    // Small output, long reduction: the paper's best case.
    list.push_back(MakeMatmul("MM_BERT_FC2", 512, 768, 3072));
    // ResNet-50 FC with batched rows: output 1024x64, reduction 2048
    // (the operator with the largest speedup in the paper).
    list.push_back(MakeMatmul("MM_RN50_FC", 1024, 64, 2048));
    // GPT-2 (seq 1024) FFN up-projection.
    list.push_back(MakeMatmul("MM_GPT2_FC1", 1024, 3072, 768));
    // 1x1 convolution as a plain MatMul: huge output, short reduction --
    // abundant spatial parallelism, little pipelining benefit.
    list.push_back(MakeConv("MM_Conv1x1_1", 4, 56, 56, 64, 256, 1));

    // ---- Batched MatMuls (attention, inference batch 1) ----
    // 12 heads, head dim 64. QK has a short reduction (64) and a large
    // square output; SV has a long reduction (the sequence length) and a
    // narrow output — the paper's contrast pair.
    list.push_back(MakeBatchMatmul("BMM_BERT_QK", 12, 512, 512, 64));
    list.push_back(MakeBatchMatmul("BMM_BERT_SV", 12, 512, 64, 512));
    list.push_back(MakeBatchMatmul("BMM_GPT2_QK", 12, 1024, 1024, 64));
    list.push_back(MakeBatchMatmul("BMM_GPT2_SV", 12, 1024, 64, 1024));

    // ---- Convolutions (implicit GEMM) ----
    list.push_back(MakeConv("Conv_RN50_3x3", 8, 28, 28, 128, 128, 3));
    list.push_back(MakeConv("Conv_VGG_3x3", 4, 56, 56, 128, 128, 3));
    return list;
  }();
  return ops;
}

const GemmOp& FindOp(const std::string& name) {
  for (const GemmOp& op : BenchmarkOps()) {
    if (op.name == name) return op;
  }
  ALCOP_CHECK(false) << "unknown benchmark operator '" << name << "'";
  return BenchmarkOps()[0];
}

}  // namespace workloads
}  // namespace alcop
