#include "workloads/library.h"

#include <limits>

#include "perfmodel/analytical.h"
#include "sim/launch.h"

namespace alcop {
namespace workloads {

using schedule::ScheduleConfig;

namespace {

ScheduleConfig Menu(int64_t tb_m, int64_t tb_n, int64_t tb_k, int64_t warp_m,
                    int64_t warp_n, int smem, int reg) {
  ScheduleConfig config;
  config.tile = {tb_m, tb_n, tb_k, warp_m, warp_n, 16};
  config.smem_stages = smem;
  config.reg_stages = reg;
  return config;
}

}  // namespace

const std::vector<ScheduleConfig>& LibraryKernelMenu() {
  static const std::vector<ScheduleConfig> menu = {
      Menu(256, 128, 32, 64, 64, 3, 2),
      Menu(128, 256, 32, 64, 64, 3, 2),
      Menu(128, 128, 32, 64, 64, 4, 2),
      Menu(128, 64, 32, 64, 32, 4, 2),
      Menu(64, 128, 32, 32, 64, 4, 2),
      Menu(64, 64, 32, 32, 32, 4, 2),
      Menu(128, 128, 64, 64, 64, 3, 2),
      Menu(64, 64, 64, 32, 32, 3, 2),
      Menu(32, 64, 32, 32, 32, 4, 2),
      Menu(64, 32, 32, 32, 32, 4, 2),
      Menu(32, 32, 16, 32, 32, 4, 2),
      // Two-stage variants for short reduction axes (K / tb_k < 3).
      Menu(128, 128, 32, 64, 64, 2, 2),
      Menu(128, 128, 16, 64, 64, 2, 2),
      Menu(64, 64, 32, 32, 32, 2, 2),
      Menu(64, 64, 16, 32, 32, 2, 2),
      Menu(256, 128, 16, 64, 64, 2, 2),
  };
  return menu;
}

target::GpuSpec LibrarySpec(const target::GpuSpec& spec) {
  target::GpuSpec tuned = spec;
  // Hand-scheduled kernels: tighter synchronization, leaner prologues and
  // epilogues, hand-vectorized copies, and a fraction of the generic
  // launch path.
  tuned.sync_overhead_cycles *= 0.25;
  tuned.launch_overhead_cycles *= 0.25;
  tuned.copy_issue_bytes_per_cycle *= 2.0;
  return tuned;
}

double LibraryKernelCycles(const schedule::GemmOp& op,
                           const target::GpuSpec& spec) {
  target::GpuSpec tuned = LibrarySpec(spec);
  // The library heuristic is assumed well-tuned for its own menu: the best
  // menu entry wins (cuBLAS heuristics rarely miss within their own
  // kernel set). What the library cannot do is search beyond the menu.
  double best = std::numeric_limits<double>::infinity();
  for (const ScheduleConfig& config : LibraryKernelMenu()) {
    if (!schedule::ValidateConfig(op, config)) continue;
    sim::KernelTiming timing = sim::CompileAndSimulate(op, config, tuned);
    if (timing.feasible) best = std::min(best, timing.cycles);
  }
  return best;
}

}  // namespace workloads
}  // namespace alcop
