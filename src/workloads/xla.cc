#include "workloads/xla.h"

#include <limits>

#include "perfmodel/analytical.h"
#include "sim/launch.h"

namespace alcop {
namespace workloads {

using schedule::ScheduleConfig;

namespace {

// XLA's fixed tiling menu: generic tiles, double buffering at most, no
// register pipelining, no per-shape search.
const std::vector<ScheduleConfig>& XlaMenu() {
  static const std::vector<ScheduleConfig> menu = [] {
    std::vector<ScheduleConfig> list;
    auto add = [&list](int64_t tb_m, int64_t tb_n, int64_t tb_k,
                       int64_t warp_m, int64_t warp_n) {
      ScheduleConfig config;
      config.tile = {tb_m, tb_n, tb_k, warp_m, warp_n, 16};
      config.smem_stages = 2;
      config.reg_stages = 1;
      list.push_back(config);
    };
    add(128, 128, 32, 64, 64);
    add(64, 128, 32, 32, 64);
    add(64, 64, 32, 32, 32);
    add(32, 32, 16, 32, 32);
    return list;
  }();
  return menu;
}

}  // namespace

double XlaKernelCycles(const schedule::GemmOp& op,
                       const target::GpuSpec& spec) {
  double best_predicted = std::numeric_limits<double>::infinity();
  const ScheduleConfig* chosen = nullptr;
  for (const ScheduleConfig& config : XlaMenu()) {
    if (!schedule::ValidateConfig(op, config)) continue;
    double predicted = perfmodel::PredictCycles(op, config, spec);
    if (predicted < best_predicted) {
      best_predicted = predicted;
      chosen = &config;
    }
  }
  if (chosen == nullptr) return std::numeric_limits<double>::infinity();
  sim::KernelTiming timing = sim::CompileAndSimulate(op, *chosen, spec);
  return timing.feasible ? timing.cycles
                         : std::numeric_limits<double>::infinity();
}

}  // namespace workloads
}  // namespace alcop
