// Vendor-library baseline (cuBLAS / cuDNN stand-in) for Fig. 11.
//
// Libraries ship a menu of hand-written kernel configurations (CUTLASS
// tile shapes with deep pipelines) and pick one per problem with a
// heuristic. Hand-written kernels also carry an instruction-scheduling
// edge no compiler fully matches. We model both: a fixed expert menu
// evaluated on the simulator, with reduced synchronization and launch
// overheads representing the hand-tuning edge. Libraries cannot search
// per-shape the way a compiler can, which is why ALCOP can win on unusual
// shapes (the paper's BMM_BERT_QK observation).
#ifndef ALCOP_WORKLOADS_LIBRARY_H_
#define ALCOP_WORKLOADS_LIBRARY_H_

#include <vector>

#include "schedule/schedule.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace workloads {

// The expert kernel menu (CUTLASS-style configurations).
const std::vector<schedule::ScheduleConfig>& LibraryKernelMenu();

// Simulated cycles of the library's kernel choice for `op`; +inf if no
// menu entry fits the problem (real libraries fall back to padded kernels;
// our menu is broad enough that this does not happen for the suite).
double LibraryKernelCycles(const schedule::GemmOp& op,
                           const target::GpuSpec& spec);

// The device spec with the hand-tuning edge applied.
target::GpuSpec LibrarySpec(const target::GpuSpec& spec);

}  // namespace workloads
}  // namespace alcop

#endif  // ALCOP_WORKLOADS_LIBRARY_H_
