// Process-wide metrics registry: named counters, gauges and histograms
// behind one `alcop::obs::Registry`, with deterministic text and JSON
// dumps. This is the second pillar of the observability layer (DESIGN.md
// "Observability"): the sim-cache counters, thread-pool stats and tuner
// stats all surface here instead of each subsystem growing its own
// ad-hoc snapshot struct.
//
// Usage pattern on hot paths — resolve once, then update lock-free:
//
//   static obs::Counter& trials =
//       obs::Registry::Global().GetCounter("tuner.trials");
//   trials.Increment();
//
// Counters and gauges are single relaxed atomics; histograms are one
// relaxed atomic add into a power-of-two bucket. Metrics are never
// removed, so returned references stay valid for the process lifetime.
// Subsystems whose state cannot live in a plain counter (e.g. cache
// entry counts that are the size of a locked map) register a callback
// gauge instead; callbacks run only when a dump is rendered.
#ifndef ALCOP_OBS_METRICS_H_
#define ALCOP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace alcop {
namespace obs {

// Monotonic counter (resettable for tests/benches).
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written double value. Add() makes it usable as an up/down gauge
// (e.g. serving.inflight: +1 at dispatch, -1 at completion).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Plain-value copy of one histogram's state: what dumps, the Prometheus
// exporter and quantile estimation work from.
struct HistogramData {
  uint64_t buckets[64] = {};
  uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
};

// Power-of-two-bucketed histogram of non-negative samples: bucket i
// counts samples in [2^(i-1), 2^i) (bucket 0: [0, 1)). Tracks count,
// sum and max so dumps can report mean and tail without storing samples.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(double value);
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    uint64_t n = Count();
    return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
  }
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  // Relaxed snapshot of all buckets + count/sum/max (each field is
  // individually coherent; the set may straddle concurrent Observes).
  HistogramData Data() const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// Quantile estimate (q in [0,1]) from power-of-two buckets: walks the
// cumulative distribution to the target rank and interpolates linearly
// inside the bucket, clamped to the observed max. 0 when empty.
double HistogramQuantile(const HistogramData& data, double q);

// One registry entry as seen by a dump or the Prometheus exporter.
// `name` is the full registered name, which by convention may carry
// `|key=value` label suffixes (e.g. "serving.request.latency.us|lane=fast");
// plain text/JSON dumps print it verbatim, the Prometheus renderer splits
// it into a metric family plus labels.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kCallback, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::string help;         // registered help text ("" when none given)
  double value = 0.0;       // counter/gauge/callback value
  HistogramData histogram;  // kHistogram only
};

class Registry {
 public:
  // The process-wide registry (leaked, outlives all threads).
  static Registry& Global();

  // Finds or creates the named metric. A name addresses exactly one
  // metric kind; requesting it as a different kind throws CheckError.
  // `help` is # HELP-style description metadata recorded at the
  // registration site (first non-empty string wins; "" leaves any
  // existing help untouched) and surfaces in RenderText and the
  // Prometheus exposition.
  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  Histogram& GetHistogram(const std::string& name,
                          const std::string& help = "");

  // Registers a read-on-dump gauge backed by `fn` (re-registering a name
  // replaces the callback; used by subsystems whose value is computed).
  void RegisterCallback(const std::string& name, std::function<double()> fn,
                        const std::string& help = "");

  // Deterministic dumps, sorted by metric name.
  std::string RenderText() const;
  std::string RenderJson() const;

  // Every registered metric with its current value, sorted by name.
  // Callbacks are evaluated outside the registry lock, like the dumps.
  std::vector<MetricSnapshot> Snapshot() const;

  // Zeroes every counter/gauge/histogram (callbacks are left alone:
  // their owners reset their own state). Tests and benches only.
  void ResetAll();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace obs
}  // namespace alcop

#endif  // ALCOP_OBS_METRICS_H_
