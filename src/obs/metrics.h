// Process-wide metrics registry: named counters, gauges and histograms
// behind one `alcop::obs::Registry`, with deterministic text and JSON
// dumps. This is the second pillar of the observability layer (DESIGN.md
// "Observability"): the sim-cache counters, thread-pool stats and tuner
// stats all surface here instead of each subsystem growing its own
// ad-hoc snapshot struct.
//
// Usage pattern on hot paths — resolve once, then update lock-free:
//
//   static obs::Counter& trials =
//       obs::Registry::Global().GetCounter("tuner.trials");
//   trials.Increment();
//
// Counters and gauges are single relaxed atomics; histograms are one
// relaxed atomic add into a power-of-two bucket. Metrics are never
// removed, so returned references stay valid for the process lifetime.
// Subsystems whose state cannot live in a plain counter (e.g. cache
// entry counts that are the size of a locked map) register a callback
// gauge instead; callbacks run only when a dump is rendered.
#ifndef ALCOP_OBS_METRICS_H_
#define ALCOP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace alcop {
namespace obs {

// Monotonic counter (resettable for tests/benches).
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written double value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Power-of-two-bucketed histogram of non-negative samples: bucket i
// counts samples in [2^(i-1), 2^i) (bucket 0: [0, 1)). Tracks count,
// sum and max so dumps can report mean and tail without storing samples.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(double value);
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    uint64_t n = Count();
    return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
  }
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

class Registry {
 public:
  // The process-wide registry (leaked, outlives all threads).
  static Registry& Global();

  // Finds or creates the named metric. A name addresses exactly one
  // metric kind; requesting it as a different kind throws CheckError.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Registers a read-on-dump gauge backed by `fn` (re-registering a name
  // replaces the callback; used by subsystems whose value is computed).
  void RegisterCallback(const std::string& name, std::function<double()> fn);

  // Deterministic dumps, sorted by metric name.
  std::string RenderText() const;
  std::string RenderJson() const;

  // Zeroes every counter/gauge/histogram (callbacks are left alone:
  // their owners reset their own state). Tests and benches only.
  void ResetAll();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace obs
}  // namespace alcop

#endif  // ALCOP_OBS_METRICS_H_
