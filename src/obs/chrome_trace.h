// Chrome trace_event / Perfetto JSON export: one file that carries both
// the host-side compiler-phase spans (obs/trace.h) and the simulated
// GPU's execution timeline (sim/timeline.h), loadable in chrome://tracing
// or ui.perfetto.dev.
//
// Track layout:
//   - pid 1 "alcop host": one thread track per tracing host thread,
//     ts/dur in real microseconds since the trace epoch.
//   - pid 2 "simulated GPU": one thread track per (threadblock, warp)
//     plus one "tb<i> mem pipe" track per threadblock for background
//     async transfers; ts/dur carry *simulated cycles* in the microsecond
//     field (1 us == 1 cycle), so Perfetto's ruler reads directly in
//     cycles. SpanKind names become the event categories.
//
// The emitted JSON is deterministic for a given input (stable ordering,
// fixed number formatting, one event per line) — the golden exporter
// test diffs two exports byte for byte.
#ifndef ALCOP_OBS_CHROME_TRACE_H_
#define ALCOP_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/timeline.h"

namespace alcop {
namespace obs {

// Builds a Chrome trace_event JSON document incrementally.
class ChromeTraceWriter {
 public:
  // Metadata events naming a process / thread track.
  void AddProcessName(int pid, const std::string& name);
  void AddThreadName(int pid, int tid, const std::string& name);

  // One complete ("ph":"X") event. ts/dur are in Chrome's microsecond
  // unit (real us for host spans, simulated cycles for GPU spans).
  void AddCompleteEvent(const std::string& name, const std::string& category,
                        int pid, int tid, double ts_us, double dur_us);

  size_t num_events() const { return events_.size(); }

  // The full document: {"traceEvents": [...], ...}, one event per line.
  std::string ToJson() const;

 private:
  std::vector<std::string> events_;
};

// Host pillar: every collected host span as a pid-1 event (tid = the
// span's dense thread id).
void AppendHostSpans(ChromeTraceWriter* writer,
                     const std::vector<TraceSpan>& spans);

// Simulated-GPU pillar: one pid-2 track per (tb, warp) and per
// threadblock memory pipe. `num_warps` is the warps per threadblock (the
// track id stride).
void AppendSimTimeline(ChromeTraceWriter* writer, const sim::Timeline& timeline,
                       int num_warps);

}  // namespace obs
}  // namespace alcop

#endif  // ALCOP_OBS_CHROME_TRACE_H_
