#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "obs/metrics.h"

namespace alcop {
namespace obs {

namespace {

std::atomic<bool> g_enabled{false};

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t Epoch() {
  static const int64_t epoch = SteadyNowNs();
  return epoch;
}

// Fixed per-thread ring capacity: 16k spans ≈ 0.75 MB per tracing
// thread, enough for a full profile run of the CLI; overflow drops the
// oldest spans and is surfaced through DroppedSpans().
constexpr size_t kRingCapacity = 1 << 14;

struct ThreadRing {
  std::mutex mu;
  std::vector<TraceSpan> spans;  // ring storage, reserved on creation
  size_t next = 0;               // write cursor (wraps at kRingCapacity)
  bool wrapped = false;
  uint32_t thread_id = 0;
  uint16_t depth = 0;  // live nesting depth of the owning thread
};

// Global registry of rings. Rings are never destroyed (a thread that
// exits leaves its ring behind so its spans survive collection); both the
// registry and the rings are leaked like the sim cache so no destructor
// ordering issue can bite at process exit.
struct RingRegistry {
  std::mutex mu;
  std::vector<ThreadRing*> rings;
  std::atomic<uint64_t> dropped{0};
  uint32_t next_thread_id = 0;
};

RingRegistry& GlobalRegistry() {
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

ThreadRing& LocalRing() {
  thread_local ThreadRing* ring = [] {
    auto* r = new ThreadRing();
    r->spans.reserve(kRingCapacity);
    RingRegistry& reg = GlobalRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    r->thread_id = reg.next_thread_id++;
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

int64_t NowNanos() { return SteadyNowNs() - Epoch(); }

bool TraceEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetTraceEnabled(bool enabled) {
  Epoch();  // pin the epoch before the first span
  // Ring-buffer overflow is observable as a metric: golden sweeps assert
  // the gauge stays at zero (dropped spans mean a silently truncated
  // trace). Registered here — lazily, once — so merely linking the obs
  // library never touches the registry.
  static std::once_flag registered;
  std::call_once(registered, [] {
    Registry::Global().RegisterCallback(
        "obs.trace.dropped",
        [] { return static_cast<double>(DroppedSpans()); },
        "Spans lost to ring-buffer wrap-around since the last clear.");
  });
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void RecordSpan(const char* name, const char* category, int64_t start_ns,
                int64_t end_ns) {
  if (!TraceEnabled()) return;
  ThreadRing& ring = LocalRing();
  TraceSpan span;
  span.name = name;
  span.category = category;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.thread_id = ring.thread_id;
  span.depth = ring.depth;
  bool was_full = false;
  {
    std::lock_guard<std::mutex> lock(ring.mu);
    if (ring.spans.size() < kRingCapacity) {
      ring.spans.push_back(span);
    } else {
      ring.spans[ring.next] = span;
      was_full = true;
    }
    ring.next = (ring.next + 1) % kRingCapacity;
    ring.wrapped = ring.wrapped || was_full;
  }
  if (was_full) {
    GlobalRegistry().dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<TraceSpan> CollectTraceSpans() {
  RingRegistry& reg = GlobalRegistry();
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  std::vector<TraceSpan> out;
  for (ThreadRing* ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    out.insert(out.end(), ring->spans.begin(), ring->spans.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     if (a.thread_id != b.thread_id) {
                       return a.thread_id < b.thread_id;
                     }
                     return a.depth < b.depth;
                   });
  return out;
}

void ClearTrace() {
  RingRegistry& reg = GlobalRegistry();
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  for (ThreadRing* ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->spans.clear();
    ring->next = 0;
    ring->wrapped = false;
  }
  reg.dropped.store(0, std::memory_order_relaxed);
}

uint64_t DroppedSpans() {
  return GlobalRegistry().dropped.load(std::memory_order_relaxed);
}

TraceScope::TraceScope(const char* name, const char* category)
    : name_(name), category_(category), start_ns_(0), armed_(TraceEnabled()) {
  if (armed_) {
    start_ns_ = NowNanos();
    ++LocalRing().depth;
  }
}

TraceScope::~TraceScope() {
  if (armed_) {
    ThreadRing& ring = LocalRing();
    if (ring.depth > 0) --ring.depth;
    RecordSpan(name_, category_, start_ns_, NowNanos());
  }
}

}  // namespace obs
}  // namespace alcop
