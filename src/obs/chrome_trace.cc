#include "obs/chrome_trace.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace alcop {
namespace obs {

namespace {

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Fixed-format number: deterministic and fractional-cycle safe. %.3f
// keeps nanosecond resolution in the microsecond field.
std::string Num(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace

void ChromeTraceWriter::AddProcessName(int pid, const std::string& name) {
  std::ostringstream out;
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"tid\": 0, \"args\": {\"name\": \"" << Escape(name) << "\"}}";
  events_.push_back(out.str());
}

void ChromeTraceWriter::AddThreadName(int pid, int tid,
                                      const std::string& name) {
  std::ostringstream out;
  out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"tid\": " << tid << ", \"args\": {\"name\": \"" << Escape(name)
      << "\"}}";
  events_.push_back(out.str());
}

void ChromeTraceWriter::AddCompleteEvent(const std::string& name,
                                         const std::string& category, int pid,
                                         int tid, double ts_us, double dur_us) {
  std::ostringstream out;
  out << "{\"name\": \"" << Escape(name) << "\", \"cat\": \""
      << Escape(category) << "\", \"ph\": \"X\", \"ts\": " << Num(ts_us)
      << ", \"dur\": " << Num(dur_us) << ", \"pid\": " << pid
      << ", \"tid\": " << tid << "}";
  events_.push_back(out.str());
}

std::string ChromeTraceWriter::ToJson() const {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    out << events_[i];
    if (i + 1 < events_.size()) out << ",";
    out << "\n";
  }
  out << "]}\n";
  return out.str();
}

void AppendHostSpans(ChromeTraceWriter* writer,
                     const std::vector<TraceSpan>& spans) {
  constexpr int kHostPid = 1;
  writer->AddProcessName(kHostPid, "alcop host");
  uint32_t max_thread = 0;
  for (const TraceSpan& span : spans) {
    if (span.thread_id > max_thread) max_thread = span.thread_id;
  }
  if (!spans.empty()) {
    for (uint32_t t = 0; t <= max_thread; ++t) {
      writer->AddThreadName(kHostPid, static_cast<int>(t),
                            t == 0 ? "main" : "pool-" + std::to_string(t));
    }
  }
  for (const TraceSpan& span : spans) {
    writer->AddCompleteEvent(span.name, span.category, kHostPid,
                             static_cast<int>(span.thread_id),
                             static_cast<double>(span.start_ns) / 1e3,
                             static_cast<double>(span.end_ns - span.start_ns) /
                                 1e3);
  }
}

void AppendSimTimeline(ChromeTraceWriter* writer, const sim::Timeline& timeline,
                       int num_warps) {
  constexpr int kGpuPid = 2;
  writer->AddProcessName(kGpuPid, "simulated GPU (1 us = 1 cycle)");
  // Track id: tb * (num_warps + 1) + warp, with the extra row per
  // threadblock holding the background memory-pipe transfers.
  int stride = num_warps + 1;
  int max_tb = -1;
  for (const sim::TimelineSpan& span : timeline.spans) {
    if (span.tb > max_tb) max_tb = span.tb;
  }
  for (int tb = 0; tb <= max_tb; ++tb) {
    for (int warp = 0; warp < num_warps; ++warp) {
      writer->AddThreadName(kGpuPid, tb * stride + warp,
                            "tb" + std::to_string(tb) + " warp" +
                                std::to_string(warp));
    }
    writer->AddThreadName(kGpuPid, tb * stride + num_warps,
                          "tb" + std::to_string(tb) + " mem pipe");
  }
  for (const sim::TimelineSpan& span : timeline.spans) {
    int warp = span.warp < 0 ? num_warps : span.warp;
    writer->AddCompleteEvent(sim::SpanKindName(span.kind),
                             sim::SpanKindName(span.kind), kGpuPid,
                             span.tb * stride + warp, span.start,
                             span.end - span.start);
  }
}

}  // namespace obs
}  // namespace alcop
