#include "obs/stall.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "perfmodel/bottleneck.h"

namespace alcop {
namespace obs {

namespace {

// Length of the union of [start, end) intervals (pipes can hold several
// overlapping transfers in flight; busy time must not double-count).
double UnionLength(std::vector<std::pair<double, double>>* intervals) {
  if (intervals->empty()) return 0.0;
  std::sort(intervals->begin(), intervals->end());
  double covered = 0.0;
  double begin = (*intervals)[0].first;
  double end = (*intervals)[0].second;
  for (const auto& [s, e] : *intervals) {
    if (s > end) {
      covered += end - begin;
      begin = s;
      end = e;
    } else {
      end = std::max(end, e);
    }
  }
  return covered + (end - begin);
}

void Accumulate(CycleBreakdown* breakdown, sim::SpanKind kind,
                double duration) {
  switch (kind) {
    case sim::SpanKind::kCompute: breakdown->compute += duration; break;
    case sim::SpanKind::kIssue: breakdown->issue += duration; break;
    case sim::SpanKind::kSyncStall: breakdown->sync_stall += duration; break;
    case sim::SpanKind::kBarrier: breakdown->barrier += duration; break;
    case sim::SpanKind::kBlockingCopy:
      breakdown->exposed_copy += duration;
      break;
    case sim::SpanKind::kFill: breakdown->fill += duration; break;
    case sim::SpanKind::kStore: breakdown->store += duration; break;
    case sim::SpanKind::kTransfer: break;  // background pipe, not warp time
  }
}

std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", fraction * 100.0);
  return buf;
}

std::string JsonNum(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

KernelProfile ProfileBatch(const sim::BatchTimeline& batch) {
  KernelProfile profile;
  profile.makespan = batch.timeline.makespan;
  profile.threadblocks = batch.threadblocks;
  profile.num_warps = batch.num_warps;

  std::map<std::pair<int, int>, CycleBreakdown> per_warp;
  // Every (tb, warp) row exists even if it recorded no spans, so the
  // breakdown table always covers the whole launch.
  for (int tb = 0; tb < batch.threadblocks; ++tb) {
    for (int warp = 0; warp < batch.num_warps; ++warp) {
      per_warp[{tb, warp}] = CycleBreakdown();
    }
  }

  std::vector<std::pair<double, double>> compute_busy;
  std::vector<std::pair<double, double>> memory_busy;
  double first_compute = profile.makespan;
  double last_compute = 0.0;
  bool any_compute = false;

  // Pipe utilization is busy time *within* the makespan window: the
  // memory pipes keep draining transfers past the batch boundary, and
  // counting that tail would push utilization above 1.
  auto clamped = [&](double start, double end) {
    return std::make_pair(std::max(start, 0.0),
                          std::min(end, profile.makespan));
  };
  for (const sim::TimelineSpan& span : batch.timeline.spans) {
    double duration = span.end - span.start;
    if (span.warp < 0) {
      if (span.start < profile.makespan && span.end > 0.0) {
        memory_busy.push_back(clamped(span.start, span.end));
      }
      continue;
    }
    Accumulate(&per_warp[{span.tb, span.warp}], span.kind, duration);
    if (span.kind == sim::SpanKind::kCompute) {
      if (span.start < profile.makespan && span.end > 0.0) {
        compute_busy.push_back(clamped(span.start, span.end));
      }
      first_compute = std::min(first_compute, span.start);
      last_compute = std::max(last_compute, span.end);
      any_compute = true;
    }
  }

  for (auto& [key, breakdown] : per_warp) {
    breakdown.idle = profile.makespan - (breakdown.compute + breakdown.issue +
                                         breakdown.sync_stall +
                                         breakdown.barrier +
                                         breakdown.exposed_copy +
                                         breakdown.fill + breakdown.store);
    WarpProfile row;
    row.tb = key.first;
    row.warp = key.second;
    row.cycles = breakdown;
    profile.warps.push_back(row);

    profile.total.compute += breakdown.compute;
    profile.total.issue += breakdown.issue;
    profile.total.sync_stall += breakdown.sync_stall;
    profile.total.barrier += breakdown.barrier;
    profile.total.exposed_copy += breakdown.exposed_copy;
    profile.total.fill += breakdown.fill;
    profile.total.store += breakdown.store;
    profile.total.idle += breakdown.idle;
  }

  if (profile.makespan > 0.0) {
    profile.tensor_pipe_utilization =
        UnionLength(&compute_busy) / profile.makespan;
    profile.memory_pipe_utilization =
        UnionLength(&memory_busy) / profile.makespan;
    if (any_compute) {
      profile.fill_fraction = std::max(first_compute, 0.0) / profile.makespan;
      profile.drain_fraction =
          std::max(profile.makespan - last_compute, 0.0) / profile.makespan;
    }
  }

  // Verdict from the aggregate warp-time split: blocking copies dominate
  // -> the schedule failed to hide loads at all (TVM-DB shape); stalls
  // dominate -> loads are hidden but the pipes can't feed the warps
  // (bandwidth) or the pipeline is too shallow (latency); otherwise the
  // tensor cores are the constraint.
  const CycleBreakdown& t = profile.total;
  double stall = t.sync_stall + t.barrier;
  if (t.exposed_copy > t.compute && t.exposed_copy >= stall) {
    profile.verdict = "exposed-copy-bound";
  } else if (stall > t.compute) {
    profile.verdict = profile.memory_pipe_utilization >=
                              profile.tensor_pipe_utilization
                          ? "memory-bandwidth-bound"
                          : "sync-stall-bound";
  } else {
    profile.verdict = "compute-bound";
  }
  return profile;
}

void AttachModelVerdict(KernelProfile* profile, const schedule::GemmOp& op,
                        const schedule::ScheduleConfig& config,
                        const target::GpuSpec& spec) {
  perfmodel::BottleneckBreakdown model =
      perfmodel::BottleneckAnalyze(op, config, spec);
  profile->model_limiter = model.Limiter();
  profile->model_cycles = model.Cycles();
  bool measured_compute = profile->verdict == "compute-bound";
  bool model_compute = profile->model_limiter == std::string("compute");
  profile->model_agrees = measured_compute == model_compute;
}

std::string RenderProfile(const KernelProfile& profile) {
  std::ostringstream out;
  out << "kernel profile: batch makespan "
      << static_cast<int64_t>(profile.makespan) << " cycles, "
      << profile.threadblocks << " tb x " << profile.num_warps
      << " warps resident per SM\n";
  out << "              compute   issue    sync barrier exposed    fill"
         "   store    idle\n";
  auto row = [&](const std::string& label, const CycleBreakdown& c) {
    double denom = profile.makespan > 0.0 ? profile.makespan : 1.0;
    // The total row aggregates every warp row, so it normalizes by
    // warp-count * makespan to stay a fraction of warp time.
    if (label == "total") {
      denom *= std::max<size_t>(profile.warps.size(), 1);
    }
    out << std::left;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%-12s", label.c_str());
    out << buf << "  " << Pct(c.compute / denom) << "  " << Pct(c.issue / denom)
        << "  " << Pct(c.sync_stall / denom) << "  " << Pct(c.barrier / denom)
        << "  " << Pct(c.exposed_copy / denom) << "  " << Pct(c.fill / denom)
        << "  " << Pct(c.store / denom) << "  " << Pct(c.idle / denom) << "\n";
  };
  for (const WarpProfile& warp : profile.warps) {
    row("tb" + std::to_string(warp.tb) + " warp" + std::to_string(warp.warp),
        warp.cycles);
  }
  row("total", profile.total);
  out << "pipes: tensor-core " << Pct(profile.tensor_pipe_utilization)
      << " busy, memory " << Pct(profile.memory_pipe_utilization) << " busy\n";
  out << "pipeline: fill " << Pct(profile.fill_fraction) << " of makespan, "
      << "drain " << Pct(profile.drain_fraction) << "\n";
  out << "verdict: " << profile.verdict;
  if (!profile.model_limiter.empty()) {
    out << "  (bottleneck model: " << profile.model_limiter << "-limited, "
        << (profile.model_agrees ? "agrees" : "disagrees") << ")";
  }
  out << "\n";
  return out.str();
}

std::string ProfileToJson(const KernelProfile& profile,
                          const sim::KernelTiming* timing,
                          const sim::KernelPmu* pmu) {
  std::ostringstream out;
  auto breakdown = [&](const CycleBreakdown& c) {
    std::ostringstream b;
    b << "{\"compute\": " << JsonNum(c.compute)
      << ", \"issue\": " << JsonNum(c.issue)
      << ", \"sync_stall\": " << JsonNum(c.sync_stall)
      << ", \"barrier\": " << JsonNum(c.barrier)
      << ", \"exposed_copy\": " << JsonNum(c.exposed_copy)
      << ", \"fill\": " << JsonNum(c.fill)
      << ", \"store\": " << JsonNum(c.store)
      << ", \"idle\": " << JsonNum(c.idle) << "}";
    return b.str();
  };
  out << "{\n";
  out << "  \"makespan_cycles\": " << JsonNum(profile.makespan) << ",\n";
  out << "  \"threadblocks\": " << profile.threadblocks << ",\n";
  out << "  \"num_warps\": " << profile.num_warps << ",\n";
  if (timing != nullptr) {
    out << "  \"kernel_cycles\": " << JsonNum(timing->cycles) << ",\n";
    out << "  \"kernel_microseconds\": " << JsonNum(timing->microseconds)
        << ",\n";
    out << "  \"kernel_tflops\": " << JsonNum(timing->tflops) << ",\n";
    out << "  \"batches\": " << timing->batches << ",\n";
  }
  out << "  \"tensor_pipe_utilization\": "
      << JsonNum(profile.tensor_pipe_utilization) << ",\n";
  out << "  \"memory_pipe_utilization\": "
      << JsonNum(profile.memory_pipe_utilization) << ",\n";
  out << "  \"fill_fraction\": " << JsonNum(profile.fill_fraction) << ",\n";
  out << "  \"drain_fraction\": " << JsonNum(profile.drain_fraction) << ",\n";
  out << "  \"verdict\": \"" << profile.verdict << "\",\n";
  out << "  \"model_limiter\": \"" << profile.model_limiter << "\",\n";
  out << "  \"model_cycles\": " << JsonNum(profile.model_cycles) << ",\n";
  out << "  \"model_agrees\": " << (profile.model_agrees ? "true" : "false")
      << ",\n";
  if (pmu != nullptr && pmu->collected) {
    out << "  \"pmu\": " << sim::PmuToJson(*pmu) << ",\n";
  }
  // The host-side metrics registry (sim.cache.* residency/eviction/disk
  // gauges, tuner counters) — so one profile --json capture carries the
  // cache-economics story alongside the kernel's.
  std::string metrics = Registry::Global().RenderJson();
  while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
  out << "  \"metrics\": " << metrics << ",\n";
  out << "  \"total\": " << breakdown(profile.total) << ",\n";
  out << "  \"warps\": [\n";
  for (size_t i = 0; i < profile.warps.size(); ++i) {
    const WarpProfile& warp = profile.warps[i];
    out << "    {\"tb\": " << warp.tb << ", \"warp\": " << warp.warp
        << ", \"cycles\": " << breakdown(warp.cycles) << "}";
    out << (i + 1 < profile.warps.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace obs
}  // namespace alcop
