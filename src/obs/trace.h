// Host-side span tracing: the "what was the compiler doing when" pillar
// of the observability layer (see DESIGN.md "Observability").
//
// Design rules:
//   - Tracing is explicitly enabled (SetTraceEnabled). While disabled, an
//     ALCOP_TRACE_SCOPE costs one relaxed atomic load and touches no
//     memory — the warm replay path stays zero-allocation (gated by
//     tests/obs_test.cc).
//   - While enabled, each thread appends finished spans to its own
//     fixed-capacity ring buffer (allocated lazily on the thread's first
//     span); when the ring wraps, the oldest spans are overwritten and
//     counted in DroppedSpans(). No lock is taken on the record path
//     except the ring's own uncontended mutex, so instrumented code never
//     serializes against other threads.
//   - Span names and categories are `const char*` and must point at
//     static storage (string literals): spans never own memory.
//   - Timestamps are steady-clock nanoseconds since the process trace
//     epoch (NowNanos) — the same clock the bench binaries time with, so
//     BENCH_*.json numbers and profiler spans are directly comparable.
#ifndef ALCOP_OBS_TRACE_H_
#define ALCOP_OBS_TRACE_H_

#include <cstdint>
#include <vector>

namespace alcop {
namespace obs {

// Nanoseconds since the process trace epoch (first use), steady clock.
int64_t NowNanos();

// Global tracing switch. Off by default.
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

// One finished host-side span.
struct TraceSpan {
  const char* name = "";      // static string
  const char* category = "";  // static string (Chrome-trace `cat`)
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  uint32_t thread_id = 0;  // dense per-process id (0 = first tracing thread)
  uint16_t depth = 0;      // nesting depth within the recording thread
};

// Snapshot of every recorded span across all threads (including threads
// that have already exited), ordered by (start_ns, thread_id, depth) so
// the result is stable for a given recording.
std::vector<TraceSpan> CollectTraceSpans();

// Drops all recorded spans (every thread's ring and the retired list)
// and zeroes the dropped-span counter. Does not change the enabled flag.
void ClearTrace();

// Spans lost to ring-buffer wrap-around since the last ClearTrace.
uint64_t DroppedSpans();

// Records one span directly (the macro below is the normal entry point).
// A no-op while tracing is disabled.
void RecordSpan(const char* name, const char* category, int64_t start_ns,
                int64_t end_ns);

// RAII span: samples the clock on construction and records on
// destruction. When tracing is disabled at construction time the scope is
// inert (no clock read, no record), so a scope that brackets a hot loop
// costs one predictable branch.
class TraceScope {
 public:
  TraceScope(const char* name, const char* category);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_;
  const char* category_;
  int64_t start_ns_;
  bool armed_;
};

// Wall-clock stopwatch on the trace clock — the bench binaries time with
// this instead of hand-rolled std::chrono so BENCH_*.json numbers and
// profiler spans come from one clock.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(NowNanos()) {}
  void Restart() { start_ns_ = NowNanos(); }
  int64_t ElapsedNanos() const { return NowNanos() - start_ns_; }
  double Seconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace alcop

#define ALCOP_OBS_CONCAT_IMPL(a, b) a##b
#define ALCOP_OBS_CONCAT(a, b) ALCOP_OBS_CONCAT_IMPL(a, b)

// Traces the enclosing scope as `name` under Chrome-trace category
// `category`. Both must be string literals (static storage).
#define ALCOP_TRACE_SCOPE(name, category)                   \
  ::alcop::obs::TraceScope ALCOP_OBS_CONCAT(alcop_trace_,   \
                                            __LINE__)(name, category)

#endif  // ALCOP_OBS_TRACE_H_
