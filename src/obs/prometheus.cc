#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace alcop {
namespace obs {

namespace {

// %.17g round-trips doubles exactly; integral values print without an
// exponent, so counters come out as plain integers.
std::string Num(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string Uint(uint64_t value) { return std::to_string(value); }

const char* TypeName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
    case MetricSnapshot::Kind::kGauge:
    case MetricSnapshot::Kind::kCallback: return "gauge";
  }
  return "untyped";
}

// `{k="v",...}` with escaped values; "" when no labels.
std::string LabelBlock(const std::vector<PromLabel>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += PromMetricName(labels[i].key).substr(6);  // sanitize, drop alcop_
    out += "=\"";
    out += PromEscapeLabelValue(labels[i].value);
    out += "\"";
  }
  out += "}";
  return out;
}

// Same, with an `le` bound appended (histogram bucket series).
std::string BucketLabelBlock(const std::vector<PromLabel>& labels,
                             const std::string& le) {
  std::string out = "{";
  for (const PromLabel& label : labels) {
    out += PromMetricName(label.key).substr(6);
    out += "=\"";
    out += PromEscapeLabelValue(label.value);
    out += "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

struct Series {
  const MetricSnapshot* metric = nullptr;
  std::vector<PromLabel> labels;
};

struct Family {
  MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
  std::string help;
  std::vector<Series> series;
};

}  // namespace

std::string SplitPromLabels(const std::string& name,
                            std::vector<PromLabel>* labels) {
  std::string base;
  size_t pos = 0;
  while (pos <= name.size()) {
    size_t bar = name.find('|', pos);
    if (bar == std::string::npos) bar = name.size();
    std::string segment = name.substr(pos, bar - pos);
    if (pos == 0) {
      base = segment;
    } else {
      size_t eq = segment.find('=');
      if (eq == std::string::npos || eq == 0) {
        // Not key=value: keep the bytes in the family name rather than
        // emitting invalid label syntax.
        base += "_" + segment;
      } else if (labels != nullptr) {
        labels->push_back({segment.substr(0, eq), segment.substr(eq + 1)});
      }
    }
    pos = bar + 1;
  }
  return base;
}

std::string PromMetricName(const std::string& base) {
  std::string out = "alcop_";
  out.reserve(base.size() + out.size());
  for (char c : base) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PromEscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderPrometheus(const std::vector<MetricSnapshot>& snapshot) {
  // Group the (name-sorted) snapshot into families: series that share a
  // base name render under one HELP/TYPE block. std::map keeps family
  // order deterministic; series order inherits the snapshot's name sort.
  std::map<std::string, Family> families;
  for (const MetricSnapshot& metric : snapshot) {
    Series series;
    series.metric = &metric;
    std::string base = SplitPromLabels(metric.name, &series.labels);
    std::string fam_name = PromMetricName(base);
    Family& family = families[fam_name];
    if (family.series.empty()) family.kind = metric.kind;
    // A family mixing metric kinds cannot be rendered under one TYPE;
    // registry naming discipline avoids this, and later-kind entries
    // are dropped rather than corrupting the exposition.
    bool gauge_like = (metric.kind == MetricSnapshot::Kind::kGauge ||
                       metric.kind == MetricSnapshot::Kind::kCallback) &&
                      (family.kind == MetricSnapshot::Kind::kGauge ||
                       family.kind == MetricSnapshot::Kind::kCallback);
    if (metric.kind != family.kind && !gauge_like) continue;
    if (family.help.empty()) family.help = metric.help;
    family.series.push_back(std::move(series));
  }

  std::ostringstream out;
  for (const auto& [fam_name, family] : families) {
    out << "# HELP " << fam_name;
    if (!family.help.empty()) out << " " << PromEscapeHelp(family.help);
    out << "\n";
    out << "# TYPE " << fam_name << " " << TypeName(family.kind) << "\n";
    for (const Series& series : family.series) {
      const MetricSnapshot& metric = *series.metric;
      if (metric.kind != MetricSnapshot::Kind::kHistogram) {
        out << fam_name << LabelBlock(series.labels) << " "
            << Num(metric.value) << "\n";
        continue;
      }
      const HistogramData& h = metric.histogram;
      // Derive the total from the buckets themselves (not h.count) so
      // `+Inf == _count >= every finite bucket` holds even if the
      // snapshot raced a concurrent Observe between the two fields.
      int top = -1;
      uint64_t total = 0;
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        total += h.buckets[i];
        if (h.buckets[i] != 0) top = i;
      }
      uint64_t cumulative = 0;
      for (int i = 0; i <= top; ++i) {
        cumulative += h.buckets[i];
        out << fam_name << "_bucket"
            << BucketLabelBlock(series.labels, Num(std::ldexp(1.0, i))) << " "
            << Uint(cumulative) << "\n";
      }
      out << fam_name << "_bucket" << BucketLabelBlock(series.labels, "+Inf")
          << " " << Uint(total) << "\n";
      out << fam_name << "_sum" << LabelBlock(series.labels) << " "
          << Num(h.sum) << "\n";
      out << fam_name << "_count" << LabelBlock(series.labels) << " "
          << Uint(total) << "\n";
    }
  }
  return out.str();
}

std::string RenderPrometheus() {
  return RenderPrometheus(Registry::Global().Snapshot());
}

}  // namespace obs
}  // namespace alcop
