// Stall attribution — "Nsight for the software GPU". Third pillar of the
// observability layer: turns a replayed batch timeline (sim/timeline.h)
// into a kernel report a perf engineer can act on:
//
//   - per-warp cycle breakdown: compute / copy-issue / sync-stall /
//     barrier / exposed (blocking) copy / fill / store / idle, summing
//     exactly to the batch makespan for every warp (gated in tests);
//   - pipe utilizations (tensor-core and memory pipes, as the fraction
//     of the makespan each pipe's span union covers);
//   - pipeline fill/drain fractions (time before the first and after
//     the last tensor-core op — the warm-up/drain the analytical model
//     smooths over);
//   - a top-bottleneck verdict, cross-checked against the bottleneck
//     analysis of perfmodel/bottleneck.h.
#ifndef ALCOP_OBS_STALL_H_
#define ALCOP_OBS_STALL_H_

#include <string>
#include <vector>

#include "schedule/schedule.h"
#include "sim/launch.h"
#include "sim/timeline.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace obs {

// Cycles a warp spent in each activity over one batch. `idle` is the
// residual against the makespan, so Total() == makespan by construction
// — and idle >= 0 is an invariant (warp spans never overlap).
struct CycleBreakdown {
  double compute = 0.0;        // tensor-core MMA
  double issue = 0.0;          // async-copy issue cycles
  double sync_stall = 0.0;     // consumer_wait / producer_acquire block
  double barrier = 0.0;        // threadblock barrier block
  double exposed_copy = 0.0;   // blocking (synchronous) copy latency
  double fill = 0.0;           // accumulator fill
  double store = 0.0;          // epilogue store
  double idle = 0.0;           // before start / after finish
  double Total() const {
    return compute + issue + sync_stall + barrier + exposed_copy + fill +
           store + idle;
  }
};

struct WarpProfile {
  int tb = 0;
  int warp = 0;
  CycleBreakdown cycles;
};

// The full kernel report for one steady-state threadblock batch.
struct KernelProfile {
  double makespan = 0.0;  // batch makespan in cycles
  int threadblocks = 0;
  int num_warps = 0;  // warps per threadblock

  std::vector<WarpProfile> warps;  // one row per (tb, warp)
  CycleBreakdown total;            // summed over all warp rows

  // Fraction of the makespan each pipe's busy-span union covers.
  double tensor_pipe_utilization = 0.0;
  double memory_pipe_utilization = 0.0;

  // Warm-up / drain: makespan fraction before the first and after the
  // last tensor-core span (0 when the batch never computes).
  double fill_fraction = 0.0;
  double drain_fraction = 0.0;

  // "compute-bound", "memory-bandwidth-bound", "sync-stall-bound" or
  // "exposed-copy-bound" (TVM-DB-style blocking copies dominate).
  std::string verdict;

  // Bottleneck-model cross-check (AttachModelVerdict): the model's
  // limiting term, its predicted cycles, and whether the measured
  // verdict agrees with the model about compute- vs memory-boundedness.
  std::string model_limiter;  // "", "compute", "smem", "dram"
  double model_cycles = 0.0;
  bool model_agrees = false;
};

// Computes the report from a captured batch timeline.
KernelProfile ProfileBatch(const sim::BatchTimeline& batch);

// Cross-checks the measured verdict against perfmodel/bottleneck.h.
void AttachModelVerdict(KernelProfile* profile, const schedule::GemmOp& op,
                        const schedule::ScheduleConfig& config,
                        const target::GpuSpec& spec);

// Human-readable table (the `alcop_cli profile` default output).
std::string RenderProfile(const KernelProfile& profile);

// Machine-readable report; includes the kernel timing and the PMU
// counter block (sim/pmu.h) when provided — one profile invocation then
// carries trace, stalls and counters without re-simulating.
std::string ProfileToJson(const KernelProfile& profile,
                          const sim::KernelTiming* timing = nullptr,
                          const sim::KernelPmu* pmu = nullptr);

}  // namespace obs
}  // namespace alcop

#endif  // ALCOP_OBS_STALL_H_
