#include "obs/flight.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace alcop {
namespace obs {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string NumberToJson(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string RequestRecordJson(const RequestRecord& rec) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"id\":" << rec.id << ",\"client\":\"" << JsonEscape(rec.client)
      << "\",\"method\":\"" << JsonEscape(rec.method) << "\",\"op_key\":\""
      << JsonEscape(rec.op_key) << "\",\"lane\":\"" << JsonEscape(rec.lane)
      << "\",\"outcome\":\"" << JsonEscape(rec.outcome)
      << "\",\"transport\":\"" << JsonEscape(rec.transport)
      << "\",\"batch\":" << rec.batch << ",\"arrival_ns\":" << rec.arrival_ns
      << ",\"queue_us\":" << rec.queue_us
      << ",\"service_us\":" << rec.service_us
      << ",\"total_us\":" << rec.total_us << "}";
  return out.str();
}

FlightRecorder::FlightRecorder(size_t depth) : depth_(depth) {}

void FlightRecorder::Record(const RequestRecord& rec) {
  if (depth_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(rec);
  while (ring_.size() > depth_) ring_.pop_front();
  ++total_;
}

std::vector<RequestRecord> FlightRecorder::Snapshot(
    size_t n, const Filter& filter) const {
  std::vector<RequestRecord> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < n; ++it) {
    if (!filter.client.empty() && it->client != filter.client) continue;
    if (!filter.lane.empty() && it->lane != filter.lane) continue;
    if (!filter.outcome.empty() && it->outcome != filter.outcome) continue;
    out.push_back(*it);
  }
  return out;
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_ = 0;
}

std::vector<std::pair<std::string, double>> FlattenSnapshot(
    const std::vector<MetricSnapshot>& snapshot) {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(snapshot.size());
  for (const MetricSnapshot& metric : snapshot) {
    if (metric.kind == MetricSnapshot::Kind::kHistogram) {
      out.emplace_back(metric.name + ".count",
                       static_cast<double>(metric.histogram.count));
      out.emplace_back(metric.name + ".sum", metric.histogram.sum);
    } else {
      out.emplace_back(metric.name, metric.value);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

MetricsTimeSeries::MetricsTimeSeries(size_t depth) : depth_(depth) {}

void MetricsTimeSeries::Sample(int64_t t_ns,
                               const std::vector<MetricSnapshot>& snapshot) {
  if (depth_ == 0) return;
  Sample_ sample;
  sample.t_ns = t_ns;
  sample.values = FlattenSnapshot(snapshot);
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(sample));
  while (ring_.size() > depth_) ring_.pop_front();
}

std::vector<std::string> MetricsTimeSeries::Names() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return out;
  out.reserve(ring_.back().values.size());
  for (const auto& [name, value] : ring_.back().values) {
    (void)value;
    out.push_back(name);
  }
  return out;
}

std::vector<MetricsTimeSeries::Point> MetricsTimeSeries::Series(
    const std::string& metric) const {
  std::vector<Point> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Sample_& sample : ring_) {
    auto it = std::lower_bound(
        sample.values.begin(), sample.values.end(), metric,
        [](const std::pair<std::string, double>& entry,
           const std::string& key) { return entry.first < key; });
    if (it != sample.values.end() && it->first == metric) {
      out.push_back(Point{sample.t_ns, it->second});
    }
  }
  return out;
}

size_t MetricsTimeSeries::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void MetricsTimeSeries::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

}  // namespace obs
}  // namespace alcop
