// Leveled structured logging: the daemon-facing "what happened and when"
// pillar of the observability layer (DESIGN.md "Flight recorder and debug
// surface"). Every line is one JSONL object
//
//   {"ts_ns":123,"level":"info","component":"serving","msg":"started",...}
//
// rendered at Write() time and kept in a fixed-depth in-memory ring so a
// live daemon can answer `GET /debug/log?n=K` without any file access.
// Sinks are optional: an append-only file (OpenFile) and a stderr echo
// (the CLI turns the echo on so `alcopd` keeps its familiar terminal
// chatter; library/test use leaves it off).
//
// Levels follow the usual ladder (debug < info < warn < error < off); the
// threshold initializes from ALCOP_LOG_LEVEL on first use and can be
// changed at runtime. A suppressed Write costs one relaxed atomic load.
//
// Extra fields ride along as a pre-rendered JSON fragment built with
// LogFields:
//
//   Log(LogLevel::kWarn, "serving", "slow lane stalled",
//       LogFields().Num("age_us", age).Int("depth", depth));
#ifndef ALCOP_OBS_LOG_H_
#define ALCOP_OBS_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace alcop {
namespace obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// "debug"/"info"/"warn"/"error"/"off" (case-insensitive; also accepts
// "warning"). Anything else returns `fallback`.
LogLevel ParseLogLevel(const std::string& text, LogLevel fallback);
const char* LogLevelName(LogLevel level);

// Fluent builder for the extra-field fragment of a log line. Each call
// appends `,"key":value`; Json() returns the accumulated fragment ready
// to splice before the closing brace.
class LogFields {
 public:
  LogFields& Str(const std::string& key, const std::string& value);
  LogFields& Num(const std::string& key, double value);
  LogFields& Int(const std::string& key, int64_t value);
  LogFields& Uint(const std::string& key, uint64_t value);
  LogFields& Bool(const std::string& key, bool value);
  // Splices `json` (an already-valid JSON value) verbatim.
  LogFields& Raw(const std::string& key, const std::string& json);
  const std::string& Json() const { return fragment_; }

 private:
  std::string fragment_;
};

// Process-wide structured logger. All methods are thread-safe.
class StructuredLog {
 public:
  // The process-wide logger (leaked, outlives all threads). Level starts
  // from ALCOP_LOG_LEVEL (default info) on first access.
  static StructuredLog& Global();

  LogLevel level() const;
  void SetLevel(LogLevel level);

  // Resizes the in-memory ring (drops retained lines). Depth 0 disables
  // retention; Write still hits the sinks.
  void SetRingDepth(size_t depth);

  // Mirrors every emitted line to stderr (off by default).
  void SetStderrEcho(bool enabled);

  // Opens (appends to) a JSONL file sink; returns false and leaves the
  // previous sink untouched on failure. CloseFile flushes and detaches.
  bool OpenFile(const std::string& path);
  void CloseFile();

  // Emits one line if `level` clears the threshold. `fields` is a
  // LogFields fragment (or "" for none); `component` and `message` are
  // escaped, the fragment is spliced verbatim.
  void Write(LogLevel level, const std::string& component,
             const std::string& message, const std::string& fields = "");

  // Up to `n` most recent retained lines, oldest first.
  std::vector<std::string> Recent(size_t n) const;

  uint64_t total_lines() const;    // lines emitted past the threshold
  uint64_t dropped_lines() const;  // retained lines lost to ring wrap

  // Drops retained lines and zeroes the counters (tests only).
  void Clear();

 private:
  StructuredLog() = default;
  struct Impl;
  Impl& impl() const;
};

// Convenience wrapper over StructuredLog::Global().Write().
void Log(LogLevel level, const std::string& component,
         const std::string& message, const LogFields& fields = LogFields());

}  // namespace obs
}  // namespace alcop

#endif  // ALCOP_OBS_LOG_H_
