#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>

namespace alcop {
namespace obs {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string NumberToJson(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

char Lower(char c) { return c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c; }

std::string LowerCopy(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = Lower(c);
  return out;
}

}  // namespace

LogLevel ParseLogLevel(const std::string& text, LogLevel fallback) {
  std::string lower = LowerCopy(text);
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

LogFields& LogFields::Str(const std::string& key, const std::string& value) {
  fragment_ += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  return *this;
}

LogFields& LogFields::Num(const std::string& key, double value) {
  fragment_ += ",\"" + JsonEscape(key) + "\":" + NumberToJson(value);
  return *this;
}

LogFields& LogFields::Int(const std::string& key, int64_t value) {
  fragment_ += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
  return *this;
}

LogFields& LogFields::Uint(const std::string& key, uint64_t value) {
  fragment_ += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
  return *this;
}

LogFields& LogFields::Bool(const std::string& key, bool value) {
  fragment_ += ",\"" + JsonEscape(key) + "\":" + (value ? "true" : "false");
  return *this;
}

LogFields& LogFields::Raw(const std::string& key, const std::string& json) {
  fragment_ += ",\"" + JsonEscape(key) + "\":" + json;
  return *this;
}

struct StructuredLog::Impl {
  std::atomic<int> level{static_cast<int>(LogLevel::kInfo)};
  std::atomic<uint64_t> total{0};
  std::atomic<uint64_t> dropped{0};

  mutable std::mutex mu;
  size_t ring_depth = 1024;
  std::deque<std::string> ring;  // oldest at front
  std::FILE* file = nullptr;
  bool stderr_echo = false;
};

StructuredLog& StructuredLog::Global() {
  static StructuredLog* global = [] {
    auto* log = new StructuredLog();
    const char* env = std::getenv("ALCOP_LOG_LEVEL");
    if (env != nullptr) {
      log->SetLevel(ParseLogLevel(env, LogLevel::kInfo));
    }
    return log;
  }();
  return *global;
}

StructuredLog::Impl& StructuredLog::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

LogLevel StructuredLog::level() const {
  return static_cast<LogLevel>(impl().level.load(std::memory_order_relaxed));
}

void StructuredLog::SetLevel(LogLevel level) {
  impl().level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void StructuredLog::SetRingDepth(size_t depth) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.ring_depth = depth;
  i.ring.clear();
}

void StructuredLog::SetStderrEcho(bool enabled) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.stderr_echo = enabled;
}

bool StructuredLog::OpenFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) return false;
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  if (i.file != nullptr) std::fclose(i.file);
  i.file = file;
  return true;
}

void StructuredLog::CloseFile() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  if (i.file != nullptr) {
    std::fclose(i.file);
    i.file = nullptr;
  }
}

void StructuredLog::Write(LogLevel level, const std::string& component,
                          const std::string& message,
                          const std::string& fields) {
  Impl& i = impl();
  if (static_cast<int>(level) < i.level.load(std::memory_order_relaxed)) {
    return;
  }
  if (level == LogLevel::kOff) return;
  // Wall-clock, not the trace epoch: log lines must be meaningful next
  // to other machines' logs and across daemon restarts.
  int64_t ts_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  std::ostringstream line;
  line << "{\"ts_ns\":" << ts_ns << ",\"level\":\"" << LogLevelName(level)
       << "\",\"component\":\"" << JsonEscape(component) << "\",\"msg\":\""
       << JsonEscape(message) << "\"" << fields << "}";
  std::string rendered = line.str();
  i.total.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(i.mu);
  if (i.ring_depth > 0) {
    i.ring.push_back(rendered);
    while (i.ring.size() > i.ring_depth) {
      i.ring.pop_front();
      i.dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (i.file != nullptr) {
    std::fprintf(i.file, "%s\n", rendered.c_str());
    std::fflush(i.file);
  }
  if (i.stderr_echo) {
    std::fprintf(stderr, "%s\n", rendered.c_str());
  }
}

std::vector<std::string> StructuredLog::Recent(size_t n) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  size_t count = i.ring.size() < n ? i.ring.size() : n;
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t k = i.ring.size() - count; k < i.ring.size(); ++k) {
    out.push_back(i.ring[k]);
  }
  return out;
}

uint64_t StructuredLog::total_lines() const {
  return impl().total.load(std::memory_order_relaxed);
}

uint64_t StructuredLog::dropped_lines() const {
  return impl().dropped.load(std::memory_order_relaxed);
}

void StructuredLog::Clear() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.ring.clear();
  i.total.store(0, std::memory_order_relaxed);
  i.dropped.store(0, std::memory_order_relaxed);
}

void Log(LogLevel level, const std::string& component,
         const std::string& message, const LogFields& fields) {
  StructuredLog::Global().Write(level, component, message, fields.Json());
}

}  // namespace obs
}  // namespace alcop
