// Prometheus text exposition (version 0.0.4) of the metrics registry:
// what `GET /metrics` on the alcopd HTTP front end serves.
//
// Mapping from registry names to the exposition:
//   - Every metric family is prefixed `alcop_` and the registry's
//     dotted names are sanitized to the Prometheus charset
//     ("serving.requests" -> "alcop_serving_requests").
//   - A registered name may carry `|key=value` label suffixes
//     ("serving.request.latency.us|lane=fast"); the renderer splits
//     them off, so the two lane series share one `# HELP`/`# TYPE`
//     family block and differ only in `{lane="..."}`.
//   - Counters/gauges/callbacks render as single samples; histograms
//     render the cumulative `_bucket{le="..."}` series over the
//     registry's power-of-two buckets (upper bound of bucket i is 2^i)
//     up to the highest populated bucket, then `le="+Inf"` (== the
//     `_count` sample) and `_sum`.
//   - Output is byte-deterministic for a given snapshot: families in
//     name order, series within a family in registered-name order,
//     fixed number formatting.
#ifndef ALCOP_OBS_PROMETHEUS_H_
#define ALCOP_OBS_PROMETHEUS_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace alcop {
namespace obs {

// One `key=value` pair split off a registered metric name.
struct PromLabel {
  std::string key;
  std::string value;
};

// Splits `name` at `|` separators into the base name (returned) and its
// labels. A suffix segment without `=` is folded back into the base
// name, so malformed names still render (as part of the family name)
// instead of producing invalid label syntax.
std::string SplitPromLabels(const std::string& name,
                            std::vector<PromLabel>* labels);

// `alcop_` + `base` with every character outside
// [a-zA-Z0-9_:] replaced by '_': a valid Prometheus metric name.
std::string PromMetricName(const std::string& base);

// Label-value escaping per the exposition format: backslash, double
// quote and newline become \\ , \" and \n.
std::string PromEscapeLabelValue(const std::string& value);

// HELP-text escaping: backslash and newline.
std::string PromEscapeHelp(const std::string& help);

// Renders one snapshot (see Registry::Snapshot) as text exposition.
std::string RenderPrometheus(const std::vector<MetricSnapshot>& snapshot);

// Convenience: snapshot + render of the global registry.
std::string RenderPrometheus();

}  // namespace obs
}  // namespace alcop

#endif  // ALCOP_OBS_PROMETHEUS_H_
