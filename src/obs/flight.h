// Flight recorder: fixed-budget retained history for the serving daemon
// (DESIGN.md "Flight recorder and debug surface"). Two rings:
//
//   - FlightRecorder keeps the last N *completed* request records — full
//     lifecycle stamps, client, lane, outcome — so "what were the last
//     requests before the tail spike" is answerable from a live process
//     (`GET /debug/requests`).
//   - MetricsTimeSeries keeps periodic flattened registry snapshots so
//     "what changed in the last 60 s" is answerable without an external
//     scraper (`GET /debug/timeseries`).
//
// Both are mutex-guarded deques sized at construction; memory is bounded
// by depth, never by traffic. Recording one request is a small copy under
// an uncontended lock — far off the hot path relative to the request's
// own queue/service time.
#ifndef ALCOP_OBS_FLIGHT_H_
#define ALCOP_OBS_FLIGHT_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace alcop {
namespace obs {

// One completed request, as retained by the flight recorder and printed
// by /debug/requests. Field names mirror the access-log JSONL schema so
// the two can be diffed line-for-line (gated by tests/flight_test.cc).
struct RequestRecord {
  uint64_t id = 0;
  std::string client;     // attributed identity ("anon" when unknown)
  std::string method;     // wire method ("compile", "tune", ...)
  std::string op_key;     // workload key when the request names one
  std::string lane;       // "fast" | "slow"
  std::string outcome;    // "ok" | "error"
  std::string transport;  // "unix" | "http"
  uint64_t batch = 0;     // slow-lane drain round (0 on the fast lane)
  int64_t arrival_ns = 0;
  // Microsecond timings as doubles so a flight record and the matching
  // access-log line render bit-identically (both print at precision 17).
  double queue_us = 0.0;
  double service_us = 0.0;
  double total_us = 0.0;
};

// `rec` as one JSON object (no trailing newline).
std::string RequestRecordJson(const RequestRecord& rec);

// Ring of the last `depth` completed requests. Thread-safe.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t depth);

  void Record(const RequestRecord& rec);

  // Empty filter fields match everything.
  struct Filter {
    std::string client;
    std::string lane;
    std::string outcome;
  };

  // Up to `n` matching records, most recent first.
  std::vector<RequestRecord> Snapshot(size_t n, const Filter& filter = {}) const;

  uint64_t total_recorded() const;
  size_t depth() const { return depth_; }
  void Clear();

 private:
  const size_t depth_;
  mutable std::mutex mu_;
  std::deque<RequestRecord> ring_;  // oldest at front
  uint64_t total_ = 0;
};

// One registry snapshot flattened to (name, value) pairs: counters,
// gauges and callbacks keep their value; histograms expand to
// `<name>.count` and `<name>.sum` so rates and means are derivable from
// two adjacent samples.
std::vector<std::pair<std::string, double>> FlattenSnapshot(
    const std::vector<MetricSnapshot>& snapshot);

// Ring of periodic flattened registry snapshots. Thread-safe.
class MetricsTimeSeries {
 public:
  explicit MetricsTimeSeries(size_t depth);

  void Sample(int64_t t_ns, const std::vector<MetricSnapshot>& snapshot);

  // Flattened metric names seen in the most recent sample, sorted.
  std::vector<std::string> Names() const;

  struct Point {
    int64_t t_ns = 0;
    double value = 0.0;
  };

  // All retained points for `metric`, oldest first (samples where the
  // metric did not exist yet are skipped).
  std::vector<Point> Series(const std::string& metric) const;

  size_t samples() const;
  size_t depth() const { return depth_; }
  void Clear();

 private:
  struct Sample_ {
    int64_t t_ns = 0;
    std::vector<std::pair<std::string, double>> values;  // sorted by name
  };

  const size_t depth_;
  mutable std::mutex mu_;
  std::deque<Sample_> ring_;  // oldest at front
};

}  // namespace obs
}  // namespace alcop

#endif  // ALCOP_OBS_FLIGHT_H_
