#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "support/check.h"

namespace alcop {
namespace obs {

namespace {

// Lock-free max/add for atomic<double> via CAS (fetch_add on
// atomic<double> is C++20 but not universally lowered well; CAS is
// portable and the loop is 1 iteration when uncontended).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (current < value && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

int BucketOf(double value) {
  if (!(value >= 1.0)) return 0;  // [0,1) and any non-finite/negative junk
  int exp = std::ilogb(value) + 1;
  return exp >= Histogram::kBuckets ? Histogram::kBuckets - 1 : exp;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// %.17g prints doubles round-trip exactly and deterministically for a
// given bit pattern; integers come out without an exponent.
std::string NumberToJson(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

static_assert(sizeof(HistogramData{}.buckets) / sizeof(uint64_t) ==
                  Histogram::kBuckets,
              "HistogramData bucket array must match Histogram::kBuckets");

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

void Histogram::Observe(double value) {
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMax(&max_, value);
}

HistogramData Histogram::Data() const {
  HistogramData data;
  for (int i = 0; i < kBuckets; ++i) {
    data.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  data.max = max_.load(std::memory_order_relaxed);
  return data;
}

namespace {

// Bucket i covers [lower, upper); the topmost populated bucket only
// reaches the observed max, not its nominal power-of-two edge (and a
// sub-max observed max never pushes `upper` below `lower`, so the
// interpolated value stays inside the bucket bounds).
void BucketEdges(const HistogramData& data, int i, bool topmost,
                 double* lower, double* upper) {
  *lower = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
  *upper = std::ldexp(1.0, i);
  if (topmost && *upper > data.max) {
    *upper = data.max < *lower ? *lower : data.max;
  }
}

}  // namespace

double HistogramQuantile(const HistogramData& data, double q) {
  if (data.count == 0 || std::isnan(q)) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int first = -1;
  int last = -1;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (data.buckets[i] == 0) continue;
    if (first < 0) first = i;
    last = i;
  }
  // count > 0 with no populated bucket can only be a racing snapshot;
  // answer 0 rather than inventing a value.
  if (first < 0) return 0.0;
  double lower = 0.0;
  double upper = 0.0;
  if (q == 0.0) {  // minimum: lower edge of the first populated bucket
    BucketEdges(data, first, first == last, &lower, &upper);
    return lower;
  }
  if (q == 1.0) {  // maximum: upper edge of the last populated bucket
    BucketEdges(data, last, true, &lower, &upper);
    return upper;
  }
  double rank = q * static_cast<double>(data.count);
  uint64_t cumulative = 0;
  for (int i = first; i <= last; ++i) {
    uint64_t in_bucket = data.buckets[i];
    if (in_bucket == 0) continue;
    double below = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    BucketEdges(data, i, i == last, &lower, &upper);
    double fraction = (rank - below) / static_cast<double>(in_bucket);
    double value = lower + fraction * (upper - lower);
    if (value < lower) value = lower;
    if (value > upper) value = upper;
    return value;
  }
  BucketEdges(data, last, true, &lower, &upper);
  return upper;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: dumps iterate in name order without re-sorting, and node
  // stability guarantees returned references stay valid forever.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, std::function<double()>> callbacks;
  // # HELP-style descriptions, keyed by metric name. First non-empty
  // registration wins; metrics registered without help are absent.
  std::map<std::string, std::string> help;

  void SetHelp(const std::string& name, const std::string& text) {
    if (!text.empty() && help.count(name) == 0) help[name] = text;
  }

  std::string HelpFor(const std::string& name) const {
    auto it = help.find(name);
    return it == help.end() ? std::string() : it->second;
  }

  void CheckUnique(const std::string& name, const char* kind) const {
    int owners = (counters.count(name) ? 1 : 0) + (gauges.count(name) ? 1 : 0) +
                 (histograms.count(name) ? 1 : 0) +
                 (callbacks.count(name) ? 1 : 0);
    ALCOP_CHECK_EQ(owners, 0)
        << "metric '" << name << "' already registered with another kind "
        << "(requested " << kind << ")";
  }
};

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();  // leaked: outlives all threads
  return *impl;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name,
                              const std::string& help) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.counters.find(name);
  if (it == state.counters.end()) {
    state.CheckUnique(name, "counter");
    it = state.counters.emplace(name, std::make_unique<Counter>()).first;
  }
  state.SetHelp(name, help);
  return *it->second;
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& help) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.gauges.find(name);
  if (it == state.gauges.end()) {
    state.CheckUnique(name, "gauge");
    it = state.gauges.emplace(name, std::make_unique<Gauge>()).first;
  }
  state.SetHelp(name, help);
  return *it->second;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::string& help) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.histograms.find(name);
  if (it == state.histograms.end()) {
    state.CheckUnique(name, "histogram");
    it = state.histograms.emplace(name, std::make_unique<Histogram>()).first;
  }
  state.SetHelp(name, help);
  return *it->second;
}

void Registry::RegisterCallback(const std::string& name,
                                std::function<double()> fn,
                                const std::string& help) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.callbacks.count(name) == 0) state.CheckUnique(name, "callback");
  state.callbacks[name] = std::move(fn);
  state.SetHelp(name, help);
}

std::string Registry::RenderText() const {
  Impl& state = impl();
  // Callback snapshots are taken outside the registry lock: callbacks may
  // lock subsystem state (e.g. all sim-cache shards) and must not nest
  // under the registry mutex.
  std::map<std::string, double> callback_values;
  {
    std::map<std::string, std::function<double()>> callbacks;
    {
      std::lock_guard<std::mutex> lock(state.mu);
      callbacks = state.callbacks;
    }
    for (const auto& [name, fn] : callbacks) callback_values[name] = fn();
  }
  std::lock_guard<std::mutex> lock(state.mu);
  std::ostringstream out;
  // Registered help renders as a `# name: help` comment line above the
  // value, so the text dump is self-describing like the Prometheus
  // exposition.
  auto describe = [&](const std::string& name) {
    std::string help = state.HelpFor(name);
    if (!help.empty()) out << "# " << name << ": " << help << "\n";
  };
  for (const auto& [name, counter] : state.counters) {
    describe(name);
    out << name << " = " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : state.gauges) {
    describe(name);
    out << name << " = " << NumberToJson(gauge->Value()) << "\n";
  }
  for (const auto& [name, value] : callback_values) {
    describe(name);
    out << name << " = " << NumberToJson(value) << "\n";
  }
  for (const auto& [name, hist] : state.histograms) {
    describe(name);
    out << name << " = {count: " << hist->Count()
        << ", mean: " << NumberToJson(hist->Mean())
        << ", max: " << NumberToJson(hist->Max()) << "}\n";
  }
  return out.str();
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  Impl& state = impl();
  // Callbacks run outside the registry lock (they may lock subsystem
  // state), exactly like the dump renderers.
  std::map<std::string, double> callback_values;
  {
    std::map<std::string, std::function<double()>> callbacks;
    {
      std::lock_guard<std::mutex> lock(state.mu);
      callbacks = state.callbacks;
    }
    for (const auto& [name, fn] : callbacks) callback_values[name] = fn();
  }
  std::vector<MetricSnapshot> out;
  std::lock_guard<std::mutex> lock(state.mu);
  out.reserve(state.counters.size() + state.gauges.size() +
              callback_values.size() + state.histograms.size());
  auto push = [&](MetricSnapshot::Kind kind, const std::string& name) {
    MetricSnapshot snap;
    snap.kind = kind;
    snap.name = name;
    snap.help = state.HelpFor(name);
    out.push_back(std::move(snap));
    return &out.back();
  };
  for (const auto& [name, counter] : state.counters) {
    push(MetricSnapshot::Kind::kCounter, name)->value =
        static_cast<double>(counter->Value());
  }
  for (const auto& [name, gauge] : state.gauges) {
    push(MetricSnapshot::Kind::kGauge, name)->value = gauge->Value();
  }
  for (const auto& [name, value] : callback_values) {
    push(MetricSnapshot::Kind::kCallback, name)->value = value;
  }
  for (const auto& [name, hist] : state.histograms) {
    push(MetricSnapshot::Kind::kHistogram, name)->histogram = hist->Data();
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Registry::RenderJson() const {
  Impl& state = impl();
  std::map<std::string, double> callback_values;
  {
    std::map<std::string, std::function<double()>> callbacks;
    {
      std::lock_guard<std::mutex> lock(state.mu);
      callbacks = state.callbacks;
    }
    for (const auto& [name, fn] : callbacks) callback_values[name] = fn();
  }
  std::lock_guard<std::mutex> lock(state.mu);
  std::ostringstream out;
  out << "{\n";
  bool first = true;
  auto emit = [&](const std::string& name, const std::string& value) {
    if (!first) out << ",\n";
    first = false;
    out << "  \"" << JsonEscape(name) << "\": " << value;
  };
  for (const auto& [name, counter] : state.counters) {
    emit(name, std::to_string(counter->Value()));
  }
  for (const auto& [name, gauge] : state.gauges) {
    emit(name, NumberToJson(gauge->Value()));
  }
  for (const auto& [name, value] : callback_values) {
    emit(name, NumberToJson(value));
  }
  for (const auto& [name, hist] : state.histograms) {
    std::ostringstream value;
    value << "{\"count\": " << hist->Count()
          << ", \"sum\": " << NumberToJson(hist->Sum())
          << ", \"mean\": " << NumberToJson(hist->Mean())
          << ", \"max\": " << NumberToJson(hist->Max()) << "}";
    emit(name, value.str());
  }
  out << "\n}\n";
  return out.str();
}

void Registry::ResetAll() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& [name, counter] : state.counters) counter->Reset();
  for (auto& [name, gauge] : state.gauges) gauge->Set(0.0);
  for (auto& [name, hist] : state.histograms) hist->Reset();
}

}  // namespace obs
}  // namespace alcop
