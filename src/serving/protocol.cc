#include "serving/protocol.h"

#include <errno.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstring>

namespace alcop {
namespace serving {

namespace {

bool ReadExact(int fd, char* out, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd, out + done, size - done);
    if (n == 0) return false;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool WriteExact(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool ReadFrame(int fd, std::string* payload) {
  uint32_t len = 0;
  if (!ReadExact(fd, reinterpret_cast<char*>(&len), sizeof(len))) return false;
  if (len > kMaxFrameBytes) return false;
  payload->resize(len);
  return len == 0 || ReadExact(fd, payload->data(), len);
}

bool WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  uint32_t len = static_cast<uint32_t>(payload.size());
  if (!WriteExact(fd, reinterpret_cast<const char*>(&len), sizeof(len))) {
    return false;
  }
  return WriteExact(fd, payload.data(), payload.size());
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(double fallback) const {
  return kind == Kind::kNumber ? number : fallback;
}

bool JsonValue::BoolOr(bool fallback) const {
  return kind == Kind::kBool ? boolean : fallback;
}

const std::string& JsonValue::StringOr(const std::string& fallback) const {
  return kind == Kind::kString ? string : fallback;
}

namespace {

// Recursive-descent parser over the protocol's JSON subset. Depth is
// bounded so a hostile payload cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!Value(out, 0)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 32;

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          default: return false;  // \uXXXX not needed by the protocol
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return false;
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object(out, depth);
    if (c == '[') return Array(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    return Number(out);
  }

  bool Number(JsonValue* out) {
    size_t consumed = 0;
    try {
      out->number = std::stod(text_.substr(pos_), &consumed);
    } catch (...) {
      return false;
    }
    if (consumed == 0) return false;
    out->kind = JsonValue::Kind::kNumber;
    pos_ += consumed;
    return true;
  }

  bool Object(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!String(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!Value(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!Value(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(const std::string& text) {
  JsonValue value;
  JsonParser parser(text);
  if (!parser.Parse(&value)) return std::nullopt;
  return value;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace serving
}  // namespace alcop
