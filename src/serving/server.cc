#include "serving/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "serving/http.h"
#include "serving/persist.h"
#include "serving/protocol.h"
#include "sim/pmu.h"
#include "sim/sim_cache.h"
#include "tuner/records.h"
#include "tuner/strategy.h"
#include "tuner/transfer.h"

namespace alcop {
namespace serving {

namespace {

// One client connection — either a unix-socket peer speaking
// length-prefixed frames or an HTTP/1.1 peer. Responses may be written
// by either lane, so writes are serialized per connection; frame order
// between different requests is unconstrained for the socket transport
// (clients match by id), while HTTP admits strictly one dispatched
// request at a time so responses stay in request order.
struct Conn {
  int fd = -1;
  bool http = false;
  int rescan_fd = -1;  // pokes the IO thread after an HTTP response
  std::string client = "anon";  // peer identity (unix: "uid:<uid>")
  std::mutex write_mu;

  // HTTP state. in_buffer/close_after_response/dead are IO-thread-only;
  // inflight is the cross-thread gate: set before Dispatch on the IO
  // thread, cleared by whichever lane thread sends the response.
  std::string in_buffer;
  std::atomic<bool> inflight{false};
  bool close_after_response = false;
  bool dead = false;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  // Dispatched-response path (both transports). A dead peer just drops
  // the response.
  void Send(const std::string& payload) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (!http) {
      WriteFrame(fd, payload);
      return;
    }
    HttpWriteAll(fd, FormatHttpResponse(200, "application/json", payload + "\n",
                                        {}, !close_after_response));
    inflight.store(false, std::memory_order_release);
    if (rescan_fd >= 0) {
      char byte = 'r';
      ssize_t ignored = ::write(rescan_fd, &byte, 1);
      (void)ignored;
    }
  }

  // Transport-level HTTP responses (scrapes, 4xx), IO thread only.
  void SendRaw(const std::string& bytes) {
    std::lock_guard<std::mutex> lock(write_mu);
    HttpWriteAll(fd, bytes);
  }
};

struct Request {
  std::shared_ptr<Conn> conn;
  JsonValue body;
  int64_t id = 0;  // client-chosen correlation id from the payload
  std::string method;

  // Per-request observability, filled in by Dispatch / the lanes.
  uint64_t req_id = 0;     // daemon-assigned monotonic id
  int64_t arrival_ns = 0;  // Dispatch time (trace clock)
  int64_t dequeue_ns = 0;  // lane pickup time
  uint64_t batch = 0;      // slow-lane drain round (0 on the fast lane)
  const char* lane = "fast";
  const char* outcome = "ok";  // cache outcome for the access log
  const char* transport = "unix";
  std::string client = "anon";  // attributed identity (see ServerOptions)
  std::string op_key;
};

std::string ErrorResponse(int64_t id, const std::string& message) {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"ok\":false,\"error\":\""
      << JsonEscape(message) << "\"}";
  return out.str();
}

bool FamilyFromName(const std::string& name, schedule::OpFamily* family) {
  for (schedule::OpFamily f :
       {schedule::OpFamily::kMatmul, schedule::OpFamily::kBatchMatmul,
        schedule::OpFamily::kConv1x1, schedule::OpFamily::kConv3x3}) {
    if (name == schedule::OpFamilyName(f)) {
      *family = f;
      return true;
    }
  }
  return false;
}

// {"family":"matmul","batch":1,"m":...,"n":...,"k":...} from the request
// root (fields at top level, matching the CLI's workload flags).
bool ParseOpJson(const JsonValue& root, schedule::GemmOp* op,
                 std::string* err) {
  const JsonValue* family = root.Find("family");
  std::string family_name = family == nullptr ? "matmul" : family->StringOr("");
  if (!FamilyFromName(family_name, &op->family)) {
    *err = "unknown family \"" + family_name + "\"";
    return false;
  }
  const JsonValue* m = root.Find("m");
  const JsonValue* n = root.Find("n");
  const JsonValue* k = root.Find("k");
  if (m == nullptr || n == nullptr || k == nullptr) {
    *err = "op needs m, n, k";
    return false;
  }
  op->m = static_cast<int64_t>(m->NumberOr(0));
  op->n = static_cast<int64_t>(n->NumberOr(0));
  op->k = static_cast<int64_t>(k->NumberOr(0));
  const JsonValue* batch = root.Find("batch");
  op->batch = batch == nullptr ? 1 : static_cast<int64_t>(batch->NumberOr(1));
  if (op->m <= 0 || op->n <= 0 || op->k <= 0 || op->batch <= 0) {
    *err = "op sizes must be positive";
    return false;
  }
  std::ostringstream name;
  name << schedule::OpFamilyName(op->family) << "_" << op->m << "x" << op->n
       << "x" << op->k;
  op->name = name.str();
  return true;
}

// {"tb":[m,n,k],"warp":[m,n,k],"smem":..,"reg":..,...}; only "tb" is
// required, everything else keeps the ScheduleConfig default.
bool ParseConfigJson(const JsonValue& config, schedule::ScheduleConfig* out,
                     std::string* err) {
  auto triple = [&](const char* key, int64_t* a, int64_t* b, int64_t* c,
                    bool required) {
    const JsonValue* v = config.Find(key);
    if (v == nullptr) return !required;
    if (v->kind != JsonValue::Kind::kArray || v->array.size() != 3) {
      return false;
    }
    *a = static_cast<int64_t>(v->array[0].NumberOr(0));
    *b = static_cast<int64_t>(v->array[1].NumberOr(0));
    *c = static_cast<int64_t>(v->array[2].NumberOr(0));
    return *a > 0 && *b > 0 && *c > 0;
  };
  if (!triple("tb", &out->tile.tb_m, &out->tile.tb_n, &out->tile.tb_k,
              /*required=*/true)) {
    *err = "config needs \"tb\":[m,n,k]";
    return false;
  }
  // Default warp tile: one warp owning the whole threadblock tile is
  // rarely valid, so default to the tb tile split 2x2 when divisible.
  out->tile.warp_m = out->tile.tb_m % 2 == 0 ? out->tile.tb_m / 2 : out->tile.tb_m;
  out->tile.warp_n = out->tile.tb_n % 2 == 0 ? out->tile.tb_n / 2 : out->tile.tb_n;
  out->tile.warp_k = out->tile.tb_k;
  if (!triple("warp", &out->tile.warp_m, &out->tile.warp_n, &out->tile.warp_k,
              /*required=*/false)) {
    *err = "\"warp\" must be [m,n,k]";
    return false;
  }
  if (const JsonValue* v = config.Find("smem")) {
    out->smem_stages = static_cast<int>(v->NumberOr(out->smem_stages));
  }
  if (const JsonValue* v = config.Find("reg")) {
    out->reg_stages = static_cast<int>(v->NumberOr(out->reg_stages));
  }
  if (const JsonValue* v = config.Find("split_k")) {
    out->split_k = static_cast<int>(v->NumberOr(out->split_k));
  }
  if (const JsonValue* v = config.Find("raster")) {
    out->raster_block = static_cast<int>(v->NumberOr(out->raster_block));
  }
  if (const JsonValue* v = config.Find("fusion")) {
    out->inner_fusion = v->BoolOr(out->inner_fusion);
  }
  if (const JsonValue* v = config.Find("swizzle")) {
    out->swizzle = v->BoolOr(out->swizzle);
  }
  if (const JsonValue* v = config.Find("async")) {
    out->async_copies = v->BoolOr(out->async_copies);
  }
  return true;
}

void AppendTimingJson(std::ostringstream* out, const sim::KernelTiming& t) {
  (*out) << "\"feasible\":" << (t.feasible ? "true" : "false");
  if (!t.feasible) {
    (*out) << ",\"reason\":\"" << JsonEscape(t.reason) << "\"";
    return;
  }
  (*out) << ",\"cycles\":" << t.cycles << ",\"microseconds\":"
         << t.microseconds << ",\"tflops\":" << t.tflops
         << ",\"threadblocks_per_sm\":" << t.threadblocks_per_sm
         << ",\"batches\":" << t.batches;
}

obs::Counter& ServingCounter(const char* name) {
  return obs::Registry::Global().GetCounter(name);
}

// Client identities become metric label values and access-log fields, so
// they are clamped to a label-safe charset and length before use.
std::string SanitizeClient(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == ':' ||
              c == '-';
    out += ok ? c : '_';
    if (out.size() >= 48) break;
  }
  return out.empty() ? "anon" : out;
}

#ifndef ALCOP_GIT_SHA
#define ALCOP_GIT_SHA "unknown"
#endif
#ifndef ALCOP_BUILD_TYPE
#define ALCOP_BUILD_TYPE "unknown"
#endif

}  // namespace

struct Server::Impl {
  ServerOptions options;

  int listen_fd = -1;
  int http_listen_fd = -1;       // -1 when the HTTP front end is off
  int bound_http_port = -1;      // actual port after bind (0 resolves)
  int wake_pipe[2] = {-1, -1};   // interrupts poll() on Stop
  int rescan_pipe[2] = {-1, -1}; // lane->IO nudge after an HTTP response

  std::thread io_thread;
  std::thread fast_thread;
  std::thread slow_thread;

  std::mutex queue_mu;
  std::condition_variable fast_cv;
  std::condition_variable slow_cv;
  std::deque<Request> fast_queue;
  std::deque<Request> slow_queue;

  std::atomic<bool> stopping{false};
  std::atomic<uint64_t> served{0};
  bool started = false;

  std::mutex stop_mu;
  std::condition_variable stop_cv;

  // Request-lifecycle observability (resolved once in Start, with help
  // text; lanes then update lock-free).
  struct LaneStats {
    obs::Histogram* latency = nullptr;
    obs::Histogram* queue_wait = nullptr;
    obs::Histogram* service = nullptr;
  };
  LaneStats fast_stats;
  LaneStats slow_stats;
  obs::Gauge* inflight_gauge = nullptr;
  obs::Counter* requests_counter = nullptr;
  obs::Counter* fast_counter = nullptr;
  obs::Counter* slow_counter = nullptr;
  obs::Counter* batches_counter = nullptr;
  obs::Counter* http_counter = nullptr;
  obs::Counter* http_bad_counter = nullptr;
  obs::Counter* watchdog_counter = nullptr;
  struct LaneWatch {
    obs::Gauge* depth = nullptr;  // serving.queue.depth|lane=...
    obs::Gauge* age = nullptr;    // serving.queue.age.us|lane=...
    bool stalled = false;         // one-shot dump armed while false
  };
  LaneWatch fast_watch;
  LaneWatch slow_watch;
  std::atomic<uint64_t> next_request_id{0};
  std::atomic<uint64_t> next_batch_id{0};
  int64_t start_ns = 0;
  int64_t last_snapshot_ns = 0;  // IO-thread-only
  bool prev_trace_enabled = false;

  std::ofstream access_log;
  std::mutex access_log_mu;

  // Flight recorder + periodic registry snapshots (created in Start from
  // the options; null when disabled).
  std::unique_ptr<obs::FlightRecorder> flight;
  std::unique_ptr<obs::MetricsTimeSeries> timeseries;

  // Per-client attribution: top-K identities get their own labeled
  // series, everyone past the cap shares the "other" slot so label
  // cardinality is bounded by max_clients + 1 regardless of traffic.
  struct ClientStats {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Histogram* fast_latency = nullptr;
    obs::Histogram* slow_latency = nullptr;
  };
  std::mutex clients_mu;
  std::unordered_map<std::string, ClientStats*> clients;
  std::deque<ClientStats> client_storage;  // stable addresses
  ClientStats* other_client = nullptr;     // shared overflow slot

  ClientStats* MakeClientStats(const std::string& label) {
    obs::Registry& registry = obs::Registry::Global();
    client_storage.emplace_back();
    ClientStats& stats = client_storage.back();
    stats.requests = &registry.GetCounter(
        "serving.client.requests|client=" + label,
        "Requests completed, by attributed client (top-K + other).");
    stats.errors = &registry.GetCounter(
        "serving.client.errors|client=" + label,
        "Requests answered with ok=false, by attributed client.");
    stats.bytes = &registry.GetCounter(
        "serving.client.response.bytes|client=" + label,
        "Response payload bytes sent, by attributed client.");
    stats.fast_latency = &registry.GetHistogram(
        "serving.request.latency.us|client=" + label + "|lane=fast",
        "End-to-end request latency in microseconds, by client and lane.");
    stats.slow_latency = &registry.GetHistogram(
        "serving.request.latency.us|client=" + label + "|lane=slow",
        "End-to-end request latency in microseconds, by client and lane.");
    return &stats;
  }

  ClientStats* ClientStatsFor(const std::string& client) {
    std::lock_guard<std::mutex> lock(clients_mu);
    auto it = clients.find(client);
    if (it != clients.end()) return it->second;
    if (clients.size() < options.max_clients) {
      return clients.emplace(client, MakeClientStats(client)).first->second;
    }
    // Past the cap: share the "other" series (and don't memoize, so the
    // identity map stays as bounded as the label space).
    if (other_client == nullptr) other_client = MakeClientStats("other");
    return other_client;
  }

  // ---------------------------------------------------------------------
  // IO thread: accept connections, read frames, classify into lanes.
  // ---------------------------------------------------------------------

  void IoLoop() {
    std::vector<std::shared_ptr<Conn>> conns;
    while (!stopping.load(std::memory_order_relaxed)) {
      std::vector<pollfd> fds;
      fds.push_back({wake_pipe[0], POLLIN, 0});
      fds.push_back({rescan_pipe[0], POLLIN, 0});
      fds.push_back({listen_fd, POLLIN, 0});
      size_t http_slot = 0;
      if (http_listen_fd >= 0) {
        http_slot = fds.size();
        fds.push_back({http_listen_fd, POLLIN, 0});
      }
      size_t base = fds.size();
      for (const auto& conn : conns) fds.push_back({conn->fd, POLLIN, 0});
      if (::poll(fds.data(), fds.size(), MonitorTimeoutMs()) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      MonitorTick(obs::NowNanos());
      if (fds[0].revents != 0) break;  // woken by Stop
      if (fds[1].revents & POLLIN) {
        // A lane finished an HTTP response. Drain the nudge bytes (a
        // short read just means another wakeup, which is harmless), then
        // resume any conns with buffered pipelined requests and close
        // the Connection: close ones.
        char drain[256];
        ssize_t ignored = ::read(rescan_pipe[0], drain, sizeof(drain));
        (void)ignored;
        for (auto& conn : conns) {
          if (!conn->http || conn->dead) continue;
          if (conn->inflight.load(std::memory_order_acquire)) continue;
          if (conn->close_after_response) {
            conn->dead = true;
            continue;
          }
          if (!conn->in_buffer.empty() && !ProcessHttpBuffer(conn)) {
            conn->dead = true;
          }
        }
        SweepDead(&conns);
      }
      if (fds[2].revents & POLLIN) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
          auto conn = std::make_shared<Conn>();
          conn->fd = fd;
          // Kernel-verified peer identity: the unix transport attributes
          // by uid unless the request body overrides it ("client" field).
          ucred cred;
          socklen_t cred_len = sizeof(cred);
          if (::getsockopt(fd, SOL_SOCKET, SO_PEERCRED, &cred, &cred_len) ==
              0) {
            conn->client = "uid:" + std::to_string(cred.uid);
          }
          conns.push_back(std::move(conn));
          continue;  // re-poll with the new fd included
        }
      }
      if (http_listen_fd >= 0 && (fds[http_slot].revents & POLLIN) != 0) {
        int fd = ::accept(http_listen_fd, nullptr, nullptr);
        if (fd >= 0) {
          auto conn = std::make_shared<Conn>();
          conn->fd = fd;
          conn->http = true;
          conn->rescan_fd = rescan_pipe[1];
          conns.push_back(std::move(conn));
          continue;
        }
      }
      for (size_t i = base; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        std::shared_ptr<Conn>& conn = conns[i - base];
        if (conn->dead) continue;
        if (!conn->http) {
          std::string payload;
          if (!ReadFrame(conn->fd, &payload)) {
            conn->dead = true;
          } else {
            Dispatch(conn, payload);
          }
          continue;
        }
        char buf[65536];
        ssize_t n = ::read(conn->fd, buf, sizeof(buf));
        if (n <= 0) {
          if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
          conn->dead = true;
          continue;
        }
        conn->in_buffer.append(buf, static_cast<size_t>(n));
        if (!conn->inflight.load(std::memory_order_acquire) &&
            !ProcessHttpBuffer(conn)) {
          conn->dead = true;
        }
      }
      SweepDead(&conns);
    }
  }

  static void SweepDead(std::vector<std::shared_ptr<Conn>>* conns) {
    conns->erase(std::remove_if(conns->begin(), conns->end(),
                                [](const std::shared_ptr<Conn>& conn) {
                                  return conn->dead;
                                }),
                 conns->end());
  }

  // ---------------------------------------------------------------------
  // Watchdog + periodic snapshots (IO thread).
  // ---------------------------------------------------------------------

  // How long poll() may sleep so the monitor still runs: the snapshot
  // interval and a quarter of the stall threshold (clamped to [1ms, 1s])
  // both bound it; -1 (block forever) when both subsystems are off.
  int MonitorTimeoutMs() const {
    int timeout = -1;
    if (timeseries != nullptr && options.snapshot_interval_ms > 0) {
      timeout = options.snapshot_interval_ms;
    }
    if (options.watchdog_stall_ms > 0) {
      int tick = options.watchdog_stall_ms / 4;
      if (tick < 1) tick = 1;
      if (tick > 1000) tick = 1000;
      if (timeout < 0 || tick < timeout) timeout = tick;
    }
    return timeout;
  }

  // Heartbeat: queue-depth/oldest-age gauges per lane, periodic registry
  // snapshot into the time-series ring, and one-shot stall detection.
  // Runs after every poll() return, so its cost is bounded by the poll
  // cadence, not the request rate.
  void MonitorTick(int64_t now_ns) {
    struct LaneReading {
      size_t depth = 0;
      int64_t oldest_ns = 0;  // arrival of the queue front (0 = empty)
    };
    LaneReading fast_reading;
    LaneReading slow_reading;
    bool watch = options.watchdog_stall_ms > 0 || fast_watch.depth != nullptr;
    if (watch) {
      std::lock_guard<std::mutex> lock(queue_mu);
      fast_reading.depth = fast_queue.size();
      if (!fast_queue.empty()) {
        fast_reading.oldest_ns = fast_queue.front().arrival_ns;
      }
      slow_reading.depth = slow_queue.size();
      if (!slow_queue.empty()) {
        slow_reading.oldest_ns = slow_queue.front().arrival_ns;
      }
    }
    auto tick_lane = [&](const char* name, LaneWatch& lane,
                         const LaneReading& reading) {
      double age_us =
          reading.oldest_ns == 0
              ? 0.0
              : static_cast<double>(now_ns - reading.oldest_ns) / 1e3;
      if (lane.depth != nullptr) {
        lane.depth->Set(static_cast<double>(reading.depth));
        lane.age->Set(age_us);
      }
      if (options.watchdog_stall_ms <= 0) return;
      if (reading.depth == 0) {
        lane.stalled = false;  // drained: re-arm the one-shot dump
        return;
      }
      if (lane.stalled ||
          age_us < static_cast<double>(options.watchdog_stall_ms) * 1e3) {
        return;
      }
      lane.stalled = true;
      watchdog_counter->Increment();
      EmitStallDump(name, age_us, reading.depth);
    };
    tick_lane("fast", fast_watch, fast_reading);
    tick_lane("slow", slow_watch, slow_reading);
    if (timeseries != nullptr && options.snapshot_interval_ms > 0 &&
        now_ns - last_snapshot_ns >=
            static_cast<int64_t>(options.snapshot_interval_ms) * 1000000) {
      last_snapshot_ns = now_ns;
      timeseries->Sample(now_ns, obs::Registry::Global().Snapshot());
    }
  }

  // One-shot diagnostic on a stalled lane: the flight-recorder tail and
  // a flattened metrics snapshot, as one error-level structured-log line
  // (ring-buffered for /debug/log, mirrored to any file sink).
  void EmitStallDump(const char* lane, double age_us, size_t depth) {
    obs::LogFields fields;
    fields.Str("lane", lane)
        .Num("oldest_age_us", age_us)
        .Uint("queue_depth", depth)
        .Num("inflight", inflight_gauge->Value())
        .Uint("requests", served.load(std::memory_order_relaxed));
    if (flight != nullptr) {
      std::string tail = "[";
      bool first = true;
      for (const obs::RequestRecord& rec : flight->Snapshot(8)) {
        if (!first) tail += ",";
        first = false;
        tail += obs::RequestRecordJson(rec);
      }
      tail += "]";
      fields.Raw("flight_tail", tail);
    }
    std::string metrics = "{";
    bool first = true;
    for (const auto& [name, value] :
         obs::FlattenSnapshot(obs::Registry::Global().Snapshot())) {
      if (!first) metrics += ",";
      first = false;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      metrics += "\"" + name + "\":" + buf;
    }
    metrics += "}";
    fields.Raw("metrics", metrics);
    obs::Log(obs::LogLevel::kError, "serving",
             std::string("watchdog: ") + lane + " lane stalled", fields);
  }

  // Parses as many buffered HTTP requests as the one-inflight gate
  // allows. False means the connection should close (protocol error or
  // a non-keep-alive exchange answered inline).
  bool ProcessHttpBuffer(const std::shared_ptr<Conn>& conn) {
    while (!conn->inflight.load(std::memory_order_acquire)) {
      if (conn->in_buffer.empty()) return true;
      HttpRequest http_request;
      size_t consumed = 0;
      std::string parse_error;
      HttpParseResult result =
          ParseHttpRequest(conn->in_buffer, &http_request, &consumed,
                           &parse_error);
      if (result == HttpParseResult::kNeedMore) return true;
      if (result == HttpParseResult::kBad) {
        http_bad_counter->Increment();
        conn->SendRaw(FormatHttpResponse(400, "text/plain; charset=utf-8",
                                         "bad request: " + parse_error + "\n",
                                         {}, /*keep_alive=*/false));
        return false;
      }
      conn->in_buffer.erase(0, consumed);
      if (!HandleHttp(conn, http_request)) return false;
    }
    return true;
  }

  // Transport-level HTTP routing. GET endpoints are answered inline on
  // the IO thread (they only read the registry, rings and cache stats);
  // POST /v1/<method> rides the same Dispatch path as socket frames,
  // with the URL supplying the method and the X-Alcop-Client header (if
  // any) the attributed identity.
  bool HandleHttp(const std::shared_ptr<Conn>& conn,
                  const HttpRequest& request) {
    http_counter->Increment();
    bool keep = request.keep_alive;
    std::string path;
    std::string query;
    SplitTarget(request.target, &path, &query);
    auto method_not_allowed = [&] {
      conn->SendRaw(FormatHttpResponse(405, "text/plain; charset=utf-8",
                                       "method not allowed\n", {}, keep));
      return keep;
    };
    if (path == "/metrics") {
      if (request.method != "GET") return method_not_allowed();
      conn->SendRaw(FormatHttpResponse(
          200, "text/plain; version=0.0.4; charset=utf-8",
          obs::RenderPrometheus(), {}, keep));
      return keep;
    }
    if (path.rfind("/debug/", 0) == 0) {
      if (request.method != "GET") return method_not_allowed();
      std::string body;
      if (!HandleDebugQuery(path.substr(7), ParseQuery(query), &body)) {
        conn->SendRaw(FormatHttpResponse(404, "text/plain; charset=utf-8",
                                         "not found\n", {}, keep));
        return keep;
      }
      conn->SendRaw(
          FormatHttpResponse(200, "application/json", body + "\n", {}, keep));
      return keep;
    }
    if (path == "/healthz") {
      if (request.method != "GET") return method_not_allowed();
      sim::SimCacheStats stats = sim::GetSimCacheStats();
      int64_t headroom =
          stats.budget_bytes == 0
              ? -1
              : std::max<int64_t>(0, static_cast<int64_t>(stats.budget_bytes) -
                                         static_cast<int64_t>(
                                             stats.resident_bytes));
      std::ostringstream body;
      body.precision(17);
      body << "{\"ok\":true,\"uptime_seconds\":"
           << static_cast<double>(obs::NowNanos() - start_ns) / 1e9
           << ",\"inflight\":" << inflight_gauge->Value()
           << ",\"requests\":" << served.load(std::memory_order_relaxed)
           << ",\"cache\":{\"resident_bytes\":" << stats.resident_bytes
           << ",\"budget_bytes\":" << stats.budget_bytes
           << ",\"headroom_bytes\":" << headroom << "}}\n";
      conn->SendRaw(FormatHttpResponse(
          200, "application/json", body.str(),
          {{"X-Cache-Headroom-Bytes", std::to_string(headroom)}}, keep));
      return keep;
    }
    if (path.rfind("/v1/", 0) == 0) {
      if (request.method != "POST") return method_not_allowed();
      std::string method = path.substr(4);
      conn->close_after_response = !keep;
      conn->inflight.store(true, std::memory_order_release);
      const std::string* client_header = request.FindHeader("X-Alcop-Client");
      Dispatch(conn, request.body.empty() ? "{}" : request.body,
               method.c_str(),
               client_header == nullptr ? nullptr : client_header->c_str());
      return true;
    }
    conn->SendRaw(FormatHttpResponse(404, "text/plain; charset=utf-8",
                                     "not found\n", {}, keep));
    return keep;
  }

  // ---------------------------------------------------------------------
  // Debug introspection (shared by GET /debug/* and the socket `debug`
  // method): renders the retained rings as JSON. Read-only.
  // ---------------------------------------------------------------------

  static size_t ParseCount(const std::string& text, size_t fallback) {
    if (text.empty()) return fallback;
    char* end = nullptr;
    unsigned long long n = std::strtoull(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return fallback;
    return static_cast<size_t>(n);
  }

  // `{"requests":[...most recent first...],"total_recorded":N}`.
  std::string DebugRequestsJson(size_t n, const obs::FlightRecorder::Filter&
                                              filter) {
    std::ostringstream out;
    out << "{\"requests\":[";
    if (flight != nullptr) {
      bool first = true;
      for (const obs::RequestRecord& rec : flight->Snapshot(n, filter)) {
        if (!first) out << ",";
        first = false;
        out << obs::RequestRecordJson(rec);
      }
    }
    out << "],\"total_recorded\":"
        << (flight == nullptr ? 0 : flight->total_recorded()) << "}";
    return out.str();
  }

  // Without `metric`: the list of sampled names. With one: up to `n`
  // most recent points, oldest first.
  std::string DebugTimeseriesJson(const std::string& metric, size_t n) {
    std::ostringstream out;
    out.precision(17);
    if (metric.empty()) {
      out << "{\"metrics\":[";
      if (timeseries != nullptr) {
        bool first = true;
        for (const std::string& name : timeseries->Names()) {
          if (!first) out << ",";
          first = false;
          out << "\"" << JsonEscape(name) << "\"";
        }
      }
      out << "],\"samples\":"
          << (timeseries == nullptr ? 0 : timeseries->samples()) << "}";
      return out.str();
    }
    std::vector<obs::MetricsTimeSeries::Point> points;
    if (timeseries != nullptr) points = timeseries->Series(metric);
    size_t start = points.size() > n ? points.size() - n : 0;
    out << "{\"metric\":\"" << JsonEscape(metric) << "\",\"points\":[";
    for (size_t i = start; i < points.size(); ++i) {
      if (i != start) out << ",";
      out << "{\"t_ns\":" << points[i].t_ns << ",\"value\":"
          << points[i].value << "}";
    }
    out << "]}";
    return out.str();
  }

  // Drains the span rings as a Chrome/Perfetto trace snapshot.
  static std::string DebugTraceJson() {
    obs::ChromeTraceWriter writer;
    obs::AppendHostSpans(&writer, obs::CollectTraceSpans());
    std::string json = writer.ToJson();
    obs::ClearTrace();
    return json;
  }

  // `{"lines":[...oldest first...]}`; each line is itself a JSON object.
  static std::string DebugLogJson(size_t n) {
    std::ostringstream out;
    out << "{\"lines\":[";
    bool first = true;
    for (const std::string& line : obs::StructuredLog::Global().Recent(n)) {
      if (!first) out << ",";
      first = false;
      out << line;
    }
    out << "],\"total\":" << obs::StructuredLog::Global().total_lines()
        << "}";
    return out.str();
  }

  // `what` is the path tail ("requests", "timeseries", "trace", "log");
  // false = unknown endpoint.
  bool HandleDebugQuery(
      const std::string& what,
      const std::vector<std::pair<std::string, std::string>>& params,
      std::string* body) {
    if (what == "requests") {
      obs::FlightRecorder::Filter filter;
      filter.client = QueryParam(params, "client");
      filter.lane = QueryParam(params, "lane");
      filter.outcome = QueryParam(params, "outcome");
      *body = DebugRequestsJson(ParseCount(QueryParam(params, "n"), 50),
                                filter);
      return true;
    }
    if (what == "timeseries") {
      *body = DebugTimeseriesJson(QueryParam(params, "metric"),
                                  ParseCount(QueryParam(params, "n"), 600));
      return true;
    }
    if (what == "trace") {
      *body = DebugTraceJson();
      return true;
    }
    if (what == "log") {
      *body = DebugLogJson(ParseCount(QueryParam(params, "n"), 100));
      return true;
    }
    return false;
  }

  void Dispatch(const std::shared_ptr<Conn>& conn, const std::string& payload,
                const char* method_override = nullptr,
                const char* client_override = nullptr) {
    Request request;
    request.conn = conn;
    request.req_id = next_request_id.fetch_add(1, std::memory_order_relaxed) + 1;
    request.arrival_ns = obs::NowNanos();
    request.transport = conn->http ? "http" : "unix";
    request.client = conn->client;
    inflight_gauge->Add(1.0);
    std::optional<JsonValue> body = ParseJson(payload);
    if (!body.has_value()) {
      if (client_override != nullptr) {
        request.client = SanitizeClient(client_override);
      }
      request.dequeue_ns = request.arrival_ns;
      request.outcome = "error";
      Complete(request, ErrorResponse(0, "malformed JSON"));
      return;
    }
    request.body = std::move(*body);
    const JsonValue* id = request.body.Find("id");
    request.id = id == nullptr ? 0 : static_cast<int64_t>(id->NumberOr(0));
    const JsonValue* method = request.body.Find("method");
    request.method = method == nullptr ? "" : method->StringOr("");
    if (method_override != nullptr) request.method = method_override;
    // Attribution priority: transport-verified header > self-declared
    // body field > connection default (peer uid / "anon").
    if (const JsonValue* c = request.body.Find("client")) {
      std::string declared = c->StringOr("");
      if (!declared.empty()) request.client = SanitizeClient(declared);
    }
    if (client_override != nullptr) {
      request.client = SanitizeClient(client_override);
    }
    if (FastLane(request)) {
      std::lock_guard<std::mutex> lock(queue_mu);
      fast_queue.push_back(std::move(request));
      fast_cv.notify_one();
    } else {
      request.lane = "slow";
      std::lock_guard<std::mutex> lock(queue_mu);
      slow_queue.push_back(std::move(request));
      slow_cv.notify_one();
    }
  }

  // Finishes one request: latency histograms, completion-time counters,
  // queue-wait/lane spans and the access-log line, then the response
  // send — so a stats snapshot or scrape taken after the client sees the
  // reply always includes it, and in-flight work is visible as the gap
  // between serving.inflight and serving.requests.
  void Complete(Request& request, const std::string& payload) {
    int64_t end_ns = obs::NowNanos();
    bool fast = request.lane[0] == 'f';
    double queue_us =
        static_cast<double>(request.dequeue_ns - request.arrival_ns) / 1e3;
    double service_us =
        static_cast<double>(end_ns - request.dequeue_ns) / 1e3;
    if (payload.find("\"ok\":false") != std::string::npos) {
      request.outcome = "error";
    }
    LaneStats& lane = fast ? fast_stats : slow_stats;
    lane.queue_wait->Observe(queue_us);
    lane.service->Observe(service_us);
    lane.latency->Observe(queue_us + service_us);
    (fast ? fast_counter : slow_counter)->Increment();
    requests_counter->Increment();
    if (options.client_metrics) {
      ClientStats* client = ClientStatsFor(request.client);
      client->requests->Increment();
      if (request.outcome[0] == 'e') client->errors->Increment();
      client->bytes->Add(payload.size());
      (fast ? client->fast_latency : client->slow_latency)
          ->Observe(queue_us + service_us);
    }
    inflight_gauge->Add(-1.0);
    served.fetch_add(1, std::memory_order_relaxed);
    obs::RecordSpan("serving.queue_wait", "serving", request.arrival_ns,
                    request.dequeue_ns);
    obs::RecordSpan(fast ? "serving.request.fast" : "serving.request.slow",
                    "serving", request.arrival_ns, end_ns);
    if (flight != nullptr) {
      obs::RequestRecord rec;
      rec.id = request.req_id;
      rec.client = request.client;
      rec.method = request.method;
      rec.op_key = request.op_key;
      rec.lane = request.lane;
      rec.outcome = request.outcome;
      rec.transport = request.transport;
      rec.batch = request.batch;
      rec.arrival_ns = request.arrival_ns;
      rec.queue_us = queue_us;
      rec.service_us = service_us;
      rec.total_us = queue_us + service_us;
      flight->Record(rec);
    }
    WriteAccessLog(request, queue_us, service_us);
    request.conn->Send(payload);
  }

  void WriteAccessLog(const Request& request, double queue_us,
                      double service_us) {
    if (!access_log.is_open()) return;
    std::ostringstream line;
    line.precision(17);
    line << "{\"id\":" << request.req_id << ",\"client\":\""
         << JsonEscape(request.client) << "\""
         << ",\"client_id\":" << request.id << ",\"method\":\""
         << JsonEscape(request.method) << "\",\"op_key\":\""
         << JsonEscape(request.op_key) << "\",\"lane\":\"" << request.lane
         << "\",\"outcome\":\"" << request.outcome
         << "\",\"batch\":" << request.batch << ",\"queue_us\":" << queue_us
         << ",\"service_us\":" << service_us
         << ",\"total_us\":" << queue_us + service_us << "}";
    std::lock_guard<std::mutex> lock(access_log_mu);
    access_log << line.str() << "\n";
    access_log.flush();
  }

  // Routing: anything that can be answered without compiling or
  // searching goes to the fast lane. The probes here are O(1) lookups —
  // never a compile.
  bool FastLane(const Request& request) {
    const std::string& m = request.method;
    if (m == "ping" || m == "stats" || m == "persist" || m == "load" ||
        m == "shutdown" || m == "debug" || m.empty()) {
      return true;
    }
    if (m == "compile") {
      schedule::GemmOp op;
      schedule::ScheduleConfig config;
      std::string err;
      const JsonValue* cfg = request.body.Find("config");
      if (!ParseOpJson(request.body, &op, &err) || cfg == nullptr ||
          !ParseConfigJson(*cfg, &config, &err)) {
        return true;  // malformed: answer the error quickly
      }
      // Probe without counting (no LRU touch side effects beyond a hit):
      sim::KernelTiming timing;
      return sim::ProbeCachedTiming(op, config, options.spec,
                                    schedule::InlineOrder::kAfterPipelining,
                                    &timing);
    }
    if (m == "tune") {
      schedule::GemmOp op;
      std::string err;
      if (!ParseOpJson(request.body, &op, &err)) return true;
      const JsonValue* force = request.body.Find("force");
      if (force != nullptr && force->BoolOr(false)) return false;
      return tuner::TuningStore::Global().Get(tuner::OpKey(op)).has_value();
    }
    return false;  // profile and anything unknown-but-heavy
  }

  // ---------------------------------------------------------------------
  // Fast lane.
  // ---------------------------------------------------------------------

  void FastLoop() {
    while (true) {
      Request request;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        fast_cv.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) ||
                 !fast_queue.empty();
        });
        if (fast_queue.empty()) return;  // stopping and drained
        request = std::move(fast_queue.front());
        fast_queue.pop_front();
      }
      request.dequeue_ns = obs::NowNanos();
      Complete(request, HandleFast(request));
      if (request.method == "shutdown") {
        RequestStop();
        return;
      }
    }
  }

  std::string HandleFast(Request& request) {
    const std::string& m = request.method;
    if (m == "ping") {
      std::ostringstream out;
      out << "{\"id\":" << request.id << ",\"ok\":true,\"pong\":true}";
      return out.str();
    }
    if (m == "shutdown") {
      std::ostringstream out;
      out << "{\"id\":" << request.id << ",\"ok\":true,\"stopping\":true}";
      return out.str();
    }
    if (m == "stats") return HandleStats(request);
    if (m == "debug") return HandleDebug(request);
    if (m == "persist" || m == "load") return HandlePersist(request);
    if (m == "compile") return HandleCompile(request, /*probe_only=*/true);
    if (m == "tune") return HandleStoredTune(request);
    return ErrorResponse(request.id, "unknown method \"" + m + "\"");
  }

  // Socket-side mirror of GET /debug/*: {"method":"debug","what":...}
  // with the same optional n/client/lane/outcome/metric parameters.
  std::string HandleDebug(const Request& request) {
    const JsonValue* what_value = request.body.Find("what");
    std::string what =
        what_value == nullptr ? "requests" : what_value->StringOr("requests");
    std::vector<std::pair<std::string, std::string>> params;
    for (const char* key : {"n", "client", "lane", "outcome", "metric"}) {
      const JsonValue* v = request.body.Find(key);
      if (v == nullptr) continue;
      if (v->kind == JsonValue::Kind::kNumber) {
        params.emplace_back(
            key, std::to_string(static_cast<uint64_t>(v->NumberOr(0))));
      } else {
        params.emplace_back(key, v->StringOr(""));
      }
    }
    std::string body;
    if (!HandleDebugQuery(what, params, &body)) {
      return ErrorResponse(request.id, "unknown debug view \"" + what + "\"");
    }
    std::ostringstream out;
    out << "{\"id\":" << request.id << ",\"ok\":true,\"what\":\""
        << JsonEscape(what) << "\",\"result\":" << body << "}";
    return out.str();
  }

  // Per-lane latency summary from the request histograms: the socket
  // `stats` method and `cache stats --json` surface the same numbers an
  // HTTP scraper computes from the exposition buckets.
  static void AppendLaneLatency(std::ostringstream* out, const char* lane,
                                const LaneStats& stats) {
    obs::HistogramData data = stats.latency->Data();
    (*out) << "\"" << lane << "\":{\"count\":" << data.count << ",\"mean_us\":"
           << (data.count == 0 ? 0.0
                               : data.sum / static_cast<double>(data.count))
           << ",\"p50_us\":" << obs::HistogramQuantile(data, 0.5)
           << ",\"p99_us\":" << obs::HistogramQuantile(data, 0.99)
           << ",\"p999_us\":" << obs::HistogramQuantile(data, 0.999)
           << ",\"max_us\":" << data.max << "}";
  }

  std::string HandleStats(const Request& request) {
    sim::SimCacheStats stats = sim::GetSimCacheStats();
    std::ostringstream out;
    out.precision(17);
    out << "{\"id\":" << request.id << ",\"ok\":true"
        << ",\"timing_hits\":" << stats.hits
        << ",\"timing_misses\":" << stats.misses
        << ",\"timing_entries\":" << stats.entries
        << ",\"program_entries\":" << stats.program_entries
        << ",\"program_skeletons\":" << stats.program_skeletons
        << ",\"resident_bytes\":" << stats.resident_bytes
        << ",\"budget_bytes\":" << stats.budget_bytes
        << ",\"evictions\":" << stats.evictions
        << ",\"disk_hits\":" << stats.disk_hits
        << ",\"disk_misses\":" << stats.disk_misses
        << ",\"disk_load_bytes\":" << stats.disk_load_bytes
        << ",\"stored_tunings\":" << tuner::TuningStore::Global().Size()
        << ",\"requests\":" << served.load(std::memory_order_relaxed)
        << ",\"inflight\":" << inflight_gauge->Value() << ",\"latency\":{";
    AppendLaneLatency(&out, "fast", fast_stats);
    out << ",";
    AppendLaneLatency(&out, "slow", slow_stats);
    out << "}}";
    return out.str();
  }

  std::string HandlePersist(const Request& request) {
    std::string path = options.cache_path;
    if (const JsonValue* p = request.body.Find("path")) {
      path = p->StringOr(path);
    }
    if (path.empty()) path = DefaultCachePath();
    PersistStats stats = request.method == "persist"
                             ? SaveCache(path, options.spec)
                             : LoadCache(path, options.spec);
    if (!stats.ok) return ErrorResponse(request.id, stats.error);
    std::ostringstream out;
    out << "{\"id\":" << request.id << ",\"ok\":true,\"path\":\""
        << JsonEscape(path) << "\",\"bytes\":" << stats.bytes
        << ",\"timings\":" << stats.timings
        << ",\"programs\":" << stats.programs
        << ",\"skeletons\":" << stats.skeletons
        << ",\"tunings\":" << stats.tunings
        << ",\"skipped\":" << stats.skipped << "}";
    return out.str();
  }

  // Warm-restart tune: the store already holds a finished search for
  // this exact op_key; answer from it in microseconds.
  std::string HandleStoredTune(Request& request) {
    schedule::GemmOp op;
    std::string err;
    if (!ParseOpJson(request.body, &op, &err)) {
      return ErrorResponse(request.id, err);
    }
    request.op_key = op.name;
    request.outcome = "stored";
    std::optional<tuner::StoredTuning> stored =
        tuner::TuningStore::Global().Get(tuner::OpKey(op));
    if (!stored.has_value()) {
      // Raced with a concurrent store clear; degrade to an error the
      // client can retry with "force".
      return ErrorResponse(request.id, "tuning no longer stored");
    }
    std::optional<tuner::StoredTrial> best = stored->Best();
    if (!best.has_value()) {
      return ErrorResponse(request.id, "stored tuning has no feasible trial");
    }
    std::ostringstream out;
    out.precision(17);
    out << "{\"id\":" << request.id << ",\"ok\":true,\"op_key\":\""
        << JsonEscape(stored->op_key) << "\",\"source\":\"store\""
        << ",\"best_config\":\"" << JsonEscape(best->config.ToString())
        << "\",\"best_cycles\":" << best->cycles
        << ",\"trials\":" << stored->trials.size() << "}";
    return out.str();
  }

  std::string HandleCompile(Request& request, bool probe_only) {
    schedule::GemmOp op;
    schedule::ScheduleConfig config;
    std::string err;
    const JsonValue* cfg = request.body.Find("config");
    if (!ParseOpJson(request.body, &op, &err)) {
      return ErrorResponse(request.id, err);
    }
    request.op_key = op.name;
    if (cfg == nullptr || !ParseConfigJson(*cfg, &config, &err)) {
      return ErrorResponse(
          request.id, err.empty() ? "compile needs a \"config\" object" : err);
    }
    request.outcome = "hit";
    sim::KernelTiming timing;
    if (!sim::ProbeCachedTiming(op, config, options.spec,
                                schedule::InlineOrder::kAfterPipelining,
                                &timing)) {
      request.outcome = "fallback";
      if (probe_only) {
        // Routing raced an eviction; the slow path below is still correct,
        // just slower than the lane promised.
        ServingCounter("serving.fast_lane_fallback").Increment();
      }
      timing = sim::CachedCompileAndSimulate(op, config, options.spec);
    }
    std::ostringstream out;
    out.precision(17);
    out << "{\"id\":" << request.id << ",\"ok\":true,";
    AppendTimingJson(&out, timing);
    out << "}";
    return out.str();
  }

  // ---------------------------------------------------------------------
  // Slow lane: drain-and-batch.
  // ---------------------------------------------------------------------

  void SlowLoop() {
    sim::ReplayArena arena;
    while (true) {
      std::vector<Request> batch;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        slow_cv.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) ||
                 !slow_queue.empty();
        });
        if (slow_queue.empty()) return;  // stopping and drained
        while (!slow_queue.empty()) {
          batch.push_back(std::move(slow_queue.front()));
          slow_queue.pop_front();
        }
      }
      uint64_t batch_id =
          next_batch_id.fetch_add(1, std::memory_order_relaxed) + 1;
      batches_counter->Increment();
      int64_t batch_start_ns = obs::NowNanos();
      for (Request& request : batch) {
        request.dequeue_ns = batch_start_ns;
        request.batch = batch_id;
      }
      HandleSlowBatch(batch, &arena);
      obs::RecordSpan("serving.batch", "serving", batch_start_ns,
                      obs::NowNanos());
    }
  }

  void HandleSlowBatch(std::vector<Request>& batch, sim::ReplayArena* arena) {
    // Phase 1 for every compile/profile request in the round (program
    // cache deduplicates identical triples), then one batched phase-2
    // replay — programs sharing a skeleton run back-to-back off the
    // arena's reused layout tables.
    struct Pending {
      size_t request_index;
      schedule::GemmOp op;
      schedule::ScheduleConfig config;
      std::shared_ptr<const sim::SimProgram> program;
    };
    std::vector<Pending> replays;
    for (size_t i = 0; i < batch.size(); ++i) {
      Request& request = batch[i];
      if (request.method != "compile" && request.method != "profile") {
        continue;
      }
      schedule::GemmOp op;
      schedule::ScheduleConfig config;
      std::string err;
      const JsonValue* cfg = request.body.Find("config");
      if (!ParseOpJson(request.body, &op, &err) || cfg == nullptr ||
          !ParseConfigJson(*cfg, &config, &err)) {
        request.outcome = "error";
        Complete(request, ErrorResponse(
            request.id, err.empty() ? "need op fields and \"config\"" : err));
        request.method.clear();  // answered
        continue;
      }
      request.op_key = op.name;
      Pending pending;
      pending.request_index = i;
      pending.op = op;
      pending.config = config;
      pending.program = sim::CachedSimProgram(op, config, options.spec);
      replays.push_back(std::move(pending));
    }
    if (!replays.empty()) {
      ServingCounter("serving.batched_replays").Add(replays.size());
      std::vector<const sim::SimProgram*> programs;
      programs.reserve(replays.size());
      for (const Pending& pending : replays) {
        programs.push_back(pending.program.get());
      }
      std::vector<sim::KernelTiming> timings =
          sim::ReplaySimProgramBatch(programs, arena);
      for (size_t i = 0; i < replays.size(); ++i) {
        Request& request = batch[replays[i].request_index];
        // Warm the timing layer so the next identical request is a
        // fast-lane probe hit (bit-identical: batched replay equals
        // individual replay).
        sim::InsertCachedTiming(
            sim::SimCacheKey(replays[i].op, replays[i].config, options.spec,
                             schedule::InlineOrder::kAfterPipelining),
            timings[i]);
        std::ostringstream out;
        out.precision(17);
        out << "{\"id\":" << request.id << ",\"ok\":true,";
        AppendTimingJson(&out, timings[i]);
        if (request.method == "profile" && timings[i].feasible) {
          sim::KernelPmu pmu;
          sim::ReplaySimProgram(*replays[i].program, arena, &pmu);
          out << ",\"pmu\":" << sim::PmuToJson(pmu);
        }
        out << "}";
        request.outcome = "compiled";
        Complete(request, out.str());
        request.method.clear();  // answered
      }
    }
    for (Request& request : batch) {
      if (request.method.empty()) continue;
      if (request.method == "tune") {
        request.outcome = "search";
        Complete(request, HandleTune(request));
      } else {
        request.outcome = "error";
        Complete(request, ErrorResponse(
            request.id, "unknown method \"" + request.method + "\""));
      }
    }
  }

  std::string HandleTune(Request& request) {
    schedule::GemmOp op;
    std::string err;
    if (!ParseOpJson(request.body, &op, &err)) {
      return ErrorResponse(request.id, err);
    }
    request.op_key = op.name;
    size_t trials = options.default_trials;
    if (const JsonValue* t = request.body.Find("trials")) {
      trials = static_cast<size_t>(t->NumberOr(static_cast<double>(trials)));
    }
    bool warm = options.warm_start;
    if (const JsonValue* w = request.body.Find("warm")) {
      warm = w->BoolOr(warm);
    }
    tuner::TuningTask task =
        tuner::MakeSimulatorTask(op, options.spec, options.space);
    if (task.space.empty()) {
      return ErrorResponse(request.id, "empty schedule space for op");
    }
    tuner::XgbOptions xgb;
    xgb.pretrain_with_analytical = true;
    xgb.seed = options.seed;
    tuner::WarmStart warm_start;
    if (warm) {
      warm_start = tuner::FindWarmStart(task, tuner::TuningStore::Global());
      xgb.warm_seeds = warm_start.seeds;
      if (!warm_start.seeds.empty()) {
        ServingCounter("serving.warm_starts").Increment();
      }
    }
    tuner::TuningResult result = tuner::XgbTuner(task, trials, xgb);
    tuner::StoreTuning(task, result, tuner::TuningStore::Global());
    size_t best = result.BestIndex(task);
    if (best >= task.space.size()) {
      return ErrorResponse(request.id, "no feasible schedule found");
    }
    double best_cycles = result.BestInFirstK(result.trials.size());
    std::ostringstream out;
    out.precision(17);
    out << "{\"id\":" << request.id << ",\"ok\":true,\"op_key\":\""
        << JsonEscape(tuner::OpKey(op)) << "\",\"source\":\"search\""
        << ",\"best_config\":\"" << JsonEscape(task.space[best].ToString())
        << "\",\"best_cycles\":" << best_cycles
        << ",\"trials\":" << result.trials.size() << ",\"warm_source\":\""
        << JsonEscape(warm_start.source_op_key) << "\",\"warm_seeds\":"
        << warm_start.seeds.size() << "}";
    return out.str();
  }

  // ---------------------------------------------------------------------
  // Lifecycle.
  // ---------------------------------------------------------------------

  // Resolves every serving.* metric once, attaching # HELP metadata at
  // the registration site; the request path then updates them lock-free.
  void RegisterMetrics() {
    obs::Registry& registry = obs::Registry::Global();
    auto lane = [&registry](const char* name) {
      LaneStats stats;
      std::string label = std::string("|lane=") + name;
      stats.latency = &registry.GetHistogram(
          "serving.request.latency.us" + label,
          "End-to-end request latency in microseconds (queue wait + "
          "service), by lane.");
      stats.queue_wait = &registry.GetHistogram(
          "serving.request.queue_wait.us" + label,
          "Time from dispatch to lane pickup in microseconds, by lane.");
      stats.service = &registry.GetHistogram(
          "serving.request.service.us" + label,
          "Handler time from lane pickup to response in microseconds, by "
          "lane.");
      return stats;
    };
    fast_stats = lane("fast");
    slow_stats = lane("slow");
    inflight_gauge = &registry.GetGauge(
        "serving.inflight",
        "Requests dispatched but not yet answered (both lanes).");
    requests_counter = &registry.GetCounter(
        "serving.requests", "Requests completed across both lanes.");
    fast_counter = &registry.GetCounter(
        "serving.fast_lane", "Requests completed on the fast lane.");
    slow_counter = &registry.GetCounter(
        "serving.slow_lane", "Requests completed on the slow lane.");
    batches_counter = &registry.GetCounter(
        "serving.batches", "Slow-lane drain rounds (batched replays).");
    http_counter = &registry.GetCounter(
        "serving.http.requests",
        "HTTP requests parsed, including /metrics and /healthz.");
    http_bad_counter = &registry.GetCounter(
        "serving.http.bad_requests",
        "HTTP requests rejected with 400 (malformed or over limits).");
    registry.GetCounter(
        "serving.fast_lane_fallback",
        "Fast-lane compiles whose probe raced an eviction and compiled.");
    registry.GetCounter("serving.batched_replays",
                        "Compile/profile replays answered via batched "
                        "phase-2 replay.");
    registry.GetCounter("serving.warm_starts",
                        "Tune searches seeded from a stored neighbor.");
    watchdog_counter = &registry.GetCounter(
        "serving.watchdog.stalls",
        "Stalled-lane detections (oldest queued request older than the "
        "watchdog threshold; one per stall episode).");
    auto watch = [&registry](const char* name) {
      LaneWatch watch;
      std::string label = std::string("|lane=") + name;
      watch.depth = &registry.GetGauge(
          "serving.queue.depth" + label,
          "Requests waiting in the lane queue (watchdog heartbeat).");
      watch.age = &registry.GetGauge(
          "serving.queue.age.us" + label,
          "Age in microseconds of the oldest queued request (0 when the "
          "queue is empty; watchdog heartbeat).");
      return watch;
    };
    fast_watch = watch("fast");
    slow_watch = watch("slow");
    // Build identity as a constant-1 gauge whose labels carry the facts,
    // so every scrape and bench artifact is self-identifying.
    char fingerprint[24];
    std::snprintf(fingerprint, sizeof(fingerprint), "%016llx",
                  static_cast<unsigned long long>(
                      SpecFingerprint(options.spec)));
    registry
        .GetGauge(std::string("build.info|git_sha=") + ALCOP_GIT_SHA +
                      "|build_type=" + ALCOP_BUILD_TYPE +
                      "|spec_fingerprint=" + fingerprint,
                  "Build identity (value is always 1; the labels carry the "
                  "git SHA, build type and GPU spec fingerprint).")
        .Set(1.0);
  }

  void RequestStop() {
    if (stopping.exchange(true)) return;
    // Wake the poll loop and both lanes.
    if (wake_pipe[1] >= 0) {
      char byte = 'x';
      ssize_t ignored = ::write(wake_pipe[1], &byte, 1);
      (void)ignored;
    }
    fast_cv.notify_all();
    slow_cv.notify_all();
    std::lock_guard<std::mutex> lock(stop_mu);
    stop_cv.notify_all();
  }
};

Server::Server(ServerOptions options) : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
  if (impl_->options.cache_path.empty()) {
    impl_->options.cache_path = DefaultCachePath();
  }
}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  Impl& impl = *impl_;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (impl.started) return fail("already started");
  if (impl.options.socket_path.empty()) return fail("empty socket path");

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (impl.options.socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long for AF_UNIX");
  }
  std::strncpy(addr.sun_path, impl.options.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  // A dead peer mid-write must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  impl.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl.listen_fd < 0) return fail("socket() failed");
  ::unlink(impl.options.socket_path.c_str());  // stale socket from a crash
  if (::bind(impl.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    return fail("bind(" + impl.options.socket_path + ") failed");
  }
  if (::listen(impl.listen_fd, 64) < 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    return fail("listen() failed");
  }
  if (::pipe(impl.wake_pipe) < 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    return fail("pipe() failed");
  }
  auto close_fds = [&impl] {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    for (int& fd : impl.wake_pipe) {
      ::close(fd);
      fd = -1;
    }
    for (int& fd : impl.rescan_pipe) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    if (impl.http_listen_fd >= 0) {
      ::close(impl.http_listen_fd);
      impl.http_listen_fd = -1;
    }
  };
  if (::pipe(impl.rescan_pipe) < 0) {
    close_fds();
    return fail("pipe() failed");
  }

  // HTTP front end (loopback only): /metrics, /healthz, POST /v1/*.
  if (impl.options.http_port >= 0) {
    impl.http_listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (impl.http_listen_fd < 0) {
      close_fds();
      return fail("http socket() failed");
    }
    int one = 1;
    ::setsockopt(impl.http_listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in http_addr;
    std::memset(&http_addr, 0, sizeof(http_addr));
    http_addr.sin_family = AF_INET;
    http_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    http_addr.sin_port = htons(static_cast<uint16_t>(impl.options.http_port));
    if (::bind(impl.http_listen_fd, reinterpret_cast<sockaddr*>(&http_addr),
               sizeof(http_addr)) < 0 ||
        ::listen(impl.http_listen_fd, 64) < 0) {
      close_fds();
      return fail("http bind(127.0.0.1:" +
                  std::to_string(impl.options.http_port) + ") failed");
    }
    socklen_t addr_len = sizeof(http_addr);
    if (::getsockname(impl.http_listen_fd,
                      reinterpret_cast<sockaddr*>(&http_addr),
                      &addr_len) == 0) {
      impl.bound_http_port = ntohs(http_addr.sin_port);
    }
  }

  if (!impl.options.access_log_path.empty()) {
    impl.access_log.open(impl.options.access_log_path,
                         std::ios::out | std::ios::app);
    if (!impl.access_log.is_open()) {
      close_fds();
      return fail("cannot open access log " + impl.options.access_log_path);
    }
  }

  impl.RegisterMetrics();
  impl.start_ns = obs::NowNanos();
  if (impl.options.flight_depth > 0) {
    impl.flight =
        std::make_unique<obs::FlightRecorder>(impl.options.flight_depth);
  }
  if (impl.options.snapshot_depth > 0 && impl.options.snapshot_interval_ms > 0) {
    impl.timeseries =
        std::make_unique<obs::MetricsTimeSeries>(impl.options.snapshot_depth);
  }
  // /debug/trace drains the span rings, so spans must be recorded while
  // the daemon runs; the previous switch state is restored at Stop.
  impl.prev_trace_enabled = obs::TraceEnabled();
  obs::SetTraceEnabled(true);

  // Warm-start the process from the persisted cache when one matches.
  if (!impl.options.cache_path.empty()) {
    PersistStats loaded = LoadCache(impl.options.cache_path,
                                    impl.options.spec);  // best-effort
    obs::Log(obs::LogLevel::kInfo, "serving", "cache load",
             obs::LogFields()
                 .Str("path", impl.options.cache_path)
                 .Bool("ok", loaded.ok)
                 .Uint("bytes", loaded.ok ? loaded.bytes : 0));
  }

  impl.io_thread = std::thread([&impl] { impl.IoLoop(); });
  impl.fast_thread = std::thread([&impl] { impl.FastLoop(); });
  impl.slow_thread = std::thread([&impl] { impl.SlowLoop(); });
  impl.started = true;
  obs::Log(obs::LogLevel::kInfo, "serving", "started",
           obs::LogFields()
               .Str("socket", impl.options.socket_path)
               .Int("http_port", impl.http_listen_fd >= 0
                                     ? impl.bound_http_port
                                     : -1)
               .Uint("flight_depth", impl.options.flight_depth)
               .Int("watchdog_stall_ms", impl.options.watchdog_stall_ms));
  return true;
}

void Server::Wait() {
  Impl& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.stop_mu);
  impl.stop_cv.wait(
      lock, [&impl] { return impl.stopping.load(std::memory_order_relaxed); });
}

void Server::Stop() {
  Impl& impl = *impl_;
  if (!impl.started) return;
  impl.RequestStop();
  if (impl.io_thread.joinable()) impl.io_thread.join();
  if (impl.fast_thread.joinable()) impl.fast_thread.join();
  if (impl.slow_thread.joinable()) impl.slow_thread.join();
  if (impl.listen_fd >= 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
  }
  if (impl.http_listen_fd >= 0) {
    ::close(impl.http_listen_fd);
    impl.http_listen_fd = -1;
  }
  for (int& fd : impl.wake_pipe) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  for (int& fd : impl.rescan_pipe) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (impl.access_log.is_open()) impl.access_log.close();
  ::unlink(impl.options.socket_path.c_str());
  if (impl.options.persist_on_shutdown && !impl.options.cache_path.empty()) {
    PersistStats saved =
        SaveCache(impl.options.cache_path, impl.options.spec);  // best-effort
    obs::Log(obs::LogLevel::kInfo, "serving", "cache save",
             obs::LogFields()
                 .Str("path", impl.options.cache_path)
                 .Bool("ok", saved.ok)
                 .Uint("bytes", saved.ok ? saved.bytes : 0));
  }
  obs::SetTraceEnabled(impl.prev_trace_enabled);
  obs::Log(obs::LogLevel::kInfo, "serving", "stopped",
           obs::LogFields().Uint(
               "requests", impl.served.load(std::memory_order_relaxed)));
  impl.started = false;
}

const ServerOptions& Server::options() const { return impl_->options; }

uint64_t Server::requests_served() const {
  return impl_->served.load(std::memory_order_relaxed);
}

int Server::http_port() const {
  return impl_->http_listen_fd >= 0 ? impl_->bound_http_port : -1;
}

}  // namespace serving
}  // namespace alcop
