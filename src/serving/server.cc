#include "serving/server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "serving/persist.h"
#include "serving/protocol.h"
#include "sim/pmu.h"
#include "sim/sim_cache.h"
#include "tuner/records.h"
#include "tuner/strategy.h"
#include "tuner/transfer.h"

namespace alcop {
namespace serving {

namespace {

// One client connection. Responses may be written by either lane, so
// writes are serialized per connection; frame order between different
// requests is unconstrained (clients match by id).
struct Conn {
  int fd = -1;
  std::mutex write_mu;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  void Send(const std::string& payload) {
    std::lock_guard<std::mutex> lock(write_mu);
    WriteFrame(fd, payload);  // a dead peer just drops the response
  }
};

struct Request {
  std::shared_ptr<Conn> conn;
  JsonValue body;
  int64_t id = 0;
  std::string method;
};

std::string ErrorResponse(int64_t id, const std::string& message) {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"ok\":false,\"error\":\""
      << JsonEscape(message) << "\"}";
  return out.str();
}

bool FamilyFromName(const std::string& name, schedule::OpFamily* family) {
  for (schedule::OpFamily f :
       {schedule::OpFamily::kMatmul, schedule::OpFamily::kBatchMatmul,
        schedule::OpFamily::kConv1x1, schedule::OpFamily::kConv3x3}) {
    if (name == schedule::OpFamilyName(f)) {
      *family = f;
      return true;
    }
  }
  return false;
}

// {"family":"matmul","batch":1,"m":...,"n":...,"k":...} from the request
// root (fields at top level, matching the CLI's workload flags).
bool ParseOpJson(const JsonValue& root, schedule::GemmOp* op,
                 std::string* err) {
  const JsonValue* family = root.Find("family");
  std::string family_name = family == nullptr ? "matmul" : family->StringOr("");
  if (!FamilyFromName(family_name, &op->family)) {
    *err = "unknown family \"" + family_name + "\"";
    return false;
  }
  const JsonValue* m = root.Find("m");
  const JsonValue* n = root.Find("n");
  const JsonValue* k = root.Find("k");
  if (m == nullptr || n == nullptr || k == nullptr) {
    *err = "op needs m, n, k";
    return false;
  }
  op->m = static_cast<int64_t>(m->NumberOr(0));
  op->n = static_cast<int64_t>(n->NumberOr(0));
  op->k = static_cast<int64_t>(k->NumberOr(0));
  const JsonValue* batch = root.Find("batch");
  op->batch = batch == nullptr ? 1 : static_cast<int64_t>(batch->NumberOr(1));
  if (op->m <= 0 || op->n <= 0 || op->k <= 0 || op->batch <= 0) {
    *err = "op sizes must be positive";
    return false;
  }
  std::ostringstream name;
  name << schedule::OpFamilyName(op->family) << "_" << op->m << "x" << op->n
       << "x" << op->k;
  op->name = name.str();
  return true;
}

// {"tb":[m,n,k],"warp":[m,n,k],"smem":..,"reg":..,...}; only "tb" is
// required, everything else keeps the ScheduleConfig default.
bool ParseConfigJson(const JsonValue& config, schedule::ScheduleConfig* out,
                     std::string* err) {
  auto triple = [&](const char* key, int64_t* a, int64_t* b, int64_t* c,
                    bool required) {
    const JsonValue* v = config.Find(key);
    if (v == nullptr) return !required;
    if (v->kind != JsonValue::Kind::kArray || v->array.size() != 3) {
      return false;
    }
    *a = static_cast<int64_t>(v->array[0].NumberOr(0));
    *b = static_cast<int64_t>(v->array[1].NumberOr(0));
    *c = static_cast<int64_t>(v->array[2].NumberOr(0));
    return *a > 0 && *b > 0 && *c > 0;
  };
  if (!triple("tb", &out->tile.tb_m, &out->tile.tb_n, &out->tile.tb_k,
              /*required=*/true)) {
    *err = "config needs \"tb\":[m,n,k]";
    return false;
  }
  // Default warp tile: one warp owning the whole threadblock tile is
  // rarely valid, so default to the tb tile split 2x2 when divisible.
  out->tile.warp_m = out->tile.tb_m % 2 == 0 ? out->tile.tb_m / 2 : out->tile.tb_m;
  out->tile.warp_n = out->tile.tb_n % 2 == 0 ? out->tile.tb_n / 2 : out->tile.tb_n;
  out->tile.warp_k = out->tile.tb_k;
  if (!triple("warp", &out->tile.warp_m, &out->tile.warp_n, &out->tile.warp_k,
              /*required=*/false)) {
    *err = "\"warp\" must be [m,n,k]";
    return false;
  }
  if (const JsonValue* v = config.Find("smem")) {
    out->smem_stages = static_cast<int>(v->NumberOr(out->smem_stages));
  }
  if (const JsonValue* v = config.Find("reg")) {
    out->reg_stages = static_cast<int>(v->NumberOr(out->reg_stages));
  }
  if (const JsonValue* v = config.Find("split_k")) {
    out->split_k = static_cast<int>(v->NumberOr(out->split_k));
  }
  if (const JsonValue* v = config.Find("raster")) {
    out->raster_block = static_cast<int>(v->NumberOr(out->raster_block));
  }
  if (const JsonValue* v = config.Find("fusion")) {
    out->inner_fusion = v->BoolOr(out->inner_fusion);
  }
  if (const JsonValue* v = config.Find("swizzle")) {
    out->swizzle = v->BoolOr(out->swizzle);
  }
  if (const JsonValue* v = config.Find("async")) {
    out->async_copies = v->BoolOr(out->async_copies);
  }
  return true;
}

void AppendTimingJson(std::ostringstream* out, const sim::KernelTiming& t) {
  (*out) << "\"feasible\":" << (t.feasible ? "true" : "false");
  if (!t.feasible) {
    (*out) << ",\"reason\":\"" << JsonEscape(t.reason) << "\"";
    return;
  }
  (*out) << ",\"cycles\":" << t.cycles << ",\"microseconds\":"
         << t.microseconds << ",\"tflops\":" << t.tflops
         << ",\"threadblocks_per_sm\":" << t.threadblocks_per_sm
         << ",\"batches\":" << t.batches;
}

obs::Counter& ServingCounter(const char* name) {
  return obs::Registry::Global().GetCounter(name);
}

}  // namespace

struct Server::Impl {
  ServerOptions options;

  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};  // interrupts poll() on Stop

  std::thread io_thread;
  std::thread fast_thread;
  std::thread slow_thread;

  std::mutex queue_mu;
  std::condition_variable fast_cv;
  std::condition_variable slow_cv;
  std::deque<Request> fast_queue;
  std::deque<Request> slow_queue;

  std::atomic<bool> stopping{false};
  std::atomic<uint64_t> served{0};
  bool started = false;

  std::mutex stop_mu;
  std::condition_variable stop_cv;

  // ---------------------------------------------------------------------
  // IO thread: accept connections, read frames, classify into lanes.
  // ---------------------------------------------------------------------

  void IoLoop() {
    std::vector<std::shared_ptr<Conn>> conns;
    while (!stopping.load(std::memory_order_relaxed)) {
      std::vector<pollfd> fds;
      fds.push_back({wake_pipe[0], POLLIN, 0});
      fds.push_back({listen_fd, POLLIN, 0});
      for (const auto& conn : conns) fds.push_back({conn->fd, POLLIN, 0});
      if (::poll(fds.data(), fds.size(), -1) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[0].revents != 0) break;  // woken by Stop
      if (fds[1].revents & POLLIN) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
          auto conn = std::make_shared<Conn>();
          conn->fd = fd;
          conns.push_back(std::move(conn));
          continue;  // re-poll with the new fd included
        }
      }
      for (size_t i = 2; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        std::shared_ptr<Conn>& conn = conns[i - 2];
        std::string payload;
        if (!ReadFrame(conn->fd, &payload)) {
          conns.erase(conns.begin() + static_cast<ptrdiff_t>(i - 2));
          break;  // indices shifted; re-poll
        }
        Dispatch(conn, payload);
      }
    }
  }

  void Dispatch(const std::shared_ptr<Conn>& conn, const std::string& payload) {
    ServingCounter("serving.requests").Increment();
    served.fetch_add(1, std::memory_order_relaxed);
    Request request;
    request.conn = conn;
    std::optional<JsonValue> body = ParseJson(payload);
    if (!body.has_value()) {
      conn->Send(ErrorResponse(0, "malformed JSON"));
      return;
    }
    request.body = std::move(*body);
    const JsonValue* id = request.body.Find("id");
    request.id = id == nullptr ? 0 : static_cast<int64_t>(id->NumberOr(0));
    const JsonValue* method = request.body.Find("method");
    request.method = method == nullptr ? "" : method->StringOr("");
    if (FastLane(request)) {
      ServingCounter("serving.fast_lane").Increment();
      std::lock_guard<std::mutex> lock(queue_mu);
      fast_queue.push_back(std::move(request));
      fast_cv.notify_one();
    } else {
      ServingCounter("serving.slow_lane").Increment();
      std::lock_guard<std::mutex> lock(queue_mu);
      slow_queue.push_back(std::move(request));
      slow_cv.notify_one();
    }
  }

  // Routing: anything that can be answered without compiling or
  // searching goes to the fast lane. The probes here are O(1) lookups —
  // never a compile.
  bool FastLane(const Request& request) {
    const std::string& m = request.method;
    if (m == "ping" || m == "stats" || m == "persist" || m == "load" ||
        m == "shutdown" || m.empty()) {
      return true;
    }
    if (m == "compile") {
      schedule::GemmOp op;
      schedule::ScheduleConfig config;
      std::string err;
      const JsonValue* cfg = request.body.Find("config");
      if (!ParseOpJson(request.body, &op, &err) || cfg == nullptr ||
          !ParseConfigJson(*cfg, &config, &err)) {
        return true;  // malformed: answer the error quickly
      }
      // Probe without counting (no LRU touch side effects beyond a hit):
      sim::KernelTiming timing;
      return sim::ProbeCachedTiming(op, config, options.spec,
                                    schedule::InlineOrder::kAfterPipelining,
                                    &timing);
    }
    if (m == "tune") {
      schedule::GemmOp op;
      std::string err;
      if (!ParseOpJson(request.body, &op, &err)) return true;
      const JsonValue* force = request.body.Find("force");
      if (force != nullptr && force->BoolOr(false)) return false;
      return tuner::TuningStore::Global().Get(tuner::OpKey(op)).has_value();
    }
    return false;  // profile and anything unknown-but-heavy
  }

  // ---------------------------------------------------------------------
  // Fast lane.
  // ---------------------------------------------------------------------

  void FastLoop() {
    while (true) {
      Request request;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        fast_cv.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) ||
                 !fast_queue.empty();
        });
        if (fast_queue.empty()) return;  // stopping and drained
        request = std::move(fast_queue.front());
        fast_queue.pop_front();
      }
      request.conn->Send(HandleFast(request));
      if (request.method == "shutdown") {
        RequestStop();
        return;
      }
    }
  }

  std::string HandleFast(const Request& request) {
    const std::string& m = request.method;
    if (m == "ping") {
      std::ostringstream out;
      out << "{\"id\":" << request.id << ",\"ok\":true,\"pong\":true}";
      return out.str();
    }
    if (m == "shutdown") {
      std::ostringstream out;
      out << "{\"id\":" << request.id << ",\"ok\":true,\"stopping\":true}";
      return out.str();
    }
    if (m == "stats") return HandleStats(request);
    if (m == "persist" || m == "load") return HandlePersist(request);
    if (m == "compile") return HandleCompile(request, /*probe_only=*/true);
    if (m == "tune") return HandleStoredTune(request);
    return ErrorResponse(request.id, "unknown method \"" + m + "\"");
  }

  std::string HandleStats(const Request& request) {
    sim::SimCacheStats stats = sim::GetSimCacheStats();
    std::ostringstream out;
    out.precision(17);
    out << "{\"id\":" << request.id << ",\"ok\":true"
        << ",\"timing_hits\":" << stats.hits
        << ",\"timing_misses\":" << stats.misses
        << ",\"timing_entries\":" << stats.entries
        << ",\"program_entries\":" << stats.program_entries
        << ",\"program_skeletons\":" << stats.program_skeletons
        << ",\"resident_bytes\":" << stats.resident_bytes
        << ",\"budget_bytes\":" << stats.budget_bytes
        << ",\"evictions\":" << stats.evictions
        << ",\"disk_hits\":" << stats.disk_hits
        << ",\"disk_misses\":" << stats.disk_misses
        << ",\"disk_load_bytes\":" << stats.disk_load_bytes
        << ",\"stored_tunings\":" << tuner::TuningStore::Global().Size()
        << ",\"requests\":" << served.load(std::memory_order_relaxed) << "}";
    return out.str();
  }

  std::string HandlePersist(const Request& request) {
    std::string path = options.cache_path;
    if (const JsonValue* p = request.body.Find("path")) {
      path = p->StringOr(path);
    }
    if (path.empty()) path = DefaultCachePath();
    PersistStats stats = request.method == "persist"
                             ? SaveCache(path, options.spec)
                             : LoadCache(path, options.spec);
    if (!stats.ok) return ErrorResponse(request.id, stats.error);
    std::ostringstream out;
    out << "{\"id\":" << request.id << ",\"ok\":true,\"path\":\""
        << JsonEscape(path) << "\",\"bytes\":" << stats.bytes
        << ",\"timings\":" << stats.timings
        << ",\"programs\":" << stats.programs
        << ",\"skeletons\":" << stats.skeletons
        << ",\"tunings\":" << stats.tunings
        << ",\"skipped\":" << stats.skipped << "}";
    return out.str();
  }

  // Warm-restart tune: the store already holds a finished search for
  // this exact op_key; answer from it in microseconds.
  std::string HandleStoredTune(const Request& request) {
    schedule::GemmOp op;
    std::string err;
    if (!ParseOpJson(request.body, &op, &err)) {
      return ErrorResponse(request.id, err);
    }
    std::optional<tuner::StoredTuning> stored =
        tuner::TuningStore::Global().Get(tuner::OpKey(op));
    if (!stored.has_value()) {
      // Raced with a concurrent store clear; degrade to an error the
      // client can retry with "force".
      return ErrorResponse(request.id, "tuning no longer stored");
    }
    std::optional<tuner::StoredTrial> best = stored->Best();
    if (!best.has_value()) {
      return ErrorResponse(request.id, "stored tuning has no feasible trial");
    }
    std::ostringstream out;
    out.precision(17);
    out << "{\"id\":" << request.id << ",\"ok\":true,\"op_key\":\""
        << JsonEscape(stored->op_key) << "\",\"source\":\"store\""
        << ",\"best_config\":\"" << JsonEscape(best->config.ToString())
        << "\",\"best_cycles\":" << best->cycles
        << ",\"trials\":" << stored->trials.size() << "}";
    return out.str();
  }

  std::string HandleCompile(const Request& request, bool probe_only) {
    schedule::GemmOp op;
    schedule::ScheduleConfig config;
    std::string err;
    const JsonValue* cfg = request.body.Find("config");
    if (!ParseOpJson(request.body, &op, &err)) {
      return ErrorResponse(request.id, err);
    }
    if (cfg == nullptr || !ParseConfigJson(*cfg, &config, &err)) {
      return ErrorResponse(
          request.id, err.empty() ? "compile needs a \"config\" object" : err);
    }
    sim::KernelTiming timing;
    if (!sim::ProbeCachedTiming(op, config, options.spec,
                                schedule::InlineOrder::kAfterPipelining,
                                &timing)) {
      if (probe_only) {
        // Routing raced an eviction; the slow path below is still correct,
        // just slower than the lane promised.
        ServingCounter("serving.fast_lane_fallback").Increment();
      }
      timing = sim::CachedCompileAndSimulate(op, config, options.spec);
    }
    std::ostringstream out;
    out.precision(17);
    out << "{\"id\":" << request.id << ",\"ok\":true,";
    AppendTimingJson(&out, timing);
    out << "}";
    return out.str();
  }

  // ---------------------------------------------------------------------
  // Slow lane: drain-and-batch.
  // ---------------------------------------------------------------------

  void SlowLoop() {
    sim::ReplayArena arena;
    while (true) {
      std::vector<Request> batch;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        slow_cv.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) ||
                 !slow_queue.empty();
        });
        if (slow_queue.empty()) return;  // stopping and drained
        while (!slow_queue.empty()) {
          batch.push_back(std::move(slow_queue.front()));
          slow_queue.pop_front();
        }
      }
      HandleSlowBatch(batch, &arena);
    }
  }

  void HandleSlowBatch(std::vector<Request>& batch, sim::ReplayArena* arena) {
    // Phase 1 for every compile/profile request in the round (program
    // cache deduplicates identical triples), then one batched phase-2
    // replay — programs sharing a skeleton run back-to-back off the
    // arena's reused layout tables.
    struct Pending {
      size_t request_index;
      schedule::GemmOp op;
      schedule::ScheduleConfig config;
      std::shared_ptr<const sim::SimProgram> program;
    };
    std::vector<Pending> replays;
    for (size_t i = 0; i < batch.size(); ++i) {
      Request& request = batch[i];
      if (request.method != "compile" && request.method != "profile") {
        continue;
      }
      schedule::GemmOp op;
      schedule::ScheduleConfig config;
      std::string err;
      const JsonValue* cfg = request.body.Find("config");
      if (!ParseOpJson(request.body, &op, &err) || cfg == nullptr ||
          !ParseConfigJson(*cfg, &config, &err)) {
        request.conn->Send(ErrorResponse(
            request.id, err.empty() ? "need op fields and \"config\"" : err));
        request.method.clear();  // answered
        continue;
      }
      Pending pending;
      pending.request_index = i;
      pending.op = op;
      pending.config = config;
      pending.program = sim::CachedSimProgram(op, config, options.spec);
      replays.push_back(std::move(pending));
    }
    if (!replays.empty()) {
      ServingCounter("serving.batched_replays").Add(replays.size());
      std::vector<const sim::SimProgram*> programs;
      programs.reserve(replays.size());
      for (const Pending& pending : replays) {
        programs.push_back(pending.program.get());
      }
      std::vector<sim::KernelTiming> timings =
          sim::ReplaySimProgramBatch(programs, arena);
      for (size_t i = 0; i < replays.size(); ++i) {
        Request& request = batch[replays[i].request_index];
        // Warm the timing layer so the next identical request is a
        // fast-lane probe hit (bit-identical: batched replay equals
        // individual replay).
        sim::InsertCachedTiming(
            sim::SimCacheKey(replays[i].op, replays[i].config, options.spec,
                             schedule::InlineOrder::kAfterPipelining),
            timings[i]);
        std::ostringstream out;
        out.precision(17);
        out << "{\"id\":" << request.id << ",\"ok\":true,";
        AppendTimingJson(&out, timings[i]);
        if (request.method == "profile" && timings[i].feasible) {
          sim::KernelPmu pmu;
          sim::ReplaySimProgram(*replays[i].program, arena, &pmu);
          out << ",\"pmu\":" << sim::PmuToJson(pmu);
        }
        out << "}";
        request.conn->Send(out.str());
        request.method.clear();  // answered
      }
    }
    for (Request& request : batch) {
      if (request.method.empty()) continue;
      if (request.method == "tune") {
        request.conn->Send(HandleTune(request));
      } else {
        request.conn->Send(
            ErrorResponse(request.id, "unknown method \"" + request.method + "\""));
      }
    }
  }

  std::string HandleTune(const Request& request) {
    schedule::GemmOp op;
    std::string err;
    if (!ParseOpJson(request.body, &op, &err)) {
      return ErrorResponse(request.id, err);
    }
    size_t trials = options.default_trials;
    if (const JsonValue* t = request.body.Find("trials")) {
      trials = static_cast<size_t>(t->NumberOr(static_cast<double>(trials)));
    }
    bool warm = options.warm_start;
    if (const JsonValue* w = request.body.Find("warm")) {
      warm = w->BoolOr(warm);
    }
    tuner::TuningTask task =
        tuner::MakeSimulatorTask(op, options.spec, options.space);
    if (task.space.empty()) {
      return ErrorResponse(request.id, "empty schedule space for op");
    }
    tuner::XgbOptions xgb;
    xgb.pretrain_with_analytical = true;
    xgb.seed = options.seed;
    tuner::WarmStart warm_start;
    if (warm) {
      warm_start = tuner::FindWarmStart(task, tuner::TuningStore::Global());
      xgb.warm_seeds = warm_start.seeds;
      if (!warm_start.seeds.empty()) {
        ServingCounter("serving.warm_starts").Increment();
      }
    }
    tuner::TuningResult result = tuner::XgbTuner(task, trials, xgb);
    tuner::StoreTuning(task, result, tuner::TuningStore::Global());
    size_t best = result.BestIndex(task);
    if (best >= task.space.size()) {
      return ErrorResponse(request.id, "no feasible schedule found");
    }
    double best_cycles = result.BestInFirstK(result.trials.size());
    std::ostringstream out;
    out.precision(17);
    out << "{\"id\":" << request.id << ",\"ok\":true,\"op_key\":\""
        << JsonEscape(tuner::OpKey(op)) << "\",\"source\":\"search\""
        << ",\"best_config\":\"" << JsonEscape(task.space[best].ToString())
        << "\",\"best_cycles\":" << best_cycles
        << ",\"trials\":" << result.trials.size() << ",\"warm_source\":\""
        << JsonEscape(warm_start.source_op_key) << "\",\"warm_seeds\":"
        << warm_start.seeds.size() << "}";
    return out.str();
  }

  // ---------------------------------------------------------------------
  // Lifecycle.
  // ---------------------------------------------------------------------

  void RequestStop() {
    if (stopping.exchange(true)) return;
    // Wake the poll loop and both lanes.
    if (wake_pipe[1] >= 0) {
      char byte = 'x';
      ssize_t ignored = ::write(wake_pipe[1], &byte, 1);
      (void)ignored;
    }
    fast_cv.notify_all();
    slow_cv.notify_all();
    std::lock_guard<std::mutex> lock(stop_mu);
    stop_cv.notify_all();
  }
};

Server::Server(ServerOptions options) : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
  if (impl_->options.cache_path.empty()) {
    impl_->options.cache_path = DefaultCachePath();
  }
}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  Impl& impl = *impl_;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (impl.started) return fail("already started");
  if (impl.options.socket_path.empty()) return fail("empty socket path");

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (impl.options.socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long for AF_UNIX");
  }
  std::strncpy(addr.sun_path, impl.options.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  // A dead peer mid-write must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  impl.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl.listen_fd < 0) return fail("socket() failed");
  ::unlink(impl.options.socket_path.c_str());  // stale socket from a crash
  if (::bind(impl.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    return fail("bind(" + impl.options.socket_path + ") failed");
  }
  if (::listen(impl.listen_fd, 64) < 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    return fail("listen() failed");
  }
  if (::pipe(impl.wake_pipe) < 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    return fail("pipe() failed");
  }

  // Warm-start the process from the persisted cache when one matches.
  if (!impl.options.cache_path.empty()) {
    LoadCache(impl.options.cache_path, impl.options.spec);  // best-effort
  }

  impl.io_thread = std::thread([&impl] { impl.IoLoop(); });
  impl.fast_thread = std::thread([&impl] { impl.FastLoop(); });
  impl.slow_thread = std::thread([&impl] { impl.SlowLoop(); });
  impl.started = true;
  return true;
}

void Server::Wait() {
  Impl& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.stop_mu);
  impl.stop_cv.wait(
      lock, [&impl] { return impl.stopping.load(std::memory_order_relaxed); });
}

void Server::Stop() {
  Impl& impl = *impl_;
  if (!impl.started) return;
  impl.RequestStop();
  if (impl.io_thread.joinable()) impl.io_thread.join();
  if (impl.fast_thread.joinable()) impl.fast_thread.join();
  if (impl.slow_thread.joinable()) impl.slow_thread.join();
  if (impl.listen_fd >= 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
  }
  for (int& fd : impl.wake_pipe) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ::unlink(impl.options.socket_path.c_str());
  if (impl.options.persist_on_shutdown && !impl.options.cache_path.empty()) {
    SaveCache(impl.options.cache_path, impl.options.spec);  // best-effort
  }
  impl.started = false;
}

const ServerOptions& Server::options() const { return impl_->options; }

uint64_t Server::requests_served() const {
  return impl_->served.load(std::memory_order_relaxed);
}

}  // namespace serving
}  // namespace alcop
