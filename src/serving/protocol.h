// alcopd wire protocol: length-prefixed JSON over a unix-domain socket.
//
// Every message — request or response — is one frame:
//
//   u32 payload length (host-endian, capped at kMaxFrameBytes) | payload
//
// and every payload is one JSON object. Requests carry an integer "id"
// and a "method"; responses echo the id, so a client may pipeline many
// requests on one connection and match completions out of order (the
// open-loop latency bench does exactly that). Methods:
//
//   ping                       liveness probe
//   stats                      cache + tuning-store counters
//   compile                    op+config -> KernelTiming (cache-routed)
//   profile                    compile plus PMU counters
//   tune                       search the schedule space (warm-started)
//   persist / load             save/load the on-disk cache
//   shutdown                   stop the daemon
//
// Request fields: op as {"family","batch","m","n","k"}, an explicit
// config as {"tb":[m,n,k],"warp":[m,n,k],"smem","reg","split_k",
// "raster","fusion","swizzle","async"} (all but "tb" optional), tune
// takes "trials" and "warm" (default true). Responses are
// {"id":..,"ok":true,...} or {"id":..,"ok":false,"error":"..."}.
//
// This header also hosts the minimal JSON value parser the daemon and
// client share. It is deliberately small (objects, arrays, strings
// without escapes beyond \" and \\, doubles, bools, null) — enough for
// the protocol's own grammar, not a general-purpose parser.
#ifndef ALCOP_SERVING_PROTOCOL_H_
#define ALCOP_SERVING_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace alcop {
namespace serving {

// Upper bound on one frame's payload: large enough for any tune response
// (a few KB), small enough that a corrupt length prefix cannot make the
// reader allocate gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 16u * 1024 * 1024;

// Blocking frame IO on a connected socket. Both return false on EOF,
// error, or an over-sized length prefix (the connection should then be
// closed). Short reads/writes are retried internally; EINTR is handled.
bool ReadFrame(int fd, std::string* payload);
bool WriteFrame(int fd, const std::string& payload);

// ---------------------------------------------------------------------------
// JSON values.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  // Object member lookup (nullptr when absent or not an object).
  const JsonValue* Find(const std::string& key) const;
  // Typed accessors with defaults (tolerant: wrong kind => default).
  double NumberOr(double fallback) const;
  bool BoolOr(bool fallback) const;
  const std::string& StringOr(const std::string& fallback) const;
};

// Parses exactly one JSON document (trailing whitespace allowed);
// nullopt on any syntax error.
std::optional<JsonValue> ParseJson(const std::string& text);

// Escapes a string for embedding in a JSON literal (quotes, backslash,
// control characters).
std::string JsonEscape(const std::string& s);

}  // namespace serving
}  // namespace alcop

#endif  // ALCOP_SERVING_PROTOCOL_H_
