// Minimal synchronous client for the alcopd protocol. Used by the CLI's
// `client` subcommand and the serving benchmark; a request is one frame
// out, one frame back (Call), or the two halves separately (Send/Recv)
// when the caller pipelines several requests on one connection.
#ifndef ALCOP_SERVING_CLIENT_H_
#define ALCOP_SERVING_CLIENT_H_

#include <optional>
#include <string>

#include "serving/protocol.h"

namespace alcop {
namespace serving {

class Client {
 public:
  Client() = default;
  ~Client();  // closes the socket

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects to the daemon's unix socket. False (with `error` filled) on
  // failure.
  bool Connect(const std::string& socket_path, std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // One frame out / one frame back. Returns the parsed response, or
  // nullopt on IO failure or unparseable payload. Responses are matched
  // positionally — fine for the synchronous Call, Recv after pipelined
  // Sends must match ids itself. The *Raw variants hand back the payload
  // text verbatim (the CLI prints it without re-serializing).
  bool Send(const std::string& payload);
  std::optional<std::string> RecvRaw();
  std::optional<JsonValue> Recv();
  std::optional<JsonValue> Call(const std::string& payload);
  std::optional<std::string> CallRaw(const std::string& payload);

 private:
  int fd_ = -1;
};

}  // namespace serving
}  // namespace alcop

#endif  // ALCOP_SERVING_CLIENT_H_
