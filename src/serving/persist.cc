#include "serving/persist.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/compile.h"
#include "sim/sim_cache.h"
#include "tuner/records.h"

namespace alcop {
namespace serving {

namespace {

constexpr uint64_t kFnv64Offset = 1469598103934665603ull;
constexpr uint64_t kFnv64Prime = 1099511628211ull;
constexpr uint32_t kFnv32Offset = 2166136261u;
constexpr uint32_t kFnv32Prime = 16777619u;

uint32_t Fnv32(const char* data, size_t size) {
  uint32_t hash = kFnv32Offset;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<uint8_t>(data[i]);
    hash *= kFnv32Prime;
  }
  return hash;
}

class Fingerprinter {
 public:
  void Add(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    AddBits(bits);
  }
  void Add(int64_t v) { AddBits(static_cast<uint64_t>(v)); }
  void Add(int v) { AddBits(static_cast<uint64_t>(v)); }
  void Add(bool v) { AddBits(v ? 1 : 0); }
  uint64_t hash() const { return hash_; }

 private:
  void AddBits(uint64_t bits) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (bits >> (8 * i)) & 0xff;
      hash_ *= kFnv64Prime;
    }
  }
  uint64_t hash_ = kFnv64Offset;
};

// Record types (one u8 leading each frame payload).
enum RecordType : uint8_t {
  kSkeletonRecord = 1,
  kProgramRecord = 2,
  kTimingRecord = 3,
  kTuningRecord = 4,
};

// ---------------------------------------------------------------------------
// Byte-buffer writer/reader. The reader bounds-checks every access and
// reports failure instead of reading past the payload, which is what
// makes corrupt frames skippable rather than fatal.
// ---------------------------------------------------------------------------

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void Raw(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  const std::string& buf() const { return buf_; }

 private:
  std::string buf_;
};

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I32(int32_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t size = 0;
    if (!U32(&size) || size > size_ - pos_) return false;
    s->assign(data_ + pos_, size);
    pos_ += size;
    return true;
  }
  bool Raw(void* out, size_t size) {
    if (size > size_ - pos_) return false;
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendFrame(std::string* out, const Writer& payload) {
  const std::string& body = payload.buf();
  uint32_t len = static_cast<uint32_t>(body.size());
  uint32_t checksum = Fnv32(body.data(), body.size());
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out->append(body);
}

// ---------------------------------------------------------------------------
// Field-wise record serializers. Structs with padding (MicroOpGroup,
// SimProgram, KernelTiming) are never memcpy'd whole; tightly packed POD
// arrays (MicroOp = 8 bytes, MicroOpOperands = 5 doubles) are, with a
// static_assert guarding the layout.
// ---------------------------------------------------------------------------

static_assert(sizeof(sim::MicroOp) == 8, "persist layout");
static_assert(sizeof(sim::MicroOpOperands) == 5 * sizeof(double),
              "persist layout");

void WriteConfig(Writer* w, const schedule::ScheduleConfig& c) {
  w->I64(c.tile.tb_m);
  w->I64(c.tile.tb_n);
  w->I64(c.tile.tb_k);
  w->I64(c.tile.warp_m);
  w->I64(c.tile.warp_n);
  w->I64(c.tile.warp_k);
  w->I32(c.smem_stages);
  w->I32(c.reg_stages);
  w->I32(c.split_k);
  w->I32(c.raster_block);
  w->U8(c.inner_fusion ? 1 : 0);
  w->U8(c.swizzle ? 1 : 0);
  w->U8(c.async_copies ? 1 : 0);
}

bool ReadConfig(Reader* r, schedule::ScheduleConfig* c) {
  uint8_t fusion = 0, swizzle = 0, async = 0;
  bool ok = r->I64(&c->tile.tb_m) && r->I64(&c->tile.tb_n) &&
            r->I64(&c->tile.tb_k) && r->I64(&c->tile.warp_m) &&
            r->I64(&c->tile.warp_n) && r->I64(&c->tile.warp_k) &&
            r->I32(&c->smem_stages) && r->I32(&c->reg_stages) &&
            r->I32(&c->split_k) && r->I32(&c->raster_block) &&
            r->U8(&fusion) && r->U8(&swizzle) && r->U8(&async);
  if (!ok) return false;
  c->inner_fusion = fusion != 0;
  c->swizzle = swizzle != 0;
  c->async_copies = async != 0;
  return true;
}

void WriteOp(Writer* w, const schedule::GemmOp& op) {
  w->Str(op.name);
  w->I32(static_cast<int32_t>(op.family));
  w->I64(op.batch);
  w->I64(op.m);
  w->I64(op.n);
  w->I64(op.k);
  w->I32(static_cast<int32_t>(op.a_producer_op));
  w->F64(op.a_producer_param);
  w->I32(static_cast<int32_t>(op.epilogue_op));
  w->F64(op.epilogue_param);
}

bool ReadOp(Reader* r, schedule::GemmOp* op) {
  int32_t family = 0, producer = 0, epilogue = 0;
  bool ok = r->Str(&op->name) && r->I32(&family) && r->I64(&op->batch) &&
            r->I64(&op->m) && r->I64(&op->n) && r->I64(&op->k) &&
            r->I32(&producer) && r->F64(&op->a_producer_param) &&
            r->I32(&epilogue) && r->F64(&op->epilogue_param);
  if (!ok) return false;
  op->family = static_cast<schedule::OpFamily>(family);
  op->a_producer_op = static_cast<ir::EwiseOp>(producer);
  op->epilogue_op = static_cast<ir::EwiseOp>(epilogue);
  return true;
}

void WriteSkeleton(Writer* w, uint64_t id, const sim::MicroOpSkeleton& s) {
  w->U8(kSkeletonRecord);
  w->U64(id);
  w->I32(s.num_warps);
  w->U8(s.blocking_async ? 1 : 0);
  w->U64(s.hash);
  w->U32(static_cast<uint32_t>(s.ops.size()));
  w->Raw(s.ops.data(), s.ops.size() * sizeof(sim::MicroOp));
  w->U32(static_cast<uint32_t>(s.warp_begin.size()));
  w->Raw(s.warp_begin.data(), s.warp_begin.size() * sizeof(uint32_t));
  w->U32(static_cast<uint32_t>(s.groups.size()));
  for (const sim::MicroOpGroup& g : s.groups) {
    w->I64(g.stages);
    w->U8(g.tb_scope ? 1 : 0);
    w->I64(g.max_commits);
  }
}

bool ReadSkeleton(Reader* r, uint64_t* id, sim::MicroOpSkeleton* s) {
  uint8_t blocking = 0;
  uint32_t ops = 0;
  if (!(r->U64(id) && r->I32(&s->num_warps) && r->U8(&blocking) &&
        r->U64(&s->hash) && r->U32(&ops))) {
    return false;
  }
  s->blocking_async = blocking != 0;
  s->ops.resize(ops);
  if (!r->Raw(s->ops.data(), ops * sizeof(sim::MicroOp))) return false;
  uint32_t warps = 0;
  if (!r->U32(&warps)) return false;
  s->warp_begin.resize(warps);
  if (!r->Raw(s->warp_begin.data(), warps * sizeof(uint32_t))) return false;
  uint32_t groups = 0;
  if (!r->U32(&groups)) return false;
  s->groups.resize(groups);
  for (sim::MicroOpGroup& g : s->groups) {
    uint8_t tb = 0;
    if (!(r->I64(&g.stages) && r->U8(&tb) && r->I64(&g.max_commits))) {
      return false;
    }
    g.tb_scope = tb != 0;
  }
  // A skeleton whose recomputed structural hash disagrees with the stored
  // one is corrupt in a way the frame checksum happened to miss (or was
  // written by a different hash function); treat as unparseable.
  return sim::SkeletonHash(*s) == s->hash;
}

void WriteProgram(Writer* w, const std::string& key, uint64_t skeleton_id,
                  const sim::SimProgram& p) {
  w->U8(kProgramRecord);
  w->Str(key);
  w->U64(skeleton_id);  // 0 = program carries no skeleton
  w->U8(p.feasible ? 1 : 0);
  w->Str(p.reason);
  w->U32(static_cast<uint32_t>(p.program.pool.size()));
  w->Raw(p.program.pool.data(),
         p.program.pool.size() * sizeof(sim::MicroOpOperands));
  w->F64(p.program.sync_overhead_cycles);
  w->F64(p.program.half_sync_overhead_cycles);
  w->I32(p.num_warps);
  w->I32(p.threadblocks_per_sm);
  w->I32(p.num_sms);
  w->I64(p.total_threadblocks);
  w->I64(p.batches);
  w->I32(p.max_warps_per_sm);
  w->F64(p.llc_bw_bytes_per_cycle);
  w->F64(p.dram_bw_bytes_per_cycle);
  w->F64(p.dram_write_bw_bytes_per_cycle);
  w->F64(p.launch_overhead_cycles);
  w->U8(p.has_ewise ? 1 : 0);
  w->F64(p.ewise_cycles);
  w->U8(p.has_splitk ? 1 : 0);
  w->F64(p.splitk_cycles);
  w->F64(p.clock_ghz);
  w->I64(p.flops);
}

bool ReadProgram(Reader* r, std::string* key, uint64_t* skeleton_id,
                 sim::SimProgram* p) {
  uint8_t feasible = 0, has_ewise = 0, has_splitk = 0;
  uint32_t pool = 0;
  if (!(r->Str(key) && r->U64(skeleton_id) && r->U8(&feasible) &&
        r->Str(&p->reason) && r->U32(&pool))) {
    return false;
  }
  p->feasible = feasible != 0;
  p->program.pool.resize(pool);
  if (!r->Raw(p->program.pool.data(), pool * sizeof(sim::MicroOpOperands))) {
    return false;
  }
  bool ok = r->F64(&p->program.sync_overhead_cycles) &&
            r->F64(&p->program.half_sync_overhead_cycles) &&
            r->I32(&p->num_warps) && r->I32(&p->threadblocks_per_sm) &&
            r->I32(&p->num_sms) && r->I64(&p->total_threadblocks) &&
            r->I64(&p->batches) && r->I32(&p->max_warps_per_sm) &&
            r->F64(&p->llc_bw_bytes_per_cycle) &&
            r->F64(&p->dram_bw_bytes_per_cycle) &&
            r->F64(&p->dram_write_bw_bytes_per_cycle) &&
            r->F64(&p->launch_overhead_cycles) && r->U8(&has_ewise) &&
            r->F64(&p->ewise_cycles) && r->U8(&has_splitk) &&
            r->F64(&p->splitk_cycles) && r->F64(&p->clock_ghz) &&
            r->I64(&p->flops);
  if (!ok) return false;
  p->has_ewise = has_ewise != 0;
  p->has_splitk = has_splitk != 0;
  return true;
}

void WriteTiming(Writer* w, const std::string& key,
                 const sim::KernelTiming& t) {
  w->U8(kTimingRecord);
  w->Str(key);
  w->U8(t.feasible ? 1 : 0);
  w->Str(t.reason);
  w->F64(t.cycles);
  w->F64(t.microseconds);
  w->F64(t.tflops);
  w->I32(t.threadblocks_per_sm);
  w->I64(t.batches);
  w->F64(t.batch_cycles);
}

bool ReadTiming(Reader* r, std::string* key, sim::KernelTiming* t) {
  uint8_t feasible = 0;
  bool ok = r->Str(key) && r->U8(&feasible) && r->Str(&t->reason) &&
            r->F64(&t->cycles) && r->F64(&t->microseconds) &&
            r->F64(&t->tflops) && r->I32(&t->threadblocks_per_sm) &&
            r->I64(&t->batches) && r->F64(&t->batch_cycles);
  if (!ok) return false;
  t->feasible = feasible != 0;
  return true;
}

void WriteTuning(Writer* w, const tuner::StoredTuning& tuning) {
  w->U8(kTuningRecord);
  w->Str(tuning.op_key);
  WriteOp(w, tuning.op);
  w->U32(static_cast<uint32_t>(tuning.signature.size()));
  w->Raw(tuning.signature.data(), tuning.signature.size() * sizeof(double));
  w->U32(static_cast<uint32_t>(tuning.trials.size()));
  for (const tuner::StoredTrial& trial : tuning.trials) {
    WriteConfig(w, trial.config);
    w->F64(trial.cycles);
  }
}

bool ReadTuning(Reader* r, tuner::StoredTuning* tuning) {
  uint32_t dims = 0;
  if (!(r->Str(&tuning->op_key) && ReadOp(r, &tuning->op) && r->U32(&dims))) {
    return false;
  }
  tuning->signature.resize(dims);
  if (!r->Raw(tuning->signature.data(), dims * sizeof(double))) return false;
  uint32_t trials = 0;
  if (!r->U32(&trials)) return false;
  tuning->trials.resize(trials);
  for (tuner::StoredTrial& trial : tuning->trials) {
    if (!(ReadConfig(r, &trial.config) && r->F64(&trial.cycles))) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t SpecFingerprint(const target::GpuSpec& spec) {
  Fingerprinter fp;
  fp.Add(spec.num_sms);
  fp.Add(spec.clock_ghz);
  fp.Add(spec.tc_flops_per_sm_per_cycle);
  fp.Add(spec.lds_bytes_per_cycle_per_sm);
  fp.Add(spec.bank_conflict_factor);
  fp.Add(spec.smem_latency_cycles);
  fp.Add(spec.copy_issue_bytes_per_cycle);
  fp.Add(spec.llc_bytes);
  fp.Add(spec.llc_bw_bytes_per_cycle);
  fp.Add(spec.llc_latency_cycles);
  fp.Add(spec.dram_bw_bytes_per_cycle);
  fp.Add(spec.dram_write_bw_bytes_per_cycle);
  fp.Add(spec.dram_latency_cycles);
  fp.Add(spec.smem_bytes_per_sm);
  fp.Add(spec.regfile_bytes_per_sm);
  fp.Add(spec.max_warps_per_sm);
  fp.Add(spec.sync_overhead_cycles);
  fp.Add(spec.launch_overhead_cycles);
  fp.Add(spec.has_cp_async);
  return fp.hash();
}

uint64_t FittedConstantsFingerprint(const target::GpuSpec& spec) {
  const target::ModelFit& fit = spec.model_fit;
  Fingerprinter fp;
  fp.Add(fit.t_compute.scale);
  fp.Add(fit.t_compute.bias_cycles);
  fp.Add(fit.t_compute.fitted);
  fp.Add(fit.t_reg_load.scale);
  fp.Add(fit.t_reg_load.bias_cycles);
  fp.Add(fit.t_reg_load.fitted);
  fp.Add(fit.iter_overhead_cycles);
  fp.Add(fit.dep_latency_scale);
  fp.Add(fit.fill_scale);
  fp.Add(fit.inner_latency_cycles);
  fp.Add(fit.composition_fitted);
  return fp.hash();
}

std::string DefaultCachePath() {
  const char* dir = std::getenv("ALCOP_CACHE_DIR");
  if (dir == nullptr || dir[0] == '\0') return "";
  return std::string(dir) + "/sim_cache.alcp";
}

PersistStats SaveCache(const std::string& path, const target::GpuSpec& spec) {
  PersistStats stats;
  if (path.empty()) {
    stats.error = "empty cache path (is ALCOP_CACHE_DIR set?)";
    return stats;
  }

  std::string out;
  const uint32_t magic = kPersistMagic;
  const uint32_t version = kPersistVersion;
  const uint64_t spec_fp = SpecFingerprint(spec);
  const uint64_t fit_fp = FittedConstantsFingerprint(spec);
  out.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.append(reinterpret_cast<const char*>(&version), sizeof(version));
  out.append(reinterpret_cast<const char*>(&spec_fp), sizeof(spec_fp));
  out.append(reinterpret_cast<const char*>(&fit_fp), sizeof(fit_fp));

  // Skeletons first (programs reference them by file-local id), each
  // distinct interned skeleton exactly once.
  auto programs = sim::SnapshotCachedPrograms();
  std::unordered_map<const sim::MicroOpSkeleton*, uint64_t> skeleton_ids;
  for (const auto& [key, program] : programs) {
    const sim::MicroOpSkeleton* skeleton = program->program.skeleton.get();
    if (skeleton == nullptr || skeleton_ids.count(skeleton) != 0) continue;
    const uint64_t id = skeleton_ids.size() + 1;
    skeleton_ids.emplace(skeleton, id);
    Writer w;
    WriteSkeleton(&w, id, *skeleton);
    AppendFrame(&out, w);
    ++stats.skeletons;
  }
  for (const auto& [key, program] : programs) {
    const sim::MicroOpSkeleton* skeleton = program->program.skeleton.get();
    Writer w;
    WriteProgram(&w, key,
                 skeleton == nullptr ? 0 : skeleton_ids.at(skeleton),
                 *program);
    AppendFrame(&out, w);
    ++stats.programs;
  }
  for (const auto& [key, timing] : sim::SnapshotCachedTimings()) {
    Writer w;
    WriteTiming(&w, key, timing);
    AppendFrame(&out, w);
    ++stats.timings;
  }
  for (const tuner::StoredTuning& tuning : tuner::TuningStore::Global().Snapshot()) {
    Writer w;
    WriteTuning(&w, tuning);
    AppendFrame(&out, w);
    ++stats.tunings;
  }

  // Atomic write-then-rename: a crash mid-save leaves any previous file
  // intact, and readers only ever see complete files.
  std::error_code ec;
  std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      stats.error = "cannot open " + tmp + " for writing";
      return stats;
    }
    file.write(out.data(), static_cast<std::streamsize>(out.size()));
    if (!file) {
      stats.error = "short write to " + tmp;
      return stats;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    stats.error = "rename to " + path + " failed";
    return stats;
  }
  stats.bytes = out.size();
  stats.ok = true;
  return stats;
}

PersistStats LoadCache(const std::string& path, const target::GpuSpec& spec) {
  PersistStats stats;
  if (path.empty()) {
    stats.error = "empty cache path (is ALCOP_CACHE_DIR set?)";
    sim::AddSimCacheDiskStats(0, 1, 0);
    return stats;
  }
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    stats.error = "cannot open " + path;
    sim::AddSimCacheDiskStats(0, 1, 0);
    return stats;
  }
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());

  constexpr size_t kHeaderBytes = 2 * sizeof(uint32_t) + 2 * sizeof(uint64_t);
  if (data.size() < kHeaderBytes) {
    stats.error = "truncated header";
    sim::AddSimCacheDiskStats(0, 1, 0);
    return stats;
  }
  uint32_t magic = 0, version = 0;
  uint64_t spec_fp = 0, fit_fp = 0;
  std::memcpy(&magic, data.data(), sizeof(magic));
  std::memcpy(&version, data.data() + 4, sizeof(version));
  std::memcpy(&spec_fp, data.data() + 8, sizeof(spec_fp));
  std::memcpy(&fit_fp, data.data() + 16, sizeof(fit_fp));
  if (magic != kPersistMagic) {
    stats.error = "bad magic (not an ALCOP cache file)";
    sim::AddSimCacheDiskStats(0, 1, 0);
    return stats;
  }
  if (version != kPersistVersion) {
    stats.error = "schema version mismatch (file " + std::to_string(version) +
                  ", expected " + std::to_string(kPersistVersion) + ")";
    sim::AddSimCacheDiskStats(0, 1, 0);
    return stats;
  }
  if (spec_fp != SpecFingerprint(spec)) {
    stats.error = "GpuSpec fingerprint mismatch (cache built for a different device model)";
    sim::AddSimCacheDiskStats(0, 1, 0);
    return stats;
  }
  if (fit_fp != FittedConstantsFingerprint(spec)) {
    stats.error = "fitted-constants fingerprint mismatch (model was re-calibrated)";
    sim::AddSimCacheDiskStats(0, 1, 0);
    return stats;
  }

  std::unordered_map<uint64_t, std::shared_ptr<const sim::MicroOpSkeleton>>
      skeletons;
  size_t pos = kHeaderBytes;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      ++stats.skipped;  // torn tail
      break;
    }
    uint32_t len = 0, checksum = 0;
    std::memcpy(&len, data.data() + pos, sizeof(len));
    std::memcpy(&checksum, data.data() + pos + 4, sizeof(checksum));
    if (len > data.size() - pos - 8) {
      ++stats.skipped;  // frame truncated by a crash mid-append
      break;
    }
    const char* payload = data.data() + pos + 8;
    pos += 8 + len;
    if (Fnv32(payload, len) != checksum) {
      ++stats.skipped;  // corrupt frame; resync at the next one
      continue;
    }
    Reader r(payload, len);
    uint8_t type = 0;
    if (!r.U8(&type)) {
      ++stats.skipped;
      continue;
    }
    switch (type) {
      case kSkeletonRecord: {
        uint64_t id = 0;
        sim::MicroOpSkeleton skeleton;
        if (!ReadSkeleton(&r, &id, &skeleton) || id == 0) {
          ++stats.skipped;
          break;
        }
        // Re-intern through the process-wide pool: if an equal skeleton
        // is already resident (e.g. warm process reloading), structure
        // sharing is preserved instead of duplicated.
        skeletons[id] = sim::InternSkeleton(std::move(skeleton));
        ++stats.skeletons;
        break;
      }
      case kProgramRecord: {
        std::string key;
        uint64_t skeleton_id = 0;
        auto program = std::make_shared<sim::SimProgram>();
        if (!ReadProgram(&r, &key, &skeleton_id, program.get())) {
          ++stats.skipped;
          break;
        }
        if (skeleton_id != 0) {
          auto it = skeletons.find(skeleton_id);
          if (it == skeletons.end()) {
            ++stats.skipped;  // its skeleton frame was corrupt
            break;
          }
          program->program.skeleton = it->second;
        }
        sim::InsertCachedProgram(
            key, std::shared_ptr<const sim::SimProgram>(std::move(program)));
        ++stats.programs;
        break;
      }
      case kTimingRecord: {
        std::string key;
        sim::KernelTiming timing;
        if (!ReadTiming(&r, &key, &timing)) {
          ++stats.skipped;
          break;
        }
        sim::InsertCachedTiming(key, timing);
        ++stats.timings;
        break;
      }
      case kTuningRecord: {
        tuner::StoredTuning tuning;
        if (!ReadTuning(&r, &tuning)) {
          ++stats.skipped;
          break;
        }
        tuner::TuningStore::Global().Put(std::move(tuning));
        ++stats.tunings;
        break;
      }
      default:
        ++stats.skipped;  // unknown record type from a newer minor writer
        break;
    }
  }

  stats.bytes = data.size();
  stats.ok = true;
  sim::AddSimCacheDiskStats(stats.timings + stats.programs + stats.tunings,
                            stats.skipped, stats.bytes);
  return stats;
}

}  // namespace serving
}  // namespace alcop
