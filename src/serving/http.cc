#include "serving/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace alcop {
namespace serving {

namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

std::string Trim(const std::string& s) {
  size_t begin = 0, end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

bool IsTokenChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
}

const std::string* FindIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  return FindIn(headers, name);
}

const std::string* HttpResponse::FindHeader(const std::string& name) const {
  return FindIn(headers, name);
}

HttpParseResult ParseHttpRequest(const std::string& buffer, HttpRequest* out,
                                 size_t* consumed, std::string* error) {
  *out = HttpRequest();
  *consumed = 0;
  size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buffer.size() > kMaxHttpHeaderBytes) {
      *error = "header section exceeds " +
               std::to_string(kMaxHttpHeaderBytes) + " bytes";
      return HttpParseResult::kBad;
    }
    return HttpParseResult::kNeedMore;
  }
  if (header_end > kMaxHttpHeaderBytes) {
    *error = "header section exceeds " + std::to_string(kMaxHttpHeaderBytes) +
             " bytes";
    return HttpParseResult::kBad;
  }

  size_t line_end = buffer.find("\r\n");
  std::string request_line = buffer.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    *error = "malformed request line";
    return HttpParseResult::kBad;
  }
  out->method = request_line.substr(0, sp1);
  out->target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  out->version = request_line.substr(sp2 + 1);
  if (out->method.empty() || out->method.size() > 16) {
    *error = "bad method";
    return HttpParseResult::kBad;
  }
  for (char c : out->method) {
    if (c < 'A' || c > 'Z') {
      *error = "bad method";
      return HttpParseResult::kBad;
    }
  }
  if (out->target.empty() || out->target[0] != '/') {
    *error = "bad request target";
    return HttpParseResult::kBad;
  }
  for (char c : out->target) {
    if (static_cast<unsigned char>(c) <= 0x20 ||
        static_cast<unsigned char>(c) >= 0x7f) {
      *error = "bad request target";
      return HttpParseResult::kBad;
    }
  }
  if (out->version.rfind("HTTP/1.", 0) != 0) {
    *error = "unsupported HTTP version";
    return HttpParseResult::kBad;
  }

  size_t pos = line_end + 2;
  while (pos < header_end) {
    size_t eol = buffer.find("\r\n", pos);
    std::string line = buffer.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      *error = "malformed header line";
      return HttpParseResult::kBad;
    }
    std::string name = line.substr(0, colon);
    for (char c : name) {
      if (!IsTokenChar(c)) {
        *error = "malformed header name";
        return HttpParseResult::kBad;
      }
    }
    out->headers.emplace_back(std::move(name), Trim(line.substr(colon + 1)));
  }

  if (out->FindHeader("Transfer-Encoding") != nullptr) {
    *error = "transfer-encoding not supported";
    return HttpParseResult::kBad;
  }
  size_t content_length = 0;
  if (const std::string* cl = out->FindHeader("Content-Length")) {
    if (cl->empty()) {
      *error = "bad Content-Length";
      return HttpParseResult::kBad;
    }
    for (char c : *cl) {
      if (c < '0' || c > '9') {
        *error = "bad Content-Length";
        return HttpParseResult::kBad;
      }
    }
    unsigned long long parsed = std::strtoull(cl->c_str(), nullptr, 10);
    if (parsed > kMaxHttpBodyBytes) {
      *error = "body exceeds " + std::to_string(kMaxHttpBodyBytes) + " bytes";
      return HttpParseResult::kBad;
    }
    content_length = static_cast<size_t>(parsed);
  }

  size_t total = header_end + 4 + content_length;
  if (buffer.size() < total) return HttpParseResult::kNeedMore;
  out->body = buffer.substr(header_end + 4, content_length);

  out->keep_alive = out->version != "HTTP/1.0";
  if (const std::string* connection = out->FindHeader("Connection")) {
    if (EqualsIgnoreCase(*connection, "close")) out->keep_alive = false;
    if (EqualsIgnoreCase(*connection, "keep-alive")) out->keep_alive = true;
  }
  *consumed = total;
  return HttpParseResult::kOk;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    default: return "Unknown";
  }
}

void SplitTarget(const std::string& target, std::string* path,
                 std::string* query) {
  size_t mark = target.find('?');
  if (mark == std::string::npos) {
    *path = target;
    query->clear();
    return;
  }
  *path = target.substr(0, mark);
  *query = target.substr(mark + 1);
}

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string UrlDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size() &&
               HexDigit(text[i + 1]) >= 0 && HexDigit(text[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(text[i + 1]) * 16 +
                               HexDigit(text[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> ParseQuery(
    const std::string& query) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    if (end > start) {
      std::string piece = query.substr(start, end - start);
      size_t eq = piece.find('=');
      if (eq == std::string::npos) {
        out.emplace_back(UrlDecode(piece), "");
      } else {
        out.emplace_back(UrlDecode(piece.substr(0, eq)),
                         UrlDecode(piece.substr(eq + 1)));
      }
    }
    start = end + 1;
  }
  return out;
}

std::string QueryParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::string& key, const std::string& fallback) {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return fallback;
}

std::string FormatHttpResponse(
    int status, const std::string& content_type, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers,
    bool keep_alive) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << " " << HttpStatusText(status) << "\r\n";
  out << "Content-Type: " << content_type << "\r\n";
  out << "Content-Length: " << body.size() << "\r\n";
  out << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n";
  for (const auto& [name, value] : extra_headers) {
    out << name << ": " << value << "\r\n";
  }
  out << "\r\n" << body;
  return out.str();
}

bool HttpWriteAll(int fd, const std::string& bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

std::optional<HttpResponse> HttpCall(
    int port, const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return std::nullopt;
  }

  std::ostringstream request;
  request << method << " " << target << " HTTP/1.1\r\n"
          << "Host: 127.0.0.1:" << port << "\r\n"
          << "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    request << name << ": " << value << "\r\n";
  }
  if (!body.empty() || method == "POST") {
    request << "Content-Length: " << body.size() << "\r\n";
  }
  request << "\r\n" << body;
  if (!HttpWriteAll(fd, request.str())) {
    ::close(fd);
    return std::nullopt;
  }

  std::string raw;
  char buf[16384];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return std::nullopt;
  size_t line_end = raw.find("\r\n");
  std::string status_line = raw.substr(0, line_end);
  size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos || status_line.rfind("HTTP/1.", 0) != 0) {
    return std::nullopt;
  }
  HttpResponse response;
  response.status = std::atoi(status_line.c_str() + sp1 + 1);
  size_t pos = line_end + 2;
  while (pos < header_end) {
    size_t eol = raw.find("\r\n", pos);
    std::string line = raw.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    response.headers.emplace_back(line.substr(0, colon),
                                  Trim(line.substr(colon + 1)));
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace serving
}  // namespace alcop
