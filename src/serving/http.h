// Minimal HTTP/1.1 front end for alcopd (serving/server.cc): request
// parsing, response formatting, and a tiny blocking client used by the
// load bench and the tests.
//
// Scope is deliberately small — this is a daemon sidecar endpoint, not a
// web server: loopback traffic, GET/POST, Content-Length bodies only
// (no chunked transfer), hard caps on header and body size so a
// misbehaving peer cannot make the IO thread allocate unboundedly.
// Parsing is incremental: the IO thread appends whatever bytes poll()
// delivered to a per-connection buffer and asks the parser whether a
// full request is available yet, so slow clients and pipelined requests
// both work without dedicating a thread per connection.
#ifndef ALCOP_SERVING_HTTP_H_
#define ALCOP_SERVING_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace alcop {
namespace serving {

// Request-line + header section cap (the body cap matches the unix
// socket's frame cap, serving/protocol.h kMaxFrameBytes).
inline constexpr size_t kMaxHttpHeaderBytes = 16 * 1024;
inline constexpr size_t kMaxHttpBodyBytes = 16u * 1024 * 1024;

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // "/metrics", "/v1/compile", ...
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  // HTTP/1.1 default, honors Connection:

  // Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
};

enum class HttpParseResult {
  kNeedMore,  // buffer holds a prefix of a valid request; read more
  kOk,        // one request parsed; `consumed` bytes may be discarded
  kBad,       // malformed or over-limit; answer 400 and close
};

// Parses one request from the front of `buffer`. On kOk, `*consumed` is
// the byte count of the request (headers + body); the caller erases that
// prefix and may call again for pipelined requests. On kBad, `*error`
// names the defect.
HttpParseResult ParseHttpRequest(const std::string& buffer, HttpRequest* out,
                                 size_t* consumed, std::string* error);

const char* HttpStatusText(int status);

// Splits a request target into path and query ("/debug/requests?n=5" →
// "/debug/requests", "n=5"). No '?' leaves `*query` empty.
void SplitTarget(const std::string& target, std::string* path,
                 std::string* query);

// Decodes an application/x-www-form-urlencoded query string into ordered
// key/value pairs ("n=5&lane=fast"); %XX escapes and '+' are decoded in
// both keys and values, a key without '=' maps to "".
std::vector<std::pair<std::string, std::string>> ParseQuery(
    const std::string& query);

// First value for `key` in parsed query pairs; `fallback` when absent.
std::string QueryParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::string& key, const std::string& fallback = "");

// A full response with Content-Length and Connection headers. Pass
// extra headers as name/value pairs (e.g. cache headroom on /healthz).
std::string FormatHttpResponse(
    int status, const std::string& content_type, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers = {},
    bool keep_alive = true);

// write(2) until done (EINTR-safe); false on error/EPIPE.
bool HttpWriteAll(int fd, const std::string& bytes);

// ---------------------------------------------------------------------------
// Blocking one-shot client (tests, bench, CI scrapes without curl).
// ---------------------------------------------------------------------------

struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(const std::string& name) const;
};

// Connects to 127.0.0.1:port, sends one request (Connection: close),
// reads to EOF and parses the response. nullopt on connect/IO/parse
// failure. `extra_headers` are appended verbatim to the request (e.g.
// X-Alcop-Client for attribution tests).
std::optional<HttpResponse> HttpCall(
    int port, const std::string& method, const std::string& target,
    const std::string& body = "",
    const std::vector<std::pair<std::string, std::string>>& extra_headers = {});

}  // namespace serving
}  // namespace alcop

#endif  // ALCOP_SERVING_HTTP_H_
