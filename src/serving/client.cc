#include "serving/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace alcop {
namespace serving {

Client::~Client() { Close(); }

bool Client::Connect(const std::string& socket_path, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (fd_ >= 0) return fail("already connected");
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long for AF_UNIX");
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket() failed");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    return fail("connect(" + socket_path + ") failed — is alcopd running?");
  }
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::Send(const std::string& payload) {
  return fd_ >= 0 && WriteFrame(fd_, payload);
}

std::optional<std::string> Client::RecvRaw() {
  std::string payload;
  if (fd_ < 0 || !ReadFrame(fd_, &payload)) return std::nullopt;
  return payload;
}

std::optional<JsonValue> Client::Recv() {
  std::optional<std::string> payload = RecvRaw();
  if (!payload.has_value()) return std::nullopt;
  return ParseJson(*payload);
}

std::optional<JsonValue> Client::Call(const std::string& payload) {
  if (!Send(payload)) return std::nullopt;
  return Recv();
}

std::optional<std::string> Client::CallRaw(const std::string& payload) {
  if (!Send(payload)) return std::nullopt;
  return RecvRaw();
}

}  // namespace serving
}  // namespace alcop
