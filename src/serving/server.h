// alcopd: the long-lived compile/tune daemon behind tuning-as-a-service.
//
// One process owns the warm state — the two-layer sim cache, the interned
// skeleton pool, the TuningStore, and the persisted on-disk cache — and
// many clients share it over a unix-domain socket speaking the
// length-prefixed JSON protocol (serving/protocol.h). Request handling is
// split into two lanes so a multi-second cold tune can never sit in front
// of a microsecond cache hit:
//
//   fast lane: ping/stats/persist/load/shutdown, compile requests whose
//     timing is already cached (ProbeCachedTiming routes them without
//     compiling), and tune requests whose exact op_key is in the
//     TuningStore (the warm-restart path: the stored best is returned
//     directly). Hot-shape p99 is bounded by scheduling delay, not by
//     whatever the slow lane is chewing on.
//
//   slow lane: everything that must compile or search. The worker drains
//     the whole queue each round and batches the compile/profile
//     requests' phase-2 replays through one ReplaySimProgramBatch call —
//     programs sharing a skeleton replay back-to-back off one arena, the
//     same structure-sharing win the tuner gets. Cold tunes run the
//     XgbTuner (analytical pretrain + warm_seeds from the nearest stored
//     shape via tuner/transfer.h) and store their result for the next
//     neighbor.
//
// Observability (per-request, not just global counters): every request
// gets a monotonic id at dispatch, queue-wait and lane spans in the
// ring-buffer tracer, per-lane latency histograms
// (serving.request.latency.us|lane=fast/slow, with queue_wait + service
// components that sum to the total), a serving.inflight gauge, and an
// optional JSONL access log. An optional HTTP front end on the same IO
// thread exposes GET /metrics (Prometheus text exposition), GET
// /healthz, and POST /v1/<method> sharing the socket dispatch path.
//
// Startup loads the persisted cache if one matches this spec; shutdown
// saves it — so the daemon's lifetime, not the process's, is the unit of
// amortization the ROADMAP's serving axis asks for.
#ifndef ALCOP_SERVING_SERVER_H_
#define ALCOP_SERVING_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "target/gpu_spec.h"
#include "tuner/space.h"

namespace alcop {
namespace serving {

struct ServerOptions {
  std::string socket_path;
  target::GpuSpec spec;
  // Search defaults for `tune` requests that do not override them.
  size_t default_trials = 32;
  tuner::SpaceOptions space;
  bool warm_start = true;  // seed searches from the TuningStore
  uint64_t seed = 0;       // XgbTuner seed (deterministic service)
  // On-disk cache: loaded (if compatible) at Start, saved at Stop.
  // Empty = DefaultCachePath() ($ALCOP_CACHE_DIR); if that is also empty,
  // persistence is disabled.
  std::string cache_path;
  bool persist_on_shutdown = true;
  // HTTP front end on 127.0.0.1 beside the unix socket: -1 = disabled,
  // 0 = ephemeral (the bound port is readable via http_port()), >0 =
  // fixed port. Serves GET /metrics (Prometheus exposition of the obs
  // registry), GET /healthz, and POST /v1/<method> carrying the same
  // JSON payloads as the socket protocol.
  int http_port = -1;
  // JSONL access log: one line per completed request (request id,
  // attributed client, method, op_key, lane, cache outcome,
  // queue/service/total micros). Empty = no access log.
  std::string access_log_path;
  // Flight recorder: ring of the last N completed request records,
  // served by GET /debug/requests and the socket `debug` method. 0
  // disables retention.
  size_t flight_depth = 512;
  // Periodic registry snapshots for GET /debug/timeseries: every
  // `snapshot_interval_ms` the IO thread samples the registry into a
  // ring of `snapshot_depth` flattened snapshots. interval <= 0 or
  // depth 0 disables sampling.
  size_t snapshot_depth = 120;
  int snapshot_interval_ms = 1000;
  // Watchdog: when the oldest queued request in a lane has waited more
  // than this, emit a one-shot diagnostic dump (flight tail + metrics)
  // to the structured log and bump serving.watchdog.stalls. Re-arms
  // when the lane drains. <= 0 disables the watchdog.
  int watchdog_stall_ms = 10000;
  // Per-client attribution: peer uid on the unix socket, X-Alcop-Client
  // header (or a "client" body field) on HTTP, else "anon". At most
  // `max_clients` distinct identities get their own labeled series;
  // later ones share the `other` bucket so cardinality stays bounded.
  bool client_metrics = true;
  size_t max_clients = 16;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket and starts the IO + lane threads. False (with
  // `error` filled) if the path is unusable.
  bool Start(std::string* error = nullptr);

  // Blocks until a shutdown request arrives (or Stop is called).
  void Wait();

  // Stops the daemon: closes the socket, drains the lanes, joins the
  // threads, persists the cache (per options). Idempotent.
  void Stop();

  const ServerOptions& options() const;
  uint64_t requests_served() const;

  // Actual bound HTTP port (resolves options.http_port == 0 to the
  // kernel-assigned port); -1 when the HTTP front end is disabled.
  int http_port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serving
}  // namespace alcop

#endif  // ALCOP_SERVING_SERVER_H_
