// Persistent on-disk schedule cache: the serialization layer that lets
// everything a process learned — cached KernelTimings, trace-compiled
// SimPrograms, and completed tuning searches — survive a restart, so a
// serving deployment pays cold-compile cost once per fleet, not once per
// process (the amortization the ROADMAP's tuning-as-a-service axis is
// about; cf. TVM's tuning-record logs).
//
// File layout (host-endian; this is a local cache, not an interchange
// format — a foreign-endian file simply fails its checksums):
//
//   magic "ALCP" | u32 schema version | u64 spec fingerprint
//                | u64 fitted-constants fingerprint
//   then a sequence of independently framed records:
//   u32 payload_len | u32 FNV-1a checksum of payload | payload
//
// A header mismatch (magic, version, either fingerprint) rejects the
// whole file — entries computed under different device numerics or
// fitted model constants must never be silently reused. Within an
// accepted file each frame stands alone: a bad checksum, an unknown
// record type, or a truncated tail skips that frame (counted in
// PersistStats::skipped) and the loader resyncs at the next frame —
// load never crashes on a corrupt or torn file.
//
// Records are skeleton-aware: each distinct interned MicroOpSkeleton is
// written once with a file-local id, and programs reference it by id.
// On load, skeletons are re-interned through the process-wide pool
// (InternSkeleton), so structure sharing — the bytes-per-config win —
// survives the round trip; a program whose skeleton frame was corrupt is
// itself skipped. Loaded entries enter the in-memory caches through
// InsertCachedTiming/InsertCachedProgram (an existing live entry always
// wins, and the LRU budget applies) and the TuningStore.
//
// Writes go to `path.tmp.<pid>` and rename() into place, so a crash
// mid-save leaves the previous file intact and concurrent savers
// last-writer-win a complete file.
#ifndef ALCOP_SERVING_PERSIST_H_
#define ALCOP_SERVING_PERSIST_H_

#include <cstdint>
#include <string>

#include "target/gpu_spec.h"

namespace alcop {
namespace serving {

inline constexpr uint32_t kPersistMagic = 0x50434C41;  // "ALCP", little-endian
inline constexpr uint32_t kPersistVersion = 1;

// FNV-1a over every GpuSpec rate/limit that participates in the sim
// cache key (the device numerics the cached values were computed under).
uint64_t SpecFingerprint(const target::GpuSpec& spec);

// FNV-1a over the spec's fitted model constants (spec.model_fit) — the
// part of the device model the cache key does NOT carry, so a refit must
// invalidate the file even though the keys would still match.
uint64_t FittedConstantsFingerprint(const target::GpuSpec& spec);

// $ALCOP_CACHE_DIR/sim_cache.alcp; empty string when the variable is
// unset (callers treat that as "persistence disabled").
std::string DefaultCachePath();

struct PersistStats {
  bool ok = false;
  std::string error;   // why ok == false (empty otherwise)
  uint64_t bytes = 0;  // file bytes written (save) or parsed (load)
  uint64_t timings = 0;
  uint64_t programs = 0;
  uint64_t skeletons = 0;
  uint64_t tunings = 0;
  uint64_t skipped = 0;  // corrupt/unknown frames skipped on load
};

// Serializes the current sim-cache snapshot (both layers) and the global
// TuningStore. Creates the parent directory if needed.
PersistStats SaveCache(const std::string& path, const target::GpuSpec& spec);

// Loads a cache file into the in-memory caches and the TuningStore.
// Missing file / header mismatch => ok == false with an explanatory
// error and nothing loaded; per-frame corruption is skipped, never
// fatal. Updates the sim.cache.disk.* counters.
PersistStats LoadCache(const std::string& path, const target::GpuSpec& spec);

}  // namespace serving
}  // namespace alcop

#endif  // ALCOP_SERVING_PERSIST_H_
