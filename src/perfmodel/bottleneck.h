// Bottleneck-based analysis: the baseline performance model Fig. 12
// compares against. It takes the maximum of the computation, shared-memory
// loading and device-memory loading times, assuming full utilization of
// throughput and bandwidth. It is deliberately oversimplified: it ignores
// SM occupancy and is agnostic to latency hiding, so it cannot distinguish
// pipeline stage counts.
#ifndef ALCOP_PERFMODEL_BOTTLENECK_H_
#define ALCOP_PERFMODEL_BOTTLENECK_H_

#include "schedule/schedule.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace perfmodel {

// The three terms of the bottleneck max, exposed so the profiler
// (src/obs/stall.*) can cross-check its measured verdict against the
// model's limiter. Times are in cycles; +inf everywhere for invalid
// schedules.
struct BottleneckBreakdown {
  double compute_cycles = 0.0;
  double smem_cycles = 0.0;  // shared-memory loading through the LLC
  double dram_cycles = 0.0;  // device-memory loading
  double Cycles() const;     // max of the three
  // "compute", "smem" or "dram" — the argmax (ties break in that order).
  const char* Limiter() const;
};

BottleneckBreakdown BottleneckAnalyze(const schedule::GemmOp& op,
                                      const schedule::ScheduleConfig& config,
                                      const target::GpuSpec& spec);

// Predicted kernel cycles under the bottleneck analysis; +inf for invalid
// schedules.
double BottleneckPredictCycles(const schedule::GemmOp& op,
                               const schedule::ScheduleConfig& config,
                               const target::GpuSpec& spec);

}  // namespace perfmodel
}  // namespace alcop

#endif  // ALCOP_PERFMODEL_BOTTLENECK_H_
