// Roofline classification from measured PMU counters (sim/pmu.h).
//
// The PMU's byte and FLOP totals are per-SM (one simulated SM times the
// launch's batch structure), so every demand below is a per-SM quantity:
// peak tensor throughput per SM against the SM's 1/num_sms slice of the
// GPU-wide LLC/DRAM bandwidth, and the SM-local LDS pipe. The regime is
// the pipe with the largest demand cycles — the classic roofline argmax,
// phrased in cycles so the four pipes are directly comparable.
//
// This is the measured-side counterpart of the bottleneck analysis
// (perfmodel/bottleneck.h): that model predicts a limiter from the
// schedule alone; the roofline derives one from what the simulator
// actually moved. The calibration harness (perfmodel/calibration.h)
// cross-checks the two.
#ifndef ALCOP_PERFMODEL_ROOFLINE_H_
#define ALCOP_PERFMODEL_ROOFLINE_H_

#include <string>

#include "sim/pmu.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace perfmodel {

struct RooflinePoint {
  // Arithmetic intensity, FLOPs per byte moved at each memory level
  // (+inf when the kernel moved no bytes at that level).
  double ai_dram = 0.0;
  double ai_llc = 0.0;
  double ai_lds = 0.0;
  // Ridge points: the intensity at which each level's roofline meets the
  // compute peak. AI above the ridge means the level cannot bind.
  double ridge_ai_dram = 0.0;
  double ridge_ai_llc = 0.0;
  double ridge_ai_lds = 0.0;
  // Per-SM demand cycles of each pipe: the time the kernel's traffic
  // would take at that pipe's peak, everything else infinitely fast.
  double compute_cycles = 0.0;
  double llc_cycles = 0.0;
  double dram_cycles = 0.0;
  double lds_cycles = 0.0;
  // Argmax of the demands: "compute", "llc", "dram" or "lds" (ties break
  // in that order).
  std::string regime;
  // Measured throughput against the roofline ceiling.
  double peak_flops_per_cycle = 0.0;      // per-SM tensor peak
  double roof_flops_per_cycle = 0.0;      // min(peak, bandwidth ceilings)
  double attained_flops_per_cycle = 0.0;  // flops / measured cycles
  double efficiency = 0.0;                // attained / roof
};

// Classifies a kernel from its PMU totals and measured cycle count.
RooflinePoint ClassifyRoofline(const sim::KernelPmu& pmu,
                               double measured_cycles,
                               const target::GpuSpec& spec);

// Binarized agreement with the bottleneck model's limiter ("compute",
// "smem" or "dram"): both say compute-bound, or both say memory-bound.
// The roofline's "llc" maps to the model's "smem" (shared-memory loading
// through the LLC) and "lds" to memory in general — the comparison only
// binarizes, the full strings are reported for inspection.
bool RooflineAgreesWithLimiter(const RooflinePoint& point,
                               const std::string& limiter);

// JSON object (no trailing newline) for the calibration bench and CLI.
std::string RooflineToJson(const RooflinePoint& point);

}  // namespace perfmodel
}  // namespace alcop

#endif  // ALCOP_PERFMODEL_ROOFLINE_H_
