#include "perfmodel/bottleneck.h"

#include <algorithm>
#include <limits>

#include "sim/launch.h"

namespace alcop {
namespace perfmodel {

double BottleneckBreakdown::Cycles() const {
  return std::max({compute_cycles, smem_cycles, dram_cycles});
}

const char* BottleneckBreakdown::Limiter() const {
  if (compute_cycles >= smem_cycles && compute_cycles >= dram_cycles) {
    return "compute";
  }
  return smem_cycles >= dram_cycles ? "smem" : "dram";
}

BottleneckBreakdown BottleneckAnalyze(const schedule::GemmOp& op,
                                      const schedule::ScheduleConfig& config,
                                      const target::GpuSpec& spec) {
  BottleneckBreakdown out;
  std::string why;
  if (!schedule::ValidateConfig(op, config, &why)) {
    double inf = std::numeric_limits<double>::infinity();
    out.compute_cycles = out.smem_cycles = out.dram_cycles = inf;
    return out;
  }

  // Aggregated compute at full throughput — blind to occupancy.
  out.compute_cycles = static_cast<double>(op.Flops()) /
                       (spec.tc_flops_per_sm_per_cycle * spec.num_sms);

  // Shared-memory loading: every threadblock pulls its input tiles through
  // the LLC once per outer iteration.
  int64_t grid_m = op.m / config.tile.tb_m;
  int64_t grid_n = op.n / config.tile.tb_n;
  double smem_bytes =
      static_cast<double>(op.batch) *
      (static_cast<double>(grid_n) * op.m * op.k +  // A re-read per bn
       static_cast<double>(grid_m) * op.n * op.k) *
      2.0;
  out.smem_cycles = smem_bytes / spec.llc_bw_bytes_per_cycle;

  // Device-memory loading: distinct tensor bytes only (ideal caching).
  double dram_bytes = static_cast<double>(op.InputBytes() + op.OutputBytes());
  out.dram_cycles = dram_bytes / spec.dram_bw_bytes_per_cycle;
  return out;
}

double BottleneckPredictCycles(const schedule::GemmOp& op,
                               const schedule::ScheduleConfig& config,
                               const target::GpuSpec& spec) {
  // Blind to pipelining, latency and occupancy: just the max.
  return BottleneckAnalyze(op, config, spec).Cycles();
}

}  // namespace perfmodel
}  // namespace alcop
