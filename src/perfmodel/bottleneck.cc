#include "perfmodel/bottleneck.h"

#include <algorithm>
#include <limits>

#include "sim/launch.h"

namespace alcop {
namespace perfmodel {

double BottleneckPredictCycles(const schedule::GemmOp& op,
                               const schedule::ScheduleConfig& config,
                               const target::GpuSpec& spec) {
  std::string why;
  if (!schedule::ValidateConfig(op, config, &why)) {
    return std::numeric_limits<double>::infinity();
  }

  // Aggregated compute at full throughput — blind to occupancy.
  double t_compute = static_cast<double>(op.Flops()) /
                     (spec.tc_flops_per_sm_per_cycle * spec.num_sms);

  // Shared-memory loading: every threadblock pulls its input tiles through
  // the LLC once per outer iteration.
  int64_t grid_m = op.m / config.tile.tb_m;
  int64_t grid_n = op.n / config.tile.tb_n;
  double smem_bytes =
      static_cast<double>(op.batch) *
      (static_cast<double>(grid_n) * op.m * op.k +  // A re-read per bn
       static_cast<double>(grid_m) * op.n * op.k) *
      2.0;
  double t_smem = smem_bytes / spec.llc_bw_bytes_per_cycle;

  // Device-memory loading: distinct tensor bytes only (ideal caching).
  double dram_bytes = static_cast<double>(op.InputBytes() + op.OutputBytes());
  double t_dram = dram_bytes / spec.dram_bw_bytes_per_cycle;

  // Blind to pipelining, latency and occupancy: just the max.
  return std::max({t_compute, t_smem, t_dram});
}

}  // namespace perfmodel
}  // namespace alcop
