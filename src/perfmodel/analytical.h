// ALCOP's pipeline-aware analytical performance model — Table I of the
// paper.
//
//   T_kernel  = T_threadblk x N_threadblk_batch
//   T_threadblk = T_init + T_main_loop + T_epilogue
//   T_main_loop = PLM(T_smem_load, T_smem_use, N_smem_loop,
//                     N_smem_pipe_stage, N_threadblk_per_SM)
//   T_smem_use  = PLM(T_reg_load, T_compute, N_reg_loop,
//                     N_reg_pipe_stage, N_warp_per_threadblk)
//   PLM(T_load, T_use, N_loop, N_pipe, N_mplx):
//     if T_load <= (N_pipe x N_mplx - 1) x T_use : T_use x N_loop
//     else                                       : (T_load + T_use) x N_loop / N_pipe
//
// The model explicitly captures the constraint-and-trade-off triangle of
// pipelining, tiling, and spatial parallelism: stage counts inflate shared
// memory and register footprints, which lowers occupancy
// (N_threadblk_per_SM), which in turn weakens both multiplexing terms.
#ifndef ALCOP_PERFMODEL_ANALYTICAL_H_
#define ALCOP_PERFMODEL_ANALYTICAL_H_

#include <string>

#include "schedule/schedule.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace perfmodel {

// The pipeline latency model in isolation (exposed for unit tests).
double PipelineLatencyModel(double t_load, double t_use, int64_t n_loop,
                            int64_t n_pipe, int64_t n_mplx);

struct AnalyticalBreakdown {
  bool feasible = false;
  std::string reason;
  double cycles = 0.0;       // whole kernel
  double t_init = 0.0;       // per threadblock
  double t_main_loop = 0.0;  // per threadblock
  double t_epilogue = 0.0;   // per threadblock
  double t_smem_load = 0.0;  // one outer-loop load
  double t_smem_use = 0.0;   // one outer-loop use (the inner pipeline)
  double t_compute = 0.0;    // one inner-loop tensor-core step
  double t_reg_load = 0.0;   // one inner-loop register load
  // Steady-state initiation interval of one outer-loop iteration (the
  // binding per-SM resource bound plus fitted overhead); t_main_loop is
  // n_smem_loop of these. See the DELTA note in analytical.cc.
  double t_iter = 0.0;
  bool load_bound_outer = false;
  bool load_bound_inner = false;
  int threadblocks_per_sm = 0;
  // Threadblocks actually resident on one SM during a full batch:
  // min(threadblocks_per_sm, ceil(grid / num_sms)). The per-SM
  // multiplexing terms use this, not the occupancy bound.
  int resident_tbs = 0;
  int64_t batches = 0;
};

// Full Table-I evaluation for one schedule of one operator.
AnalyticalBreakdown AnalyticalModel(const schedule::GemmOp& op,
                                    const schedule::ScheduleConfig& config,
                                    const target::GpuSpec& spec);

// Predicted kernel cycles; +inf when the schedule is invalid/unfittable
// (so model-ranked orderings push such schedules last).
double PredictCycles(const schedule::GemmOp& op,
                     const schedule::ScheduleConfig& config,
                     const target::GpuSpec& spec);

}  // namespace perfmodel
}  // namespace alcop

#endif  // ALCOP_PERFMODEL_ANALYTICAL_H_
