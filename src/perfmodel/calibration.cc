#include "perfmodel/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "obs/stall.h"
#include "perfmodel/bottleneck.h"
#include "sim/launch.h"
#include "tuner/space.h"

namespace alcop {
namespace perfmodel {

namespace {

double RelError(double analytical, double measured) {
  constexpr double kEps = 1e-9;
  return std::fabs(analytical - measured) /
         std::max(std::fabs(measured), kEps);
}

void AddTerm(CalibrationResult* out, const char* name, double analytical,
             double measured) {
  TermError term;
  term.name = name;
  term.analytical = analytical;
  term.measured = measured;
  term.rel_error = RelError(analytical, measured);
  out->terms.push_back(std::move(term));
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e9999" : "-1e9999";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

CalibrationResult CalibrateConfig(const schedule::GemmOp& op,
                                  const schedule::ScheduleConfig& config,
                                  const target::GpuSpec& spec,
                                  sim::ReplayArena* arena) {
  thread_local sim::ReplayArena local_arena;
  if (arena == nullptr) arena = &local_arena;

  CalibrationResult out;
  sim::SimProgram program = sim::CompileSimProgram(op, config, spec);
  if (!program.feasible) {
    out.reason = program.reason;
    return out;
  }
  sim::KernelTiming timing = sim::ReplaySimProgram(program, arena, &out.pmu);
  AnalyticalBreakdown model = AnalyticalModel(op, config, spec);
  if (!model.feasible) {
    out.reason = "analytical model rejected: " + model.reason;
    return out;
  }
  out.feasible = true;
  out.measured_cycles = timing.cycles;
  out.predicted_cycles = model.cycles;

  // One profiled batch timeline for the fill/drain split and the measured
  // stall verdict.
  sim::BatchTimeline batch = sim::ReplayTimeline(program, arena);
  obs::KernelProfile profile = obs::ProfileBatch(batch);
  obs::AttachModelVerdict(&profile, op, config, spec);

  out.roofline = ClassifyRoofline(out.pmu, timing.cycles, spec);
  BottleneckBreakdown bottleneck = BottleneckAnalyze(op, config, spec);
  out.bottleneck_limiter = bottleneck.Limiter();
  out.profile_verdict = profile.verdict;
  out.roofline_agrees =
      RooflineAgreesWithLimiter(out.roofline, out.bottleneck_limiter);
  out.profile_agrees = profile.model_agrees;

  // ---- Term-by-term audit (see header for the mapping) ----
  const schedule::TileConfig& t = config.tile;
  const double n_outer =
      static_cast<double>(op.k / (t.tb_k * config.split_k));
  const double n_inner = static_cast<double>(t.tb_k / t.warp_k);
  const double makespan = timing.batch_cycles;

  AddTerm(&out, "cycles", model.cycles, timing.cycles);
  AddTerm(&out, "t_threadblk",
          model.t_init + model.t_main_loop + model.t_epilogue, makespan);
  AddTerm(&out, "t_init", model.t_init, profile.fill_fraction * makespan);
  AddTerm(&out, "t_main_loop", model.t_main_loop,
          (1.0 - profile.fill_fraction - profile.drain_fraction) * makespan);
  AddTerm(&out, "t_epilogue", model.t_epilogue,
          profile.drain_fraction * makespan);

  // Rate terms, from the steady-state batch's PMU counters. The wave
  // geometry mirrors ReplaySimProgram's full batch.
  const sim::PmuCounters& c = out.pmu.batch;
  int64_t per_batch = static_cast<int64_t>(program.threadblocks_per_sm) *
                      program.num_sms;
  int64_t batch_tbs = std::min(program.total_threadblocks, per_batch);
  int wave_tbs = static_cast<int>(std::min<int64_t>(
      program.threadblocks_per_sm,
      (batch_tbs + program.num_sms - 1) / program.num_sms));
  int active_sms = static_cast<int>(std::min<int64_t>(
      program.num_sms, (batch_tbs + wave_tbs - 1) / wave_tbs));

  const double util = std::min(
      1.0, static_cast<double>(config.NumWarps()) * wave_tbs / 4.0);
  AddTerm(&out, "t_compute", model.t_compute,
          c.tensor_active_cycles / (4.0 * util * n_outer * n_inner));

  const double llc_rate_sm = spec.llc_bw_bytes_per_cycle / active_sms;
  const double dram_rate_sm = spec.dram_bw_bytes_per_cycle / active_sms;
  const double measured_llc_load =
      spec.llc_latency_cycles + (c.llc_read_bytes / n_outer) / llc_rate_sm;
  const double measured_dram_load =
      spec.dram_latency_cycles + (c.dram_read_bytes / n_outer) / dram_rate_sm;
  AddTerm(&out, "t_smem_load", model.t_smem_load,
          std::max(measured_llc_load, measured_dram_load));

  const double lds_rate =
      spec.lds_bytes_per_cycle_per_sm /
      (config.swizzle ? 1.0 : spec.bank_conflict_factor);
  AddTerm(&out, "t_reg_load", model.t_reg_load,
          spec.smem_latency_cycles +
              (c.lds_read_bytes / (n_outer * n_inner)) / lds_rate);
  return out;
}

RankQuality ComputeRankQuality(const std::vector<double>& predicted,
                               const std::vector<double>& measured, int k) {
  RankQuality out;
  const size_t n = std::min(predicted.size(), measured.size());
  out.count = static_cast<int64_t>(n);
  out.k = std::min<int>(k, static_cast<int>(n));
  if (n < 2 || out.k == 0) return out;

  // Kendall tau-b: concordant minus discordant over the tie-corrected
  // pair count. O(n^2) — the per-operator spaces are a few thousand
  // configs, well within budget for a bench-time metric.
  int64_t concordant = 0, discordant = 0, ties_p = 0, ties_m = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double dp = predicted[i] - predicted[j];
      double dm = measured[i] - measured[j];
      bool tie_p = dp == 0.0 || (std::isinf(predicted[i]) &&
                                 std::isinf(predicted[j]));
      bool tie_m = dm == 0.0;
      if (tie_p) ++ties_p;
      if (tie_m) ++ties_m;
      if (tie_p || tie_m) continue;
      if ((dp > 0) == (dm > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double total = static_cast<double>(n) * (n - 1) / 2.0;
  const double denom = std::sqrt((total - ties_p) * (total - ties_m));
  out.kendall_tau =
      denom > 0 ? static_cast<double>(concordant - discordant) / denom : 0.0;

  // Top-k recall: of the k best measured configs, how many the predicted
  // ordering also puts in its top k. Ties break by index (stable).
  auto top_indices = [n](const std::vector<double>& v, int count) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(),
                     [&v](size_t a, size_t b) { return v[a] < v[b]; });
    idx.resize(static_cast<size_t>(count));
    return idx;
  };
  std::vector<size_t> best_measured = top_indices(measured, out.k);
  std::vector<size_t> best_predicted = top_indices(predicted, out.k);
  std::sort(best_predicted.begin(), best_predicted.end());
  int hits = 0;
  for (size_t i : best_measured) {
    if (std::binary_search(best_predicted.begin(), best_predicted.end(), i)) {
      ++hits;
    }
  }
  out.topk_recall = static_cast<double>(hits) / out.k;
  return out;
}

CoverageRecall ComputeCoverageRecall(const std::vector<double>& predicted,
                                     const std::vector<double>& measured,
                                     int top, int cut, double tolerance) {
  CoverageRecall out;
  const size_t n = std::min(predicted.size(), measured.size());
  out.count = static_cast<int64_t>(n);
  out.top = std::min<int>(top, static_cast<int>(n));
  out.cut = std::min<int>(cut, static_cast<int>(n));
  if (out.top == 0 || out.cut == 0) return out;

  std::vector<size_t> by_meas(n), by_pred(n);
  for (size_t i = 0; i < n; ++i) by_meas[i] = by_pred[i] = i;
  std::stable_sort(by_meas.begin(), by_meas.end(), [&](size_t a, size_t b) {
    return measured[a] < measured[b];
  });
  std::stable_sort(by_pred.begin(), by_pred.end(), [&](size_t a, size_t b) {
    return predicted[a] < predicted[b];
  });

  std::vector<char> kept(n, 0);
  double kept_best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < out.cut; ++i) {
    kept[by_pred[static_cast<size_t>(i)]] = 1;
    kept_best =
        std::min(kept_best, measured[by_pred[static_cast<size_t>(i)]]);
  }
  int covered = 0;
  for (int i = 0; i < out.top; ++i) {
    const size_t idx = by_meas[static_cast<size_t>(i)];
    if (kept[idx] || kept_best <= tolerance * measured[idx]) ++covered;
  }
  out.coverage = static_cast<double>(covered) / out.top;
  out.best_survives = kept[by_meas[0]] != 0;
  return out;
}

namespace {

// One (analytical, measured) sample pair for a fitted term.
struct FitSample {
  double analytical = 0.0;
  double measured = 0.0;
};

// Weighted least squares of scale*a + bias against m, weights 1/m^2 so
// the objective matches the relative-error metric the gates use.
target::TermFit SolveTermFit(const std::vector<FitSample>& samples) {
  target::TermFit fit;
  double sww = 0, swa = 0, swm = 0, swaa = 0, swam = 0;
  for (const FitSample& s : samples) {
    double w = 1.0 / std::max(s.measured * s.measured, 1e-9);
    sww += w;
    swa += w * s.analytical;
    swm += w * s.measured;
    swaa += w * s.analytical * s.analytical;
    swam += w * s.analytical * s.measured;
  }
  double det = sww * swaa - swa * swa;
  if (samples.size() < 2 || std::fabs(det) < 1e-12) return fit;
  fit.scale = (sww * swam - swa * swm) / det;
  fit.bias_cycles = (swaa * swm - swa * swam) / det;
  fit.fitted = true;
  return fit;
}

double MeanRelError(const std::vector<FitSample>& samples,
                    const target::TermFit& fit) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const FitSample& s : samples) {
    sum += RelError(fit.Apply(s.analytical), s.measured);
  }
  return sum / static_cast<double>(samples.size());
}

double P90RelError(const std::vector<FitSample>& samples,
                   const target::TermFit& fit) {
  if (samples.empty()) return 0.0;
  std::vector<double> errs;
  errs.reserve(samples.size());
  for (const FitSample& s : samples) {
    errs.push_back(RelError(fit.Apply(s.analytical), s.measured));
  }
  std::sort(errs.begin(), errs.end());
  return errs[static_cast<size_t>(0.9 * (errs.size() - 1))];
}

}  // namespace

namespace {

// One sweep sample for the composition-constant grid search.
struct CompositionSample {
  size_t op_index = 0;
  schedule::ScheduleConfig config;
  double measured = 0.0;
};

}  // namespace

ModelFitReport FitModelCorrections(const std::vector<schedule::GemmOp>& ops,
                                   const target::GpuSpec& spec,
                                   size_t stride) {
  if (stride == 0) stride = 1;
  // Fit against the structural model: zero out any checked-in residuals
  // so the derived correction composes with the formulas, not with a
  // previous fit.
  target::GpuSpec base = spec;
  base.model_fit = target::ModelFit();

  std::vector<FitSample> compute_samples, reg_samples;
  std::vector<CompositionSample> comp_samples;
  sim::ReplayArena arena;
  for (size_t oi = 0; oi < ops.size(); ++oi) {
    const schedule::GemmOp& op = ops[oi];
    std::vector<schedule::ScheduleConfig> space = tuner::EnumerateSpace(op);
    for (size_t i = 0; i < space.size(); i += stride) {
      CalibrationResult r = CalibrateConfig(op, space[i], base, &arena);
      if (!r.feasible) continue;
      comp_samples.push_back({oi, space[i], r.measured_cycles});
      for (const TermError& term : r.terms) {
        if (term.name == "t_compute") {
          compute_samples.push_back({term.analytical, term.measured});
        } else if (term.name == "t_reg_load") {
          reg_samples.push_back({term.analytical, term.measured});
        }
      }
    }
  }

  ModelFitReport report;
  auto fit_term = [&report](const char* name,
                            const std::vector<FitSample>& samples) {
    TermFitReport term;
    term.name = name;
    term.fit = SolveTermFit(samples);
    term.samples = static_cast<int64_t>(samples.size());
    term.mean_rel_error_before = MeanRelError(samples, target::TermFit());
    term.mean_rel_error_after = MeanRelError(samples, term.fit);
    term.p90_rel_error_after = P90RelError(samples, term.fit);
    report.terms.push_back(std::move(term));
  };
  fit_term("t_compute", compute_samples);
  fit_term("t_reg_load", reg_samples);
  report.fit.t_compute = report.terms[0].fit;
  report.fit.t_reg_load = report.terms[1].fit;

  // ---- Composition-constant grid search ----
  // Objective: mean |log(predicted / measured)| over the sweep, plus ten
  // times the mean per-operator regret of the predicted top 16 (best
  // measured cycles among the model's 16 favorites, relative to the
  // sample's best). The regret penalty keeps the fit honest as a ranker:
  // cycle error alone admits constants that misorder the frontier.
  report.composition_samples = static_cast<int64_t>(comp_samples.size());
  if (!comp_samples.empty()) {
    target::GpuSpec probe = base;
    probe.model_fit.t_compute = report.fit.t_compute;
    probe.model_fit.t_reg_load = report.fit.t_reg_load;
    double best_objective = 0.0, best_log_error = 0.0;
    bool first = true;
    target::ModelFit best_fit = probe.model_fit;
    for (double iter_overhead : {0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0,
                                 105.0, 120.0}) {
      for (double dep_scale : {1.0, 1.25, 1.5, 1.75, 2.0, 2.5}) {
        for (double fill_scale : {0.5, 1.0, 1.5, 2.0}) {
          for (double inner_latency : {0.0, 25.0, 50.0, 75.0}) {
            probe.model_fit.iter_overhead_cycles = iter_overhead;
            probe.model_fit.dep_latency_scale = dep_scale;
            probe.model_fit.fill_scale = fill_scale;
            probe.model_fit.inner_latency_cycles = inner_latency;
            double log_error_sum = 0.0;
            std::map<size_t, std::vector<std::pair<double, double>>> per_op;
            for (const CompositionSample& s : comp_samples) {
              double predicted =
                  PredictCycles(ops[s.op_index], s.config, probe);
              log_error_sum += std::fabs(std::log(
                  predicted / std::max(s.measured, 1e-9)));
              per_op[s.op_index].push_back({predicted, s.measured});
            }
            double regret_sum = 0.0;
            for (auto& [oi, pairs] : per_op) {
              std::stable_sort(pairs.begin(), pairs.end());
              double best_measured = pairs[0].second, sample_best = 0.0;
              bool have_best = false;
              for (size_t i = 0; i < pairs.size(); ++i) {
                if (i < 16) {
                  best_measured = have_best ? std::min(best_measured,
                                                       pairs[i].second)
                                            : pairs[i].second;
                  have_best = true;
                }
                sample_best = i == 0 ? pairs[i].second
                                     : std::min(sample_best,
                                                pairs[i].second);
              }
              regret_sum += best_measured / sample_best - 1.0;
            }
            double log_error =
                log_error_sum / static_cast<double>(comp_samples.size());
            double objective =
                log_error +
                10.0 * regret_sum / static_cast<double>(per_op.size());
            if (first || objective < best_objective) {
              first = false;
              best_objective = objective;
              best_log_error = log_error;
              best_fit = probe.model_fit;
              best_fit.composition_fitted = true;
            }
          }
        }
      }
    }
    report.fit = best_fit;
    report.composition_objective = best_objective;
    report.composition_mean_log_error = best_log_error;
  }
  return report;
}

std::string ModelFitReportToJson(const ModelFitReport& report) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < report.terms.size(); ++i) {
    const TermFitReport& term = report.terms[i];
    if (i > 0) os << ", ";
    os << "\"" << term.name << "\": {\"scale\": " << JsonNum(term.fit.scale)
       << ", \"bias_cycles\": " << JsonNum(term.fit.bias_cycles)
       << ", \"samples\": " << term.samples
       << ", \"mean_rel_error_before\": "
       << JsonNum(term.mean_rel_error_before)
       << ", \"mean_rel_error_after\": " << JsonNum(term.mean_rel_error_after)
       << ", \"p90_rel_error_after\": " << JsonNum(term.p90_rel_error_after)
       << "}";
  }
  if (!report.terms.empty()) os << ", ";
  os << "\"composition\": {\"iter_overhead_cycles\": "
     << JsonNum(report.fit.iter_overhead_cycles)
     << ", \"dep_latency_scale\": " << JsonNum(report.fit.dep_latency_scale)
     << ", \"fill_scale\": " << JsonNum(report.fit.fill_scale)
     << ", \"inner_latency_cycles\": "
     << JsonNum(report.fit.inner_latency_cycles)
     << ", \"samples\": " << report.composition_samples
     << ", \"objective\": " << JsonNum(report.composition_objective)
     << ", \"mean_log_error\": "
     << JsonNum(report.composition_mean_log_error) << "}";
  os << "}";
  return os.str();
}

std::string CalibrationToJson(const CalibrationResult& result) {
  std::ostringstream os;
  os << "{\"feasible\": " << (result.feasible ? "true" : "false");
  if (!result.feasible) {
    os << ", \"reason\": \"" << result.reason << "\"}";
    return os.str();
  }
  os << ", \"measured_cycles\": " << JsonNum(result.measured_cycles)
     << ", \"predicted_cycles\": " << JsonNum(result.predicted_cycles)
     << ", \"bottleneck_limiter\": \"" << result.bottleneck_limiter << "\""
     << ", \"profile_verdict\": \"" << result.profile_verdict << "\""
     << ", \"roofline_agrees\": "
     << (result.roofline_agrees ? "true" : "false")
     << ", \"profile_agrees\": "
     << (result.profile_agrees ? "true" : "false") << ", \"terms\": {";
  for (size_t i = 0; i < result.terms.size(); ++i) {
    const TermError& term = result.terms[i];
    if (i > 0) os << ", ";
    os << "\"" << term.name << "\": {\"analytical\": "
       << JsonNum(term.analytical)
       << ", \"measured\": " << JsonNum(term.measured)
       << ", \"rel_error\": " << JsonNum(term.rel_error) << "}";
  }
  os << "}, \"roofline\": " << RooflineToJson(result.roofline) << "}";
  return os.str();
}

}  // namespace perfmodel
}  // namespace alcop
