#include "perfmodel/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/stall.h"
#include "perfmodel/bottleneck.h"
#include "sim/launch.h"

namespace alcop {
namespace perfmodel {

namespace {

double RelError(double analytical, double measured) {
  constexpr double kEps = 1e-9;
  return std::fabs(analytical - measured) /
         std::max(std::fabs(measured), kEps);
}

void AddTerm(CalibrationResult* out, const char* name, double analytical,
             double measured) {
  TermError term;
  term.name = name;
  term.analytical = analytical;
  term.measured = measured;
  term.rel_error = RelError(analytical, measured);
  out->terms.push_back(std::move(term));
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e9999" : "-1e9999";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

CalibrationResult CalibrateConfig(const schedule::GemmOp& op,
                                  const schedule::ScheduleConfig& config,
                                  const target::GpuSpec& spec,
                                  sim::ReplayArena* arena) {
  thread_local sim::ReplayArena local_arena;
  if (arena == nullptr) arena = &local_arena;

  CalibrationResult out;
  sim::SimProgram program = sim::CompileSimProgram(op, config, spec);
  if (!program.feasible) {
    out.reason = program.reason;
    return out;
  }
  sim::KernelTiming timing = sim::ReplaySimProgram(program, arena, &out.pmu);
  AnalyticalBreakdown model = AnalyticalModel(op, config, spec);
  if (!model.feasible) {
    out.reason = "analytical model rejected: " + model.reason;
    return out;
  }
  out.feasible = true;
  out.measured_cycles = timing.cycles;
  out.predicted_cycles = model.cycles;

  // One profiled batch timeline for the fill/drain split and the measured
  // stall verdict.
  sim::BatchTimeline batch = sim::ReplayTimeline(program, arena);
  obs::KernelProfile profile = obs::ProfileBatch(batch);
  obs::AttachModelVerdict(&profile, op, config, spec);

  out.roofline = ClassifyRoofline(out.pmu, timing.cycles, spec);
  BottleneckBreakdown bottleneck = BottleneckAnalyze(op, config, spec);
  out.bottleneck_limiter = bottleneck.Limiter();
  out.profile_verdict = profile.verdict;
  out.roofline_agrees =
      RooflineAgreesWithLimiter(out.roofline, out.bottleneck_limiter);
  out.profile_agrees = profile.model_agrees;

  // ---- Term-by-term audit (see header for the mapping) ----
  const schedule::TileConfig& t = config.tile;
  const double n_outer =
      static_cast<double>(op.k / (t.tb_k * config.split_k));
  const double n_inner = static_cast<double>(t.tb_k / t.warp_k);
  const double makespan = timing.batch_cycles;

  AddTerm(&out, "cycles", model.cycles, timing.cycles);
  AddTerm(&out, "t_threadblk",
          model.t_init + model.t_main_loop + model.t_epilogue, makespan);
  AddTerm(&out, "t_init", model.t_init, profile.fill_fraction * makespan);
  AddTerm(&out, "t_main_loop", model.t_main_loop,
          (1.0 - profile.fill_fraction - profile.drain_fraction) * makespan);
  AddTerm(&out, "t_epilogue", model.t_epilogue,
          profile.drain_fraction * makespan);

  // Rate terms, from the steady-state batch's PMU counters. The wave
  // geometry mirrors ReplaySimProgram's full batch.
  const sim::PmuCounters& c = out.pmu.batch;
  int64_t per_batch = static_cast<int64_t>(program.threadblocks_per_sm) *
                      program.num_sms;
  int64_t batch_tbs = std::min(program.total_threadblocks, per_batch);
  int wave_tbs = static_cast<int>(std::min<int64_t>(
      program.threadblocks_per_sm,
      (batch_tbs + program.num_sms - 1) / program.num_sms));
  int active_sms = static_cast<int>(std::min<int64_t>(
      program.num_sms, (batch_tbs + wave_tbs - 1) / wave_tbs));

  const double util = std::min(
      1.0, static_cast<double>(config.NumWarps()) * wave_tbs / 4.0);
  AddTerm(&out, "t_compute", model.t_compute,
          c.tensor_active_cycles / (4.0 * util * n_outer * n_inner));

  const double llc_rate_sm = spec.llc_bw_bytes_per_cycle / active_sms;
  const double dram_rate_sm = spec.dram_bw_bytes_per_cycle / active_sms;
  const double measured_llc_load =
      spec.llc_latency_cycles + (c.llc_read_bytes / n_outer) / llc_rate_sm;
  const double measured_dram_load =
      spec.dram_latency_cycles + (c.dram_read_bytes / n_outer) / dram_rate_sm;
  AddTerm(&out, "t_smem_load", model.t_smem_load,
          std::max(measured_llc_load, measured_dram_load));

  const double lds_rate =
      spec.lds_bytes_per_cycle_per_sm /
      (config.swizzle ? 1.0 : spec.bank_conflict_factor);
  AddTerm(&out, "t_reg_load", model.t_reg_load,
          spec.smem_latency_cycles +
              (c.lds_read_bytes / (n_outer * n_inner)) / lds_rate);
  return out;
}

std::string CalibrationToJson(const CalibrationResult& result) {
  std::ostringstream os;
  os << "{\"feasible\": " << (result.feasible ? "true" : "false");
  if (!result.feasible) {
    os << ", \"reason\": \"" << result.reason << "\"}";
    return os.str();
  }
  os << ", \"measured_cycles\": " << JsonNum(result.measured_cycles)
     << ", \"predicted_cycles\": " << JsonNum(result.predicted_cycles)
     << ", \"bottleneck_limiter\": \"" << result.bottleneck_limiter << "\""
     << ", \"profile_verdict\": \"" << result.profile_verdict << "\""
     << ", \"roofline_agrees\": "
     << (result.roofline_agrees ? "true" : "false")
     << ", \"profile_agrees\": "
     << (result.profile_agrees ? "true" : "false") << ", \"terms\": {";
  for (size_t i = 0; i < result.terms.size(); ++i) {
    const TermError& term = result.terms[i];
    if (i > 0) os << ", ";
    os << "\"" << term.name << "\": {\"analytical\": "
       << JsonNum(term.analytical)
       << ", \"measured\": " << JsonNum(term.measured)
       << ", \"rel_error\": " << JsonNum(term.rel_error) << "}";
  }
  os << "}, \"roofline\": " << RooflineToJson(result.roofline) << "}";
  return os.str();
}

}  // namespace perfmodel
}  // namespace alcop
