#include "perfmodel/analytical.h"

#include <algorithm>
#include <limits>

#include "schedule/lower.h"
#include "sim/launch.h"
#include "support/check.h"
#include "target/occupancy.h"

namespace alcop {
namespace perfmodel {

using schedule::GemmOp;
using schedule::ScheduleConfig;

double PipelineLatencyModel(double t_load, double t_use, int64_t n_loop,
                            int64_t n_pipe, int64_t n_mplx) {
  ALCOP_CHECK_GE(n_pipe, 1);
  ALCOP_CHECK_GE(n_mplx, 1);
  ALCOP_CHECK_GE(n_loop, 1);
  // During one chunk's load, the compute units can serve the other
  // in-flight chunks of this pipeline (N_pipe) and the other multiplexed
  // workers (N_mplx). If that overlap covers the load, the loop runs at
  // compute speed; otherwise loading is the bottleneck and N_pipe-deep
  // overlap divides the per-iteration latency.
  if (t_load <= static_cast<double>(n_pipe * n_mplx - 1) * t_use) {
    return t_use * static_cast<double>(n_loop);
  }
  return (t_load + t_use) * static_cast<double>(n_loop) /
         static_cast<double>(n_pipe);
}

namespace {

// SM utilization as a function of resident parallelism: the tensor cores
// sit in four SM sub-partitions, so at least four resident warps are
// needed for full issue; beyond that, utilization saturates. (The paper
// learns this from profiling; this is the simulator-calibrated form.)
double Util(int warps_per_tb, int tb_per_sm) {
  double active = static_cast<double>(warps_per_tb) * tb_per_sm;
  return std::min(1.0, active / 4.0);
}

}  // namespace

AnalyticalBreakdown AnalyticalModel(const GemmOp& op,
                                    const ScheduleConfig& config,
                                    const target::GpuSpec& spec) {
  AnalyticalBreakdown out;
  std::string why;
  if (!schedule::ValidateConfig(op, config, &why)) {
    out.reason = "invalid schedule: " + why;
    return out;
  }
  const schedule::TileConfig& t = config.tile;

  target::ThreadblockResources res = schedule::ComputeResources(op, config);
  target::Occupancy occ = target::ComputeOccupancy(spec, res);
  if (occ.threadblocks_per_sm == 0) {
    out.reason = std::string("threadblock does not fit: ") +
                 target::LimiterName(occ.limiter);
    return out;
  }
  out.threadblocks_per_sm = occ.threadblocks_per_sm;

  int64_t grid_m = op.m / t.tb_m;
  int64_t grid_n = op.n / t.tb_n;
  int64_t total_tbs = op.batch * grid_m * grid_n * config.split_k;
  out.batches = target::NumThreadblockBatches(spec, occ, total_tbs);
  int64_t batch_tbs = std::min<int64_t>(
      total_tbs, static_cast<int64_t>(occ.threadblocks_per_sm) * spec.num_sms);
  // Threadblocks actually resident on one SM in a full batch. Occupancy
  // bounds it from above, but a small grid spreads across SMs first (the
  // simulator's wave scheduler does the same min in sim/launch.cc), so the
  // per-SM multiplexing terms must use the wave residency, not the
  // occupancy bound — this was the source of the large t_compute and
  // t_reg_load calibration errors on low-residency configs.
  int wave_tbs = static_cast<int>(std::min<int64_t>(
      occ.threadblocks_per_sm, (batch_tbs + spec.num_sms - 1) / spec.num_sms));
  out.resident_tbs = wave_tbs;

  int warps = config.NumWarps();
  int64_t n_smem_loop = op.k / (t.tb_k * config.split_k);
  int64_t n_reg_loop = t.tb_k / t.warp_k;

  // ---- Computation latency model ----
  // One inner-loop step of every resident warp, on the SM's tensor cores.
  double flops_sm_step = 2.0 * static_cast<double>(t.warp_m) * t.warp_n *
                         t.warp_k * warps * wave_tbs;
  out.t_compute = spec.model_fit.t_compute.Apply(
      flops_sm_step /
      (spec.tc_flops_per_sm_per_cycle * Util(warps, wave_tbs)));

  // ---- Memory latency model (shared-memory load: one outer iteration) ----
  sim::TrafficAnalysis traffic =
      sim::AnalyzeTraffic(op, config, spec, occ.threadblocks_per_sm);
  double bytes_one_smem_loop =
      static_cast<double>(t.tb_m + t.tb_n) * t.tb_k * 2.0;
  double t_llc_load =
      spec.llc_latency_cycles +
      bytes_one_smem_loop * static_cast<double>(batch_tbs) /
          spec.llc_bw_bytes_per_cycle;
  double dram_bytes_one_loop =
      (static_cast<double>(t.tb_m) * t.tb_k * traffic.a_dram_fraction +
       static_cast<double>(t.tb_n) * t.tb_k * traffic.b_dram_fraction) *
      2.0;
  double t_dram_load =
      spec.dram_latency_cycles +
      dram_bytes_one_loop * static_cast<double>(batch_tbs) /
          spec.dram_bw_bytes_per_cycle;
  out.t_smem_load = std::max(t_llc_load, t_dram_load);

  // Register load: one inner iteration of every resident warp through the
  // LDS pipe.
  double lds_rate = spec.lds_bytes_per_cycle_per_sm /
                    (config.swizzle ? 1.0 : spec.bank_conflict_factor);
  double reg_bytes_step = static_cast<double>(t.warp_m + t.warp_n) *
                          t.warp_k * 2.0 * warps * wave_tbs;
  out.t_reg_load = spec.model_fit.t_reg_load.Apply(
      spec.smem_latency_cycles + reg_bytes_step / lds_rate);

  // ---- Inner pipeline: the use phase of the outer loop ----
  // The PLM view of the inner loop, kept for the Table-I breakdown and
  // the stall profiler's load-bound verdicts.
  out.t_smem_use =
      PipelineLatencyModel(out.t_reg_load, out.t_compute, n_reg_loop,
                           config.reg_stages, warps);
  out.load_bound_inner =
      out.t_reg_load >
      static_cast<double>(config.reg_stages * warps - 1) * out.t_compute;
  out.load_bound_outer =
      out.t_smem_load >
      static_cast<double>(config.smem_stages * wave_tbs - 1) * out.t_smem_use;

  // ---- Steady-state main loop (DELTA on Table I) ----
  // Table I's PLM assumes pipeline stages and multiplexed threadblocks
  // hide whole load phases; the event-driven simulator (and a real SM)
  // charges per-iteration costs the PLM cannot see. The main loop is
  // instead modeled as n_smem_loop repetitions of an initiation interval:
  // the binding per-outer-iteration resource bound on one SM, plus the
  // fitted per-iteration scheduling overhead. Resource candidates:
  //   - tensor pipe and LDS pipe busy time of all resident warps,
  //   - LLC / DRAM transfer time of the SM's tile traffic slice,
  //   - the per-warp serial path (copy issue + inner-loop issue),
  //   - the dependence chain (issue + blended latency + transfer) that
  //     smem_stages-deep pipelining divides but cannot eliminate.
  const target::ModelFit& fit = spec.model_fit;
  int active_sms = static_cast<int>(std::min<int64_t>(
      spec.num_sms, (batch_tbs + wave_tbs - 1) / wave_tbs));
  double c_tensor = static_cast<double>(n_reg_loop) * out.t_compute;
  double c_lds = static_cast<double>(n_reg_loop) *
                 std::max(0.0, out.t_reg_load - spec.smem_latency_cycles);
  double c_llc = bytes_one_smem_loop * wave_tbs * active_sms /
                 spec.llc_bw_bytes_per_cycle;
  double c_dram = dram_bytes_one_loop * wave_tbs * active_sms /
                  spec.dram_bw_bytes_per_cycle;
  double c_issue =
      bytes_one_smem_loop / warps / spec.copy_issue_bytes_per_cycle;
  double warp_mma = 2.0 * static_cast<double>(t.warp_m) * t.warp_n *
                    t.warp_k / (spec.tc_flops_per_sm_per_cycle / 4.0);
  double warp_reg = static_cast<double>(t.warp_m + t.warp_n) * t.warp_k *
                    2.0 * warps * wave_tbs / lds_rate;
  double inner_serial =
      static_cast<double>(n_reg_loop) * std::max(warp_mma, warp_reg) +
      (config.reg_stages == 1
           ? fit.inner_latency_cycles * static_cast<double>(n_reg_loop)
           : fit.inner_latency_cycles);
  double c_serial = c_issue + inner_serial + fit.iter_overhead_cycles;
  double dram_frac =
      std::max(traffic.a_dram_fraction, traffic.b_dram_fraction);
  double blended_latency = (1.0 - dram_frac) * spec.llc_latency_cycles +
                           dram_frac * spec.dram_latency_cycles;
  // Dependence chain: with one effective buffer the next load waits for
  // this iteration's consumers (full serialization); with more, the
  // chain overlaps stage-deep. Register pipelining holds shared-memory
  // stages longer (the inner pipeline drains before the buffer frees),
  // so the effective depth is smem_stages - (reg_stages - 1).
  int eff_stages =
      std::max(1, config.smem_stages - (config.reg_stages - 1));
  double load_chain = c_issue + blended_latency + std::max(c_llc, c_dram);
  double c_dep = eff_stages == 1
                     ? (load_chain + inner_serial) * fit.dep_latency_scale
                     : load_chain * fit.dep_latency_scale / eff_stages;
  out.t_iter = std::max({c_tensor, c_lds, c_llc, c_dram, c_serial, c_dep}) +
               fit.iter_overhead_cycles;
  out.t_main_loop = static_cast<double>(n_smem_loop) * out.t_iter;

  // ---- Init: first chunks travel the full hierarchy, then the pipeline
  // ramps for smem_stages - 1 iterations ----
  out.t_init = fit.fill_scale * (out.t_smem_load + out.t_reg_load) +
               static_cast<double>(config.smem_stages - 1) * out.t_iter;

  // ---- Epilogue model (DELTA) ----
  // Split-K kernels write fp32 partial tiles to the workspace.
  double out_elem_bytes = config.split_k > 1 ? 4.0 : 2.0;
  double output_tile_bytes =
      static_cast<double>(t.tb_m) * t.tb_n * out_elem_bytes;
  out.t_epilogue = spec.dram_latency_cycles +
                   output_tile_bytes * static_cast<double>(batch_tbs) /
                       spec.dram_write_bw_bytes_per_cycle;

  double t_threadblk = out.t_init + out.t_main_loop + out.t_epilogue;
  out.cycles = spec.launch_overhead_cycles +
               t_threadblk * static_cast<double>(out.batches);

  // Split-K reduction pass (memory-bound, own launch).
  if (config.split_k > 1) {
    double out_elems = static_cast<double>(op.batch * op.m * op.n);
    double reduce_bytes =
        out_elems * (4.0 * static_cast<double>(config.split_k) + 2.0);
    out.cycles += spec.launch_overhead_cycles +
                  reduce_bytes / spec.dram_bw_bytes_per_cycle;
  }

  out.feasible = true;
  return out;
}

double PredictCycles(const GemmOp& op, const ScheduleConfig& config,
                     const target::GpuSpec& spec) {
  AnalyticalBreakdown breakdown = AnalyticalModel(op, config, spec);
  if (!breakdown.feasible) return std::numeric_limits<double>::infinity();
  return breakdown.cycles;
}

}  // namespace perfmodel
}  // namespace alcop
