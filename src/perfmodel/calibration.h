// Model-calibration audit: maps each term of the Table-I analytical
// breakdown (perfmodel/analytical.h) to its measured counterpart — PMU
// counters (sim/pmu.h) for the rate terms, the stall profiler's
// fill/drain split (obs/stall.h) for the phase terms — and reports the
// per-term relative error. This is the Fig. 12 experiment turned into a
// permanent harness: bench/calibration.cc sweeps it over the Fig. 10
// configs and gates on the bottleneck-verdict agreement rate.
//
// Term mapping (per steady-state batch of one SM; n_outer = number of
// shared-memory main-loop iterations, n_inner = register-pipeline
// iterations per outer step):
//   cycles       vs  replayed KernelTiming.cycles
//   t_threadblk  vs  batch makespan (KernelTiming.batch_cycles)
//   t_init       vs  fill_fraction x makespan
//   t_main_loop  vs  (1 - fill - drain) x makespan
//   t_epilogue   vs  drain_fraction x makespan
//   t_compute    vs  tensor-pipe active cycles per inner step, utilization
//                    corrected (the four tensor partitions)
//   t_smem_load  vs  max(LLC, DRAM) latency + measured bytes per outer
//                    step over the SM's bandwidth slice
//   t_reg_load   vs  LDS latency + measured bytes per inner step over the
//                    LDS rate
// t_smem_use is skipped: the model derives it from t_reg_load/t_compute
// through the PLM, so a measured counterpart would be circular.
#ifndef ALCOP_PERFMODEL_CALIBRATION_H_
#define ALCOP_PERFMODEL_CALIBRATION_H_

#include <string>
#include <vector>

#include "perfmodel/analytical.h"
#include "perfmodel/roofline.h"
#include "schedule/schedule.h"
#include "sim/desim.h"
#include "sim/pmu.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace perfmodel {

// One analytical term against its measurement.
struct TermError {
  std::string name;
  double analytical = 0.0;
  double measured = 0.0;
  double rel_error = 0.0;  // |analytical - measured| / max(|measured|, eps)
};

struct CalibrationResult {
  bool feasible = false;
  std::string reason;

  double measured_cycles = 0.0;
  double predicted_cycles = 0.0;
  std::vector<TermError> terms;

  sim::KernelPmu pmu;
  RooflinePoint roofline;

  // Verdict cross-checks: the bottleneck model's limiter against the
  // PMU-derived roofline regime and against the stall profiler's
  // measured verdict (both binarized compute-vs-memory).
  std::string bottleneck_limiter;
  std::string profile_verdict;
  bool roofline_agrees = false;
  bool profile_agrees = false;
};

// Simulates one schedule (replay core, PMU enabled, one profiled batch
// timeline) and audits the analytical model against the measurements.
// `arena` may be null (a thread-local arena is used).
CalibrationResult CalibrateConfig(const schedule::GemmOp& op,
                                  const schedule::ScheduleConfig& config,
                                  const target::GpuSpec& spec,
                                  sim::ReplayArena* arena = nullptr);

// JSON object (no trailing newline).
std::string CalibrationToJson(const CalibrationResult& result);

}  // namespace perfmodel
}  // namespace alcop

#endif  // ALCOP_PERFMODEL_CALIBRATION_H_
