// Model-calibration audit: maps each term of the Table-I analytical
// breakdown (perfmodel/analytical.h) to its measured counterpart — PMU
// counters (sim/pmu.h) for the rate terms, the stall profiler's
// fill/drain split (obs/stall.h) for the phase terms — and reports the
// per-term relative error. This is the Fig. 12 experiment turned into a
// permanent harness: bench/calibration.cc sweeps it over the Fig. 10
// configs and gates on the bottleneck-verdict agreement rate.
//
// Term mapping (per steady-state batch of one SM; n_outer = number of
// shared-memory main-loop iterations, n_inner = register-pipeline
// iterations per outer step):
//   cycles       vs  replayed KernelTiming.cycles
//   t_threadblk  vs  batch makespan (KernelTiming.batch_cycles)
//   t_init       vs  fill_fraction x makespan
//   t_main_loop  vs  (1 - fill - drain) x makespan
//   t_epilogue   vs  drain_fraction x makespan
//   t_compute    vs  tensor-pipe active cycles per inner step, utilization
//                    corrected (the four tensor partitions)
//   t_smem_load  vs  max(LLC, DRAM) latency + measured bytes per outer
//                    step over the SM's bandwidth slice
//   t_reg_load   vs  LDS latency + measured bytes per inner step over the
//                    LDS rate
// t_smem_use is skipped: the model derives it from t_reg_load/t_compute
// through the PLM, so a measured counterpart would be circular.
#ifndef ALCOP_PERFMODEL_CALIBRATION_H_
#define ALCOP_PERFMODEL_CALIBRATION_H_

#include <string>
#include <vector>

#include "perfmodel/analytical.h"
#include "perfmodel/roofline.h"
#include "schedule/schedule.h"
#include "sim/desim.h"
#include "sim/pmu.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace perfmodel {

// One analytical term against its measurement.
struct TermError {
  std::string name;
  double analytical = 0.0;
  double measured = 0.0;
  double rel_error = 0.0;  // |analytical - measured| / max(|measured|, eps)
};

struct CalibrationResult {
  bool feasible = false;
  std::string reason;

  double measured_cycles = 0.0;
  double predicted_cycles = 0.0;
  std::vector<TermError> terms;

  sim::KernelPmu pmu;
  RooflinePoint roofline;

  // Verdict cross-checks: the bottleneck model's limiter against the
  // PMU-derived roofline regime and against the stall profiler's
  // measured verdict (both binarized compute-vs-memory).
  std::string bottleneck_limiter;
  std::string profile_verdict;
  bool roofline_agrees = false;
  bool profile_agrees = false;
};

// Simulates one schedule (replay core, PMU enabled, one profiled batch
// timeline) and audits the analytical model against the measurements.
// `arena` may be null (a thread-local arena is used).
CalibrationResult CalibrateConfig(const schedule::GemmOp& op,
                                  const schedule::ScheduleConfig& config,
                                  const target::GpuSpec& spec,
                                  sim::ReplayArena* arena = nullptr);

// JSON object (no trailing newline).
std::string CalibrationToJson(const CalibrationResult& result);

// ---- Rank quality ----
// How well a predicted ordering (smaller = better) agrees with measured
// ground truth: Kendall tau-b over all pairs plus top-k recall (of the k
// best measured configs, the fraction also ranked in the predicted top
// k). Infinite predictions sort last; ties break by index so the metric
// is deterministic.
struct RankQuality {
  int64_t count = 0;
  int k = 0;
  double kendall_tau = 0.0;
  double topk_recall = 0.0;
};

RankQuality ComputeRankQuality(const std::vector<double>& predicted,
                               const std::vector<double>& measured, int k);

// The metric the model-guided pruning cut (tuner::SpaceOptions::model_topk)
// is gated on: of the `top` best *measured* configs, the fraction that is
// effectively preserved when only the predicted top-`cut` survive. A top
// config counts as covered if it survives the cut itself, or if some
// survivor measures within `tolerance` (e.g. 1.01 = 1%) of it — pruning a
// config is harmless when an equally-fast one is kept. `best_survives`
// additionally reports whether the exact measured optimum survives the
// cut (the best-found-unchanged guarantee the tuning bench asserts).
struct CoverageRecall {
  int64_t count = 0;
  int top = 0;
  int cut = 0;
  double coverage = 0.0;
  bool best_survives = false;
};

CoverageRecall ComputeCoverageRecall(const std::vector<double>& predicted,
                                     const std::vector<double>& measured,
                                     int top, int cut, double tolerance);

// ---- Residual-term fitting (`alcop_cli calibrate --fit`) ----
// Weighted least squares of `scale * analytical + bias` against the
// PMU-measured counterpart for the two flagged Table-I terms, over a
// strided sweep of each operator's schedule space. The fit is computed
// against the *structural* model (spec's checked-in corrections zeroed
// out), so re-running it is idempotent.
struct TermFitReport {
  std::string name;
  target::TermFit fit;
  int64_t samples = 0;
  double mean_rel_error_before = 0.0;
  double mean_rel_error_after = 0.0;
  double p90_rel_error_after = 0.0;
};

struct ModelFitReport {
  target::ModelFit fit;
  std::vector<TermFitReport> terms;  // t_compute, t_reg_load
  // Composition-constant grid search: mean |log(pred/measured)| over the
  // sweep plus a top-16 regret penalty per operator (so the fit favors
  // constants that rank well, not just ones that minimize cycle error).
  double composition_objective = 0.0;
  double composition_mean_log_error = 0.0;
  int64_t composition_samples = 0;
};

ModelFitReport FitModelCorrections(const std::vector<schedule::GemmOp>& ops,
                                   const target::GpuSpec& spec,
                                   size_t stride = 8);

std::string ModelFitReportToJson(const ModelFitReport& report);

}  // namespace perfmodel
}  // namespace alcop

#endif  // ALCOP_PERFMODEL_CALIBRATION_H_
