#include "perfmodel/roofline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace alcop {
namespace perfmodel {

namespace {

double Intensity(double flops, double bytes) {
  if (bytes <= 0.0) return std::numeric_limits<double>::infinity();
  return flops / bytes;
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e9999" : "-1e9999";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

RooflinePoint ClassifyRoofline(const sim::KernelPmu& pmu,
                               double measured_cycles,
                               const target::GpuSpec& spec) {
  RooflinePoint out;
  const sim::PmuCounters& c = pmu.total;
  const double sms = static_cast<double>(spec.num_sms);
  const double llc_bw_sm = spec.llc_bw_bytes_per_cycle / sms;
  const double dram_bw_sm = spec.dram_bw_bytes_per_cycle / sms;
  const double dram_write_bw_sm = spec.dram_write_bw_bytes_per_cycle / sms;
  const double lds_bw = spec.lds_bytes_per_cycle_per_sm;
  const double peak = spec.tc_flops_per_sm_per_cycle;

  const double dram_bytes = c.dram_read_bytes + c.dram_write_bytes;
  out.ai_dram = Intensity(c.flops, dram_bytes);
  out.ai_llc = Intensity(c.flops, c.llc_read_bytes);
  out.ai_lds = Intensity(c.flops, c.lds_read_bytes);
  out.ridge_ai_dram = peak / dram_bw_sm;
  out.ridge_ai_llc = peak / llc_bw_sm;
  out.ridge_ai_lds = peak / lds_bw;

  out.compute_cycles = c.flops / peak;
  out.llc_cycles = c.llc_read_bytes / llc_bw_sm;
  // Reads and writes travel independent DRAM channels in the simulator,
  // so the DRAM demand is the slower of the two, not their sum.
  out.dram_cycles = std::max(c.dram_read_bytes / dram_bw_sm,
                             c.dram_write_bytes / dram_write_bw_sm);
  out.lds_cycles = c.lds_read_bytes / lds_bw;

  double top = out.compute_cycles;
  out.regime = "compute";
  if (out.llc_cycles > top) {
    top = out.llc_cycles;
    out.regime = "llc";
  }
  if (out.dram_cycles > top) {
    top = out.dram_cycles;
    out.regime = "dram";
  }
  if (out.lds_cycles > top) {
    top = out.lds_cycles;
    out.regime = "lds";
  }

  out.peak_flops_per_cycle = peak;
  out.roof_flops_per_cycle = top > 0.0 ? c.flops / top : peak;
  out.attained_flops_per_cycle =
      measured_cycles > 0.0 ? c.flops / measured_cycles : 0.0;
  out.efficiency = out.roof_flops_per_cycle > 0.0
                       ? out.attained_flops_per_cycle / out.roof_flops_per_cycle
                       : 0.0;
  return out;
}

bool RooflineAgreesWithLimiter(const RooflinePoint& point,
                               const std::string& limiter) {
  return (point.regime == "compute") == (limiter == "compute");
}

std::string RooflineToJson(const RooflinePoint& point) {
  std::ostringstream os;
  os << "{\"regime\": \"" << point.regime << "\""
     << ", \"ai_dram\": " << JsonNum(point.ai_dram)
     << ", \"ai_llc\": " << JsonNum(point.ai_llc)
     << ", \"ai_lds\": " << JsonNum(point.ai_lds)
     << ", \"ridge_ai_dram\": " << JsonNum(point.ridge_ai_dram)
     << ", \"ridge_ai_llc\": " << JsonNum(point.ridge_ai_llc)
     << ", \"ridge_ai_lds\": " << JsonNum(point.ridge_ai_lds)
     << ", \"compute_cycles\": " << JsonNum(point.compute_cycles)
     << ", \"llc_cycles\": " << JsonNum(point.llc_cycles)
     << ", \"dram_cycles\": " << JsonNum(point.dram_cycles)
     << ", \"lds_cycles\": " << JsonNum(point.lds_cycles)
     << ", \"peak_flops_per_cycle\": " << JsonNum(point.peak_flops_per_cycle)
     << ", \"roof_flops_per_cycle\": " << JsonNum(point.roof_flops_per_cycle)
     << ", \"attained_flops_per_cycle\": "
     << JsonNum(point.attained_flops_per_cycle)
     << ", \"efficiency\": " << JsonNum(point.efficiency) << "}";
  return os.str();
}

}  // namespace perfmodel
}  // namespace alcop
