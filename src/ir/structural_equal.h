// Structural equality over expressions and statements, with alpha-
// equivalence of loop variables and optional buffer remapping. Used by the
// transformation tests to compare pass output against hand-built expected
// IR without requiring pointer-identical Vars/Buffers.
#ifndef ALCOP_IR_STRUCTURAL_EQUAL_H_
#define ALCOP_IR_STRUCTURAL_EQUAL_H_

#include "ir/stmt.h"

namespace alcop {
namespace ir {

// Equality of two expressions given no free variables are expected to
// match by identity; variables must map one-to-one in visit order.
bool StructuralEqual(const Expr& a, const Expr& b);

// Equality of two statement trees: loop variables are alpha-equivalent,
// buffers match if their name/scope/shape/elem_bytes match.
bool StructuralEqual(const Stmt& a, const Stmt& b);

}  // namespace ir
}  // namespace alcop

#endif  // ALCOP_IR_STRUCTURAL_EQUAL_H_
