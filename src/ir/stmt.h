// Statement IR (tile-granular Tensor-IR).
//
// The statement level matches the paper's Fig. 7: for-loops over tile
// indices, region copies between memory-hierarchy levels, warp-tile MMA
// operations, and — after the pipelining transformation — asynchronous
// copies guarded by the four pipeline synchronization primitives
// (producer_acquire / producer_commit / consumer_wait / consumer_release).
//
// Like expressions, statements are immutable shared_ptr nodes; passes
// rebuild the spine they change and share everything else.
#ifndef ALCOP_IR_STMT_H_
#define ALCOP_IR_STMT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/buffer.h"
#include "ir/expr.h"

namespace alcop {
namespace ir {

enum class StmtKind {
  kBlock,
  kFor,
  kAlloc,
  kCopy,
  kFill,
  kMma,
  kSync,
  kPragma,
  kIfThenElse,
};

// Loop annotation. kBlockIdx loops are the threadblock-parallel spatial
// loops (inter-tile parallelism); kWarp loops are warp-parallel within a
// threadblock. Pipelining only applies across kSerial loops (Sec. II-A,
// rule 2).
enum class ForKind {
  kSerial,
  kUnrolled,
  kBlockIdx,
  kWarp,
};

const char* ForKindName(ForKind kind);

// Pipeline synchronization primitives (Sec. III-B, fifth step) plus the
// plain threadblock barrier used by non-pipelined code.
enum class SyncKind {
  kBarrier,
  kProducerAcquire,
  kProducerCommit,
  kConsumerWait,
  kConsumerRelease,
};

const char* SyncKindName(SyncKind kind);

// Elementwise function optionally fused into a Copy (paper Fig. 5's f(.)).
// A non-kNone op on a Global->Shared copy makes the copy non-asynchronous
// (cp.async cannot apply ALU ops in flight), which is exactly the legality
// rule the schedule-ordering study exercises.
enum class EwiseOp {
  kNone,
  kRelu,
  kGelu,
  kScale,     // x * param
  kAddConst,  // x + param
};

const char* EwiseOpName(EwiseOp op);
double ApplyEwise(EwiseOp op, double param, double x);

// Source location of a statement parsed from textual IR (1-based; 0 means
// "not from text", e.g. IR built programmatically by the lowering).
// Diagnostics (src/verify/diagnostic.h) carry spans so `alcop_cli verify`
// can point at the offending line of a .tir file.
struct SourceSpan {
  int line = 0;
  int column = 0;

  bool IsKnown() const { return line > 0; }
};

class StmtNode;
using Stmt = std::shared_ptr<const StmtNode>;

class StmtNode {
 public:
  explicit StmtNode(StmtKind kind) : kind(kind) {}
  virtual ~StmtNode() = default;

  StmtKind kind;

  // Set by the parser right after construction; mutable because statements
  // are shared as immutable nodes and the span is pure metadata (it takes
  // no part in structural equality or printing).
  mutable SourceSpan span;
};

// Sequential composition.
class BlockNode final : public StmtNode {
 public:
  explicit BlockNode(std::vector<Stmt> seq)
      : StmtNode(StmtKind::kBlock), seq(std::move(seq)) {}
  std::vector<Stmt> seq;
};

// `for var in 0..extent (kind) { body }` — all loops start at zero.
class ForNode final : public StmtNode {
 public:
  ForNode(Var var, Expr extent, ForKind for_kind, Stmt body)
      : StmtNode(StmtKind::kFor),
        var(std::move(var)),
        extent(std::move(extent)),
        for_kind(for_kind),
        body(std::move(body)) {}
  Var var;
  Expr extent;
  ForKind for_kind;
  Stmt body;
};

// Buffer declaration. Placed at the top of the scope that owns the buffer;
// the pipeline transformation rewrites it when expanding stage counts.
class AllocNode final : public StmtNode {
 public:
  explicit AllocNode(Buffer buffer)
      : StmtNode(StmtKind::kAlloc), buffer(std::move(buffer)) {}
  Buffer buffer;
};

// Region copy dst <- op(src). `is_async` is set by the pipeline
// transformation when the copy is turned into an asynchronous one;
// `pipeline_group` then links it to its synchronization group.
// `accumulate` makes the copy add into the destination (dst += op(src)),
// used by the split-K workspace reduction.
class CopyNode final : public StmtNode {
 public:
  CopyNode(BufferRegion dst, BufferRegion src, EwiseOp op = EwiseOp::kNone,
           double op_param = 0.0)
      : StmtNode(StmtKind::kCopy),
        dst(std::move(dst)),
        src(std::move(src)),
        op(op),
        op_param(op_param) {}
  BufferRegion dst;
  BufferRegion src;
  EwiseOp op;
  double op_param;
  bool is_async = false;
  bool accumulate = false;
  int pipeline_group = -1;
};

// Region fill (accumulator zero-initialization).
class FillNode final : public StmtNode {
 public:
  FillNode(BufferRegion dst, double value)
      : StmtNode(StmtKind::kFill), dst(std::move(dst)), value(value) {}
  BufferRegion dst;
  double value;
};

// Tensor-core warp-tile contraction: C[m,n] += sum_k A[m,k] * B[n,k]
// (B is stored k-major like the paper's algorithm C[i,j]=sum A[i,k]*B[j,k]).
// The last two dims of each region carry the tile; leading dims must be
// size-1 (they address pipeline stages).
class MmaNode final : public StmtNode {
 public:
  MmaNode(BufferRegion c, BufferRegion a, BufferRegion b)
      : StmtNode(StmtKind::kMma),
        c(std::move(c)),
        a(std::move(a)),
        b(std::move(b)) {}
  BufferRegion c;
  BufferRegion a;
  BufferRegion b;

  int64_t m() const { return c.sizes[c.sizes.size() - 2]; }
  int64_t n() const { return c.sizes[c.sizes.size() - 1]; }
  int64_t k() const { return a.sizes[a.sizes.size() - 1]; }
  // FLOPs performed (multiply-add counted as 2, matching GPU marketing
  // numbers and the paper's throughput model).
  int64_t Flops() const { return 2 * m() * n() * k(); }
};

// Synchronization. kBarrier has group == -1 and no buffers. The pipeline
// primitives carry the sync-group id and, for readability, the buffers
// whose pipeline the group guards (all in one memory scope — Sec. II-A
// rule 3).
class SyncNode final : public StmtNode {
 public:
  SyncNode(SyncKind sync_kind, int group, std::vector<Buffer> buffers)
      : StmtNode(StmtKind::kSync),
        sync_kind(sync_kind),
        group(group),
        buffers(std::move(buffers)) {}
  SyncKind sync_kind;
  int group;
  std::vector<Buffer> buffers;
  // For kConsumerWait: how many groups beyond the FIFO cursor must be
  // complete. 0 waits for the next unconsumed group (cuda::pipeline
  // semantics); 1 is used by an outer pipeline whose fused inner pipeline
  // prefetches one chunk ahead (cp.async.wait_group-style slack).
  int wait_ahead = 0;
};

// Scoped annotation, e.g. {key="pipeline_stages", buffer=A_shared, value=3}
// wrapped by the schedule transformation around the code the hint applies
// to; the program transformation collects these in its first analysis step.
class PragmaNode final : public StmtNode {
 public:
  PragmaNode(std::string key, Buffer buffer, int64_t value, Stmt body)
      : StmtNode(StmtKind::kPragma),
        key(std::move(key)),
        buffer(std::move(buffer)),
        value(value),
        body(std::move(body)) {}
  std::string key;
  Buffer buffer;
  int64_t value;
  Stmt body;
};

class IfThenElseNode final : public StmtNode {
 public:
  IfThenElseNode(Expr cond, Stmt then_case, Stmt else_case = nullptr)
      : StmtNode(StmtKind::kIfThenElse),
        cond(std::move(cond)),
        then_case(std::move(then_case)),
        else_case(std::move(else_case)) {}
  Expr cond;
  Stmt then_case;
  Stmt else_case;  // may be null
};

// ---- Construction helpers ----

Stmt Block(std::vector<Stmt> seq);
// Flattens nested Blocks and drops nulls; returns a single Stmt (possibly
// the lone child) for tidy IR.
Stmt FlatBlock(std::vector<Stmt> seq);
Stmt For(Var var, Expr extent, ForKind kind, Stmt body);
Stmt For(Var var, int64_t extent, ForKind kind, Stmt body);
Stmt Alloc(Buffer buffer);
Stmt Copy(BufferRegion dst, BufferRegion src, EwiseOp op = EwiseOp::kNone,
          double op_param = 0.0);
// dst += src (the split-K workspace reduction step).
Stmt AccumulateCopy(BufferRegion dst, BufferRegion src);
Stmt Fill(BufferRegion dst, double value);
Stmt Mma(BufferRegion c, BufferRegion a, BufferRegion b);
Stmt Sync(SyncKind kind, int group, std::vector<Buffer> buffers,
          int wait_ahead = 0);
Stmt Barrier();
Stmt Pragma(std::string key, Buffer buffer, int64_t value, Stmt body);
Stmt IfThenElse(Expr cond, Stmt then_case, Stmt else_case = nullptr);

// The canonical pipeline-hint pragma key attached by the schedule pass.
inline constexpr const char* kPipelinePragma = "pipeline_stages";

}  // namespace ir
}  // namespace alcop

#endif  // ALCOP_IR_STMT_H_
