#include "ir/parser.h"

#include <cctype>
#include <map>
#include <optional>

#include "obs/trace.h"
#include "support/check.h"
#include "verify/diagnostic.h"

namespace alcop {
namespace ir {

namespace {

// ---- Tokenizer ----

enum class TokKind {
  kIdent,
  kInt,
  kSymbol,  // one of ( ) [ ] { } , : . / = < > ! % * + - & |
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int64_t value = 0;
  size_t line = 0;
  size_t column = 0;  // 1-based column of the token's first character
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Next() {
    Token token = current_;
    Advance();
    return token;
  }

  bool AtEnd() const { return current_.kind == TokKind::kEnd; }

  size_t line() const { return line_; }

 private:
  void Advance() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)) {
      if (text_[pos_] == '\n') {
        ++line_;
        line_start_ = pos_ + 1;
      }
      ++pos_;
    }
    current_ = Token{};
    current_.line = line_;
    current_.column = pos_ - line_start_ + 1;
    if (pos_ >= text_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      size_t begin = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokKind::kIdent;
      current_.text = text_.substr(begin, pos_ - begin);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t begin = pos_;
      while (pos_ < text_.size()) {
        char d = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
          ++pos_;
          continue;
        }
        // A decimal point only if followed by a digit, so the range token
        // "0..64" stays three tokens.
        if (d == '.' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) != 0) {
          pos_ += 2;
          continue;
        }
        break;
      }
      current_.kind = TokKind::kInt;
      current_.text = text_.substr(begin, pos_ - begin);
      current_.value = std::stoll(current_.text);
      return;
    }
    // Multi-character operators the printer emits.
    for (const char* op : {"<-", "+=", "==", "!=", "<=", ">=", "&&", "||",
                           ".."}) {
      size_t len = 2;
      if (text_.compare(pos_, len, op) == 0) {
        current_.kind = TokKind::kSymbol;
        current_.text = op;
        pos_ += len;
        return;
      }
    }
    current_.kind = TokKind::kSymbol;
    current_.text = std::string(1, c);
    ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t line_start_ = 0;
  Token current_;
};

// ---- Parser ----

class Parser {
 public:
  Parser(const std::string& text, const std::vector<Buffer>& externals)
      : lexer_(text) {
    for (const Buffer& buffer : externals) {
      buffers_[buffer->name] = buffer;
    }
  }

  Stmt ParseProgram() {
    std::vector<Stmt> seq;
    while (!lexer_.AtEnd() && lexer_.Peek().text != "}") {
      seq.push_back(ParseOne());
    }
    if (seq.empty()) Fail("empty program");
    return FlatBlock(std::move(seq));
  }

  Expr ParseTopLevelExpr() { return ParseOr(); }

  void BindVar(const Var& var) { vars_[var->name] = var; }

 private:
  [[noreturn]] void Fail(const std::string& message) {
    std::ostringstream detail;
    detail << "parse error at line " << lexer_.Peek().line << ":"
           << lexer_.Peek().column << ": " << message << " (near '"
           << lexer_.Peek().text << "')";
    verify::Diagnostic diag;
    diag.severity = verify::Severity::kError;
    diag.code = "P001";
    diag.message = detail.str();
    throw CheckError(diag.Render());
  }

  Token Expect(TokKind kind, const std::string& what) {
    if (lexer_.Peek().kind != kind) Fail("expected " + what);
    return lexer_.Next();
  }

  void ExpectSymbol(const std::string& symbol) {
    if (lexer_.Peek().kind != TokKind::kSymbol ||
        lexer_.Peek().text != symbol) {
      Fail("expected '" + symbol + "'");
    }
    lexer_.Next();
  }

  bool ConsumeSymbol(const std::string& symbol) {
    if (lexer_.Peek().kind == TokKind::kSymbol &&
        lexer_.Peek().text == symbol) {
      lexer_.Next();
      return true;
    }
    return false;
  }

  bool ConsumeIdent(const std::string& ident) {
    if (lexer_.Peek().kind == TokKind::kIdent &&
        lexer_.Peek().text == ident) {
      lexer_.Next();
      return true;
    }
    return false;
  }

  Buffer LookupBuffer(const std::string& name) {
    auto it = buffers_.find(name);
    if (it == buffers_.end()) Fail("unknown buffer '" + name + "'");
    return it->second;
  }

  // ---- Statements ----

  Stmt ParseOne() {
    const Token& tok = lexer_.Peek();
    if (tok.kind != TokKind::kIdent) Fail("expected a statement");
    SourceSpan span{static_cast<int>(tok.line), static_cast<int>(tok.column)};
    Stmt stmt = ParseOneDispatch(tok.text);
    stmt->span = span;
    return stmt;
  }

  Stmt ParseOneDispatch(const std::string& keyword) {
    if (keyword == "alloc") return ParseAlloc();
    if (keyword == "for") return ParseFor();
    if (keyword == "copy") return ParseCopy();
    if (keyword == "fill") return ParseFill();
    if (keyword == "mma") return ParseMma();
    if (keyword == "barrier") {
      lexer_.Next();
      return Barrier();
    }
    if (keyword == "pragma") return ParsePragma();
    if (keyword == "if") return ParseIf();
    return ParseSync();  // NAME[/NAME].kind @groupN
  }

  Stmt ParseAlloc() {
    lexer_.Next();  // alloc
    std::string name = Expect(TokKind::kIdent, "buffer name").text;
    ExpectSymbol(":");
    std::string scope_name = Expect(TokKind::kIdent, "memory scope").text;
    MemScope scope;
    if (scope_name == "global") scope = MemScope::kGlobal;
    else if (scope_name == "shared") scope = MemScope::kShared;
    else if (scope_name == "register") scope = MemScope::kRegister;
    else if (scope_name == "accumulator") scope = MemScope::kAccumulator;
    else { Fail("unknown memory scope '" + scope_name + "'"); }
    std::string fp = Expect(TokKind::kIdent, "element type").text;
    ALCOP_CHECK(fp.size() > 2 && fp.substr(0, 2) == "fp")
        << "expected fpNN element type, got '" << fp << "'";
    int64_t bits = std::stoll(fp.substr(2));
    ExpectSymbol("[");
    std::vector<int64_t> shape;
    while (true) {
      shape.push_back(Expect(TokKind::kInt, "dimension").value);
      if (!ConsumeSymbol(",")) break;
    }
    ExpectSymbol("]");
    Buffer buffer = MakeBuffer(name, scope, std::move(shape), bits / 8);
    buffers_[name] = buffer;
    return Alloc(buffer);
  }

  Stmt ParseFor() {
    lexer_.Next();  // for
    std::string var_name = Expect(TokKind::kIdent, "loop variable").text;
    if (!ConsumeIdent("in")) Fail("expected 'in'");
    if (lexer_.Peek().kind == TokKind::kInt) lexer_.Next();  // the 0
    ExpectSymbol("..");
    Expr extent = ParsePrimary();
    std::string kind_name = Expect(TokKind::kIdent, "loop kind").text;
    ForKind kind;
    if (kind_name == "serial") kind = ForKind::kSerial;
    else if (kind_name == "unrolled") kind = ForKind::kUnrolled;
    else if (kind_name == "blockIdx") kind = ForKind::kBlockIdx;
    else if (kind_name == "warp") kind = ForKind::kWarp;
    else { Fail("unknown loop kind '" + kind_name + "'"); }

    Var var = MakeVar(var_name);
    // Shadowing: restore the previous binding after the body.
    auto previous = vars_.find(var_name);
    std::optional<Var> saved;
    if (previous != vars_.end()) saved = previous->second;
    vars_[var_name] = var;

    ExpectSymbol("{");
    Stmt body = ParseProgram();
    ExpectSymbol("}");

    if (saved.has_value()) {
      vars_[var_name] = *saved;
    } else {
      vars_.erase(var_name);
    }
    return For(var, extent, kind, body);
  }

  Stmt ParseCopy() {
    lexer_.Next();  // copy
    bool is_async = false;
    if (ConsumeSymbol(".")) {
      if (!ConsumeIdent("async")) Fail("expected 'async'");
      is_async = true;
    }
    BufferRegion dst = ParseRegion();
    bool accumulate = false;
    if (ConsumeSymbol("+=")) {
      accumulate = true;
    } else {
      ExpectSymbol("<-");
    }
    // Optional elementwise wrapper: op[param](region).
    EwiseOp op = EwiseOp::kNone;
    double param = 0.0;
    if (lexer_.Peek().kind == TokKind::kIdent) {
      std::string ident = lexer_.Peek().text;
      if (ident == "relu" || ident == "gelu" || ident == "scale" ||
          ident == "add_const") {
        lexer_.Next();
        if (ident == "relu") op = EwiseOp::kRelu;
        if (ident == "gelu") op = EwiseOp::kGelu;
        if (ident == "scale") op = EwiseOp::kScale;
        if (ident == "add_const") op = EwiseOp::kAddConst;
        if (ConsumeSymbol("[")) {
          bool negative = ConsumeSymbol("-");
          param = std::stod(Expect(TokKind::kInt, "op parameter").text);
          if (negative) param = -param;
          ExpectSymbol("]");
        }
        ExpectSymbol("(");
      }
    }
    BufferRegion src = ParseRegion();
    if (op != EwiseOp::kNone) ExpectSymbol(")");
    int group = ParseOptionalGroup();

    Stmt stmt = Copy(std::move(dst), std::move(src), op, param);
    auto node =
        std::make_shared<CopyNode>(*static_cast<const CopyNode*>(stmt.get()));
    node->is_async = is_async;
    node->accumulate = accumulate;
    node->pipeline_group = group;
    return node;
  }

  Stmt ParseFill() {
    lexer_.Next();  // fill
    BufferRegion dst = ParseRegion();
    ExpectSymbol("=");
    bool negative = ConsumeSymbol("-");
    Token value = Expect(TokKind::kInt, "fill value");
    double v = std::stod(value.text);
    return Fill(std::move(dst), negative ? -v : v);
  }

  Stmt ParseMma() {
    lexer_.Next();  // mma
    BufferRegion c = ParseRegion();
    ExpectSymbol("+=");
    BufferRegion a = ParseRegion();
    ExpectSymbol("*");
    BufferRegion b = ParseRegion();
    return Mma(std::move(c), std::move(a), std::move(b));
  }

  Stmt ParsePragma() {
    lexer_.Next();  // pragma
    std::string key = Expect(TokKind::kIdent, "pragma key").text;
    Buffer buffer;
    if (ConsumeSymbol("(")) {
      buffer = LookupOrDeclareForward(
          Expect(TokKind::kIdent, "buffer name").text);
      ExpectSymbol(")");
    }
    ExpectSymbol("=");
    int64_t value = Expect(TokKind::kInt, "pragma value").value;
    ExpectSymbol("{");
    Stmt body = ParseProgram();
    ExpectSymbol("}");
    // Forward-declared pragma buffers resolve to the alloc inside the body.
    if (buffer != nullptr && buffers_.count(buffer->name) != 0 &&
        buffers_[buffer->name].get() != buffer.get()) {
      buffer = buffers_[buffer->name];
    }
    return Pragma(key, buffer, value, body);
  }

  // Pragmas may name a buffer whose alloc appears inside their body; use a
  // placeholder resolved after the body parses.
  Buffer LookupOrDeclareForward(const std::string& name) {
    auto it = buffers_.find(name);
    if (it != buffers_.end()) return it->second;
    return MakeBuffer(name, MemScope::kShared, {1});
  }

  Stmt ParseIf() {
    lexer_.Next();  // if
    Expr cond = ParseOr();
    ExpectSymbol("{");
    Stmt then_case = ParseProgram();
    ExpectSymbol("}");
    Stmt else_case;
    if (ConsumeIdent("else")) {
      ExpectSymbol("{");
      else_case = ParseProgram();
      ExpectSymbol("}");
    }
    return IfThenElse(cond, then_case, else_case);
  }

  Stmt ParseSync() {
    std::vector<Buffer> buffers;
    buffers.push_back(
        LookupBuffer(Expect(TokKind::kIdent, "buffer name").text));
    while (ConsumeSymbol("/")) {
      buffers.push_back(
          LookupBuffer(Expect(TokKind::kIdent, "buffer name").text));
    }
    ExpectSymbol(".");
    std::string kind_name = Expect(TokKind::kIdent, "sync kind").text;
    SyncKind kind;
    if (kind_name == "producer_acquire") kind = SyncKind::kProducerAcquire;
    else if (kind_name == "producer_commit") kind = SyncKind::kProducerCommit;
    else if (kind_name == "consumer_wait") kind = SyncKind::kConsumerWait;
    else if (kind_name == "consumer_release") kind = SyncKind::kConsumerRelease;
    else { Fail("unknown sync kind '" + kind_name + "'"); }
    int wait_ahead = 0;
    if (ConsumeSymbol("(")) {
      if (!ConsumeIdent("ahead")) Fail("expected 'ahead'");
      ExpectSymbol("=");
      wait_ahead = static_cast<int>(Expect(TokKind::kInt, "ahead").value);
      ExpectSymbol(")");
    }
    int group = ParseOptionalGroup();
    ALCOP_CHECK_GE(group, 0) << "sync primitive requires @groupN";
    return Sync(kind, group, std::move(buffers), wait_ahead);
  }

  int ParseOptionalGroup() {
    if (!ConsumeSymbol("@")) return -1;
    std::string ident = Expect(TokKind::kIdent, "group tag").text;
    ALCOP_CHECK(ident.size() > 5 && ident.substr(0, 5) == "group")
        << "expected @groupN, got @" << ident;
    return std::stoi(ident.substr(5));
  }

  BufferRegion ParseRegion() {
    Buffer buffer =
        LookupBuffer(Expect(TokKind::kIdent, "buffer name").text);
    BufferRegion region;
    region.buffer = buffer;
    ExpectSymbol("[");
    while (true) {
      region.offsets.push_back(ParseOr());
      if (!ConsumeSymbol(",")) break;
    }
    ExpectSymbol("]");
    ExpectSymbol("[");
    while (true) {
      region.sizes.push_back(Expect(TokKind::kInt, "region size").value);
      if (!ConsumeSymbol(",")) break;
    }
    ExpectSymbol("]");
    return region;
  }

  // ---- Expressions (precedence mirrors the printer) ----

  Expr ParseOr() {
    Expr lhs = ParseAnd();
    while (ConsumeSymbol("||")) {
      lhs = Binary(ExprKind::kOr, lhs, ParseAnd());
    }
    return lhs;
  }

  Expr ParseAnd() {
    Expr lhs = ParseEquality();
    while (ConsumeSymbol("&&")) {
      lhs = Binary(ExprKind::kAnd, lhs, ParseEquality());
    }
    return lhs;
  }

  Expr ParseEquality() {
    Expr lhs = ParseComparison();
    while (true) {
      if (ConsumeSymbol("==")) {
        lhs = Binary(ExprKind::kEQ, lhs, ParseComparison());
      } else if (ConsumeSymbol("!=")) {
        lhs = Binary(ExprKind::kNE, lhs, ParseComparison());
      } else {
        return lhs;
      }
    }
  }

  Expr ParseComparison() {
    Expr lhs = ParseAdditive();
    while (true) {
      if (ConsumeSymbol("<=")) {
        lhs = Binary(ExprKind::kLE, lhs, ParseAdditive());
      } else if (ConsumeSymbol(">=")) {
        lhs = Binary(ExprKind::kGE, lhs, ParseAdditive());
      } else if (ConsumeSymbol("<")) {
        lhs = Binary(ExprKind::kLT, lhs, ParseAdditive());
      } else if (ConsumeSymbol(">")) {
        lhs = Binary(ExprKind::kGT, lhs, ParseAdditive());
      } else {
        return lhs;
      }
    }
  }

  Expr ParseAdditive() {
    Expr lhs = ParseMultiplicative();
    while (true) {
      if (ConsumeSymbol("+")) {
        lhs = Add(lhs, ParseMultiplicative());
      } else if (ConsumeSymbol("-")) {
        lhs = Sub(lhs, ParseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  Expr ParseMultiplicative() {
    Expr lhs = ParsePrimary();
    while (true) {
      if (ConsumeSymbol("*")) {
        lhs = Mul(lhs, ParsePrimary());
      } else if (ConsumeSymbol("/")) {
        lhs = FloorDiv(lhs, ParsePrimary());
      } else if (ConsumeSymbol("%")) {
        lhs = FloorMod(lhs, ParsePrimary());
      } else {
        return lhs;
      }
    }
  }

  Expr ParsePrimary() {
    if (ConsumeSymbol("(")) {
      Expr inner = ParseOr();
      ExpectSymbol(")");
      return inner;
    }
    if (ConsumeSymbol("-")) {
      return Sub(Int(0), ParsePrimary());
    }
    const Token& tok = lexer_.Peek();
    if (tok.kind == TokKind::kInt) {
      return Int(lexer_.Next().value);
    }
    if (tok.kind == TokKind::kIdent) {
      if (tok.text == "min" || tok.text == "max") {
        bool is_min = tok.text == "min";
        lexer_.Next();
        ExpectSymbol("(");
        Expr a = ParseOr();
        ExpectSymbol(",");
        Expr b = ParseOr();
        ExpectSymbol(")");
        return is_min ? Min(a, b) : Max(a, b);
      }
      std::string name = lexer_.Next().text;
      auto it = vars_.find(name);
      if (it == vars_.end()) Fail("unbound variable '" + name + "'");
      return it->second;
    }
    Fail("expected an expression");
  }

  Lexer lexer_;
  std::map<std::string, Buffer> buffers_;
  std::map<std::string, Var> vars_;
};

}  // namespace

Stmt ParseStmt(const std::string& text,
               const std::vector<Buffer>& external_buffers) {
  ALCOP_TRACE_SCOPE("parse", "compiler");
  Parser parser(text, external_buffers);
  Stmt program = parser.ParseProgram();
  return program;
}

Expr ParseExpr(const std::string& text, const std::vector<Var>& vars) {
  Parser parser(text, {});
  for (const Var& var : vars) parser.BindVar(var);
  return parser.ParseTopLevelExpr();
}

}  // namespace ir
}  // namespace alcop
