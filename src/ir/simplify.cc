#include "ir/simplify.h"

#include <algorithm>

#include "ir/functor.h"
#include "support/check.h"

namespace alcop {
namespace ir {

namespace {

int64_t FloorDivInt(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t FloorModInt(int64_t a, int64_t b) {
  int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

Expr SimplifyBinary(ExprKind kind, const Expr& a, const Expr& b) {
  int64_t ca = 0, cb = 0;
  bool const_a = AsConst(a, &ca);
  bool const_b = AsConst(b, &cb);

  if (const_a && const_b) {
    switch (kind) {
      case ExprKind::kAdd: return Int(ca + cb);
      case ExprKind::kSub: return Int(ca - cb);
      case ExprKind::kMul: return Int(ca * cb);
      case ExprKind::kFloorDiv:
        ALCOP_CHECK_NE(cb, 0) << "constant division by zero";
        return Int(FloorDivInt(ca, cb));
      case ExprKind::kFloorMod:
        ALCOP_CHECK_NE(cb, 0) << "constant modulo by zero";
        return Int(FloorModInt(ca, cb));
      case ExprKind::kMin: return Int(std::min(ca, cb));
      case ExprKind::kMax: return Int(std::max(ca, cb));
      case ExprKind::kLT: return Int(ca < cb);
      case ExprKind::kLE: return Int(ca <= cb);
      case ExprKind::kGT: return Int(ca > cb);
      case ExprKind::kGE: return Int(ca >= cb);
      case ExprKind::kEQ: return Int(ca == cb);
      case ExprKind::kNE: return Int(ca != cb);
      case ExprKind::kAnd: return Int(ca != 0 && cb != 0);
      case ExprKind::kOr: return Int(ca != 0 || cb != 0);
      default: break;
    }
  }

  switch (kind) {
    case ExprKind::kAdd:
      if (const_a && ca == 0) return b;
      if (const_b && cb == 0) return a;
      // Canonicalize constant to the right: (c + x) -> (x + c).
      if (const_a) return Binary(ExprKind::kAdd, b, a);
      // Re-associate ((x + c1) + c2) -> x + (c1+c2).
      if (const_b && a->kind == ExprKind::kAdd) {
        const auto* inner = static_cast<const BinaryNode*>(a.get());
        int64_t c1 = 0;
        if (AsConst(inner->b, &c1)) {
          return SimplifyBinary(ExprKind::kAdd, inner->a, Int(c1 + cb));
        }
      }
      break;
    case ExprKind::kSub:
      if (const_b && cb == 0) return a;
      break;
    case ExprKind::kMul:
      if ((const_a && ca == 0) || (const_b && cb == 0)) return Int(0);
      if (const_a && ca == 1) return b;
      if (const_b && cb == 1) return a;
      if (const_a) return Binary(ExprKind::kMul, b, a);
      break;
    case ExprKind::kFloorDiv:
      if (const_b && cb == 1) return a;
      if (const_a && ca == 0) return Int(0);
      break;
    case ExprKind::kFloorMod:
      if (const_b && cb == 1) return Int(0);
      if (const_a && ca == 0) return Int(0);
      // (x % n) % n -> x % n
      if (const_b && a->kind == ExprKind::kFloorMod) {
        const auto* inner = static_cast<const BinaryNode*>(a.get());
        int64_t n = 0;
        if (AsConst(inner->b, &n) && n == cb) return a;
      }
      break;
    case ExprKind::kMin:
    case ExprKind::kMax:
      if (a.get() == b.get()) return a;
      break;
    case ExprKind::kAnd:
      if (const_a) return ca != 0 ? b : Int(0);
      if (const_b) return cb != 0 ? a : Int(0);
      break;
    case ExprKind::kOr:
      if (const_a) return ca != 0 ? Int(1) : b;
      if (const_b) return cb != 0 ? Int(1) : a;
      break;
    default:
      break;
  }
  return Binary(kind, a, b);
}

class ExprSimplifier final : public ExprMutator {
 protected:
  Expr MutateBinary(const Expr& e, const BinaryNode* op) override {
    Expr a = MutateExpr(op->a);
    Expr b = MutateExpr(op->b);
    Expr simplified = SimplifyBinary(e->kind, a, b);
    // Keep the original node when nothing changed, preserving sharing.
    if (simplified->kind == e->kind) {
      const auto* bin = static_cast<const BinaryNode*>(simplified.get());
      if (bin->a.get() == op->a.get() && bin->b.get() == op->b.get()) return e;
    }
    return simplified;
  }
};

class StmtSimplifier final : public StmtMutator {
 protected:
  // Canonicalizes block structure: nested blocks are spliced into their
  // parent and empty blocks dropped, so structurally-equal programs have
  // identical trees regardless of how passes grouped their statements.
  Stmt MutateBlock(const Stmt& s, const BlockNode* op) override {
    Stmt base = StmtMutator::MutateBlock(s, op);
    const auto* block = static_cast<const BlockNode*>(base.get());
    bool needs_flatten = false;
    for (const Stmt& child : block->seq) {
      if (child->kind == StmtKind::kBlock) {
        needs_flatten = true;
        break;
      }
    }
    if (!needs_flatten) return base;
    std::vector<Stmt> flat;
    for (const Stmt& child : block->seq) {
      if (child->kind == StmtKind::kBlock) {
        const auto* nested = static_cast<const BlockNode*>(child.get());
        flat.insert(flat.end(), nested->seq.begin(), nested->seq.end());
      } else {
        flat.push_back(child);
      }
    }
    if (flat.empty()) return Block({});
    if (flat.size() == 1) return flat[0];
    return Block(std::move(flat));
  }

  Expr MutateBinary(const Expr& e, const BinaryNode* op) override {
    Expr a = MutateExpr(op->a);
    Expr b = MutateExpr(op->b);
    Expr simplified = SimplifyBinary(e->kind, a, b);
    if (simplified->kind == e->kind) {
      const auto* bin = static_cast<const BinaryNode*>(simplified.get());
      if (bin->a.get() == op->a.get() && bin->b.get() == op->b.get()) return e;
    }
    return simplified;
  }

  Stmt MutateIfThenElse(const Stmt& s, const IfThenElseNode* op) override {
    Stmt mutated = StmtMutator::MutateIfThenElse(s, op);
    const auto* node = static_cast<const IfThenElseNode*>(mutated.get());
    int64_t cond = 0;
    if (AsConst(node->cond, &cond)) {
      if (cond != 0) return node->then_case;
      if (node->else_case != nullptr) return node->else_case;
      // A statically-false branch with no else collapses to an empty block.
      return Block({});
    }
    return mutated;
  }
};

}  // namespace

Expr Simplify(const Expr& e) { return ExprSimplifier().MutateExpr(e); }

Stmt SimplifyStmt(const Stmt& s) { return StmtSimplifier().MutateStmt(s); }

}  // namespace ir
}  // namespace alcop
