// Shared IR analyses used by the pipeline detection and transformation
// passes (Sec. III-A of the paper): walking statements with their enclosing
// loop-nest stack, collecting allocations and pipeline-hint pragmas, and
// reconstructing producer/consumer relations of buffers.
#ifndef ALCOP_IR_ANALYSIS_H_
#define ALCOP_IR_ANALYSIS_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "ir/stmt.h"

namespace alcop {
namespace ir {

// Calls `fn` for every non-block statement, passing the stack of enclosing
// For nodes (outermost first). Pragma bodies are walked through.
void WalkWithLoops(
    const Stmt& s,
    const std::function<void(const Stmt&, const std::vector<const ForNode*>&)>&
        fn);

// All buffers declared by Alloc statements, in program order.
std::vector<Buffer> CollectAllocatedBuffers(const Stmt& s);

// A pipeline hint attached by the schedule transformation
// (pragma pipeline_stages(buffer) = n).
struct PipelineHint {
  Buffer buffer;
  int64_t stages;
};

// First analysis step: collect the pipelining hints, in program order of
// the pragma nodes.
std::vector<PipelineHint> CollectPipelineHints(const Stmt& s);

// A copy that writes into a buffer, with its enclosing loops.
struct ProducerInfo {
  const CopyNode* copy;
  std::vector<const ForNode*> loops;  // outermost first
};

// A statement that reads from a buffer (Copy src or Mma a/b operand).
struct ConsumerInfo {
  const StmtNode* stmt;
  std::vector<const ForNode*> loops;  // outermost first
};

// Second analysis step: producer reconstruction. Keyed by buffer node.
std::unordered_map<const BufferNode*, std::vector<ProducerInfo>> MapProducers(
    const Stmt& s);

// Second analysis step: consumer reconstruction. Accumulator read-modify-
// write by Mma is not counted as a consumption (the accumulator is never a
// pipelined buffer).
std::unordered_map<const BufferNode*, std::vector<ConsumerInfo>> MapConsumers(
    const Stmt& s);

// True if any offset of `region` uses `v`.
bool RegionUsesVar(const BufferRegion& region, const Var& v);

// Total FLOPs of all Mma statements, with loop extents multiplied through
// (extents must be constant). Used by the perf model and the workloads.
int64_t CountFlops(const Stmt& s);

}  // namespace ir
}  // namespace alcop

#endif  // ALCOP_IR_ANALYSIS_H_
