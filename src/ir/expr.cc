#include "ir/expr.h"

#include <algorithm>

#include "support/check.h"

namespace alcop {
namespace ir {

const char* ExprKindToken(ExprKind kind) {
  switch (kind) {
    case ExprKind::kIntImm: return "int";
    case ExprKind::kVar: return "var";
    case ExprKind::kAdd: return "+";
    case ExprKind::kSub: return "-";
    case ExprKind::kMul: return "*";
    case ExprKind::kFloorDiv: return "/";
    case ExprKind::kFloorMod: return "%";
    case ExprKind::kMin: return "min";
    case ExprKind::kMax: return "max";
    case ExprKind::kLT: return "<";
    case ExprKind::kLE: return "<=";
    case ExprKind::kGT: return ">";
    case ExprKind::kGE: return ">=";
    case ExprKind::kEQ: return "==";
    case ExprKind::kNE: return "!=";
    case ExprKind::kAnd: return "&&";
    case ExprKind::kOr: return "||";
  }
  return "?";
}

bool IsComparison(ExprKind kind) {
  switch (kind) {
    case ExprKind::kLT:
    case ExprKind::kLE:
    case ExprKind::kGT:
    case ExprKind::kGE:
    case ExprKind::kEQ:
    case ExprKind::kNE:
      return true;
    default:
      return false;
  }
}

Expr Int(int64_t value) { return std::make_shared<IntImmNode>(value); }

Var MakeVar(const std::string& name) { return std::make_shared<VarNode>(name); }

Expr Binary(ExprKind kind, Expr a, Expr b) {
  ALCOP_CHECK(a != nullptr && b != nullptr) << "binary operand is null";
  return std::make_shared<BinaryNode>(kind, std::move(a), std::move(b));
}

Expr Add(Expr a, Expr b) { return Binary(ExprKind::kAdd, std::move(a), std::move(b)); }
Expr Sub(Expr a, Expr b) { return Binary(ExprKind::kSub, std::move(a), std::move(b)); }
Expr Mul(Expr a, Expr b) { return Binary(ExprKind::kMul, std::move(a), std::move(b)); }
Expr FloorDiv(Expr a, Expr b) {
  return Binary(ExprKind::kFloorDiv, std::move(a), std::move(b));
}
Expr FloorMod(Expr a, Expr b) {
  return Binary(ExprKind::kFloorMod, std::move(a), std::move(b));
}
Expr Min(Expr a, Expr b) { return Binary(ExprKind::kMin, std::move(a), std::move(b)); }
Expr Max(Expr a, Expr b) { return Binary(ExprKind::kMax, std::move(a), std::move(b)); }

Expr Add(Expr a, int64_t b) { return Add(std::move(a), Int(b)); }
Expr Mul(Expr a, int64_t b) { return Mul(std::move(a), Int(b)); }
Expr FloorDiv(Expr a, int64_t b) { return FloorDiv(std::move(a), Int(b)); }
Expr FloorMod(Expr a, int64_t b) { return FloorMod(std::move(a), Int(b)); }

bool AsConst(const Expr& e, int64_t* value) {
  if (e->kind != ExprKind::kIntImm) return false;
  *value = static_cast<const IntImmNode*>(e.get())->value;
  return true;
}

bool IsConst(const Expr& e, int64_t value) {
  int64_t v = 0;
  return AsConst(e, &v) && v == value;
}

namespace {

void CollectVarsImpl(const Expr& e, std::vector<Var>& out) {
  if (e->kind == ExprKind::kVar) {
    const VarNode* node = static_cast<const VarNode*>(e.get());
    for (const Var& seen : out) {
      if (seen.get() == node) return;
    }
    out.push_back(std::static_pointer_cast<const VarNode>(e));
    return;
  }
  if (e->kind == ExprKind::kIntImm) return;
  const BinaryNode* bin = static_cast<const BinaryNode*>(e.get());
  CollectVarsImpl(bin->a, out);
  CollectVarsImpl(bin->b, out);
}

}  // namespace

std::vector<Var> CollectVars(const Expr& e) {
  std::vector<Var> out;
  CollectVarsImpl(e, out);
  return out;
}

bool UsesVar(const Expr& e, const Var& v) {
  if (e->kind == ExprKind::kVar) return e.get() == v.get();
  if (e->kind == ExprKind::kIntImm) return false;
  const BinaryNode* bin = static_cast<const BinaryNode*>(e.get());
  return UsesVar(bin->a, v) || UsesVar(bin->b, v);
}

Expr Substitute(const Expr& e, const Var& v, const Expr& replacement) {
  if (e->kind == ExprKind::kVar) {
    return e.get() == v.get() ? replacement : e;
  }
  if (e->kind == ExprKind::kIntImm) return e;
  const BinaryNode* bin = static_cast<const BinaryNode*>(e.get());
  Expr a = Substitute(bin->a, v, replacement);
  Expr b = Substitute(bin->b, v, replacement);
  if (a.get() == bin->a.get() && b.get() == bin->b.get()) return e;
  return Binary(e->kind, std::move(a), std::move(b));
}

Expr SubstituteSimultaneous(const Expr& e,
                            const std::vector<std::pair<Var, Expr>>& subs) {
  if (e->kind == ExprKind::kVar) {
    for (const auto& [var, replacement] : subs) {
      if (e.get() == var.get()) return replacement;
    }
    return e;
  }
  if (e->kind == ExprKind::kIntImm) return e;
  const BinaryNode* bin = static_cast<const BinaryNode*>(e.get());
  Expr a = SubstituteSimultaneous(bin->a, subs);
  Expr b = SubstituteSimultaneous(bin->b, subs);
  if (a.get() == bin->a.get() && b.get() == bin->b.get()) return e;
  return Binary(e->kind, std::move(a), std::move(b));
}

int64_t Evaluate(const Expr& e, const std::vector<VarBinding>& bindings) {
  switch (e->kind) {
    case ExprKind::kIntImm:
      return static_cast<const IntImmNode*>(e.get())->value;
    case ExprKind::kVar: {
      const VarNode* var = static_cast<const VarNode*>(e.get());
      for (const VarBinding& b : bindings) {
        if (b.var == var) return b.value;
      }
      ALCOP_CHECK(false) << "unbound variable '" << var->name << "' in Evaluate";
    }
    default:
      break;
  }
  const BinaryNode* bin = static_cast<const BinaryNode*>(e.get());
  int64_t a = Evaluate(bin->a, bindings);
  int64_t b = Evaluate(bin->b, bindings);
  switch (e->kind) {
    case ExprKind::kAdd: return a + b;
    case ExprKind::kSub: return a - b;
    case ExprKind::kMul: return a * b;
    case ExprKind::kFloorDiv: {
      ALCOP_CHECK_NE(b, 0) << "division by zero";
      int64_t q = a / b;
      if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
      return q;
    }
    case ExprKind::kFloorMod: {
      ALCOP_CHECK_NE(b, 0) << "modulo by zero";
      int64_t r = a % b;
      if (r != 0 && ((r < 0) != (b < 0))) r += b;
      return r;
    }
    case ExprKind::kMin: return std::min(a, b);
    case ExprKind::kMax: return std::max(a, b);
    case ExprKind::kLT: return a < b ? 1 : 0;
    case ExprKind::kLE: return a <= b ? 1 : 0;
    case ExprKind::kGT: return a > b ? 1 : 0;
    case ExprKind::kGE: return a >= b ? 1 : 0;
    case ExprKind::kEQ: return a == b ? 1 : 0;
    case ExprKind::kNE: return a != b ? 1 : 0;
    case ExprKind::kAnd: return (a != 0 && b != 0) ? 1 : 0;
    case ExprKind::kOr: return (a != 0 || b != 0) ? 1 : 0;
    default:
      ALCOP_CHECK(false) << "unhandled expression kind";
  }
  return 0;
}

}  // namespace ir
}  // namespace alcop
