#include "ir/printer.h"

#include <sstream>

#include "support/check.h"

namespace alcop {
namespace ir {

namespace {

// Operator precedence for minimal parenthesization.
int Precedence(ExprKind kind) {
  switch (kind) {
    case ExprKind::kIntImm:
    case ExprKind::kVar:
      return 100;
    case ExprKind::kMul:
    case ExprKind::kFloorDiv:
    case ExprKind::kFloorMod:
      return 5;
    case ExprKind::kAdd:
    case ExprKind::kSub:
      return 4;
    case ExprKind::kLT:
    case ExprKind::kLE:
    case ExprKind::kGT:
    case ExprKind::kGE:
      return 3;
    case ExprKind::kEQ:
    case ExprKind::kNE:
      return 2;
    case ExprKind::kAnd:
      return 1;
    case ExprKind::kOr:
      return 0;
    case ExprKind::kMin:
    case ExprKind::kMax:
      return 100;  // printed as function calls
  }
  return 0;
}

void PrintExpr(const Expr& e, int parent_prec, std::ostringstream& out) {
  switch (e->kind) {
    case ExprKind::kIntImm:
      out << static_cast<const IntImmNode*>(e.get())->value;
      return;
    case ExprKind::kVar:
      out << static_cast<const VarNode*>(e.get())->name;
      return;
    case ExprKind::kMin:
    case ExprKind::kMax: {
      const auto* bin = static_cast<const BinaryNode*>(e.get());
      out << (e->kind == ExprKind::kMin ? "min(" : "max(");
      PrintExpr(bin->a, 0, out);
      out << ", ";
      PrintExpr(bin->b, 0, out);
      out << ")";
      return;
    }
    default: {
      const auto* bin = static_cast<const BinaryNode*>(e.get());
      int prec = Precedence(e->kind);
      bool parens = prec < parent_prec;
      if (parens) out << "(";
      PrintExpr(bin->a, prec, out);
      out << " " << ExprKindToken(e->kind) << " ";
      // Right operand binds one tighter so "a - b - c" parenthesizes
      // correctly when rebuilt as a - (b - c).
      PrintExpr(bin->b, prec + 1, out);
      if (parens) out << ")";
      return;
    }
  }
}

class Printer final {
 public:
  std::string Print(const Stmt& s) {
    PrintStmt(s);
    return out_.str();
  }

 private:
  void Indent() {
    for (int i = 0; i < indent_; ++i) out_ << "  ";
  }

  void PrintRegion(const BufferRegion& region) {
    out_ << region.buffer->name << "[";
    for (size_t d = 0; d < region.offsets.size(); ++d) {
      if (d > 0) out_ << ", ";
      PrintExpr(region.offsets[d], 0, out_);
    }
    out_ << "][";
    for (size_t d = 0; d < region.sizes.size(); ++d) {
      if (d > 0) out_ << ", ";
      out_ << region.sizes[d];
    }
    out_ << "]";
  }

  void PrintStmt(const Stmt& s) {
    switch (s->kind) {
      case StmtKind::kBlock: {
        const auto* op = static_cast<const BlockNode*>(s.get());
        for (const Stmt& child : op->seq) PrintStmt(child);
        return;
      }
      case StmtKind::kFor: {
        const auto* op = static_cast<const ForNode*>(s.get());
        Indent();
        out_ << "for " << op->var->name << " in 0..";
        PrintExpr(op->extent, 100, out_);
        out_ << " " << ForKindName(op->for_kind) << " {\n";
        ++indent_;
        PrintStmt(op->body);
        --indent_;
        Indent();
        out_ << "}\n";
        return;
      }
      case StmtKind::kAlloc: {
        const auto* op = static_cast<const AllocNode*>(s.get());
        Indent();
        out_ << "alloc " << op->buffer->name << ": "
             << MemScopeName(op->buffer->scope) << " fp" << op->buffer->elem_bytes * 8
             << "[";
        for (size_t d = 0; d < op->buffer->shape.size(); ++d) {
          if (d > 0) out_ << ", ";
          out_ << op->buffer->shape[d];
        }
        out_ << "]\n";
        return;
      }
      case StmtKind::kCopy: {
        const auto* op = static_cast<const CopyNode*>(s.get());
        Indent();
        out_ << (op->is_async ? "copy.async " : "copy ");
        PrintRegion(op->dst);
        out_ << (op->accumulate ? " += " : " <- ");
        if (op->op != EwiseOp::kNone) {
          out_ << EwiseOpName(op->op);
          // Parameterized ops carry their constant for round-tripping.
          if (op->op == EwiseOp::kScale || op->op == EwiseOp::kAddConst) {
            out_ << "[" << op->op_param << "]";
          }
          out_ << "(";
        }
        PrintRegion(op->src);
        if (op->op != EwiseOp::kNone) out_ << ")";
        if (op->pipeline_group >= 0) out_ << "  @group" << op->pipeline_group;
        out_ << "\n";
        return;
      }
      case StmtKind::kFill: {
        const auto* op = static_cast<const FillNode*>(s.get());
        Indent();
        out_ << "fill ";
        PrintRegion(op->dst);
        out_ << " = " << op->value << "\n";
        return;
      }
      case StmtKind::kMma: {
        const auto* op = static_cast<const MmaNode*>(s.get());
        Indent();
        out_ << "mma ";
        PrintRegion(op->c);
        out_ << " += ";
        PrintRegion(op->a);
        out_ << " * ";
        PrintRegion(op->b);
        out_ << "\n";
        return;
      }
      case StmtKind::kSync: {
        const auto* op = static_cast<const SyncNode*>(s.get());
        Indent();
        if (op->sync_kind == SyncKind::kBarrier) {
          out_ << "barrier\n";
          return;
        }
        for (size_t i = 0; i < op->buffers.size(); ++i) {
          if (i > 0) out_ << "/";
          out_ << op->buffers[i]->name;
        }
        out_ << "." << SyncKindName(op->sync_kind);
        if (op->wait_ahead > 0) out_ << "(ahead=" << op->wait_ahead << ")";
        out_ << "  @group" << op->group << "\n";
        return;
      }
      case StmtKind::kPragma: {
        const auto* op = static_cast<const PragmaNode*>(s.get());
        Indent();
        out_ << "pragma " << op->key;
        if (op->buffer != nullptr) out_ << "(" << op->buffer->name << ")";
        out_ << " = " << op->value << " {\n";
        ++indent_;
        PrintStmt(op->body);
        --indent_;
        Indent();
        out_ << "}\n";
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto* op = static_cast<const IfThenElseNode*>(s.get());
        Indent();
        out_ << "if ";
        PrintExpr(op->cond, 0, out_);
        out_ << " {\n";
        ++indent_;
        PrintStmt(op->then_case);
        --indent_;
        Indent();
        out_ << "}";
        if (op->else_case != nullptr) {
          out_ << " else {\n";
          ++indent_;
          PrintStmt(op->else_case);
          --indent_;
          Indent();
          out_ << "}";
        }
        out_ << "\n";
        return;
      }
    }
    ALCOP_CHECK(false) << "unhandled statement kind in printer";
  }

  std::ostringstream out_;
  int indent_ = 0;
};

}  // namespace

std::string ToString(const Expr& e) {
  std::ostringstream out;
  PrintExpr(e, 0, out);
  return out.str();
}

std::string ToString(const Stmt& s) { return Printer().Print(s); }

}  // namespace ir
}  // namespace alcop
