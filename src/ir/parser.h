// Parser for the textual IR the printer emits.
//
// Round-trips with ir::ToString: Parse(ToString(stmt)) is structurally
// equal to stmt. Useful for textual test fixtures, tooling, and dumping/
// reloading transformed kernels.
//
// Grammar (one construct per line, two-space indentation is decorative):
//   alloc NAME: SCOPE fpBITS[D1, D2, ...]
//   for VAR in 0..EXTENT KIND { ... }
//   copy[.async] REGION (<-|+=) [EWISE(]REGION[)] [@groupN]
//   fill REGION = VALUE
//   mma REGION += REGION * REGION
//   barrier
//   NAME[/NAME...].SYNCKIND[(ahead=N)]  @groupN
//   pragma KEY(NAME) = VALUE { ... }
//   if EXPR { ... } [else { ... }]
// where REGION is NAME[EXPR, ...][INT, ...], and EXPR supports
// + - * / % min() max() comparisons && || and parentheses with the
// printer's precedence.
//
// Buffers referenced before their alloc (graph inputs/outputs) must be
// supplied in `external_buffers`; loop variables are bound by their `for`.
#ifndef ALCOP_IR_PARSER_H_
#define ALCOP_IR_PARSER_H_

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace alcop {
namespace ir {

// Parses a program. Throws CheckError with line/column context on syntax
// errors, unknown buffers, or unbound variables.
Stmt ParseStmt(const std::string& text,
               const std::vector<Buffer>& external_buffers = {});

// Parses a single index expression over the given variables.
Expr ParseExpr(const std::string& text, const std::vector<Var>& vars);

}  // namespace ir
}  // namespace alcop

#endif  // ALCOP_IR_PARSER_H_
