// Integer index-expression IR.
//
// ALCOP's program transformation (Sec. III of the paper) manipulates the
// index arithmetic of memory accesses: shifting pipeline loop variables
// forward, wrapping them modulo the stage count, and carrying inner-pipeline
// overflow into the outer pipeline variable. This module provides the small
// immutable expression tree those rewrites operate on.
//
// Nodes are immutable and shared via shared_ptr, TVM-style: a mutation pass
// produces new nodes and structurally shares the untouched subtrees.
// Variables have pointer identity (two VarNodes with the same name are
// distinct variables).
#ifndef ALCOP_IR_EXPR_H_
#define ALCOP_IR_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace alcop {
namespace ir {

enum class ExprKind {
  kIntImm,
  kVar,
  kAdd,
  kSub,
  kMul,
  kFloorDiv,  // floor division (both operands non-negative in practice)
  kFloorMod,  // floor modulo
  kMin,
  kMax,
  kLT,  // comparisons evaluate to 0/1
  kLE,
  kGT,
  kGE,
  kEQ,
  kNE,
  kAnd,
  kOr,
};

// Returns a short printable token for an expression kind ("+"/"%"/"min"/..).
const char* ExprKindToken(ExprKind kind);

// True for the six comparison kinds.
bool IsComparison(ExprKind kind);

class ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

// Base of all index expressions. `kind` tags the concrete node type so
// passes can switch without RTTI.
class ExprNode {
 public:
  explicit ExprNode(ExprKind kind) : kind(kind) {}
  virtual ~ExprNode() = default;

  ExprKind kind;
};

// Compile-time integer constant.
class IntImmNode final : public ExprNode {
 public:
  explicit IntImmNode(int64_t value) : ExprNode(ExprKind::kIntImm), value(value) {}
  int64_t value;
};

// Loop/iteration variable; identity is the node pointer.
class VarNode final : public ExprNode {
 public:
  explicit VarNode(std::string name)
      : ExprNode(ExprKind::kVar), name(std::move(name)) {}
  std::string name;
};

using Var = std::shared_ptr<const VarNode>;

// Any two-operand arithmetic/logical node; `kind` selects the operator.
class BinaryNode final : public ExprNode {
 public:
  BinaryNode(ExprKind kind, Expr a, Expr b)
      : ExprNode(kind), a(std::move(a)), b(std::move(b)) {}
  Expr a;
  Expr b;
};

// ---- Construction helpers ----

Expr Int(int64_t value);
Var MakeVar(const std::string& name);
Expr Binary(ExprKind kind, Expr a, Expr b);

Expr Add(Expr a, Expr b);
Expr Sub(Expr a, Expr b);
Expr Mul(Expr a, Expr b);
Expr FloorDiv(Expr a, Expr b);
Expr FloorMod(Expr a, Expr b);
Expr Min(Expr a, Expr b);
Expr Max(Expr a, Expr b);

// Convenience mixed-operand overloads used heavily by the lowering code.
Expr Add(Expr a, int64_t b);
Expr Mul(Expr a, int64_t b);
Expr FloorDiv(Expr a, int64_t b);
Expr FloorMod(Expr a, int64_t b);

// ---- Inspection helpers ----

// If `e` is an IntImm, returns its value; otherwise nullopt-like via flag.
bool AsConst(const Expr& e, int64_t* value);

// True if the expression is the constant `value`.
bool IsConst(const Expr& e, int64_t value);

// Collects the distinct variables appearing in `e` (in first-visit order).
std::vector<Var> CollectVars(const Expr& e);

// True if variable `v` (pointer identity) appears in `e`.
bool UsesVar(const Expr& e, const Var& v);

// Substitutes every occurrence of variable `v` with `replacement`.
Expr Substitute(const Expr& e, const Var& v, const Expr& replacement);

// Simultaneous substitution: all replacements refer to the *original*
// variables (a replacement expression may mention another substituted
// variable without being rewritten again). The pipeline transformation
// relies on this when shifting an inner pipeline variable and carrying its
// overflow into the outer pipeline variable in one step.
Expr SubstituteSimultaneous(const Expr& e,
                            const std::vector<std::pair<Var, Expr>>& subs);

// Evaluates a closed expression given variable bindings; throws CheckError
// if an unbound variable is encountered or a divisor is zero.
struct VarBinding {
  const VarNode* var;
  int64_t value;
};
int64_t Evaluate(const Expr& e, const std::vector<VarBinding>& bindings);

}  // namespace ir
}  // namespace alcop

#endif  // ALCOP_IR_EXPR_H_
