#include "ir/stmt.h"

#include <cmath>

#include "support/check.h"

namespace alcop {
namespace ir {

const char* ForKindName(ForKind kind) {
  switch (kind) {
    case ForKind::kSerial: return "serial";
    case ForKind::kUnrolled: return "unrolled";
    case ForKind::kBlockIdx: return "blockIdx";
    case ForKind::kWarp: return "warp";
  }
  return "?";
}

const char* SyncKindName(SyncKind kind) {
  switch (kind) {
    case SyncKind::kBarrier: return "barrier";
    case SyncKind::kProducerAcquire: return "producer_acquire";
    case SyncKind::kProducerCommit: return "producer_commit";
    case SyncKind::kConsumerWait: return "consumer_wait";
    case SyncKind::kConsumerRelease: return "consumer_release";
  }
  return "?";
}

const char* EwiseOpName(EwiseOp op) {
  switch (op) {
    case EwiseOp::kNone: return "none";
    case EwiseOp::kRelu: return "relu";
    case EwiseOp::kGelu: return "gelu";
    case EwiseOp::kScale: return "scale";
    case EwiseOp::kAddConst: return "add_const";
  }
  return "?";
}

double ApplyEwise(EwiseOp op, double param, double x) {
  switch (op) {
    case EwiseOp::kNone: return x;
    case EwiseOp::kRelu: return x > 0.0 ? x : 0.0;
    case EwiseOp::kGelu:
      // tanh approximation, same as most DL frameworks.
      return 0.5 * x *
             (1.0 + std::tanh(0.7978845608028654 * (x + 0.044715 * x * x * x)));
    case EwiseOp::kScale: return x * param;
    case EwiseOp::kAddConst: return x + param;
  }
  return x;
}

Stmt Block(std::vector<Stmt> seq) {
  return std::make_shared<BlockNode>(std::move(seq));
}

namespace {

void FlattenInto(const Stmt& stmt, std::vector<Stmt>& out) {
  if (stmt == nullptr) return;
  if (stmt->kind == StmtKind::kBlock) {
    for (const Stmt& child : static_cast<const BlockNode*>(stmt.get())->seq) {
      FlattenInto(child, out);
    }
    return;
  }
  out.push_back(stmt);
}

}  // namespace

Stmt FlatBlock(std::vector<Stmt> seq) {
  std::vector<Stmt> flat;
  for (const Stmt& stmt : seq) FlattenInto(stmt, flat);
  ALCOP_CHECK(!flat.empty()) << "FlatBlock produced an empty statement";
  if (flat.size() == 1) return flat[0];
  return Block(std::move(flat));
}

Stmt For(Var var, Expr extent, ForKind kind, Stmt body) {
  ALCOP_CHECK(var != nullptr && extent != nullptr && body != nullptr);
  return std::make_shared<ForNode>(std::move(var), std::move(extent), kind,
                                   std::move(body));
}

Stmt For(Var var, int64_t extent, ForKind kind, Stmt body) {
  return For(std::move(var), Int(extent), kind, std::move(body));
}

Stmt Alloc(Buffer buffer) { return std::make_shared<AllocNode>(std::move(buffer)); }

Stmt Copy(BufferRegion dst, BufferRegion src, EwiseOp op, double op_param) {
  ValidateRegion(dst);
  ValidateRegion(src);
  ALCOP_CHECK_EQ(dst.NumElements(), src.NumElements())
      << "copy region element-count mismatch: " << dst.buffer->name << " <- "
      << src.buffer->name;
  // A trivial op carries no parameter; normalizing keeps structurally
  // identical copies identical regardless of how callers filled the field.
  if (op == EwiseOp::kNone || op == EwiseOp::kRelu || op == EwiseOp::kGelu) {
    op_param = 0.0;
  }
  return std::make_shared<CopyNode>(std::move(dst), std::move(src), op, op_param);
}

Stmt AccumulateCopy(BufferRegion dst, BufferRegion src) {
  Stmt stmt = Copy(std::move(dst), std::move(src));
  auto node = std::make_shared<CopyNode>(
      *static_cast<const CopyNode*>(stmt.get()));
  node->accumulate = true;
  return node;
}

Stmt Fill(BufferRegion dst, double value) {
  ValidateRegion(dst);
  return std::make_shared<FillNode>(std::move(dst), value);
}

Stmt Mma(BufferRegion c, BufferRegion a, BufferRegion b) {
  ValidateRegion(c);
  ValidateRegion(a);
  ValidateRegion(b);
  ALCOP_CHECK_GE(c.sizes.size(), 2u);
  ALCOP_CHECK_GE(a.sizes.size(), 2u);
  ALCOP_CHECK_GE(b.sizes.size(), 2u);
  auto leading_ones = [](const BufferRegion& r) {
    for (size_t d = 0; d + 2 < r.sizes.size(); ++d) {
      ALCOP_CHECK_EQ(r.sizes[d], 1)
          << "MMA region leading dim must be 1 in '" << r.buffer->name << "'";
    }
  };
  leading_ones(c);
  leading_ones(a);
  leading_ones(b);
  int64_t m = c.sizes[c.sizes.size() - 2];
  int64_t n = c.sizes[c.sizes.size() - 1];
  ALCOP_CHECK_EQ(a.sizes[a.sizes.size() - 2], m) << "MMA m mismatch";
  ALCOP_CHECK_EQ(b.sizes[b.sizes.size() - 2], n) << "MMA n mismatch";
  ALCOP_CHECK_EQ(a.sizes[a.sizes.size() - 1], b.sizes[b.sizes.size() - 1])
      << "MMA k mismatch";
  return std::make_shared<MmaNode>(std::move(c), std::move(a), std::move(b));
}

Stmt Sync(SyncKind kind, int group, std::vector<Buffer> buffers,
          int wait_ahead) {
  auto node = std::make_shared<SyncNode>(kind, group, std::move(buffers));
  node->wait_ahead = wait_ahead;
  return node;
}

Stmt Barrier() { return Sync(SyncKind::kBarrier, -1, {}); }

Stmt Pragma(std::string key, Buffer buffer, int64_t value, Stmt body) {
  ALCOP_CHECK(body != nullptr);
  return std::make_shared<PragmaNode>(std::move(key), std::move(buffer), value,
                                      std::move(body));
}

Stmt IfThenElse(Expr cond, Stmt then_case, Stmt else_case) {
  ALCOP_CHECK(cond != nullptr && then_case != nullptr);
  return std::make_shared<IfThenElseNode>(std::move(cond), std::move(then_case),
                                          std::move(else_case));
}

}  // namespace ir
}  // namespace alcop
