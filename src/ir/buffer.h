// Buffers and buffer regions.
//
// A Buffer is a statically-shaped array living in one level of the GPU
// memory hierarchy. The pipeline transformation's first step (Sec. III-B)
// expands a pipelined buffer by the number of stages, which here creates a
// new Buffer with an extra leading "stage" dimension.
//
// A BufferRegion addresses a rectangular sub-block of a buffer: per-dim
// element offsets (index expressions) plus static per-dim extents. Copies
// and MMA operations act on regions; this keeps the IR at the same tile
// granularity as the paper's Fig. 7.
#ifndef ALCOP_IR_BUFFER_H_
#define ALCOP_IR_BUFFER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace alcop {
namespace ir {

// Which level of the memory hierarchy a buffer lives in. Accumulator is
// the tensor-core accumulator register file (paper: C fragments); it is
// never pipelined but participates in occupancy accounting.
enum class MemScope {
  kGlobal,
  kShared,
  kRegister,
  kAccumulator,
};

const char* MemScopeName(MemScope scope);

class BufferNode;
using Buffer = std::shared_ptr<const BufferNode>;

// Immutable buffer declaration. Identity is the node pointer (like Var).
class BufferNode final {
 public:
  BufferNode(std::string name, MemScope scope, std::vector<int64_t> shape,
             int64_t elem_bytes);

  // Total element count (product of shape).
  int64_t NumElements() const;

  // Total byte footprint; this is what occupancy calculations use.
  int64_t NumBytes() const { return NumElements() * elem_bytes; }

  // Row-major strides in elements.
  std::vector<int64_t> Strides() const;

  std::string name;
  MemScope scope;
  std::vector<int64_t> shape;
  int64_t elem_bytes;
};

Buffer MakeBuffer(const std::string& name, MemScope scope,
                  std::vector<int64_t> shape, int64_t elem_bytes = 2);

// A rectangular region of a buffer: `offsets[d]` is the element offset of
// the region origin along dim d (an index expression over loop variables),
// `sizes[d]` the static extent. offsets.size() == sizes.size() ==
// buffer->shape.size().
struct BufferRegion {
  Buffer buffer;
  std::vector<Expr> offsets;
  std::vector<int64_t> sizes;

  // Number of elements / bytes the region covers.
  int64_t NumElements() const;
  int64_t NumBytes() const { return NumElements() * buffer->elem_bytes; }
};

// Builds a region covering the whole buffer (all offsets zero).
BufferRegion FullRegion(const Buffer& buffer);

// Validates internal consistency (dim counts, positive sizes, sizes within
// shape). Throws CheckError on violation.
void ValidateRegion(const BufferRegion& region);

}  // namespace ir
}  // namespace alcop

#endif  // ALCOP_IR_BUFFER_H_
