#include "ir/buffer.h"

#include "support/check.h"

namespace alcop {
namespace ir {

const char* MemScopeName(MemScope scope) {
  switch (scope) {
    case MemScope::kGlobal: return "global";
    case MemScope::kShared: return "shared";
    case MemScope::kRegister: return "register";
    case MemScope::kAccumulator: return "accumulator";
  }
  return "?";
}

BufferNode::BufferNode(std::string name, MemScope scope,
                       std::vector<int64_t> shape, int64_t elem_bytes)
    : name(std::move(name)),
      scope(scope),
      shape(std::move(shape)),
      elem_bytes(elem_bytes) {
  ALCOP_CHECK(!this->shape.empty()) << "buffer '" << this->name << "' has no dims";
  for (int64_t dim : this->shape) {
    ALCOP_CHECK_GT(dim, 0) << "buffer '" << this->name << "' has non-positive dim";
  }
  ALCOP_CHECK_GT(elem_bytes, 0);
}

int64_t BufferNode::NumElements() const {
  int64_t total = 1;
  for (int64_t dim : shape) total *= dim;
  return total;
}

std::vector<int64_t> BufferNode::Strides() const {
  std::vector<int64_t> strides(shape.size(), 1);
  for (size_t i = shape.size(); i-- > 1;) {
    strides[i - 1] = strides[i] * shape[i];
  }
  return strides;
}

Buffer MakeBuffer(const std::string& name, MemScope scope,
                  std::vector<int64_t> shape, int64_t elem_bytes) {
  return std::make_shared<BufferNode>(name, scope, std::move(shape), elem_bytes);
}

int64_t BufferRegion::NumElements() const {
  int64_t total = 1;
  for (int64_t size : sizes) total *= size;
  return total;
}

BufferRegion FullRegion(const Buffer& buffer) {
  BufferRegion region;
  region.buffer = buffer;
  region.offsets.assign(buffer->shape.size(), Int(0));
  region.sizes = buffer->shape;
  return region;
}

void ValidateRegion(const BufferRegion& region) {
  ALCOP_CHECK(region.buffer != nullptr) << "region has no buffer";
  ALCOP_CHECK_EQ(region.offsets.size(), region.buffer->shape.size())
      << "region offsets rank mismatch for '" << region.buffer->name << "'";
  ALCOP_CHECK_EQ(region.sizes.size(), region.buffer->shape.size())
      << "region sizes rank mismatch for '" << region.buffer->name << "'";
  for (size_t d = 0; d < region.sizes.size(); ++d) {
    ALCOP_CHECK_GT(region.sizes[d], 0)
        << "region of '" << region.buffer->name << "' has empty dim " << d;
    ALCOP_CHECK_LE(region.sizes[d], region.buffer->shape[d])
        << "region of '" << region.buffer->name << "' exceeds dim " << d;
  }
}

}  // namespace ir
}  // namespace alcop
