// Index-expression simplifier: constant folding plus the algebraic
// identities that keep the pipeline transformation's rewritten indices
// readable and cheap (x+0, x*1, x*0, x%1, x/1, const folding through
// min/max/comparisons, and (a % n) when a is provably in [0, n)).
#ifndef ALCOP_IR_SIMPLIFY_H_
#define ALCOP_IR_SIMPLIFY_H_

#include "ir/stmt.h"

namespace alcop {
namespace ir {

// Simplifies a single expression.
Expr Simplify(const Expr& e);

// Simplifies every expression embedded in a statement tree and prunes
// `if` statements with constant conditions.
Stmt SimplifyStmt(const Stmt& s);

}  // namespace ir
}  // namespace alcop

#endif  // ALCOP_IR_SIMPLIFY_H_
