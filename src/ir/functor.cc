#include "ir/functor.h"

#include "support/check.h"

namespace alcop {
namespace ir {

// ---- ExprVisitor ----

void ExprVisitor::VisitExpr(const Expr& e) {
  ALCOP_CHECK(e != nullptr);
  switch (e->kind) {
    case ExprKind::kIntImm:
      VisitIntImm(static_cast<const IntImmNode*>(e.get()));
      return;
    case ExprKind::kVar:
      VisitVar(static_cast<const VarNode*>(e.get()));
      return;
    default:
      VisitBinary(static_cast<const BinaryNode*>(e.get()));
      return;
  }
}

void ExprVisitor::VisitIntImm(const IntImmNode*) {}
void ExprVisitor::VisitVar(const VarNode*) {}
void ExprVisitor::VisitBinary(const BinaryNode* op) {
  VisitExpr(op->a);
  VisitExpr(op->b);
}

// ---- ExprMutator ----

Expr ExprMutator::MutateExpr(const Expr& e) {
  ALCOP_CHECK(e != nullptr);
  switch (e->kind) {
    case ExprKind::kIntImm:
      return MutateIntImm(e, static_cast<const IntImmNode*>(e.get()));
    case ExprKind::kVar:
      return MutateVar(e, static_cast<const VarNode*>(e.get()));
    default:
      return MutateBinary(e, static_cast<const BinaryNode*>(e.get()));
  }
}

Expr ExprMutator::MutateIntImm(const Expr& e, const IntImmNode*) { return e; }
Expr ExprMutator::MutateVar(const Expr& e, const VarNode*) { return e; }
Expr ExprMutator::MutateBinary(const Expr& e, const BinaryNode* op) {
  Expr a = MutateExpr(op->a);
  Expr b = MutateExpr(op->b);
  if (a.get() == op->a.get() && b.get() == op->b.get()) return e;
  return Binary(e->kind, std::move(a), std::move(b));
}

// ---- StmtVisitor ----

void StmtVisitor::VisitStmt(const Stmt& s) {
  ALCOP_CHECK(s != nullptr);
  switch (s->kind) {
    case StmtKind::kBlock:
      VisitBlock(static_cast<const BlockNode*>(s.get()));
      return;
    case StmtKind::kFor:
      VisitFor(static_cast<const ForNode*>(s.get()));
      return;
    case StmtKind::kAlloc:
      VisitAlloc(static_cast<const AllocNode*>(s.get()));
      return;
    case StmtKind::kCopy:
      VisitCopy(static_cast<const CopyNode*>(s.get()));
      return;
    case StmtKind::kFill:
      VisitFill(static_cast<const FillNode*>(s.get()));
      return;
    case StmtKind::kMma:
      VisitMma(static_cast<const MmaNode*>(s.get()));
      return;
    case StmtKind::kSync:
      VisitSync(static_cast<const SyncNode*>(s.get()));
      return;
    case StmtKind::kPragma:
      VisitPragma(static_cast<const PragmaNode*>(s.get()));
      return;
    case StmtKind::kIfThenElse:
      VisitIfThenElse(static_cast<const IfThenElseNode*>(s.get()));
      return;
  }
  ALCOP_CHECK(false) << "unhandled statement kind";
}

void StmtVisitor::VisitBlock(const BlockNode* op) {
  for (const Stmt& s : op->seq) VisitStmt(s);
}

void StmtVisitor::VisitFor(const ForNode* op) {
  VisitExpr(op->extent);
  VisitStmt(op->body);
}

void StmtVisitor::VisitAlloc(const AllocNode*) {}

void StmtVisitor::VisitCopy(const CopyNode* op) {
  VisitRegion(op->dst);
  VisitRegion(op->src);
}

void StmtVisitor::VisitFill(const FillNode* op) { VisitRegion(op->dst); }

void StmtVisitor::VisitMma(const MmaNode* op) {
  VisitRegion(op->c);
  VisitRegion(op->a);
  VisitRegion(op->b);
}

void StmtVisitor::VisitSync(const SyncNode*) {}

void StmtVisitor::VisitPragma(const PragmaNode* op) { VisitStmt(op->body); }

void StmtVisitor::VisitIfThenElse(const IfThenElseNode* op) {
  VisitExpr(op->cond);
  VisitStmt(op->then_case);
  if (op->else_case != nullptr) VisitStmt(op->else_case);
}

void StmtVisitor::VisitRegion(const BufferRegion& region) {
  for (const Expr& offset : region.offsets) VisitExpr(offset);
}

// ---- StmtMutator ----

Stmt StmtMutator::MutateStmt(const Stmt& s) {
  ALCOP_CHECK(s != nullptr);
  switch (s->kind) {
    case StmtKind::kBlock:
      return MutateBlock(s, static_cast<const BlockNode*>(s.get()));
    case StmtKind::kFor:
      return MutateFor(s, static_cast<const ForNode*>(s.get()));
    case StmtKind::kAlloc:
      return MutateAlloc(s, static_cast<const AllocNode*>(s.get()));
    case StmtKind::kCopy:
      return MutateCopy(s, static_cast<const CopyNode*>(s.get()));
    case StmtKind::kFill:
      return MutateFill(s, static_cast<const FillNode*>(s.get()));
    case StmtKind::kMma:
      return MutateMma(s, static_cast<const MmaNode*>(s.get()));
    case StmtKind::kSync:
      return MutateSync(s, static_cast<const SyncNode*>(s.get()));
    case StmtKind::kPragma:
      return MutatePragma(s, static_cast<const PragmaNode*>(s.get()));
    case StmtKind::kIfThenElse:
      return MutateIfThenElse(s, static_cast<const IfThenElseNode*>(s.get()));
  }
  ALCOP_CHECK(false) << "unhandled statement kind";
  return s;
}

Stmt StmtMutator::MutateBlock(const Stmt& s, const BlockNode* op) {
  std::vector<Stmt> seq;
  seq.reserve(op->seq.size());
  bool changed = false;
  for (const Stmt& child : op->seq) {
    Stmt mutated = MutateStmt(child);
    changed = changed || mutated.get() != child.get();
    seq.push_back(std::move(mutated));
  }
  if (!changed) return s;
  return Block(std::move(seq));
}

Stmt StmtMutator::MutateFor(const Stmt& s, const ForNode* op) {
  Expr extent = MutateExpr(op->extent);
  Stmt body = MutateStmt(op->body);
  if (extent.get() == op->extent.get() && body.get() == op->body.get()) return s;
  return For(op->var, std::move(extent), op->for_kind, std::move(body));
}

Stmt StmtMutator::MutateAlloc(const Stmt& s, const AllocNode*) { return s; }

Stmt StmtMutator::MutateCopy(const Stmt& s, const CopyNode* op) {
  bool changed = false;
  BufferRegion dst = MutateRegion(op->dst, &changed);
  BufferRegion src = MutateRegion(op->src, &changed);
  if (!changed) return s;
  auto copy = std::make_shared<CopyNode>(std::move(dst), std::move(src), op->op,
                                         op->op_param);
  copy->is_async = op->is_async;
  copy->accumulate = op->accumulate;
  copy->pipeline_group = op->pipeline_group;
  return copy;
}

Stmt StmtMutator::MutateFill(const Stmt& s, const FillNode* op) {
  bool changed = false;
  BufferRegion dst = MutateRegion(op->dst, &changed);
  if (!changed) return s;
  return Fill(std::move(dst), op->value);
}

Stmt StmtMutator::MutateMma(const Stmt& s, const MmaNode* op) {
  bool changed = false;
  BufferRegion c = MutateRegion(op->c, &changed);
  BufferRegion a = MutateRegion(op->a, &changed);
  BufferRegion b = MutateRegion(op->b, &changed);
  if (!changed) return s;
  return Mma(std::move(c), std::move(a), std::move(b));
}

Stmt StmtMutator::MutateSync(const Stmt& s, const SyncNode*) { return s; }

Stmt StmtMutator::MutatePragma(const Stmt& s, const PragmaNode* op) {
  Stmt body = MutateStmt(op->body);
  if (body.get() == op->body.get()) return s;
  return Pragma(op->key, op->buffer, op->value, std::move(body));
}

Stmt StmtMutator::MutateIfThenElse(const Stmt& s, const IfThenElseNode* op) {
  Expr cond = MutateExpr(op->cond);
  Stmt then_case = MutateStmt(op->then_case);
  Stmt else_case =
      op->else_case == nullptr ? nullptr : MutateStmt(op->else_case);
  if (cond.get() == op->cond.get() && then_case.get() == op->then_case.get() &&
      else_case.get() == op->else_case.get()) {
    return s;
  }
  return IfThenElse(std::move(cond), std::move(then_case), std::move(else_case));
}

BufferRegion StmtMutator::MutateRegion(const BufferRegion& region,
                                       bool* changed) {
  BufferRegion out;
  out.buffer = region.buffer;
  out.sizes = region.sizes;
  out.offsets.reserve(region.offsets.size());
  for (const Expr& offset : region.offsets) {
    Expr mutated = MutateExpr(offset);
    *changed = *changed || mutated.get() != offset.get();
    out.offsets.push_back(std::move(mutated));
  }
  return out;
}

}  // namespace ir
}  // namespace alcop
