// Human-readable IR printing, in the spirit of the paper's Fig. 7 listings.
// Used by the examples, by test diagnostics, and for golden-text tests of
// the pipeline transformation.
#ifndef ALCOP_IR_PRINTER_H_
#define ALCOP_IR_PRINTER_H_

#include <string>

#include "ir/stmt.h"

namespace alcop {
namespace ir {

// Renders an index expression, e.g. "(ko + 2) % 3".
std::string ToString(const Expr& e);

// Renders a statement tree with two-space indentation, e.g.
//   alloc A_shared: shared fp16[3, 128, 32]
//   for ko in 0..64 serial {
//     A_shared.producer_acquire  @group0
//     copy.async A_shared[(ko + 2) % 3, 0, 0][1, 128, 32] <-
//         A[by * 128, ((ko + 2) % 64) * 32][128, 32]  @group0
//     ...
//   }
std::string ToString(const Stmt& s);

}  // namespace ir
}  // namespace alcop

#endif  // ALCOP_IR_PRINTER_H_
