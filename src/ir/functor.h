// Visitor and mutator base classes for the statement/expression IR.
//
// StmtVisitor walks a statement tree read-only; StmtMutator rebuilds it,
// structurally sharing unchanged subtrees. Both dispatch on StmtKind (no
// RTTI). Derived passes override the Visit*_ hooks they care about and
// call the base implementation for default traversal.
#ifndef ALCOP_IR_FUNCTOR_H_
#define ALCOP_IR_FUNCTOR_H_

#include "ir/stmt.h"

namespace alcop {
namespace ir {

class ExprVisitor {
 public:
  virtual ~ExprVisitor() = default;
  void VisitExpr(const Expr& e);

 protected:
  virtual void VisitIntImm(const IntImmNode* op);
  virtual void VisitVar(const VarNode* op);
  virtual void VisitBinary(const BinaryNode* op);
};

class ExprMutator {
 public:
  virtual ~ExprMutator() = default;
  Expr MutateExpr(const Expr& e);

 protected:
  virtual Expr MutateIntImm(const Expr& e, const IntImmNode* op);
  virtual Expr MutateVar(const Expr& e, const VarNode* op);
  virtual Expr MutateBinary(const Expr& e, const BinaryNode* op);
};

class StmtVisitor : public ExprVisitor {
 public:
  void VisitStmt(const Stmt& s);

 protected:
  virtual void VisitBlock(const BlockNode* op);
  virtual void VisitFor(const ForNode* op);
  virtual void VisitAlloc(const AllocNode* op);
  virtual void VisitCopy(const CopyNode* op);
  virtual void VisitFill(const FillNode* op);
  virtual void VisitMma(const MmaNode* op);
  virtual void VisitSync(const SyncNode* op);
  virtual void VisitPragma(const PragmaNode* op);
  virtual void VisitIfThenElse(const IfThenElseNode* op);
  // Default traversal visits every offset expression of a region.
  virtual void VisitRegion(const BufferRegion& region);
};

class StmtMutator : public ExprMutator {
 public:
  Stmt MutateStmt(const Stmt& s);

 protected:
  virtual Stmt MutateBlock(const Stmt& s, const BlockNode* op);
  virtual Stmt MutateFor(const Stmt& s, const ForNode* op);
  virtual Stmt MutateAlloc(const Stmt& s, const AllocNode* op);
  virtual Stmt MutateCopy(const Stmt& s, const CopyNode* op);
  virtual Stmt MutateFill(const Stmt& s, const FillNode* op);
  virtual Stmt MutateMma(const Stmt& s, const MmaNode* op);
  virtual Stmt MutateSync(const Stmt& s, const SyncNode* op);
  virtual Stmt MutatePragma(const Stmt& s, const PragmaNode* op);
  virtual Stmt MutateIfThenElse(const Stmt& s, const IfThenElseNode* op);
  // Rewrites every offset expression of a region; `changed` is set if any
  // offset node was replaced.
  BufferRegion MutateRegion(const BufferRegion& region, bool* changed);
};

}  // namespace ir
}  // namespace alcop

#endif  // ALCOP_IR_FUNCTOR_H_
