#include "ir/structural_equal.h"

#include <vector>

namespace alcop {
namespace ir {

namespace {

// Pairwise variable correspondence built up while descending matched
// loop nests.
class Matcher {
 public:
  bool ExprEqual(const Expr& a, const Expr& b) {
    if (a.get() == b.get()) return true;
    if (a == nullptr || b == nullptr) return false;
    if (a->kind != b->kind) return false;
    switch (a->kind) {
      case ExprKind::kIntImm:
        return static_cast<const IntImmNode*>(a.get())->value ==
               static_cast<const IntImmNode*>(b.get())->value;
      case ExprKind::kVar: {
        const VarNode* va = static_cast<const VarNode*>(a.get());
        const VarNode* vb = static_cast<const VarNode*>(b.get());
        for (const auto& [ma, mb] : var_map_) {
          if (ma == va) return mb == vb;
          if (mb == vb) return false;
        }
        // Free variables must be the same node.
        return va == vb;
      }
      default: {
        const auto* ba = static_cast<const BinaryNode*>(a.get());
        const auto* bb = static_cast<const BinaryNode*>(b.get());
        return ExprEqual(ba->a, bb->a) && ExprEqual(ba->b, bb->b);
      }
    }
  }

  bool BufferEqual(const Buffer& a, const Buffer& b) const {
    if (a.get() == b.get()) return true;
    if (a == nullptr || b == nullptr) return false;
    return a->name == b->name && a->scope == b->scope && a->shape == b->shape &&
           a->elem_bytes == b->elem_bytes;
  }

  bool RegionEqual(const BufferRegion& a, const BufferRegion& b) {
    if (!BufferEqual(a.buffer, b.buffer)) return false;
    if (a.sizes != b.sizes) return false;
    if (a.offsets.size() != b.offsets.size()) return false;
    for (size_t d = 0; d < a.offsets.size(); ++d) {
      if (!ExprEqual(a.offsets[d], b.offsets[d])) return false;
    }
    return true;
  }

  bool StmtEqual(const Stmt& a, const Stmt& b) {  // NOLINT(misc-no-recursion)
    if (a.get() == b.get()) return true;
    if (a == nullptr || b == nullptr) return false;
    if (a->kind != b->kind) return false;
    switch (a->kind) {
      case StmtKind::kBlock: {
        const auto* ba = static_cast<const BlockNode*>(a.get());
        const auto* bb = static_cast<const BlockNode*>(b.get());
        if (ba->seq.size() != bb->seq.size()) return false;
        for (size_t i = 0; i < ba->seq.size(); ++i) {
          if (!StmtEqual(ba->seq[i], bb->seq[i])) return false;
        }
        return true;
      }
      case StmtKind::kFor: {
        const auto* fa = static_cast<const ForNode*>(a.get());
        const auto* fb = static_cast<const ForNode*>(b.get());
        if (fa->for_kind != fb->for_kind) return false;
        if (!ExprEqual(fa->extent, fb->extent)) return false;
        var_map_.emplace_back(fa->var.get(), fb->var.get());
        bool body_equal = StmtEqual(fa->body, fb->body);
        var_map_.pop_back();
        return body_equal;
      }
      case StmtKind::kAlloc:
        return BufferEqual(static_cast<const AllocNode*>(a.get())->buffer,
                           static_cast<const AllocNode*>(b.get())->buffer);
      case StmtKind::kCopy: {
        const auto* ca = static_cast<const CopyNode*>(a.get());
        const auto* cb = static_cast<const CopyNode*>(b.get());
        return ca->op == cb->op && ca->op_param == cb->op_param &&
               ca->is_async == cb->is_async &&
               ca->accumulate == cb->accumulate &&
               ca->pipeline_group == cb->pipeline_group &&
               RegionEqual(ca->dst, cb->dst) && RegionEqual(ca->src, cb->src);
      }
      case StmtKind::kFill: {
        const auto* fa = static_cast<const FillNode*>(a.get());
        const auto* fb = static_cast<const FillNode*>(b.get());
        return fa->value == fb->value && RegionEqual(fa->dst, fb->dst);
      }
      case StmtKind::kMma: {
        const auto* ma = static_cast<const MmaNode*>(a.get());
        const auto* mb = static_cast<const MmaNode*>(b.get());
        return RegionEqual(ma->c, mb->c) && RegionEqual(ma->a, mb->a) &&
               RegionEqual(ma->b, mb->b);
      }
      case StmtKind::kSync: {
        const auto* sa = static_cast<const SyncNode*>(a.get());
        const auto* sb = static_cast<const SyncNode*>(b.get());
        if (sa->sync_kind != sb->sync_kind || sa->group != sb->group ||
            sa->wait_ahead != sb->wait_ahead) {
          return false;
        }
        if (sa->buffers.size() != sb->buffers.size()) return false;
        for (size_t i = 0; i < sa->buffers.size(); ++i) {
          if (!BufferEqual(sa->buffers[i], sb->buffers[i])) return false;
        }
        return true;
      }
      case StmtKind::kPragma: {
        const auto* pa = static_cast<const PragmaNode*>(a.get());
        const auto* pb = static_cast<const PragmaNode*>(b.get());
        if (pa->key != pb->key || pa->value != pb->value) return false;
        if ((pa->buffer == nullptr) != (pb->buffer == nullptr)) return false;
        if (pa->buffer != nullptr && !BufferEqual(pa->buffer, pb->buffer)) {
          return false;
        }
        return StmtEqual(pa->body, pb->body);
      }
      case StmtKind::kIfThenElse: {
        const auto* ia = static_cast<const IfThenElseNode*>(a.get());
        const auto* ib = static_cast<const IfThenElseNode*>(b.get());
        if (!ExprEqual(ia->cond, ib->cond)) return false;
        if (!StmtEqual(ia->then_case, ib->then_case)) return false;
        if ((ia->else_case == nullptr) != (ib->else_case == nullptr)) return false;
        return ia->else_case == nullptr || StmtEqual(ia->else_case, ib->else_case);
      }
    }
    return false;
  }

 private:
  std::vector<std::pair<const VarNode*, const VarNode*>> var_map_;
};

}  // namespace

bool StructuralEqual(const Expr& a, const Expr& b) {
  return Matcher().ExprEqual(a, b);
}

bool StructuralEqual(const Stmt& a, const Stmt& b) {
  return Matcher().StmtEqual(a, b);
}

}  // namespace ir
}  // namespace alcop
