#include "ir/analysis.h"

#include "support/check.h"

namespace alcop {
namespace ir {

namespace {

void WalkImpl(const Stmt& s, std::vector<const ForNode*>& loops,
              const std::function<void(const Stmt&,
                                       const std::vector<const ForNode*>&)>& fn) {
  switch (s->kind) {
    case StmtKind::kBlock: {
      const auto* op = static_cast<const BlockNode*>(s.get());
      for (const Stmt& child : op->seq) WalkImpl(child, loops, fn);
      return;
    }
    case StmtKind::kFor: {
      const auto* op = static_cast<const ForNode*>(s.get());
      fn(s, loops);
      loops.push_back(op);
      WalkImpl(op->body, loops, fn);
      loops.pop_back();
      return;
    }
    case StmtKind::kPragma: {
      const auto* op = static_cast<const PragmaNode*>(s.get());
      fn(s, loops);
      WalkImpl(op->body, loops, fn);
      return;
    }
    case StmtKind::kIfThenElse: {
      const auto* op = static_cast<const IfThenElseNode*>(s.get());
      fn(s, loops);
      WalkImpl(op->then_case, loops, fn);
      if (op->else_case != nullptr) WalkImpl(op->else_case, loops, fn);
      return;
    }
    default:
      fn(s, loops);
      return;
  }
}

}  // namespace

void WalkWithLoops(
    const Stmt& s,
    const std::function<void(const Stmt&, const std::vector<const ForNode*>&)>&
        fn) {
  std::vector<const ForNode*> loops;
  WalkImpl(s, loops, fn);
}

std::vector<Buffer> CollectAllocatedBuffers(const Stmt& s) {
  std::vector<Buffer> buffers;
  WalkWithLoops(s, [&](const Stmt& stmt, const std::vector<const ForNode*>&) {
    if (stmt->kind == StmtKind::kAlloc) {
      buffers.push_back(static_cast<const AllocNode*>(stmt.get())->buffer);
    }
  });
  return buffers;
}

std::vector<PipelineHint> CollectPipelineHints(const Stmt& s) {
  std::vector<PipelineHint> hints;
  WalkWithLoops(s, [&](const Stmt& stmt, const std::vector<const ForNode*>&) {
    if (stmt->kind != StmtKind::kPragma) return;
    const auto* pragma = static_cast<const PragmaNode*>(stmt.get());
    if (pragma->key != kPipelinePragma) return;
    ALCOP_CHECK(pragma->buffer != nullptr)
        << "pipeline_stages pragma must name a buffer";
    ALCOP_CHECK_GE(pragma->value, 2)
        << "pipeline of buffer '" << pragma->buffer->name
        << "' needs at least 2 stages";
    hints.push_back({pragma->buffer, pragma->value});
  });
  return hints;
}

std::unordered_map<const BufferNode*, std::vector<ProducerInfo>> MapProducers(
    const Stmt& s) {
  std::unordered_map<const BufferNode*, std::vector<ProducerInfo>> producers;
  WalkWithLoops(s, [&](const Stmt& stmt, const std::vector<const ForNode*>& loops) {
    if (stmt->kind != StmtKind::kCopy) return;
    const auto* copy = static_cast<const CopyNode*>(stmt.get());
    producers[copy->dst.buffer.get()].push_back({copy, loops});
  });
  return producers;
}

std::unordered_map<const BufferNode*, std::vector<ConsumerInfo>> MapConsumers(
    const Stmt& s) {
  std::unordered_map<const BufferNode*, std::vector<ConsumerInfo>> consumers;
  WalkWithLoops(s, [&](const Stmt& stmt, const std::vector<const ForNode*>& loops) {
    switch (stmt->kind) {
      case StmtKind::kCopy: {
        const auto* copy = static_cast<const CopyNode*>(stmt.get());
        consumers[copy->src.buffer.get()].push_back({stmt.get(), loops});
        return;
      }
      case StmtKind::kMma: {
        const auto* mma = static_cast<const MmaNode*>(stmt.get());
        consumers[mma->a.buffer.get()].push_back({stmt.get(), loops});
        consumers[mma->b.buffer.get()].push_back({stmt.get(), loops});
        return;
      }
      default:
        return;
    }
  });
  return consumers;
}

bool RegionUsesVar(const BufferRegion& region, const Var& v) {
  for (const Expr& offset : region.offsets) {
    if (UsesVar(offset, v)) return true;
  }
  return false;
}

namespace {

int64_t CountFlopsImpl(const Stmt& s) {
  switch (s->kind) {
    case StmtKind::kBlock: {
      const auto* op = static_cast<const BlockNode*>(s.get());
      int64_t total = 0;
      for (const Stmt& child : op->seq) total += CountFlopsImpl(child);
      return total;
    }
    case StmtKind::kFor: {
      const auto* op = static_cast<const ForNode*>(s.get());
      int64_t extent = 0;
      ALCOP_CHECK(AsConst(op->extent, &extent))
          << "CountFlops requires constant loop extents";
      return extent * CountFlopsImpl(op->body);
    }
    case StmtKind::kPragma:
      return CountFlopsImpl(static_cast<const PragmaNode*>(s.get())->body);
    case StmtKind::kIfThenElse: {
      // Conservative: count the then-branch only (prologue guards etc. are
      // not part of steady-state FLOPs accounting).
      const auto* op = static_cast<const IfThenElseNode*>(s.get());
      return CountFlopsImpl(op->then_case);
    }
    case StmtKind::kMma:
      return static_cast<const MmaNode*>(s.get())->Flops();
    default:
      return 0;
  }
}

}  // namespace

int64_t CountFlops(const Stmt& s) { return CountFlopsImpl(s); }

}  // namespace ir
}  // namespace alcop
