// Operator definitions for the GEMM family ALCOP targets.
//
// The paper evaluates pipelining on MatMul, batched MatMul and Conv2D
// (implicit GEMM), all half-precision on Tensor Cores. Every member of the
// family lowers to the same load-and-use loop nest:
//
//   C[b, i, j] = sum_k A[b, i, k] * B[b, j, k]
//
// Conv2D is expressed through its im2col view (M = N*P*Q, N = K_out,
// K = C_in*R*S); see DESIGN.md for the substitution note. An optional
// elementwise producer on A models the fused-producer case of the paper's
// Fig. 5 ordering study, and an optional epilogue op models fused bias/
// activation at the output.
#ifndef ALCOP_SCHEDULE_TENSOR_H_
#define ALCOP_SCHEDULE_TENSOR_H_

#include <cstdint>
#include <string>

#include "ir/stmt.h"

namespace alcop {
namespace schedule {

enum class OpFamily {
  kMatmul,
  kBatchMatmul,
  kConv1x1,  // 1x1 convolution as GEMM
  kConv3x3,  // 3x3 convolution via im2col GEMM
};

const char* OpFamilyName(OpFamily family);

// A GEMM-family operator instance.
struct GemmOp {
  std::string name;
  OpFamily family = OpFamily::kMatmul;
  int64_t batch = 1;
  int64_t m = 0;
  int64_t n = 0;
  int64_t k = 0;

  // Elementwise producer applied to A before consumption (Fig. 5's f(.)).
  ir::EwiseOp a_producer_op = ir::EwiseOp::kNone;
  double a_producer_param = 0.0;

  // Elementwise epilogue fused into the output write-back.
  ir::EwiseOp epilogue_op = ir::EwiseOp::kNone;
  double epilogue_param = 0.0;

  int64_t Flops() const { return 2 * batch * m * n * k; }
  // Bytes of the three operand tensors (fp16 inputs, fp16 output).
  int64_t InputBytes() const { return 2 * batch * (m * k + n * k); }
  int64_t OutputBytes() const { return 2 * batch * m * n; }
};

// Convenience constructors used by workloads and tests.
GemmOp MakeMatmul(const std::string& name, int64_t m, int64_t n, int64_t k);
GemmOp MakeBatchMatmul(const std::string& name, int64_t batch, int64_t m,
                       int64_t n, int64_t k);
// Conv2D NHWC with `out_h x out_w` spatial output, expressed as implicit
// GEMM. kernel_hw is 1 or 3.
GemmOp MakeConv(const std::string& name, int64_t batch_images, int64_t out_h,
                int64_t out_w, int64_t c_in, int64_t c_out, int64_t kernel_hw);

}  // namespace schedule
}  // namespace alcop

#endif  // ALCOP_SCHEDULE_TENSOR_H_
