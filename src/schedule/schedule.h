// Schedule layer: the paper's Sec. II.
//
// A Schedule records the result of applying the classic schedule
// transformations — cache-read, tiling, fusion/inlining — to a GEMM-family
// operator, as a small stage graph plus a parameter set (tile sizes, stage
// counts). The pipeline *detection* pass (src/pipeline/detect) inspects
// this graph to decide which buffers may be pipelined, and the lowering
// (src/schedule/lower) turns the schedule into Tensor-IR with
// pipeline-hint pragmas attached for the program transformation.
//
// The ordering study of Fig. 5 is expressed through InlineOrder: inlining
// an elementwise producer *before* pipelining fuses f(.) into the
// Global->Shared copy and destroys its asynchrony (rule 1); ALCOP's order
// pipelines first and re-routes the fusion into the Shared->Register copy.
#ifndef ALCOP_SCHEDULE_SCHEDULE_H_
#define ALCOP_SCHEDULE_SCHEDULE_H_

#include <string>
#include <vector>

#include "ir/stmt.h"
#include "schedule/tensor.h"

namespace alcop {
namespace schedule {

// Threadblock and warp tile sizes (Fig. 1a's two tiling levels).
struct TileConfig {
  int64_t tb_m = 128;
  int64_t tb_n = 128;
  int64_t tb_k = 32;
  int64_t warp_m = 64;
  int64_t warp_n = 64;
  int64_t warp_k = 16;
};

// Full schedule parameterization — the design space the tuner explores.
struct ScheduleConfig {
  TileConfig tile;
  int smem_stages = 1;  // 1 = no shared-memory pipelining
  int reg_stages = 1;   // 1 = no register pipelining
  // Split-K: the reduction axis is divided over `split_k` threadblocks
  // writing fp32 partial tiles to a global workspace, followed by a
  // memory-bound reduction pass. Restores inter-tile parallelism for
  // small-output problems (the alternative remedy to pipelining, which
  // both our TVM baseline and ALCOP may use).
  int split_k = 1;
  // CTA rasterization (CUTLASS threadblock swizzle): co-resident
  // threadblocks are dispatched in column blocks of this many rows instead
  // of pure row-major order, balancing A- and B-panel reuse in the LLC.
  // 1 = row-major.
  int raster_block = 1;
  // Inner-pipeline fusion (Fig. 3d vs 3c). When false, a multi-level
  // pipeline drains and refills the register pipeline every outer
  // iteration (the recursive form).
  bool inner_fusion = true;
  // Shared-memory swizzling to avoid bank conflicts. The paper augments
  // ALCOP and all baselines with swizzling; the ablation bench flips it.
  bool swizzle = true;
  // When false, pipeline copies execute as blocking loads (TVM's manual
  // double_buffer primitive: duplicated buffers without cp.async). Models
  // the paper's "TVM DB" baseline.
  bool async_copies = true;

  int NumWarps() const {
    return static_cast<int>((tile.tb_m / tile.warp_m) *
                            (tile.tb_n / tile.warp_n));
  }
  std::string ToString() const;
};

// Where the elementwise producer of A is fused (Fig. 5).
enum class InlineOrder {
  kNone,               // f materialized into a standalone tensor A_ew
  kBeforePipelining,   // case 1: f fused into the Global->Shared copy
  kAfterPipelining,    // case 2 (ALCOP): f fused into the Shared->Register copy
};

// One buffer stage created by cache-read (or a graph input).
struct StageInfo {
  std::string name;
  ir::MemScope scope = ir::MemScope::kGlobal;
  // The tensor this stage copies from ("" for graph inputs).
  std::string source;
  // Elementwise op fused into the copy producing this stage.
  ir::EwiseOp producer_op = ir::EwiseOp::kNone;
  double producer_param = 0.0;
  // Rule 2: produced inside a sequential load-and-use loop (set by Tile).
  bool in_sequential_loop = false;
  // Rule 3: identifier of the loop level where this stage's load sits
  // (0 = the ko loop, 1 = the ki loop). Stages in the same scope must
  // agree to share the scope's synchronization.
  int sync_position = -1;
  // Pipelining decision: 1 = not pipelined, >=2 = stage count. Set by
  // AutoPipeline (via detection) or manually for ablations.
  int pipeline_stages = 1;
};

class Schedule {
 public:
  // Builds the canonical GEMM schedule: cache-read of A and B into shared
  // memory and registers, two-level tiling per `config`. Throws CheckError
  // if the tiles do not evenly divide the problem or each other.
  Schedule(GemmOp op, ScheduleConfig config,
           InlineOrder inline_order = InlineOrder::kAfterPipelining);

  const GemmOp& op() const { return op_; }
  const ScheduleConfig& config() const { return config_; }
  InlineOrder inline_order() const { return inline_order_; }

  const std::vector<StageInfo>& stages() const { return stages_; }
  // Mutable access lets tests construct rule-violating stage graphs and
  // lets the detection pass record pipelining decisions.
  std::vector<StageInfo>& stages() { return stages_; }

  const StageInfo* FindStage(const std::string& name) const;
  StageInfo* FindStage(const std::string& name);

  // Manually sets the pipeline stage count of one buffer (the paper's
  // buffer.pipeline(stage=n) primitive). Throws if the stage is unknown.
  void SetPipelineStages(const std::string& name, int stages);

  // True if the producer of A is materialized as a standalone elementwise
  // pass (InlineOrder::kNone with a non-trivial producer op).
  bool HasStandaloneEwise() const;

 private:
  GemmOp op_;
  ScheduleConfig config_;
  InlineOrder inline_order_;
  std::vector<StageInfo> stages_;
};

// Validates that `config` legally tiles `op`; returns false (with a reason
// in `*why` if non-null) rather than throwing, so the tuner can filter
// candidate configs cheaply.
bool ValidateConfig(const GemmOp& op, const ScheduleConfig& config,
                    std::string* why = nullptr);

}  // namespace schedule
}  // namespace alcop

#endif  // ALCOP_SCHEDULE_SCHEDULE_H_
