// Lowering: Schedule -> Tensor-IR.
//
// Produces the paper's "Input IR" (Fig. 7 left): a two-level tiled GEMM
// loop nest with cache-read buffers, plain (synchronous) copies guarded by
// threadblock barriers, and pipeline-hint pragmas on the buffers the
// detection pass marked. The pipeline program transformation
// (src/pipeline/transform) then rewrites this into the pipelined form.
#ifndef ALCOP_SCHEDULE_LOWER_H_
#define ALCOP_SCHEDULE_LOWER_H_

#include "ir/stmt.h"
#include "schedule/schedule.h"
#include "target/occupancy.h"

namespace alcop {
namespace schedule {

// A lowered kernel plus the metadata the simulator, the performance model
// and the tuner need about it.
struct LoweredKernel {
  ir::Stmt stmt;  // full program (blockIdx loops outermost)
  GemmOp op;
  ScheduleConfig config;
  InlineOrder inline_order = InlineOrder::kAfterPipelining;

  // Launch geometry.
  int64_t grid_batch = 1;
  int64_t grid_m = 1;
  int64_t grid_n = 1;
  int64_t grid_k = 1;     // split-K factor
  int num_warps = 1;
  int64_t ko_extent = 1;  // K / (tb_k * split_k)
  int64_t ki_extent = 1;  // tb_k / warp_k

  // True when the elementwise producer of A is materialized by a separate
  // pass (InlineOrder::kNone); its memory traffic is charged separately.
  bool has_standalone_ewise = false;

  // Global tensors, for binding data in the functional executor.
  ir::Buffer a, b, c;
  ir::Buffer a_ew;       // non-null only with a standalone elementwise pass
  ir::Buffer workspace;  // non-null only with split-K (fp32 partial tiles)

  int64_t TotalThreadblocks() const {
    return grid_batch * grid_m * grid_n * grid_k;
  }
};

// Lowers the schedule. Buffers whose StageInfo carries pipeline_stages >= 2
// get a pipeline_stages pragma; everything else lowers to the synchronous
// barrier-guarded form.
LoweredKernel LowerSchedule(const Schedule& schedule);

// Per-threadblock resource request of a config: shared-memory footprint
// (including pipeline stage expansion), register footprint (fragments,
// accumulators and a fixed per-thread overhead) and warp count. Used by
// the occupancy calculator.
target::ThreadblockResources ComputeResources(const GemmOp& op,
                                              const ScheduleConfig& config);

}  // namespace schedule
}  // namespace alcop

#endif  // ALCOP_SCHEDULE_LOWER_H_
