#include "schedule/lower.h"

#include "obs/trace.h"
#include "support/check.h"
#include "verify/verifier.h"

namespace alcop {
namespace schedule {

using namespace alcop::ir;  // NOLINT(build/namespaces) - IR building DSL

namespace {

// Region helper: buffer[offsets...][sizes...].
BufferRegion Region(const Buffer& buffer, std::vector<Expr> offsets,
                    std::vector<int64_t> sizes) {
  BufferRegion region;
  region.buffer = buffer;
  region.offsets = std::move(offsets);
  region.sizes = std::move(sizes);
  return region;
}

}  // namespace

target::ThreadblockResources ComputeResources(const GemmOp& /*op*/,
                                              const ScheduleConfig& config) {
  const TileConfig& t = config.tile;
  target::ThreadblockResources res;
  res.smem_bytes =
      (t.tb_m * t.tb_k + t.tb_n * t.tb_k) * 2 * config.smem_stages;
  // Per-warp registers: fp16 A/B fragments replicated per register pipeline
  // stage, fp32 accumulators, plus a fixed 32-registers-per-thread overhead
  // for indices and control flow.
  int64_t frag_bytes =
      (t.warp_m * t.warp_k + t.warp_n * t.warp_k) * 2 * config.reg_stages;
  int64_t acc_bytes = t.warp_m * t.warp_n * 4;
  int64_t overhead_bytes = 32 * 32 * 4;
  res.warps = config.NumWarps();
  res.reg_bytes = res.warps * (frag_bytes + acc_bytes + overhead_bytes);
  return res;
}

LoweredKernel LowerSchedule(const Schedule& schedule) {
  ALCOP_TRACE_SCOPE("lower", "compiler");
  const GemmOp& op = schedule.op();
  const ScheduleConfig& config = schedule.config();
  const TileConfig& t = config.tile;

  LoweredKernel kernel;
  kernel.op = op;
  kernel.config = config;
  kernel.inline_order = schedule.inline_order();
  kernel.grid_batch = op.batch;
  kernel.grid_m = op.m / t.tb_m;
  kernel.grid_n = op.n / t.tb_n;
  kernel.grid_k = config.split_k;
  kernel.num_warps = config.NumWarps();
  kernel.ko_extent = op.k / (t.tb_k * config.split_k);
  kernel.ki_extent = t.tb_k / t.warp_k;
  int64_t k_per_split = op.k / config.split_k;
  kernel.has_standalone_ewise = schedule.HasStandaloneEwise();

  int64_t num_wm = t.tb_m / t.warp_m;
  int64_t num_wn = t.tb_n / t.warp_n;

  // ---- Global tensors ----
  kernel.a = MakeBuffer("A", MemScope::kGlobal, {op.batch, op.m, op.k});
  kernel.b = MakeBuffer("B", MemScope::kGlobal, {op.batch, op.n, op.k});
  kernel.c = MakeBuffer("C", MemScope::kGlobal, {op.batch, op.m, op.n});

  const StageInfo* a_shared_stage = schedule.FindStage("A_shared");
  const StageInfo* b_shared_stage = schedule.FindStage("B_shared");
  const StageInfo* a_reg_stage = schedule.FindStage("A_reg");
  const StageInfo* b_reg_stage = schedule.FindStage("B_reg");
  ALCOP_CHECK(a_shared_stage && b_shared_stage && a_reg_stage && b_reg_stage)
      << "schedule is missing the canonical GEMM stages";

  Buffer a_source = kernel.a;
  if (kernel.has_standalone_ewise) {
    kernel.a_ew = MakeBuffer("A_ew", MemScope::kGlobal, {op.batch, op.m, op.k});
    a_source = kernel.a_ew;
  }

  // ---- Threadblock-local buffers ----
  Buffer a_s = MakeBuffer("A_shared", MemScope::kShared, {t.tb_m, t.tb_k});
  Buffer b_s = MakeBuffer("B_shared", MemScope::kShared, {t.tb_n, t.tb_k});
  // Register fragments are private to each physical warp, so they are
  // indexed by both warp coordinates even though A's fragment values only
  // depend on wm (warps with equal wm hold duplicate copies, as on real
  // hardware).
  Buffer a_r = MakeBuffer("A_reg", MemScope::kRegister,
                          {num_wm, num_wn, t.warp_m, t.warp_k});
  Buffer b_r = MakeBuffer("B_reg", MemScope::kRegister,
                          {num_wm, num_wn, t.warp_n, t.warp_k});
  Buffer c_acc = MakeBuffer("C_acc", MemScope::kAccumulator,
                            {num_wm, num_wn, t.warp_m, t.warp_n}, 4);

  // ---- Loop variables ----
  Var bi = MakeVar("bi");
  Var bm = MakeVar("bm");
  Var bn = MakeVar("bn");
  Var bk = MakeVar("bk");  // split-K slice (used when split_k > 1)
  Var ko = MakeVar("ko");
  Var ki = MakeVar("ki");
  Var wm0 = MakeVar("wm");   // warp loops of the main loop
  Var wn0 = MakeVar("wn");
  Var wmf = MakeVar("wm");   // warp loops of the accumulator fill
  Var wnf = MakeVar("wn");
  Var wme = MakeVar("wm");   // warp loops of the epilogue
  Var wne = MakeVar("wn");

  // ---- Accumulator initialization ----
  Stmt fill = For(
      wmf, num_wm, ForKind::kWarp,
      For(wnf, num_wn, ForKind::kWarp,
          Fill(Region(c_acc, {wmf, wnf, Int(0), Int(0)},
                      {1, 1, t.warp_m, t.warp_n}),
               0.0)));

  // ---- Main load-and-use loop ----
  // Shared-memory loads (the ko-level "load" part). With split-K each
  // threadblock covers only its K-slice.
  Expr k_base = config.split_k > 1
                    ? Add(Mul(ko, t.tb_k), Mul(bk, k_per_split))
                    : Mul(ko, t.tb_k);
  Stmt load_a_s = Copy(
      Region(a_s, {Int(0), Int(0)}, {t.tb_m, t.tb_k}),
      Region(a_source, {bi, Mul(bm, t.tb_m), k_base}, {1, t.tb_m, t.tb_k}),
      a_shared_stage->producer_op, a_shared_stage->producer_param);
  Stmt load_b_s = Copy(
      Region(b_s, {Int(0), Int(0)}, {t.tb_n, t.tb_k}),
      Region(kernel.b, {bi, Mul(bn, t.tb_n), k_base}, {1, t.tb_n, t.tb_k}),
      b_shared_stage->producer_op, b_shared_stage->producer_param);

  // Register loads + MMA (the ki-level inner load-and-use loop).
  Stmt load_a_r =
      Copy(Region(a_r, {wm0, wn0, Int(0), Int(0)}, {1, 1, t.warp_m, t.warp_k}),
           Region(a_s, {Mul(wm0, t.warp_m), Mul(ki, t.warp_k)},
                  {t.warp_m, t.warp_k}),
           a_reg_stage->producer_op, a_reg_stage->producer_param);
  Stmt load_b_r =
      Copy(Region(b_r, {wm0, wn0, Int(0), Int(0)}, {1, 1, t.warp_n, t.warp_k}),
           Region(b_s, {Mul(wn0, t.warp_n), Mul(ki, t.warp_k)},
                  {t.warp_n, t.warp_k}),
           b_reg_stage->producer_op, b_reg_stage->producer_param);
  Stmt mma = Mma(
      Region(c_acc, {wm0, wn0, Int(0), Int(0)}, {1, 1, t.warp_m, t.warp_n}),
      Region(a_r, {wm0, wn0, Int(0), Int(0)}, {1, 1, t.warp_m, t.warp_k}),
      Region(b_r, {wm0, wn0, Int(0), Int(0)}, {1, 1, t.warp_n, t.warp_k}));

  Stmt inner_loop = For(ki, kernel.ki_extent, ForKind::kSerial,
                        Block({load_a_r, load_b_r, mma}));
  Stmt warp_compute = For(wm0, num_wm, ForKind::kWarp,
                          For(wn0, num_wn, ForKind::kWarp, inner_loop));

  // Barriers guard the shared-memory buffer in the synchronous baseline:
  // one after the cooperative load (data visible to all warps), one at the
  // end of the iteration (all warps done reading before the next
  // overwrite). The pipeline transformation replaces both.
  Stmt main_loop =
      For(ko, kernel.ko_extent, ForKind::kSerial,
          Block({load_a_s, load_b_s, Barrier(), warp_compute, Barrier()}));

  // ---- Epilogue: write back accumulators ----
  // Plain kernels fuse the elementwise epilogue into the write-back.
  // Split-K kernels write fp32 partial tiles into a workspace instead; the
  // reduction pass below combines the slices and applies the epilogue.
  Expr row = Add(Mul(bm, t.tb_m), Mul(wme, t.warp_m));
  Expr col = Add(Mul(bn, t.tb_n), Mul(wne, t.warp_n));
  BufferRegion acc_out =
      Region(c_acc, {wme, wne, Int(0), Int(0)}, {1, 1, t.warp_m, t.warp_n});
  Stmt store;
  if (config.split_k > 1) {
    kernel.workspace =
        MakeBuffer("C_workspace", MemScope::kGlobal,
                   {config.split_k, op.batch, op.m, op.n}, 4);
    store = Copy(Region(kernel.workspace, {bk, bi, row, col},
                        {1, 1, t.warp_m, t.warp_n}),
                 acc_out);
  } else {
    store = Copy(Region(kernel.c, {bi, row, col}, {1, t.warp_m, t.warp_n}),
                 acc_out, op.epilogue_op, op.epilogue_param);
  }
  Stmt epilogue =
      For(wme, num_wm, ForKind::kWarp, For(wne, num_wn, ForKind::kWarp, store));

  // ---- Threadblock body with allocations and pipeline hints ----
  Stmt tb_body = Block({Alloc(a_s), Alloc(b_s), Alloc(a_r), Alloc(b_r),
                        Alloc(c_acc), fill, main_loop, epilogue});

  // Wrap pipeline-hint pragmas for buffers the detection pass marked.
  struct Hint {
    const StageInfo* stage;
    Buffer buffer;
  };
  for (const Hint& hint : {Hint{b_reg_stage, b_r}, Hint{a_reg_stage, a_r},
                           Hint{b_shared_stage, b_s}, Hint{a_shared_stage, a_s}}) {
    if (hint.stage->pipeline_stages >= 2) {
      tb_body = Pragma(kPipelinePragma, hint.buffer, hint.stage->pipeline_stages,
                       tb_body);
    }
  }

  Stmt kernel_loops =
      For(bi, kernel.grid_batch, ForKind::kBlockIdx,
          For(bm, kernel.grid_m, ForKind::kBlockIdx,
              For(bn, kernel.grid_n, ForKind::kBlockIdx, tb_body)));
  if (config.split_k > 1) {
    kernel_loops = For(bk, config.split_k, ForKind::kBlockIdx, kernel_loops);
  }

  std::vector<Stmt> program;
  if (kernel.has_standalone_ewise) {
    const StageInfo* ew = schedule.FindStage("A_ew");
    program.push_back(Copy(FullRegion(kernel.a_ew), FullRegion(kernel.a),
                           ew->producer_op, ew->producer_param));
  }
  program.push_back(std::move(kernel_loops));

  if (config.split_k > 1) {
    // Reduction pass: sum the workspace slices into C and apply the
    // (deferred) elementwise epilogue. Runs as a separate memory-bound
    // kernel; the simulator charges it at DRAM bandwidth.
    for (int64_t s = 0; s < config.split_k; ++s) {
      BufferRegion slice =
          Region(kernel.workspace, {Int(s), Int(0), Int(0), Int(0)},
                 {1, op.batch, op.m, op.n});
      if (s == 0) {
        program.push_back(Copy(FullRegion(kernel.c), slice));
      } else {
        program.push_back(AccumulateCopy(FullRegion(kernel.c), slice));
      }
    }
    if (op.epilogue_op != EwiseOp::kNone) {
      program.push_back(Copy(FullRegion(kernel.c), FullRegion(kernel.c),
                             op.epilogue_op, op.epilogue_param));
    }
  }

  kernel.stmt = FlatBlock(std::move(program));
  // Self-check (CI runs with ALCOP_VERIFY=1): lowered IR must be clean
  // before the pipeline transformation ever sees it.
  verify::VerifyOrThrowIfEnabled(kernel.stmt, "schedule lowering");
  return kernel;
}

}  // namespace schedule
}  // namespace alcop
