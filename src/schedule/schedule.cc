#include "schedule/schedule.h"

#include <sstream>

#include "support/check.h"

namespace alcop {
namespace schedule {

std::string ScheduleConfig::ToString() const {
  std::ostringstream out;
  out << "tb=" << tile.tb_m << "x" << tile.tb_n << "x" << tile.tb_k
      << " warp=" << tile.warp_m << "x" << tile.warp_n << "x" << tile.warp_k
      << " smem_stages=" << smem_stages << " reg_stages=" << reg_stages;
  if (split_k > 1) out << " split_k=" << split_k;
  if (raster_block > 1) out << " raster=" << raster_block;
  if (!inner_fusion) out << " no-fusion";
  if (!swizzle) out << " no-swizzle";
  if (!async_copies) out << " blocking-copies";
  return out.str();
}

bool ValidateConfig(const GemmOp& op, const ScheduleConfig& config,
                    std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  const TileConfig& t = config.tile;
  if (t.tb_m <= 0 || t.tb_n <= 0 || t.tb_k <= 0 || t.warp_m <= 0 ||
      t.warp_n <= 0 || t.warp_k <= 0) {
    return fail("non-positive tile size");
  }
  if (op.m % t.tb_m != 0) return fail("tb_m does not divide M");
  if (op.n % t.tb_n != 0) return fail("tb_n does not divide N");
  if (config.split_k < 1 || config.split_k > 16) {
    return fail("split_k out of range [1,16]");
  }
  if (config.raster_block < 1 || config.raster_block > 32) {
    return fail("raster_block out of range [1,32]");
  }
  if (op.k % (t.tb_k * config.split_k) != 0) {
    return fail("tb_k x split_k does not divide K");
  }
  if (t.tb_m % t.warp_m != 0) return fail("warp_m does not divide tb_m");
  if (t.tb_n % t.warp_n != 0) return fail("warp_n does not divide tb_n");
  if (t.tb_k % t.warp_k != 0) return fail("warp_k does not divide tb_k");
  if (config.smem_stages < 1 || config.smem_stages > 8) {
    return fail("smem_stages out of range [1,8]");
  }
  if (config.reg_stages < 1 || config.reg_stages > 4) {
    return fail("reg_stages out of range [1,4]");
  }
  int warps = config.NumWarps();
  if (warps < 1 || warps > 16) return fail("warps per threadblock out of [1,16]");
  // The inner load-and-use loop must have at least as many chunks as
  // register pipeline stages, or the pipeline never fills.
  if (t.tb_k / t.warp_k < config.reg_stages) {
    return fail("reg_stages exceeds inner loop extent");
  }
  if (op.k / (t.tb_k * config.split_k) < config.smem_stages) {
    return fail("smem_stages exceeds outer loop extent");
  }
  return true;
}

Schedule::Schedule(GemmOp op, ScheduleConfig config, InlineOrder inline_order)
    : op_(std::move(op)), config_(config), inline_order_(inline_order) {
  std::string why;
  ALCOP_CHECK(ValidateConfig(op_, config_, &why))
      << "invalid schedule for " << op_.name << ": " << why;

  bool has_producer = op_.a_producer_op != ir::EwiseOp::kNone;
  ALCOP_CHECK(has_producer || inline_order_ == InlineOrder::kAfterPipelining ||
              inline_order_ == InlineOrder::kNone)
      << "inline order is only meaningful with an elementwise producer";

  // Graph inputs.
  stages_.push_back({.name = "A", .scope = ir::MemScope::kGlobal, .source = ""});
  stages_.push_back({.name = "B", .scope = ir::MemScope::kGlobal, .source = ""});

  // Standalone materialized producer tensor (no inlining at all).
  std::string a_source = "A";
  ir::EwiseOp smem_op = ir::EwiseOp::kNone;
  ir::EwiseOp reg_op = ir::EwiseOp::kNone;
  if (has_producer) {
    switch (inline_order_) {
      case InlineOrder::kNone:
        stages_.push_back({.name = "A_ew",
                           .scope = ir::MemScope::kGlobal,
                           .source = "A",
                           .producer_op = op_.a_producer_op,
                           .producer_param = op_.a_producer_param});
        a_source = "A_ew";
        break;
      case InlineOrder::kBeforePipelining:
        // Case 1 of Fig. 5: f fused into the Global->Shared copy.
        smem_op = op_.a_producer_op;
        break;
      case InlineOrder::kAfterPipelining:
        // Case 2 of Fig. 5: cache-read A directly; fuse f into the
        // Shared->Register copy feeding the compute.
        reg_op = op_.a_producer_op;
        break;
    }
  }

  // Cache-read stages created before pipelining (Sec. II-B ordering), with
  // the load-loop facts that Tile establishes: shared-memory buffers load
  // in the sequential ko loop (position 0), register buffers in the
  // sequential ki loop (position 1).
  stages_.push_back({.name = "A_shared",
                     .scope = ir::MemScope::kShared,
                     .source = a_source,
                     .producer_op = smem_op,
                     .producer_param = op_.a_producer_param,
                     .in_sequential_loop = true,
                     .sync_position = 0});
  stages_.push_back({.name = "B_shared",
                     .scope = ir::MemScope::kShared,
                     .source = "B",
                     .in_sequential_loop = true,
                     .sync_position = 0});
  stages_.push_back({.name = "A_reg",
                     .scope = ir::MemScope::kRegister,
                     .source = "A_shared",
                     .producer_op = reg_op,
                     .producer_param = op_.a_producer_param,
                     .in_sequential_loop = true,
                     .sync_position = 1});
  stages_.push_back({.name = "B_reg",
                     .scope = ir::MemScope::kRegister,
                     .source = "B_shared",
                     .in_sequential_loop = true,
                     .sync_position = 1});
}

const StageInfo* Schedule::FindStage(const std::string& name) const {
  for (const StageInfo& stage : stages_) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

StageInfo* Schedule::FindStage(const std::string& name) {
  for (StageInfo& stage : stages_) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

void Schedule::SetPipelineStages(const std::string& name, int stages) {
  StageInfo* stage = FindStage(name);
  ALCOP_CHECK(stage != nullptr) << "unknown buffer '" << name << "'";
  ALCOP_CHECK_GE(stages, 1);
  stage->pipeline_stages = stages;
}

bool Schedule::HasStandaloneEwise() const {
  return FindStage("A_ew") != nullptr;
}

}  // namespace schedule
}  // namespace alcop
