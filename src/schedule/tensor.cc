#include "schedule/tensor.h"

#include "support/check.h"

namespace alcop {
namespace schedule {

const char* OpFamilyName(OpFamily family) {
  switch (family) {
    case OpFamily::kMatmul: return "matmul";
    case OpFamily::kBatchMatmul: return "batch_matmul";
    case OpFamily::kConv1x1: return "conv1x1";
    case OpFamily::kConv3x3: return "conv3x3";
  }
  return "?";
}

GemmOp MakeMatmul(const std::string& name, int64_t m, int64_t n, int64_t k) {
  ALCOP_CHECK_GT(m, 0);
  ALCOP_CHECK_GT(n, 0);
  ALCOP_CHECK_GT(k, 0);
  GemmOp op;
  op.name = name;
  op.family = OpFamily::kMatmul;
  op.m = m;
  op.n = n;
  op.k = k;
  return op;
}

GemmOp MakeBatchMatmul(const std::string& name, int64_t batch, int64_t m,
                       int64_t n, int64_t k) {
  GemmOp op = MakeMatmul(name, m, n, k);
  ALCOP_CHECK_GT(batch, 0);
  op.family = OpFamily::kBatchMatmul;
  op.batch = batch;
  return op;
}

GemmOp MakeConv(const std::string& name, int64_t batch_images, int64_t out_h,
                int64_t out_w, int64_t c_in, int64_t c_out, int64_t kernel_hw) {
  ALCOP_CHECK(kernel_hw == 1 || kernel_hw == 3)
      << "only 1x1 and 3x3 convolutions are modeled";
  GemmOp op;
  op.name = name;
  op.family = kernel_hw == 1 ? OpFamily::kConv1x1 : OpFamily::kConv3x3;
  // Spatial output positions are padded up to a tile-friendly multiple, as
  // implicit-GEMM kernels do (predicated tail threads).
  int64_t positions = batch_images * out_h * out_w;
  op.m = ((positions + 255) / 256) * 256;
  op.n = c_out;
  // The reduction axis is padded to a multiple of 16 (implicit-GEMM
  // kernels zero-pad the filter taps), so shallow inputs like the RGB stem
  // remain schedulable.
  int64_t k = c_in * kernel_hw * kernel_hw;
  op.k = ((k + 15) / 16) * 16;
  ALCOP_CHECK_GT(op.m, 0);
  ALCOP_CHECK_GT(op.n, 0);
  ALCOP_CHECK_GT(op.k, 0);
  return op;
}

}  // namespace schedule
}  // namespace alcop
