#include "analysis/bounds.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "ir/expr.h"
#include "support/check.h"

namespace alcop {
namespace analysis {

using namespace alcop::ir;  // NOLINT(google-build-using-namespace)

namespace {

struct RegionRef {
  const BufferRegion* region;
  const char* role;
};

std::vector<RegionRef> RegionsOf(const StmtNode* s) {
  switch (s->kind) {
    case StmtKind::kCopy: {
      const auto* op = static_cast<const CopyNode*>(s);
      return {{&op->dst, "dst"}, {&op->src, "src"}};
    }
    case StmtKind::kFill:
      return {{&static_cast<const FillNode*>(s)->dst, "dst"}};
    case StmtKind::kMma: {
      const auto* op = static_cast<const MmaNode*>(s);
      return {{&op->c, "c"}, {&op->a, "a"}, {&op->b, "b"}};
    }
    default:
      return {};
  }
}

class BoundsChecker {
 public:
  BoundsChecker(AnalysisContext& ctx, verify::DiagnosticEngine& diags)
      : ctx_(ctx), diags_(diags) {}

  void Run() {
    for (const Site& site : ctx_.sites()) {
      for (const RegionRef& ref : RegionsOf(site.stmt.get())) {
        CheckRegion(site, *ref.region);
      }
    }
  }

 private:
  void Emit(const Site& site, verify::Severity severity, const char* code,
            std::string message) {
    verify::Diagnostic& diag = diags_.Emit(severity, code, std::move(message));
    diag.path = site.path;
    diag.span = site.stmt->span;
  }

  void EmitOob(const Site& site, const BufferRegion& region, size_t dim,
               int64_t lo, int64_t hi) {
    std::ostringstream msg;
    msg << "provable out-of-bounds access to '" << region.buffer->name << "' ("
        << MemScopeName(region.buffer->scope) << " scope) in dim " << dim
        << ": offset range [" << lo << ", " << hi << "] with size "
        << region.sizes[dim] << " exceeds extent "
        << region.buffer->shape[dim];
    Emit(site, verify::Severity::kError, "L001", msg.str());
  }

  void EmitUnprovable(const Site& site, const BufferRegion& region,
                      size_t dim, const char* why) {
    std::ostringstream msg;
    msg << "cannot prove bounds of '" << region.buffer->name << "' ("
        << MemScopeName(region.buffer->scope) << " scope) in dim " << dim
        << ": " << why;
    Emit(site, verify::Severity::kWarning, "L002", msg.str());
  }

  void CheckRegion(const Site& site, const BufferRegion& region) {
    // Structural malformations (dim mismatches, non-positive sizes) are
    // the sync verifier's V009; the bounds pass only reasons about
    // well-formed regions.
    if (region.offsets.size() != region.sizes.size() ||
        region.offsets.size() != region.buffer->shape.size()) {
      return;
    }
    std::vector<VarRange> ranges;
    bool have_ranges = AnalysisContext::LoopRanges(site, &ranges);
    for (size_t d = 0; d < region.offsets.size(); ++d) {
      if (!have_ranges) {
        EmitUnprovable(site, region, d, "a loop extent is not constant");
        continue;
      }
      CheckDim(site, region, d, ranges);
    }
  }

  void CheckDim(const Site& site, const BufferRegion& region, size_t d,
                const std::vector<VarRange>& ranges) {
    int64_t size = region.sizes[d];
    int64_t extent = region.buffer->shape[d];
    Interval iv;
    if (EvalInterval(region.offsets[d], ranges, &iv)) {
      if (iv.lo >= 0 && iv.hi + size <= extent) return;  // proven in-bounds
      if (iv.exact && site.guards.empty()) {
        EmitOob(site, region, d, iv.lo, iv.hi);
        return;
      }
    }
    EnumerateDim(site, region, d, ranges);
  }

  // Exact fallback: enumerate the projection of the nest onto the
  // variables the offset and the guards read. The projection is exact
  // because the nest is rectangular: unused loop variables cannot change
  // either the offset or the guard outcome.
  void EnumerateDim(const Site& site, const BufferRegion& region, size_t d,
                    const std::vector<VarRange>& ranges) {
    std::vector<VarRange> relevant;
    for (size_t i = 0; i < ranges.size(); ++i) {
      const Var& v = site.loops[i]->var;
      bool used = UsesVar(region.offsets[d], v);
      for (const Guard& g : site.guards) {
        if (used) break;
        used = UsesVar(g.cond, v);
      }
      if (used) relevant.push_back(ranges[i]);
    }
    int64_t combos = 1;
    for (const VarRange& r : relevant) {
      combos *= r.extent;
      if (combos > ctx_.options().max_enumeration) {
        EmitUnprovable(site, region, d,
                       "loop-nest projection exceeds the enumeration budget");
        return;
      }
    }
    std::vector<VarBinding> env(relevant.size());
    for (size_t i = 0; i < relevant.size(); ++i) {
      env[i] = {relevant[i].var, 0};
    }
    bool any = false;
    int64_t lo = 0;
    int64_t hi = 0;
    for (int64_t flat = 0; flat < combos; ++flat) {
      int64_t rem = flat;
      for (size_t i = 0; i < relevant.size(); ++i) {
        env[i].value = rem % relevant[i].extent;
        rem /= relevant[i].extent;
      }
      bool executes = true;
      int64_t value = 0;
      try {
        for (const Guard& g : site.guards) {
          if ((Evaluate(g.cond, env) != 0) == g.negated) {
            executes = false;
            break;
          }
        }
        if (!executes) continue;
        value = Evaluate(region.offsets[d], env);
      } catch (const CheckError&) {
        EmitUnprovable(site, region, d,
                       "the offset reads a variable outside the loop nest");
        return;
      }
      lo = any ? std::min(lo, value) : value;
      hi = any ? std::max(hi, value) : value;
      any = true;
    }
    if (!any) return;  // the guards disable every iteration
    if (lo < 0 || hi + region.sizes[d] > region.buffer->shape[d]) {
      EmitOob(site, region, d, lo, hi);
    }
  }

  AnalysisContext& ctx_;
  verify::DiagnosticEngine& diags_;
};

}  // namespace

void StaticBoundsPass::Run(AnalysisContext& ctx,
                           verify::DiagnosticEngine& diags) {
  BoundsChecker(ctx, diags).Run();
}

}  // namespace analysis
}  // namespace alcop
