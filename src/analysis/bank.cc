#include "analysis/bank.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace alcop {
namespace analysis {

using namespace alcop::ir;  // NOLINT(google-build-using-namespace)

namespace {
constexpr int kNumBanks = 32;
constexpr int kWarpLanes = 32;
constexpr int64_t kBankWordBytes = 4;
}  // namespace

int ConflictDegree(const BufferRegion& region) {
  const BufferNode* buffer = region.buffer.get();
  // Lanes partition the outermost non-unit dimension of the region; the
  // remaining inner dims are streamed per lane.
  std::vector<int64_t> strides = buffer->Strides();
  size_t lane_dim = region.sizes.size();
  for (size_t d = 0; d < region.sizes.size(); ++d) {
    if (region.sizes[d] > 1) {
      lane_dim = d;
      break;
    }
  }
  if (lane_dim == region.sizes.size()) return 1;  // single-element region
  int64_t lane_stride_bytes = strides[lane_dim] * buffer->elem_bytes;
  int64_t lanes = std::min<int64_t>(kWarpLanes, region.sizes[lane_dim]);
  std::map<int64_t, std::set<int64_t>> words_per_bank;
  for (int64_t l = 0; l < lanes; ++l) {
    int64_t word = (l * lane_stride_bytes) / kBankWordBytes;
    words_per_bank[word % kNumBanks].insert(word);
  }
  size_t degree = 1;
  for (const auto& [bank, words] : words_per_bank) {
    degree = std::max(degree, words.size());
  }
  return static_cast<int>(degree);
}

void BankConflictPass::Run(AnalysisContext& ctx,
                           verify::DiagnosticEngine& diags) {
  const LintOptions& options = ctx.options();
  BankReport report;
  report.sim_divisor =
      options.swizzle ? 1.0 : options.spec.bank_conflict_factor;
  for (const Site& site : ctx.sites()) {
    if (site.stmt->kind != StmtKind::kCopy) continue;
    const auto* op = static_cast<const CopyNode*>(site.stmt.get());
    bool reads_shared = op->src.buffer->scope == MemScope::kShared;
    bool writes_shared = op->dst.buffer->scope == MemScope::kShared;
    if (!reads_shared && !writes_shared) continue;
    const BufferRegion& region = reads_shared ? op->src : op->dst;
    if (region.offsets.size() != region.buffer->shape.size() ||
        region.sizes.size() != region.offsets.size()) {
      continue;  // malformed; the verifier reports V009
    }
    BankAccess access;
    access.site = site.stmt.get();
    access.buffer = region.buffer->name;
    access.path = site.path;
    access.is_read = reads_shared;
    // The swizzled layout XOR-permutes words within a row segment and is
    // conflict-free by construction; the geometric degree applies to the
    // plain row-major layout only.
    access.degree = options.swizzle ? 1 : ConflictDegree(region);
    access.bytes = region.NumBytes();
    access.executions = ctx.CountExecutions(site);
    report.max_degree = std::max(report.max_degree, access.degree);
    if (access.is_read && access.executions > 0) {
      report.predicted_lds_read_bytes +=
          static_cast<double>(access.bytes) *
          static_cast<double>(access.executions);
    }
    if (!options.swizzle &&
        static_cast<double>(access.degree) >
            options.spec.bank_conflict_factor) {
      std::ostringstream msg;
      msg << "unswizzled shared-memory access to '" << access.buffer
          << "' has bank-conflict degree " << access.degree
          << " (model charges the calibrated factor "
          << options.spec.bank_conflict_factor
          << "); enable the swizzled layout to serialize-free the access";
      verify::Diagnostic& diag =
          diags.Emit(verify::Severity::kWarning, "L005", msg.str());
      diag.path = site.path;
      diag.span = site.stmt->span;
    }
    report.accesses.push_back(std::move(access));
  }
  ctx.SetBankReport(std::move(report));
}

}  // namespace analysis
}  // namespace alcop
