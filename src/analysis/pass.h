// Pass manager of the static analysis framework (alcop-lint).
//
// A lint run builds one AnalysisContext over the program and pushes it
// through an ordered list of AnalysisPass instances, each emitting
// findings into one shared verify::DiagnosticEngine under the L0xx code
// family:
//   L001 error   provable out-of-bounds load/store        (bounds pass)
//   L002 warning bounds not provable (nest too large or
//                non-constant extents)                    (bounds pass)
//   L003 error   read overlaps an in-flight async region  (race pass)
//   L004 warning two in-flight async writes overlap       (race pass)
//   L005 warning unswizzled shared access whose conflict
//                degree exceeds the modeled factor        (bank pass)
//   L006 error   threadblock resources exceed the device  (resource pass)
//
// Diagnostics are sorted by (line, column, code) before they are
// returned, so multi-pass output is stable regardless of pass order or
// ALCOP_THREADS. Per-pass cost is recorded in LintResult::pass_stats.
#ifndef ALCOP_ANALYSIS_PASS_H_
#define ALCOP_ANALYSIS_PASS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/context.h"
#include "verify/diagnostic.h"

namespace alcop {
namespace analysis {

class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;
  virtual const char* name() const = 0;
  virtual void Run(AnalysisContext& ctx, verify::DiagnosticEngine& diags) = 0;
};

struct PassStats {
  std::string name;
  size_t findings = 0;
  double millis = 0.0;
};

struct LintResult {
  std::vector<verify::Diagnostic> diagnostics;  // sorted (line, col, code)
  std::vector<PassStats> pass_stats;
  std::optional<StaticFeasibility> feasibility;
  std::optional<BankReport> bank;

  bool HasErrors() const;
  bool Clean() const { return diagnostics.empty(); }
  // True if an L001 (provable out-of-bounds) error is present; the
  // bounds fuzz differential compares this verdict against "the
  // executor's dynamic region check throws".
  bool HasBoundsError() const;
  std::string Render() const;
};

// The four standard client analyses, in their canonical order.
std::vector<std::unique_ptr<AnalysisPass>> MakeDefaultPasses();

// Runs `passes` over a fresh context for `program` and collects the
// sorted diagnostics plus the shared context results.
LintResult RunPasses(const ir::Stmt& program, const LintOptions& options,
                     const std::vector<std::unique_ptr<AnalysisPass>>& passes);

// RunPasses over MakeDefaultPasses().
LintResult LintProgram(const ir::Stmt& program,
                       const LintOptions& options = {});

}  // namespace analysis
}  // namespace alcop

#endif  // ALCOP_ANALYSIS_PASS_H_
