#include "analysis/races.h"

#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/expr.h"
#include "support/check.h"

namespace alcop {
namespace analysis {

using namespace alcop::ir;  // NOLINT(google-build-using-namespace)

namespace {

// A concrete rectangular region: per-dim [lo, hi) element ranges.
struct Box {
  std::vector<int64_t> lo;
  std::vector<int64_t> hi;
};

bool Overlaps(const Box& a, const Box& b) {
  if (a.lo.size() != b.lo.size()) return false;
  for (size_t d = 0; d < a.lo.size(); ++d) {
    if (a.hi[d] <= b.lo[d] || b.hi[d] <= a.lo[d]) return false;
  }
  return true;
}

bool Contains(const Box& outer, const Box& inner) {
  if (outer.lo.size() != inner.lo.size()) return false;
  for (size_t d = 0; d < outer.lo.size(); ++d) {
    if (inner.lo[d] < outer.lo[d] || inner.hi[d] > outer.hi[d]) return false;
  }
  return true;
}

std::string BoxString(const Box& box) {
  std::ostringstream out;
  out << "[";
  for (size_t d = 0; d < box.lo.size(); ++d) {
    if (d > 0) out << ", ";
    out << box.lo[d] << ":" << box.hi[d];
  }
  out << "]";
  return out.str();
}

// One in-flight async write.
struct BoxWrite {
  const BufferNode* buffer = nullptr;
  Box box;
  int64_t group = -1;   // commit-group index within its pipeline
  int pipeline = -1;    // pipeline group id
  bool live = false;    // still pending (not promoted, not overwritten)
};

struct PipeState {
  int64_t committed = 0;
  int64_t waited = 0;
  int64_t released = 0;
  int64_t promoted_upto = -1;
  std::vector<size_t> current;             // writes of the open group
  std::vector<std::vector<size_t>> fifo;   // committed groups
};

class RaceInterpreter {
 public:
  RaceInterpreter(AnalysisContext& ctx, verify::DiagnosticEngine& diags)
      : ctx_(ctx), diags_(diags) {}

  void Run() { Exec(ctx_.program()); }

 private:
  void Emit(const StmtNode* site, verify::Severity severity, const char* code,
            std::string message, std::string note) {
    if (!reported_.insert({site, code}).second) return;
    verify::Diagnostic& diag = diags_.Emit(severity, code, std::move(message));
    std::ostringstream path;
    for (const std::string& entry : path_) path << entry << " / ";
    path << SiteLabel(site);
    diag.path = path.str();
    diag.span = site->span;
    if (!note.empty()) diag.notes.push_back(std::move(note));
  }

  bool EvalBox(const BufferRegion& region, const StmtNode* site, Box* out) {
    out->lo.resize(region.offsets.size());
    out->hi.resize(region.offsets.size());
    for (size_t d = 0; d < region.offsets.size(); ++d) {
      try {
        out->lo[d] = Evaluate(region.offsets[d], env_);
      } catch (const CheckError&) {
        return false;  // malformed IR; the verifier reports V009
      }
      out->hi[d] = out->lo[d] +
                   (d < region.sizes.size() ? region.sizes[d] : 1);
    }
    (void)site;
    return true;
  }

  std::vector<size_t>& LiveOf(const BufferNode* buffer) {
    return live_[buffer];
  }

  void CheckReadBox(const StmtNode* site, const BufferRegion& region) {
    auto it = live_.find(region.buffer.get());
    if (it == live_.end() || it->second.empty()) return;
    Box box;
    if (!EvalBox(region, site, &box)) return;
    for (size_t id : it->second) {
      const BoxWrite& w = writes_[id];
      if (!w.live || !Overlaps(box, w.box)) continue;
      std::ostringstream msg;
      msg << "read region " << BoxString(box) << " of '"
          << region.buffer->name
          << "' overlaps an in-flight async write (region-level race)";
      std::ostringstream note;
      note << "written region " << BoxString(w.box) << " by commit group "
           << w.group << " of pipeline group " << w.pipeline
           << ", not yet promoted by a consumer_wait";
      Emit(site, verify::Severity::kError, "L003", msg.str(), note.str());
      return;
    }
  }

  // A synchronous write makes the overwritten data visible: live boxes
  // fully contained in the written box stop being pending.
  void RetireContained(const BufferNode* buffer, const Box& box) {
    auto it = live_.find(buffer);
    if (it == live_.end()) return;
    std::vector<size_t>& live = it->second;
    for (size_t i = 0; i < live.size();) {
      BoxWrite& w = writes_[live[i]];
      if (w.live && Contains(box, w.box)) {
        w.live = false;
        live[i] = live.back();
        live.pop_back();
      } else {
        ++i;
      }
    }
  }

  void ExecCopy(const CopyNode* op) {
    CheckReadBox(op, op->src);
    if (!op->is_async) {
      Box box;
      if (EvalBox(op->dst, op, &box)) {
        RetireContained(op->dst.buffer.get(), box);
      }
      return;
    }
    if (op->pipeline_group < 0) return;  // V009 territory
    Box box;
    if (!EvalBox(op->dst, op, &box)) return;
    PipeState& pipe = pipes_[op->pipeline_group];
    std::vector<size_t>& live = LiveOf(op->dst.buffer.get());
    for (size_t i = 0; i < live.size();) {
      BoxWrite& w = writes_[live[i]];
      if (w.live && Overlaps(box, w.box) &&
          !(w.pipeline == op->pipeline_group && w.group == pipe.committed)) {
        std::ostringstream msg;
        msg << "async write region " << BoxString(box) << " of '"
            << op->dst.buffer->name
            << "' overlaps a live region of an earlier commit group (two "
               "live groups alias one region; wrong rolling index?)";
        std::ostringstream note;
        note << "aliased region " << BoxString(w.box) << " written by commit "
             << "group " << w.group << " of pipeline group " << w.pipeline;
        Emit(op, verify::Severity::kWarning, "L004", msg.str(), note.str());
      }
      // A full overwrite transfers ownership to the newer group: the old
      // group's promotion must not make this data visible (the epoch
      // check of the slot-granular verifier).
      if (w.live && Contains(box, w.box) &&
          !(w.pipeline == op->pipeline_group && w.group == pipe.committed)) {
        w.live = false;
        live[i] = live.back();
        live.pop_back();
        continue;
      }
      ++i;
    }
    size_t id = writes_.size();
    writes_.push_back(BoxWrite{op->dst.buffer.get(), std::move(box),
                               pipe.committed, op->pipeline_group, true});
    live.push_back(id);
    pipe.current.push_back(id);
  }

  void ExecFill(const FillNode* op) {
    Box box;
    if (EvalBox(op->dst, op, &box)) {
      RetireContained(op->dst.buffer.get(), box);
    }
  }

  void ExecMma(const MmaNode* op) {
    CheckReadBox(op, op->a);
    CheckReadBox(op, op->b);
  }

  void Retire(size_t id) {
    BoxWrite& w = writes_[id];
    if (!w.live) return;
    w.live = false;
    std::vector<size_t>& live = live_[w.buffer];
    for (size_t i = 0; i < live.size(); ++i) {
      if (live[i] == id) {
        live[i] = live.back();
        live.pop_back();
        break;
      }
    }
  }

  void ExecSync(const SyncNode* op) {
    if (op->sync_kind == SyncKind::kBarrier || op->group < 0) return;
    PipeState& pipe = pipes_[op->group];
    switch (op->sync_kind) {
      case SyncKind::kProducerCommit:
        pipe.fifo.push_back(std::move(pipe.current));
        pipe.current.clear();
        ++pipe.committed;
        return;
      case SyncKind::kConsumerWait: {
        int64_t target = pipe.waited + op->wait_ahead;
        if (target >= pipe.committed) return;  // V003; no promotion
        for (int64_t g = pipe.promoted_upto + 1; g <= target; ++g) {
          for (size_t id : pipe.fifo[static_cast<size_t>(g)]) Retire(id);
        }
        pipe.promoted_upto = std::max(pipe.promoted_upto, target);
        ++pipe.waited;
        return;
      }
      case SyncKind::kConsumerRelease:
        pipe.released = std::min(pipe.released + 1, pipe.committed);
        return;
      default:  // producer_acquire capacity is the verifier's V002
        return;
    }
  }

  void ExecFor(const ForNode* op) {
    int64_t extent = 0;
    try {
      extent = Evaluate(op->extent, env_);
    } catch (const CheckError&) {
      return;
    }
    if (extent <= 0) return;
    bool parallel = op->for_kind == ForKind::kBlockIdx ||
                    op->for_kind == ForKind::kWarp;
    path_.emplace_back();
    env_.push_back({op->var.get(), 0});
    if (parallel) {
      path_.back() = "for " + op->var->name + "=0.." +
                     std::to_string(extent - 1) + "(" +
                     ForKindName(op->for_kind) + ")";
      Exec(op->body);
    } else {
      for (int64_t i = 0; i < extent && !step_limit_; ++i) {
        env_.back().value = i;
        path_.back() = "for " + op->var->name + "=" + std::to_string(i);
        Exec(op->body);
      }
    }
    env_.pop_back();
    path_.pop_back();
  }

  void Exec(const Stmt& s) {
    if (++steps_ > ctx_.options().max_steps) step_limit_ = true;
    if (step_limit_) return;
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const Stmt& child : static_cast<const BlockNode*>(s.get())->seq) {
          Exec(child);
        }
        return;
      case StmtKind::kPragma:
        Exec(static_cast<const PragmaNode*>(s.get())->body);
        return;
      case StmtKind::kFor:
        ExecFor(static_cast<const ForNode*>(s.get()));
        return;
      case StmtKind::kIfThenElse: {
        const auto* op = static_cast<const IfThenElseNode*>(s.get());
        int64_t cond = 0;
        try {
          cond = Evaluate(op->cond, env_);
        } catch (const CheckError&) {
          return;
        }
        if (cond != 0) {
          Exec(op->then_case);
        } else if (op->else_case != nullptr) {
          Exec(op->else_case);
        }
        return;
      }
      case StmtKind::kCopy:
        ExecCopy(static_cast<const CopyNode*>(s.get()));
        return;
      case StmtKind::kFill:
        ExecFill(static_cast<const FillNode*>(s.get()));
        return;
      case StmtKind::kMma:
        ExecMma(static_cast<const MmaNode*>(s.get()));
        return;
      case StmtKind::kSync:
        ExecSync(static_cast<const SyncNode*>(s.get()));
        return;
      default:
        return;
    }
  }

  AnalysisContext& ctx_;
  verify::DiagnosticEngine& diags_;
  bool step_limit_ = false;
  int64_t steps_ = 0;
  std::vector<VarBinding> env_;
  std::vector<std::string> path_;
  std::vector<BoxWrite> writes_;
  std::unordered_map<const BufferNode*, std::vector<size_t>> live_;
  std::map<int, PipeState> pipes_;
  std::set<std::pair<const StmtNode*, std::string>> reported_;
};

}  // namespace

void RegionRacePass::Run(AnalysisContext& ctx,
                         verify::DiagnosticEngine& diags) {
  RaceInterpreter(ctx, diags).Run();
}

}  // namespace analysis
}  // namespace alcop
