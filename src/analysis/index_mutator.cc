#include "analysis/index_mutator.h"

#include <utility>

#include "support/check.h"

namespace alcop {
namespace analysis {

using namespace alcop::ir;  // NOLINT(google-build-using-namespace)

const char* IndexMutationName(IndexMutation mutation) {
  switch (mutation) {
    case IndexMutation::kPlusOne: return "plus-one";
    case IndexMutation::kMinusOne: return "minus-one";
    case IndexMutation::kPlusExtent: return "plus-extent";
    case IndexMutation::kScaleTwo: return "scale-two";
    case IndexMutation::kSetZero: return "set-zero";
  }
  return "?";
}

namespace {

// Regions of a statement in their canonical field order; null for
// statements without regions.
std::vector<const BufferRegion*> RegionsOf(const StmtNode* s) {
  switch (s->kind) {
    case StmtKind::kCopy: {
      const auto* op = static_cast<const CopyNode*>(s);
      return {&op->dst, &op->src};
    }
    case StmtKind::kFill: {
      const auto* op = static_cast<const FillNode*>(s);
      return {&op->dst};
    }
    case StmtKind::kMma: {
      const auto* op = static_cast<const MmaNode*>(s);
      return {&op->c, &op->a, &op->b};
    }
    default:
      return {};
  }
}

void Collect(const Stmt& s, std::vector<IndexSite>* out) {
  switch (s->kind) {
    case StmtKind::kBlock:
      for (const Stmt& child : static_cast<const BlockNode*>(s.get())->seq) {
        Collect(child, out);
      }
      return;
    case StmtKind::kFor:
      Collect(static_cast<const ForNode*>(s.get())->body, out);
      return;
    case StmtKind::kPragma:
      Collect(static_cast<const PragmaNode*>(s.get())->body, out);
      return;
    case StmtKind::kIfThenElse: {
      const auto* op = static_cast<const IfThenElseNode*>(s.get());
      Collect(op->then_case, out);
      if (op->else_case != nullptr) Collect(op->else_case, out);
      return;
    }
    default: {
      std::vector<const BufferRegion*> regions = RegionsOf(s.get());
      for (size_t r = 0; r < regions.size(); ++r) {
        for (size_t d = 0; d < regions[r]->offsets.size(); ++d) {
          out->push_back(IndexSite{s.get(), static_cast<int>(r),
                                   static_cast<int>(d)});
        }
      }
      return;
    }
  }
}

Expr ApplyMutation(const Expr& offset, const BufferRegion& region, int dim,
                   IndexMutation mutation) {
  switch (mutation) {
    case IndexMutation::kPlusOne:
      return Add(offset, 1);
    case IndexMutation::kMinusOne:
      return Sub(offset, Int(1));
    case IndexMutation::kPlusExtent:
      return Add(offset, region.buffer->shape[static_cast<size_t>(dim)]);
    case IndexMutation::kScaleTwo:
      return Mul(offset, 2);
    case IndexMutation::kSetZero:
      return Int(0);
  }
  return offset;
}

BufferRegion MutateRegion(const BufferRegion& region, int dim,
                          IndexMutation mutation) {
  BufferRegion out = region;
  out.offsets[static_cast<size_t>(dim)] =
      ApplyMutation(region.offsets[static_cast<size_t>(dim)], region, dim,
                    mutation);
  return out;
}

// Rebuilds the spine from the root to `site.stmt`, sharing everything
// else. Returns null when the subtree does not contain the site.
Stmt Rewrite(const Stmt& s, const IndexSite& site, IndexMutation mutation) {
  if (s.get() == site.stmt) {
    switch (s->kind) {
      case StmtKind::kCopy: {
        const auto* op = static_cast<const CopyNode*>(s.get());
        auto copy = std::make_shared<CopyNode>(
            site.region == 0 ? MutateRegion(op->dst, site.dim, mutation)
                             : op->dst,
            site.region == 1 ? MutateRegion(op->src, site.dim, mutation)
                             : op->src,
            op->op, op->op_param);
        copy->is_async = op->is_async;
        copy->accumulate = op->accumulate;
        copy->pipeline_group = op->pipeline_group;
        copy->span = op->span;
        return copy;
      }
      case StmtKind::kFill: {
        const auto* op = static_cast<const FillNode*>(s.get());
        Stmt fill = Fill(MutateRegion(op->dst, site.dim, mutation), op->value);
        fill->span = op->span;
        return fill;
      }
      case StmtKind::kMma: {
        const auto* op = static_cast<const MmaNode*>(s.get());
        Stmt mma = Mma(
            site.region == 0 ? MutateRegion(op->c, site.dim, mutation) : op->c,
            site.region == 1 ? MutateRegion(op->a, site.dim, mutation) : op->a,
            site.region == 2 ? MutateRegion(op->b, site.dim, mutation)
                             : op->b);
        mma->span = op->span;
        return mma;
      }
      default:
        ALCOP_CHECK(false) << "index site on a statement without regions";
    }
  }
  switch (s->kind) {
    case StmtKind::kBlock: {
      const auto* op = static_cast<const BlockNode*>(s.get());
      for (size_t i = 0; i < op->seq.size(); ++i) {
        Stmt child = Rewrite(op->seq[i], site, mutation);
        if (child == nullptr) continue;
        std::vector<Stmt> seq = op->seq;
        seq[i] = std::move(child);
        Stmt block = Block(std::move(seq));
        block->span = op->span;
        return block;
      }
      return nullptr;
    }
    case StmtKind::kFor: {
      const auto* op = static_cast<const ForNode*>(s.get());
      Stmt body = Rewrite(op->body, site, mutation);
      if (body == nullptr) return nullptr;
      Stmt loop = For(op->var, op->extent, op->for_kind, std::move(body));
      loop->span = op->span;
      return loop;
    }
    case StmtKind::kPragma: {
      const auto* op = static_cast<const PragmaNode*>(s.get());
      Stmt body = Rewrite(op->body, site, mutation);
      if (body == nullptr) return nullptr;
      Stmt pragma = Pragma(op->key, op->buffer, op->value, std::move(body));
      pragma->span = op->span;
      return pragma;
    }
    case StmtKind::kIfThenElse: {
      const auto* op = static_cast<const IfThenElseNode*>(s.get());
      Stmt then_case = Rewrite(op->then_case, site, mutation);
      if (then_case != nullptr) {
        Stmt ite =
            IfThenElse(op->cond, std::move(then_case), op->else_case);
        ite->span = op->span;
        return ite;
      }
      if (op->else_case != nullptr) {
        Stmt else_case = Rewrite(op->else_case, site, mutation);
        if (else_case != nullptr) {
          Stmt ite =
              IfThenElse(op->cond, op->then_case, std::move(else_case));
          ite->span = op->span;
          return ite;
        }
      }
      return nullptr;
    }
    default:
      return nullptr;
  }
}

}  // namespace

std::vector<IndexSite> ListIndexSites(const Stmt& program) {
  std::vector<IndexSite> sites;
  Collect(program, &sites);
  return sites;
}

Stmt MutateIndexSite(const Stmt& program, const IndexSite& site,
                     IndexMutation mutation) {
  Stmt mutated = Rewrite(program, site, mutation);
  ALCOP_CHECK(mutated != nullptr) << "index site not found in program";
  return mutated;
}

}  // namespace analysis
}  // namespace alcop
