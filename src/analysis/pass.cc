#include "analysis/pass.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "analysis/bank.h"
#include "analysis/bounds.h"
#include "analysis/races.h"
#include "analysis/resources.h"

namespace alcop {
namespace analysis {

bool LintResult::HasErrors() const {
  for (const verify::Diagnostic& diag : diagnostics) {
    if (diag.severity == verify::Severity::kError) return true;
  }
  return false;
}

bool LintResult::HasBoundsError() const {
  for (const verify::Diagnostic& diag : diagnostics) {
    if (diag.code == "L001") return true;
  }
  return false;
}

std::string LintResult::Render() const {
  std::ostringstream out;
  for (const verify::Diagnostic& diag : diagnostics) {
    out << diag.Render() << "\n";
  }
  return out.str();
}

std::vector<std::unique_ptr<AnalysisPass>> MakeDefaultPasses() {
  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<StaticBoundsPass>());
  passes.push_back(std::make_unique<RegionRacePass>());
  passes.push_back(std::make_unique<BankConflictPass>());
  passes.push_back(std::make_unique<ResourceEstimatorPass>());
  return passes;
}

LintResult RunPasses(
    const ir::Stmt& program, const LintOptions& options,
    const std::vector<std::unique_ptr<AnalysisPass>>& passes) {
  AnalysisContext ctx(program, options);
  verify::DiagnosticEngine diags;
  LintResult result;
  for (const std::unique_ptr<AnalysisPass>& pass : passes) {
    size_t before = diags.diagnostics().size();
    auto t0 = std::chrono::steady_clock::now();
    pass->Run(ctx, diags);
    auto t1 = std::chrono::steady_clock::now();
    PassStats stats;
    stats.name = pass->name();
    stats.findings = diags.diagnostics().size() - before;
    stats.millis =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    result.pass_stats.push_back(std::move(stats));
  }
  result.diagnostics = diags.diagnostics();
  verify::SortDiagnostics(&result.diagnostics);
  result.feasibility = ctx.feasibility();
  result.bank = ctx.bank_report();
  return result;
}

LintResult LintProgram(const ir::Stmt& program, const LintOptions& options) {
  return RunPasses(program, options, MakeDefaultPasses());
}

}  // namespace analysis
}  // namespace alcop
