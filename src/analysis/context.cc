#include "analysis/context.h"

#include <sstream>
#include <utility>

#include "ir/expr.h"
#include "ir/simplify.h"

namespace alcop {
namespace analysis {

using namespace alcop::ir;  // NOLINT(google-build-using-namespace)

std::string SiteLabel(const StmtNode* s) {
  switch (s->kind) {
    case StmtKind::kCopy: {
      const auto* op = static_cast<const CopyNode*>(s);
      return std::string(op->is_async ? "copy.async(" : "copy(") +
             op->dst.buffer->name + ")";
    }
    case StmtKind::kFill:
      return "fill(" + static_cast<const FillNode*>(s)->dst.buffer->name + ")";
    case StmtKind::kMma:
      return "mma(" + static_cast<const MmaNode*>(s)->c.buffer->name + ")";
    case StmtKind::kSync: {
      const auto* op = static_cast<const SyncNode*>(s);
      if (op->sync_kind == SyncKind::kBarrier) return "barrier";
      std::string name = op->buffers.empty() ? "?" : op->buffers[0]->name;
      return name + "." + SyncKindName(op->sync_kind) + "@group" +
             std::to_string(op->group);
    }
    case StmtKind::kAlloc:
      return "alloc(" + static_cast<const AllocNode*>(s)->buffer->name + ")";
    default:
      return "stmt";
  }
}

namespace {

std::string PathOf(const std::vector<const ForNode*>& loops,
                   const StmtNode* leaf) {
  std::ostringstream out;
  for (const ForNode* loop : loops) out << "for " << loop->var->name << " / ";
  out << SiteLabel(leaf);
  return out.str();
}

void CollectSites(const Stmt& s, std::vector<const ForNode*>* loops,
                  std::vector<Guard>* guards, std::vector<Site>* out) {
  switch (s->kind) {
    case StmtKind::kBlock:
      for (const Stmt& child : static_cast<const BlockNode*>(s.get())->seq) {
        CollectSites(child, loops, guards, out);
      }
      return;
    case StmtKind::kPragma:
      CollectSites(static_cast<const PragmaNode*>(s.get())->body, loops,
                   guards, out);
      return;
    case StmtKind::kFor: {
      const auto* op = static_cast<const ForNode*>(s.get());
      loops->push_back(op);
      CollectSites(op->body, loops, guards, out);
      loops->pop_back();
      return;
    }
    case StmtKind::kIfThenElse: {
      const auto* op = static_cast<const IfThenElseNode*>(s.get());
      guards->push_back({op->cond, false});
      CollectSites(op->then_case, loops, guards, out);
      guards->back().negated = true;
      if (op->else_case != nullptr) {
        CollectSites(op->else_case, loops, guards, out);
      }
      guards->pop_back();
      return;
    }
    default:
      out->push_back(Site{s, *loops, *guards, PathOf(*loops, s.get())});
      return;
  }
}

bool ConstExtent(const ForNode* loop, int64_t* extent) {
  return AsConst(Simplify(loop->extent), extent);
}

}  // namespace

AnalysisContext::AnalysisContext(ir::Stmt program, LintOptions options)
    : program_(std::move(program)), options_(options) {}

const std::vector<Site>& AnalysisContext::sites() {
  if (!sites_ready_) {
    std::vector<const ForNode*> loops;
    std::vector<Guard> guards;
    CollectSites(program_, &loops, &guards, &sites_);
    sites_ready_ = true;
  }
  return sites_;
}

const std::vector<Buffer>& AnalysisContext::allocs() {
  if (!allocs_ready_) {
    allocs_ = CollectAllocatedBuffers(program_);
    allocs_ready_ = true;
  }
  return allocs_;
}

const std::vector<PipelineHint>& AnalysisContext::hints() {
  if (!hints_ready_) {
    hints_ = CollectPipelineHints(program_);
    hints_ready_ = true;
  }
  return hints_;
}

const std::unordered_map<const BufferNode*, std::vector<ProducerInfo>>&
AnalysisContext::producers() {
  if (!producers_ready_) {
    producers_ = MapProducers(program_);
    producers_ready_ = true;
  }
  return producers_;
}

const std::unordered_map<const BufferNode*, std::vector<ConsumerInfo>>&
AnalysisContext::consumers() {
  if (!consumers_ready_) {
    consumers_ = MapConsumers(program_);
    consumers_ready_ = true;
  }
  return consumers_;
}

int64_t AnalysisContext::NumWarps() {
  if (num_warps_ < 0) {
    int64_t warps = 1;
    for (const Site& site : sites()) {
      int64_t here = 1;
      for (const ForNode* loop : site.loops) {
        int64_t extent = 0;
        if (loop->for_kind == ForKind::kWarp && ConstExtent(loop, &extent)) {
          here *= extent;
        }
      }
      warps = std::max(warps, here);
    }
    num_warps_ = warps;
  }
  return num_warps_;
}

bool AnalysisContext::LoopRanges(const Site& site,
                                 std::vector<VarRange>* out) {
  out->clear();
  out->reserve(site.loops.size());
  for (const ForNode* loop : site.loops) {
    int64_t extent = 0;
    if (!ConstExtent(loop, &extent)) return false;
    out->push_back(VarRange{loop->var.get(), extent});
  }
  return true;
}

int64_t AnalysisContext::CountExecutions(const Site& site) {
  std::vector<VarRange> ranges;
  if (!LoopRanges(site, &ranges)) return -1;
  if (site.guards.empty()) {
    int64_t total = 1;
    for (const VarRange& r : ranges) total *= r.extent;
    return total;
  }
  // Project the nest onto the variables the guards read: iterations of
  // the remaining loops multiply through unconditionally.
  std::vector<size_t> guard_dims;
  int64_t rest = 1;
  for (size_t i = 0; i < ranges.size(); ++i) {
    bool used = false;
    for (const Guard& g : site.guards) {
      if (UsesVar(g.cond, site.loops[i]->var)) {
        used = true;
        break;
      }
    }
    if (used) {
      guard_dims.push_back(i);
    } else {
      rest *= ranges[i].extent;
    }
  }
  int64_t combos = 1;
  for (size_t d : guard_dims) {
    combos *= ranges[d].extent;
    if (combos > options_.max_enumeration) return -1;
  }
  std::vector<VarBinding> env(guard_dims.size());
  for (size_t i = 0; i < guard_dims.size(); ++i) {
    env[i] = {ranges[guard_dims[i]].var, 0};
  }
  int64_t holds = 0;
  for (int64_t flat = 0; flat < combos; ++flat) {
    int64_t rem = flat;
    for (size_t i = 0; i < guard_dims.size(); ++i) {
      env[i].value = rem % ranges[guard_dims[i]].extent;
      rem /= ranges[guard_dims[i]].extent;
    }
    bool ok = true;
    for (const Guard& g : site.guards) {
      int64_t v = 0;
      try {
        v = Evaluate(g.cond, env);
      } catch (...) {
        return -1;  // guard reads a variable outside the nest
      }
      if ((v != 0) == g.negated) {
        ok = false;
        break;
      }
    }
    if (ok) ++holds;
  }
  return holds * rest;
}

void AnalysisContext::SetFeasibility(StaticFeasibility verdict) {
  feasibility_ = std::move(verdict);
}

void AnalysisContext::SetBankReport(BankReport report) {
  bank_report_ = std::move(report);
}

}  // namespace analysis
}  // namespace alcop
