// Resource estimator and static feasibility verdict (code L006).
//
// Two entry points share the occupancy math of target/occupancy:
//
//  - ResourceEstimatorPass walks the *IR*: shared-memory footprint from
//    shared allocations (stage expansion included, since the pipeline
//    transformation reallocates the buffers with the stage dimension),
//    register footprint from register/accumulator allocations plus the
//    fixed per-thread overhead, warp count from the warp loop extents.
//    For lowered kernels the estimate reproduces
//    schedule::ComputeResources exactly (asserted in tests); for
//    hand-written IR it is the only estimate available. The verdict is
//    published on the AnalysisContext and L006 is emitted when one
//    threadblock does not fit the device.
//
//  - CheckConfigFeasibility is the tuner-facing fast path: pure config
//    arithmetic (ValidateConfig + ComputeResources + ComputeOccupancy),
//    no IR built. Its `reason` strings mirror the simulator's
//    ("invalid schedule: ...", "threadblock does not fit: ...")
//    because it must agree with CompileSimProgram verdict-for-verdict -
//    that agreement is what lets the tuner skip compile+simulate for
//    infeasible configs without changing any search result.
#ifndef ALCOP_ANALYSIS_RESOURCES_H_
#define ALCOP_ANALYSIS_RESOURCES_H_

#include "analysis/pass.h"
#include "schedule/schedule.h"

namespace alcop {
namespace analysis {

// The fixed per-thread register overhead schedule::ComputeResources
// charges (32 registers x 32 threads x 4 bytes per warp).
constexpr int64_t kPerWarpOverheadBytes = 32 * 32 * 4;

class ResourceEstimatorPass : public AnalysisPass {
 public:
  const char* name() const override { return "resource-estimator"; }
  void Run(AnalysisContext& ctx, verify::DiagnosticEngine& diags) override;
};

// Config-arithmetic feasibility check used as the tuner's pre-simulation
// filter. Agrees with sim::CompileSimProgram's feasibility verdict by
// construction (same ValidateConfig and occupancy calls, same reason
// strings).
StaticFeasibility CheckConfigFeasibility(const schedule::GemmOp& op,
                                         const schedule::ScheduleConfig& config,
                                         const target::GpuSpec& spec);

}  // namespace analysis
}  // namespace alcop

#endif  // ALCOP_ANALYSIS_RESOURCES_H_
