// Shared analysis context for the src/analysis pass framework.
//
// One AnalysisContext wraps one IR program and lazily computes the
// results every client analysis needs, so the passes of one lint run
// share them instead of re-walking the tree:
//   - statement sites: every non-block statement with its enclosing
//     loop nest *and* the IfThenElse guards dominating it (the pipeline
//     transformation guards recursive-mode loads and fused-mode
//     prologues; any analysis that ignores the guards would flag the
//     deliberately clipped tail iterations);
//   - def-use chains per buffer (producers/consumers, from ir/analysis);
//   - allocations and pipeline hints;
//   - guard-aware execution counts per site (how many loop-nest
//     iterations really run the statement), used by the bank-conflict
//     analyzer's traffic prediction;
//   - the resource estimator's StaticFeasibility verdict, published on
//     the context so later passes and the caller reuse it.
#ifndef ALCOP_ANALYSIS_CONTEXT_H_
#define ALCOP_ANALYSIS_CONTEXT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/interval.h"
#include "ir/analysis.h"
#include "ir/stmt.h"
#include "target/gpu_spec.h"
#include "target/occupancy.h"

namespace alcop {
namespace analysis {

// Options shared by every pass of one lint run.
struct LintOptions {
  target::GpuSpec spec = target::AmpereSpec();
  // Whether the schedule requests the swizzled shared-memory layout;
  // the layout is a property of the schedule (not visible in the tile-
  // granular IR), so the caller threads it through. Swizzled layouts
  // are conflict-free by construction.
  bool swizzle = true;
  // Step budget of the region-race interpretation (same guard as the
  // sync verifier's).
  int64_t max_steps = 1 << 22;
  // Point budget of the bounds checker's enumeration fallback, per
  // checked offset (projected onto the variables the offset and its
  // guards actually use).
  int64_t max_enumeration = 1 << 20;
};

// An IfThenElse condition dominating a statement. `negated` marks the
// else-branch side.
struct Guard {
  ir::Expr cond;
  bool negated = false;
};

// One non-block statement with its static context.
struct Site {
  ir::Stmt stmt;
  std::vector<const ir::ForNode*> loops;  // outermost first
  std::vector<Guard> guards;              // outermost first
  std::string path;                       // "for ko / copy.async(A_shared)"
};

// The resource estimator's verdict: whether one threadblock of the
// analyzed kernel fits the device, and at what occupancy. `reason`
// mirrors the simulator's infeasibility strings so the tuner pre-filter
// and the simulator agree verbatim.
struct StaticFeasibility {
  bool feasible = true;
  std::string reason;
  target::ThreadblockResources resources;
  target::Occupancy occupancy;
};

// One shared-memory access analyzed by the bank-conflict pass.
struct BankAccess {
  const ir::StmtNode* site = nullptr;
  std::string buffer;
  std::string path;
  bool is_read = false;   // shared -> register (the LDS pipe)
  int degree = 1;         // geometric conflict degree (1 = conflict-free)
  int64_t bytes = 0;      // bytes per execution of the statement
  int64_t executions = 0; // guard-aware whole-kernel execution count
};

// Whole-program result of the bank-conflict analysis.
struct BankReport {
  std::vector<BankAccess> accesses;
  int max_degree = 1;
  // Whole-kernel shared->register traffic (the simulator's
  // lds_read_bytes), predicted from region sizes and execution counts.
  double predicted_lds_read_bytes = 0.0;
  // The LDS-rate divisor the timing simulator applies to this schedule:
  // 1 when swizzled, GpuSpec::bank_conflict_factor otherwise. The
  // geometric `max_degree` upper-bounds the real penalty; the spec
  // factor is the calibrated average the model charges.
  double sim_divisor = 1.0;
};

class AnalysisContext {
 public:
  AnalysisContext(ir::Stmt program, LintOptions options);

  const ir::Stmt& program() const { return program_; }
  const LintOptions& options() const { return options_; }

  const std::vector<Site>& sites();
  const std::vector<ir::Buffer>& allocs();
  const std::vector<ir::PipelineHint>& hints();
  const std::unordered_map<const ir::BufferNode*,
                           std::vector<ir::ProducerInfo>>&
  producers();
  const std::unordered_map<const ir::BufferNode*,
                           std::vector<ir::ConsumerInfo>>&
  consumers();

  // Product of warp-kind loop extents along the deepest nest (the number
  // of warps one threadblock launches). 1 when the IR has no warp loops.
  int64_t NumWarps();

  // Loop-variable ranges of a site's nest. Returns false when a loop
  // extent is not a compile-time constant.
  static bool LoopRanges(const Site& site, std::vector<VarRange>* out);

  // Guard-aware execution count of a site: the number of loop-nest
  // iterations whose guards all hold. -1 when a loop extent is not
  // constant or the guard projection exceeds `max_enumeration`.
  int64_t CountExecutions(const Site& site);

  // Published by the resource estimator pass; reused by the tuner
  // pre-filter plumbing and the CLI.
  void SetFeasibility(StaticFeasibility verdict);
  const std::optional<StaticFeasibility>& feasibility() const {
    return feasibility_;
  }

  // Published by the bank-conflict pass.
  void SetBankReport(BankReport report);
  const std::optional<BankReport>& bank_report() const { return bank_report_; }

 private:
  ir::Stmt program_;
  LintOptions options_;
  bool sites_ready_ = false;
  std::vector<Site> sites_;
  bool allocs_ready_ = false;
  std::vector<ir::Buffer> allocs_;
  bool hints_ready_ = false;
  std::vector<ir::PipelineHint> hints_;
  bool producers_ready_ = false;
  std::unordered_map<const ir::BufferNode*, std::vector<ir::ProducerInfo>>
      producers_;
  bool consumers_ready_ = false;
  std::unordered_map<const ir::BufferNode*, std::vector<ir::ConsumerInfo>>
      consumers_;
  int64_t num_warps_ = -1;
  std::optional<StaticFeasibility> feasibility_;
  std::optional<BankReport> bank_report_;
};

// Short printable label of a statement ("copy.async(A_shared)"), shared
// by the passes' diagnostic paths.
std::string SiteLabel(const ir::StmtNode* s);

}  // namespace analysis
}  // namespace alcop

#endif  // ALCOP_ANALYSIS_CONTEXT_H_
