#include "analysis/resources.h"

#include <sstream>
#include <utility>

#include "schedule/lower.h"

namespace alcop {
namespace analysis {

void ResourceEstimatorPass::Run(AnalysisContext& ctx,
                                verify::DiagnosticEngine& diags) {
  StaticFeasibility verdict;
  target::ThreadblockResources& res = verdict.resources;
  res.warps = static_cast<int>(ctx.NumWarps());
  for (const ir::Buffer& buffer : ctx.allocs()) {
    switch (buffer->scope) {
      case ir::MemScope::kShared:
        res.smem_bytes += buffer->NumBytes();
        break;
      case ir::MemScope::kRegister:
      case ir::MemScope::kAccumulator:
        res.reg_bytes += buffer->NumBytes();
        break;
      default:
        break;
    }
  }
  res.reg_bytes += ctx.NumWarps() * kPerWarpOverheadBytes;
  verdict.occupancy = target::ComputeOccupancy(ctx.options().spec, res);
  if (verdict.occupancy.threadblocks_per_sm == 0) {
    verdict.feasible = false;
    verdict.reason = std::string("threadblock does not fit: ") +
                     target::LimiterName(verdict.occupancy.limiter);
    std::ostringstream msg;
    msg << "threadblock resources exceed the device: " << res.smem_bytes
        << " B shared, " << res.reg_bytes << " B registers, " << res.warps
        << " warps do not fit one SM (limiter: "
        << target::LimiterName(verdict.occupancy.limiter) << ")";
    verify::Diagnostic& diag =
        diags.Emit(verify::Severity::kError, "L006", msg.str());
    diag.notes.push_back(
        "shared/register footprints include the pipeline stage expansion; "
        "reduce smem_stages/reg_stages or the tile size");
  }
  ctx.SetFeasibility(std::move(verdict));
}

StaticFeasibility CheckConfigFeasibility(
    const schedule::GemmOp& op, const schedule::ScheduleConfig& config,
    const target::GpuSpec& spec) {
  StaticFeasibility verdict;
  std::string why;
  if (!schedule::ValidateConfig(op, config, &why)) {
    verdict.feasible = false;
    verdict.reason = "invalid schedule: " + why;
    return verdict;
  }
  verdict.resources = schedule::ComputeResources(op, config);
  verdict.occupancy = target::ComputeOccupancy(spec, verdict.resources);
  if (verdict.occupancy.threadblocks_per_sm == 0) {
    verdict.feasible = false;
    verdict.reason = std::string("threadblock does not fit: ") +
                     target::LimiterName(verdict.occupancy.limiter);
  }
  return verdict;
}

}  // namespace analysis
}  // namespace alcop
