// Interval (value-range) analysis over index expressions.
//
// The static analyses of src/analysis reason about the range a region
// offset can take over a loop nest without enumerating the nest. An
// Interval is a sound over-approximation of the attained value set: the
// set is always contained in [lo, hi]. When `exact` is true the analysis
// additionally proved that the attained set is *exactly* the arithmetic
// progression {lo, lo + stride, ..., hi} — which is what lets the bounds
// checker turn "the interval exceeds the buffer extent" into a *provable*
// out-of-bounds verdict instead of a may-alarm.
//
// The rules mirror how the lowering composes offsets: affine sums of
// loop variables (each variable appearing once), scaled by constants and
// wrapped with floordiv/floormod by the stage count. Exactness is only
// claimed where a small amount of number theory guarantees it (see the
// per-operator comments in interval.cc); everything else degrades to an
// inexact bound, and the bounds checker falls back to enumeration.
#ifndef ALCOP_ANALYSIS_INTERVAL_H_
#define ALCOP_ANALYSIS_INTERVAL_H_

#include <cstdint>
#include <vector>

#include "ir/expr.h"

namespace alcop {
namespace analysis {

// Value range of one loop variable: the values {0, 1, ..., extent - 1}.
struct VarRange {
  const ir::VarNode* var = nullptr;
  int64_t extent = 0;
};

struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;
  // Step of the attained arithmetic progression; meaningful when `exact`.
  int64_t stride = 1;
  // True when the attained set is exactly {lo, lo+stride, ..., hi}.
  bool exact = true;

  bool IsPoint() const { return lo == hi; }
};

// Computes the interval of `e` with every variable ranging over its
// VarRange. Returns false (and leaves `out` untouched) when the range
// cannot be bounded at all: an unbound variable, a non-constant or
// non-positive divisor/modulus. On success `out` always satisfies the
// containment guarantee; `out->exact` may still be false.
bool EvalInterval(const ir::Expr& e, const std::vector<VarRange>& ranges,
                  Interval* out);

}  // namespace analysis
}  // namespace alcop

#endif  // ALCOP_ANALYSIS_INTERVAL_H_
