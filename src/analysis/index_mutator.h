// Index-mutation corpus for the bounds fuzz differential.
//
// The static bounds checker is validated the same way the sync verifier
// was (PR-1's sync-mutant fuzz): enumerate every mutable index site of a
// lowered kernel, apply one small mechanical mutation per mutant, and
// require the static verdict ("an L001 provable-OOB error is present")
// to equal the executor's dynamic verdict ("a region check throws") on
// every mutant. A site is one (statement, region, dimension) offset
// expression; regions are numbered in the statement's field order
// (copy: dst=0, src=1; fill: dst=0; mma: c=0, a=1, b=2) so the corpus
// is deterministic.
#ifndef ALCOP_ANALYSIS_INDEX_MUTATOR_H_
#define ALCOP_ANALYSIS_INDEX_MUTATOR_H_

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace alcop {
namespace analysis {

enum class IndexMutation {
  kPlusOne,     // offset + 1 (off-by-one past the end)
  kMinusOne,    // offset - 1 (off-by-one before the start)
  kPlusExtent,  // offset + buffer extent (whole-buffer overshoot)
  kScaleTwo,    // offset * 2 (doubled stride)
  kSetZero,     // offset -> 0 (dropped index; often still in bounds)
};

constexpr int kNumIndexMutations = 5;

const char* IndexMutationName(IndexMutation mutation);

// One mutable offset expression in a program.
struct IndexSite {
  const ir::StmtNode* stmt = nullptr;
  int region = 0;  // field order within the statement (see header comment)
  int dim = 0;     // offset dimension within the region
};

// Every (statement, region, dim) offset site, in pre-order statement
// order. The mutation corpus is sites x mutations.
std::vector<IndexSite> ListIndexSites(const ir::Stmt& program);

// Returns `program` with the one site's offset rewritten. The rest of
// the tree is structurally shared.
ir::Stmt MutateIndexSite(const ir::Stmt& program, const IndexSite& site,
                         IndexMutation mutation);

}  // namespace analysis
}  // namespace alcop

#endif  // ALCOP_ANALYSIS_INDEX_MUTATOR_H_
