// Static bounds checker (codes L001/L002).
//
// Proves every copy/fill/MMA region in-bounds for its buffer, per memory
// scope, or flags a *provable* out-of-bounds access. Three-tier logic,
// cheapest first:
//   1. interval fast path: the offset's interval over the loop-variable
//      ranges fits the extent -> proven in-bounds (sound even when the
//      interval over-approximates, and even ignoring IfThenElse guards:
//      the guarded executions are a subset);
//   2. exact-interval verdict: the interval is exact (attained set known)
//      and the statement is unguarded -> a violated bound is provably
//      reached -> L001;
//   3. enumeration fallback: project the loop nest onto the variables
//      the offset and its guards actually use and enumerate that
//      product, skipping guard-disabled iterations. This matches the
//      executor's dynamic region check (sim/memory.cc) decision for
//      decision, which is what the index-mutation fuzz differential
//      asserts. Projections larger than LintOptions::max_enumeration
//      give up with an L002 warning instead of a verdict.
#ifndef ALCOP_ANALYSIS_BOUNDS_H_
#define ALCOP_ANALYSIS_BOUNDS_H_

#include "analysis/pass.h"

namespace alcop {
namespace analysis {

class StaticBoundsPass : public AnalysisPass {
 public:
  const char* name() const override { return "static-bounds"; }
  void Run(AnalysisContext& ctx, verify::DiagnosticEngine& diags) override;
};

}  // namespace analysis
}  // namespace alcop

#endif  // ALCOP_ANALYSIS_BOUNDS_H_
