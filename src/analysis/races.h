// Region-level race detector (codes L003/L004).
//
// The sync verifier (V001-V009) tracks in-flight async data at *slot*
// granularity: one leading-dimension index per copy. That is exact for
// the IR this compiler emits today, where every async copy writes a
// whole stage slot — but warp-specialized schedules split a slot between
// producer warps, and a slot-granular checker cannot see two sub-slot
// writes alias or a consumer touch only the written half. This pass
// generalizes the same abstract interpretation to full rectangular
// *regions*: each in-flight commit group records the concrete per-dim
// boxes its async copies wrote, and
//   L003 (error)   a read's box intersects a box that is still
//                  in flight (committed or uncommitted, not yet
//                  promoted by a consumer_wait);
//   L004 (warning) an async write's box intersects a live box of an
//                  *earlier* commit group (region aliasing between two
//                  live groups - the region-level V005).
// Serial loops are enumerated in full; parallel loops run the
// representative instance 0, exactly like the verifier.
#ifndef ALCOP_ANALYSIS_RACES_H_
#define ALCOP_ANALYSIS_RACES_H_

#include "analysis/pass.h"

namespace alcop {
namespace analysis {

class RegionRacePass : public AnalysisPass {
 public:
  const char* name() const override { return "region-races"; }
  void Run(AnalysisContext& ctx, verify::DiagnosticEngine& diags) override;
};

}  // namespace analysis
}  // namespace alcop

#endif  // ALCOP_ANALYSIS_RACES_H_
