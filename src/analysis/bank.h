// Static shared-memory bank-conflict analyzer (code L005).
//
// Model (the standard NVIDIA one, see the CUDA shared-memory rules):
// shared memory has 32 banks of 4-byte words; a warp access conflicts
// when lanes touch *different* words mapping to the same bank, and the
// conflict degree (max words per bank) multiplies the access latency.
// Lanes touching the same word broadcast conflict-free.
//
// In the tile-granular IR a shared-memory copy moves a whole fragment
// tile; the hardware distributes it so that lanes walk the outermost
// non-unit dimension of the region (fragment rows) simultaneously, i.e.
// concurrent lane addresses are separated by that dimension's row
// stride. A [warp_m, warp_k] fp16 slice of an unswizzled
// [tb_m, tb_k] buffer therefore hits banks in steps of tb_k/2 words -
// the classic strided-column conflict a swizzled (XOR-permuted) layout
// removes. The pass:
//   - computes the geometric conflict degree of every shared-memory
//     access (degree 1 when the schedule uses the swizzled layout);
//   - predicts the whole-kernel shared->register traffic from region
//     bytes times guard-aware execution counts (cross-checked against
//     the simulator's lds_read_bytes PMU counter in tests);
//   - reports the LDS-rate divisor the timing simulator will charge
//     (1 swizzled, GpuSpec::bank_conflict_factor unswizzled - the
//     calibrated average, upper-bounded by the geometric degree);
//   - emits L005 when an unswizzled access's geometric degree exceeds
//     the modeled factor, i.e. when the schedule leaves conflicts on
//     the table that the model undercharges.
#ifndef ALCOP_ANALYSIS_BANK_H_
#define ALCOP_ANALYSIS_BANK_H_

#include "analysis/pass.h"
#include "ir/buffer.h"

namespace alcop {
namespace analysis {

// Geometric conflict degree of one region access of a shared buffer,
// assuming the unswizzled row-major layout.
int ConflictDegree(const ir::BufferRegion& region);

class BankConflictPass : public AnalysisPass {
 public:
  const char* name() const override { return "bank-conflicts"; }
  void Run(AnalysisContext& ctx, verify::DiagnosticEngine& diags) override;
};

}  // namespace analysis
}  // namespace alcop

#endif  // ALCOP_ANALYSIS_BANK_H_
