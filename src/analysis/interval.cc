#include "analysis/interval.h"

#include <algorithm>
#include <cstdlib>

namespace alcop {
namespace analysis {

using ir::BinaryNode;
using ir::Expr;
using ir::ExprKind;
using ir::IntImmNode;
using ir::VarNode;

namespace {

// Floor division/modulo matching ir::Evaluate semantics.
int64_t FDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
int64_t FMod(int64_t a, int64_t b) { return a - FDiv(a, b) * b; }

int64_t Gcd(int64_t a, int64_t b) {
  a = std::abs(a);
  b = std::abs(b);
  while (b != 0) {
    int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// Interval plus the set of variables the sub-expression reads. Exactness
// of a sum is only sound when the operands range independently, i.e. use
// disjoint variables; correlated operands (x - x) degrade to inexact.
struct Info {
  Interval iv;
  std::vector<const VarNode*> vars;
};

bool DisjointVars(const Info& a, const Info& b) {
  for (const VarNode* v : a.vars) {
    for (const VarNode* w : b.vars) {
      if (v == w) return false;
    }
  }
  return true;
}

void MergeVars(Info* out, const Info& a, const Info& b) {
  out->vars = a.vars;
  for (const VarNode* v : b.vars) {
    if (std::find(out->vars.begin(), out->vars.end(), v) == out->vars.end()) {
      out->vars.push_back(v);
    }
  }
}

Interval PointIv(int64_t v) { return Interval{v, v, 1, true}; }

Interval Negate(const Interval& a) {
  return Interval{-a.hi, -a.lo, a.stride, a.exact};
}

// Sum of two attained sets. Exact when one operand is a point, or when
// the two progressions tile: with strides s_a >= s_b, the sums stay the
// full progression of stride s_b iff s_b divides s_a and b spans at least
// one s_a period (span_b + s_b >= s_a) — each shifted copy of b then
// meets the next one with no gap in the stride-s_b lattice.
Interval AddIv(const Interval& a, const Interval& b, bool disjoint) {
  Interval out;
  out.lo = a.lo + b.lo;
  out.hi = a.hi + b.hi;
  out.exact = false;
  out.stride = 1;
  if (!disjoint || !a.exact || !b.exact) return out;
  if (a.IsPoint()) {
    out.stride = b.stride;
    out.exact = true;
    return out;
  }
  if (b.IsPoint()) {
    out.stride = a.stride;
    out.exact = true;
    return out;
  }
  const Interval& big = a.stride >= b.stride ? a : b;
  const Interval& small = a.stride >= b.stride ? b : a;
  if (small.stride > 0 && big.stride % small.stride == 0 &&
      (small.hi - small.lo) + small.stride >= big.stride) {
    out.stride = small.stride;
    out.exact = true;
  }
  return out;
}

Interval MulIv(const Interval& a, const Interval& b) {
  if (a.IsPoint() && a.lo == 0) return PointIv(0);
  if (b.IsPoint() && b.lo == 0) return PointIv(0);
  if (b.IsPoint()) {
    int64_t c = b.lo;
    Interval out;
    if (c > 0) {
      out = Interval{a.lo * c, a.hi * c, a.stride * c, a.exact};
    } else {
      out = Interval{a.hi * c, a.lo * c, a.stride * -c, a.exact};
    }
    return out;
  }
  if (a.IsPoint()) return MulIv(b, a);
  // Variable * variable: corner products bound the range; the attained
  // set has no progression structure worth tracking.
  int64_t c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  Interval out;
  out.lo = *std::min_element(c, c + 4);
  out.hi = *std::max_element(c, c + 4);
  out.stride = 1;
  out.exact = a.IsPoint() && b.IsPoint();
  return out;
}

// floor(x / c) for constant c > 0. Floor is monotone, so the endpoint
// images are the true extremes. The image stays a full progression when
// c divides the stride (the quotient steps by stride/c) or when the
// input is consecutive (stride 1: consecutive floors skip nothing).
bool DivIv(const Interval& a, const Interval& c_iv, Interval* out) {
  if (!c_iv.IsPoint() || c_iv.lo <= 0) return false;
  int64_t c = c_iv.lo;
  out->lo = FDiv(a.lo, c);
  out->hi = FDiv(a.hi, c);
  out->exact = false;
  out->stride = 1;
  if (a.exact && a.stride % c == 0) {
    out->stride = std::max<int64_t>(a.stride / c, 1);
    out->exact = true;
  } else if (a.exact && a.stride == 1) {
    out->stride = 1;
    out->exact = true;
  }
  return true;
}

// x mod c (floor convention, result in [0, c)) for constant c > 0.
bool ModIv(const Interval& a, const Interval& c_iv, Interval* out) {
  if (!c_iv.IsPoint() || c_iv.lo <= 0) return false;
  int64_t c = c_iv.lo;
  // Whole input inside one period: mod is a shift, structure preserved.
  if (FDiv(a.lo, c) == FDiv(a.hi, c)) {
    out->lo = FMod(a.lo, c);
    out->hi = FMod(a.hi, c);
    out->stride = a.stride;
    out->exact = a.exact;
    return true;
  }
  if (a.exact) {
    // Residues of the progression lo + i*stride cycle with period
    // c / gcd(stride, c); once the progression is at least that long,
    // every residue congruent to lo (mod g) in [0, c) is attained.
    int64_t g = Gcd(std::max<int64_t>(a.stride, 1), c);
    int64_t period = c / g;
    int64_t count = (a.hi - a.lo) / std::max<int64_t>(a.stride, 1) + 1;
    if (count >= period) {
      int64_t r0 = FMod(a.lo, g);
      out->lo = r0;
      out->hi = r0 + (period - 1) * g;
      out->stride = g;
      out->exact = true;
      return true;
    }
  }
  out->lo = 0;
  out->hi = c - 1;
  out->stride = 1;
  out->exact = false;
  return true;
}

Interval MinMaxIv(const Interval& a, const Interval& b, bool is_min) {
  Interval out;
  if (is_min) {
    out.lo = std::min(a.lo, b.lo);
    out.hi = std::min(a.hi, b.hi);
  } else {
    out.lo = std::max(a.lo, b.lo);
    out.hi = std::max(a.hi, b.hi);
  }
  out.stride = 1;
  // Correlated extremes: only point operands stay exact.
  out.exact = a.IsPoint() && b.IsPoint();
  return out;
}

// Comparisons/logical operators evaluate to 0/1; when the operand ranges
// decide the outcome the result is a point, otherwise {0, 1}.
Interval BoolIv(int decided) {
  if (decided < 0) return Interval{0, 1, 1, true};  // both attained? unknown
  return PointIv(decided);
}

bool Eval(const Expr& e, const std::vector<VarRange>& ranges, Info* out);

bool EvalBinary(const BinaryNode* op, const std::vector<VarRange>& ranges,
                Info* out) {
  Info a, b;
  if (!Eval(op->a, ranges, &a) || !Eval(op->b, ranges, &b)) return false;
  MergeVars(out, a, b);
  bool disjoint = DisjointVars(a, b);
  switch (op->kind) {
    case ExprKind::kAdd:
      out->iv = AddIv(a.iv, b.iv, disjoint);
      return true;
    case ExprKind::kSub:
      out->iv = AddIv(a.iv, Negate(b.iv), disjoint);
      return true;
    case ExprKind::kMul:
      out->iv = MulIv(a.iv, b.iv);
      if (!disjoint && !(a.iv.IsPoint() || b.iv.IsPoint())) {
        out->iv.exact = false;
      }
      return true;
    case ExprKind::kFloorDiv:
      return DivIv(a.iv, b.iv, &out->iv);
    case ExprKind::kFloorMod:
      return ModIv(a.iv, b.iv, &out->iv);
    case ExprKind::kMin:
      out->iv = MinMaxIv(a.iv, b.iv, /*is_min=*/true);
      return true;
    case ExprKind::kMax:
      out->iv = MinMaxIv(a.iv, b.iv, /*is_min=*/false);
      return true;
    case ExprKind::kLT:
      out->iv = BoolIv(a.iv.hi < b.iv.lo ? 1 : (a.iv.lo >= b.iv.hi ? 0 : -1));
      out->iv.exact = out->iv.IsPoint();
      return true;
    case ExprKind::kLE:
      out->iv = BoolIv(a.iv.hi <= b.iv.lo ? 1 : (a.iv.lo > b.iv.hi ? 0 : -1));
      out->iv.exact = out->iv.IsPoint();
      return true;
    case ExprKind::kGT:
      out->iv = BoolIv(a.iv.lo > b.iv.hi ? 1 : (a.iv.hi <= b.iv.lo ? 0 : -1));
      out->iv.exact = out->iv.IsPoint();
      return true;
    case ExprKind::kGE:
      out->iv = BoolIv(a.iv.lo >= b.iv.hi ? 1 : (a.iv.hi < b.iv.lo ? 0 : -1));
      out->iv.exact = out->iv.IsPoint();
      return true;
    case ExprKind::kEQ:
      out->iv = BoolIv(a.iv.IsPoint() && b.iv.IsPoint()
                           ? (a.iv.lo == b.iv.lo ? 1 : 0)
                           : (a.iv.hi < b.iv.lo || b.iv.hi < a.iv.lo ? 0
                                                                     : -1));
      out->iv.exact = out->iv.IsPoint();
      return true;
    case ExprKind::kNE:
      out->iv = BoolIv(a.iv.IsPoint() && b.iv.IsPoint()
                           ? (a.iv.lo != b.iv.lo ? 1 : 0)
                           : (a.iv.hi < b.iv.lo || b.iv.hi < a.iv.lo ? 1
                                                                     : -1));
      out->iv.exact = out->iv.IsPoint();
      return true;
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      // Truthiness is decided only when zero is provably (un)attainable.
      auto always_true = [](const Interval& x) { return x.lo > 0 || x.hi < 0; };
      auto always_false = [](const Interval& x) {
        return x.IsPoint() && x.lo == 0;
      };
      int decided = -1;
      if (op->kind == ExprKind::kAnd) {
        if (always_false(a.iv) || always_false(b.iv)) decided = 0;
        if (always_true(a.iv) && always_true(b.iv)) decided = 1;
      } else {
        if (always_true(a.iv) || always_true(b.iv)) decided = 1;
        if (always_false(a.iv) && always_false(b.iv)) decided = 0;
      }
      out->iv = BoolIv(decided);
      out->iv.exact = out->iv.IsPoint();
      return true;
    }
    default:
      return false;
  }
}

bool Eval(const Expr& e, const std::vector<VarRange>& ranges, Info* out) {
  switch (e->kind) {
    case ExprKind::kIntImm:
      out->iv = PointIv(static_cast<const IntImmNode*>(e.get())->value);
      out->vars.clear();
      return true;
    case ExprKind::kVar: {
      const auto* var = static_cast<const VarNode*>(e.get());
      for (const VarRange& r : ranges) {
        if (r.var == var) {
          if (r.extent <= 0) return false;
          out->iv = Interval{0, r.extent - 1, 1, true};
          out->vars = {var};
          return true;
        }
      }
      return false;  // unbound variable
    }
    default:
      return EvalBinary(static_cast<const BinaryNode*>(e.get()), ranges, out);
  }
}

}  // namespace

bool EvalInterval(const ir::Expr& e, const std::vector<VarRange>& ranges,
                  Interval* out) {
  Info info;
  if (!Eval(e, ranges, &info)) return false;
  *out = info.iv;
  return true;
}

}  // namespace analysis
}  // namespace alcop
