// Fixed-size thread pool and data-parallel helpers for the tuning stack.
//
// Design rules (see DESIGN.md "Concurrency model"):
//   - ParallelFor(n, fn) runs fn(0..n-1) with dynamic index distribution;
//     the caller thread participates, so a pool of `threads` total threads
//     spawns threads-1 workers. A pool with 1 thread has no workers at all
//     and is an *exact* serial fallback (same call sequence, same stack).
//     Batches too small to fill a chunk per thread also run inline, so
//     parallel dispatch is never slower than the serial loop.
//   - Nested use is safe: a ParallelFor issued from inside a pool task runs
//     inline on that worker instead of deadlocking on the shared queue.
//   - Exceptions thrown by iterations are captured; after every started
//     iteration has finished, the exception from the lowest failing index
//     is rethrown on the caller, so error reporting is deterministic
//     regardless of thread count.
//
// The process-wide pool is sized from the ALCOP_THREADS environment
// variable (default: hardware concurrency). Components must only use the
// pool for work whose iterations are independent and whose results are
// written to disjoint, pre-sized slots — this is what keeps every tuning
// result bit-identical across thread counts.
//
// Dispatch statistics (calls, inline fallbacks, total iterations, pool
// size) surface in the obs metrics registry under `pool.*`.
#ifndef ALCOP_SUPPORT_PARALLEL_H_
#define ALCOP_SUPPORT_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace alcop {
namespace support {

class ThreadPool {
 public:
  // `threads` is the total concurrency including the calling thread;
  // values < 1 are clamped to 1 (serial).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total concurrency (worker threads + the participating caller).
  int threads() const;

  // Blocks until fn(i) has run for every i in [0, n). All iterations run
  // even if one throws; the lowest-index exception is rethrown at the end.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Thread count the global pool would be (re)built with: ALCOP_THREADS if
// set to a positive integer — clamped to hardware concurrency, since
// oversubscription only adds contention — otherwise hardware concurrency.
int ThreadsFromEnv();

// Total concurrency of the global pool (creating it on first use).
int ConfiguredThreads();

// Test/bench hook: replaces the global pool with one of `threads` total
// threads. In-flight ParallelFor calls keep the old pool alive; do not
// call concurrently with new work submission.
void SetGlobalThreads(int threads);

// Runs fn over [0, n) on the global pool.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

// Maps fn over [0, n), collecting results in index order. Results are
// identical for any thread count because each iteration owns slot i.
template <typename Fn>
auto ParallelMap(size_t n, Fn&& fn) -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(n);
  ParallelFor(n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace support
}  // namespace alcop

#endif  // ALCOP_SUPPORT_PARALLEL_H_
