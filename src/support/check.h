// Checking / assertion macros used across the ALCOP codebase.
//
// ALCOP_CHECK(cond) << "message";   -- fatal invariant check (always on)
// ALCOP_CHECK_EQ/NE/LT/LE/GT/GE(a, b) << "message";
//
// Failures throw alcop::CheckError so tests can assert on misuse of the
// public API (e.g. illegal schedules) instead of aborting the process.
#ifndef ALCOP_SUPPORT_CHECK_H_
#define ALCOP_SUPPORT_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace alcop {

// Error thrown when an ALCOP_CHECK fails. Carries the full formatted
// message, including the source location and the failed condition.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace support {

// Stream-collecting helper that throws on destruction of the temporary
// chain; used only via the ALCOP_CHECK macros below.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* cond) {
    stream_ << file << ":" << line << ": check failed: (" << cond << ") ";
  }

  template <typename T>
  CheckFailStream& operator<<(T&& value) {
    stream_ << std::forward<T>(value);
    return *this;
  }

  [[noreturn]] ~CheckFailStream() noexcept(false) {
    throw CheckError(stream_.str());
  }

 private:
  std::ostringstream stream_;
};

}  // namespace support
}  // namespace alcop

#define ALCOP_CHECK(cond)                                            \
  if (!(cond))                                                       \
  ::alcop::support::CheckFailStream(__FILE__, __LINE__, #cond)

#define ALCOP_CHECK_BINARY(a, b, op)                                 \
  if (!((a)op(b)))                                                   \
  ::alcop::support::CheckFailStream(__FILE__, __LINE__, #a " " #op " " #b) \
      << "(" << (a) << " vs " << (b) << ") "

#define ALCOP_CHECK_EQ(a, b) ALCOP_CHECK_BINARY(a, b, ==)
#define ALCOP_CHECK_NE(a, b) ALCOP_CHECK_BINARY(a, b, !=)
#define ALCOP_CHECK_LT(a, b) ALCOP_CHECK_BINARY(a, b, <)
#define ALCOP_CHECK_LE(a, b) ALCOP_CHECK_BINARY(a, b, <=)
#define ALCOP_CHECK_GT(a, b) ALCOP_CHECK_BINARY(a, b, >)
#define ALCOP_CHECK_GE(a, b) ALCOP_CHECK_BINARY(a, b, >=)

#endif  // ALCOP_SUPPORT_CHECK_H_
