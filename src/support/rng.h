// Deterministic random number generation for tests, workload data and the
// simulated-annealing tuner. A thin wrapper over std::mt19937_64 with the
// handful of draws the codebase needs.
#ifndef ALCOP_SUPPORT_RNG_H_
#define ALCOP_SUPPORT_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace alcop {

// Seeded pseudo-random generator. All randomized components of ALCOP take
// an explicit Rng (or seed) so every experiment is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  // Standard normal draw.
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Chooses an index in [0, weights.size()) proportionally to weights.
  size_t Choice(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace alcop

#endif  // ALCOP_SUPPORT_RNG_H_
