#include "support/rng.h"

#include "support/check.h"

namespace alcop {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ALCOP_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

size_t Rng::Choice(const std::vector<double>& weights) {
  ALCOP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  ALCOP_CHECK_GT(total, 0.0);
  double pick = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (pick < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace alcop
