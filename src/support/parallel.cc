#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace alcop {
namespace support {

namespace {

// Set while a thread is executing a pool task; nested ParallelFor calls
// detect it and run inline instead of re-entering the shared queue.
thread_local bool t_in_pool_task = false;

// Pool stats surface through the process-wide metrics registry
// (obs/metrics.h). References are resolved once: counter updates on the
// dispatch path are single relaxed atomic adds.
struct PoolMetrics {
  obs::Counter& calls;
  obs::Counter& inline_calls;  // ran serially (no workers / nested / tiny)
  obs::Counter& iterations;
  obs::Gauge& threads;

  static PoolMetrics& Get() {
    static PoolMetrics* metrics = [] {
      obs::Registry& registry = obs::Registry::Global();
      return new PoolMetrics{
          registry.GetCounter("pool.parallel_for.calls",
                              "ParallelFor invocations."),
          registry.GetCounter("pool.parallel_for.inline_calls",
                              "ParallelFor calls that ran serially."),
          registry.GetCounter("pool.iterations",
                              "Loop iterations executed by the pool."),
          registry.GetGauge("pool.threads",
                            "Worker threads in the shared pool."),
      };
    }();
    return *metrics;
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  bool stop = false;

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (stop && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      t_in_pool_task = true;
      task();
      t_in_pool_task = false;
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  int workers = threads < 1 ? 0 : threads - 1;
  impl_->workers.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

int ThreadPool::threads() const {
  return static_cast<int>(impl_->workers.size()) + 1;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.calls.Increment();
  metrics.iterations.Add(n);
  // Serial fallback: no workers, a nested call from inside a pool task
  // (re-entering the queue could deadlock), or too few iterations to fill
  // even one chunk per thread — the fan-out/fan-in handshake (queueing,
  // wakeups, the final condition-variable wait) costs more than it saves
  // on tiny batches, and running inline keeps parallel >= serial on any
  // machine.
  size_t total_threads = impl_->workers.size() + 1;
  if (impl_->workers.empty() || n < 2 * total_threads || t_in_pool_task) {
    metrics.inline_calls.Increment();
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr error;
    size_t error_index = std::numeric_limits<size_t>::max();
    std::mutex done_mu;
    std::condition_variable done_cv;
    size_t pending = 0;
  };
  auto shared = std::make_shared<Shared>();

  // Iterations are claimed in chunks through one atomic counter, so
  // helpers and the caller load-balance without an atomic op per cheap
  // iteration; each iteration only writes caller-owned state via fn,
  // which is valid for the whole call because the caller blocks below.
  size_t chunk = std::max<size_t>(1, n / (total_threads * 8));
  auto drain = [shared, n, chunk, &fn] {
    for (;;) {
      size_t begin = shared->next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      size_t end = std::min(n, begin + chunk);
      for (size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(shared->error_mu);
          if (i < shared->error_index) {
            shared->error_index = i;
            shared->error = std::current_exception();
          }
        }
      }
    }
  };

  size_t helpers = std::min(impl_->workers.size(), n - 1);
  shared->pending = helpers;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (size_t h = 0; h < helpers; ++h) {
      impl_->queue.emplace_back([shared, drain] {
        drain();
        std::lock_guard<std::mutex> done_lock(shared->done_mu);
        if (--shared->pending == 0) shared->done_cv.notify_one();
      });
    }
  }
  impl_->cv.notify_all();

  drain();
  {
    std::unique_lock<std::mutex> lock(shared->done_mu);
    shared->done_cv.wait(lock, [&] { return shared->pending == 0; });
  }
  if (shared->error) std::rethrow_exception(shared->error);
}

int ThreadsFromEnv() {
  unsigned hw_raw = std::thread::hardware_concurrency();
  int hw = hw_raw == 0 ? 1 : static_cast<int>(hw_raw);
  const char* value = std::getenv("ALCOP_THREADS");
  if (value != nullptr && value[0] != '\0') {
    int parsed = std::atoi(value);
    // Clamp to the machine: oversubscribing a small host (the 1-core
    // pathology in BENCH_tuning.json) only adds contention. Explicit
    // SetGlobalThreads calls stay unclamped for tests/benches.
    if (parsed >= 1) return std::min(parsed, hw);
  }
  return hw;
}

namespace {

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;

std::shared_ptr<ThreadPool> GlobalPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    g_pool = std::make_shared<ThreadPool>(ThreadsFromEnv());
    PoolMetrics::Get().threads.Set(g_pool->threads());
  }
  return g_pool;
}

}  // namespace

int ConfiguredThreads() { return GlobalPool()->threads(); }

void SetGlobalThreads(int threads) {
  // Build the replacement outside the lock; in-flight calls holding the old
  // shared_ptr finish on the old pool.
  auto next = std::make_shared<ThreadPool>(threads);
  PoolMetrics::Get().threads.Set(next->threads());
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool = std::move(next);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  GlobalPool()->ParallelFor(n, fn);
}

}  // namespace support
}  // namespace alcop
