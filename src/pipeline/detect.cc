#include "pipeline/detect.h"

#include <map>

#include "obs/trace.h"
#include "support/check.h"

namespace alcop {
namespace pipeline {

using schedule::Schedule;
using schedule::StageInfo;

bool DetectionResult::IsEligible(const std::string& buffer) const {
  const DetectionEntry* entry = Find(buffer);
  return entry != nullptr && entry->eligible;
}

const DetectionEntry* DetectionResult::Find(const std::string& buffer) const {
  for (const DetectionEntry& entry : entries) {
    if (entry.buffer == buffer) return &entry;
  }
  return nullptr;
}

verify::Diagnostic DetectionEntry::AsDiagnostic() const {
  verify::Diagnostic diag;
  diag.severity = verify::Severity::kNote;
  diag.code = code.empty() ? "D000" : code;
  diag.message = "buffer '" + buffer + "' not pipelinable: " + reason;
  return diag;
}

DetectionResult DetectPipelineBuffers(const Schedule& schedule,
                                      const target::GpuSpec& spec) {
  DetectionResult result;

  for (const StageInfo& stage : schedule.stages()) {
    if (stage.scope == ir::MemScope::kGlobal ||
        stage.scope == ir::MemScope::kAccumulator) {
      continue;  // only memory-hierarchy read buffers are candidates
    }
    DetectionEntry entry;
    entry.buffer = stage.name;

    const StageInfo* source = schedule.FindStage(stage.source);

    // Rule 1: produced by an asynchronous memory copy. A stage whose
    // producer applies an elementwise op, or whose scope pair the hardware
    // cannot copy asynchronously, fails.
    if (source == nullptr) {
      entry.reason = "no producing copy";
      entry.code = "D001";
    } else if (!spec.SupportsAsyncCopy(source->scope, stage.scope,
                                       stage.producer_op != ir::EwiseOp::kNone)) {
      entry.reason =
          stage.producer_op != ir::EwiseOp::kNone
              ? "producer is a compute op, not an asynchronous copy"
              : "target lacks asynchronous copy for this scope pair";
      entry.code = "D002";
    } else if (!stage.in_sequential_loop) {
      // Rule 2: must live in a sequential load-and-use loop (stencil-style
      // fill-once buffers and parallel/unrolled loops fail here).
      entry.reason = "not produced inside a sequential load-and-use loop";
      entry.code = "D003";
    } else {
      entry.eligible = true;
    }
    result.entries.push_back(std::move(entry));
  }

  // Rule 3: scope-based synchronization. On Ampere the special memory
  // barriers exist for the shared-memory scope only, so all pipelined
  // shared-scope buffers must share one synchronization position. On
  // conflict the pass refuses to pipeline any of them (paper Sec. II-A).
  std::map<int, int> shared_positions;  // sync_position -> count
  bool shared_conflict = false;
  for (const StageInfo& stage : schedule.stages()) {
    if (stage.scope != ir::MemScope::kShared) continue;
    const DetectionEntry* entry = result.Find(stage.name);
    if (entry == nullptr) continue;
    if (!entry->eligible) {
      // An ineligible shared buffer keeps its threadblock barriers; those
      // barriers occupy the scope's synchronization position, conflicting
      // with pipeline primitives for any same-scope peer.
      shared_conflict = true;
      continue;
    }
    ++shared_positions[stage.sync_position];
  }
  if (shared_conflict || shared_positions.size() > 1) {
    for (DetectionEntry& entry : result.entries) {
      const StageInfo* stage = schedule.FindStage(entry.buffer);
      if (stage != nullptr && stage->scope == ir::MemScope::kShared &&
          entry.eligible) {
        entry.eligible = false;
        entry.reason =
            "synchronization position conflict within the shared-memory scope";
        entry.code = "D004";
      }
    }
  }

  return result;
}

DetectionResult AutoPipeline(Schedule& schedule, const target::GpuSpec& spec) {
  ALCOP_TRACE_SCOPE("detect", "compiler");
  DetectionResult result = DetectPipelineBuffers(schedule, spec);
  const schedule::ScheduleConfig& config = schedule.config();
  for (StageInfo& stage : schedule.stages()) {
    if (!result.IsEligible(stage.name)) {
      stage.pipeline_stages = 1;
      continue;
    }
    switch (stage.scope) {
      case ir::MemScope::kShared:
        stage.pipeline_stages = config.smem_stages;
        break;
      case ir::MemScope::kRegister:
        stage.pipeline_stages = config.reg_stages;
        break;
      default:
        stage.pipeline_stages = 1;
        break;
    }
  }
  return result;
}

}  // namespace pipeline
}  // namespace alcop
