// Pipeline program transformation — Sec. III of the paper.
//
// Rewrites every load-and-use loop whose buffers carry pipeline_stages
// pragmas into its pipelined form. Analysis steps (Sec. III-A):
//   1. collect pipeline hints (buffer, stage count);
//   2. reconstruct producer/consumer tensors and derive multi-level
//      relations (a pipelined buffer produced from another pipelined
//      buffer);
//   3. find the sequential load-and-use loop of each buffer: the first
//      sequential loop, inside-out from the producing copy, whose variable
//      does not index the buffer;
//   4. record the load and use spans;
//   5. decide prologue injection points (inner-pipeline prologues go into
//      the sequential loop of the outermost pipeline, guarded to run once,
//      building a holistic rather than recursive pipeline — Fig. 3d).
//
// Transformation steps (Sec. III-B):
//   1. expand each buffer by its stage count (new leading dimension);
//   2. shift load indices to fetch stage-1 iterations ahead;
//   3. wrap indices for buffer rolling and out-of-bound access, including
//      the inner-pipeline overflow carrying into the outer pipeline
//      variable;
//   4. inject prologues (the first n_stage-1 chunks);
//   5. inject the four synchronization primitives
//      (producer_acquire/commit, consumer_wait/release).
//
// Modes per pipeline:
//   - top: the source is global memory; shifted loads wrap modulo the loop
//     extent (harmless extra loads of wrapped chunks).
//   - fused: the source buffer is itself pipelined and inner-pipeline
//     fusion is enabled; loads wrap with an overflow carry into the outer
//     pipeline variable, the prologue runs only on the first outer
//     iteration, and the outer consumer_wait gains one group of slack
//     (wait_ahead=1) because the fused inner pipeline prefetches from the
//     *next* outer chunk.
//   - recursive (Fig. 3c): the source buffer's contents change every outer
//     iteration (not pipelined, or fusion disabled), so the inner pipeline
//     drains and refills per outer iteration: loads are predicated instead
//     of wrapped and the prologue is re-injected every outer iteration.
#ifndef ALCOP_PIPELINE_TRANSFORM_H_
#define ALCOP_PIPELINE_TRANSFORM_H_

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace alcop {
namespace pipeline {

enum class PipelineMode { kTop, kFused, kRecursive };

const char* PipelineModeName(PipelineMode mode);

// Static description of one synchronization group after transformation.
struct PipelineGroupInfo {
  int id = -1;
  ir::MemScope scope = ir::MemScope::kShared;
  int64_t stages = 1;
  PipelineMode mode = PipelineMode::kTop;
  std::vector<std::string> buffer_names;
  std::string loop_var;
  int64_t loop_extent = 1;
  // consumer_wait slack: 1 when a fused inner pipeline prefetches a chunk
  // of the next outer iteration from this group's buffers.
  int wait_ahead = 0;
};

struct TransformResult {
  ir::Stmt stmt;
  std::vector<PipelineGroupInfo> groups;
};

// Applies the transformation to a program. Programs without pipeline
// pragmas are returned unchanged. `inner_fusion` selects the fused
// (default) or recursive multi-level form. Throws CheckError on programs
// that violate the legality conditions the detection pass establishes.
TransformResult ApplyPipelineTransform(const ir::Stmt& prog,
                                       bool inner_fusion = true);

}  // namespace pipeline
}  // namespace alcop

#endif  // ALCOP_PIPELINE_TRANSFORM_H_
