#include "pipeline/transform.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ir/analysis.h"
#include "ir/functor.h"
#include "ir/simplify.h"
#include "obs/trace.h"
#include "support/check.h"
#include "verify/verifier.h"

namespace alcop {
namespace pipeline {

using namespace alcop::ir;  // NOLINT(build/namespaces) - IR rewriting pass

const char* PipelineModeName(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kTop: return "top";
    case PipelineMode::kFused: return "fused";
    case PipelineMode::kRecursive: return "recursive";
  }
  return "?";
}

namespace {

// Variable substitution over a whole statement tree.
class StmtVarSubstituter final : public StmtMutator {
 public:
  StmtVarSubstituter(Var var, Expr replacement)
      : var_(std::move(var)), replacement_(std::move(replacement)) {}

 protected:
  Expr MutateVar(const Expr& e, const VarNode* op) override {
    return op == var_.get() ? replacement_ : e;
  }

 private:
  Var var_;
  Expr replacement_;
};

Stmt SubstituteInStmt(const Stmt& s, const Var& var, const Expr& replacement) {
  return StmtVarSubstituter(var, replacement).MutateStmt(s);
}

// Working state of one pipeline group during the transformation.
struct GroupState {
  int id = -1;
  MemScope scope = MemScope::kShared;
  int64_t stages = 1;
  PipelineMode mode = PipelineMode::kTop;
  std::vector<Buffer> buffers;   // original buffers
  std::vector<Buffer> expanded;  // stage-expanded replacements
  Var loop_var;
  int64_t loop_extent = 1;
  size_t loop_depth = 0;  // number of enclosing loops of the pipeline loop
  Var outer_var;          // fused mode: outer pipeline loop variable
  bool has_inner_prefetch = false;

  bool Contains(const BufferNode* buffer) const {
    for (const Buffer& b : buffers) {
      if (b.get() == buffer) return true;
    }
    return false;
  }

  const Buffer& ExpandedFor(const BufferNode* buffer) const {
    for (size_t i = 0; i < buffers.size(); ++i) {
      if (buffers[i].get() == buffer) return expanded[i];
    }
    ALCOP_CHECK(false) << "buffer not in group";
    return expanded[0];
  }
};

// Applies transformation steps 1-5 for a single group over the whole tree.
class GroupRewriter final : public StmtMutator {
 public:
  explicit GroupRewriter(GroupState& group) : g_(group) {}

 protected:
  Stmt MutateAlloc(const Stmt& s, const AllocNode* op) override {
    if (!g_.Contains(op->buffer.get())) return s;
    return Alloc(g_.ExpandedFor(op->buffer.get()));
  }

  Stmt MutatePragma(const Stmt& s, const PragmaNode* op) override {
    Stmt base = StmtMutator::MutatePragma(s, op);
    const auto* pragma = static_cast<const PragmaNode*>(base.get());
    if (pragma->buffer == nullptr || !g_.Contains(pragma->buffer.get())) {
      return base;
    }
    // Keep the hint pointing at the (stage-expanded) buffer it describes.
    return Pragma(pragma->key, g_.ExpandedFor(pragma->buffer.get()),
                  pragma->value, pragma->body);
  }

  Stmt MutateCopy(const Stmt& s, const CopyNode* op) override {
    Stmt base = StmtMutator::MutateCopy(s, op);
    const auto* copy = static_cast<const CopyNode*>(base.get());
    if (g_.Contains(copy->dst.buffer.get())) return RewriteLoad(copy);
    if (g_.Contains(copy->src.buffer.get())) {
      auto rewritten = std::make_shared<CopyNode>(
          copy->dst, UseRegion(copy->src), copy->op, copy->op_param);
      rewritten->is_async = copy->is_async;
      rewritten->pipeline_group = copy->pipeline_group;
      return rewritten;
    }
    return base;
  }

  Stmt MutateMma(const Stmt& s, const MmaNode* op) override {
    Stmt base = StmtMutator::MutateMma(s, op);
    const auto* mma = static_cast<const MmaNode*>(base.get());
    bool a_in = g_.Contains(mma->a.buffer.get());
    bool b_in = g_.Contains(mma->b.buffer.get());
    if (!a_in && !b_in) return base;
    BufferRegion a = a_in ? UseRegion(mma->a) : mma->a;
    BufferRegion b = b_in ? UseRegion(mma->b) : mma->b;
    return Mma(mma->c, std::move(a), std::move(b));
  }

  Stmt MutateFor(const Stmt& s, const ForNode* op) override {
    Stmt base = StmtMutator::MutateFor(s, op);
    const auto* loop = static_cast<const ForNode*>(base.get());
    if (loop->var.get() != g_.loop_var.get()) return base;
    return RestructureLoop(loop);
  }

 private:
  // The pipeline's rolling iteration index. Top-level and recursive
  // pipelines restart slot numbering with their loop; a fused inner
  // pipeline runs continuously across outer iterations, so its slots roll
  // over the global index (outer*extent + v). The two coincide only when
  // the stage count divides the inner extent (the case the paper's Fig. 7
  // example happens to show).
  Expr RollingIndex() const {
    if (g_.mode == PipelineMode::kFused) {
      return Add(Mul(g_.outer_var, g_.loop_extent), g_.loop_var);
    }
    return g_.loop_var;
  }

  // Destination slot of the shifted load: (roll + stages - 1) % stages.
  Expr LoadStageIndex() const {
    return Simplify(FloorMod(Add(RollingIndex(), g_.stages - 1),
                             Int(g_.stages)));
  }

  // Slot the consumers read: roll % stages.
  Expr UseStageIndex() const {
    return Simplify(FloorMod(RollingIndex(), Int(g_.stages)));
  }

  BufferRegion StagePrepended(const BufferRegion& region, Expr stage_index,
                              const Buffer& expanded) const {
    BufferRegion out;
    out.buffer = expanded;
    out.offsets.reserve(region.offsets.size() + 1);
    out.offsets.push_back(std::move(stage_index));
    out.offsets.insert(out.offsets.end(), region.offsets.begin(),
                       region.offsets.end());
    out.sizes.reserve(region.sizes.size() + 1);
    out.sizes.push_back(1);
    out.sizes.insert(out.sizes.end(), region.sizes.begin(), region.sizes.end());
    return out;
  }

  BufferRegion UseRegion(const BufferRegion& region) const {
    return StagePrepended(region, UseStageIndex(),
                          g_.ExpandedFor(region.buffer.get()));
  }

  // Transformation steps 2 and 3 on a load copy: shift the source indices
  // forward by stages-1 iterations, wrapping/carrying per the group mode,
  // and redirect the destination into the shifted stage slot.
  Stmt RewriteLoad(const CopyNode* copy) {
    const Var& v = g_.loop_var;
    Expr shifted = Add(v, g_.stages - 1);

    std::vector<std::pair<Var, Expr>> subs;
    switch (g_.mode) {
      case PipelineMode::kTop:
        // Wrap modulo the loop extent to avoid out-of-bound producer
        // indexing; the wrapped extra chunks are never consumed.
        subs.emplace_back(v, FloorMod(shifted, Int(g_.loop_extent)));
        break;
      case PipelineMode::kFused:
        // Wrap the chunk index and carry the overflow into the outer
        // pipeline variable (paper Fig. 7 line 26).
        subs.emplace_back(v, FloorMod(shifted, Int(g_.loop_extent)));
        subs.emplace_back(g_.outer_var,
                          Add(g_.outer_var,
                              FloorDiv(shifted, Int(g_.loop_extent))));
        break;
      case PipelineMode::kRecursive:
        // No wrap: the load block gets predicated with v+stages-1 < extent
        // during loop restructuring, and the pipeline drains.
        subs.emplace_back(v, shifted);
        break;
    }

    BufferRegion src;
    src.buffer = copy->src.buffer;
    src.sizes = copy->src.sizes;
    src.offsets.reserve(copy->src.offsets.size());
    for (const Expr& offset : copy->src.offsets) {
      src.offsets.push_back(Simplify(SubstituteSimultaneous(offset, subs)));
    }

    BufferRegion dst = StagePrepended(copy->dst, LoadStageIndex(),
                                      g_.ExpandedFor(copy->dst.buffer.get()));

    auto load = std::make_shared<CopyNode>(std::move(dst), std::move(src),
                                           copy->op, copy->op_param);
    load->is_async = true;
    load->pipeline_group = g_.id;
    loads_.push_back(load);
    return load;
  }

  // Transformation steps 4 and 5: rebuild the pipeline loop body as
  //   producer_acquire; loads; producer_commit; consumer_wait;
  //   <uses>; consumer_release
  // and prepend the prologue before the loop.
  Stmt RestructureLoop(const ForNode* loop) {
    std::vector<Stmt> body = TopLevelStmts(loop->body);

    std::vector<Stmt> loads;
    std::vector<Stmt> uses;
    for (Stmt& stmt : body) {
      if (stmt->kind == StmtKind::kCopy &&
          static_cast<const CopyNode*>(stmt.get())->pipeline_group == g_.id) {
        loads.push_back(std::move(stmt));
        continue;
      }
      // The pipeline primitives subsume the threadblock barriers that
      // guarded the buffer in the synchronous form.
      if (g_.scope == MemScope::kShared && stmt->kind == StmtKind::kSync &&
          static_cast<const SyncNode*>(stmt.get())->sync_kind ==
              SyncKind::kBarrier) {
        continue;
      }
      uses.push_back(std::move(stmt));
    }
    ALCOP_CHECK(!loads.empty())
        << "pipeline loop over '" << g_.loop_var->name
        << "' contains no loads of its pipelined buffers at the top level";

    Stmt load_block = FlatBlock(
        {Sync(SyncKind::kProducerAcquire, g_.id, g_.expanded),
         FlatBlock(std::move(loads)),
         Sync(SyncKind::kProducerCommit, g_.id, g_.expanded)});
    if (g_.mode == PipelineMode::kRecursive) {
      load_block = IfThenElse(
          Binary(ExprKind::kLT, Add(g_.loop_var, g_.stages - 1),
                 Int(g_.loop_extent)),
          load_block);
    }

    std::vector<Stmt> new_body;
    new_body.push_back(std::move(load_block));
    new_body.push_back(Sync(SyncKind::kConsumerWait, g_.id, g_.expanded,
                            g_.has_inner_prefetch ? 1 : 0));
    for (Stmt& use : uses) new_body.push_back(std::move(use));
    new_body.push_back(Sync(SyncKind::kConsumerRelease, g_.id, g_.expanded));

    Stmt new_loop = For(loop->var, loop->extent, loop->for_kind,
                        FlatBlock(std::move(new_body)));

    // Prologue: the first stages-1 chunks. Substituting v -> s-(stages-1)
    // into the transformed load lands chunk s in slot s (see design notes).
    std::vector<Stmt> prologue;
    for (int64_t s = 0; s < g_.stages - 1; ++s) {
      prologue.push_back(Sync(SyncKind::kProducerAcquire, g_.id, g_.expanded));
      for (const Stmt& load : loads_) {
        prologue.push_back(SimplifyStmt(
            SubstituteInStmt(load, g_.loop_var, Int(s - (g_.stages - 1)))));
      }
      prologue.push_back(Sync(SyncKind::kProducerCommit, g_.id, g_.expanded));
    }
    Stmt prologue_block = FlatBlock(std::move(prologue));
    if (g_.mode == PipelineMode::kFused) {
      // Holistic pipeline: the inner prologue runs only on the first outer
      // iteration; afterwards the wrapped loads keep the pipeline primed.
      prologue_block = IfThenElse(
          Binary(ExprKind::kEQ, g_.outer_var, Int(0)), prologue_block);
    }
    return FlatBlock({std::move(prologue_block), std::move(new_loop)});
  }

  static std::vector<Stmt> TopLevelStmts(const Stmt& body) {
    if (body->kind == StmtKind::kBlock) {
      return static_cast<const BlockNode*>(body.get())->seq;
    }
    return {body};
  }

  GroupState& g_;
  std::vector<Stmt> loads_;  // transformed loads, for prologue construction
};

// Finds the pipeline loop of a producing copy: the first sequential loop,
// inside-out, whose variable does not index the destination buffer
// (Sec. III-A, third step).
const ForNode* FindPipelineLoop(const ProducerInfo& producer) {
  for (size_t i = producer.loops.size(); i-- > 0;) {
    const ForNode* loop = producer.loops[i];
    if (loop->for_kind != ForKind::kSerial) continue;
    if (RegionUsesVar(producer.copy->dst, loop->var)) continue;
    return loop;
  }
  return nullptr;
}

}  // namespace

TransformResult ApplyPipelineTransform(const Stmt& prog, bool inner_fusion) {
  ALCOP_TRACE_SCOPE("transform", "compiler");
  TransformResult result;
  result.stmt = prog;

  // ---- Analysis step 1: collect hints ----
  std::vector<PipelineHint> hints = CollectPipelineHints(prog);
  if (hints.empty()) return result;

  // ---- Analysis step 2: producers/consumers ----
  auto producers = MapProducers(prog);
  auto consumers = MapConsumers(prog);

  struct BufferPlan {
    PipelineHint hint;
    ProducerInfo producer;
    const ForNode* loop = nullptr;
    size_t depth = 0;
  };
  std::vector<BufferPlan> plans;
  for (const PipelineHint& hint : hints) {
    auto it = producers.find(hint.buffer.get());
    ALCOP_CHECK(it != producers.end() && !it->second.empty())
        << "pipelined buffer '" << hint.buffer->name << "' has no producer";
    ALCOP_CHECK_EQ(it->second.size(), 1u)
        << "pipelined buffer '" << hint.buffer->name
        << "' has multiple producing copies (unsupported)";
    BufferPlan plan;
    plan.hint = hint;
    plan.producer = it->second[0];
    // ---- Analysis step 3: sequential load-and-use loop ----
    plan.loop = FindPipelineLoop(plan.producer);
    ALCOP_CHECK(plan.loop != nullptr)
        << "no sequential load-and-use loop for buffer '" << hint.buffer->name
        << "'";
    for (const ForNode* loop : plan.producer.loops) {
      ++plan.depth;
      if (loop == plan.loop) break;
    }
    // ---- Analysis step 4: consumers must sit inside the pipeline loop ----
    auto cons_it = consumers.find(hint.buffer.get());
    ALCOP_CHECK(cons_it != consumers.end() && !cons_it->second.empty())
        << "pipelined buffer '" << hint.buffer->name << "' is never consumed";
    for (const ConsumerInfo& consumer : cons_it->second) {
      bool inside = std::find(consumer.loops.begin(), consumer.loops.end(),
                              plan.loop) != consumer.loops.end();
      ALCOP_CHECK(inside) << "consumer of '" << hint.buffer->name
                          << "' lies outside its load-and-use loop";
    }
    plans.push_back(std::move(plan));
  }

  // ---- Group formation: buffers sharing a pipeline loop ----
  std::vector<GroupState> groups;
  std::unordered_map<const ForNode*, size_t> loop_to_group;
  for (const BufferPlan& plan : plans) {
    auto it = loop_to_group.find(plan.loop);
    if (it == loop_to_group.end()) {
      GroupState group;
      group.id = static_cast<int>(groups.size());
      group.scope = plan.hint.buffer->scope;
      group.stages = plan.hint.stages;
      group.loop_var = plan.loop->var;
      int64_t extent = 0;
      ALCOP_CHECK(AsConst(plan.loop->extent, &extent))
          << "pipeline loop extent must be constant";
      group.loop_extent = extent;
      group.loop_depth = plan.depth;
      ALCOP_CHECK_GE(extent, group.stages)
          << "pipeline over '" << group.loop_var->name
          << "' has fewer iterations than stages";
      loop_to_group.emplace(plan.loop, groups.size());
      groups.push_back(std::move(group));
    }
    GroupState& group = groups[loop_to_group[plan.loop]];
    ALCOP_CHECK(group.scope == plan.hint.buffer->scope)
        << "buffers of mixed scopes share pipeline loop '"
        << group.loop_var->name << "'";
    ALCOP_CHECK_EQ(group.stages, plan.hint.stages)
        << "buffers with different stage counts share pipeline loop '"
        << group.loop_var->name << "' (scope-based synchronization conflict)";
    group.buffers.push_back(plan.hint.buffer);
  }

  // Rule-3 safety net at the IR level: within the shared-memory scope all
  // pipelined buffers must synchronize at the same loop (the schedule-level
  // detection refuses these; a hand-built program that slips through is a
  // hard error).
  {
    const ForNode* shared_loop = nullptr;
    for (const BufferPlan& plan : plans) {
      if (plan.hint.buffer->scope != MemScope::kShared) continue;
      if (shared_loop == nullptr) shared_loop = plan.loop;
      ALCOP_CHECK(shared_loop == plan.loop)
          << "shared-scope pipelined buffers have conflicting "
             "synchronization positions";
    }
  }

  // ---- Multi-level derivation and mode selection ----
  auto group_of_buffer = [&](const BufferNode* buffer) -> GroupState* {
    for (GroupState& group : groups) {
      if (group.Contains(buffer)) return &group;
    }
    return nullptr;
  };
  for (const BufferPlan& plan : plans) {
    GroupState* group = group_of_buffer(plan.hint.buffer.get());
    const BufferNode* src = plan.producer.copy->src.buffer.get();
    if (src->scope == MemScope::kGlobal) {
      group->mode = PipelineMode::kTop;
      continue;
    }
    GroupState* outer = group_of_buffer(src);
    if (outer != nullptr && inner_fusion) {
      ALCOP_CHECK(group->mode != PipelineMode::kRecursive)
          << "buffers of group '" << group->loop_var->name
          << "' disagree on pipeline mode";
      group->mode = PipelineMode::kFused;
      group->outer_var = outer->loop_var;
      outer->has_inner_prefetch = true;
    } else {
      // Source contents change per outer iteration (or fusion disabled):
      // the inner pipeline must drain and refill (Fig. 3c).
      ALCOP_CHECK(group->mode != PipelineMode::kFused)
          << "buffers of group '" << group->loop_var->name
          << "' disagree on pipeline mode";
      group->mode = PipelineMode::kRecursive;
    }
  }

  // ---- Buffer expansion (transformation step 1) ----
  for (GroupState& group : groups) {
    for (const Buffer& buffer : group.buffers) {
      std::vector<int64_t> shape;
      shape.reserve(buffer->shape.size() + 1);
      shape.push_back(group.stages);
      shape.insert(shape.end(), buffer->shape.begin(), buffer->shape.end());
      group.expanded.push_back(
          MakeBuffer(buffer->name, buffer->scope, std::move(shape),
                     buffer->elem_bytes));
    }
  }

  // ---- Apply groups outermost-first ----
  std::vector<GroupState*> order;
  for (GroupState& group : groups) order.push_back(&group);
  std::sort(order.begin(), order.end(),
            [](const GroupState* a, const GroupState* b) {
              return a->loop_depth < b->loop_depth;
            });

  Stmt stmt = prog;
  for (GroupState* group : order) {
    stmt = GroupRewriter(*group).MutateStmt(stmt);
  }
  result.stmt = SimplifyStmt(stmt);

  for (const GroupState& group : groups) {
    PipelineGroupInfo info;
    info.id = group.id;
    info.scope = group.scope;
    info.stages = group.stages;
    info.mode = group.mode;
    for (const Buffer& buffer : group.buffers) {
      info.buffer_names.push_back(buffer->name);
    }
    info.loop_var = group.loop_var->name;
    info.loop_extent = group.loop_extent;
    info.wait_ahead = group.has_inner_prefetch ? 1 : 0;
    result.groups.push_back(std::move(info));
  }
  // Self-check (CI runs with ALCOP_VERIFY=1): the transformed program must
  // pass the static pipeline-synchronization verifier.
  verify::VerifyOrThrowIfEnabled(result.stmt, "pipeline transform");
  return result;
}

}  // namespace pipeline
}  // namespace alcop
