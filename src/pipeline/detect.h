// Pipeline buffer detection — Sec. II of the paper.
//
// Examines each buffer stage of a Schedule against the three legality
// rules:
//   1. The buffer must be produced by an asynchronous memory copy on the
//      target (no fused compute into the copy, hardware must support the
//      scope pair).
//   2. The buffer must be produced inside a *sequential* load-and-use loop
//      (not parallel, not unrolled, not filled just once).
//   3. Scope-based synchronization: all pipelined buffers sharing a
//      synchronization scope (shared memory on Ampere) must have matching
//      synchronization positions; on conflict, pipelining is refused for
//      those buffers.
//
// AutoPipeline applies detection and attaches the schedule's stage counts
// (config.smem_stages / config.reg_stages) to the eligible buffers — the
// paper's buffer.pipeline(stage=n) primitive, applied automatically.
#ifndef ALCOP_PIPELINE_DETECT_H_
#define ALCOP_PIPELINE_DETECT_H_

#include <string>
#include <vector>

#include "schedule/schedule.h"
#include "target/gpu_spec.h"
#include "verify/diagnostic.h"

namespace alcop {
namespace pipeline {

struct DetectionEntry {
  std::string buffer;
  bool eligible = false;
  // Human-readable refusal reason ("" when eligible); surfaced in tuning
  // logs and asserted on by the tests.
  std::string reason;
  // Stable diagnostic code for the refused rule ("" when eligible):
  //   D001 no producing copy            (rule 1)
  //   D002 producer not asynchronous    (rule 1)
  //   D003 no sequential load-use loop  (rule 2)
  //   D004 sync-position conflict       (rule 3)
  std::string code;

  // The refusal as a Diagnostic (note severity: a refusal is a legality
  // fact, not a defect). Only valid when !eligible.
  verify::Diagnostic AsDiagnostic() const;
};

struct DetectionResult {
  std::vector<DetectionEntry> entries;

  bool IsEligible(const std::string& buffer) const;
  const DetectionEntry* Find(const std::string& buffer) const;
};

// Evaluates the three rules for every non-global stage of the schedule.
DetectionResult DetectPipelineBuffers(const schedule::Schedule& schedule,
                                      const target::GpuSpec& spec);

// Runs detection, then marks each eligible buffer with the stage count the
// schedule config requests for its scope (values of 1 leave the buffer
// un-pipelined). Returns the detection result for reporting.
DetectionResult AutoPipeline(schedule::Schedule& schedule,
                             const target::GpuSpec& spec);

}  // namespace pipeline
}  // namespace alcop

#endif  // ALCOP_PIPELINE_DETECT_H_
