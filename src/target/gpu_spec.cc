#include "target/gpu_spec.h"

namespace alcop {
namespace target {

bool GpuSpec::SupportsAsyncCopy(ir::MemScope src, ir::MemScope dst,
                                bool has_fused_op) const {
  if (src == ir::MemScope::kShared && dst == ir::MemScope::kRegister) {
    return true;  // scoreboarded loads, every generation
  }
  if (src == ir::MemScope::kGlobal && dst == ir::MemScope::kShared) {
    return has_cp_async && !has_fused_op;
  }
  return false;
}

GpuSpec AmpereSpec() {
  GpuSpec spec;  // defaults are the A100-class numbers
  spec.name = "ampere-sim";
  // Fitted by `alcop_cli calibrate --fit` over the Fig. 10 sweep: after
  // the wave-residency fix the structural terms match the PMU-measured
  // counterparts exactly, so the per-term residual is the identity; the
  // composition constants come from the same fit's grid search (cycle
  // log-error plus top-16 regret objective).
  spec.model_fit.t_compute = {1.0, 0.0, true};
  spec.model_fit.t_reg_load = {1.0, 0.0, true};
  spec.model_fit.iter_overhead_cycles = 120.0;
  spec.model_fit.dep_latency_scale = 1.0;
  spec.model_fit.fill_scale = 0.5;
  spec.model_fit.inner_latency_cycles = 0.0;
  spec.model_fit.composition_fitted = true;
  return spec;
}

GpuSpec VoltaLikeSpec() {
  GpuSpec spec;
  spec.name = "volta-like-sim";
  spec.num_sms = 80;
  spec.clock_ghz = 1.53;
  spec.tc_flops_per_sm_per_cycle = 1024.0;
  spec.dram_bw_bytes_per_cycle = 590.0;
  spec.dram_write_bw_bytes_per_cycle = 590.0;
  spec.llc_bytes = 6ll * 1024 * 1024;
  spec.llc_bw_bytes_per_cycle = 1400.0;
  spec.smem_bytes_per_sm = 96 * 1024;
  spec.has_cp_async = false;
  return spec;
}

GpuSpec HopperLikeSpec() {
  GpuSpec spec;
  spec.name = "hopper-like-sim";
  spec.num_sms = 132;
  spec.clock_ghz = 1.83;
  spec.tc_flops_per_sm_per_cycle = 4096.0;
  spec.lds_bytes_per_cycle_per_sm = 128.0;
  spec.dram_bw_bytes_per_cycle = 1830.0;
  spec.dram_write_bw_bytes_per_cycle = 1830.0;
  spec.llc_bytes = 50ll * 1024 * 1024;
  spec.llc_bw_bytes_per_cycle = 4200.0;
  spec.smem_bytes_per_sm = 228 * 1024;
  // TMA-style bulk copies: one descriptor moves a whole tile, so the
  // per-warp issue cost of copies nearly vanishes.
  spec.copy_issue_bytes_per_cycle = 512.0;
  return spec;
}

}  // namespace target
}  // namespace alcop
