#include "target/occupancy.h"

#include <algorithm>

#include "support/check.h"

namespace alcop {
namespace target {

const char* LimiterName(Occupancy::Limiter limiter) {
  switch (limiter) {
    case Occupancy::Limiter::kSharedMemory: return "shared memory";
    case Occupancy::Limiter::kRegisters: return "registers";
    case Occupancy::Limiter::kWarpSlots: return "warp slots";
  }
  return "?";
}

Occupancy ComputeOccupancy(const GpuSpec& spec,
                           const ThreadblockResources& res) {
  Occupancy occ;
  int64_t by_smem = res.smem_bytes > 0 ? spec.smem_bytes_per_sm / res.smem_bytes
                                       : spec.max_warps_per_sm;
  int64_t by_reg = res.reg_bytes > 0 ? spec.regfile_bytes_per_sm / res.reg_bytes
                                     : spec.max_warps_per_sm;
  int64_t by_warps = res.warps > 0 ? spec.max_warps_per_sm / res.warps
                                   : spec.max_warps_per_sm;

  int64_t fit = std::min({by_smem, by_reg, by_warps});
  occ.threadblocks_per_sm = static_cast<int>(fit);
  if (by_smem == fit) {
    occ.limiter = Occupancy::Limiter::kSharedMemory;
  } else if (by_reg == fit) {
    occ.limiter = Occupancy::Limiter::kRegisters;
  } else {
    occ.limiter = Occupancy::Limiter::kWarpSlots;
  }
  return occ;
}

int64_t NumThreadblockBatches(const GpuSpec& spec, const Occupancy& occ,
                              int64_t total_threadblocks) {
  ALCOP_CHECK_GT(occ.threadblocks_per_sm, 0)
      << "threadblock does not fit on the device";
  int64_t per_batch =
      static_cast<int64_t>(occ.threadblocks_per_sm) * spec.num_sms;
  return (total_threadblocks + per_batch - 1) / per_batch;
}

}  // namespace target
}  // namespace alcop
