// GPU target specification: an Ampere-class machine description.
//
// All rates are expressed per clock cycle so the simulator and the
// analytical model work in cycles and convert to wall-clock time only at
// the edges. Three device models are provided:
//   - AmpereSpec():     the paper's platform (A100-class, cp.async).
//   - VoltaLikeSpec():  no cp.async — detection rule 1 refuses
//                       shared-memory pipelining (cross-generation study).
//   - HopperLikeSpec(): TMA-style bulk copies and a higher
//                       compute-to-bandwidth ratio — pipelining becomes
//                       more valuable, not less.
#ifndef ALCOP_TARGET_GPU_SPEC_H_
#define ALCOP_TARGET_GPU_SPEC_H_

#include <cstdint>
#include <string>

#include "ir/buffer.h"

namespace alcop {
namespace target {

// Residual correction for one analytical-model term, applied as
// `scale * x + bias_cycles` on top of the structural Table-I formula.
// Derived per spec by `alcop_cli calibrate --fit` (least-squares against
// the simulator's PMU-measured counterpart over the Fig. 10 sweep) and
// checked in; identity until a spec has been fitted.
struct TermFit {
  double scale = 1.0;
  double bias_cycles = 0.0;
  bool fitted = false;

  double Apply(double x) const { return scale * x + bias_cycles; }
};

// The two Table-I terms the calibration audit flagged as weak before the
// wave-residency fix (perfmodel/analytical.cc); kept as an explicit table
// so future specs whose hardware diverges from the structural model can
// carry a non-identity fit — plus the fitted constants of the
// steady-state main-loop composition (the DELTA on top of Table I's
// pipeline latency model that makes the analytical ranking trustworthy
// enough to prune with; see perfmodel/analytical.cc).
struct ModelFit {
  TermFit t_compute;
  TermFit t_reg_load;

  // Per-outer-iteration scheduling cost the event-driven simulator pays
  // (commit/wait/barrier handling) that pure rate terms miss.
  double iter_overhead_cycles = 0.0;
  // Multiplier on the dependence-limited term (copy issue + blended
  // memory latency + transfer, divided by the stage depth).
  double dep_latency_scale = 1.0;
  // Weight of the first-chunk latency in the prologue estimate.
  double fill_scale = 1.0;
  // Latency exposed per register-pipeline iteration when the inner loop
  // is not pipelined (reg_stages == 1); charged once per outer iteration
  // otherwise.
  double inner_latency_cycles = 0.0;
  bool composition_fitted = false;
};

struct GpuSpec {
  std::string name;

  // ---- Chip geometry ----
  int num_sms = 108;
  double clock_ghz = 1.41;

  // ---- Compute ----
  // fp16 tensor-core FLOPs per SM per cycle (multiply-add counted as 2).
  double tc_flops_per_sm_per_cycle = 2048.0;

  // ---- Shared-memory (LDS) pipe ----
  double lds_bytes_per_cycle_per_sm = 128.0;
  // Throughput divisor of un-swizzled shared-memory access patterns.
  double bank_conflict_factor = 2.0;
  double smem_latency_cycles = 25.0;

  // ---- Copy issue ----
  // How many bytes of copy a warp can issue per cycle (address generation
  // and cp.async instruction issue, not the memory system itself).
  double copy_issue_bytes_per_cycle = 64.0;

  // ---- LLC ----
  int64_t llc_bytes = 40ll * 1024 * 1024;
  double llc_bw_bytes_per_cycle = 2480.0;
  double llc_latency_cycles = 200.0;

  // ---- DRAM ----
  double dram_bw_bytes_per_cycle = 1100.0;
  double dram_write_bw_bytes_per_cycle = 1100.0;
  double dram_latency_cycles = 600.0;

  // ---- Per-SM occupancy limits ----
  int64_t smem_bytes_per_sm = 164 * 1024;
  int64_t regfile_bytes_per_sm = 256 * 1024;
  int max_warps_per_sm = 64;

  // ---- Overheads ----
  double sync_overhead_cycles = 30.0;
  double launch_overhead_cycles = 2000.0;

  // ---- Capabilities ----
  // cp.async: asynchronous Global->Shared copies (Ampere and later).
  bool has_cp_async = true;

  // ---- Analytical-model residual corrections (see TermFit) ----
  ModelFit model_fit;

  double CyclesToUs(double cycles) const { return cycles / (clock_ghz * 1e3); }

  // The asynchronous-copy capability table (Sec. II-A, rule 1).
  //   Global->Shared   : cp.async, Ampere+ only, and only without a fused
  //                      elementwise op (the copy engine has no ALU).
  //   Shared->Register : scoreboarded loads, async at warp scope on every
  //                      generation, fused ops allowed (they execute in the
  //                      regular ALU pipeline).
  //   Everything else  : not asynchronous (e.g. Global->Register skips the
  //                      staging level entirely).
  bool SupportsAsyncCopy(ir::MemScope src, ir::MemScope dst,
                         bool has_fused_op) const;
};

GpuSpec AmpereSpec();
GpuSpec VoltaLikeSpec();
GpuSpec HopperLikeSpec();

}  // namespace target
}  // namespace alcop

#endif  // ALCOP_TARGET_GPU_SPEC_H_
