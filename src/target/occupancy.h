// Occupancy calculator: how many threadblocks of a given resource
// footprint fit on one SM, and which resource is the binding constraint.
//
// Pipelining inflates the shared-memory footprint by the stage count
// (Sec. III-B, buffer expansion), so deeper pipelines trade latency hiding
// against resident-threadblock parallelism — the central tension the
// analytical model and tuner must capture.
#ifndef ALCOP_TARGET_OCCUPANCY_H_
#define ALCOP_TARGET_OCCUPANCY_H_

#include <cstdint>

#include "target/gpu_spec.h"

namespace alcop {
namespace target {

// Per-threadblock resource request (computed by schedule::ComputeResources).
struct ThreadblockResources {
  int64_t smem_bytes = 0;
  int64_t reg_bytes = 0;
  int warps = 0;
};

struct Occupancy {
  enum class Limiter {
    kSharedMemory,
    kRegisters,
    kWarpSlots,
  };

  // Resident threadblocks per SM; 0 when one threadblock does not fit.
  int threadblocks_per_sm = 0;
  Limiter limiter = Limiter::kSharedMemory;
};

const char* LimiterName(Occupancy::Limiter limiter);

Occupancy ComputeOccupancy(const GpuSpec& spec,
                           const ThreadblockResources& res);

// Number of sequential threadblock batches a grid of `total_threadblocks`
// needs on the whole device (ceil division; >= 1 for a non-empty grid).
int64_t NumThreadblockBatches(const GpuSpec& spec, const Occupancy& occ,
                              int64_t total_threadblocks);

}  // namespace target
}  // namespace alcop

#endif  // ALCOP_TARGET_OCCUPANCY_H_
