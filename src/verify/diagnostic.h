// Reusable compiler-diagnostics engine.
//
// A Diagnostic is one finding: severity, a stable machine-readable code
// (e.g. "V001"), a human-readable message, the IR path of the offending
// statement ("for ko=3 / mma(C_acc)"), the source span when the statement
// came from a textual .tir file, and optional secondary notes.
//
// Three producers share the type:
//   - the static pipeline verifier (src/verify/verifier.*, codes V0xx),
//   - the parser (codes P0xx, rendered into parse-error messages),
//   - the pipeline detection rules (codes D0xx, rejection reasons),
// and the functional executor renders its runtime async-semantics
// violations through it as well (codes X0xx), so every layer reports
// findings in the same format.
#ifndef ALCOP_VERIFY_DIAGNOSTIC_H_
#define ALCOP_VERIFY_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace alcop {
namespace verify {

enum class Severity {
  kNote,
  kWarning,
  kError,
};

const char* SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     // stable identifier, e.g. "V001"
  std::string message;  // one-line description
  std::string path;     // IR path of the offending statement ("" if none)
  ir::SourceSpan span;  // source location when the IR was parsed from text
  std::vector<std::string> notes;

  // "error[V001] at line 12:5: <message>\n  at: <path>\n  note: ..."
  std::string Render() const;
};

// Collects diagnostics during one analysis run.
class DiagnosticEngine {
 public:
  // Appends a diagnostic and returns it for the caller to attach the
  // path/span/notes.
  Diagnostic& Emit(Severity severity, std::string code, std::string message);
  void Report(Diagnostic diag);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool HasErrors() const;
  size_t ErrorCount() const;
  std::string Render() const;  // all findings, one block per diagnostic
  void Clear() { diagnostics_.clear(); }

 private:
  std::vector<Diagnostic> diagnostics_;
};

// Stable-sorts diagnostics by (line, column, code). Diagnostics with no
// source span (programmatically built IR) sort first and keep their
// emission order within equal keys, so multi-pass output is
// deterministic regardless of pass order.
void SortDiagnostics(std::vector<Diagnostic>* diagnostics);

// Renders diagnostics as a stable JSON array, shared by
// `alcop_cli verify --json` and `alcop_cli lint --json`. Schema per
// element (all keys always present, in this order):
//   {"severity": "error", "code": "V001", "line": 12, "column": 5,
//    "message": "...", "path": "...", "notes": ["..."]}
// line/column are 0 when the span is unknown.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

}  // namespace verify
}  // namespace alcop

#endif  // ALCOP_VERIFY_DIAGNOSTIC_H_
