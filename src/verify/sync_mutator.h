// Structured mutations of pipeline synchronization statements.
//
// The fuzz differential (tests/fuzz_test.cc) and the verifier tests use
// these helpers to build deliberately mis-synchronized programs from a
// correct one: drop one sync primitive, duplicate it, shift it one
// position within its block, or change a consumer_wait's wait_ahead.
// Every mutation targets one sync *site* (a statement occurrence in the
// tree); ListSyncSites enumerates them deterministically in program order.
#ifndef ALCOP_VERIFY_SYNC_MUTATOR_H_
#define ALCOP_VERIFY_SYNC_MUTATOR_H_

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace alcop {
namespace verify {

enum class SyncMutation {
  kDrop,       // remove the statement
  kDuplicate,  // insert a second copy right after it
  kShiftEarlier,  // swap with the preceding statement in its block
  kShiftLater,    // swap with the following statement in its block
};

const char* SyncMutationName(SyncMutation mutation);

struct SyncSite {
  const ir::SyncNode* stmt = nullptr;
  // Program-order index among pipeline sync statements (stable across
  // identical programs; used to address the site when mutating).
  size_t index = 0;
  std::string label;  // e.g. "A_shared.producer_acquire@group0"
};

// All pipeline sync statements (barriers excluded) in program order. A
// statement shared between two tree positions is listed once per position.
std::vector<SyncSite> ListSyncSites(const ir::Stmt& program);

// Applies `mutation` to the `site_index`-th sync site. Returns nullptr if
// the mutation is not applicable there (e.g. shifting past the edge of
// the enclosing block); otherwise the rewritten program.
ir::Stmt MutateSyncSite(const ir::Stmt& program, size_t site_index,
                        SyncMutation mutation);

// Replaces the wait_ahead of the `site_index`-th sync site (which must be
// a consumer_wait; returns nullptr otherwise).
ir::Stmt SetWaitAhead(const ir::Stmt& program, size_t site_index,
                      int wait_ahead);

}  // namespace verify
}  // namespace alcop

#endif  // ALCOP_VERIFY_SYNC_MUTATOR_H_
