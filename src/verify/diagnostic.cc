#include "verify/diagnostic.h"

#include <sstream>

namespace alcop {
namespace verify {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::Render() const {
  std::ostringstream out;
  out << SeverityName(severity) << "[" << code << "]";
  if (span.IsKnown()) {
    out << " at line " << span.line << ":" << span.column;
  }
  out << ": " << message;
  if (!path.empty()) {
    out << "\n  at: " << path;
  }
  for (const std::string& note : notes) {
    out << "\n  note: " << note;
  }
  return out.str();
}

Diagnostic& DiagnosticEngine::Emit(Severity severity, std::string code,
                                   std::string message) {
  Diagnostic diag;
  diag.severity = severity;
  diag.code = std::move(code);
  diag.message = std::move(message);
  diagnostics_.push_back(std::move(diag));
  return diagnostics_.back();
}

void DiagnosticEngine::Report(Diagnostic diag) {
  diagnostics_.push_back(std::move(diag));
}

bool DiagnosticEngine::HasErrors() const { return ErrorCount() > 0; }

size_t DiagnosticEngine::ErrorCount() const {
  size_t count = 0;
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.severity == Severity::kError) ++count;
  }
  return count;
}

std::string DiagnosticEngine::Render() const {
  std::ostringstream out;
  for (const Diagnostic& diag : diagnostics_) {
    out << diag.Render() << "\n";
  }
  return out.str();
}

}  // namespace verify
}  // namespace alcop
