#include "verify/diagnostic.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace alcop {
namespace verify {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::Render() const {
  std::ostringstream out;
  out << SeverityName(severity) << "[" << code << "]";
  if (span.IsKnown()) {
    out << " at line " << span.line << ":" << span.column;
  }
  out << ": " << message;
  if (!path.empty()) {
    out << "\n  at: " << path;
  }
  for (const std::string& note : notes) {
    out << "\n  note: " << note;
  }
  return out.str();
}

Diagnostic& DiagnosticEngine::Emit(Severity severity, std::string code,
                                   std::string message) {
  Diagnostic diag;
  diag.severity = severity;
  diag.code = std::move(code);
  diag.message = std::move(message);
  diagnostics_.push_back(std::move(diag));
  return diagnostics_.back();
}

void DiagnosticEngine::Report(Diagnostic diag) {
  diagnostics_.push_back(std::move(diag));
}

bool DiagnosticEngine::HasErrors() const { return ErrorCount() > 0; }

size_t DiagnosticEngine::ErrorCount() const {
  size_t count = 0;
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.severity == Severity::kError) ++count;
  }
  return count;
}

std::string DiagnosticEngine::Render() const {
  std::ostringstream out;
  for (const Diagnostic& diag : diagnostics_) {
    out << diag.Render() << "\n";
  }
  return out.str();
}

void SortDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::stable_sort(diagnostics->begin(), diagnostics->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::make_tuple(a.span.line, a.span.column,
                                            std::cref(a.code)) <
                            std::make_tuple(b.span.line, b.span.column,
                                            std::cref(b.code));
                   });
}

namespace {

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& diag = diagnostics[i];
    if (i > 0) out << ",";
    out << "\n  {\"severity\": ";
    AppendJsonString(out, SeverityName(diag.severity));
    out << ", \"code\": ";
    AppendJsonString(out, diag.code);
    out << ", \"line\": " << (diag.span.IsKnown() ? diag.span.line : 0)
        << ", \"column\": " << (diag.span.IsKnown() ? diag.span.column : 0)
        << ", \"message\": ";
    AppendJsonString(out, diag.message);
    out << ", \"path\": ";
    AppendJsonString(out, diag.path);
    out << ", \"notes\": [";
    for (size_t n = 0; n < diag.notes.size(); ++n) {
      if (n > 0) out << ", ";
      AppendJsonString(out, diag.notes[n]);
    }
    out << "]}";
  }
  if (!diagnostics.empty()) out << "\n";
  out << "]";
  return out.str();
}

}  // namespace verify
}  // namespace alcop
