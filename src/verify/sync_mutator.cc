#include "verify/sync_mutator.h"

#include <utility>

#include "support/check.h"

namespace alcop {
namespace verify {

using namespace alcop::ir;  // NOLINT(build/namespaces) - tree rewriter

namespace {

bool IsPipelineSync(const Stmt& s) {
  if (s->kind != StmtKind::kSync) return false;
  return static_cast<const SyncNode*>(s.get())->sync_kind !=
         SyncKind::kBarrier;
}

std::string SiteLabel(const SyncNode* op) {
  std::string name = op->buffers.empty() ? "?" : op->buffers[0]->name;
  return name + "." + SyncKindName(op->sync_kind) + "@group" +
         std::to_string(op->group);
}

void Collect(const Stmt& s, std::vector<SyncSite>* out) {
  switch (s->kind) {
    case StmtKind::kBlock:
      for (const Stmt& child : static_cast<const BlockNode*>(s.get())->seq) {
        Collect(child, out);
      }
      return;
    case StmtKind::kFor:
      Collect(static_cast<const ForNode*>(s.get())->body, out);
      return;
    case StmtKind::kPragma:
      Collect(static_cast<const PragmaNode*>(s.get())->body, out);
      return;
    case StmtKind::kIfThenElse: {
      const auto* op = static_cast<const IfThenElseNode*>(s.get());
      Collect(op->then_case, out);
      if (op->else_case != nullptr) Collect(op->else_case, out);
      return;
    }
    case StmtKind::kSync: {
      if (!IsPipelineSync(s)) return;
      const auto* op = static_cast<const SyncNode*>(s.get());
      out->push_back({op, out->size(), SiteLabel(op)});
      return;
    }
    default:
      return;
  }
}

// Rewrites the tree applying one mutation at the target site, counting
// pipeline syncs in the same pre-order as Collect.
class Rewriter {
 public:
  Rewriter(size_t target, SyncMutation mutation, int wait_ahead,
           bool set_wait_ahead)
      : target_(target),
        mutation_(mutation),
        wait_ahead_(wait_ahead),
        set_wait_ahead_(set_wait_ahead) {}

  bool ok() const { return applied_ && !failed_; }

  Stmt Rewrite(const Stmt& s) {
    switch (s->kind) {
      case StmtKind::kBlock:
        return RewriteBlock(static_cast<const BlockNode*>(s.get()));
      case StmtKind::kFor: {
        const auto* op = static_cast<const ForNode*>(s.get());
        return Keep(s, For(op->var, op->extent, op->for_kind,
                           Rewrite(op->body)));
      }
      case StmtKind::kPragma: {
        const auto* op = static_cast<const PragmaNode*>(s.get());
        return Keep(s, Pragma(op->key, op->buffer, op->value,
                              Rewrite(op->body)));
      }
      case StmtKind::kIfThenElse: {
        const auto* op = static_cast<const IfThenElseNode*>(s.get());
        return Keep(s, IfThenElse(op->cond, Rewrite(op->then_case),
                                  op->else_case != nullptr
                                      ? Rewrite(op->else_case)
                                      : nullptr));
      }
      case StmtKind::kSync: {
        // A sync that is a loop/pragma/if body directly, outside a block:
        // drop and duplicate still apply; shifting has no neighbors.
        if (!IsPipelineSync(s) || counter_++ != target_) return s;
        applied_ = true;
        if (set_wait_ahead_) return WithWaitAhead(s);
        switch (mutation_) {
          case SyncMutation::kDrop:
            return Block({});
          case SyncMutation::kDuplicate:
            return Block({s, s});
          case SyncMutation::kShiftEarlier:
          case SyncMutation::kShiftLater:
            failed_ = true;
            return s;
        }
        return s;
      }
      default:
        return s;
    }
  }

 private:
  // Preserves the original source span on a rebuilt node.
  static Stmt Keep(const Stmt& original, Stmt rebuilt) {
    rebuilt->span = original->span;
    return rebuilt;
  }

  Stmt WithWaitAhead(const Stmt& s) {
    const auto* op = static_cast<const SyncNode*>(s.get());
    if (op->sync_kind != SyncKind::kConsumerWait) {
      failed_ = true;
      return s;
    }
    return Keep(s, Sync(op->sync_kind, op->group, op->buffers, wait_ahead_));
  }

  Stmt RewriteBlock(const BlockNode* block) {
    std::vector<Stmt> out;
    out.reserve(block->seq.size());
    Stmt deferred;  // sync being shifted one position later
    for (const Stmt& child : block->seq) {
      if (IsPipelineSync(child)) {
        if (counter_++ == target_) {
          applied_ = true;
          if (set_wait_ahead_) {
            out.push_back(WithWaitAhead(child));
            continue;
          }
          switch (mutation_) {
            case SyncMutation::kDrop:
              continue;
            case SyncMutation::kDuplicate:
              out.push_back(child);
              out.push_back(child);
              continue;
            case SyncMutation::kShiftEarlier:
              if (out.empty()) {
                failed_ = true;
                out.push_back(child);
              } else {
                out.insert(out.end() - 1, child);
              }
              continue;
            case SyncMutation::kShiftLater:
              deferred = child;
              continue;
          }
        }
        out.push_back(child);
      } else {
        out.push_back(Rewrite(child));
      }
      if (deferred != nullptr) {
        out.push_back(deferred);
        deferred = nullptr;
      }
    }
    if (deferred != nullptr) failed_ = true;  // was the last statement
    return Block(std::move(out));
  }

  size_t target_;
  SyncMutation mutation_;
  int wait_ahead_;
  bool set_wait_ahead_;
  size_t counter_ = 0;
  bool applied_ = false;
  bool failed_ = false;
};

}  // namespace

const char* SyncMutationName(SyncMutation mutation) {
  switch (mutation) {
    case SyncMutation::kDrop: return "drop";
    case SyncMutation::kDuplicate: return "duplicate";
    case SyncMutation::kShiftEarlier: return "shift-earlier";
    case SyncMutation::kShiftLater: return "shift-later";
  }
  return "?";
}

std::vector<SyncSite> ListSyncSites(const Stmt& program) {
  std::vector<SyncSite> sites;
  Collect(program, &sites);
  return sites;
}

Stmt MutateSyncSite(const Stmt& program, size_t site_index,
                    SyncMutation mutation) {
  Rewriter rewriter(site_index, mutation, 0, /*set_wait_ahead=*/false);
  Stmt result = rewriter.Rewrite(program);
  return rewriter.ok() ? result : nullptr;
}

Stmt SetWaitAhead(const Stmt& program, size_t site_index, int wait_ahead) {
  Rewriter rewriter(site_index, SyncMutation::kDrop, wait_ahead,
                    /*set_wait_ahead=*/true);
  Stmt result = rewriter.Rewrite(program);
  return rewriter.ok() ? result : nullptr;
}

}  // namespace verify
}  // namespace alcop
