#include "verify/verifier.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/expr.h"
#include "obs/trace.h"
#include "support/check.h"

namespace alcop {
namespace verify {

using namespace alcop::ir;  // NOLINT(build/namespaces) - interpreter

namespace {

// Abstract state of one buffer slot (one index along the leading stage
// dimension): whether an async copy's data is still invisible (pending),
// an epoch counter to detect overwrites between commit and wait, and the
// commit-group index of the last async writer.
struct SlotState {
  bool pending = false;
  uint32_t epoch = 0;
  int64_t writer_group = -1;
  int writer_pipeline = -1;
};

// One slot written by an in-flight commit group (the slot-granular twin of
// the executor's PendingElem).
struct SlotRef {
  const BufferNode* buffer;
  int64_t slot;
  uint32_t epoch;
};

// FIFO state of one synchronization group; mirrors sim::PipelineState.
struct PipeState {
  int64_t committed = 0;
  int64_t waited = 0;
  int64_t released = 0;
  int64_t promoted_upto = -1;
  std::vector<SlotRef> current;
  std::vector<std::vector<SlotRef>> fifo;
};

struct ParallelVar {
  const VarNode* var;
  int64_t extent;
  size_t env_index;  // position of the binding in env_
};

std::string StmtLabel(const StmtNode* s) {
  switch (s->kind) {
    case StmtKind::kCopy: {
      const auto* op = static_cast<const CopyNode*>(s);
      return std::string(op->is_async ? "copy.async(" : "copy(") +
             op->dst.buffer->name + ")";
    }
    case StmtKind::kFill:
      return "fill(" + static_cast<const FillNode*>(s)->dst.buffer->name + ")";
    case StmtKind::kMma:
      return "mma(" + static_cast<const MmaNode*>(s)->c.buffer->name + ")";
    case StmtKind::kSync: {
      const auto* op = static_cast<const SyncNode*>(s);
      if (op->sync_kind == SyncKind::kBarrier) return "barrier";
      std::string name = op->buffers.empty() ? "?" : op->buffers[0]->name;
      return name + "." + SyncKindName(op->sync_kind) + "@group" +
             std::to_string(op->group);
    }
    case StmtKind::kAlloc:
      return "alloc(" +
             static_cast<const AllocNode*>(s)->buffer->name + ")";
    default:
      return "stmt";
  }
}

class Interpreter {
 public:
  Interpreter(const VerifyOptions& options, DiagnosticEngine* diags)
      : options_(options), diags_(diags) {}

  bool reached_step_limit() const { return reached_step_limit_; }

  void Run(const Stmt& program) { Exec(program); }

 private:
  // ---- Diagnostics plumbing ----

  std::string PathString(const StmtNode* leaf) const {
    std::ostringstream out;
    for (const std::string& entry : path_) out << entry << " / ";
    out << StmtLabel(leaf);
    return out.str();
  }

  // One diagnostic per (statement, code) pair: a bug inside a loop is
  // reported at its first occurrence, not once per iteration.
  Diagnostic* EmitAt(const StmtNode* site, Severity severity,
                     const char* code, std::string message) {
    if (!reported_.insert({site, code}).second) return nullptr;
    Diagnostic& diag = diags_->Emit(severity, code, std::move(message));
    diag.path = PathString(site);
    diag.span = site->span;
    return &diag;
  }

  void EmitMalformed(const StmtNode* site, std::string message) {
    EmitAt(site, Severity::kError, "V009", std::move(message));
  }

  // Evaluates an index expression in the current environment, reporting
  // V009 (instead of propagating CheckError) on unbound variables etc.
  bool TryEval(const Expr& e, const StmtNode* site, int64_t* out) {
    try {
      *out = Evaluate(e, env_);
      return true;
    } catch (const CheckError& error) {
      EmitMalformed(site, std::string("unevaluable index expression: ") +
                              error.what());
      return false;
    }
  }

  // ---- Region checks ----

  // Bounds-checks a region at the corners of every in-scope parallel
  // loop. Serial loop variables hold their current (real) values, so
  // modulo/rolling arithmetic over them is evaluated exactly; parallel
  // variables only ever enter lowered offsets affinely (tile bases), so
  // their extremes occur at {0, extent-1}.
  void CheckRegionBounds(const StmtNode* site, const BufferRegion& region) {
    if (!options_.check_bounds) return;
    try {
      ValidateRegion(region);
    } catch (const CheckError& error) {
      EmitMalformed(site, std::string("malformed region: ") + error.what());
      return;
    }

    std::vector<size_t> corner_vars;
    for (size_t i = 0; i < parallel_scope_.size(); ++i) {
      if (parallel_scope_[i].extent > 1) corner_vars.push_back(i);
    }
    // 2^12 corner combinations is already far beyond any real loop nest;
    // beyond that fall back to the representative instance only.
    if (corner_vars.size() > 12) corner_vars.clear();

    for (size_t d = 0; d < region.offsets.size(); ++d) {
      int64_t lo = 0, hi = 0;
      bool first = true;
      size_t combos = size_t{1} << corner_vars.size();
      for (size_t mask = 0; mask < combos; ++mask) {
        for (size_t i = 0; i < corner_vars.size(); ++i) {
          const ParallelVar& pv = parallel_scope_[corner_vars[i]];
          env_[pv.env_index].value =
              ((mask >> i) & 1) != 0 ? pv.extent - 1 : 0;
        }
        int64_t value = 0;
        bool ok = TryEval(region.offsets[d], site, &value);
        if (!ok) break;
        lo = first ? value : std::min(lo, value);
        hi = first ? value : std::max(hi, value);
        first = false;
      }
      for (size_t i = 0; i < corner_vars.size(); ++i) {
        env_[parallel_scope_[corner_vars[i]].env_index].value = 0;
      }
      if (first) return;  // evaluation failed; V009 already reported
      if (lo < 0 || hi + region.sizes[d] >
                        region.buffer->shape[d]) {
        std::ostringstream msg;
        msg << "region of '" << region.buffer->name << "' out of bounds in dim "
            << d << ": offset range [" << lo << ", " << hi << "] with size "
            << region.sizes[d] << " exceeds extent "
            << region.buffer->shape[d];
        EmitAt(site, Severity::kError, "V006", msg.str());
      }
    }
  }

  void CheckCopyScopes(const CopyNode* op) {
    MemScope src = op->src.buffer->scope;
    MemScope dst = op->dst.buffer->scope;
    if (src == MemScope::kGlobal &&
        (dst == MemScope::kRegister || dst == MemScope::kAccumulator)) {
      EmitAt(op, Severity::kError, "V007",
             "copy '" + op->src.buffer->name + "' -> '" +
                 op->dst.buffer->name +
                 "' moves Global data straight into registers, skipping the "
                 "shared-memory staging level");
      return;
    }
    if (!op->is_async) return;
    bool global_to_shared =
        src == MemScope::kGlobal && dst == MemScope::kShared;
    bool shared_to_register =
        src == MemScope::kShared && dst == MemScope::kRegister;
    if (global_to_shared && op->op != EwiseOp::kNone) {
      EmitAt(op, Severity::kError, "V007",
             "async Global->Shared copy into '" + op->dst.buffer->name +
                 "' applies elementwise op '" + EwiseOpName(op->op) +
                 "' (cp.async has no ALU; fused copies must stay "
                 "synchronous)");
    } else if (!global_to_shared && !shared_to_register) {
      EmitAt(op, Severity::kError, "V007",
             std::string("async copy between ") + MemScopeName(src) +
                 " and " + MemScopeName(dst) +
                 " scopes is not asynchronous on any target generation");
    }
  }

  // ---- Abstract slot/FIFO state ----

  SlotState* FindSlot(const Buffer& buffer, int64_t slot) {
    auto it = slots_.find(buffer.get());
    if (it == slots_.end()) return nullptr;
    auto slot_it = it->second.find(slot);
    return slot_it == it->second.end() ? nullptr : &slot_it->second;
  }

  // Race check for a read of `region`: its stage slot must not hold
  // unpromoted async data (the executor's ReadElem pending check).
  void CheckRead(const StmtNode* site, const BufferRegion& region) {
    if (region.offsets.empty()) return;
    auto it = slots_.find(region.buffer.get());
    if (it == slots_.end()) return;  // never an async destination
    int64_t slot = 0;
    if (!TryEval(region.offsets[0], site, &slot)) return;
    auto slot_it = it->second.find(slot);
    if (slot_it == it->second.end() || !slot_it->second.pending) return;
    std::ostringstream msg;
    msg << "read of '" << region.buffer->name << "' slot " << slot
        << " before its consumer_wait (async data not yet visible)";
    Diagnostic* diag = EmitAt(site, Severity::kError, "V001", msg.str());
    if (diag != nullptr) {
      std::ostringstream note;
      note << "slot written by the async copy of commit group "
           << slot_it->second.writer_group << " of pipeline group "
           << slot_it->second.writer_pipeline;
      diag->notes.push_back(note.str());
    }
  }

  void ExecCopy(const CopyNode* op) {
    CheckRegionBounds(op, op->dst);
    CheckRegionBounds(op, op->src);
    CheckCopyScopes(op);
    CheckRead(op, op->src);

    if (op->dst.offsets.empty()) return;
    if (!op->is_async) {
      // A synchronous copy makes its destination visible immediately
      // (mirrors the executor clearing the pending flag).
      SlotState* slot = FindSlot(op->dst.buffer, EvalOrZero(op->dst, op));
      if (slot != nullptr) slot->pending = false;
      return;
    }
    if (op->pipeline_group < 0) {
      EmitMalformed(op, "async copy into '" + op->dst.buffer->name +
                            "' carries no @group tag");
      return;
    }
    int64_t slot_index = 0;
    if (!TryEval(op->dst.offsets[0], op, &slot_index)) return;
    PipeState& pipe = pipes_[op->pipeline_group];
    SlotState& slot = slots_[op->dst.buffer.get()][slot_index];
    if (slot.pending && slot.writer_group >= 0 &&
        slot.writer_group != pipe.committed) {
      std::ostringstream msg;
      msg << "async copy overwrites '" << op->dst.buffer->name << "' slot "
          << slot_index << " while commit group " << slot.writer_group
          << " still owns it (two live groups alias one slot; wrong "
             "rolling index?)";
      EmitAt(op, Severity::kWarning, "V005", msg.str());
    }
    slot.pending = true;
    slot.writer_group = pipe.committed;
    slot.writer_pipeline = op->pipeline_group;
    ++slot.epoch;
    pipe.current.push_back({op->dst.buffer.get(), slot_index, slot.epoch});
  }

  int64_t EvalOrZero(const BufferRegion& region, const StmtNode* site) {
    int64_t value = 0;
    if (!region.offsets.empty()) TryEval(region.offsets[0], site, &value);
    return value;
  }

  void ExecFill(const FillNode* op) {
    CheckRegionBounds(op, op->dst);
    SlotState* slot = FindSlot(op->dst.buffer, EvalOrZero(op->dst, op));
    if (slot != nullptr) slot->pending = false;
  }

  void ExecMma(const MmaNode* op) {
    CheckRegionBounds(op, op->c);
    CheckRegionBounds(op, op->a);
    CheckRegionBounds(op, op->b);
    CheckRead(op, op->a);
    CheckRead(op, op->b);
    // The accumulator operand is read-modify-write but never pipelined;
    // the executor does not track it either.
  }

  void ExecSync(const SyncNode* op) {
    if (op->sync_kind == SyncKind::kBarrier) {
      if (warp_depth_ > 0) {
        EmitAt(op, Severity::kError, "V008",
               "threadblock barrier inside a divergent warp loop "
               "(deadlocks: warps reach the barrier a different number of "
               "times)");
      }
      return;
    }
    if (op->group < 0) {
      EmitMalformed(op, "pipeline sync primitive without a group id");
      return;
    }
    if (op->buffers.empty()) {
      EmitMalformed(op, "pipeline sync primitive without associated buffers");
      return;
    }
    PipeState& pipe = pipes_[op->group];
    switch (op->sync_kind) {
      case SyncKind::kProducerAcquire: {
        int64_t stages = op->buffers[0]->shape[0];
        if (pipe.committed - pipe.released >= stages) {
          std::ostringstream msg;
          msg << "producer_acquire of group " << op->group
              << " without pipeline capacity: "
              << (pipe.committed - pipe.released)
              << " groups live in a " << stages
              << "-stage FIFO (missing consumer_release?)";
          EmitAt(op, Severity::kError, "V002", msg.str());
        }
        return;
      }
      case SyncKind::kProducerCommit:
        pipe.fifo.push_back(std::move(pipe.current));
        pipe.current.clear();
        ++pipe.committed;
        return;
      case SyncKind::kConsumerWait: {
        int64_t target = pipe.waited + op->wait_ahead;
        if (target >= pipe.committed) {
          std::ostringstream msg;
          msg << "consumer_wait of group " << op->group << " targets group "
              << target << " but only " << pipe.committed
              << " groups were committed";
          EmitAt(op, Severity::kError, "V003", msg.str());
          return;  // mirror the executor: no promotion happens
        }
        for (int64_t g = pipe.promoted_upto + 1; g <= target; ++g) {
          for (const SlotRef& ref : pipe.fifo[static_cast<size_t>(g)]) {
            SlotState& slot = slots_[ref.buffer][ref.slot];
            // Promote only if the slot was not overwritten since.
            if (slot.epoch == ref.epoch) slot.pending = false;
          }
        }
        pipe.promoted_upto = std::max(pipe.promoted_upto, target);
        ++pipe.waited;
        return;
      }
      case SyncKind::kConsumerRelease:
        ++pipe.released;
        if (pipe.released > pipe.committed) {
          std::ostringstream msg;
          msg << "consumer_release of group " << op->group
              << " exceeds committed groups (" << pipe.released << " > "
              << pipe.committed << ")";
          EmitAt(op, Severity::kError, "V004", msg.str());
          pipe.released = pipe.committed;  // keep later verdicts sensible
        }
        return;
      default:
        return;
    }
  }

  // ---- Control flow ----

  void ExecFor(const ForNode* op) {
    int64_t extent = 0;
    if (!TryEval(op->extent, op, &extent)) return;
    if (extent <= 0) return;
    bool parallel = op->for_kind == ForKind::kBlockIdx ||
                    op->for_kind == ForKind::kWarp;
    path_.emplace_back();
    if (parallel) {
      // One representative instance: pipeline state is per-instance and
      // identical across instances; bounds are checked at loop corners.
      env_.push_back({op->var.get(), 0});
      parallel_scope_.push_back({op->var.get(), extent, env_.size() - 1});
      if (op->for_kind == ForKind::kWarp) ++warp_depth_;
      path_.back() = "for " + op->var->name + "=0.." +
                     std::to_string(extent - 1) + "(" +
                     ForKindName(op->for_kind) + ")";
      Exec(op->body);
      if (op->for_kind == ForKind::kWarp) --warp_depth_;
      parallel_scope_.pop_back();
      env_.pop_back();
    } else {
      env_.push_back({op->var.get(), 0});
      for (int64_t i = 0; i < extent && !reached_step_limit_; ++i) {
        env_.back().value = i;
        path_.back() = "for " + op->var->name + "=" + std::to_string(i);
        Exec(op->body);
      }
      env_.pop_back();
    }
    path_.pop_back();
  }

  void Exec(const Stmt& s) {
    if (++steps_ > options_.max_steps) {
      reached_step_limit_ = true;
      return;
    }
    if (reached_step_limit_) return;
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const Stmt& child : static_cast<const BlockNode*>(s.get())->seq) {
          Exec(child);
        }
        return;
      case StmtKind::kPragma:
        Exec(static_cast<const PragmaNode*>(s.get())->body);
        return;
      case StmtKind::kFor:
        ExecFor(static_cast<const ForNode*>(s.get()));
        return;
      case StmtKind::kIfThenElse: {
        const auto* op = static_cast<const IfThenElseNode*>(s.get());
        int64_t cond = 0;
        if (!TryEval(op->cond, op, &cond)) return;
        if (cond != 0) {
          Exec(op->then_case);
        } else if (op->else_case != nullptr) {
          Exec(op->else_case);
        }
        return;
      }
      case StmtKind::kAlloc:
        return;
      case StmtKind::kCopy:
        ExecCopy(static_cast<const CopyNode*>(s.get()));
        return;
      case StmtKind::kFill:
        ExecFill(static_cast<const FillNode*>(s.get()));
        return;
      case StmtKind::kMma:
        ExecMma(static_cast<const MmaNode*>(s.get()));
        return;
      case StmtKind::kSync:
        ExecSync(static_cast<const SyncNode*>(s.get()));
        return;
    }
    EmitMalformed(s.get(), "unhandled statement kind");
  }

  VerifyOptions options_;
  DiagnosticEngine* diags_;
  bool reached_step_limit_ = false;
  int64_t steps_ = 0;
  int warp_depth_ = 0;
  std::vector<VarBinding> env_;
  std::vector<ParallelVar> parallel_scope_;
  std::vector<std::string> path_;
  std::unordered_map<const BufferNode*, std::map<int64_t, SlotState>> slots_;
  std::map<int, PipeState> pipes_;
  std::set<std::pair<const StmtNode*, std::string>> reported_;
};

}  // namespace

bool VerifyResult::HasErrors() const {
  for (const Diagnostic& diag : diagnostics) {
    if (diag.severity == Severity::kError) return true;
  }
  return false;
}

bool VerifyResult::HasSyncError() const {
  for (const Diagnostic& diag : diagnostics) {
    if (diag.severity != Severity::kError) continue;
    if (diag.code == "V001" || diag.code == "V002" || diag.code == "V003" ||
        diag.code == "V004") {
      return true;
    }
  }
  return false;
}

std::string VerifyResult::Render() const {
  std::ostringstream out;
  for (const Diagnostic& diag : diagnostics) {
    out << diag.Render() << "\n";
  }
  if (reached_step_limit) {
    out << "note: interpretation stopped at the step limit; findings may be "
           "incomplete\n";
  }
  return out.str();
}

VerifyResult VerifyProgram(const ir::Stmt& program,
                           const VerifyOptions& options) {
  ALCOP_TRACE_SCOPE("verify", "compiler");
  DiagnosticEngine engine;
  Interpreter interp(options, &engine);
  interp.Run(program);
  VerifyResult result;
  result.diagnostics = engine.diagnostics();
  SortDiagnostics(&result.diagnostics);
  result.reached_step_limit = interp.reached_step_limit();
  return result;
}

bool VerificationEnabled() {
  static const bool enabled = [] {
    const char* value = std::getenv("ALCOP_VERIFY");
    return value != nullptr && value[0] != '\0' &&
           std::string(value) != "0";
  }();
  return enabled;
}

void VerifyOrThrowIfEnabled(const ir::Stmt& program, const char* producer) {
  if (!VerificationEnabled()) return;
  VerifyResult result = VerifyProgram(program);
  ALCOP_CHECK(!result.HasErrors())
      << producer << " produced IR that fails static verification:\n"
      << result.Render();
}

}  // namespace verify
}  // namespace alcop
