// Static pipeline-synchronization verifier.
//
// An abstract interpretation of Tensor-IR that proves (or refutes) the
// correctness of the four pipeline synchronization primitives the program
// transformation injects (Sec. III-B), without executing any data. It
// mirrors the dynamic checker of the functional executor at *slot*
// granularity: instead of per-element pending flags it tracks, per
// pipelined buffer, which leading-dimension slot each in-flight commit
// group wrote — exact for the tile-granular IR this compiler produces,
// where every async copy addresses one whole stage slot.
//
// Loop handling:
//   - serial / unrolled loops are enumerated in full (extents are static
//     in lowered IR), so the FIFO state is tracked across real iteration
//     sequences — including the global rolling index of fused inner
//     pipelines and the wait_ahead slack of their enclosing outer
//     pipeline, the two subtle points DESIGN.md documents;
//   - parallel loops (blockIdx / warp) run one representative instance
//     (index 0): pipeline state is keyed per instance in the executor and
//     identical across instances. Region bounds are still checked at the
//     *corners* of every parallel loop ({0, extent-1}), which bounds the
//     affine tile offsets the lowering produces.
//
// Diagnostic codes (see DESIGN.md for the paper rule each enforces):
//   V001 error   read of async-copied data not covered by a consumer_wait
//   V002 error   producer_acquire beyond stage capacity (FIFO deadlock)
//   V003 error   consumer_wait targets a group never committed
//   V004 error   consumer_release exceeds committed groups
//   V005 warning two live commit groups alias one buffer slot
//   V006 error   copy/MMA region out of bounds of its buffer
//   V007 error   memory-scope violation (illegal copy scope pair)
//   V008 error   threadblock barrier inside a divergent warp loop
//   V009 error   malformed IR (unbound vars, bad regions, sync w/o buffers)
//
// V001-V004 are exactly the conditions the executor's dynamic
// check_async_semantics enforces; the fuzz differential asserts the two
// checkers agree on them.
#ifndef ALCOP_VERIFY_VERIFIER_H_
#define ALCOP_VERIFY_VERIFIER_H_

#include <string>
#include <vector>

#include "ir/stmt.h"
#include "verify/diagnostic.h"

namespace alcop {
namespace verify {

struct VerifyOptions {
  // Check copy/fill/MMA regions against buffer extents (V006).
  bool check_bounds = true;
  // Safety valve against adversarial inputs: maximum statement visits
  // before the interpretation bails out (reported in the result).
  int64_t max_steps = 1 << 22;
};

struct VerifyResult {
  std::vector<Diagnostic> diagnostics;
  bool reached_step_limit = false;

  bool HasErrors() const;
  // No findings at all, warnings included.
  bool Clean() const { return diagnostics.empty(); }
  // True if an error carries one of the codes the executor's dynamic
  // checker also enforces (V001-V004); the fuzz differential compares
  // this verdict against "executor throws".
  bool HasSyncError() const;
  std::string Render() const;
};

VerifyResult VerifyProgram(const ir::Stmt& program,
                           const VerifyOptions& options = {});

// True when the ALCOP_VERIFY environment variable enables post-pass
// self-verification (any non-empty value except "0"; CI sets it).
bool VerificationEnabled();

// Env-gated wrapper used by schedule::LowerSchedule and
// pipeline::ApplyPipelineTransform to verify their own output: no-op
// unless ALCOP_VERIFY is set, throws CheckError naming `producer` when
// the produced IR has verification errors.
void VerifyOrThrowIfEnabled(const ir::Stmt& program, const char* producer);

}  // namespace verify
}  // namespace alcop

#endif  // ALCOP_VERIFY_VERIFIER_H_
