// Tests of the schedule lowering: launch metadata, emitted IR structure
// (barriers, pragmas, allocations) and the resource accounting.
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "pipeline/detect.h"
#include "schedule/lower.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace {

using schedule::GemmOp;
using schedule::InlineOrder;
using schedule::LoweredKernel;
using schedule::MakeBatchMatmul;
using schedule::MakeMatmul;
using schedule::Schedule;
using schedule::ScheduleConfig;

ScheduleConfig Config() {
  ScheduleConfig config;
  config.tile = {.tb_m = 64, .tb_n = 32, .tb_k = 16,
                 .warp_m = 32, .warp_n = 16, .warp_k = 8};
  return config;
}

LoweredKernel Lower(const GemmOp& op, ScheduleConfig config,
                    InlineOrder order = InlineOrder::kAfterPipelining,
                    bool auto_pipeline = false) {
  Schedule sched(op, config, order);
  if (auto_pipeline) pipeline::AutoPipeline(sched, target::AmpereSpec());
  return schedule::LowerSchedule(sched);
}

TEST(LowerTest, LaunchMetadata) {
  GemmOp op = MakeBatchMatmul("bmm", 3, 128, 64, 96);
  LoweredKernel kernel = Lower(op, Config());
  EXPECT_EQ(kernel.grid_batch, 3);
  EXPECT_EQ(kernel.grid_m, 2);
  EXPECT_EQ(kernel.grid_n, 2);
  EXPECT_EQ(kernel.grid_k, 1);
  EXPECT_EQ(kernel.TotalThreadblocks(), 12);
  EXPECT_EQ(kernel.num_warps, 4);
  EXPECT_EQ(kernel.ko_extent, 6);
  EXPECT_EQ(kernel.ki_extent, 2);
  EXPECT_EQ(kernel.workspace, nullptr);
  EXPECT_EQ(kernel.a_ew, nullptr);
  EXPECT_FALSE(kernel.has_standalone_ewise);
}

TEST(LowerTest, SplitKCreatesWorkspaceAndReduction) {
  GemmOp op = MakeMatmul("mm", 128, 64, 192);
  ScheduleConfig config = Config();
  config.split_k = 2;
  LoweredKernel kernel = Lower(op, config);
  ASSERT_NE(kernel.workspace, nullptr);
  EXPECT_EQ(kernel.workspace->shape,
            (std::vector<int64_t>{2, 1, 128, 64}));
  EXPECT_EQ(kernel.workspace->elem_bytes, 4);
  EXPECT_EQ(kernel.grid_k, 2);
  EXPECT_EQ(kernel.TotalThreadblocks(), 2 * 2 * 2);
  EXPECT_EQ(kernel.ko_extent, 6);  // 192 / (16 * 2)

  // One plain copy plus split_k-1 accumulating copies in the reduction.
  int accumulates = 0;
  ir::WalkWithLoops(kernel.stmt, [&](const ir::Stmt& s,
                                     const std::vector<const ir::ForNode*>&) {
    if (s->kind == ir::StmtKind::kCopy &&
        static_cast<const ir::CopyNode*>(s.get())->accumulate) {
      ++accumulates;
    }
  });
  EXPECT_EQ(accumulates, 1);
}

TEST(LowerTest, StandaloneEwisePassMaterializes) {
  GemmOp op = MakeMatmul("mm", 128, 64, 96);
  op.a_producer_op = ir::EwiseOp::kGelu;
  LoweredKernel kernel = Lower(op, Config(), InlineOrder::kNone);
  EXPECT_TRUE(kernel.has_standalone_ewise);
  ASSERT_NE(kernel.a_ew, nullptr);
  EXPECT_EQ(kernel.a_ew->shape, kernel.a->shape);
}

TEST(LowerTest, BaselineEmitsBarriersAndNoPragmas) {
  GemmOp op = MakeMatmul("mm", 128, 64, 96);
  LoweredKernel kernel = Lower(op, Config());
  int barriers = 0, pragmas = 0;
  ir::WalkWithLoops(kernel.stmt, [&](const ir::Stmt& s,
                                     const std::vector<const ir::ForNode*>&) {
    barriers += s->kind == ir::StmtKind::kSync &&
                static_cast<const ir::SyncNode*>(s.get())->sync_kind ==
                    ir::SyncKind::kBarrier;
    pragmas += s->kind == ir::StmtKind::kPragma;
  });
  EXPECT_EQ(barriers, 2);  // one after the loads, one closing the iteration
  EXPECT_EQ(pragmas, 0);
  EXPECT_TRUE(ir::CollectPipelineHints(kernel.stmt).empty());
}

TEST(LowerTest, AutoPipelinedKernelCarriesHints) {
  GemmOp op = MakeMatmul("mm", 128, 64, 96);
  ScheduleConfig config = Config();
  config.smem_stages = 3;
  config.reg_stages = 2;
  LoweredKernel kernel = Lower(op, config, InlineOrder::kAfterPipelining,
                               /*auto_pipeline=*/true);
  std::vector<ir::PipelineHint> hints = ir::CollectPipelineHints(kernel.stmt);
  ASSERT_EQ(hints.size(), 4u);
  for (const ir::PipelineHint& hint : hints) {
    bool is_shared = hint.buffer->scope == ir::MemScope::kShared;
    EXPECT_EQ(hint.stages, is_shared ? 3 : 2) << hint.buffer->name;
  }
}

TEST(LowerTest, FlopsOfLoweredKernelMatchOperator) {
  GemmOp op = MakeMatmul("mm", 128, 64, 96);
  LoweredKernel kernel = Lower(op, Config());
  EXPECT_EQ(ir::CountFlops(kernel.stmt), op.Flops());
}

TEST(LowerTest, ResourceAccounting) {
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  config.smem_stages = 3;
  config.reg_stages = 2;
  target::ThreadblockResources res = schedule::ComputeResources(op, config);
  EXPECT_EQ(res.warps, 4);
  // Shared: (128 + 128) x 32 fp16 per stage, 3 stages.
  EXPECT_EQ(res.smem_bytes, (128 + 128) * 32 * 2 * 3);
  // Registers: per warp, fp16 fragments x 2 stages + fp32 accumulators
  // + fixed overhead.
  int64_t frag = (64 * 16 + 64 * 16) * 2 * 2;
  int64_t acc = 64 * 64 * 4;
  int64_t overhead = 32 * 32 * 4;
  EXPECT_EQ(res.reg_bytes, 4 * (frag + acc + overhead));
}

}  // namespace
}  // namespace alcop
