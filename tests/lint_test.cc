// Tests of the static analysis framework (src/analysis): the interval
// algebra against brute-force enumeration, a table of hand-built bad
// programs per documented L-code (mirroring verify_test's V-code table),
// diagnostic sorting and the shared JSON renderer, guard awareness, the
// resource estimator against schedule::ComputeResources, the bank model
// against the simulator's PMU counters, and the zero-findings requirement
// over every compiled Fig. 10 kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "analysis/bank.h"
#include "analysis/bounds.h"
#include "analysis/context.h"
#include "analysis/index_mutator.h"
#include "analysis/interval.h"
#include "analysis/pass.h"
#include "analysis/resources.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/stmt.h"
#include "schedule/lower.h"
#include "sim/executor.h"
#include "sim/launch.h"
#include "sim/pmu.h"
#include "support/check.h"
#include "support/rng.h"
#include "target/gpu_spec.h"
#include "tuner/space.h"
#include "verify/verifier.h"
#include "workloads/ops.h"

namespace alcop {
namespace {

using namespace alcop::ir;  // NOLINT(build/namespaces) - test IR building

BufferRegion Region(const Buffer& buffer, std::vector<Expr> offsets,
                    std::vector<int64_t> sizes) {
  BufferRegion region;
  region.buffer = buffer;
  region.offsets = std::move(offsets);
  region.sizes = std::move(sizes);
  return region;
}

Stmt AsyncCopy(BufferRegion dst, BufferRegion src, int group) {
  Stmt stmt = Copy(std::move(dst), std::move(src));
  auto node =
      std::make_shared<CopyNode>(*static_cast<const CopyNode*>(stmt.get()));
  node->is_async = true;
  node->pipeline_group = group;
  return node;
}

bool HasCode(const analysis::LintResult& result, const std::string& code) {
  for (const verify::Diagnostic& diag : result.diagnostics) {
    if (diag.code == code) return true;
  }
  return false;
}

size_t CountCode(const analysis::LintResult& result, const std::string& code) {
  size_t n = 0;
  for (const verify::Diagnostic& diag : result.diagnostics) {
    n += diag.code == code;
  }
  return n;
}

// ---- Interval algebra vs. brute force ----

// Random expression over up to three loop variables; floordiv/floormod
// right sides are drawn as positive constants so EvalInterval can bound
// them (non-constant divisors are exercised separately).
Expr RandomExpr(Rng& rng, const std::vector<Var>& vars, int depth) {
  if (depth == 0 || rng.UniformInt(0, 3) == 0) {
    if (rng.UniformInt(0, 1) == 0) {
      return vars[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(vars.size()) - 1))];
    }
    return Int(rng.UniformInt(-6, 6));
  }
  ExprKind kinds[] = {ExprKind::kAdd,      ExprKind::kSub,
                      ExprKind::kMul,      ExprKind::kFloorDiv,
                      ExprKind::kFloorMod, ExprKind::kMin,
                      ExprKind::kMax,      ExprKind::kLT,
                      ExprKind::kLE,       ExprKind::kEQ,
                      ExprKind::kAnd,      ExprKind::kOr};
  ExprKind kind = kinds[rng.UniformInt(0, 11)];
  Expr a = RandomExpr(rng, vars, depth - 1);
  Expr b;
  if (kind == ExprKind::kFloorDiv || kind == ExprKind::kFloorMod) {
    b = Int(rng.UniformInt(1, 5));
  } else {
    b = RandomExpr(rng, vars, depth - 1);
  }
  return Binary(kind, std::move(a), std::move(b));
}

TEST(IntervalTest, RandomExpressionsAreSoundAndExactWhenClaimed) {
  Var i = MakeVar("i");
  Var j = MakeVar("j");
  Var k = MakeVar("k");
  std::vector<Var> vars = {i, j, k};
  std::vector<analysis::VarRange> ranges = {
      {i.get(), 5}, {j.get(), 4}, {k.get(), 3}};

  size_t evaluated = 0;
  size_t exact = 0;
  for (uint64_t seed = 0; seed < 3000; ++seed) {
    Rng rng(seed);
    Expr e = RandomExpr(rng, vars, 4);
    analysis::Interval iv;
    if (!analysis::EvalInterval(e, ranges, &iv)) continue;
    ++evaluated;

    // Brute-force attained set over the rectangular nest.
    std::set<int64_t> attained;
    std::vector<VarBinding> env = {{i.get(), 0}, {j.get(), 0}, {k.get(), 0}};
    for (int64_t vi = 0; vi < 5; ++vi) {
      for (int64_t vj = 0; vj < 4; ++vj) {
        for (int64_t vk = 0; vk < 3; ++vk) {
          env[0].value = vi;
          env[1].value = vj;
          env[2].value = vk;
          attained.insert(Evaluate(e, env));
        }
      }
    }
    ASSERT_FALSE(attained.empty());
    // Containment is unconditional.
    EXPECT_GE(*attained.begin(), iv.lo) << ToString(e);
    EXPECT_LE(*attained.rbegin(), iv.hi) << ToString(e);
    if (!iv.exact) continue;
    ++exact;
    // Exactness claims the attained set IS the arithmetic progression.
    std::set<int64_t> progression;
    ASSERT_GE(iv.stride, 1) << ToString(e);
    for (int64_t v = iv.lo; v <= iv.hi; v += iv.stride) progression.insert(v);
    EXPECT_EQ(attained, progression) << ToString(e);
  }
  EXPECT_GT(evaluated, 2000u);
  EXPECT_GT(exact, 500u) << "the algebra should prove exactness often";
}

TEST(IntervalTest, AffineOffsetsStayExact) {
  // The canonical lowered offset shape: tb * 64 + w * 16 + i.
  Var tb = MakeVar("tb");
  Var w = MakeVar("w");
  Var i = MakeVar("i");
  std::vector<analysis::VarRange> ranges = {
      {tb.get(), 4}, {w.get(), 4}, {i.get(), 16}};
  Expr offset = Add(Add(Mul(tb, 64), Mul(w, 16)), i);
  analysis::Interval iv;
  ASSERT_TRUE(analysis::EvalInterval(offset, ranges, &iv));
  EXPECT_TRUE(iv.exact);
  EXPECT_EQ(iv.lo, 0);
  EXPECT_EQ(iv.hi, 255);
  EXPECT_EQ(iv.stride, 1);

  // The rolling slot index: (ko) % 3 over a long loop covers 0..2.
  Var ko = MakeVar("ko");
  std::vector<analysis::VarRange> ko_range = {{ko.get(), 64}};
  ASSERT_TRUE(analysis::EvalInterval(FloorMod(ko, 3), ko_range, &iv));
  EXPECT_TRUE(iv.exact);
  EXPECT_EQ(iv.lo, 0);
  EXPECT_EQ(iv.hi, 2);
  EXPECT_EQ(iv.stride, 1);
}

// ---- Bad-program table: each row one documented L-code ----

struct Fixture {
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {8, 8});
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {2, 8});
  Buffer out = MakeBuffer("out", MemScope::kGlobal, {8, 8});
};

// L001: constant offset provably past the shared buffer's extent.
TEST(LintTest, ProvableOutOfBoundsIsL001) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Copy(Region(f.buf, {Int(1), Int(0)}, {2, 8}),  // rows 1..2 of a [2,8]
           Region(f.src, {Int(0), Int(0)}, {2, 8})),
  });
  analysis::LintResult result = analysis::LintProgram(program);
  EXPECT_TRUE(HasCode(result, "L001")) << result.Render();
  EXPECT_TRUE(result.HasErrors());
  EXPECT_TRUE(result.HasBoundsError());
}

// L001 through a loop: the interval of ko*2 over ko in 0..3 tops out at 6,
// and rows 6..7 of an [8,8] fit — but a [2,8] destination does not.
TEST(LintTest, LoopCarriedOutOfBoundsIsL001) {
  Fixture f;
  Var ko = MakeVar("ko");
  Stmt program = Block({
      Alloc(f.buf),
      For(ko, 4, ForKind::kSerial,
          Copy(Region(f.buf, {ko, Int(0)}, {1, 8}),  // ko=2,3 overflow
               Region(f.src, {ko, Int(0)}, {1, 8}))),
  });
  analysis::LintResult result = analysis::LintProgram(program);
  EXPECT_TRUE(HasCode(result, "L001")) << result.Render();
  EXPECT_EQ(CountCode(result, "L001"), 1u) << "one finding per site";
}

// Guard awareness: the same overflowing offset under the pipeline
// transformation's tail-clipping guard is clean — only the unguarded
// variant is a provable violation.
TEST(LintTest, TailClippingGuardSuppressesFalsePositive) {
  Fixture f;
  Var ko = MakeVar("ko");
  auto body = [&] {
    return Copy(Region(f.buf, {ko, Int(0)}, {1, 8}),
                Region(f.src, {ko, Int(0)}, {1, 8}));
  };
  Stmt guarded = Block({
      Alloc(f.buf),
      For(ko, 4, ForKind::kSerial,
          IfThenElse(Binary(ExprKind::kLT, ko, Int(2)), body())),
  });
  analysis::LintResult clean = analysis::LintProgram(guarded);
  EXPECT_FALSE(HasCode(clean, "L001")) << clean.Render();
  EXPECT_FALSE(clean.HasBoundsError());

  Stmt unguarded = Block({
      Alloc(f.buf),
      For(ko, 4, ForKind::kSerial, body()),
  });
  EXPECT_TRUE(analysis::LintProgram(unguarded).HasBoundsError());

  // An else-branch is the negated guard: routing the copy through the
  // *else* of (ko >= 2) keeps it equally clean.
  Stmt negated = Block({
      Alloc(f.buf),
      For(ko, 4, ForKind::kSerial,
          IfThenElse(Binary(ExprKind::kGE, ko, Int(2)), Barrier(), body())),
  });
  EXPECT_FALSE(analysis::LintProgram(negated).HasBoundsError());
}

// L002: an offset no loop binds cannot be decided statically.
TEST(LintTest, UnboundOffsetVariableIsL002) {
  Fixture f;
  Var ghost = MakeVar("ghost");
  Stmt program = Block({
      Alloc(f.buf),
      Copy(Region(f.buf, {ghost, Int(0)}, {1, 8}),
           Region(f.src, {Int(0), Int(0)}, {1, 8})),
  });
  analysis::LintResult result = analysis::LintProgram(program);
  EXPECT_TRUE(HasCode(result, "L002")) << result.Render();
  EXPECT_FALSE(result.HasBoundsError()) << "unprovable is not provably OOB";
}

// L002: a non-affine offset over a nest too large to enumerate within the
// configured budget degrades to a may-warning instead of a verdict.
TEST(LintTest, EnumerationBudgetOverflowIsL002) {
  Buffer wide = MakeBuffer("wide", MemScope::kGlobal, {512});
  Buffer dst = MakeBuffer("dst", MemScope::kShared, {512});
  Var a = MakeVar("a");
  Var b = MakeVar("b");
  Stmt program = Block({
      Alloc(dst),
      For(a, 40, ForKind::kSerial,
          For(b, 40, ForKind::kSerial,
              Copy(Region(dst, {Min(Mul(a, 16), Mul(b, 16))}, {1}),
                   Region(wide, {Int(0)}, {1})))),
  });
  analysis::LintOptions options;
  options.max_enumeration = 1000;  // 40*40 = 1600 combos exceeds this
  analysis::LintResult result = analysis::LintProgram(program, options);
  EXPECT_TRUE(HasCode(result, "L002")) << result.Render();
}

// L003: a read of a region an in-flight (committed, never waited-on)
// async write covers — the region-level generalization of V001.
TEST(LintTest, ReadOfInFlightRegionIsL003) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Copy(Region(f.out, {Int(0), Int(0)}, {1, 8}),
           Region(f.buf, {Int(0), Int(0)}, {1, 8})),
  });
  analysis::LintResult result = analysis::LintProgram(program);
  EXPECT_TRUE(HasCode(result, "L003")) << result.Render();
  EXPECT_TRUE(result.HasErrors());

  // Reading a disjoint region of the same buffer is fine: region
  // granularity is exactly what the slot-granular verifier cannot see.
  Stmt disjoint = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 4}),
                Region(f.src, {Int(0), Int(0)}, {1, 4}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Copy(Region(f.out, {Int(0), Int(0)}, {1, 4}),
           Region(f.buf, {Int(1), Int(4)}, {1, 4})),
  });
  EXPECT_FALSE(HasCode(analysis::LintProgram(disjoint), "L003"));

  // And a consumer_wait promotes the write, making the read legal.
  Stmt waited = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Sync(SyncKind::kConsumerWait, 0, {f.buf}),
      Copy(Region(f.out, {Int(0), Int(0)}, {1, 8}),
           Region(f.buf, {Int(0), Int(0)}, {1, 8})),
  });
  EXPECT_FALSE(HasCode(analysis::LintProgram(waited), "L003"));
}

// L004: two live commit groups partially aliasing one region (the
// region-level rolling-index symptom).
TEST(LintTest, OverlappingLiveWritesAreL004) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 6}),
                Region(f.src, {Int(0), Int(0)}, {1, 6}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(4)}, {1, 4}),  // cols 4..7 vs 0..5
                Region(f.src, {Int(0), Int(0)}, {1, 4}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
  });
  analysis::LintResult result = analysis::LintProgram(program);
  EXPECT_TRUE(HasCode(result, "L004")) << result.Render();

  // Disjoint slots (the correct rolling pattern) raise nothing.
  Stmt rolling = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(1), Int(0)}, {1, 8}),
                Region(f.src, {Int(1), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
  });
  EXPECT_FALSE(HasCode(analysis::LintProgram(rolling), "L004"));
}

// L005: an unswizzled strided shared access whose geometric conflict
// degree exceeds the calibrated model factor.
TEST(LintTest, StridedUnswizzledAccessIsL005) {
  Buffer shared = MakeBuffer("A_shared", MemScope::kShared, {64, 64});
  Buffer reg = MakeBuffer("A_reg", MemScope::kRegister, {32, 16});
  Stmt program = Block({
      Alloc(shared),
      Alloc(reg),
      Copy(Region(reg, {Int(0), Int(0)}, {32, 16}),
           Region(shared, {Int(0), Int(0)}, {32, 16})),
  });
  analysis::LintOptions options;
  options.swizzle = false;
  analysis::LintResult result = analysis::LintProgram(program, options);
  EXPECT_TRUE(HasCode(result, "L005")) << result.Render();
  ASSERT_TRUE(result.bank.has_value());
  // 32 lanes stepping a 128-byte row stride all land in bank 0.
  EXPECT_EQ(result.bank->max_degree, 32);
  EXPECT_DOUBLE_EQ(result.bank->sim_divisor,
                   target::AmpereSpec().bank_conflict_factor);

  // The swizzled layout removes both the finding and the divisor.
  analysis::LintResult swizzled = analysis::LintProgram(program);
  EXPECT_FALSE(HasCode(swizzled, "L005"));
  ASSERT_TRUE(swizzled.bank.has_value());
  EXPECT_EQ(swizzled.bank->max_degree, 1);
  EXPECT_DOUBLE_EQ(swizzled.bank->sim_divisor, 1.0);
}

TEST(LintTest, ConflictDegreeGeometry) {
  // fp16 [64, 32]: row stride 64 B -> lanes alternate banks 0/16, 16
  // distinct words per bank.
  Buffer b32 = MakeBuffer("b32", MemScope::kShared, {64, 32});
  EXPECT_EQ(analysis::ConflictDegree(
                Region(b32, {Int(0), Int(0)}, {32, 8})),
            16);
  // fp16 [64, 64]: row stride 128 B -> all 32 lanes in bank 0.
  Buffer b64 = MakeBuffer("b64", MemScope::kShared, {64, 64});
  EXPECT_EQ(analysis::ConflictDegree(
                Region(b64, {Int(0), Int(0)}, {32, 8})),
            32);
  // A contiguous row: consecutive lanes share or neighbor words,
  // broadcast/parallel, conflict-free.
  EXPECT_EQ(analysis::ConflictDegree(
                Region(b64, {Int(0), Int(0)}, {1, 32})),
            1);
  // Single element: trivially conflict-free.
  EXPECT_EQ(analysis::ConflictDegree(
                Region(b64, {Int(0), Int(0)}, {1, 1})),
            1);
}

// L006: a threadblock whose resources cannot fit one SM.
TEST(LintTest, OversizedThreadblockIsL006) {
  Buffer huge = MakeBuffer("huge", MemScope::kShared, {1024, 1024});  // 2 MB
  Buffer out = MakeBuffer("out", MemScope::kGlobal, {1024, 1024});
  Stmt program = Block({
      Alloc(huge),
      Copy(Region(out, {Int(0), Int(0)}, {1, 8}),
           Region(huge, {Int(0), Int(0)}, {1, 8})),
  });
  analysis::LintResult result = analysis::LintProgram(program);
  EXPECT_TRUE(HasCode(result, "L006")) << result.Render();
  ASSERT_TRUE(result.feasibility.has_value());
  EXPECT_FALSE(result.feasibility->feasible);
  EXPECT_NE(result.feasibility->reason.find("threadblock does not fit"),
            std::string::npos)
      << result.feasibility->reason;
}

// ---- Guard-aware execution counting ----

TEST(LintTest, CountExecutionsHonorsGuards) {
  Fixture f;
  Var ko = MakeVar("ko");
  Var w = MakeVar("w");
  Stmt program = Block({
      Alloc(f.buf),
      For(w, 2, ForKind::kWarp,
          For(ko, 4, ForKind::kSerial,
              IfThenElse(Binary(ExprKind::kLT, Add(ko, 1), Int(4)),
                         Copy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                              Region(f.src, {ko, Int(0)}, {1, 8}))))),
  });
  analysis::AnalysisContext ctx(program, {});
  const analysis::Site* copy_site = nullptr;
  for (const analysis::Site& site : ctx.sites()) {
    if (site.stmt->kind == StmtKind::kCopy) copy_site = &site;
  }
  ASSERT_NE(copy_site, nullptr);
  // ko in 0..3 guarded by ko+1 < 4 runs 3 of 4 iterations, times 2 warps.
  EXPECT_EQ(ctx.CountExecutions(*copy_site), 6);
  EXPECT_EQ(ctx.NumWarps(), 2);
}

// ---- Diagnostic ordering and the shared JSON renderer ----

TEST(DiagnosticSortTest, SortsByLineColumnCodeAndStaysStable) {
  std::vector<verify::Diagnostic> diags;
  auto push = [&](int line, int col, const char* code, const char* msg) {
    verify::Diagnostic d;
    d.code = code;
    d.message = msg;
    d.span = {line, col};
    diags.push_back(d);
  };
  push(7, 2, "L003", "third");
  push(3, 9, "L001", "second");
  push(3, 1, "V006", "first-b");
  push(0, 0, "L006", "spanless");
  push(3, 1, "L001", "first-a");
  push(7, 2, "L003", "third-dup");

  verify::SortDiagnostics(&diags);
  std::vector<std::string> order;
  for (const verify::Diagnostic& d : diags) order.push_back(d.message);
  EXPECT_EQ(order,
            (std::vector<std::string>{"spanless", "first-a", "first-b",
                                      "second", "third", "third-dup"}));
}

TEST(DiagnosticJsonTest, GoldenSchema) {
  std::vector<verify::Diagnostic> diags;
  verify::Diagnostic a;
  a.severity = verify::Severity::kError;
  a.code = "L001";
  a.message = "provable out-of-bounds access to 'buf'";
  a.path = "for ko / copy(buf)";
  a.span = {12, 5};
  a.notes.push_back("note \"quoted\"");
  diags.push_back(a);
  verify::Diagnostic b;
  b.severity = verify::Severity::kWarning;
  b.code = "L002";
  b.message = "cannot prove bounds";
  diags.push_back(b);

  const char* golden =
      "[\n"
      "  {\"severity\": \"error\", \"code\": \"L001\", \"line\": 12, "
      "\"column\": 5, \"message\": \"provable out-of-bounds access to "
      "'buf'\", \"path\": \"for ko / copy(buf)\", \"notes\": [\"note "
      "\\\"quoted\\\"\"]},\n"
      "  {\"severity\": \"warning\", \"code\": \"L002\", \"line\": 0, "
      "\"column\": 0, \"message\": \"cannot prove bounds\", \"path\": \"\", "
      "\"notes\": []}\n"
      "]";
  EXPECT_EQ(verify::DiagnosticsToJson(diags), golden);
  EXPECT_EQ(verify::DiagnosticsToJson({}), "[]");
}

TEST(LintTest, ParsedProgramCarriesSpansIntoDiagnostics) {
  const char* text =
      "alloc src: global fp16[4, 8]\n"
      "alloc buf: shared fp16[2, 8]\n"
      "copy buf[1, 0][2, 8] <- src[0, 0][2, 8]\n";
  ir::Stmt program = ir::ParseStmt(text);
  analysis::LintResult result = analysis::LintProgram(program);
  ASSERT_TRUE(HasCode(result, "L001")) << result.Render();
  for (const verify::Diagnostic& diag : result.diagnostics) {
    if (diag.code != "L001") continue;
    EXPECT_EQ(diag.span.line, 3) << result.Render();
    EXPECT_TRUE(diag.span.IsKnown());
    EXPECT_NE(diag.Render().find("line 3:"), std::string::npos);
  }
  // The rendered block names the buffer, scope and the offending range.
  EXPECT_NE(result.Render().find("'buf' (shared scope)"), std::string::npos)
      << result.Render();
}

TEST(LintTest, DiagnosticsAreSortedBySourcePosition) {
  const char* text =
      "alloc src: global fp16[4, 8]\n"
      "alloc buf: shared fp16[2, 8]\n"
      "alloc out: global fp16[4, 8]\n"
      "buf.producer_acquire  @group0\n"
      "copy.async buf[0, 0][1, 8] <- src[0, 0][1, 8]  @group0\n"
      "buf.producer_commit  @group0\n"
      "copy out[0, 0][1, 8] <- buf[0, 0][1, 8]\n"
      "copy buf[1, 0][2, 8] <- src[0, 0][2, 8]\n";
  ir::Stmt program = ir::ParseStmt(text);
  analysis::LintResult result = analysis::LintProgram(program);
  // L003 (line 7, the racy read) must precede L001 (line 8, the OOB
  // write) regardless of the pass order that produced them.
  ASSERT_TRUE(HasCode(result, "L003")) << result.Render();
  ASSERT_TRUE(HasCode(result, "L001")) << result.Render();
  int last_line = 0;
  for (const verify::Diagnostic& diag : result.diagnostics) {
    EXPECT_GE(diag.span.line, last_line) << result.Render();
    last_line = diag.span.line;
  }
}

// ---- Resource estimator vs. the schedule-arithmetic path ----

TEST(LintTest, ConfigFeasibilityMirrorsSimulatorVerdict) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = schedule::MakeMatmul("feas", 512, 512, 512);

  // An occupancy-infeasible config: 256x256 tiles at 4 shared stages want
  // 256 KB of shared memory.
  schedule::ScheduleConfig big;
  big.tile = {.tb_m = 256, .tb_n = 256, .tb_k = 64,
              .warp_m = 64, .warp_n = 64, .warp_k = 16};
  big.smem_stages = 4;
  big.reg_stages = 2;
  analysis::StaticFeasibility verdict =
      analysis::CheckConfigFeasibility(op, big, spec);
  EXPECT_FALSE(verdict.feasible);
  sim::KernelTiming timing = sim::CompileAndSimulate(op, big, spec);
  EXPECT_FALSE(timing.feasible);
  EXPECT_EQ(verdict.reason, timing.reason) << "verbatim string agreement";

  // An invalid tiling is rejected with the simulator's exact wording too.
  schedule::ScheduleConfig bad;
  bad.tile = {.tb_m = 48, .tb_n = 32, .tb_k = 32,
              .warp_m = 32, .warp_n = 16, .warp_k = 16};
  analysis::StaticFeasibility invalid =
      analysis::CheckConfigFeasibility(op, bad, spec);
  EXPECT_FALSE(invalid.feasible);
  EXPECT_EQ(invalid.reason, sim::CompileAndSimulate(op, bad, spec).reason);

  // A known-good config agrees on feasibility as well.
  schedule::ScheduleConfig good;
  good.tile = {.tb_m = 64, .tb_n = 64, .tb_k = 32,
               .warp_m = 32, .warp_n = 32, .warp_k = 16};
  good.smem_stages = 2;
  EXPECT_TRUE(analysis::CheckConfigFeasibility(op, good, spec).feasible);
  EXPECT_TRUE(sim::CompileAndSimulate(op, good, spec).feasible);
}

// ---- Zero findings over every compiled Fig. 10 kernel, and the
// IR-derived resource estimate reproduces the schedule arithmetic ----

class LintCleanTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LintCleanTest, CompiledKernelsLintClean) {
  const schedule::GemmOp& op = workloads::BenchmarkOps()[GetParam()];
  target::GpuSpec spec = target::AmpereSpec();
  std::vector<schedule::ScheduleConfig> space = tuner::EnumerateSpace(op);
  ASSERT_FALSE(space.empty()) << op.name;
  schedule::ScheduleConfig config = space.front();
  for (const schedule::ScheduleConfig& candidate : space) {
    if (candidate.smem_stages >= 3 && candidate.reg_stages >= 2) {
      config = candidate;
      break;
    }
  }
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);

  analysis::LintOptions options;
  options.swizzle = config.swizzle;
  analysis::LintResult result =
      analysis::LintProgram(compiled.transformed.stmt, options);
  EXPECT_TRUE(result.Clean()) << op.name << "\n" << result.Render();

  ASSERT_TRUE(result.feasibility.has_value()) << op.name;
  EXPECT_TRUE(result.feasibility->feasible) << op.name;

  // When every buffer pipelines as scheduled, the IR walk must reproduce
  // schedule::ComputeResources exactly (the allocations carry the stage
  // expansion; warp loops carry the warp count).
  bool fully_pipelined = true;
  for (const pipeline::DetectionEntry& entry : compiled.detection.entries) {
    fully_pipelined = fully_pipelined && entry.eligible;
  }
  target::ThreadblockResources expected =
      schedule::ComputeResources(compiled.kernel.op, compiled.kernel.config);
  if (fully_pipelined) {
    EXPECT_EQ(result.feasibility->resources.smem_bytes, expected.smem_bytes)
        << op.name;
    EXPECT_EQ(result.feasibility->resources.reg_bytes, expected.reg_bytes)
        << op.name;
  }
  EXPECT_EQ(result.feasibility->resources.warps, expected.warps) << op.name;

  // The lowered (pre-transform) kernel is equally clean.
  analysis::LintResult lowered =
      analysis::LintProgram(compiled.kernel.stmt, options);
  EXPECT_FALSE(lowered.HasErrors()) << op.name << "\n" << lowered.Render();
}

INSTANTIATE_TEST_SUITE_P(
    Fig10, LintCleanTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return workloads::BenchmarkOps()[info.param].name;
    });

// ---- Bank model vs. the simulator's PMU counters ----

TEST(BankCrossCheckTest, PredictedLdsTrafficMatchesPmu) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = schedule::MakeMatmul("bank", 2048, 2048, 2048);
  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  config.smem_stages = 3;
  config.reg_stages = 2;
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);

  analysis::LintOptions options;
  options.swizzle = config.swizzle;
  analysis::LintResult result =
      analysis::LintProgram(compiled.transformed.stmt, options);
  ASSERT_TRUE(result.bank.has_value());

  sim::KernelPmu pmu;
  sim::KernelTiming timing = sim::InterpretKernel(compiled, spec, &pmu);
  ASSERT_TRUE(timing.feasible);
  ASSERT_TRUE(pmu.collected);

  // Scale the steady-state batch counters to the whole launch exactly the
  // way the PMU conservation test does.
  int64_t total = compiled.kernel.TotalThreadblocks();
  int64_t per_batch =
      static_cast<int64_t>(timing.threadblocks_per_sm) * spec.num_sms;
  int64_t wave_total = std::min(total, per_batch);
  double wave_tbs = static_cast<double>(std::min<int64_t>(
      timing.threadblocks_per_sm,
      (wave_total + spec.num_sms - 1) / spec.num_sms));
  double pmu_kernel_lds =
      pmu.batch.lds_read_bytes / wave_tbs * static_cast<double>(total);

  // The static prediction sums region bytes times guard-aware execution
  // counts over the whole nest — prologue fetches and clipped tails
  // included — so it must match the simulator's counter exactly.
  EXPECT_NEAR(result.bank->predicted_lds_read_bytes, pmu_kernel_lds,
              1e-6 * pmu_kernel_lds);
}

TEST(BankCrossCheckTest, SwizzleDivisorMatchesSimulatedLdsSlowdown) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = schedule::MakeMatmul("bank", 1024, 1024, 1024);
  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  config.smem_stages = 2;
  config.reg_stages = 2;

  auto lds_cycles = [&](bool swizzle) {
    schedule::ScheduleConfig c = config;
    c.swizzle = swizzle;
    sim::CompiledKernel compiled = sim::CompileKernel(op, c, spec);
    sim::KernelPmu pmu;
    sim::KernelTiming timing = sim::InterpretKernel(compiled, spec, &pmu);
    EXPECT_TRUE(timing.feasible);
    return pmu.batch.lds_active_cycles;
  };
  auto divisor = [&](bool swizzle) {
    schedule::ScheduleConfig c = config;
    c.swizzle = swizzle;
    sim::CompiledKernel compiled = sim::CompileKernel(op, c, spec);
    analysis::LintOptions options;
    options.swizzle = swizzle;
    analysis::LintResult result =
        analysis::LintProgram(compiled.transformed.stmt, options);
    EXPECT_TRUE(result.bank.has_value());
    return result.bank->sim_divisor;
  };

  // The simulator charges the LDS pipe exactly bank_conflict_factor times
  // longer without the swizzled layout; the analyzer's reported divisor
  // predicts that ratio, and its geometric degree upper-bounds it.
  double ratio = lds_cycles(false) / lds_cycles(true);
  double predicted = divisor(false) / divisor(true);
  EXPECT_NEAR(ratio, predicted, 1e-9);
  EXPECT_NEAR(predicted, spec.bank_conflict_factor, 1e-12);
}

// ---- Index-mutation fuzz differential ----
//
// For a sample of (statement, region, dim) offset sites of compiled
// kernels, each index mutation must drive the static bounds checker and
// the executor's dynamic region checks to the same verdict: the mutant
// either carries a provable L001 *and* throws at runtime, or neither.
// Async-semantics checking is off so index mutations are judged on
// bounds alone (a doubled slot index can also be a sync race, which is
// the race pass's business, not the bounds checker's).

TEST(BoundsMutationDifferential, StaticVerdictMatchesExecutor) {
  const target::GpuSpec spec = target::AmpereSpec();
  struct Case {
    int64_t k;
    int smem_stages;
    int reg_stages;
    bool inner_fusion;
  };
  const Case cases[] = {
      {96, 3, 2, true},
      {96, 3, 2, false},
      {64, 2, 2, true},
      {64, 2, 2, false},
  };
  const analysis::IndexMutation kMutations[] = {
      analysis::IndexMutation::kPlusOne,
      analysis::IndexMutation::kMinusOne,
      analysis::IndexMutation::kPlusExtent,
      analysis::IndexMutation::kScaleTwo,
      analysis::IndexMutation::kSetZero,
  };

  Rng data_rng(0xB0047);
  int total = 0;
  int static_oob = 0;
  for (const Case& c : cases) {
    schedule::GemmOp op = schedule::MakeMatmul("boundsfuzz", 32, 32, c.k);
    schedule::ScheduleConfig config;
    config.tile = {.tb_m = 32, .tb_n = 32, .tb_k = 32,
                   .warp_m = 16, .warp_n = 16, .warp_k = 16};
    config.smem_stages = c.smem_stages;
    config.reg_stages = c.reg_stages;
    config.inner_fusion = c.inner_fusion;
    sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
    const ir::Stmt& program = compiled.transformed.stmt;

    ASSERT_FALSE(analysis::LintProgram(program).HasBoundsError());

    std::vector<float> a(static_cast<size_t>(op.m * op.k));
    std::vector<float> b(static_cast<size_t>(op.n * op.k));
    for (float& v : a) v = static_cast<float>(data_rng.Uniform(-1, 1));
    for (float& v : b) v = static_cast<float>(data_rng.Uniform(-1, 1));

    std::vector<analysis::IndexSite> sites =
        analysis::ListIndexSites(program);
    ASSERT_GT(sites.size(), 10u);
    for (size_t s = 0; s < sites.size(); ++s) {
      for (analysis::IndexMutation mutation : kMutations) {
        ir::Stmt mutant = analysis::MutateIndexSite(program, sites[s],
                                                    mutation);
        ++total;
        bool static_fails =
            analysis::LintProgram(mutant).HasBoundsError();
        static_oob += static_fails;
        bool dynamic_fails = false;
        try {
          sim::Executor exec({/*check_async_semantics=*/false});
          exec.Bind(compiled.kernel.a, a);
          exec.Bind(compiled.kernel.b, b);
          exec.Run(mutant);
        } catch (const CheckError&) {
          dynamic_fails = true;
        }
        EXPECT_EQ(static_fails, dynamic_fails)
            << analysis::IndexMutationName(mutation) << " at site " << s
            << " (k=" << c.k << " smem=" << c.smem_stages
            << " reg=" << c.reg_stages
            << (c.inner_fusion ? " fused" : " recursive") << ")\n"
            << analysis::LintProgram(mutant).Render();
      }
    }
  }
  EXPECT_GE(total, 200) << "differential must cover at least 200 mutants";
  EXPECT_GT(static_oob, 0) << "some mutants must be provably OOB";
  EXPECT_LT(static_oob, total) << "some mutants must stay in bounds";
}

}  // namespace
}  // namespace alcop
