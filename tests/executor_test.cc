// Tests of the functional executor, focusing on the asynchronous-copy
// semantics checker: hand-built programs with deliberately broken
// synchronization must be rejected, and the failure modes must match the
// hazard (read-before-wait, capacity overflow, wait-before-commit).
#include <gtest/gtest.h>

#include "ir/stmt.h"
#include "sim/executor.h"
#include "sim/memory.h"
#include "support/check.h"

namespace alcop {
namespace {

using namespace alcop::ir;  // NOLINT(build/namespaces) - test IR building

BufferRegion Region(const Buffer& buffer, std::vector<Expr> offsets,
                    std::vector<int64_t> sizes) {
  BufferRegion region;
  region.buffer = buffer;
  region.offsets = std::move(offsets);
  region.sizes = std::move(sizes);
  return region;
}

// Marks a copy asynchronous within pipeline group `group`.
Stmt AsyncCopy(BufferRegion dst, BufferRegion src, int group) {
  Stmt stmt = Copy(std::move(dst), std::move(src));
  auto node =
      std::make_shared<CopyNode>(*static_cast<const CopyNode*>(stmt.get()));
  node->is_async = true;
  node->pipeline_group = group;
  return node;
}

struct Fixture {
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {4, 8});
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {2, 8});  // 2 stages
  Buffer out = MakeBuffer("out", MemScope::kGlobal, {4, 8});

  std::vector<float> src_data = [] {
    std::vector<float> data(32);
    for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i);
    return data;
  }();

  void Run(const Stmt& program) {
    sim::Executor exec;
    exec.Bind(src, src_data);
    exec.Run(program);
  }
};

TEST(ExecutorCheckerTest, ReadBeforeWaitThrows) {
  Fixture f;
  // async copy, commit, then read WITHOUT consumer_wait.
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Copy(Region(f.out, {Int(0), Int(0)}, {1, 8}),
           Region(f.buf, {Int(0), Int(0)}, {1, 8})),
  });
  try {
    f.Run(program);
    FAIL() << "expected a visibility violation";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("before its consumer_wait"),
              std::string::npos)
        << e.what();
  }
}

TEST(ExecutorCheckerTest, ProperlySynchronizedReadSucceeds) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Sync(SyncKind::kConsumerWait, 0, {f.buf}),
      Copy(Region(f.out, {Int(0), Int(0)}, {1, 8}),
           Region(f.buf, {Int(0), Int(0)}, {1, 8})),
      Sync(SyncKind::kConsumerRelease, 0, {f.buf}),
  });
  EXPECT_NO_THROW(f.Run(program));
}

TEST(ExecutorCheckerTest, WaitBeforeCommitThrows) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kConsumerWait, 0, {f.buf}),
  });
  try {
    f.Run(program);
    FAIL() << "expected a wait-on-uncommitted-group error";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("groups were committed"),
              std::string::npos)
        << e.what();
  }
}

TEST(ExecutorCheckerTest, PipelineCapacityOverflowThrows) {
  Fixture f;
  // The buffer has 2 stages; acquiring a third slot without releases must
  // fail at producer_acquire.
  std::vector<Stmt> seq = {Alloc(f.buf)};
  for (int i = 0; i < 3; ++i) {
    seq.push_back(Sync(SyncKind::kProducerAcquire, 0, {f.buf}));
    seq.push_back(AsyncCopy(Region(f.buf, {Int(i % 2), Int(0)}, {1, 8}),
                            Region(f.src, {Int(i), Int(0)}, {1, 8}), 0));
    seq.push_back(Sync(SyncKind::kProducerCommit, 0, {f.buf}));
  }
  try {
    f.Run(Block(seq));
    FAIL() << "expected a capacity violation";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("without pipeline capacity"),
              std::string::npos)
        << e.what();
  }
}

TEST(ExecutorCheckerTest, ReleaseBeyondCommitsThrows) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kConsumerRelease, 0, {f.buf}),
  });
  EXPECT_THROW(f.Run(program), CheckError);
}

TEST(ExecutorCheckerTest, CheckingCanBeDisabled) {
  Fixture f;
  // Same mis-synchronized program as ReadBeforeWaitThrows, but with the
  // checker off the data flows (sequential interpretation).
  Stmt program = Block({
      Alloc(f.buf),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Copy(Region(f.out, {Int(0), Int(0)}, {1, 8}),
           Region(f.buf, {Int(0), Int(0)}, {1, 8})),
  });
  sim::Executor exec({.check_async_semantics = false});
  exec.Bind(f.src, f.src_data);
  EXPECT_NO_THROW(exec.Run(program));
  EXPECT_EQ(exec.Data(f.out)[0], 0.0f);
  EXPECT_EQ(exec.Data(f.out)[7], 7.0f);
}

// The dynamic checker's reports flow through the Diagnostic engine: the
// text carries the stable X-code, the buffer name, the group index, and
// the statement path (loop iteration included) pointing at the failure.
TEST(ExecutorCheckerTest, FailureReportsCodeBufferGroupAndPath) {
  Fixture f;
  Var i = MakeVar("i");
  // Three acquires of a 2-stage FIFO without releases: iteration i=2 must
  // trip the capacity check.
  Stmt program = Block({
      Alloc(f.buf),
      For(i, 3, ForKind::kSerial,
          Block({
              Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
              AsyncCopy(Region(f.buf, {FloorMod(i, 2), Int(0)}, {1, 8}),
                        Region(f.src, {i, Int(0)}, {1, 8}), 0),
              Sync(SyncKind::kProducerCommit, 0, {f.buf}),
          })),
  });
  try {
    f.Run(program);
    FAIL() << "expected a capacity violation";
  } catch (const CheckError& e) {
    std::string text = e.what();
    EXPECT_NE(text.find("error[X002]"), std::string::npos) << text;
    EXPECT_NE(text.find("'buf'"), std::string::npos) << text;
    EXPECT_NE(text.find("group 0"), std::string::npos) << text;
    EXPECT_NE(text.find("for i=2"), std::string::npos) << text;
    EXPECT_NE(text.find("producer_acquire"), std::string::npos) << text;
  }
}

// Read-before-wait failures name the hazardous read's buffer and path.
TEST(ExecutorCheckerTest, ReadBeforeWaitNamesBufferAndReader) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Copy(Region(f.out, {Int(0), Int(0)}, {1, 8}),
           Region(f.buf, {Int(0), Int(0)}, {1, 8})),
  });
  try {
    f.Run(program);
    FAIL() << "expected a visibility violation";
  } catch (const CheckError& e) {
    std::string text = e.what();
    EXPECT_NE(text.find("error[X001]"), std::string::npos) << text;
    EXPECT_NE(text.find("'buf'"), std::string::npos) << text;
    EXPECT_NE(text.find("copy(buf)"), std::string::npos) << text;
  }
}

TEST(ExecutorTest, OutOfBoundsRegionThrows) {
  Fixture f;
  Stmt program = Copy(Region(f.out, {Int(3), Int(4)}, {1, 8}),  // 4+8 > 8
                      Region(f.src, {Int(0), Int(0)}, {1, 8}));
  EXPECT_THROW(f.Run(program), CheckError);
}

TEST(ExecutorTest, NegativeOffsetThrows) {
  Fixture f;
  Stmt program = Copy(Region(f.out, {Int(-1), Int(0)}, {1, 8}),
                      Region(f.src, {Int(0), Int(0)}, {1, 8}));
  EXPECT_THROW(f.Run(program), CheckError);
}

TEST(ExecutorTest, ShapeMismatchThrows) {
  Fixture f;
  // Equal element counts but different non-singleton shapes (2x4 vs 8).
  Buffer square = MakeBuffer("square", MemScope::kGlobal, {2, 4});
  Stmt program = Copy(Region(square, {Int(0), Int(0)}, {2, 4}),
                      Region(f.src, {Int(0), Int(0)}, {1, 8}));
  EXPECT_THROW(f.Run(program), CheckError);
}

TEST(ExecutorTest, AccumulateCopyAdds) {
  Fixture f;
  Stmt program = Block({
      Copy(Region(f.out, {Int(0), Int(0)}, {1, 8}),
           Region(f.src, {Int(0), Int(0)}, {1, 8})),
      AccumulateCopy(Region(f.out, {Int(0), Int(0)}, {1, 8}),
                     Region(f.src, {Int(1), Int(0)}, {1, 8})),
  });
  sim::Executor exec;
  exec.Bind(f.src, f.src_data);
  exec.Run(program);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(exec.Data(f.out)[static_cast<size_t>(i)],
              f.src_data[static_cast<size_t>(i)] +
                  f.src_data[static_cast<size_t>(8 + i)]);
  }
}

TEST(ExecutorTest, EwiseCopyAppliesFunction) {
  Fixture f;
  Stmt program = Copy(Region(f.out, {Int(0), Int(0)}, {1, 8}),
                      Region(f.src, {Int(0), Int(0)}, {1, 8}),
                      EwiseOp::kScale, 2.0);
  sim::Executor exec;
  exec.Bind(f.src, f.src_data);
  exec.Run(program);
  EXPECT_EQ(exec.Data(f.out)[3], 6.0f);
}

TEST(ExecutorTest, FillAndIfThenElse) {
  Fixture f;
  Var i = MakeVar("i");
  Stmt program = For(
      i, 4, ForKind::kSerial,
      IfThenElse(Binary(ExprKind::kLT, i, Int(2)),
                 Fill(Region(f.out, {i, Int(0)}, {1, 8}), 1.0),
                 Fill(Region(f.out, {i, Int(0)}, {1, 8}), 2.0)));
  sim::Executor exec;
  exec.Run(program);
  EXPECT_EQ(exec.Data(f.out)[0], 1.0f);
  EXPECT_EQ(exec.Data(f.out)[8 * 2], 2.0f);
}

TEST(ExecutorTest, UntouchedBufferQueryThrows) {
  sim::Executor exec;
  Buffer buffer = MakeBuffer("never", MemScope::kGlobal, {4});
  EXPECT_THROW(exec.Data(buffer), CheckError);
}

TEST(ExecutorTest, BindSizeMismatchThrows) {
  sim::Executor exec;
  Buffer buffer = MakeBuffer("b", MemScope::kGlobal, {4});
  EXPECT_THROW(exec.Bind(buffer, std::vector<float>(5)), CheckError);
}

TEST(ReferenceGemmTest, KnownSmallCase) {
  // 2x2x2: C[i,j] = sum_k A[i,k]*B[j,k].
  std::vector<float> a = {1, 2, 3, 4};  // [2,2]
  std::vector<float> b = {5, 6, 7, 8};  // [2,2] (j,k layout)
  std::vector<float> c = sim::ReferenceGemm(a, b, 1, 2, 2, 2);
  EXPECT_EQ(c[0], 1 * 5 + 2 * 6);  // C[0,0]
  EXPECT_EQ(c[1], 1 * 7 + 2 * 8);  // C[0,1]
  EXPECT_EQ(c[2], 3 * 5 + 4 * 6);  // C[1,0]
  EXPECT_EQ(c[3], 3 * 7 + 4 * 8);  // C[1,1]
}

TEST(MemoryTest, RegionIndicesRowMajor) {
  Buffer buffer = MakeBuffer("b", MemScope::kGlobal, {4, 8});
  BufferRegion region = Region(buffer, {Int(1), Int(2)}, {2, 3});
  std::vector<int64_t> indices = sim::RegionIndices(region, {});
  EXPECT_EQ(indices, (std::vector<int64_t>{10, 11, 12, 18, 19, 20}));
}

TEST(MemoryTest, NonSingletonShapeDropsOnes) {
  Buffer buffer = MakeBuffer("b", MemScope::kGlobal, {1, 4, 1, 8});
  BufferRegion region = FullRegion(buffer);
  EXPECT_EQ(sim::NonSingletonShape(region), (std::vector<int64_t>{4, 8}));
}

}  // namespace
}  // namespace alcop
