// Golden-text regression test of the full compilation flow: the printed
// transformed IR of a small two-level pipelined GEMM must match this
// snapshot exactly. The snapshot is the paper's Fig. 7 structure end to
// end — prologues, shifted/wrapped indices, the inner-pipeline overflow
// carry `(ko + (ki + 1) / 2) % 3`, the guarded inner prologue, and the
// outer consumer_wait's one-group slack. Any unintended change to the
// lowering, the transformation, the simplifier or the printer shows up
// here as a readable diff.
#include <gtest/gtest.h>

#include "ir/printer.h"
#include "sim/launch.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace {

constexpr const char* kGolden =
    R"(for bi in 0..1 blockIdx {
  for bm in 0..2 blockIdx {
    for bn in 0..2 blockIdx {
      pragma pipeline_stages(A_shared) = 3 {
        pragma pipeline_stages(B_shared) = 3 {
          pragma pipeline_stages(A_reg) = 2 {
            pragma pipeline_stages(B_reg) = 2 {
              alloc A_shared: shared fp16[3, 32, 16]
              alloc B_shared: shared fp16[3, 32, 16]
              alloc A_reg: register fp16[2, 2, 2, 16, 8]
              alloc B_reg: register fp16[2, 2, 2, 16, 8]
              alloc C_acc: accumulator fp32[2, 2, 16, 16]
              for wm in 0..2 warp {
                for wn in 0..2 warp {
                  fill C_acc[wm, wn, 0, 0][1, 1, 16, 16] = 0
                }
              }
              A_shared/B_shared.producer_acquire  @group0
              copy.async A_shared[0, 0, 0][1, 32, 16] <- A[bi, bm * 32, 0][1, 32, 16]  @group0
              copy.async B_shared[0, 0, 0][1, 32, 16] <- B[bi, bn * 32, 0][1, 32, 16]  @group0
              A_shared/B_shared.producer_commit  @group0
              A_shared/B_shared.producer_acquire  @group0
              copy.async A_shared[1, 0, 0][1, 32, 16] <- A[bi, bm * 32, 16][1, 32, 16]  @group0
              copy.async B_shared[1, 0, 0][1, 32, 16] <- B[bi, bn * 32, 16][1, 32, 16]  @group0
              A_shared/B_shared.producer_commit  @group0
              for ko in 0..4 serial {
                A_shared/B_shared.producer_acquire  @group0
                copy.async A_shared[(ko + 2) % 3, 0, 0][1, 32, 16] <- A[bi, bm * 32, (ko + 2) % 4 * 16][1, 32, 16]  @group0
                copy.async B_shared[(ko + 2) % 3, 0, 0][1, 32, 16] <- B[bi, bn * 32, (ko + 2) % 4 * 16][1, 32, 16]  @group0
                A_shared/B_shared.producer_commit  @group0
                A_shared/B_shared.consumer_wait(ahead=1)  @group0
                for wm in 0..2 warp {
                  for wn in 0..2 warp {
                    if ko == 0 {
                      A_reg/B_reg.producer_acquire  @group1
                      copy.async A_reg[ko * 2 % 2, wm, wn, 0, 0][1, 1, 1, 16, 8] <- A_shared[ko % 3, wm * 16, 0][1, 16, 8]  @group1
                      copy.async B_reg[ko * 2 % 2, wm, wn, 0, 0][1, 1, 1, 16, 8] <- B_shared[ko % 3, wn * 16, 0][1, 16, 8]  @group1
                      A_reg/B_reg.producer_commit  @group1
                    }
                    for ki in 0..2 serial {
                      A_reg/B_reg.producer_acquire  @group1
                      copy.async A_reg[(ko * 2 + ki + 1) % 2, wm, wn, 0, 0][1, 1, 1, 16, 8] <- A_shared[(ko + (ki + 1) / 2) % 3, wm * 16, (ki + 1) % 2 * 8][1, 16, 8]  @group1
                      copy.async B_reg[(ko * 2 + ki + 1) % 2, wm, wn, 0, 0][1, 1, 1, 16, 8] <- B_shared[(ko + (ki + 1) / 2) % 3, wn * 16, (ki + 1) % 2 * 8][1, 16, 8]  @group1
                      A_reg/B_reg.producer_commit  @group1
                      A_reg/B_reg.consumer_wait  @group1
                      mma C_acc[wm, wn, 0, 0][1, 1, 16, 16] += A_reg[(ko * 2 + ki) % 2, wm, wn, 0, 0][1, 1, 1, 16, 8] * B_reg[(ko * 2 + ki) % 2, wm, wn, 0, 0][1, 1, 1, 16, 8]
                      A_reg/B_reg.consumer_release  @group1
                    }
                  }
                }
                A_shared/B_shared.consumer_release  @group0
              }
              for wm in 0..2 warp {
                for wn in 0..2 warp {
                  copy C[bi, bm * 32 + wm * 16, bn * 32 + wn * 16][1, 16, 16] <- C_acc[wm, wn, 0, 0][1, 1, 16, 16]
                }
              }
            }
          }
        }
      }
    }
  }
}
)";

TEST(GoldenIrTest, TwoLevelPipelinedGemmSnapshot) {
  schedule::GemmOp op = schedule::MakeMatmul("small", 64, 64, 64);
  schedule::ScheduleConfig config;
  config.tile = {32, 32, 16, 16, 16, 8};
  config.smem_stages = 3;
  config.reg_stages = 2;
  sim::CompiledKernel compiled =
      sim::CompileKernel(op, config, target::AmpereSpec());
  EXPECT_EQ(ir::ToString(compiled.transformed.stmt), kGolden);
}

TEST(GoldenIrTest, PaperFig7IndexExpressionsPresent) {
  // The load-index algebra of the paper's Fig. 7, line by line:
  //   slot of the shifted smem load:       (ko + 2) % 3
  //   wrapped producer chunk:              (ko + 2) % extent_ko
  //   fused inner load with overflow carry: A_shared[(ko + (ki+1)/extent_ki) % 3][.., (ki+1) % extent_ki]
  schedule::GemmOp op = schedule::MakeMatmul("small", 64, 64, 64);
  schedule::ScheduleConfig config;
  config.tile = {32, 32, 16, 16, 16, 8};
  config.smem_stages = 3;
  config.reg_stages = 2;
  sim::CompiledKernel compiled =
      sim::CompileKernel(op, config, target::AmpereSpec());
  std::string text = ir::ToString(compiled.transformed.stmt);
  EXPECT_NE(text.find("A_shared[(ko + 2) % 3"), std::string::npos);
  EXPECT_NE(text.find("(ko + 2) % 4 * 16"), std::string::npos);
  EXPECT_NE(text.find("A_shared[(ko + (ki + 1) / 2) % 3"), std::string::npos);
  EXPECT_NE(text.find("(ki + 1) % 2 * 8"), std::string::npos);
}

}  // namespace
}  // namespace alcop
