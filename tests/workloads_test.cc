// Tests of the workload definitions and baselines: the Fig. 10 operator
// suite, the Table III model graphs, and the library/XLA kernel pickers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/check.h"
#include "target/gpu_spec.h"
#include "tuner/space.h"
#include "tuner/strategy.h"
#include "workloads/library.h"
#include "workloads/models.h"
#include "workloads/ops.h"
#include "workloads/xla.h"

namespace alcop {
namespace {

TEST(OpsTest, SuiteHasTwelveOpsOfFourFamilies) {
  const auto& ops = workloads::BenchmarkOps();
  EXPECT_EQ(ops.size(), 12u);
  std::set<schedule::OpFamily> families;
  std::set<std::string> names;
  for (const schedule::GemmOp& op : ops) {
    families.insert(op.family);
    names.insert(op.name);
    EXPECT_GT(op.Flops(), 0);
  }
  EXPECT_EQ(families.size(), 4u) << "MatMul, BMM, Conv1x1, Conv3x3";
  EXPECT_EQ(names.size(), ops.size()) << "names must be unique";
}

TEST(OpsTest, EveryOpHasANonEmptySchedulingSpace) {
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    EXPECT_FALSE(tuner::EnumerateSpace(op).empty()) << op.name;
    EXPECT_FALSE(
        tuner::EnumerateSpace(op, tuner::SpaceOptions::NoPipelining()).empty())
        << op.name;
  }
}

TEST(OpsTest, FindOpByName) {
  EXPECT_EQ(workloads::FindOp("MM_RN50_FC").k, 2048);
  EXPECT_THROW(workloads::FindOp("nope"), CheckError);
}

TEST(OpsTest, ConvShapesArePadded) {
  // 8 x 28 x 28 = 6272 output positions pad to 6400; K = 128*9 = 1152.
  const schedule::GemmOp& conv = workloads::FindOp("Conv_RN50_3x3");
  EXPECT_EQ(conv.m % 256, 0);
  EXPECT_EQ(conv.k % 16, 0);
}

TEST(ModelsTest, SixModelsWithPositiveWork) {
  const auto& models = workloads::Models();
  EXPECT_EQ(models.size(), 6u);
  for (const workloads::ModelGraph& model : models) {
    EXPECT_FALSE(model.ops.empty()) << model.name;
    EXPECT_GT(model.ewise_bytes_fused, 0.0) << model.name;
    EXPECT_GT(model.ewise_bytes_unfused, model.ewise_bytes_fused)
        << model.name << ": XLA-style fusion must cost more traffic";
    EXPECT_GT(model.launches_unfused, model.launches_fused) << model.name;
  }
}

TEST(ModelsTest, EveryModelOpIsSchedulable) {
  for (const workloads::ModelGraph& model : workloads::Models()) {
    for (const workloads::LayerOp& layer : model.ops) {
      EXPECT_FALSE(tuner::EnumerateSpace(layer.op).empty())
          << model.name << " / " << layer.op.name;
    }
  }
}

TEST(ModelsTest, EndToEndComposition) {
  target::GpuSpec spec = target::AmpereSpec();
  const workloads::ModelGraph& model = workloads::FindModel("BERT");
  // A constant 100-cycle kernel isolates the composition arithmetic.
  auto constant = [](const schedule::GemmOp&) { return 100.0; };
  double fused = workloads::EndToEndCycles(model, constant, true, spec);
  double unfused = workloads::EndToEndCycles(model, constant, false, spec);
  int total_ops = 0;
  for (const workloads::LayerOp& layer : model.ops) total_ops += layer.count;
  double gemm_part = 100.0 * total_ops;
  EXPECT_GT(fused, gemm_part);
  EXPECT_GT(unfused, fused) << "conservative fusion must cost more";
}

TEST(LibraryTest, MenuCoversTheWholeSuite) {
  target::GpuSpec spec = target::AmpereSpec();
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    double cycles = workloads::LibraryKernelCycles(op, spec);
    EXPECT_TRUE(std::isfinite(cycles)) << op.name;
    EXPECT_GT(cycles, 0.0);
  }
}

TEST(LibraryTest, HandTuningEdgeReducesOverheads) {
  target::GpuSpec spec = target::AmpereSpec();
  target::GpuSpec tuned = workloads::LibrarySpec(spec);
  EXPECT_LT(tuned.sync_overhead_cycles, spec.sync_overhead_cycles);
  EXPECT_LT(tuned.launch_overhead_cycles, spec.launch_overhead_cycles);
}

TEST(XlaTest, KernelsAreValidButSlowerThanTunedAlcop) {
  target::GpuSpec spec = target::AmpereSpec();
  const schedule::GemmOp& op = workloads::FindOp("MM_BERT_FC2");
  double xla = workloads::XlaKernelCycles(op, spec);
  ASSERT_TRUE(std::isfinite(xla));
  // ALCOP's exhaustive best must beat the fixed XLA menu on this
  // pipelining-friendly shape.
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
  tuner::TuningResult result = tuner::ExhaustiveSearch(task);
  EXPECT_LT(result.BestInFirstK(result.trials.size()), xla);
}

}  // namespace
}  // namespace alcop
